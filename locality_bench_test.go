package repro

// Vertex-ordering locality ablation: the paper's §III observes that the
// GEE edge map's Z(v,·) accesses are the likely cache misses. Vertex
// orderings change how those misses cluster; this bench measures the
// same kernel under random, degree-descending, and BFS orders.

import (
	"testing"

	"repro/internal/gee"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/labels"
)

func BenchmarkAblationVertexOrder(b *testing.B) {
	base := gen.RMAT(0, 17, 1<<21, gen.Graph500Params, 77)
	// start from a scrambled ordering so "random" is genuinely random
	perm := graph.RandomPermutation(base.N, 78)
	random := graph.BuildCSR(0, graph.Permute(base, perm))
	y := labels.SampleSemiSupervised(base.N, 50, 0.1, 79)

	degree := graph.ApplyOrder(0, random, graph.DegreeOrder(0, random))
	bfs := graph.ApplyOrder(0, random, graph.BFSOrder(random))

	permute := func(perm []graph.NodeID, y []int32) []int32 {
		out := make([]int32, len(y))
		for old, new := range perm {
			out[new] = y[old]
		}
		return out
	}
	yDegree := permute(graph.DegreeOrder(0, random), y)
	yBFS := permute(graph.BFSOrder(random), y)

	cases := []struct {
		name string
		g    *graph.CSR
		y    []int32
	}{
		{"random", random, y},
		{"degree-desc", degree, yDegree},
		{"bfs", bfs, yBFS},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			opts := gee.Options{K: 50}
			b.SetBytes(c.g.NumEdges() * 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := gee.EmbedCSR(gee.LigraParallel, c.g, c.y, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
