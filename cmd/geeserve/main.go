// Command geeserve drives the dynamic embedding service (internal/dyn)
// under an ingest+query workload: edge insertions, deletions, and label
// updates stream into a DynamicEmbedder while concurrent reader
// goroutines answer embedding queries from its published snapshots.
//
// Two modes:
//
//	geeserve                        # generated SBM churn with ground truth
//	geeserve -stdin -n 1000 -k 10   # ops from stdin, one per line
//
// In generated mode the workload is a planted-partition graph whose
// edges churn batch by batch (each round inserts a fresh batch, deletes
// the oldest live one past a window, and reveals or perturbs a few
// labels); every -eval-every rounds the embedding is classified by
// arg-max coordinate and scored as ARI/NMI against the planted blocks,
// so embedding quality is observable while the graph churns underneath.
//
// Stdin lines:
//
//	a u v [w]   insert edge (weight 1 when omitted)
//	d u v [w]   delete a live edge (exact match)
//	l v c       relabel vertex v to class c (-1 unlabels)
//
// Ops are folded in batches of -batch lines (and at EOF).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/dyn"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/labels"
	"repro/internal/xrand"
)

func main() {
	var (
		stdin     = flag.Bool("stdin", false, "read ops from stdin instead of generating churn")
		n         = flag.Int("n", 100_000, "vertex count")
		k         = flag.Int("k", 10, "classes (= SBM blocks in generated mode)")
		pIn       = flag.Float64("p-in", 8e-4, "SBM within-block edge probability")
		pOut      = flag.Float64("p-out", 4e-5, "SBM cross-block edge probability")
		labelFrac = flag.Float64("label-frac", 0.1, "initially labeled fraction (true block labels)")
		batch     = flag.Int("batch", 20_000, "edges per ingest batch (ops per batch in stdin mode)")
		rounds    = flag.Int("rounds", 200, "ingest rounds in generated mode")
		window    = flag.Int("window", 8, "live batches kept before the oldest is deleted")
		relabel   = flag.Int("relabel", 50, "label updates per round in generated mode")
		readers   = flag.Int("readers", 4, "concurrent query reader goroutines")
		evalEvery = flag.Int("eval-every", 25, "rounds between ARI/NMI evaluations (0 disables)")
		threshold = flag.Int("sharded-threshold", 0, "batch size switching folds to the sharded path (0 default, <0 never)")
		workers   = flag.Int("workers", 0, "fold parallelism (0 = GOMAXPROCS)")
		seed      = flag.Uint64("seed", 12345, "workload seed")
	)
	flag.Parse()
	if err := run(*stdin, *n, *k, *pIn, *pOut, *labelFrac, *batch, *rounds, *window,
		*relabel, *readers, *evalEvery, *threshold, *workers, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "geeserve:", err)
		os.Exit(1)
	}
}

func run(stdin bool, n, k int, pIn, pOut, labelFrac float64, batch, rounds, window,
	relabel, readers, evalEvery, threshold, workers int, seed uint64) error {
	opts := dyn.Options{K: k, Workers: workers, ShardedThreshold: threshold}
	if stdin {
		y := make([]int32, n)
		for i := range y {
			y[i] = labels.Unknown
		}
		d, err := dyn.New(n, y, opts)
		if err != nil {
			return err
		}
		stop := startReaders(d, readers)
		defer stop()
		return serveStdin(d, batch)
	}

	fmt.Fprintf(os.Stderr, "# generating SBM: n=%d k=%d p_in=%g p_out=%g\n", n, k, pIn, pOut)
	el, yTrue := gen.SBM(workers, n, k, pIn, pOut, seed)
	if len(el.Edges) == 0 {
		return fmt.Errorf("empty SBM (raise -p-in/-p-out)")
	}
	// Reveal the true block of a random labeled subset — the
	// semi-supervised seeding GEE consumes.
	y := make([]int32, n)
	for i := range y {
		y[i] = labels.Unknown
	}
	r := xrand.New(seed + 1)
	for i := 0; i < int(labelFrac*float64(n)); i++ {
		v := r.Intn(n)
		y[v] = yTrue[v]
	}
	d, err := dyn.New(n, y, opts)
	if err != nil {
		return err
	}
	stop := startReaders(d, readers)
	defer stop()
	return serveChurn(d, el, yTrue, batch, rounds, window, relabel, evalEvery, seed)
}

// startReaders launches query goroutines hammering the published
// snapshot and returns a stop function reporting their total count.
func startReaders(d *dyn.DynamicEmbedder, readers int) func() {
	if readers <= 0 {
		return func() {}
	}
	var queries atomic.Int64
	done := make(chan struct{})
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r := xrand.New(uint64(1000 + id))
			n := d.N()
			for {
				select {
				case <-done:
					return
				default:
				}
				if row := d.Query(graph.NodeID(r.Intn(n))); row == nil {
					panic("geeserve: nil query row")
				}
				queries.Add(1)
			}
		}(i)
	}
	return func() {
		close(done)
		wg.Wait()
		secs := time.Since(start).Seconds()
		fmt.Printf("served %d queries from %d readers (%.0f queries/s)\n",
			queries.Load(), readers, float64(queries.Load())/secs)
	}
}

// serveChurn runs the generated ingest loop.
func serveChurn(d *dyn.DynamicEmbedder, el *graph.EdgeList, yTrue []int32,
	batch, rounds, window, relabel, evalEvery int, seed uint64) error {
	n := d.N()
	k := d.K()
	r := xrand.New(seed + 2)
	pool := el.Edges
	if batch > len(pool) {
		fmt.Fprintf(os.Stderr, "# pool has %d edges; clamping -batch from %d\n", len(pool), batch)
		batch = len(pool)
	}
	var live [][]graph.Edge // FIFO of inserted batches
	off := 0
	next := func() []graph.Edge {
		if off+batch > len(pool) {
			off = 0
		}
		b := pool[off : off+batch]
		off += batch
		return b
	}
	windowStart := time.Now()
	var windowEdges int64
	for round := 1; round <= rounds; round++ {
		var b dyn.Batch
		b.Insert = next()
		if len(live) >= window {
			b.Delete = live[0]
			live = live[1:]
		}
		for i := 0; i < relabel; i++ {
			v := graph.NodeID(r.Intn(n))
			// Mostly reveal true labels (quality climbs), sometimes
			// perturb (exercises the subtract/re-add path).
			class := yTrue[v]
			if r.Intn(5) == 0 {
				class = int32(r.Intn(k))
			}
			b.Labels = append(b.Labels, dyn.LabelUpdate{V: v, Class: class})
		}
		if err := d.Apply(b); err != nil {
			return fmt.Errorf("round %d: %w", round, err)
		}
		live = append(live, b.Insert)
		windowEdges += int64(len(b.Insert) + len(b.Delete))
		if evalEvery > 0 && round%evalEvery == 0 {
			snap := d.Snapshot()
			pred := classify(snap)
			secs := time.Since(windowStart).Seconds()
			fmt.Printf("round %4d  epoch %4d  live %9d  ingest %10.0f edges/s  ARI %.3f  NMI %.3f\n",
				round, snap.Epoch, snap.Edges, float64(windowEdges)/secs,
				cluster.ARI(pred, yTrue), cluster.NMI(pred, yTrue))
			windowStart = time.Now()
			windowEdges = 0
		}
	}
	st := d.Stats()
	fmt.Printf("ingested %d inserts, %d deletes, %d label moves over %d batches (folds: %d sharded, %d atomic, %d serial)\n",
		st.Inserts, st.Deletes, st.LabelMoves, st.Batches,
		st.ShardedFolds, st.AtomicFolds, st.SerialFolds)
	return nil
}

// classify assigns each vertex its arg-max embedding coordinate (the
// GEE semi-supervised read-out); all-zero rows stay unlabeled so they
// are skipped by the metrics.
func classify(s *dyn.Snapshot) []int32 {
	pred := make([]int32, s.Z.R)
	for v := 0; v < s.Z.R; v++ {
		row := s.Z.Row(v)
		best, bv := labels.Unknown, 0.0
		for c, x := range row {
			if x > bv {
				best, bv = int32(c), x
			}
		}
		pred[v] = best
	}
	return pred
}

// serveStdin folds line ops into batches.
func serveStdin(d *dyn.DynamicEmbedder, batch int) error {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var b dyn.Batch
	ops := 0
	line := 0
	flush := func() error {
		if ops == 0 {
			return nil
		}
		if err := d.Apply(b); err != nil {
			return err
		}
		b = dyn.Batch{}
		ops = 0
		return nil
	}
	for sc.Scan() {
		line++
		f := strings.Fields(sc.Text())
		if len(f) == 0 || f[0][0] == '#' {
			continue
		}
		switch f[0] {
		case "a", "d":
			if len(f) < 3 {
				return fmt.Errorf("line %d: want '%s u v [w]'", line, f[0])
			}
			u, err1 := strconv.ParseUint(f[1], 10, 32)
			v, err2 := strconv.ParseUint(f[2], 10, 32)
			w := 1.0
			var err3 error
			if len(f) > 3 {
				w, err3 = strconv.ParseFloat(f[3], 32)
			}
			if err1 != nil || err2 != nil || err3 != nil {
				return fmt.Errorf("line %d: bad edge op %q", line, sc.Text())
			}
			e := graph.Edge{U: graph.NodeID(u), V: graph.NodeID(v), W: float32(w)}
			if f[0] == "a" {
				b.Insert = append(b.Insert, e)
			} else {
				b.Delete = append(b.Delete, e)
			}
		case "l":
			if len(f) < 3 {
				return fmt.Errorf("line %d: want 'l v class'", line)
			}
			v, err1 := strconv.ParseUint(f[1], 10, 32)
			c, err2 := strconv.ParseInt(f[2], 10, 32)
			if err1 != nil || err2 != nil {
				return fmt.Errorf("line %d: bad label op %q", line, sc.Text())
			}
			b.Labels = append(b.Labels, dyn.LabelUpdate{V: graph.NodeID(v), Class: int32(c)})
		default:
			return fmt.Errorf("line %d: unknown op %q", line, f[0])
		}
		ops++
		if ops >= batch {
			if err := flush(); err != nil {
				return fmt.Errorf("line %d: %w", line, err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if err := flush(); err != nil {
		return err
	}
	st := d.Stats()
	fmt.Printf("epoch %d: %d live edges, %d inserts, %d deletes, %d label moves\n",
		st.Epoch, st.LiveEdges, st.Inserts, st.Deletes, st.LabelMoves)
	return nil
}
