// Command geeserve drives the dynamic embedding service (internal/dyn)
// under an ingest+query workload: edge insertions, deletions, and label
// updates stream into a DynamicEmbedder while concurrent reader
// goroutines answer embedding queries from its published snapshots.
// With -serve it additionally exposes the embedder over the HTTP
// serving API (internal/server) — queries, snapshots, and coalesced
// writes from the network — until SIGINT/SIGTERM triggers a graceful
// shutdown.
//
// Modes:
//
//	geeserve                          # generated SBM churn with ground truth
//	geeserve -stdin -n 1000 -k 10     # ops from stdin, one per line
//	geeserve -serve :8080 -rounds 0   # HTTP service only (drive with geeload)
//	geeserve -serve :8080             # HTTP service + local churn ingest
//
// In generated mode the workload is a planted-partition graph whose
// edges churn batch by batch (each round inserts a fresh batch, deletes
// the oldest live one past a window, and reveals or perturbs a few
// labels); every -eval-every rounds the embedding is classified by
// arg-max coordinate and scored as ARI/NMI against the planted blocks,
// so embedding quality is observable while the graph churns underneath.
//
// Stdin lines:
//
//	a u v [w]   insert edge (weight 1 when omitted)
//	d u v [w]   delete a live edge (exact match)
//	l v c       relabel vertex v to class c (-1 unlabels)
//
// Blank lines and lines starting with '#' are skipped. A malformed
// line does not abort the run: it is reported with its line number,
// counted, and skipped (the count is printed at EOF). Ops are folded
// in batches of -batch lines (and at EOF).
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/dyn"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/labels"
	"repro/internal/rate"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/xrand"
)

// config is the parsed flag set.
type config struct {
	stdin     bool
	serveAddr string
	shards    int
	n, k      int
	pIn, pOut float64
	labelFrac float64
	batch     int
	rounds    int
	window    int
	relabel   int
	readers   int
	evalEvery int
	threshold int
	workers   int
	pubEvery  int
	seed      uint64
	pprof     bool
	slowReq   time.Duration
	noTrace   bool
}

func main() {
	var cfg config
	flag.BoolVar(&cfg.stdin, "stdin", false, "read ops from stdin instead of generating churn")
	flag.StringVar(&cfg.serveAddr, "serve", "", "expose the HTTP serving API on this address (e.g. :8080) until SIGINT/SIGTERM")
	flag.IntVar(&cfg.shards, "shards", 1, "vertex-partitioned embedder shards behind the serving API (>1 requires -serve and disables the local workload)")
	flag.IntVar(&cfg.n, "n", 100_000, "vertex count")
	flag.IntVar(&cfg.k, "k", 10, "classes (= SBM blocks in generated mode)")
	flag.Float64Var(&cfg.pIn, "p-in", 8e-4, "SBM within-block edge probability")
	flag.Float64Var(&cfg.pOut, "p-out", 4e-5, "SBM cross-block edge probability")
	flag.Float64Var(&cfg.labelFrac, "label-frac", 0.1, "initially labeled fraction (true block labels)")
	flag.IntVar(&cfg.batch, "batch", 20_000, "edges per ingest batch (ops per batch in stdin mode)")
	flag.IntVar(&cfg.rounds, "rounds", 200, "ingest rounds in generated mode (0 = no local churn)")
	flag.IntVar(&cfg.window, "window", 8, "live batches kept before the oldest is deleted")
	flag.IntVar(&cfg.relabel, "relabel", 50, "label updates per round in generated mode")
	flag.IntVar(&cfg.readers, "readers", 4, "concurrent query reader goroutines during a local workload")
	flag.IntVar(&cfg.evalEvery, "eval-every", 25, "rounds between ARI/NMI evaluations (0 disables)")
	flag.IntVar(&cfg.threshold, "sharded-threshold", 0, "batch size switching folds to the sharded path (0 default, <0 never)")
	flag.IntVar(&cfg.workers, "workers", 0, "fold parallelism (0 = GOMAXPROCS)")
	flag.IntVar(&cfg.pubEvery, "publish-every", 0, "publish after this many applied ops (0 = publish every batch)")
	flag.Uint64Var(&cfg.seed, "seed", 12345, "workload seed")
	flag.BoolVar(&cfg.pprof, "pprof", false, "expose net/http/pprof under /debug/pprof/ on the -serve mux")
	flag.DurationVar(&cfg.slowReq, "slow-request", 0, "log requests slower than this threshold (e.g. 250ms; 0 disables)")
	flag.BoolVar(&cfg.noTrace, "no-trace", false, "disable request tracing (/debug/traces, per-stage write histograms); measurement escape hatch")
	flag.Parse()
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "geeserve:", err)
		os.Exit(1)
	}
}

func run(cfg config) error {
	if cfg.shards > 1 {
		// The shard set only exists behind the HTTP API: the local
		// workloads drive one embedder directly, bypassing the router
		// that scatters writes across owners.
		if cfg.serveAddr == "" {
			return fmt.Errorf("-shards %d needs -serve", cfg.shards)
		}
		if cfg.stdin {
			return fmt.Errorf("-shards %d is incompatible with -stdin (drive writes through the API with geeload)", cfg.shards)
		}
		if cfg.rounds > 0 {
			fmt.Fprintf(os.Stderr, "# -shards %d: skipping the local churn workload (drive with geeload)\n", cfg.shards)
		}
	}
	opts := dyn.Options{
		K: cfg.k, Workers: cfg.workers,
		ShardedThreshold: cfg.threshold,
		PublishEvery:     cfg.pubEvery,
	}

	y := make([]int32, cfg.n)
	for i := range y {
		y[i] = labels.Unknown
	}
	var yTrue []int32
	var el *graph.EdgeList
	if !cfg.stdin && cfg.rounds > 0 && cfg.shards <= 1 {
		fmt.Fprintf(os.Stderr, "# generating SBM: n=%d k=%d p_in=%g p_out=%g\n", cfg.n, cfg.k, cfg.pIn, cfg.pOut)
		el, yTrue = gen.SBM(cfg.workers, cfg.n, cfg.k, cfg.pIn, cfg.pOut, cfg.seed)
		if len(el.Edges) == 0 {
			return fmt.Errorf("empty SBM (raise -p-in/-p-out)")
		}
		// Reveal the true block of a random labeled subset — the
		// semi-supervised seeding GEE consumes.
		r := xrand.New(cfg.seed + 1)
		for i := 0; i < int(cfg.labelFrac*float64(cfg.n)); i++ {
			v := r.Intn(cfg.n)
			y[v] = yTrue[v]
		}
	}
	// One embedder unsharded; a partitioned set behind the router when
	// -shards asks for it (d stays nil then — every access below is
	// gated on the local workload, which sharded mode disables).
	var d *dyn.DynamicEmbedder
	if cfg.shards <= 1 {
		var err error
		d, err = dyn.New(cfg.n, y, opts)
		if err != nil {
			return err
		}
	}

	// Network front-end: serve the embedder while (and after) any local
	// workload runs. Listening happens synchronously so a bad -serve
	// address fails before minutes of workload, and the signal context
	// is installed up front so SIGINT/SIGTERM during the workload stops
	// it cleanly instead of killing the process mid-drain.
	var srv *server.Server
	srvErr := make(chan error, 1)
	ctx := context.Background()
	if cfg.serveAddr != "" {
		ln, err := net.Listen("tcp", cfg.serveAddr)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "# serving HTTP on %s\n", ln.Addr())
		serverOpts := server.Options{
			EnablePprof:          cfg.pprof,
			SlowRequestThreshold: cfg.slowReq,
			DisableTracing:       cfg.noTrace,
		}
		if cfg.shards > 1 {
			p, err := shard.NewPartition(cfg.n, cfg.shards)
			if err != nil {
				return err
			}
			shards, err := shard.NewShards(p, y, opts)
			if err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "# sharded serving: %d shards over [0,%d)\n", p.Shards(), p.N)
			srv = server.NewSharded(p, shards, serverOpts)
		} else {
			srv = server.New(d, serverOpts)
		}
		go func() { srvErr <- srv.Serve(ln) }()
		var stopSignals context.CancelFunc
		ctx, stopSignals = signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
		defer stopSignals()
	}

	// Local workload (if any), with its query readers.
	var workloadErr error
	ranWorkload := (cfg.stdin || cfg.rounds > 0) && cfg.shards <= 1
	switch {
	case !ranWorkload:
		// HTTP service only (sharded mode, or -rounds 0).
	case cfg.stdin:
		stop := startReaders(d, cfg.readers)
		if srv == nil {
			workloadErr = serveOps(ctx, d, os.Stdin, cfg.batch, os.Stdout, os.Stderr)
		} else {
			// A signal must not be held up by a blocked stdin read.
			// Closing stdin unblocks pollable inputs (the scan loop then
			// sees the cancelled ctx); a non-pollable blocking fd (e.g. a
			// quiet fifo) cannot be unblocked from outside, so after a
			// grace period the reader goroutine is abandoned and process
			// exit reaps it — shutdown must not hang on silent input.
			defer context.AfterFunc(ctx, func() { os.Stdin.Close() })()
			done := make(chan error, 1)
			go func() { done <- serveOps(ctx, d, os.Stdin, cfg.batch, os.Stdout, os.Stderr) }()
			select {
			case workloadErr = <-done:
			case <-ctx.Done():
				select {
				case workloadErr = <-done:
				case <-time.After(500 * time.Millisecond):
					fmt.Fprintln(os.Stderr, "geeserve: stdin reader still blocked; abandoning it for shutdown")
				}
			}
		}
		stop()
	default: // generated churn (cfg.rounds > 0)
		stop := startReaders(d, cfg.readers)
		workloadErr = serveChurn(ctx, d, el, yTrue, cfg)
		stop()
	}
	if workloadErr != nil && srv == nil {
		return workloadErr
	}
	if workloadErr != nil {
		fmt.Fprintln(os.Stderr, "geeserve: workload:", workloadErr)
	}

	if srv == nil {
		return nil
	}
	// Serve until interrupted, then drain gracefully.
	select {
	case <-ctx.Done():
	case err := <-srvErr:
		return fmt.Errorf("serve: %w", err)
	}
	fmt.Fprintln(os.Stderr, "# shutting down")
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-srvErr; err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	// The workload modes print their own summaries; repeating one here
	// would give scripts two near-identical epoch lines to mis-grep.
	// The sharded tier's aggregate lives in /statsz while it runs.
	if !ranWorkload && d != nil {
		st := d.Stats()
		fmt.Printf("epoch %d: %d live edges, %d inserts, %d deletes, %d label moves\n",
			st.Epoch, st.LiveEdges, st.Inserts, st.Deletes, st.LabelMoves)
	}
	fmt.Println("graceful shutdown complete")
	return workloadErr
}

// startReaders launches query goroutines hammering the published
// snapshot and returns a stop function reporting their total count.
func startReaders(d *dyn.DynamicEmbedder, readers int) func() {
	if readers <= 0 {
		return func() {}
	}
	var queries atomic.Int64
	done := make(chan struct{})
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r := xrand.New(uint64(1000 + id))
			n := d.N()
			for {
				select {
				case <-done:
					return
				default:
				}
				if row := d.Query(graph.NodeID(r.Intn(n))); row == nil {
					panic("geeserve: nil query row")
				}
				queries.Add(1)
			}
		}(i)
	}
	return func() {
		close(done)
		wg.Wait()
		secs := time.Since(start).Seconds()
		fmt.Printf("served %d queries from %d readers (%.0f queries/s)\n",
			queries.Load(), readers, rate.PerSec(queries.Load(), secs))
	}
}

// serveChurn runs the generated ingest loop; a cancelled ctx (the
// -serve signal handler) ends it cleanly between rounds.
func serveChurn(ctx context.Context, d *dyn.DynamicEmbedder, el *graph.EdgeList, yTrue []int32, cfg config) error {
	n := d.N()
	k := d.K()
	batch := cfg.batch
	r := xrand.New(cfg.seed + 2)
	pool := el.Edges
	if batch > len(pool) {
		fmt.Fprintf(os.Stderr, "# pool has %d edges; clamping -batch from %d\n", len(pool), batch)
		batch = len(pool)
	}
	var live [][]graph.Edge // FIFO of inserted batches
	off := 0
	next := func() []graph.Edge {
		if off+batch > len(pool) {
			off = 0
		}
		b := pool[off : off+batch]
		off += batch
		return b
	}
	windowStart := time.Now()
	var windowEdges int64
	for round := 1; round <= cfg.rounds; round++ {
		select {
		case <-ctx.Done():
			fmt.Fprintf(os.Stderr, "# workload interrupted at round %d\n", round)
			return nil
		default:
		}
		var b dyn.Batch
		b.Insert = next()
		if len(live) >= cfg.window {
			b.Delete = live[0]
			live = live[1:]
		}
		for i := 0; i < cfg.relabel; i++ {
			v := graph.NodeID(r.Intn(n))
			// Mostly reveal true labels (quality climbs), sometimes
			// perturb (exercises the subtract/re-add path).
			class := yTrue[v]
			if r.Intn(5) == 0 {
				class = int32(r.Intn(k))
			}
			b.Labels = append(b.Labels, dyn.LabelUpdate{V: v, Class: class})
		}
		if err := d.Apply(b); err != nil {
			return fmt.Errorf("round %d: %w", round, err)
		}
		live = append(live, b.Insert)
		windowEdges += int64(len(b.Insert) + len(b.Delete))
		if cfg.evalEvery > 0 && round%cfg.evalEvery == 0 {
			snap := d.Snapshot()
			pred := classify(snap)
			secs := time.Since(windowStart).Seconds()
			fmt.Printf("round %4d  epoch %4d  live %9d  ingest %10.0f edges/s  ARI %.3f  NMI %.3f\n",
				round, snap.Epoch, snap.Edges, rate.PerSec(windowEdges, secs),
				cluster.ARI(pred, yTrue), cluster.NMI(pred, yTrue))
			windowStart = time.Now()
			windowEdges = 0
		}
	}
	st := d.Stats()
	fmt.Printf("ingested %d inserts, %d deletes, %d label moves over %d batches (folds: %d sharded, %d atomic, %d serial)\n",
		st.Inserts, st.Deletes, st.LabelMoves, st.Batches,
		st.ShardedFolds, st.AtomicFolds, st.SerialFolds)
	return nil
}

// classify assigns each vertex its arg-max embedding coordinate (the
// GEE semi-supervised read-out); all-zero rows stay unlabeled so they
// are skipped by the metrics.
func classify(s *dyn.Snapshot) []int32 {
	pred := make([]int32, s.Z.R)
	for v := 0; v < s.Z.R; v++ {
		row := s.Z.Row(v)
		best, bv := labels.Unknown, 0.0
		for c, x := range row {
			if x > bv {
				best, bv = int32(c), x
			}
		}
		pred[v] = best
	}
	return pred
}

// op is one parsed stdin operation.
type op struct {
	kind  byte // 'a' insert, 'd' delete, 'l' label
	edge  graph.Edge
	label dyn.LabelUpdate
}

// parseOpLine parses one stdin line. skip is true for blank and
// comment lines; a non-nil error describes a malformed line (the
// caller decides whether that is fatal).
func parseOpLine(line string) (o op, skip bool, err error) {
	f := strings.Fields(line)
	if len(f) == 0 || strings.HasPrefix(f[0], "#") {
		return op{}, true, nil
	}
	switch f[0] {
	case "a", "d":
		if len(f) < 3 || len(f) > 4 {
			return op{}, false, fmt.Errorf("want '%s u v [w]', got %q", f[0], line)
		}
		u, err1 := strconv.ParseUint(f[1], 10, 32)
		v, err2 := strconv.ParseUint(f[2], 10, 32)
		w := 1.0
		var err3 error
		if len(f) == 4 {
			w, err3 = strconv.ParseFloat(f[3], 32)
		}
		if err1 != nil || err2 != nil || err3 != nil {
			return op{}, false, fmt.Errorf("bad edge op %q", line)
		}
		o.kind = f[0][0]
		o.edge = graph.Edge{U: graph.NodeID(u), V: graph.NodeID(v), W: float32(w)}
		return o, false, nil
	case "l":
		if len(f) != 3 {
			return op{}, false, fmt.Errorf("want 'l v class', got %q", line)
		}
		v, err1 := strconv.ParseUint(f[1], 10, 32)
		c, err2 := strconv.ParseInt(f[2], 10, 32)
		if err1 != nil || err2 != nil {
			return op{}, false, fmt.Errorf("bad label op %q", line)
		}
		o.kind = 'l'
		o.label = dyn.LabelUpdate{V: graph.NodeID(v), Class: int32(c)}
		return o, false, nil
	default:
		return op{}, false, fmt.Errorf("unknown op %q", f[0])
	}
}

// serveOps folds line ops from r into batches. Malformed lines are
// reported to errw with their line number and skipped; only stream and
// apply errors abort. A cancelled ctx ends the run cleanly at the next
// line (flushing what was read). The final tallies go to out.
func serveOps(ctx context.Context, d *dyn.DynamicEmbedder, r io.Reader, batch int, out, errw io.Writer) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var b dyn.Batch
	ops := 0
	line := 0
	malformed := 0
	flush := func() error {
		if ops == 0 {
			return nil
		}
		if err := d.Apply(b); err != nil {
			return err
		}
		b = dyn.Batch{}
		ops = 0
		return nil
	}
	for sc.Scan() {
		select {
		case <-ctx.Done():
			fmt.Fprintf(errw, "geeserve: interrupted after %d lines\n", line)
			return flush()
		default:
		}
		line++
		o, skip, err := parseOpLine(sc.Text())
		if err != nil {
			malformed++
			fmt.Fprintf(errw, "geeserve: line %d: %v (skipped)\n", line, err)
			continue
		}
		if skip {
			continue
		}
		switch o.kind {
		case 'a':
			b.Insert = append(b.Insert, o.edge)
		case 'd':
			b.Delete = append(b.Delete, o.edge)
		case 'l':
			b.Labels = append(b.Labels, o.label)
		}
		ops++
		if ops >= batch {
			if err := flush(); err != nil {
				return fmt.Errorf("line %d: %w", line, err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		// A cancelled ctx surfaces as a read error when the caller
		// closed the input to unblock the scan; that's an interrupt,
		// not a stream failure.
		if ctx.Err() == nil {
			return err
		}
		fmt.Fprintf(errw, "geeserve: interrupted after %d lines\n", line)
	}
	if err := flush(); err != nil {
		return err
	}
	st := d.Stats()
	fmt.Fprintf(out, "epoch %d: %d live edges, %d inserts, %d deletes, %d label moves",
		st.Epoch, st.LiveEdges, st.Inserts, st.Deletes, st.LabelMoves)
	if malformed > 0 {
		fmt.Fprintf(out, " (%d malformed lines skipped)", malformed)
	}
	fmt.Fprintln(out)
	return nil
}
