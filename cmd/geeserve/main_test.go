package main

import (
	"context"
	"strings"
	"testing"

	"repro/internal/dyn"
	"repro/internal/labels"
)

func TestParseOpLine(t *testing.T) {
	cases := []struct {
		name, line string
		wantSkip   bool
		wantErr    bool
		check      func(t *testing.T, o op)
	}{
		{"blank", "", true, false, nil},
		{"spaces", "   \t ", true, false, nil},
		{"comment", "# a 1 2", true, false, nil},
		{"comment glued", "#comment", true, false, nil},
		{"insert unweighted", "a 3 4", false, false, func(t *testing.T, o op) {
			if o.kind != 'a' || o.edge.U != 3 || o.edge.V != 4 || o.edge.W != 1 {
				t.Fatalf("parsed %+v", o)
			}
		}},
		{"insert weighted", "a 3 4 2.5", false, false, func(t *testing.T, o op) {
			if o.kind != 'a' || o.edge.W != 2.5 {
				t.Fatalf("parsed %+v", o)
			}
		}},
		{"delete", "d 7 8 2", false, false, func(t *testing.T, o op) {
			if o.kind != 'd' || o.edge.U != 7 || o.edge.W != 2 {
				t.Fatalf("parsed %+v", o)
			}
		}},
		{"label", "l 5 1", false, false, func(t *testing.T, o op) {
			if o.kind != 'l' || o.label.V != 5 || o.label.Class != 1 {
				t.Fatalf("parsed %+v", o)
			}
		}},
		{"unlabel", "l 5 -1", false, false, func(t *testing.T, o op) {
			if o.label.Class != labels.Unknown {
				t.Fatalf("parsed %+v", o)
			}
		}},
		{"unknown op", "x 1 2", false, true, nil},
		{"insert too few fields", "a 1", false, true, nil},
		{"insert too many fields", "a 1 2 3 4", false, true, nil},
		{"non-numeric vertex", "a one 2", false, true, nil},
		{"non-numeric weight", "a 1 2 heavy", false, true, nil},
		{"negative vertex", "a -1 2", false, true, nil},
		{"label missing class", "l 5", false, true, nil},
		{"label bad class", "l 5 two", false, true, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o, skip, err := parseOpLine(tc.line)
			if skip != tc.wantSkip {
				t.Fatalf("skip = %v, want %v", skip, tc.wantSkip)
			}
			if (err != nil) != tc.wantErr {
				t.Fatalf("err = %v, wantErr %v", err, tc.wantErr)
			}
			if tc.check != nil {
				tc.check(t, o)
			}
		})
	}
}

// TestServeOpsTolerantOfMalformedLines feeds a stream with malformed
// lines interleaved: the run must apply every valid op, skip and count
// the bad lines with their numbers, and not abort.
func TestServeOpsTolerantOfMalformedLines(t *testing.T) {
	y := make([]int32, 10)
	for i := range y {
		y[i] = labels.Unknown
	}
	d, err := dyn.New(10, y, dyn.Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	input := strings.Join([]string{
		"# header comment",
		"a 0 1",
		"garbage here",
		"a 1 2 2",
		"",
		"l 0 1",
		"a nine 9",
		"d 0 1",
		"l 1 7notaclass",
	}, "\n")
	var out, errw strings.Builder
	if err := serveOps(context.Background(), d, strings.NewReader(input), 2, &out, &errw); err != nil {
		t.Fatalf("serveOps aborted: %v", err)
	}
	st := d.Stats()
	if st.Inserts != 2 || st.Deletes != 1 || st.LabelMoves != 1 {
		t.Fatalf("applied %d inserts / %d deletes / %d moves, want 2/1/1", st.Inserts, st.Deletes, st.LabelMoves)
	}
	if !strings.Contains(out.String(), "3 malformed lines skipped") {
		t.Fatalf("missing malformed tally in %q", out.String())
	}
	for _, want := range []string{"line 3:", "line 7:", "line 9:"} {
		if !strings.Contains(errw.String(), want) {
			t.Fatalf("missing %q in error report %q", want, errw.String())
		}
	}
	// A batch-level apply failure (deleting a never-inserted edge) is
	// still fatal — transactional batches, not parse tolerance.
	if err := serveOps(context.Background(), d, strings.NewReader("d 5 6\n"), 1, &out, &errw); err == nil {
		t.Fatal("apply failure not surfaced")
	}
}
