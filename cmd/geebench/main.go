// Command geebench regenerates the paper's evaluation (§IV): Table I,
// Figures 2-4, the atomics ablation, and the W-initialization crossover.
// Beyond the paper, Table I and the ablation also measure the
// repository's destination-sharded backend (GEE-Sharded), which matches
// the atomic parallel output with zero atomic operations.
//
// Usage:
//
//	geebench -exp table1 -scale 64            # Table I at 1/64 dataset sizes
//	geebench -exp fig3 -scale 32              # strong scaling sweep
//	geebench -exp fig4 -min-log2 13 -max-log2 24
//	geebench -exp all -scale 64
//
// Absolute times are machine- and scale-dependent; the shapes (who wins,
// by what factor, linearity, scaling curve) are the reproduction targets.
// See EXPERIMENTS.md for recorded paper-vs-measured results.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/bench"
)

func main() {
	var (
		exp       = flag.String("exp", "table1", "experiment: table1, fig2, fig3, fig4, ablation, winit, baselines, all")
		sbmN      = flag.Int("sbm-n", 50_000, "baselines: SBM vertex count")
		sbmBlocks = flag.Int("sbm-blocks", 10, "baselines: SBM block count")
		fullBase  = flag.Bool("full-baselines", false, "baselines: also run the slow DeepWalk and GCN rows")
		csvDir    = flag.String("csv", "", "also write machine-readable CSVs into this directory")
		scaleDiv  = flag.Int64("scale", 64, "dataset scale divisor (paper size / scale)")
		reps      = flag.Int("reps", 3, "repetitions per measurement (median reported)")
		workers   = flag.Int("workers", 0, "parallel worker count (0 = GOMAXPROCS)")
		k         = flag.Int("k", 50, "number of classes (paper: 50)")
		labelFrac = flag.Float64("label-frac", 0.1, "labeled node fraction (paper: 0.1)")
		skipRef   = flag.Bool("skip-reference", false, "skip the slow faithful-Algorithm-1 rows")
		minLog2   = flag.Int("min-log2", 13, "fig4: smallest log2 edge count")
		maxLog2   = flag.Int("max-log2", 22, "fig4: largest log2 edge count")
		refMax    = flag.Int("ref-max-log2", 22, "fig4: largest log2 edges for the Reference curve")
		graphName = flag.String("graph", "soc-orkut", "ablation: Table I graph stand-in to use")
		seed      = flag.Uint64("seed", 12345, "workload seed")
	)
	flag.Parse()
	cfg := bench.Config{
		ScaleDiv:      *scaleDiv,
		Reps:          *reps,
		Workers:       *workers,
		K:             *k,
		LabelFraction: *labelFrac,
		SkipReference: *skipRef,
		Seed:          *seed,
	}
	if err := run(*exp, cfg, *minLog2, *maxLog2, *refMax, *graphName, *sbmN, *sbmBlocks, *fullBase, *csvDir); err != nil {
		fmt.Fprintln(os.Stderr, "geebench:", err)
		os.Exit(1)
	}
}

func run(exp string, cfg bench.Config, minLog2, maxLog2, refMax int, graphName string, sbmN, sbmBlocks int, fullBaselines bool, csvDir string) error {
	out, progress := os.Stdout, os.Stderr
	writeCSV := func(name string, write func(w io.Writer) error) error {
		if csvDir == "" {
			return nil
		}
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(csvDir, name))
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	runOne := func(name string) error {
		switch name {
		case "table1":
			rows, err := bench.RunTableI(cfg, progress)
			if err != nil {
				return err
			}
			bench.RenderTableI(out, rows, cfg)
			if err := writeCSV("table1.csv", func(w io.Writer) error {
				return bench.WriteTableICSV(w, rows)
			}); err != nil {
				return err
			}
		case "fig2":
			res, err := bench.RunFig2(cfg, progress)
			if err != nil {
				return err
			}
			bench.RenderFig2(out, res)
		case "fig3":
			points, err := bench.RunFig3(cfg, nil, progress)
			if err != nil {
				return err
			}
			bench.RenderFig3(out, points)
			if err := writeCSV("fig3.csv", func(w io.Writer) error {
				return bench.WriteFig3CSV(w, points)
			}); err != nil {
				return err
			}
		case "fig4":
			points, err := bench.RunFig4(cfg, minLog2, maxLog2, refMax, nil, progress)
			if err != nil {
				return err
			}
			bench.RenderFig4(out, points)
			if err := writeCSV("fig4.csv", func(w io.Writer) error {
				return bench.WriteFig4CSV(w, points)
			}); err != nil {
				return err
			}
		case "ablation":
			spec, err := bench.FindSpec(graphName)
			if err != nil {
				return err
			}
			res, err := bench.RunAblation(spec, cfg, progress)
			if err != nil {
				return err
			}
			bench.RenderAblation(out, res)
		case "winit":
			points, err := bench.RunWInit(cfg, nil, 0, progress)
			if err != nil {
				return err
			}
			bench.RenderWInit(out, points)
			if err := writeCSV("winit.csv", func(w io.Writer) error {
				return bench.WriteWInitCSV(w, points)
			}); err != nil {
				return err
			}
		case "baselines":
			runner := bench.RunBaselines
			if fullBaselines {
				runner = bench.RunBaselinesFull
			}
			res, err := runner(cfg, sbmN, sbmBlocks, 0.006, 0.0002, progress)
			if err != nil {
				return err
			}
			bench.RenderBaselines(out, res)
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		fmt.Fprintln(out)
		return nil
	}
	if exp == "all" {
		for _, name := range []string{"table1", "fig2", "fig3", "fig4", "ablation", "winit", "baselines"} {
			if err := runOne(name); err != nil {
				return err
			}
		}
		return nil
	}
	return runOne(exp)
}
