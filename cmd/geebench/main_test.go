package main

import (
	"testing"

	"repro/internal/bench"
)

// tiny keeps the driver tests fast: huge divisor, one rep.
func tiny() bench.Config {
	return bench.Config{ScaleDiv: 4096, Reps: 1, Workers: 4, K: 8, LabelFraction: 0.1, Seed: 3}
}

func TestRunEachExperiment(t *testing.T) {
	cfg := tiny()
	for _, exp := range []string{"table1", "fig2", "ablation"} {
		if err := run(exp, cfg, 13, 13, 13, "Twitch", 500, 2, false, ""); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
	}
	if err := run("fig4", cfg, 13, 14, 13, "Twitch", 500, 2, false, t.TempDir()); err != nil {
		t.Fatalf("fig4: %v", err)
	}
	if err := run("baselines", cfg, 13, 13, 13, "Twitch", 600, 2, false, ""); err != nil {
		t.Fatalf("baselines: %v", err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("bogus", tiny(), 13, 13, 13, "Twitch", 100, 2, false, ""); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunUnknownGraph(t *testing.T) {
	if err := run("ablation", tiny(), 13, 13, 13, "NotAGraph", 100, 2, false, ""); err == nil {
		t.Fatal("unknown graph accepted")
	}
}
