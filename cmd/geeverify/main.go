// Command geeverify checks every implementation against the faithful
// Algorithm 1 oracle on a graph file or a generated workload, reporting
// the maximum elementwise deviation per implementation.
//
// Usage:
//
//	geeverify -graph g.txt -k 50
//	geeverify -rmat-scale 16 -edges 1000000 -k 50
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "edge list file (omit to generate RMAT)")
		rmatScale = flag.Int("rmat-scale", 14, "generated RMAT log2 vertex count")
		edges     = flag.Int64("edges", 1<<18, "generated RMAT edge count")
		k         = flag.Int("k", 50, "classes")
		labelFrac = flag.Float64("label-frac", 0.1, "labeled fraction")
		laplacian = flag.Bool("laplacian", false, "verify the Laplacian variant")
		workers   = flag.Int("workers", 0, "workers (0 = GOMAXPROCS)")
		tol       = flag.Float64("tol", 1e-9, "relative tolerance")
		seed      = flag.Uint64("seed", 1, "workload seed")
	)
	flag.Parse()
	if err := run(*graphPath, *rmatScale, *edges, *k, *labelFrac, *laplacian, *workers, *tol, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "geeverify:", err)
		os.Exit(1)
	}
}

func run(graphPath string, rmatScale int, edges int64, k int, labelFrac float64,
	laplacian bool, workers int, tol float64, seed uint64) error {
	var el *repro.EdgeList
	var err error
	if graphPath != "" {
		if el, err = repro.LoadEdgeList(graphPath); err != nil {
			return err
		}
	} else {
		el = repro.NewRMAT(workers, rmatScale, edges, seed)
	}
	y := repro.SampleLabels(el.N, k, labelFrac, seed+1)
	fmt.Printf("verifying on n=%d m=%d K=%d labeled=%.0f%% laplacian=%v tol=%g\n",
		el.N, len(el.Edges), k, labelFrac*100, laplacian, tol)
	reports, err := repro.Verify(el, y,
		repro.Options{K: k, Workers: workers, Laplacian: laplacian}, tol)
	if err != nil {
		return err
	}
	failed := false
	for _, r := range reports {
		status := "OK"
		if !r.WithinTol {
			status = "DEVIATES"
			// the deliberately racy ablation may deviate; that is not a
			// verification failure
			if r.Impl != repro.LigraParallelUnsafe {
				failed = true
			} else {
				status = "DEVIATES (racy by design)"
			}
		}
		fmt.Printf("  %-22s max|Δ| = %-12g %s\n", r.Impl, r.MaxAbsDiff, status)
	}
	if failed {
		return fmt.Errorf("verification failed")
	}
	fmt.Println("all implementations agree with the Algorithm 1 oracle")
	return nil
}
