package main

import (
	"path/filepath"
	"testing"

	"repro"
)

func TestRunGenerated(t *testing.T) {
	if err := run("", 10, 20_000, 10, 0.2, false, 4, 1e-9, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunGeneratedLaplacian(t *testing.T) {
	if err := run("", 9, 10_000, 5, 0.3, true, 4, 1e-9, 2); err != nil {
		t.Fatal(err)
	}
}

func TestRunFromFile(t *testing.T) {
	dir := t.TempDir()
	el := repro.NewErdosRenyi(2, 200, 2000, 3)
	path := filepath.Join(dir, "g.txt")
	if err := repro.SaveEdgeList(path, el); err != nil {
		t.Fatal(err)
	}
	if err := run(path, 0, 0, 8, 0.25, false, 4, 1e-9, 4); err != nil {
		t.Fatal(err)
	}
}

func TestRunMissingFile(t *testing.T) {
	if err := run("/nonexistent/g.txt", 0, 0, 8, 0.25, false, 4, 1e-9, 4); err == nil {
		t.Fatal("missing file accepted")
	}
}
