// Command geestats prints structural statistics of a graph file —
// the quick sanity check before benchmarking or embedding it.
//
// Usage:
//
//	geestats -graph g.txt [-format edgelist|adj|bin] [-components] [-triangles]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/graph"
	"repro/internal/ligra"
)

func main() {
	var (
		graphPath  = flag.String("graph", "", "input graph file (required)")
		format     = flag.String("format", "edgelist", "graph format: edgelist, adj, bin")
		workers    = flag.Int("workers", 0, "worker count (0 = GOMAXPROCS)")
		components = flag.Bool("components", false, "also count connected components (symmetrizes)")
		triangles  = flag.Bool("triangles", false, "also count triangles (symmetrizes, sorts)")
	)
	flag.Parse()
	if *graphPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*graphPath, *format, *workers, *components, *triangles); err != nil {
		fmt.Fprintln(os.Stderr, "geestats:", err)
		os.Exit(1)
	}
}

func run(path, format string, workers int, components, triangles bool) error {
	var g *repro.Graph
	var err error
	switch format {
	case "edgelist":
		el, err := repro.LoadEdgeList(path)
		if err != nil {
			return err
		}
		g = repro.BuildGraph(workers, el)
	case "adj":
		if g, err = repro.LoadAdjacency(path); err != nil {
			return err
		}
	case "bin":
		if g, err = repro.LoadBinary(path); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown format %q", format)
	}
	s := graph.ComputeStats(workers, g)
	fmt.Printf("vertices        %d\n", s.N)
	fmt.Printf("arcs            %d\n", s.M)
	fmt.Printf("avg out-degree  %.3f\n", s.AvgDegree)
	fmt.Printf("degree min/p50/p99/max  %d / %d / %d / %d\n",
		s.MinDegree, s.DegreeP50, s.DegreeP99, s.MaxDegree)
	fmt.Printf("isolated        %d\n", s.Isolated)
	fmt.Printf("self loops      %d\n", s.SelfLoops)
	fmt.Printf("total weight    %.1f\n", s.WeightTotal)

	if components || triangles {
		sym := graph.BuildCSR(workers, graph.Symmetrize(g.ToEdgeList()))
		if components {
			cc := ligra.ConnectedComponents(workers, sym)
			seen := map[repro.NodeID]bool{}
			for _, c := range cc {
				seen[c] = true
			}
			fmt.Printf("components      %d\n", len(seen))
		}
		if triangles {
			graph.SortAdjacency(workers, sym)
			fmt.Printf("triangles       %d\n", ligra.TriangleCount(workers, sym))
		}
	}
	return nil
}
