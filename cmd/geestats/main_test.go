package main

import (
	"path/filepath"
	"testing"

	"repro"
)

func TestRunStats(t *testing.T) {
	dir := t.TempDir()
	el := repro.NewErdosRenyi(2, 200, 2000, 1)
	path := filepath.Join(dir, "g.txt")
	if err := repro.SaveEdgeList(path, el); err != nil {
		t.Fatal(err)
	}
	if err := run(path, "edgelist", 4, true, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunStatsFormats(t *testing.T) {
	dir := t.TempDir()
	el := repro.NewErdosRenyi(2, 50, 300, 2)
	g := repro.BuildGraph(2, el)
	adj := filepath.Join(dir, "g.adj")
	bin := filepath.Join(dir, "g.bin")
	repro.SaveAdjacency(adj, g)
	repro.SaveBinary(bin, g)
	if err := run(adj, "adj", 2, false, false); err != nil {
		t.Fatal(err)
	}
	if err := run(bin, "bin", 2, false, false); err != nil {
		t.Fatal(err)
	}
	if err := run(adj, "bogus", 2, false, false); err == nil {
		t.Fatal("bogus format accepted")
	}
	if err := run("/nonexistent", "edgelist", 2, false, false); err == nil {
		t.Fatal("missing file accepted")
	}
}
