package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture runs run() with stdout/stderr redirected to temp files and
// returns the exit code plus both outputs.
func capture(t *testing.T, args []string) (int, string, string) {
	t.Helper()
	dir := t.TempDir()
	stdout, err := os.Create(filepath.Join(dir, "stdout"))
	if err != nil {
		t.Fatal(err)
	}
	stderr, err := os.Create(filepath.Join(dir, "stderr"))
	if err != nil {
		t.Fatal(err)
	}
	code := run(args, stdout, stderr)
	stdout.Close()
	stderr.Close()
	out, _ := os.ReadFile(filepath.Join(dir, "stdout"))
	errOut, _ := os.ReadFile(filepath.Join(dir, "stderr"))
	return code, string(out), string(errOut)
}

func TestList(t *testing.T) {
	code, out, _ := capture(t, []string{"-list"})
	if code != 0 {
		t.Fatalf("-list exit code = %d, want 0", code)
	}
	for _, name := range []string{"atomiccell", "boundedmake", "noalloc", "guardedfield", "stickywrite"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, out)
		}
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	code, _, errOut := capture(t, []string{"-run", "nosuch"})
	if code != 2 {
		t.Fatalf("unknown analyzer exit code = %d, want 2", code)
	}
	if !strings.Contains(errOut, "unknown analyzer") {
		t.Errorf("stderr missing diagnosis: %s", errOut)
	}
}

func TestRepoRunsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module from source")
	}
	code, out, errOut := capture(t, []string{"./..."})
	if code != 0 {
		t.Fatalf("geevet ./... exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out, errOut)
	}
	if out != "" {
		t.Errorf("geevet ./... produced findings on a clean tree:\n%s", out)
	}
}
