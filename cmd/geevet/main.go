// Command geevet runs the repo's static-analysis suite
// (internal/analysis): five analyzers enforcing the concurrency,
// allocation, and wire-safety invariants the code relies on by
// convention. It is stdlib-only and module-aware — no go/packages, no
// external driver.
//
// Usage:
//
//	geevet [-run analyzer[,analyzer]] [-list] [packages]
//
// The package argument may be ./... (the whole module, the default) or
// one or more directory paths; either way the whole module is loaded
// (analysis is cross-package) and findings are filtered to the
// requested packages. Exit status: 0 clean, 1 findings, 2 usage or
// load failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("geevet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	runList := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := analysis.DefaultAnalyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name(), a.Doc())
		}
		return 0
	}
	if *runList != "" {
		want := make(map[string]bool)
		for _, name := range strings.Split(*runList, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var picked []analysis.Analyzer
		for _, a := range analyzers {
			if want[a.Name()] {
				picked = append(picked, a)
				delete(want, a.Name())
			}
		}
		for name := range want {
			fmt.Fprintf(stderr, "geevet: unknown analyzer %q (try -list)\n", name)
			return 2
		}
		analyzers = picked
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "geevet: %v\n", err)
		return 2
	}
	mod, err := analysis.LoadModule(cwd)
	if err != nil {
		fmt.Fprintf(stderr, "geevet: %v\n", err)
		return 2
	}

	keep, err := packageFilter(mod, cwd, patterns)
	if err != nil {
		fmt.Fprintf(stderr, "geevet: %v\n", err)
		return 2
	}

	findings := analysis.Run(mod, analyzers)
	shown := 0
	for _, f := range findings {
		if !keep(f.Pos.Filename) {
			continue
		}
		fmt.Fprintf(stdout, "%s\n", f)
		shown++
	}
	if shown > 0 {
		fmt.Fprintf(stderr, "geevet: %d finding(s)\n", shown)
		return 1
	}
	return 0
}

// packageFilter maps the command-line patterns to a predicate over
// finding filenames. "./..." (from the module root or below) keeps
// everything under the pattern's base directory; a plain directory
// keeps that directory only.
func packageFilter(mod *analysis.Module, cwd string, patterns []string) (func(string) bool, error) {
	type rule struct {
		dir       string
		recursive bool
	}
	var rules []rule
	for _, p := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(p, "/..."); ok {
			recursive = true
			p = rest
			if p == "." || p == "" {
				p = cwd
			}
		}
		abs := p
		if !filepath.IsAbs(abs) {
			abs = filepath.Join(cwd, p)
		}
		abs = filepath.Clean(abs)
		if _, err := os.Stat(abs); err != nil {
			return nil, fmt.Errorf("package pattern %q: %v", p, err)
		}
		rules = append(rules, rule{dir: abs, recursive: recursive})
	}
	return func(filename string) bool {
		dir := filepath.Dir(filename)
		for _, r := range rules {
			if r.recursive {
				if dir == r.dir || strings.HasPrefix(dir, r.dir+string(filepath.Separator)) {
					return true
				}
			} else if dir == r.dir {
				return true
			}
		}
		return false
	}, nil
}
