// Command geeload is a closed-loop load generator for the GEE serving
// API (internal/server): a configurable mix of writer goroutines
// (batched edge inserts, with optional deletes of their own earlier
// batches) and read-side goroutines — single-row embedding queries,
// batched multi-vertex reads, top-k neighbor searches, and replica
// followers syncing over /v1/delta — drives a running server, e.g.
// `geeserve -serve :8080`, for a fixed duration and reports the
// achieved per-endpoint throughput.
//
// Closed loop means every worker waits for its previous request's
// response (for writes: the publish ack) before issuing the next, so
// the reported rates are acknowledged end-to-end throughput, not an
// open-loop submission rate. Writers that hit ingest backpressure
// (HTTP 429) back off briefly and retry; the retry count is reported.
//
// With -replica-verify, after the load window closes each replica is
// synced to the primary's published epoch and compared row by row
// against /v1/snapshot — every float must be bit-identical, or the run
// fails. This is the end-to-end check that delta streaming loses
// nothing.
//
// -wire selects the response encoding for the row-carrying endpoints:
// json (the default) or binary (the compact frame format, ~5× fewer
// bytes per replica sync). The replica lines report bytes per sync so
// the two runs are directly comparable.
//
//	geeload -addr http://127.0.0.1:8080 -duration 5s -writers 4 -readers 4
//	geeload -addr ... -batch-readers 2 -neighbor-readers 2 -replicas 2 -replica-verify
//	geeload -addr ... -replicas 1 -replica-verify -wire binary
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"maps"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dyn"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/rate"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/shard"
	"repro/internal/xrand"
)

type config struct {
	addr          string
	duration      time.Duration
	writers       int
	readers       int
	batchReaders  int
	readBatch     int
	nbrReaders    int
	nbrK          int
	nbrMetric     string
	nbrMode       string
	nbrNProbe     int
	recallQueries int
	replicas      int
	replicaSync   time.Duration
	replicaVerify bool
	wireFmt       string
	batch         int
	blockFrac     float64
	deleteFrac    float64
	labelFrac     float64
	seed          uint64
	metricsURL    string
	tracesURL     string
}

// counters aggregates what the load achieved.
type counters struct {
	inserts    atomic.Int64 // acked insert ops
	deletes    atomic.Int64 // acked delete ops
	queries    atomic.Int64 // completed embedding reads
	batchReads atomic.Int64 // completed batched multi-vertex reads
	batchRows  atomic.Int64 // rows returned by batched reads
	neighbors  atomic.Int64 // completed top-k neighbor queries
	retries    atomic.Int64 // 429 backoffs
	errors     atomic.Int64 // non-backpressure request failures
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", "http://127.0.0.1:8080", "serving API base URL")
	flag.DurationVar(&cfg.duration, "duration", 5*time.Second, "load duration")
	flag.IntVar(&cfg.writers, "writers", 4, "concurrent writer goroutines")
	flag.IntVar(&cfg.readers, "readers", 4, "concurrent single-row reader goroutines")
	flag.IntVar(&cfg.batchReaders, "batch-readers", 0, "concurrent batched-read goroutines (POST /v1/embeddings)")
	flag.IntVar(&cfg.readBatch, "read-batch", 64, "vertices per batched read")
	flag.IntVar(&cfg.nbrReaders, "neighbor-readers", 0, "concurrent top-k neighbor query goroutines (POST /v1/neighbors)")
	flag.IntVar(&cfg.nbrK, "neighbor-k", 10, "k for neighbor queries")
	flag.StringVar(&cfg.nbrMetric, "neighbor-metric", "l2", "neighbor metric: l2 or cosine")
	flag.StringVar(&cfg.nbrMode, "neighbor-mode", "exact", "neighbor mode: exact (brute-force scan) or approx (IVF index)")
	flag.IntVar(&cfg.nbrNProbe, "neighbor-nprobe", 0, "inverted lists probed per approx query (0 = server default)")
	flag.IntVar(&cfg.recallQueries, "recall-queries", 64, "post-load recall@k sample size when -neighbor-mode approx (0 disables)")
	flag.Float64Var(&cfg.blockFrac, "edge-block", 0, "fraction of writer edges kept within a planted block (u ≡ v mod k) so the embedding clusters")
	flag.IntVar(&cfg.replicas, "replicas", 0, "replica followers syncing over GET /v1/delta")
	flag.DurationVar(&cfg.replicaSync, "replica-sync", 25*time.Millisecond, "pause between replica sync rounds")
	flag.BoolVar(&cfg.replicaVerify, "replica-verify", false, "after the load, verify each replica is bit-identical to /v1/snapshot")
	flag.StringVar(&cfg.wireFmt, "wire", "json", "row-response wire format: json or binary")
	flag.IntVar(&cfg.batch, "batch", 64, "edges per insert request")
	flag.Float64Var(&cfg.deleteFrac, "delete-frac", 0.2, "fraction of writer requests that delete a previously inserted batch")
	flag.Float64Var(&cfg.labelFrac, "label-frac", 0.2, "fraction of vertices labeled round-robin before the load starts")
	flag.Uint64Var(&cfg.seed, "seed", 1, "workload seed")
	flag.StringVar(&cfg.metricsURL, "metrics-url", "", "scrape this Prometheus endpoint (e.g. <addr>/metrics) after the load and report the server's own per-route latencies")
	flag.StringVar(&cfg.tracesURL, "traces-url", "", "fetch this trace-dump endpoint (e.g. <addr>/debug/traces) after the load and report the slowest write's per-stage breakdown")
	flag.Parse()
	if err := run(cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "geeload:", err)
		os.Exit(1)
	}
}

// normalizeBase turns a bare host:port into an http:// base URL.
func normalizeBase(addr string) string {
	if strings.HasPrefix(addr, "http://") || strings.HasPrefix(addr, "https://") {
		return addr
	}
	return "http://" + addr
}

// randEdges fills a batch of random edges over [0, n). With blockFrac
// > 0, that fraction of edges stays inside a planted block (u ≡ v mod
// k, matching the round-robin label seeding), so the served embedding
// develops the clustered structure an approximate-NN index — and a
// meaningful recall measurement — needs; uniform random edges collapse
// every row toward the same class mixture.
func randEdges(r *xrand.Rand, n, k, m int, blockFrac float64) []graph.Edge {
	edges := make([]graph.Edge, m)
	for i := range edges {
		u := r.Intn(n)
		v := r.Intn(n)
		if k > 0 && r.Float64() < blockFrac {
			v = u%k + k*r.Intn((n-1-u%k)/k+1) // same residue class as u
		}
		edges[i] = graph.Edge{
			U: graph.NodeID(u), V: graph.NodeID(v),
			W: float32(r.Intn(4) + 1),
		}
	}
	return edges
}

// done reports whether an error just means the load window closed.
func done(ctx context.Context, err error) bool {
	return ctx.Err() != nil || errors.Is(err, context.DeadlineExceeded)
}

func run(cfg config, out io.Writer) error {
	if cfg.nbrMode != "exact" && cfg.nbrMode != "approx" {
		return fmt.Errorf("-neighbor-mode must be exact or approx, got %q", cfg.nbrMode)
	}
	var wf client.Format
	switch cfg.wireFmt {
	case "", "json":
		wf = client.JSON
	case "binary":
		wf = client.Binary
	default:
		return fmt.Errorf("-wire must be json or binary, got %q", cfg.wireFmt)
	}
	c := client.New(normalizeBase(cfg.addr), nil, client.WithWire(wf))
	ctx := context.Background()
	h, err := c.Health(ctx)
	if err != nil {
		return fmt.Errorf("server not healthy at %s: %w", cfg.addr, err)
	}
	n, k := h.N, h.K
	fmt.Fprintf(out, "# target %s: n=%d k=%d epoch=%d wire=%s\n", normalizeBase(cfg.addr), n, k, h.Epoch, wf)

	// Seed labels so served embeddings carry mass (an unlabeled graph
	// embeds to all-zero rows).
	if cfg.labelFrac > 0 && k > 0 {
		budget := int(cfg.labelFrac * float64(n))
		for lo := 0; lo < budget; lo += 4096 {
			hi := min(lo+4096, budget)
			ups := make([]dyn.LabelUpdate, 0, hi-lo)
			for v := lo; v < hi; v++ {
				ups = append(ups, dyn.LabelUpdate{V: graph.NodeID(v), Class: int32(v % k)})
			}
			if _, err := c.UpdateLabels(ctx, ups); err != nil {
				return fmt.Errorf("seeding labels: %w", err)
			}
		}
		fmt.Fprintf(out, "# labeled %d vertices round-robin over %d classes\n", budget, k)
	}

	lctx, cancel := context.WithTimeout(ctx, cfg.duration)
	defer cancel()
	var cnt counters
	var wg sync.WaitGroup
	start := time.Now()

	for w := 0; w < cfg.writers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r := xrand.New(cfg.seed + uint64(1000+id))
			var backlog [][]graph.Edge // own acked batches, eligible for deletion
			for lctx.Err() == nil {
				if len(backlog) > 0 && r.Float64() < cfg.deleteFrac {
					batch := backlog[0]
					if _, err := c.DeleteEdges(lctx, batch); err != nil {
						if done(lctx, err) {
							return
						}
						if errors.Is(err, client.ErrBacklog) {
							cnt.retries.Add(1)
							time.Sleep(2 * time.Millisecond)
							continue
						}
						cnt.errors.Add(1)
						continue
					}
					backlog = backlog[1:]
					cnt.deletes.Add(int64(len(batch)))
					continue
				}
				batch := randEdges(r, n, k, cfg.batch, cfg.blockFrac)
				if _, err := c.InsertEdges(lctx, batch); err != nil {
					if done(lctx, err) {
						return
					}
					if errors.Is(err, client.ErrBacklog) {
						cnt.retries.Add(1)
						time.Sleep(2 * time.Millisecond)
						continue
					}
					cnt.errors.Add(1)
					continue
				}
				cnt.inserts.Add(int64(len(batch)))
				backlog = append(backlog, batch)
			}
		}(w)
	}
	for rd := 0; rd < cfg.readers; rd++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r := xrand.New(cfg.seed + uint64(2000+id))
			for lctx.Err() == nil {
				if _, err := c.Embedding(lctx, graph.NodeID(r.Intn(n))); err != nil {
					if done(lctx, err) {
						return
					}
					cnt.errors.Add(1)
					continue
				}
				cnt.queries.Add(1)
			}
		}(rd)
	}
	for br := 0; br < cfg.batchReaders; br++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r := xrand.New(cfg.seed + uint64(3000+id))
			vs := make([]graph.NodeID, max(cfg.readBatch, 1))
			for lctx.Err() == nil {
				for i := range vs {
					vs[i] = graph.NodeID(r.Intn(n))
				}
				resp, err := c.Embeddings(lctx, vs)
				if err != nil {
					if done(lctx, err) {
						return
					}
					cnt.errors.Add(1)
					continue
				}
				cnt.batchReads.Add(1)
				cnt.batchRows.Add(int64(len(resp.Rows)))
			}
		}(br)
	}
	// One lock-free latency histogram shared by every neighbor reader —
	// the same instrument the server uses, so the client-side p50 and a
	// scraped server-side p50 are estimated identically.
	nbrLat := metrics.NewHistogram(metrics.DefLatencyBuckets)
	for nr := 0; nr < cfg.nbrReaders; nr++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r := xrand.New(cfg.seed + uint64(4000+id))
			for lctx.Err() == nil {
				req := server.NeighborsRequest{
					V: graph.NodeID(r.Intn(n)), K: cfg.nbrK, Metric: cfg.nbrMetric,
					Mode: cfg.nbrMode, NProbe: cfg.nbrNProbe,
				}
				t0 := time.Now()
				if _, err := c.Neighbors(lctx, req); err != nil {
					if done(lctx, err) {
						return
					}
					cnt.errors.Add(1)
					continue
				}
				nbrLat.ObserveSince(t0)
				cnt.neighbors.Add(1)
			}
		}(nr)
	}
	// Replica followers: bootstrap from /v1/snapshot, then live off
	// /v1/delta on a polling cadence — the fan-out read pattern.
	reps := make([]*client.Replica, cfg.replicas)
	for i := range reps {
		reps[i] = client.NewReplica(c)
		wg.Add(1)
		go func(rep *client.Replica) {
			defer wg.Done()
			for lctx.Err() == nil {
				if _, err := rep.Sync(lctx); err != nil {
					if done(lctx, err) {
						return
					}
					cnt.errors.Add(1)
				}
				select {
				case <-lctx.Done():
					return
				case <-time.After(cfg.replicaSync):
				}
			}
		}(reps[i])
	}
	wg.Wait()
	secs := time.Since(start).Seconds()

	ins, del, q := cnt.inserts.Load(), cnt.deletes.Load(), cnt.queries.Load()
	fmt.Fprintf(out, "ingested %d ops (%d inserts + %d deletes) in %.2fs: %.0f acked ops/s from %d writers\n",
		ins+del, ins, del, secs, rate.PerSec(ins+del, secs), cfg.writers)
	fmt.Fprintf(out, "queried %d embedding rows: %.0f queries/s from %d readers\n",
		q, rate.PerSec(q, secs), cfg.readers)
	if cfg.batchReaders > 0 {
		fmt.Fprintf(out, "batched reads: %d requests / %d rows from %d readers (%.0f reads/s, %.0f rows/s)\n",
			cnt.batchReads.Load(), cnt.batchRows.Load(), cfg.batchReaders,
			rate.PerSec(cnt.batchReads.Load(), secs), rate.PerSec(cnt.batchRows.Load(), secs))
	}
	if cfg.nbrReaders > 0 {
		lat := nbrLat.Snapshot()
		fmt.Fprintf(out, "neighbor queries: %d top-%d by %s (%s) from %d readers (%.0f queries/s, p50 %.2f ms)\n",
			cnt.neighbors.Load(), cfg.nbrK, cfg.nbrMetric, cfg.nbrMode, cfg.nbrReaders,
			rate.PerSec(cnt.neighbors.Load(), secs), lat.Quantile(0.5)*1000)
	}
	for i, rep := range reps {
		rs := rep.Stats()
		perSync := int64(0)
		if rs.Syncs > 0 {
			perSync = rs.DeltaBytes / rs.Syncs
		}
		fmt.Fprintf(out, "replica %d: epoch %d, %d syncs (%d resyncs), %d delta rows applied, delta wire %d B (%d B/sync, payload %d B), snapshot wire %d B (payload %d B)\n",
			i, rs.Epoch, rs.Syncs, rs.Resyncs, rs.RowsApplied,
			rs.DeltaBytes, perSync, rs.DeltaPayloadBytes,
			rs.SnapshotBytes, rs.SnapshotPayloadBytes)
	}
	fmt.Fprintf(out, "backpressure retries %d, request errors %d\n",
		cnt.retries.Load(), cnt.errors.Load())
	st, err := c.Stats(ctx)
	if err != nil {
		return fmt.Errorf("final stats: %w", err)
	}
	co := st.Coalescer
	ratio := 0.0
	if co.Flushes > 0 {
		ratio = float64(co.Requests) / float64(co.Flushes)
	}
	fmt.Fprintf(out, "server: epoch %d, %d live edges, %d folds for %d write requests (%.1f requests/fold), %d publishes\n",
		st.Dyn.Epoch, st.Dyn.LiveEdges, co.Flushes, co.Requests, ratio, st.Dyn.Publishes)
	if cfg.metricsURL != "" {
		if err := scrapeMetrics(ctx, cfg.metricsURL, out); err != nil {
			return fmt.Errorf("metrics scrape: %w", err)
		}
	}
	if cfg.tracesURL != "" {
		if err := reportTraces(ctx, cfg.tracesURL, out); err != nil {
			return fmt.Errorf("trace fetch: %w", err)
		}
	}
	if cfg.nbrMode == "approx" && cfg.recallQueries > 0 {
		if err := measureRecall(ctx, c, n, cfg, out); err != nil {
			return fmt.Errorf("recall measurement: %w", err)
		}
	}
	if cfg.replicaVerify && len(reps) > 0 {
		if err := verifyReplicas(ctx, c, reps, out); err != nil {
			return err
		}
	}
	if cnt.errors.Load() > 0 {
		return fmt.Errorf("%d request errors", cnt.errors.Load())
	}
	if ins == 0 && cfg.writers > 0 {
		return fmt.Errorf("no inserts were acknowledged")
	}
	return nil
}

// scrapeMetrics pulls the server's own /metrics exposition at end of
// run and reports the server-side per-route latency quantiles — the
// same requests the closed loop timed from the client side, but
// measured inside the handler, so the gap between the two lines is
// pure network + client overhead.
func scrapeMetrics(ctx context.Context, url string, out io.Writer) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: HTTP %d", url, resp.StatusCode)
	}
	samples, err := metrics.ParseText(resp.Body)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "server metrics (%d samples scraped from %s):\n", len(samples), url)
	// Report every route the server saw, in exposition (sorted) order.
	seen := map[string]bool{}
	for _, s := range samples {
		route := s.Labels["route"]
		if s.Name != "gee_http_request_seconds_count" || route == "" || seen[route] {
			continue
		}
		seen[route] = true
		h := metrics.HistogramFromSamples(samples, "gee_http_request_seconds",
			map[string]string{"route": route})
		if h == nil || h.Count == 0 {
			continue
		}
		fmt.Fprintf(out, "  %-24s %8d reqs  p50 %8.3f ms  p99 %8.3f ms\n",
			route, h.Count, h.Quantile(0.5)*1000, h.Quantile(0.99)*1000)
	}
	for _, s := range samples {
		if s.Name == "gee_coalescer_queue_depth" {
			fmt.Fprintf(out, "  coalescer queue depth %g", s.Value)
			if h := metrics.HistogramFromSamples(samples, "gee_coalescer_batch_ops", nil); h != nil && h.Count > 0 {
				fmt.Fprintf(out, ", %.1f ops/batch mean over %d batches", h.Mean(), h.Count)
			}
			fmt.Fprintln(out)
			break
		}
	}
	return nil
}

// reportTraces pulls the server's /debug/traces dump after the load
// and prints the slowest retained write trace's per-stage breakdown —
// the decomposition (queue wait vs fold vs publish vs ack) of the
// worst write the server remembers, which aggregate histograms cannot
// show for any single request.
func reportTraces(ctx context.Context, url string, out io.Writer) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: HTTP %d", url, resp.StatusCode)
	}
	var dump server.TracesResponse
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		return err
	}
	writeRoutes := map[string]bool{
		"POST /v1/edges": true, "DELETE /v1/edges": true, "POST /v1/labels": true,
	}
	var slowest *server.TraceWire
	consider := func(ts []server.TraceWire) {
		for i := range ts {
			t := &ts[i]
			if writeRoutes[t.Name] && (slowest == nil || t.DurUS > slowest.DurUS) {
				slowest = t
			}
		}
	}
	consider(dump.Recent)
	for _, b := range dump.Buckets {
		consider(b.Traces)
	}
	if slowest == nil {
		fmt.Fprintf(out, "traces: no write traces retained at %s\n", url)
		return nil
	}
	fmt.Fprintf(out, "slowest write trace %s (%s, %.3f ms):", slowest.ID, slowest.Name,
		float64(slowest.DurUS)/1000)
	for _, sp := range slowest.Spans {
		fmt.Fprintf(out, " %s %.3f ms", sp.Name, float64(sp.DurUS)/1000)
	}
	fmt.Fprintln(out)
	return nil
}

// measureRecall runs the post-load recall check: the load window is
// closed and the writers are drained, so once a warmup lets the
// asynchronous index rebuild catch up to the published epoch, each
// approx answer and its exact oracle are computed against the same
// data. Recall counts an approx neighbor as a hit when it is at least
// as near as the oracle's k-th survivor (tie-tolerant: embedding rows
// carry exact duplicates, and id-set comparison would punish
// legitimate tie-breaking).
func measureRecall(ctx context.Context, c *client.Client, n int, cfg config, out io.Writer) error {
	r := xrand.New(cfg.seed + uint64(9000))
	sharded := false
	if meta, err := c.Partition(ctx); err == nil && meta.Shards > 1 {
		sharded = true
	}
	approxReq := func(v graph.NodeID) server.NeighborsRequest {
		return server.NeighborsRequest{
			V: v, K: cfg.nbrK, Metric: cfg.nbrMetric,
			Mode: "approx", NProbe: cfg.nbrNProbe,
		}
	}
	// Warm: each stale or cold approx query kicks the async rebuild;
	// poll until the index answers at the published epoch. Reports
	// indexed=false only when the server says it will never index
	// (n below its exact threshold, where recall is 1 by
	// construction) — a cold index above the threshold also answers
	// "exact" while its first build is in flight, and treating that as
	// below-threshold would fabricate a recall figure.
	warm := func() (indexed bool, err error) {
		for tries := 0; ; tries++ {
			resp, err := c.Neighbors(ctx, approxReq(graph.NodeID(r.Intn(n))))
			if err != nil {
				return false, err
			}
			switch {
			case sharded:
				// Per-shard epochs are independent counters, so the scalar
				// IndexEpoch == Epoch quiesce test can never hold here
				// (IndexEpoch is the min over shard indexes, Epoch the max
				// over shard publishes). Ask /statsz whether every
				// indexing shard's index has caught up to that shard's own
				// published epoch instead; the scatter query above kicked
				// any stale shard's rebuild. Shards below the exact
				// threshold never index and are exact by construction.
				st, err := c.Stats(ctx)
				if err != nil {
					return false, err
				}
				caughtUp, indexing := true, false
				for _, ss := range st.Shards {
					if !ss.Index.Indexing {
						continue
					}
					indexing = true
					if ss.Index.Epoch != ss.Dyn.Epoch {
						caughtUp = false
					}
				}
				if caughtUp {
					return indexing, nil
				}
			case resp.Mode == "approx" && resp.IndexEpoch == resp.Epoch:
				return true, nil
			case resp.Mode == "exact":
				st, err := c.Stats(ctx)
				if err != nil {
					return false, err
				}
				if !st.Index.Indexing {
					return false, nil
				}
			}
			if tries >= 300 {
				return false, fmt.Errorf("index never caught up to the published epoch (%d vs %d)",
					resp.IndexEpoch, resp.Epoch)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	indexed, err := warm()
	if err != nil {
		return err
	}
	if !indexed {
		fmt.Fprintf(out, "approx neighbor recall@%d: 1.000 (served exact: n=%d below the index threshold)\n",
			cfg.nbrK, n)
		return nil
	}
	var recall float64
	var indexEpoch uint64
	rewarms := 0
	for q := 0; q < cfg.recallQueries; q++ {
		v := graph.NodeID(r.Intn(n))
		ap, err := c.Neighbors(ctx, approxReq(v))
		if err != nil {
			return err
		}
		ex, err := c.Neighbors(ctx, server.NeighborsRequest{
			V: v, K: cfg.nbrK, Metric: cfg.nbrMetric, Mode: "exact",
		})
		if err != nil {
			return err
		}
		stale := ap.IndexEpoch != ex.Epoch
		if sharded {
			// The scalar comparison is meaningless across shards; what
			// matters is that no publish landed between the two scatter
			// reads — their per-shard epoch vectors must agree exactly.
			// (A shard whose index lags its snapshot serves that partial
			// from the exact scan, which can only raise recall.)
			stale = !maps.Equal(ap.Epochs, ex.Epochs)
		}
		if stale {
			// A straggler publish landed mid-phase (a write whose client
			// departed at the load deadline is still applied and
			// published). Stragglers are bounded by the writers'
			// in-flight requests, so re-warm and retry the sample; only
			// an epoch that *keeps* moving means a live writer.
			rewarms++
			if rewarms > 20 {
				return fmt.Errorf("epoch kept moving during the recall phase (%d vs %d): is a writer still running?",
					ap.IndexEpoch, ex.Epoch)
			}
			if _, err := warm(); err != nil {
				return err
			}
			q--
			continue
		}
		indexEpoch = ap.IndexEpoch
		if len(ex.Neighbors) == 0 {
			recall++
			continue
		}
		kth := ex.Neighbors[len(ex.Neighbors)-1].Dist
		eps := 1e-12 + 1e-12*kth
		hits := 0
		for _, nb := range ap.Neighbors {
			if nb.Dist <= kth+eps {
				hits++
			}
		}
		if hits > len(ex.Neighbors) {
			hits = len(ex.Neighbors)
		}
		recall += float64(hits) / float64(len(ex.Neighbors))
	}
	recall /= float64(cfg.recallQueries)
	nprobe := "default"
	if cfg.nbrNProbe > 0 {
		nprobe = fmt.Sprint(cfg.nbrNProbe)
	}
	fmt.Fprintf(out, "approx neighbor recall@%d: %.3f over %d queries (%s, nprobe %s, index epoch %d)\n",
		cfg.nbrK, recall, cfg.recallQueries, cfg.nbrMetric, nprobe, indexEpoch)
	return nil
}

// verifyReplicas syncs each replica to the primary's published epoch
// (the writers are done, so the server is quiescent) and compares it
// row by row against /v1/snapshot: every float must be bit-identical —
// the delta path reconstructs the snapshot stream's exact bytes, not
// an approximation of them.
func verifyReplicas(ctx context.Context, c *client.Client, reps []*client.Replica, out io.Writer) error {
	// A sharded server refuses the bare snapshot read; verify section by
	// section against the partition instead. A probe error falls through
	// to the legacy path (a server predating /v1/partition serves it).
	if meta, err := c.Partition(ctx); err == nil && meta.Shards > 1 {
		return verifyReplicasSharded(ctx, c, meta, reps, out)
	}
	snap, err := c.Snapshot(ctx)
	if err != nil {
		return fmt.Errorf("replica verify: %w", err)
	}
	for i, rep := range reps {
		for tries := 0; ; tries++ {
			s := rep.Snapshot()
			if s != nil && s.Epoch == snap.Epoch {
				break
			}
			if s != nil && s.Epoch > snap.Epoch {
				// The primary published after our snapshot fetch (a
				// straggling ack): re-anchor on the newer epoch.
				if snap, err = c.Snapshot(ctx); err != nil {
					return fmt.Errorf("replica verify: %w", err)
				}
				continue
			}
			if tries > 100 {
				epoch := "none"
				if s != nil {
					epoch = fmt.Sprint(s.Epoch)
				}
				return fmt.Errorf("replica %d stuck at epoch %s, primary at %d", i, epoch, snap.Epoch)
			}
			if _, err := rep.Sync(ctx); err != nil {
				return fmt.Errorf("replica %d verify sync: %w", i, err)
			}
		}
		s := rep.Snapshot()
		rn, rk := s.Dims()
		if s.Edges != snap.Edges || rn != snap.N || rk != snap.K {
			return fmt.Errorf("replica %d shape/edges mismatch: %d edges %dx%d vs %d edges %dx%d",
				i, s.Edges, rn, rk, snap.Edges, snap.N, snap.K)
		}
		row := make([]float64, snap.K)
		for v := 0; v < snap.N; v++ {
			if s.Y[v] != snap.Y[v] {
				return fmt.Errorf("replica %d: label of %d is %d, primary %d", i, v, s.Y[v], snap.Y[v])
			}
			// Both sides traveled the same wire format, so equality is
			// bitwise even on the float32 binary wire: the replica's
			// rows and the verification snapshot quantized identically.
			for col, x := range s.CopyRow(v, row) {
				if x != snap.Z[v][col] {
					return fmt.Errorf("replica %d: Z[%d][%d] = %v, primary %v (not bit-identical)",
						i, v, col, x, snap.Z[v][col])
				}
			}
		}
	}
	fmt.Fprintf(out, "replica verify OK: %d replica(s), %d rows bit-identical to the primary snapshot at epoch %d\n",
		len(reps), snap.N, snap.Epoch)
	return nil
}

// verifyReplicasSharded is the sharded verify: the primary's state is
// the union of per-shard sections, each at its own epoch, so each
// replica must converge onto the fetched sections' epoch vector and
// then match them row by row. The writers are done, so every shard is
// quiescent; a straggling publish just re-anchors that one section.
func verifyReplicasSharded(ctx context.Context, c *client.Client, meta shard.Meta, reps []*client.Replica, out io.Writer) error {
	secs := make([]server.SnapshotResponse, meta.Shards)
	fetch := func(i int) error {
		s, err := c.SnapshotShard(ctx, i)
		if err != nil {
			return fmt.Errorf("replica verify: shard %d: %w", i, err)
		}
		secs[i] = s
		return nil
	}
	for i := range secs {
		if err := fetch(i); err != nil {
			return err
		}
	}
	for i, rep := range reps {
		// Sync while the replica is behind on any shard; refetch a
		// section the replica has already passed. Bit-comparison needs
		// exact per-shard epoch equality, not just coverage.
		for tries := 0; ; tries++ {
			s := rep.Snapshot()
			behind, ahead := s == nil || s.Epochs == nil, false
			if !behind {
				for sh := 0; sh < meta.Shards; sh++ {
					switch {
					case s.Epochs[sh] < secs[sh].Epoch:
						behind = true
					case s.Epochs[sh] > secs[sh].Epoch:
						if err := fetch(sh); err != nil {
							return err
						}
						ahead = true
					}
				}
			}
			if !behind && !ahead {
				break
			}
			if tries > 100 {
				return fmt.Errorf("replica %d never converged onto the primary's epoch vector", i)
			}
			if behind {
				if _, err := rep.Sync(ctx); err != nil {
					return fmt.Errorf("replica %d verify sync: %w", i, err)
				}
			}
		}
		s := rep.Snapshot()
		rn, rk := s.Dims()
		if rn != meta.N || rk != meta.K {
			return fmt.Errorf("replica %d shape mismatch: %dx%d vs %dx%d", i, rn, rk, meta.N, meta.K)
		}
		row := make([]float64, meta.K)
		for sh := 0; sh < meta.Shards; sh++ {
			lo := int(meta.Bounds[sh])
			sec := &secs[sh]
			for u := 0; u < sec.N; u++ {
				v := lo + u
				if s.Y[v] != sec.Y[u] {
					return fmt.Errorf("replica %d: label of %d is %d, shard %d has %d",
						i, v, s.Y[v], sh, sec.Y[u])
				}
				// Same wire format on both sides, so equality is bitwise
				// even over the float32 binary frames.
				for col, x := range s.CopyRow(v, row) {
					if x != sec.Z[u][col] {
						return fmt.Errorf("replica %d: Z[%d][%d] = %v, shard %d has %v (not bit-identical)",
							i, v, col, x, sh, sec.Z[u][col])
					}
				}
			}
		}
	}
	rows := 0
	ev := make(shard.EpochVector, meta.Shards)
	for i := range secs {
		rows += secs[i].N
		ev[i] = secs[i].Epoch
	}
	fmt.Fprintf(out, "replica verify OK: %d replica(s), %d rows bit-identical to %d shard sections at epoch vector %v\n",
		len(reps), rows, meta.Shards, ev)
	return nil
}
