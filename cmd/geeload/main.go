// Command geeload is a closed-loop load generator for the GEE serving
// API (internal/server): a configurable mix of writer goroutines
// (batched edge inserts, with optional deletes of their own earlier
// batches) and read-side goroutines — single-row embedding queries,
// batched multi-vertex reads, top-k neighbor searches, and replica
// followers syncing over /v1/delta — drives a running server, e.g.
// `geeserve -serve :8080`, for a fixed duration and reports the
// achieved per-endpoint throughput.
//
// Closed loop means every worker waits for its previous request's
// response (for writes: the publish ack) before issuing the next, so
// the reported rates are acknowledged end-to-end throughput, not an
// open-loop submission rate. Writers that hit ingest backpressure
// (HTTP 429) back off briefly and retry; the retry count is reported.
//
// With -replica-verify, after the load window closes each replica is
// synced to the primary's published epoch and compared row by row
// against /v1/snapshot — every float must be bit-identical, or the run
// fails. This is the end-to-end check that delta streaming loses
// nothing.
//
//	geeload -addr http://127.0.0.1:8080 -duration 5s -writers 4 -readers 4
//	geeload -addr ... -batch-readers 2 -neighbor-readers 2 -replicas 2 -replica-verify
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dyn"
	"repro/internal/graph"
	"repro/internal/rate"
	"repro/internal/server/client"
	"repro/internal/xrand"
)

type config struct {
	addr          string
	duration      time.Duration
	writers       int
	readers       int
	batchReaders  int
	readBatch     int
	nbrReaders    int
	nbrK          int
	nbrMetric     string
	replicas      int
	replicaSync   time.Duration
	replicaVerify bool
	batch         int
	deleteFrac    float64
	labelFrac     float64
	seed          uint64
}

// counters aggregates what the load achieved.
type counters struct {
	inserts    atomic.Int64 // acked insert ops
	deletes    atomic.Int64 // acked delete ops
	queries    atomic.Int64 // completed embedding reads
	batchReads atomic.Int64 // completed batched multi-vertex reads
	batchRows  atomic.Int64 // rows returned by batched reads
	neighbors  atomic.Int64 // completed top-k neighbor queries
	retries    atomic.Int64 // 429 backoffs
	errors     atomic.Int64 // non-backpressure request failures
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", "http://127.0.0.1:8080", "serving API base URL")
	flag.DurationVar(&cfg.duration, "duration", 5*time.Second, "load duration")
	flag.IntVar(&cfg.writers, "writers", 4, "concurrent writer goroutines")
	flag.IntVar(&cfg.readers, "readers", 4, "concurrent single-row reader goroutines")
	flag.IntVar(&cfg.batchReaders, "batch-readers", 0, "concurrent batched-read goroutines (POST /v1/embeddings)")
	flag.IntVar(&cfg.readBatch, "read-batch", 64, "vertices per batched read")
	flag.IntVar(&cfg.nbrReaders, "neighbor-readers", 0, "concurrent top-k neighbor query goroutines (POST /v1/neighbors)")
	flag.IntVar(&cfg.nbrK, "neighbor-k", 10, "k for neighbor queries")
	flag.StringVar(&cfg.nbrMetric, "neighbor-metric", "l2", "neighbor metric: l2 or cosine")
	flag.IntVar(&cfg.replicas, "replicas", 0, "replica followers syncing over GET /v1/delta")
	flag.DurationVar(&cfg.replicaSync, "replica-sync", 25*time.Millisecond, "pause between replica sync rounds")
	flag.BoolVar(&cfg.replicaVerify, "replica-verify", false, "after the load, verify each replica is bit-identical to /v1/snapshot")
	flag.IntVar(&cfg.batch, "batch", 64, "edges per insert request")
	flag.Float64Var(&cfg.deleteFrac, "delete-frac", 0.2, "fraction of writer requests that delete a previously inserted batch")
	flag.Float64Var(&cfg.labelFrac, "label-frac", 0.2, "fraction of vertices labeled round-robin before the load starts")
	flag.Uint64Var(&cfg.seed, "seed", 1, "workload seed")
	flag.Parse()
	if err := run(cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "geeload:", err)
		os.Exit(1)
	}
}

// normalizeBase turns a bare host:port into an http:// base URL.
func normalizeBase(addr string) string {
	if strings.HasPrefix(addr, "http://") || strings.HasPrefix(addr, "https://") {
		return addr
	}
	return "http://" + addr
}

// randEdges fills a batch of random edges over [0, n).
func randEdges(r *xrand.Rand, n, m int) []graph.Edge {
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{
			U: graph.NodeID(r.Intn(n)), V: graph.NodeID(r.Intn(n)),
			W: float32(r.Intn(4) + 1),
		}
	}
	return edges
}

// done reports whether an error just means the load window closed.
func done(ctx context.Context, err error) bool {
	return ctx.Err() != nil || errors.Is(err, context.DeadlineExceeded)
}

func run(cfg config, out io.Writer) error {
	c := client.New(normalizeBase(cfg.addr), nil)
	ctx := context.Background()
	h, err := c.Health(ctx)
	if err != nil {
		return fmt.Errorf("server not healthy at %s: %w", cfg.addr, err)
	}
	n, k := h.N, h.K
	fmt.Fprintf(out, "# target %s: n=%d k=%d epoch=%d\n", normalizeBase(cfg.addr), n, k, h.Epoch)

	// Seed labels so served embeddings carry mass (an unlabeled graph
	// embeds to all-zero rows).
	if cfg.labelFrac > 0 && k > 0 {
		budget := int(cfg.labelFrac * float64(n))
		for lo := 0; lo < budget; lo += 4096 {
			hi := min(lo+4096, budget)
			ups := make([]dyn.LabelUpdate, 0, hi-lo)
			for v := lo; v < hi; v++ {
				ups = append(ups, dyn.LabelUpdate{V: graph.NodeID(v), Class: int32(v % k)})
			}
			if _, err := c.UpdateLabels(ctx, ups); err != nil {
				return fmt.Errorf("seeding labels: %w", err)
			}
		}
		fmt.Fprintf(out, "# labeled %d vertices round-robin over %d classes\n", budget, k)
	}

	lctx, cancel := context.WithTimeout(ctx, cfg.duration)
	defer cancel()
	var cnt counters
	var wg sync.WaitGroup
	start := time.Now()

	for w := 0; w < cfg.writers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r := xrand.New(cfg.seed + uint64(1000+id))
			var backlog [][]graph.Edge // own acked batches, eligible for deletion
			for lctx.Err() == nil {
				if len(backlog) > 0 && r.Float64() < cfg.deleteFrac {
					batch := backlog[0]
					if _, err := c.DeleteEdges(lctx, batch); err != nil {
						if done(lctx, err) {
							return
						}
						if errors.Is(err, client.ErrBacklog) {
							cnt.retries.Add(1)
							time.Sleep(2 * time.Millisecond)
							continue
						}
						cnt.errors.Add(1)
						continue
					}
					backlog = backlog[1:]
					cnt.deletes.Add(int64(len(batch)))
					continue
				}
				batch := randEdges(r, n, cfg.batch)
				if _, err := c.InsertEdges(lctx, batch); err != nil {
					if done(lctx, err) {
						return
					}
					if errors.Is(err, client.ErrBacklog) {
						cnt.retries.Add(1)
						time.Sleep(2 * time.Millisecond)
						continue
					}
					cnt.errors.Add(1)
					continue
				}
				cnt.inserts.Add(int64(len(batch)))
				backlog = append(backlog, batch)
			}
		}(w)
	}
	for rd := 0; rd < cfg.readers; rd++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r := xrand.New(cfg.seed + uint64(2000+id))
			for lctx.Err() == nil {
				if _, err := c.Embedding(lctx, graph.NodeID(r.Intn(n))); err != nil {
					if done(lctx, err) {
						return
					}
					cnt.errors.Add(1)
					continue
				}
				cnt.queries.Add(1)
			}
		}(rd)
	}
	for br := 0; br < cfg.batchReaders; br++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r := xrand.New(cfg.seed + uint64(3000+id))
			vs := make([]graph.NodeID, max(cfg.readBatch, 1))
			for lctx.Err() == nil {
				for i := range vs {
					vs[i] = graph.NodeID(r.Intn(n))
				}
				resp, err := c.Embeddings(lctx, vs)
				if err != nil {
					if done(lctx, err) {
						return
					}
					cnt.errors.Add(1)
					continue
				}
				cnt.batchReads.Add(1)
				cnt.batchRows.Add(int64(len(resp.Rows)))
			}
		}(br)
	}
	for nr := 0; nr < cfg.nbrReaders; nr++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r := xrand.New(cfg.seed + uint64(4000+id))
			for lctx.Err() == nil {
				if _, err := c.Neighbors(lctx, graph.NodeID(r.Intn(n)), cfg.nbrK, cfg.nbrMetric); err != nil {
					if done(lctx, err) {
						return
					}
					cnt.errors.Add(1)
					continue
				}
				cnt.neighbors.Add(1)
			}
		}(nr)
	}
	// Replica followers: bootstrap from /v1/snapshot, then live off
	// /v1/delta on a polling cadence — the fan-out read pattern.
	reps := make([]*client.Replica, cfg.replicas)
	for i := range reps {
		reps[i] = client.NewReplica(c)
		wg.Add(1)
		go func(rep *client.Replica) {
			defer wg.Done()
			for lctx.Err() == nil {
				if _, err := rep.Sync(lctx); err != nil {
					if done(lctx, err) {
						return
					}
					cnt.errors.Add(1)
				}
				select {
				case <-lctx.Done():
					return
				case <-time.After(cfg.replicaSync):
				}
			}
		}(reps[i])
	}
	wg.Wait()
	secs := time.Since(start).Seconds()

	ins, del, q := cnt.inserts.Load(), cnt.deletes.Load(), cnt.queries.Load()
	fmt.Fprintf(out, "ingested %d ops (%d inserts + %d deletes) in %.2fs: %.0f acked ops/s from %d writers\n",
		ins+del, ins, del, secs, rate.PerSec(ins+del, secs), cfg.writers)
	fmt.Fprintf(out, "queried %d embedding rows: %.0f queries/s from %d readers\n",
		q, rate.PerSec(q, secs), cfg.readers)
	if cfg.batchReaders > 0 {
		fmt.Fprintf(out, "batched reads: %d requests / %d rows from %d readers (%.0f reads/s, %.0f rows/s)\n",
			cnt.batchReads.Load(), cnt.batchRows.Load(), cfg.batchReaders,
			rate.PerSec(cnt.batchReads.Load(), secs), rate.PerSec(cnt.batchRows.Load(), secs))
	}
	if cfg.nbrReaders > 0 {
		fmt.Fprintf(out, "neighbor queries: %d top-%d by %s from %d readers (%.0f queries/s)\n",
			cnt.neighbors.Load(), cfg.nbrK, cfg.nbrMetric, cfg.nbrReaders,
			rate.PerSec(cnt.neighbors.Load(), secs))
	}
	for i, rep := range reps {
		rs := rep.Stats()
		fmt.Fprintf(out, "replica %d: epoch %d, %d syncs (%d resyncs), %d delta rows applied, %d delta bytes vs %d snapshot bytes\n",
			i, rs.Epoch, rs.Syncs, rs.Resyncs, rs.RowsApplied, rs.DeltaBytes, rs.SnapshotBytes)
	}
	fmt.Fprintf(out, "backpressure retries %d, request errors %d\n",
		cnt.retries.Load(), cnt.errors.Load())
	st, err := c.Stats(ctx)
	if err != nil {
		return fmt.Errorf("final stats: %w", err)
	}
	co := st.Coalescer
	ratio := 0.0
	if co.Flushes > 0 {
		ratio = float64(co.Requests) / float64(co.Flushes)
	}
	fmt.Fprintf(out, "server: epoch %d, %d live edges, %d folds for %d write requests (%.1f requests/fold), %d publishes\n",
		st.Dyn.Epoch, st.Dyn.LiveEdges, co.Flushes, co.Requests, ratio, st.Dyn.Publishes)
	if cfg.replicaVerify && len(reps) > 0 {
		if err := verifyReplicas(ctx, c, reps, out); err != nil {
			return err
		}
	}
	if cnt.errors.Load() > 0 {
		return fmt.Errorf("%d request errors", cnt.errors.Load())
	}
	if ins == 0 && cfg.writers > 0 {
		return fmt.Errorf("no inserts were acknowledged")
	}
	return nil
}

// verifyReplicas syncs each replica to the primary's published epoch
// (the writers are done, so the server is quiescent) and compares it
// row by row against /v1/snapshot: every float must be bit-identical —
// the delta path reconstructs the snapshot stream's exact bytes, not
// an approximation of them.
func verifyReplicas(ctx context.Context, c *client.Client, reps []*client.Replica, out io.Writer) error {
	snap, err := c.Snapshot(ctx)
	if err != nil {
		return fmt.Errorf("replica verify: %w", err)
	}
	for i, rep := range reps {
		for tries := 0; ; tries++ {
			s := rep.Snapshot()
			if s != nil && s.Epoch == snap.Epoch {
				break
			}
			if s != nil && s.Epoch > snap.Epoch {
				// The primary published after our snapshot fetch (a
				// straggling ack): re-anchor on the newer epoch.
				if snap, err = c.Snapshot(ctx); err != nil {
					return fmt.Errorf("replica verify: %w", err)
				}
				continue
			}
			if tries > 100 {
				epoch := "none"
				if s != nil {
					epoch = fmt.Sprint(s.Epoch)
				}
				return fmt.Errorf("replica %d stuck at epoch %s, primary at %d", i, epoch, snap.Epoch)
			}
			if _, err := rep.Sync(ctx); err != nil {
				return fmt.Errorf("replica %d verify sync: %w", i, err)
			}
		}
		s := rep.Snapshot()
		if s.Edges != snap.Edges || s.Z.R != snap.N || s.Z.C != snap.K {
			return fmt.Errorf("replica %d shape/edges mismatch: %d edges %dx%d vs %d edges %dx%d",
				i, s.Edges, s.Z.R, s.Z.C, snap.Edges, snap.N, snap.K)
		}
		for v := 0; v < snap.N; v++ {
			if s.Y[v] != snap.Y[v] {
				return fmt.Errorf("replica %d: label of %d is %d, primary %d", i, v, s.Y[v], snap.Y[v])
			}
			row := s.Z.Row(v)
			for col := range row {
				if row[col] != snap.Z[v][col] {
					return fmt.Errorf("replica %d: Z[%d][%d] = %v, primary %v (not bit-identical)",
						i, v, col, row[col], snap.Z[v][col])
				}
			}
		}
	}
	fmt.Fprintf(out, "replica verify OK: %d replica(s), %d rows bit-identical to the primary snapshot at epoch %d\n",
		len(reps), snap.N, snap.Epoch)
	return nil
}
