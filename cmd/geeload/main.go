// Command geeload is a closed-loop load generator for the GEE serving
// API (internal/server): a configurable mix of writer goroutines
// (batched edge inserts, with optional deletes of their own earlier
// batches) and reader goroutines (single-row embedding queries) drives
// a running server — e.g. `geeserve -serve :8080` — for a fixed
// duration and reports the achieved ingest and query throughput.
//
// Closed loop means every worker waits for its previous request's
// response (for writes: the publish ack) before issuing the next, so
// the reported rates are acknowledged end-to-end throughput, not an
// open-loop submission rate. Writers that hit ingest backpressure
// (HTTP 429) back off briefly and retry; the retry count is reported.
//
//	geeload -addr http://127.0.0.1:8080 -duration 5s -writers 4 -readers 4
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dyn"
	"repro/internal/graph"
	"repro/internal/server/client"
	"repro/internal/xrand"
)

type config struct {
	addr       string
	duration   time.Duration
	writers    int
	readers    int
	batch      int
	deleteFrac float64
	labelFrac  float64
	seed       uint64
}

// counters aggregates what the load achieved.
type counters struct {
	inserts atomic.Int64 // acked insert ops
	deletes atomic.Int64 // acked delete ops
	queries atomic.Int64 // completed embedding reads
	retries atomic.Int64 // 429 backoffs
	errors  atomic.Int64 // non-backpressure request failures
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", "http://127.0.0.1:8080", "serving API base URL")
	flag.DurationVar(&cfg.duration, "duration", 5*time.Second, "load duration")
	flag.IntVar(&cfg.writers, "writers", 4, "concurrent writer goroutines")
	flag.IntVar(&cfg.readers, "readers", 4, "concurrent reader goroutines")
	flag.IntVar(&cfg.batch, "batch", 64, "edges per insert request")
	flag.Float64Var(&cfg.deleteFrac, "delete-frac", 0.2, "fraction of writer requests that delete a previously inserted batch")
	flag.Float64Var(&cfg.labelFrac, "label-frac", 0.2, "fraction of vertices labeled round-robin before the load starts")
	flag.Uint64Var(&cfg.seed, "seed", 1, "workload seed")
	flag.Parse()
	if err := run(cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "geeload:", err)
		os.Exit(1)
	}
}

// normalizeBase turns a bare host:port into an http:// base URL.
func normalizeBase(addr string) string {
	if strings.HasPrefix(addr, "http://") || strings.HasPrefix(addr, "https://") {
		return addr
	}
	return "http://" + addr
}

// randEdges fills a batch of random edges over [0, n).
func randEdges(r *xrand.Rand, n, m int) []graph.Edge {
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{
			U: graph.NodeID(r.Intn(n)), V: graph.NodeID(r.Intn(n)),
			W: float32(r.Intn(4) + 1),
		}
	}
	return edges
}

// done reports whether an error just means the load window closed.
func done(ctx context.Context, err error) bool {
	return ctx.Err() != nil || errors.Is(err, context.DeadlineExceeded)
}

func run(cfg config, out io.Writer) error {
	c := client.New(normalizeBase(cfg.addr), nil)
	ctx := context.Background()
	h, err := c.Health(ctx)
	if err != nil {
		return fmt.Errorf("server not healthy at %s: %w", cfg.addr, err)
	}
	n, k := h.N, h.K
	fmt.Fprintf(out, "# target %s: n=%d k=%d epoch=%d\n", normalizeBase(cfg.addr), n, k, h.Epoch)

	// Seed labels so served embeddings carry mass (an unlabeled graph
	// embeds to all-zero rows).
	if cfg.labelFrac > 0 && k > 0 {
		budget := int(cfg.labelFrac * float64(n))
		for lo := 0; lo < budget; lo += 4096 {
			hi := min(lo+4096, budget)
			ups := make([]dyn.LabelUpdate, 0, hi-lo)
			for v := lo; v < hi; v++ {
				ups = append(ups, dyn.LabelUpdate{V: graph.NodeID(v), Class: int32(v % k)})
			}
			if _, err := c.UpdateLabels(ctx, ups); err != nil {
				return fmt.Errorf("seeding labels: %w", err)
			}
		}
		fmt.Fprintf(out, "# labeled %d vertices round-robin over %d classes\n", budget, k)
	}

	lctx, cancel := context.WithTimeout(ctx, cfg.duration)
	defer cancel()
	var cnt counters
	var wg sync.WaitGroup
	start := time.Now()

	for w := 0; w < cfg.writers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r := xrand.New(cfg.seed + uint64(1000+id))
			var backlog [][]graph.Edge // own acked batches, eligible for deletion
			for lctx.Err() == nil {
				if len(backlog) > 0 && r.Float64() < cfg.deleteFrac {
					batch := backlog[0]
					if _, err := c.DeleteEdges(lctx, batch); err != nil {
						if done(lctx, err) {
							return
						}
						if errors.Is(err, client.ErrBacklog) {
							cnt.retries.Add(1)
							time.Sleep(2 * time.Millisecond)
							continue
						}
						cnt.errors.Add(1)
						continue
					}
					backlog = backlog[1:]
					cnt.deletes.Add(int64(len(batch)))
					continue
				}
				batch := randEdges(r, n, cfg.batch)
				if _, err := c.InsertEdges(lctx, batch); err != nil {
					if done(lctx, err) {
						return
					}
					if errors.Is(err, client.ErrBacklog) {
						cnt.retries.Add(1)
						time.Sleep(2 * time.Millisecond)
						continue
					}
					cnt.errors.Add(1)
					continue
				}
				cnt.inserts.Add(int64(len(batch)))
				backlog = append(backlog, batch)
			}
		}(w)
	}
	for rd := 0; rd < cfg.readers; rd++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r := xrand.New(cfg.seed + uint64(2000+id))
			for lctx.Err() == nil {
				if _, err := c.Embedding(lctx, graph.NodeID(r.Intn(n))); err != nil {
					if done(lctx, err) {
						return
					}
					cnt.errors.Add(1)
					continue
				}
				cnt.queries.Add(1)
			}
		}(rd)
	}
	wg.Wait()
	secs := time.Since(start).Seconds()

	ins, del, q := cnt.inserts.Load(), cnt.deletes.Load(), cnt.queries.Load()
	fmt.Fprintf(out, "ingested %d ops (%d inserts + %d deletes) in %.2fs: %.0f acked ops/s from %d writers\n",
		ins+del, ins, del, secs, float64(ins+del)/secs, cfg.writers)
	fmt.Fprintf(out, "queried %d embedding rows: %.0f queries/s from %d readers\n",
		q, float64(q)/secs, cfg.readers)
	fmt.Fprintf(out, "backpressure retries %d, request errors %d\n",
		cnt.retries.Load(), cnt.errors.Load())
	st, err := c.Stats(ctx)
	if err != nil {
		return fmt.Errorf("final stats: %w", err)
	}
	co := st.Coalescer
	ratio := 0.0
	if co.Flushes > 0 {
		ratio = float64(co.Requests) / float64(co.Flushes)
	}
	fmt.Fprintf(out, "server: epoch %d, %d live edges, %d folds for %d write requests (%.1f requests/fold), %d publishes\n",
		st.Dyn.Epoch, st.Dyn.LiveEdges, co.Flushes, co.Requests, ratio, st.Dyn.Publishes)
	if cnt.errors.Load() > 0 {
		return fmt.Errorf("%d request errors", cnt.errors.Load())
	}
	if ins == 0 {
		return fmt.Errorf("no inserts were acknowledged")
	}
	return nil
}
