package main

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/dyn"
	"repro/internal/labels"
	"repro/internal/server"
	"repro/internal/xrand"
)

func TestNormalizeBase(t *testing.T) {
	for in, want := range map[string]string{
		"http://127.0.0.1:8080": "http://127.0.0.1:8080",
		"https://gee.example":   "https://gee.example",
		"127.0.0.1:8080":        "http://127.0.0.1:8080",
		"localhost:9":           "http://localhost:9",
	} {
		if got := normalizeBase(in); got != want {
			t.Errorf("normalizeBase(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestRandEdges(t *testing.T) {
	r := xrand.New(7)
	edges := randEdges(r, 50, 4, 200, 0)
	if len(edges) != 200 {
		t.Fatalf("%d edges", len(edges))
	}
	for i, e := range edges {
		if e.U >= 50 || e.V >= 50 {
			t.Fatalf("edge %d out of range: %+v", i, e)
		}
		if e.W < 1 || e.W > 4 {
			t.Fatalf("edge %d weight %v outside [1,4]", i, e.W)
		}
	}
	// blockFrac 1: every edge stays within its planted block (u ≡ v
	// mod k), the structure the recall workload relies on.
	for i, e := range randEdges(r, 50, 4, 200, 1) {
		if e.U >= 50 || e.V >= 50 || e.U%4 != e.V%4 {
			t.Fatalf("block edge %d escapes its block: %+v", i, e)
		}
	}
}

// TestLoadAgainstServer runs the whole closed loop against an
// in-process serving stack: the run must acknowledge inserts, complete
// queries, and leave the server with a consistent live-edge count.
func TestLoadAgainstServer(t *testing.T) {
	for _, wire := range []string{"json", "binary"} {
		t.Run(wire, func(t *testing.T) { testLoadAgainstServer(t, wire) })
	}
}

func testLoadAgainstServer(t *testing.T, wire string) {
	const n, k = 500, 4
	y := make([]int32, n)
	for i := range y {
		y[i] = labels.Unknown
	}
	d, err := dyn.New(n, y, dyn.Options{K: k, PublishEvery: 256})
	if err != nil {
		t.Fatal(err)
	}
	s := server.New(d, server.Options{})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		if err := s.Close(); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		ts.Close()
	}()

	var out strings.Builder
	cfg := config{
		addr:          ts.URL,
		duration:      400 * time.Millisecond,
		writers:       3,
		readers:       2,
		batchReaders:  1,
		readBatch:     8,
		nbrReaders:    1,
		nbrK:          5,
		nbrMetric:     "l2",
		nbrMode:       "approx",
		recallQueries: 4,
		replicas:      1,
		replicaSync:   10 * time.Millisecond,
		replicaVerify: true,
		wireFmt:       wire,
		batch:         16,
		deleteFrac:    0.3,
		labelFrac:     0.5,
		seed:          42,
	}
	if err := run(cfg, &out); err != nil {
		t.Fatalf("load run failed: %v\noutput:\n%s", err, out.String())
	}
	st := d.Stats()
	if st.Inserts == 0 {
		t.Fatal("no inserts reached the embedder")
	}
	if st.LiveEdges != st.Inserts-st.Deletes {
		t.Fatalf("live edges %d != %d inserts - %d deletes", st.LiveEdges, st.Inserts, st.Deletes)
	}
	for _, want := range []string{
		"acked ops/s", "queries/s", "requests/fold",
		"batched reads:", "neighbor queries:", "replica 0:", "replica verify OK",
		"wire=" + wire, "B/sync",
		// n=500 sits below the index threshold, so the recall phase
		// reports the served-exact degenerate form.
		"approx neighbor recall@5: 1.000 (served exact",
	} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("report missing %q:\n%s", want, out.String())
		}
	}
}
