// Command gee embeds a graph file with One-Hot Graph Encoder Embedding.
//
// Usage:
//
//	gee -graph g.txt [-format edgelist|adj|bin] [-impl parallel] \
//	    [-k 50] [-label-frac 0.1] [-labels y.txt] [-workers N] \
//	    [-laplacian] [-out z.tsv] [-seed 1]
//
// Labels come from -labels (one integer per line, -1 = unknown) or, when
// absent, from the paper's protocol: uniform over [0, K) for
// -label-frac of the nodes.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "input graph file (required)")
		format    = flag.String("format", "edgelist", "graph format: edgelist, adj, bin")
		implName  = flag.String("impl", "parallel", "implementation: reference, optimized, serial, parallel, unsafe, replicated, sharded")
		k         = flag.Int("k", 50, "number of classes / embedding dimensions")
		labelFrac = flag.Float64("label-frac", 0.1, "fraction of nodes labeled (ignored with -labels)")
		labelPath = flag.String("labels", "", "label file, one int per line (-1 = unknown)")
		workers   = flag.Int("workers", 0, "worker count (0 = GOMAXPROCS)")
		laplacian = flag.Bool("laplacian", false, "degree-normalized Laplacian variant")
		outPath   = flag.String("out", "", "embedding output TSV ('' = stdout)")
		seed      = flag.Uint64("seed", 1, "label sampling seed")
	)
	flag.Parse()
	if *graphPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*graphPath, *format, *implName, *k, *labelFrac, *labelPath,
		*workers, *laplacian, *outPath, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "gee:", err)
		os.Exit(1)
	}
}

func run(graphPath, format, implName string, k int, labelFrac float64,
	labelPath string, workers int, laplacian bool, outPath string, seed uint64) error {
	impl, err := parseImpl(implName)
	if err != nil {
		return err
	}
	loadStart := time.Now()
	var g *repro.Graph
	switch format {
	case "edgelist":
		el, err := repro.LoadEdgeList(graphPath)
		if err != nil {
			return err
		}
		g = repro.BuildGraph(workers, el)
	case "adj":
		if g, err = repro.LoadAdjacency(graphPath); err != nil {
			return err
		}
	case "bin":
		if g, err = repro.LoadBinary(graphPath); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown format %q", format)
	}
	fmt.Fprintf(os.Stderr, "loaded n=%d m=%d in %v\n", g.N, g.NumEdges(), time.Since(loadStart).Round(time.Millisecond))

	var y []int32
	if labelPath != "" {
		if y, err = readLabels(labelPath, g.N); err != nil {
			return err
		}
	} else {
		y = repro.SampleLabels(g.N, k, labelFrac, seed)
	}

	embedStart := time.Now()
	res, err := repro.EmbedGraph(impl, g, y, repro.Options{K: k, Workers: workers, Laplacian: laplacian})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "%v embedded n=%d into K=%d in %v\n",
		res.Impl, g.N, res.K, time.Since(embedStart).Round(time.Microsecond))

	out := os.Stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	return repro.WriteEmbedding(out, res.Z)
}

func parseImpl(name string) (repro.Impl, error) {
	switch strings.ToLower(name) {
	case "reference", "python":
		return repro.Reference, nil
	case "optimized", "numba":
		return repro.Optimized, nil
	case "serial", "ligra-serial":
		return repro.LigraSerial, nil
	case "parallel", "ligra", "ligra-parallel":
		return repro.LigraParallel, nil
	case "unsafe":
		return repro.LigraParallelUnsafe, nil
	case "replicated":
		return repro.Replicated, nil
	case "sharded", "sharded-parallel":
		return repro.ShardedParallel, nil
	}
	return 0, fmt.Errorf("unknown implementation %q", name)
}

func readLabels(path string, n int) ([]int32, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	y := make([]int32, 0, n)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		v, err := strconv.ParseInt(line, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("labels line %d: %w", len(y)+1, err)
		}
		y = append(y, int32(v))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(y) != n {
		return nil, fmt.Errorf("%d labels for %d vertices", len(y), n)
	}
	return y, nil
}
