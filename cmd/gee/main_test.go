package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
)

func writeTempGraph(t *testing.T, dir string) string {
	t.Helper()
	el := repro.NewErdosRenyi(2, 100, 800, 1)
	path := filepath.Join(dir, "g.txt")
	if err := repro.SaveEdgeList(path, el); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunEdgeListToTSV(t *testing.T) {
	dir := t.TempDir()
	gpath := writeTempGraph(t, dir)
	out := filepath.Join(dir, "z.tsv")
	if err := run(gpath, "edgelist", "parallel", 5, 0.2, "", 4, false, out, 1); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	z, err := repro.ReadEmbedding(f)
	if err != nil {
		t.Fatal(err)
	}
	if z.R != 100 || z.C != 5 {
		t.Fatalf("embedding shape %dx%d", z.R, z.C)
	}
}

func TestRunAllFormats(t *testing.T) {
	dir := t.TempDir()
	el := repro.NewErdosRenyi(2, 50, 300, 2)
	g := repro.BuildGraph(2, el)
	adj := filepath.Join(dir, "g.adj")
	bin := filepath.Join(dir, "g.bin")
	if err := repro.SaveAdjacency(adj, g); err != nil {
		t.Fatal(err)
	}
	if err := repro.SaveBinary(bin, g); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ path, format string }{{adj, "adj"}, {bin, "bin"}} {
		out := filepath.Join(dir, tc.format+".tsv")
		if err := run(tc.path, tc.format, "optimized", 3, 0.5, "", 2, false, out, 1); err != nil {
			t.Fatalf("%s: %v", tc.format, err)
		}
	}
	if err := run(adj, "nope", "parallel", 3, 0.5, "", 2, false, "", 1); err == nil {
		t.Fatal("bad format accepted")
	}
}

func TestRunWithLabelFile(t *testing.T) {
	dir := t.TempDir()
	gpath := writeTempGraph(t, dir)
	labels := filepath.Join(dir, "y.txt")
	var sb strings.Builder
	sb.WriteString("# labels\n")
	for i := 0; i < 100; i++ {
		if i%2 == 0 {
			sb.WriteString("1\n")
		} else {
			sb.WriteString("-1\n")
		}
	}
	if err := os.WriteFile(labels, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "z.tsv")
	if err := run(gpath, "edgelist", "serial", 2, 0, labels, 2, true, out, 1); err != nil {
		t.Fatal(err)
	}
}

func TestReadLabelsErrors(t *testing.T) {
	dir := t.TempDir()
	short := filepath.Join(dir, "short.txt")
	os.WriteFile(short, []byte("1\n2\n"), 0o644)
	if _, err := readLabels(short, 5); err == nil {
		t.Fatal("short label file accepted")
	}
	bad := filepath.Join(dir, "bad.txt")
	os.WriteFile(bad, []byte("x\n"), 0o644)
	if _, err := readLabels(bad, 1); err == nil {
		t.Fatal("non-numeric label accepted")
	}
	if _, err := readLabels(filepath.Join(dir, "missing"), 1); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestParseImpl(t *testing.T) {
	cases := map[string]repro.Impl{
		"reference":  repro.Reference,
		"python":     repro.Reference,
		"numba":      repro.Optimized,
		"serial":     repro.LigraSerial,
		"parallel":   repro.LigraParallel,
		"Ligra":      repro.LigraParallel,
		"unsafe":     repro.LigraParallelUnsafe,
		"replicated": repro.Replicated,
		"sharded":    repro.ShardedParallel,
	}
	for name, want := range cases {
		got, err := parseImpl(name)
		if err != nil || got != want {
			t.Fatalf("%q: got %v err %v", name, got, err)
		}
	}
	if _, err := parseImpl("bogus"); err == nil {
		t.Fatal("bogus impl accepted")
	}
}
