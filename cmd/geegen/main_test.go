package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
)

func TestRunModels(t *testing.T) {
	dir := t.TempDir()
	for _, model := range []string{"rmat", "er"} {
		out := filepath.Join(dir, model+".txt")
		if err := run(model, 10, 500, 2000, 0, 0, 0, 1, 2, out, "edgelist", ""); err != nil {
			t.Fatalf("%s: %v", model, err)
		}
		el, err := repro.LoadEdgeList(out)
		if err != nil {
			t.Fatal(err)
		}
		if len(el.Edges) != 2000 {
			t.Fatalf("%s: %d edges", model, len(el.Edges))
		}
	}
}

func TestRunSBMWithLabels(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "sbm.txt")
	labels := filepath.Join(dir, "y.txt")
	if err := run("sbm", 0, 1000, 0, 4, 0.05, 0.001, 1, 2, out, "edgelist", labels); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(labels)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(string(data), "\n")
	if lines != 1000 {
		t.Fatalf("%d label lines", lines)
	}
}

func TestRunFormats(t *testing.T) {
	dir := t.TempDir()
	for _, format := range []string{"adj", "bin"} {
		out := filepath.Join(dir, "g."+format)
		if err := run("er", 0, 100, 500, 0, 0, 0, 1, 2, out, format, ""); err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		var g *repro.Graph
		var err error
		if format == "adj" {
			g, err = repro.LoadAdjacency(out)
		} else {
			g, err = repro.LoadBinary(out)
		}
		if err != nil {
			t.Fatal(err)
		}
		if g.NumEdges() != 500 {
			t.Fatalf("%s: %d edges", format, g.NumEdges())
		}
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "x.txt")
	if err := run("bogus", 0, 10, 10, 0, 0, 0, 1, 2, out, "edgelist", ""); err == nil {
		t.Fatal("bogus model accepted")
	}
	if err := run("er", 0, 10, 10, 0, 0, 0, 1, 2, out, "bogus", ""); err == nil {
		t.Fatal("bogus format accepted")
	}
	if err := run("er", 0, 10, 10, 0, 0, 0, 1, 2, out, "edgelist", filepath.Join(dir, "y.txt")); err == nil {
		t.Fatal("labels-out without sbm accepted")
	}
}
