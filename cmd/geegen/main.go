// Command geegen generates synthetic benchmark graphs in any supported
// output format.
//
// Usage:
//
//	geegen -model rmat -scale 20 -edges 16000000 -out g.bin -format bin
//	geegen -model er -nodes 100000 -edges 1600000 -out g.txt
//	geegen -model sbm -nodes 10000 -blocks 8 -pin 0.01 -pout 0.0005 -out g.txt -labels-out y.txt
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"repro"
	"repro/internal/sticky"
)

func main() {
	var (
		model     = flag.String("model", "rmat", "generator: rmat, er, sbm")
		scale     = flag.Int("scale", 18, "rmat: log2 vertex count")
		nodes     = flag.Int("nodes", 1<<18, "er/sbm: vertex count")
		edges     = flag.Int64("edges", 1<<22, "edge count (rmat/er)")
		blocks    = flag.Int("blocks", 4, "sbm: number of blocks")
		pin       = flag.Float64("pin", 0.01, "sbm: within-block edge probability")
		pout      = flag.Float64("pout", 0.0005, "sbm: cross-block edge probability")
		seed      = flag.Uint64("seed", 1, "generator seed")
		workers   = flag.Int("workers", 0, "worker count (0 = GOMAXPROCS)")
		out       = flag.String("out", "", "output path (required)")
		format    = flag.String("format", "edgelist", "output: edgelist, adj, bin")
		labelsOut = flag.String("labels-out", "", "sbm: write ground-truth block labels here")
	)
	flag.Parse()
	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*model, *scale, *nodes, *edges, *blocks, *pin, *pout,
		*seed, *workers, *out, *format, *labelsOut); err != nil {
		fmt.Fprintln(os.Stderr, "geegen:", err)
		os.Exit(1)
	}
}

func run(model string, scale, nodes int, edges int64, blocks int,
	pin, pout float64, seed uint64, workers int, out, format, labelsOut string) error {
	var el *repro.EdgeList
	var truth []int32
	switch model {
	case "rmat":
		el = repro.NewRMAT(workers, scale, edges, seed)
	case "er":
		el = repro.NewErdosRenyi(workers, nodes, edges, seed)
	case "sbm":
		el, truth = repro.NewSBM(workers, nodes, blocks, pin, pout, seed)
	default:
		return fmt.Errorf("unknown model %q", model)
	}
	fmt.Fprintf(os.Stderr, "generated %s: n=%d m=%d\n", model, el.N, len(el.Edges))
	if labelsOut != "" {
		if truth == nil {
			return fmt.Errorf("-labels-out requires -model sbm")
		}
		if err := writeLabels(labelsOut, truth); err != nil {
			return err
		}
	}
	switch format {
	case "edgelist":
		return repro.SaveEdgeList(out, el)
	case "adj":
		return repro.SaveAdjacency(out, repro.BuildGraph(workers, el))
	case "bin":
		return repro.SaveBinary(out, repro.BuildGraph(workers, el))
	}
	return fmt.Errorf("unknown format %q", format)
}

func writeLabels(path string, y []int32) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	sw := sticky.NewWriter(f, 1<<16)
	for _, v := range y {
		sw.WriteString(strconv.FormatInt(int64(v), 10))
		sw.WriteByte('\n')
	}
	if err := sw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
