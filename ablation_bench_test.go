package repro

// Ablation benchmarks for the design choices DESIGN.md §6 calls out
// beyond the paper's own experiments: edge map traversal mode, embedding
// cell width, and parallel-for grain size.

import (
	"runtime"
	"testing"

	"repro/internal/gee"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/labels"
	"repro/internal/ligra"
	"repro/internal/parallel"
)

// BenchmarkAblationEdgeMapMode compares the dense per-vertex schedule
// (the paper's configuration) against a forced sparse frontier-driven
// traversal for the same full-graph GEE edge map.
func BenchmarkAblationEdgeMapMode(b *testing.B) {
	el := gen.RMAT(0, 17, 1<<21, gen.Graph500Params, 7)
	g := graph.BuildCSR(0, el)
	y := labels.SampleSemiSupervised(el.N, 50, 0.1, 8)
	for _, mode := range []struct {
		name  string
		force bool
	}{{"dense", false}, {"sparse", true}} {
		b.Run(mode.name, func(b *testing.B) {
			opts := gee.Options{K: 50, ForceSparseEdgeMap: mode.force}
			b.SetBytes(g.NumEdges() * 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := gee.EmbedCSR(gee.LigraParallel, g, y, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationCellWidth compares float64 embedding cells against
// float32 (half the write traffic per edge on a memory-bound kernel).
func BenchmarkAblationCellWidth(b *testing.B) {
	el := gen.RMAT(0, 17, 1<<21, gen.Graph500Params, 9)
	g := graph.BuildCSR(0, el)
	y := labels.SampleSemiSupervised(el.N, 50, 0.1, 10)
	opts := gee.Options{K: 50}
	b.Run("float64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := gee.EmbedCSR(gee.LigraParallel, g, y, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("float32", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := gee.EmbedFloat32(g, y, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationGrainSize sweeps the parallel-for chunk grain for the
// raw edge map traversal (scheduling overhead vs load balance).
func BenchmarkAblationGrainSize(b *testing.B) {
	el := gen.RMAT(0, 17, 1<<21, gen.Graph500Params, 11)
	g := graph.BuildCSR(0, el)
	workers := runtime.GOMAXPROCS(0)
	for _, grain := range []int{16, 256, 4096, 65536} {
		b.Run("grain="+itoa(grain), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				parallel.ForChunk(workers, g.N, grain, func(lo, hi int) {
					for u := lo; u < hi; u++ {
						nbrs := g.Neighbors(graph.NodeID(u))
						var acc float32
						for range nbrs {
							acc++
						}
						_ = acc
					}
				})
			}
		})
	}
}

// BenchmarkAblationReplicatedMemory pins the memory argument: replicated
// buffers at high worker counts against the single atomic matrix.
func BenchmarkAblationReplicatedMemory(b *testing.B) {
	el := gen.RMAT(0, 15, 1<<19, gen.Graph500Params, 13)
	g := graph.BuildCSR(0, el)
	y := labels.SampleSemiSupervised(el.N, 50, 0.1, 14)
	opts := gee.Options{K: 50}
	b.Run("atomic-sharedZ", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := gee.EmbedCSR(gee.LigraParallel, g, y, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("replicatedZ", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := gee.EmbedReplicated(g, y, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkLigraBFS tracks the engine's frontier machinery end to end.
func BenchmarkLigraBFS(b *testing.B) {
	el := gen.RMAT(0, 17, 1<<21, gen.Graph500Params, 15)
	g := graph.BuildCSR(0, graph.Symmetrize(el))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ligra.BFS(0, g, 0)
	}
}

// BenchmarkSpectralVsGEE times both embedding families on one SBM.
func BenchmarkSpectralVsGEE(b *testing.B) {
	el, truth := gen.SBM(0, 20_000, 6, 0.006, 0.0003, 17)
	g := graph.BuildCSR(0, el)
	y := make([]int32, el.N)
	mask := labels.SampleSemiSupervised(el.N, 6, 0.1, 18)
	for i := range y {
		y[i] = labels.Unknown
		if mask[i] >= 0 {
			y[i] = truth[i]
		}
	}
	b.Run("gee-parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := gee.EmbedCSR(gee.LigraParallel, g, y, gee.Options{K: 6}); err != nil {
				b.Fatal(err)
			}
		}
	})
	sg := graph.BuildCSR(0, graph.Symmetrize(el))
	b.Run("spectral-ase", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := SpectralEmbed(sg, SpectralOptions{K: 6, Seed: 19}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
