package repro

import (
	"testing"
)

func TestFacadeWalks(t *testing.T) {
	el, truth := NewSBM(4, 300, 2, 0.15, 0.005, 41)
	g := BuildGraph(4, Symmetrize(el))
	SortAdjacency(4, g)
	corpus, err := GenerateWalks(g, WalkConfig{
		WalksPerNode: 10, WalkLength: 25, Workers: 8, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus) != 3000 {
		t.Fatalf("%d walks", len(corpus))
	}
	z, err := TrainWalkEmbedding(300, corpus, WalkTrainConfig{
		Dims: 24, Epochs: 4, Workers: 8, Seed: 43,
	})
	if err != nil {
		t.Fatal(err)
	}
	z.RowL2Normalize()
	assign := KMeansLabels(8, z, 2, 44)
	if ari := ARI(assign, truth); ari < 0.5 {
		t.Fatalf("DeepWalk facade ARI=%v", ari)
	}
}

func TestFacadeGCN(t *testing.T) {
	el, truth := NewSBM(4, 300, 2, 0.12, 0.006, 45)
	g := BuildGraph(4, Symmetrize(el))
	y := make([]int32, el.N)
	mask := SampleLabels(el.N, 2, 0.2, 46)
	for i := range y {
		y[i] = Unknown
		if mask[i] >= 0 {
			y[i] = truth[i]
		}
	}
	res, err := TrainGCN(g, y, nil, GCNConfig{Epochs: 120, Workers: 8, Seed: 47})
	if err != nil {
		t.Fatal(err)
	}
	correct, total := 0, 0
	for v := range truth {
		total++
		if res.Pred[v] == truth[v] {
			correct++
		}
	}
	if acc := float64(correct) / float64(total); acc < 0.8 {
		t.Fatalf("GCN facade accuracy %v", acc)
	}
	if res.Losses[len(res.Losses)-1] >= res.Losses[0] {
		t.Fatal("loss did not decrease")
	}
}

func TestFacadeEngineExtras(t *testing.T) {
	el := NewErdosRenyi(4, 200, 1600, 48)
	g := BuildGraph(4, Symmetrize(el))
	SortAdjacency(4, g)

	d := BellmanFord(4, g, 0)
	if d[0] != 0 {
		t.Fatal("BF source distance")
	}
	core := KCore(4, g)
	if len(core) != 200 {
		t.Fatal("KCore length")
	}
	if tc := TriangleCount(4, g); tc < 0 {
		t.Fatal("negative triangles")
	}
	bc := BetweennessCentrality(4, g, 0)
	if len(bc) != 200 || bc[0] != 0 {
		t.Fatalf("BC: len=%d source=%v", len(bc), bc[0])
	}
	mis := MaximalIndependentSet(4, g, 49)
	for u := 0; u < g.N; u++ {
		if !mis[u] {
			continue
		}
		for _, v := range g.Neighbors(NodeID(u)) {
			if int(v) != u && mis[v] {
				t.Fatal("MIS not independent")
			}
		}
	}
}

func TestBenchRunBaselinesFullTiny(t *testing.T) {
	// exercised through the internal/bench test suite for the fast rows;
	// here just confirm the facade types compose with a micro workload
	el, truth := NewSBM(2, 120, 2, 0.25, 0.02, 50)
	g := BuildGraph(2, Symmetrize(el))
	SortAdjacency(2, g)
	corpus, err := GenerateWalks(g, WalkConfig{WalksPerNode: 4, WalkLength: 12, Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	z, err := TrainWalkEmbedding(120, corpus, WalkTrainConfig{Dims: 8, Epochs: 2, Seed: 52})
	if err != nil {
		t.Fatal(err)
	}
	_ = truth
	if z.R != 120 {
		t.Fatal("shape")
	}
}
