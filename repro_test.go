package repro

import (
	"bytes"
	"context"
	"math"
	"net/http/httptest"
	"path/filepath"
	"testing"
)

func TestFacadeEndToEnd(t *testing.T) {
	el := NewRMAT(4, 10, 10_000, 1)
	y := SampleLabels(el.N, 10, 0.2, 2)
	res, err := Embed(LigraParallel, el, y, Options{K: 10, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Z.R != el.N || res.Z.C != 10 {
		t.Fatalf("shape %dx%d", res.Z.R, res.Z.C)
	}
	ref, err := Embed(Reference, el, y, Options{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !ref.Z.EqualTol(res.Z, 1e-9) {
		t.Fatal("facade parallel differs from reference")
	}
}

// TestFacadeServing drives the serving layer through the facade: a
// server over a dynamic embedder, a typed client writing through the
// coalescer and reading a row back at the acked epoch.
func TestFacadeServing(t *testing.T) {
	y := []int32{0, 1, 0, 1}
	d, err := NewDynamicEmbedder(4, y, DynamicOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewEmbeddingServer(d, ServerOptions{})
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		if err := srv.Close(); err != nil {
			t.Error(err)
		}
		ts.Close()
	}()
	c := NewEmbeddingClient(ts.URL, ts.Client())
	ack, err := c.InsertEdges(context.Background(), []Edge{{U: 0, V: 1, W: 1}})
	if err != nil {
		t.Fatal(err)
	}
	emb, err := c.Embedding(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if emb.Epoch < ack.Epoch || emb.Row[1] <= 0 {
		t.Fatalf("insert not visible at acked epoch: ack %+v, emb %+v", ack, emb)
	}
}

// TestFacadeReplicaAndNeighbors drives the read-path scale-out facade:
// batched reads and neighbor queries against the serving API, and a
// replica that follows the primary through deltas.
func TestFacadeReplicaAndNeighbors(t *testing.T) {
	const n, k = 50, 2
	y := make([]int32, n)
	for i := range y {
		y[i] = int32(i % k)
	}
	d, err := NewDynamicEmbedder(n, y, DynamicOptions{K: k})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewEmbeddingServer(d, ServerOptions{})
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		if err := srv.Close(); err != nil {
			t.Error(err)
		}
		ts.Close()
	}()
	c := NewEmbeddingClient(ts.URL, ts.Client())
	ctx := context.Background()
	rep := NewEmbeddingReplica(c)
	if err := rep.Bootstrap(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := c.InsertEdges(ctx, []Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 2}}); err != nil {
		t.Fatal(err)
	}
	if resynced, err := rep.Sync(ctx); err != nil || resynced {
		t.Fatalf("delta sync: resynced=%v err=%v", resynced, err)
	}
	snap := d.Snapshot()
	local := rep.Snapshot()
	if local.Epoch != snap.Epoch || local.Z.MaxAbsDiff(snap.Z) != 0 {
		t.Fatalf("replica not identical to primary at epoch %d", snap.Epoch)
	}
	batch, err := c.Embeddings(ctx, []uint32{0, 1, 2})
	if err != nil || len(batch.Rows) != 3 {
		t.Fatalf("batched read: %+v %v", batch, err)
	}
	res, err := c.Neighbors(ctx, NeighborsRequest{V: 0, K: 3, Metric: "l2"})
	if err != nil || len(res.Neighbors) != 3 {
		t.Fatalf("neighbor query: %+v %v", res, err)
	}
	want := NearestNeighbors(2, snap.Z, snap.Z.Row(0), 3, L2Metric, 0)
	for i := range want {
		if int(res.Neighbors[i].V) != want[i].V || res.Neighbors[i].Dist != want[i].Dist {
			t.Fatalf("served neighbors %+v differ from local TopK %+v", res.Neighbors, want)
		}
	}
}

func TestFacadeGraphPath(t *testing.T) {
	el := NewErdosRenyi(4, 500, 8000, 3)
	g := BuildGraph(4, el)
	y := SampleLabels(el.N, 5, 0.5, 4)
	a, err := EmbedGraph(LigraSerial, g, y, Options{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := EmbedGraphTimed(LigraParallel, g, y, Options{K: 5, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Z.EqualTol(b.Z, 1e-9) {
		t.Fatal("serial and timed parallel differ")
	}
}

func TestFacadeVerify(t *testing.T) {
	el := NewErdosRenyi(4, 200, 2000, 5)
	y := SampleLabels(el.N, 4, 0.5, 6)
	reports, err := Verify(el, y, Options{K: 4, Workers: 4}, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != len(Impls)-1 {
		t.Fatalf("%d reports", len(reports))
	}
}

func TestFacadeSBMPipeline(t *testing.T) {
	el, truth := NewSBM(8, 900, 3, 0.08, 0.002, 7)
	res, err := Refine(el, RefineOptions{
		Embedding: Options{K: 3, Workers: 8},
		Impl:      LigraParallel,
		Seed:      9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ari := ARI(res.Labels, truth); ari < 0.7 {
		t.Fatalf("refine ARI=%v", ari)
	}
	if nmi := NMI(res.Labels, truth); nmi < 0.5 {
		t.Fatalf("refine NMI=%v", nmi)
	}
}

func TestFacadeEngineAlgorithms(t *testing.T) {
	el := NewErdosRenyi(4, 400, 4000, 11)
	g := BuildGraph(4, Symmetrize(el))
	dist := BFS(4, g, 0)
	if dist[0] != 0 {
		t.Fatal("BFS source distance")
	}
	cc := ConnectedComponents(4, g)
	if len(cc) != 400 {
		t.Fatal("CC length")
	}
	pr := PageRank(4, g, 0.85, 1e-9, 50)
	var sum float64
	for _, v := range pr {
		sum += v
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("PageRank sum=%v", sum)
	}
}

func TestFacadePropagationLabels(t *testing.T) {
	el, truth := NewSBM(4, 800, 2, 0.1, 0.002, 13)
	g := BuildGraph(4, Symmetrize(el))
	y := PropagationLabels(4, g, 50, 14)
	if ari := ARI(y, truth); ari < 0.5 {
		t.Fatalf("propagation ARI=%v", ari)
	}
}

func TestFacadeKMeansLabels(t *testing.T) {
	el, truth := NewSBM(4, 600, 2, 0.1, 0.002, 15)
	y := make([]int32, el.N)
	for i := range y {
		y[i] = Unknown
	}
	seeded := SampleLabels(el.N, 2, 0.1, 16)
	for i := range y {
		if seeded[i] >= 0 {
			y[i] = truth[i]
		}
	}
	res, err := Embed(Optimized, el, y, Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	z := res.Z.Clone()
	z.RowL2Normalize() // the GEE paper's preprocessing before clustering
	assign := KMeansLabels(4, z, 2, 17)
	if ari := ARI(assign, truth); ari < 0.8 {
		t.Fatalf("kmeans ARI=%v", ari)
	}
}

func TestFacadeFileRoundTrips(t *testing.T) {
	dir := t.TempDir()
	el := NewErdosRenyi(2, 50, 300, 19)
	elPath := filepath.Join(dir, "g.txt")
	if err := SaveEdgeList(elPath, el); err != nil {
		t.Fatal(err)
	}
	el2, err := LoadEdgeList(elPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(el2.Edges) != len(el.Edges) {
		t.Fatal("edge list round trip")
	}
	g := BuildGraph(2, el)
	adjPath := filepath.Join(dir, "g.adj")
	if err := SaveAdjacency(adjPath, g); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadAdjacency(adjPath); err != nil {
		t.Fatal(err)
	}
	binPath := filepath.Join(dir, "g.bin")
	if err := SaveBinary(binPath, g); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadBinary(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatal("binary round trip")
	}
}

func TestEmbeddingTSVRoundTrip(t *testing.T) {
	el := NewErdosRenyi(2, 40, 200, 21)
	y := SampleLabels(el.N, 3, 0.5, 22)
	res, err := Embed(Optimized, el, y, Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteEmbedding(&buf, res.Z); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEmbedding(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.MaxAbsDiff(res.Z) != 0 {
		t.Fatal("TSV round trip lost precision")
	}
}

func TestReadEmbeddingErrors(t *testing.T) {
	if _, err := ReadEmbedding(bytes.NewReader([]byte("1\t2\n3\n"))); err == nil {
		t.Fatal("ragged rows accepted")
	}
	if _, err := ReadEmbedding(bytes.NewReader([]byte("1\tx\n"))); err == nil {
		t.Fatal("non-numeric accepted")
	}
	z, err := ReadEmbedding(bytes.NewReader(nil))
	if err != nil || z.R != 0 {
		t.Fatalf("empty embedding: %v %v", z, err)
	}
}
