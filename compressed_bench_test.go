package repro

// Benchmarks for the Ligra+-style compressed representation: traversal
// and GEE cost of decode-on-the-fly vs the plain CSR, plus the achieved
// compression ratio as a reported metric.

import (
	"sync/atomic"
	"testing"

	"repro/internal/gee"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/labels"
	"repro/internal/ligra"
)

func compressedFixture(b *testing.B) (*graph.CSR, *graph.CompressedCSR, []int32) {
	b.Helper()
	el := gen.RMAT(0, 17, 1<<21, gen.Graph500Params, 31)
	g := graph.BuildCSR(0, el)
	graph.SortAdjacency(0, g)
	c, err := graph.Compress(0, g)
	if err != nil {
		b.Fatal(err)
	}
	y := labels.SampleSemiSupervised(el.N, 50, 0.1, 32)
	return g, c, y
}

func BenchmarkCompressedTraversal(b *testing.B) {
	g, c, _ := compressedFixture(b)
	b.Run("plain", func(b *testing.B) {
		b.SetBytes(g.NumEdges() * 4)
		for i := 0; i < b.N; i++ {
			var count atomic.Int64
			ligra.Process(g, ligra.All(g.N), func(u, v graph.NodeID, w float32) bool {
				count.Add(1)
				return false
			}, ligra.Options{})
		}
	})
	b.Run("compressed", func(b *testing.B) {
		b.SetBytes(c.Bytes())
		for i := 0; i < b.N; i++ {
			var count atomic.Int64
			c.ProcessEdges(0, func(u, v graph.NodeID) { count.Add(1) })
		}
	})
	b.ReportMetric(float64(g.NumEdges()*4)/float64(c.Bytes()), "compression-ratio")
}

func BenchmarkCompressedGEE(b *testing.B) {
	g, c, y := compressedFixture(b)
	opts := gee.Options{K: 50}
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := gee.EmbedCSR(gee.LigraParallel, g, y, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("compressed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := gee.EmbedCompressed(c, y, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkCompressDecompress(b *testing.B) {
	g, _, _ := compressedFixture(b)
	b.Run("compress", func(b *testing.B) {
		b.SetBytes(g.NumEdges() * 4)
		for i := 0; i < b.N; i++ {
			if _, err := graph.Compress(0, g); err != nil {
				b.Fatal(err)
			}
		}
	})
	c, _ := graph.Compress(0, g)
	b.Run("decompress", func(b *testing.B) {
		b.SetBytes(g.NumEdges() * 4)
		for i := 0; i < b.N; i++ {
			c.Decompress(0)
		}
	})
}
