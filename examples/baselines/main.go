// Baselines: GEE vs spectral embedding on the same community-recovery
// task — the comparison that motivates the GEE line of work (§I of the
// paper: spectral methods cost an SVD; GEE is one pass over the edges).
//
//	go run ./examples/baselines
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	const (
		n      = 20000
		blocks = 6
	)
	el, truth := repro.NewSBM(0, n, blocks, 0.008, 0.0002, 17)
	fmt.Printf("SBM: n=%d, %d blocks, %d edges\n\n", el.N, blocks, len(el.Edges))
	fmt.Printf("%-34s %12s %8s\n", "method", "runtime", "ARI")

	// GEE, semi-supervised with 10% revealed labels.
	y := make([]int32, n)
	mask := repro.SampleLabels(n, blocks, 0.10, 18)
	for i := range y {
		y[i] = repro.Unknown
		if mask[i] >= 0 {
			y[i] = truth[i]
		}
	}
	g := repro.BuildGraph(0, el)
	start := time.Now()
	res, err := repro.EmbedGraph(repro.LigraParallel, g, y, repro.Options{K: blocks})
	if err != nil {
		log.Fatal(err)
	}
	geeTime := time.Since(start)
	pred := make([]int32, n)
	for v := 0; v < n; v++ {
		pred[v] = int32(res.Z.ArgMaxRow(v))
	}
	fmt.Printf("%-34s %12v %8.3f\n", "GEE parallel + argmax",
		geeTime.Round(time.Microsecond), repro.ARI(pred, truth))

	// GEE + kNN in embedding space (the GEE paper's classification
	// protocol) — same embedding, better decision rule.
	start = time.Now()
	zn := res.Z.Clone()
	zn.RowL2Normalize()
	knn := repro.KNNClassify(0, zn, y, 15)
	knnTime := geeTime + time.Since(start)
	fmt.Printf("%-34s %12v %8.3f\n", "GEE parallel + 15-NN",
		knnTime.Round(time.Microsecond), repro.ARI(knn, truth))

	// Spectral ASE + k-means (fully unsupervised).
	sg := repro.BuildGraph(0, repro.Symmetrize(el))
	start = time.Now()
	sp, err := repro.SpectralEmbed(sg, repro.SpectralOptions{K: blocks, Seed: 19})
	if err != nil {
		log.Fatal(err)
	}
	assign := repro.KMeansLabels(0, sp.Z, blocks, 20)
	spTime := time.Since(start)
	fmt.Printf("%-34s %12v %8.3f\n", "spectral ASE + k-means",
		spTime.Round(time.Microsecond), repro.ARI(assign, truth))

	fmt.Printf("\nGEE is %.0fx faster on this graph; the gap widens with size\n",
		spTime.Seconds()/geeTime.Seconds())
}
