// Community detection: the use case the paper's introduction motivates.
//
// Embeds a planted-partition graph two ways — semi-supervised (a few
// ground-truth labels revealed, as in the paper's protocol) and fully
// unsupervised (the GEE refinement loop from random labels) — and scores
// both against the planted communities.
//
//	go run ./examples/community
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const (
		n      = 5000
		k      = 5
		pIn    = 0.02
		pOut   = 0.0008
		reveal = 0.10
	)
	el, truth := repro.NewSBM(0, n, k, pIn, pOut, 7)
	fmt.Printf("SBM: n=%d, %d blocks, %d edges\n", el.N, k, len(el.Edges))

	// --- Semi-supervised: reveal ground truth on 10% of the nodes.
	y := make([]int32, n)
	mask := repro.SampleLabels(n, k, reveal, 8)
	revealed := 0
	for i := range y {
		y[i] = repro.Unknown
		if mask[i] >= 0 {
			y[i] = truth[i]
			revealed++
		}
	}
	res, err := repro.Embed(repro.LigraParallel, el, y, repro.Options{K: k})
	if err != nil {
		log.Fatal(err)
	}
	// classify each vertex by its strongest class affinity
	pred := make([]int32, n)
	for v := 0; v < n; v++ {
		pred[v] = int32(res.Z.ArgMaxRow(v))
	}
	fmt.Printf("semi-supervised (%d labels revealed): ARI=%.3f NMI=%.3f\n",
		revealed, repro.ARI(pred, truth), repro.NMI(pred, truth))

	// --- Unsupervised: embed -> k-means -> relabel until stable.
	ref, err := repro.Refine(el, repro.RefineOptions{
		Embedding: repro.Options{K: k},
		Impl:      repro.LigraParallel,
		Seed:      9,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unsupervised refinement (%d rounds): ARI=%.3f NMI=%.3f\n",
		ref.Rounds, repro.ARI(ref.Labels, truth), repro.NMI(ref.Labels, truth))

	// --- Baseline: label propagation on the same graph.
	g := repro.BuildGraph(0, repro.Symmetrize(el))
	lp := repro.PropagationLabels(0, g, 100, 10)
	fmt.Printf("label propagation baseline:      ARI=%.3f NMI=%.3f\n",
		repro.ARI(lp, truth), repro.NMI(lp, truth))
}
