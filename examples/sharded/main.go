// Sharded: compare the atomic edge-parallel implementation against the
// contention-free destination-sharded backend on a skewed power-law
// graph — the workload where hot embedding rows serialize atomic
// writeAdd and disjoint row ownership pays off.
//
//	go run ./examples/sharded
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	// A skewed RMAT graph: a few hub vertices receive a large share of
	// all arcs, so their Z rows are atomic-add hotspots.
	el := repro.NewRMAT(0, 16, 1<<21, 7)
	g := repro.BuildGraph(0, el)
	y := repro.SampleLabels(el.N, 50, 0.10, 1)
	opts := repro.Options{K: 50}
	fmt.Printf("power-law graph: n=%d vertices, s=%d arcs\n", g.N, g.NumEdges())

	time1 := func(impl repro.Impl) (*repro.Result, time.Duration) {
		start := time.Now()
		res, err := repro.EmbedGraph(impl, g, y, opts)
		if err != nil {
			log.Fatal(err)
		}
		return res, time.Since(start)
	}
	// Warm up once so page faults don't skew the comparison.
	time1(repro.LigraParallel)

	atomic, atomicTime := time1(repro.LigraParallel)
	sharded, shardedTime := time1(repro.ShardedParallel)
	fmt.Printf("%-22v %v\n", atomic.Impl, atomicTime.Round(time.Microsecond))
	fmt.Printf("%-22v %v (includes the destination bucketing pass)\n",
		sharded.Impl, shardedTime.Round(time.Microsecond))

	// Same embedding, different write discipline: the sharded backend
	// owns disjoint Z row ranges per worker, so it needs no atomics at
	// all — and, unlike atomic interleaving, it is deterministic.
	fmt.Printf("max |Z_sharded - Z_atomic| = %g\n", atomic.Z.MaxAbsDiff(sharded.Z))
}
