// Label budget: how much supervision does GEE need? Sweeps the revealed
// label fraction on a planted-partition graph and reports recovery
// quality — the practical question behind the paper's "10% of nodes"
// protocol.
//
//	go run ./examples/labelbudget
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const (
		n    = 8000
		k    = 4
		pIn  = 0.015
		pOut = 0.0008
	)
	el, truth := repro.NewSBM(0, n, k, pIn, pOut, 11)
	fmt.Printf("SBM: n=%d, %d blocks, %d edges\n", el.N, k, len(el.Edges))
	fmt.Printf("%12s %10s %10s %10s\n", "label frac", "revealed", "ARI", "NMI")

	for _, frac := range []float64{0.01, 0.02, 0.05, 0.10, 0.20, 0.50} {
		y := make([]int32, n)
		mask := repro.SampleLabels(n, k, frac, 100+uint64(frac*1000))
		revealed := 0
		for i := range y {
			y[i] = repro.Unknown
			if mask[i] >= 0 {
				y[i] = truth[i]
				revealed++
			}
		}
		res, err := repro.Embed(repro.LigraParallel, el, y, repro.Options{K: k})
		if err != nil {
			log.Fatal(err)
		}
		pred := make([]int32, n)
		for v := 0; v < n; v++ {
			pred[v] = int32(res.Z.ArgMaxRow(v))
		}
		fmt.Printf("%11.0f%% %10d %10.3f %10.3f\n",
			frac*100, revealed, repro.ARI(pred, truth), repro.NMI(pred, truth))
	}
	fmt.Println("\nmore revealed labels -> sharper class affinities -> better recovery;")
	fmt.Println("the paper's 10% setting sits on the flat part of the curve for strong communities")
}
