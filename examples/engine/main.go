// Engine: the Ligra-style toolkit that GEE runs on is a general graph
// engine (§II: "almost all modern graph algorithms"). This example runs
// the classic suite — BFS, connected components, PageRank, shortest
// paths, k-core, triangles, betweenness, MIS — on one generated social
// graph, plus GEE over a compressed representation of the same graph.
//
//	go run ./examples/engine
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/graph"
)

func main() {
	el := repro.NewRMAT(0, 16, 1<<20, 99)
	g := repro.BuildGraph(0, repro.Symmetrize(el))
	repro.SortAdjacency(0, g)
	fmt.Printf("RMAT graph: n=%d, %d arcs (symmetrized)\n\n", g.N, g.NumEdges())

	timed := func(name string, fn func() string) {
		start := time.Now()
		detail := fn()
		fmt.Printf("  %-24s %10v   %s\n", name, time.Since(start).Round(time.Microsecond), detail)
	}

	timed("BFS", func() string {
		dist := repro.BFS(0, g, 0)
		max, reached := int32(0), 0
		for _, d := range dist {
			if d >= 0 {
				reached++
				if d > max {
					max = d
				}
			}
		}
		return fmt.Sprintf("reached %d vertices, eccentricity %d", reached, max)
	})
	timed("connected components", func() string {
		cc := repro.ConnectedComponents(0, g)
		seen := map[repro.NodeID]bool{}
		for _, c := range cc {
			seen[c] = true
		}
		return fmt.Sprintf("%d components", len(seen))
	})
	timed("PageRank", func() string {
		pr := repro.PageRank(0, g, 0.85, 1e-8, 100)
		best, bv := 0, 0.0
		for v, x := range pr {
			if x > bv {
				best, bv = v, x
			}
		}
		return fmt.Sprintf("top vertex %d (score %.5f)", best, bv)
	})
	timed("Bellman-Ford", func() string {
		d := repro.BellmanFord(0, g, 0)
		finite := 0
		for _, x := range d {
			if x < 1e18 {
				finite++
			}
		}
		return fmt.Sprintf("%d reachable", finite)
	})
	timed("k-core", func() string {
		core := repro.KCore(0, g)
		max := int32(0)
		for _, c := range core {
			if c > max {
				max = c
			}
		}
		return fmt.Sprintf("degeneracy %d", max)
	})
	timed("triangle count", func() string {
		return fmt.Sprintf("%d triangles", repro.TriangleCount(0, g))
	})
	timed("betweenness (source 0)", func() string {
		bc := repro.BetweennessCentrality(0, g, 0)
		var sum float64
		for _, x := range bc {
			sum += x
		}
		return fmt.Sprintf("total dependency %.0f", sum)
	})
	timed("maximal independent set", func() string {
		mis := repro.MaximalIndependentSet(0, g, 1)
		count := 0
		for _, in := range mis {
			if in {
				count++
			}
		}
		return fmt.Sprintf("%d members", count)
	})

	// GEE over the compressed representation of the original arcs.
	fmt.Println()
	dg := repro.BuildGraph(0, el)
	repro.SortAdjacency(0, dg)
	c, err := graph.Compress(0, dg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compressed adjacency: %d bytes vs %d plain (%.1fx smaller)\n",
		c.Bytes(), dg.NumEdges()*4, float64(dg.NumEdges()*4)/float64(c.Bytes()))
	y := repro.SampleLabels(el.N, 50, 0.1, 2)
	timed("GEE over compressed", func() string {
		res, err := repro.EmbedCompressed(c, y, repro.Options{K: 50})
		if err != nil {
			log.Fatal(err)
		}
		return fmt.Sprintf("Z is %dx%d", res.Z.R, res.Z.C)
	})
}
