// Scaling: a live strong-scaling run (the paper's Figure 3 shape) on a
// generated social-network-like graph, printing speedup per core count.
//
//	go run ./examples/scaling [-scale 20] [-edges 16000000]
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"
	"time"

	"repro"
)

func main() {
	scale := flag.Int("scale", 19, "log2 vertex count of the RMAT graph")
	edges := flag.Int64("edges", 1<<23, "edge count")
	flag.Parse()

	fmt.Printf("generating RMAT scale=%d, %d edges...\n", *scale, *edges)
	el := repro.NewRMAT(0, *scale, *edges, 3)
	g := repro.BuildGraph(0, el)
	y := repro.SampleLabels(el.N, 50, 0.10, 4)

	max := runtime.GOMAXPROCS(0)
	var base time.Duration
	fmt.Printf("%6s %12s %9s %s\n", "cores", "runtime", "speedup", "")
	for cores := 1; cores <= max; cores *= 2 {
		t := timeEmbed(g, y, cores)
		if cores == 1 {
			base = t
		}
		speedup := base.Seconds() / t.Seconds()
		fmt.Printf("%6d %12v %8.2fx %s\n", cores, t.Round(time.Millisecond), speedup, bar(speedup))
	}
	if max > 1 && max&(max-1) != 0 {
		t := timeEmbed(g, y, max)
		speedup := base.Seconds() / t.Seconds()
		fmt.Printf("%6d %12v %8.2fx %s\n", max, t.Round(time.Millisecond), speedup, bar(speedup))
	}
	fmt.Println("(paper: ~11x at 24 cores; the workload is memory-bound)")
}

func timeEmbed(g *repro.Graph, y []int32, cores int) time.Duration {
	best := time.Duration(0)
	for rep := 0; rep < 3; rep++ {
		start := time.Now()
		if _, err := repro.EmbedGraph(repro.LigraParallel, g, y,
			repro.Options{K: 50, Workers: cores}); err != nil {
			log.Fatal(err)
		}
		d := time.Since(start)
		if best == 0 || d < best {
			best = d
		}
	}
	return best
}

func bar(speedup float64) string {
	out := make([]byte, int(speedup*2+0.5))
	for i := range out {
		out[i] = '*'
	}
	return string(out)
}
