// Quickstart: generate a small graph, embed it with the edge-parallel
// implementation, and print a few embedding rows.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A social-network-like RMAT graph: 2^14 vertices, ~260k edges.
	el := repro.NewRMAT(0, 14, 1<<18, 42)
	fmt.Printf("graph: n=%d vertices, s=%d edges\n", el.N, len(el.Edges))

	// The paper's label protocol: K=50 classes on 10%% of the nodes.
	y := repro.SampleLabels(el.N, 50, 0.10, 1)

	// One pass over the edges, in parallel, with atomic updates.
	res, err := repro.Embed(repro.LigraParallel, el, y, repro.Options{K: 50})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("embedded into K=%d dimensions with %v\n", res.K, res.Impl)

	for v := 0; v < 3; v++ {
		row := res.Z.Row(v)
		fmt.Printf("Z[%d] = [%.4f %.4f %.4f ...] (%d dims)\n",
			v, row[0], row[1], row[2], len(row))
	}

	// Every implementation computes the same embedding; check one.
	ref, err := repro.Embed(repro.Reference, el, y, repro.Options{K: 50})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("max |Z_parallel - Z_reference| = %g\n", ref.Z.MaxAbsDiff(res.Z))
}
