package repro

import (
	"testing"
)

func TestFacadeSpectralEmbed(t *testing.T) {
	el, truth := NewSBM(4, 800, 2, 0.1, 0.003, 23)
	g := BuildGraph(4, Symmetrize(el))
	res, err := SpectralEmbed(g, SpectralOptions{K: 2, Seed: 24})
	if err != nil {
		t.Fatal(err)
	}
	if res.Z.R != 800 || res.Z.C != 2 {
		t.Fatalf("shape %dx%d", res.Z.R, res.Z.C)
	}
	assign := KMeansLabels(4, res.Z, 2, 25)
	if ari := ARI(assign, truth); ari < 0.8 {
		t.Fatalf("spectral ARI=%v", ari)
	}
}

func TestFacadeStreaming(t *testing.T) {
	el := NewErdosRenyi(4, 300, 5000, 27)
	y := SampleLabels(el.N, 5, 0.5, 28)
	batch, err := Embed(Reference, el, y, Options{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStreamingEmbedder(el.N, y, Options{K: 5, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddEdges(el.Edges); err != nil {
		t.Fatal(err)
	}
	if !batch.Z.EqualTol(s.Z(), 1e-9) {
		t.Fatal("streaming differs from batch")
	}
}

func TestFacadeDynamic(t *testing.T) {
	el := NewErdosRenyi(4, 300, 6000, 31)
	y := SampleLabels(el.N, 5, 0.5, 32)
	d, err := NewDynamicEmbedder(el.N, y, DynamicOptions{K: 5, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	half := len(el.Edges) / 2
	if err := d.Apply(DynamicBatch{Insert: el.Edges[:half]}); err != nil {
		t.Fatal(err)
	}
	if err := d.Apply(DynamicBatch{
		Insert: el.Edges[half:],
		Delete: el.Edges[:10],
		Labels: []LabelUpdate{{V: 0, Class: 1}, {V: 1, Class: Unknown}},
	}); err != nil {
		t.Fatal(err)
	}
	yFinal := append([]int32(nil), y...)
	yFinal[0], yFinal[1] = 1, Unknown
	batch, err := Embed(Reference, &EdgeList{N: el.N, Edges: el.Edges[10:]}, yFinal, Options{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	snap := d.Snapshot()
	if snap.Epoch != 2 {
		t.Fatalf("epoch %d after two batches", snap.Epoch)
	}
	if !batch.Z.EqualTol(snap.Z, 1e-9) {
		t.Fatalf("dynamic differs from batch by %v", batch.Z.MaxAbsDiff(snap.Z))
	}
	if row := d.Query(0); len(row) != 5 {
		t.Fatalf("query row %v", row)
	}
	if st := d.Stats(); st.LiveEdges != int64(len(el.Edges)-10) {
		t.Fatalf("live edges %d", st.LiveEdges)
	}
}

func TestFacadeDirected(t *testing.T) {
	el := NewRMAT(4, 9, 4000, 29)
	y := SampleLabels(el.N, 4, 0.3, 30)
	g := BuildGraph(4, el)
	dir, err := EmbedDirected(LigraParallel, g, y, Options{K: 4, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	std, err := EmbedGraph(Reference, g, y, Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !std.Z.EqualTol(FoldDirected(dir.Z), 1e-9) {
		t.Fatal("folded directed differs from standard")
	}
}

func TestFacadeDiagonalAugment(t *testing.T) {
	el := NewErdosRenyi(2, 100, 50, 31) // sparse: some isolated vertices
	aug := DiagonalAugment(el)
	if len(aug.Edges) != len(el.Edges)+100 {
		t.Fatal("augment edge count")
	}
}

func TestFacadeKNNClassify(t *testing.T) {
	el, truth := NewSBM(4, 1000, 2, 0.1, 0.002, 33)
	y := make([]int32, el.N)
	mask := SampleLabels(el.N, 2, 0.2, 34)
	for i := range y {
		y[i] = Unknown
		if mask[i] >= 0 {
			y[i] = truth[i]
		}
	}
	res, err := Embed(LigraParallel, el, y, Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	zn := res.Z.Clone()
	zn.RowL2Normalize()
	pred := KNNClassify(4, zn, y, 9)
	correct, total := 0, 0
	for v := range pred {
		if pred[v] >= 0 {
			total++
			if pred[v] == truth[v] {
				correct++
			}
		}
	}
	if total == 0 || float64(correct)/float64(total) < 0.85 {
		t.Fatalf("kNN accuracy %d/%d", correct, total)
	}
}
