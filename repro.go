// Package repro is the public API of the Edge-Parallel Graph Encoder
// Embedding reproduction (Lubonja, Shen, Priebe, Burns — IPPS 2024).
//
// It embeds the n vertices of a graph into K dimensions with a single
// pass over the edges, in any of the paper's four implementations — from
// the faithful serial reference to the Ligra-style edge-parallel version
// with lock-free atomic updates — plus two race-free parallel backends:
// Replicated (per-worker buffers + reduction) and ShardedParallel
// (destination-sharded plain writes, no atomics and no replicas).
//
// Quick start:
//
//	el, _ := repro.LoadEdgeList("graph.txt")
//	y := repro.SampleLabels(el.N, 50, 0.10, 1) // paper's protocol
//	res, err := repro.Embed(repro.LigraParallel, el, y, repro.Options{K: 50})
//	// res.Z.Row(v) is the K-dimensional embedding of vertex v
//
// The heavy lifting lives in internal packages; this package re-exports
// the stable surface: graph types and I/O (internal/graph), generators
// (internal/gen), the GEE family (internal/gee), labels
// (internal/labels), evaluation (internal/cluster), and the Ligra engine
// algorithms (internal/ligra).
package repro

import (
	"io"
	"net/http"

	"repro/internal/cluster"
	"repro/internal/dyn"
	"repro/internal/gcn"
	"repro/internal/gee"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/labels"
	"repro/internal/ligra"
	"repro/internal/mat"
	"repro/internal/metrics"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/spectral"
	"repro/internal/walks"
)

// Core graph types.
type (
	// NodeID identifies a vertex (dense uint32 ids).
	NodeID = graph.NodeID
	// Edge is one row of the edge list E ∈ R^{s×3}.
	Edge = graph.Edge
	// EdgeList is the paper's native input representation.
	EdgeList = graph.EdgeList
	// Graph is the compressed sparse row form the Ligra engine traverses.
	Graph = graph.CSR
	// Dense is the row-major matrix type used for embeddings.
	Dense = mat.Dense
)

// Embedding types.
type (
	// Impl selects one of the paper's implementations.
	Impl = gee.Impl
	// Options configures an embedding run.
	Options = gee.Options
	// Result is the output of an embedding run.
	Result = gee.Result
	// Timings records Algorithm 2's two phases.
	Timings = gee.Timings
	// VerifyReport is a cross-implementation equivalence record.
	VerifyReport = gee.VerifyReport
	// RefineOptions configures the unsupervised pipeline.
	RefineOptions = gee.RefineOptions
	// RefineResult is the unsupervised pipeline output.
	RefineResult = gee.RefineResult
)

// The paper's implementations (Table I order), the ablations, and the
// contention-free sharded backend.
const (
	Reference           = gee.Reference
	Optimized           = gee.Optimized
	LigraSerial         = gee.LigraSerial
	LigraParallel       = gee.LigraParallel
	LigraParallelUnsafe = gee.LigraParallelUnsafe
	// Replicated accumulates into per-worker private copies of Z and
	// reduces them (race-free without atomics, workers × n × K memory).
	Replicated = gee.Replicated
	// ShardedParallel partitions Z rows into degree-balanced shards so
	// each worker owns a disjoint slice and writes without atomics —
	// no races, no replicas, no reduction pass.
	ShardedParallel = gee.ShardedParallel
)

// Impls lists every implementation.
var Impls = gee.Impls

// Unknown marks an unlabeled vertex in a label vector.
const Unknown = labels.Unknown

// Embed runs implementation impl on an edge list. See gee.Embed.
func Embed(impl Impl, el *EdgeList, y []int32, opts Options) (*Result, error) {
	return gee.Embed(impl, el, y, opts)
}

// EmbedGraph runs an implementation over a prebuilt CSR graph.
func EmbedGraph(impl Impl, g *Graph, y []int32, opts Options) (*Result, error) {
	return gee.EmbedCSR(impl, g, y, opts)
}

// EmbedGraphTimed additionally reports Algorithm 2's per-phase timings
// (Ligra implementations only).
func EmbedGraphTimed(impl Impl, g *Graph, y []int32, opts Options) (*Result, *Timings, error) {
	return gee.EmbedCSRTimed(impl, g, y, opts)
}

// Verify runs every implementation and compares against the Reference
// oracle within tol.
func Verify(el *EdgeList, y []int32, opts Options, tol float64) ([]VerifyReport, error) {
	return gee.Verify(el, y, opts, tol)
}

// Refine runs the unsupervised embed → cluster → relabel pipeline.
func Refine(el *EdgeList, opts RefineOptions) (*RefineResult, error) {
	return gee.Refine(el, opts)
}

// BuildGraph constructs the CSR form of an edge list in parallel.
// workers <= 0 selects GOMAXPROCS.
func BuildGraph(workers int, el *EdgeList) *Graph {
	return graph.BuildCSR(workers, el)
}

// Graph I/O.

// LoadEdgeList reads a SNAP-style "u v [w]" text file.
func LoadEdgeList(path string) (*EdgeList, error) { return graph.ReadEdgeListFile(path) }

// SaveEdgeList writes a SNAP-style edge list text file.
func SaveEdgeList(path string, el *EdgeList) error { return graph.WriteEdgeListFile(path, el) }

// LoadAdjacency reads a Ligra/PBBS (Weighted)AdjacencyGraph file.
func LoadAdjacency(path string) (*Graph, error) { return graph.ReadAdjacencyFile(path) }

// SaveAdjacency writes a Ligra/PBBS (Weighted)AdjacencyGraph file.
func SaveAdjacency(path string, g *Graph) error { return graph.WriteAdjacencyFile(path, g) }

// LoadBinary reads the compact binary CSR format.
func LoadBinary(path string) (*Graph, error) { return graph.ReadBinaryFile(path) }

// SaveBinary writes the compact binary CSR format.
func SaveBinary(path string, g *Graph) error { return graph.WriteBinaryFile(path, g) }

// Generators (deterministic; independent of worker count).

// NewErdosRenyi samples m uniform random edges over n vertices.
func NewErdosRenyi(workers, n int, m int64, seed uint64) *EdgeList {
	return gen.ErdosRenyi(workers, n, m, seed)
}

// NewRMAT samples a Graph500-parameterized R-MAT graph over 2^scale
// vertices (the repository's stand-in for SNAP social networks).
func NewRMAT(workers, scale int, m int64, seed uint64) *EdgeList {
	return gen.RMAT(workers, scale, m, gen.Graph500Params, seed)
}

// NewSBM samples a planted-partition stochastic block model and returns
// the graph plus ground-truth block labels.
func NewSBM(workers, n, k int, pIn, pOut float64, seed uint64) (*EdgeList, []int32) {
	return gen.SBM(workers, n, k, pIn, pOut, seed)
}

// Labels.

// SampleLabels implements the paper's protocol: labels uniform over
// [0, k) for fraction of the nodes, Unknown elsewhere.
func SampleLabels(n, k int, fraction float64, seed uint64) []int32 {
	return labels.SampleSemiSupervised(n, k, fraction, seed)
}

// PropagationLabels derives labels by community detection (synchronous
// label propagation — the repository's Leiden substitute). The graph
// should be symmetrized.
func PropagationLabels(workers int, g *Graph, rounds int, seed uint64) []int32 {
	return labels.Propagation(workers, g, rounds, seed)
}

// Evaluation.

// KMeansLabels clusters embedding rows into k clusters and returns the
// assignment.
func KMeansLabels(workers int, z *Dense, k int, seed uint64) []int32 {
	return cluster.KMeans(workers, z, k, seed, 100).Assign
}

// ARI computes the Adjusted Rand Index between two labelings.
func ARI(a, b []int32) float64 { return cluster.ARI(a, b) }

// NMI computes normalized mutual information between two labelings.
func NMI(a, b []int32) float64 { return cluster.NMI(a, b) }

// Engine algorithms (the same EdgeMap interface GEE runs on).

// BFS returns hop distances from source (-1 when unreachable).
func BFS(workers int, g *Graph, source NodeID) []int32 { return ligra.BFS(workers, g, source) }

// ConnectedComponents labels each vertex with its component's minimum id.
func ConnectedComponents(workers int, g *Graph) []NodeID {
	return ligra.ConnectedComponents(workers, g)
}

// PageRank runs damped power iteration to eps or maxIter.
func PageRank(workers int, g *Graph, damping, eps float64, maxIter int) []float64 {
	return ligra.PageRank(workers, g, damping, eps, maxIter)
}

// Symmetrize returns an edge list with both arc directions per edge (for
// traversal algorithms; GEE does not need it).
func Symmetrize(el *EdgeList) *EdgeList { return graph.Symmetrize(el) }

// WriteEmbedding streams Z as TSV (one vertex per row).
func WriteEmbedding(w io.Writer, z *Dense) error { return writeEmbeddingTSV(w, z) }

// Spectral baseline.

type (
	// SpectralOptions configures the adjacency spectral embedding baseline.
	SpectralOptions = spectral.Options
	// SpectralResult is the ASE output.
	SpectralResult = spectral.Result
)

// SpectralEmbed computes the adjacency spectral embedding of a
// symmetrized graph — the baseline family the GEE papers compare against.
func SpectralEmbed(g *Graph, opts SpectralOptions) (*SpectralResult, error) {
	return spectral.Embed(g, opts)
}

// Streaming / incremental embedding.

// StreamingEmbedder maintains a GEE embedding under edge insertions and
// removals (contributions are linear, so batches fold in atomically).
// Labels are fixed at construction; for label churn, deletions with
// exact-match semantics, and concurrent serving use DynamicEmbedder.
type StreamingEmbedder = gee.StreamingEmbedder

// NewStreamingEmbedder prepares an empty embedding with fixed labels.
func NewStreamingEmbedder(n int, y []int32, opts Options) (*StreamingEmbedder, error) {
	return gee.NewStreamingEmbedder(n, y, opts)
}

// Dynamic embedding service (internal/dyn): full churn — edge
// insertions and deletions plus incremental label changes — with
// epoch-versioned snapshots serving concurrent readers while writers
// keep ingesting. cmd/geeserve drives it as a service workload.

type (
	// DynamicEmbedder maintains a GEE embedding under edge and label
	// churn and serves lock-free consistent reads.
	DynamicEmbedder = dyn.DynamicEmbedder
	// DynamicOptions configures a DynamicEmbedder.
	DynamicOptions = dyn.Options
	// DynamicBatch is one atomic unit of dynamic ingest: deletions,
	// then insertions, then label updates.
	DynamicBatch = dyn.Batch
	// DynamicSnapshot is one published, immutable embedding version.
	DynamicSnapshot = dyn.Snapshot
	// DynamicStats counts a DynamicEmbedder's operations.
	DynamicStats = dyn.Stats
	// LabelUpdate reassigns one vertex's class in a DynamicBatch.
	LabelUpdate = dyn.LabelUpdate
)

// NewDynamicEmbedder prepares a dynamic embedding service for n
// vertices with the given initial labels (Unknown where unlabeled).
func NewDynamicEmbedder(n int, y []int32, opts DynamicOptions) (*DynamicEmbedder, error) {
	return dyn.New(n, y, opts)
}

// Network serving layer (internal/server): the HTTP/JSON API over a
// DynamicEmbedder — lock-free snapshot reads, coalesced writes with
// publish-epoch acks and bounded-queue backpressure. cmd/geeserve
// -serve runs it; cmd/geeload load-tests it; internal/server/client is
// the typed Go client.

type (
	// EmbeddingServer serves a DynamicEmbedder over HTTP.
	EmbeddingServer = server.Server
	// ServerOptions configures an EmbeddingServer.
	ServerOptions = server.Options
	// CoalescerOptions bounds the server's ingest micro-batching.
	CoalescerOptions = server.CoalescerOptions
	// EmbeddingClient is the typed client for the serving API.
	EmbeddingClient = client.Client
	// ClientOption configures an EmbeddingClient.
	ClientOption = client.Option
	// WireFormat selects the client's response encoding for the
	// row-carrying endpoints: JSON (the default) or binary frames.
	WireFormat = client.Format
)

// Wire formats an EmbeddingClient can negotiate (see WithWireFormat).
const (
	WireJSON   = client.JSON
	WireBinary = client.Binary
)

// WithWireFormat makes the client request the given wire format;
// WireBinary negotiates compact float32 frames (sparse deltas,
// mmap-able snapshots) and falls back to JSON against a server that
// does not speak them.
func WithWireFormat(f WireFormat) ClientOption { return client.WithWire(f) }

// NewEmbeddingServer builds a server over the embedder and starts its
// ingest coalescer.
func NewEmbeddingServer(d *DynamicEmbedder, opts ServerOptions) *EmbeddingServer {
	return server.New(d, opts)
}

// NewEmbeddingClient builds a client for a serving base URL like
// "http://127.0.0.1:8080" (nil http.Client selects the default).
func NewEmbeddingClient(base string, hc *http.Client, opts ...ClientOption) *EmbeddingClient {
	return client.New(base, hc, opts...)
}

// Observability (internal/metrics): the dependency-free instrument
// registry every serving layer records into, exposed by the server at
// GET /metrics in the Prometheus text format. Embedding processes can
// pass their own registry via ServerOptions.Metrics and add their own
// instruments next to the server's.

type (
	// MetricsRegistry holds counters, gauges, and histograms and
	// renders them as Prometheus text exposition.
	MetricsRegistry = metrics.Registry
	// MetricsCounter is a monotonically increasing atomic counter.
	MetricsCounter = metrics.Counter
	// MetricsGauge is a settable atomic gauge.
	MetricsGauge = metrics.Gauge
	// MetricsHistogram is a lock-free fixed-bucket latency/size
	// histogram with mergeable snapshots and quantile estimation.
	MetricsHistogram = metrics.Histogram
	// MetricsHistogramSnapshot is one consistent view of a histogram
	// (mergeable across instances; Quantile estimates p50/p90/p99).
	MetricsHistogramSnapshot = metrics.HistogramSnapshot
	// MetricsLabel is one name="value" pair on an instrument.
	MetricsLabel = metrics.Label
	// MetricsSample is one parsed Prometheus exposition line.
	MetricsSample = metrics.Sample
)

// NewMetricsRegistry returns an empty instrument registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// ExpBuckets returns n log-spaced histogram bucket bounds starting at
// start and growing by factor (the scheme the serving instruments use).
func ExpBuckets(start, factor float64, n int) []float64 {
	return metrics.ExpBuckets(start, factor, n)
}

// ParseMetricsText reads Prometheus text exposition (e.g. a /metrics
// scrape) into typed samples.
func ParseMetricsText(r io.Reader) ([]MetricsSample, error) { return metrics.ParseText(r) }

// Read-path scale-out: epoch deltas for replica fan-out, replica
// followers serving local lock-free reads, and exact nearest-neighbor
// search over a published embedding.

type (
	// EmbeddingDelta describes how to advance a copy of the embedding
	// between epochs (changed rows + label moves), or demands a resync
	// when the span is not row-reconstructible.
	EmbeddingDelta = dyn.Delta
	// EmbeddingReplica is a read-only follower of a serving endpoint:
	// it bootstraps from /v1/snapshot and stays current via /v1/delta.
	EmbeddingReplica = client.Replica
	// ReplicaSnapshot is one immutable local version held by a replica.
	ReplicaSnapshot = client.ReplicaSnapshot
	// ReplicaStats counts a replica's syncs, resyncs, and wire bytes.
	ReplicaStats = client.ReplicaStats
	// NeighborMetric selects the NearestNeighbors distance.
	NeighborMetric = cluster.Metric
	// Neighbor is one nearest-neighbor result: row id and distance.
	Neighbor = cluster.Neighbor
	// NeighborsRequest is the POST /v1/neighbors body (vertex, k,
	// metric, and the exact/approx mode with its nprobe).
	NeighborsRequest = server.NeighborsRequest
	// NeighborsResponse reports the neighbors plus which mode and
	// index epoch actually answered.
	NeighborsResponse = server.NeighborsResponse
	// ApproxIndex is an inverted-file (IVF) approximate
	// nearest-neighbor index over an immutable embedding matrix.
	ApproxIndex = cluster.IVF
	// ApproxIndexOptions configures BuildApproxIndex.
	ApproxIndexOptions = cluster.IVFOptions
	// ServerIndexOptions configures the serving layer's epoch-aware
	// approximate index cache.
	ServerIndexOptions = server.IndexOptions
)

// Metrics for NearestNeighbors (and the /v1/neighbors endpoint).
const (
	L2Metric     = cluster.L2
	CosineMetric = cluster.Cosine
)

// NewEmbeddingReplica builds a replica follower over a serving client.
// The first Sync bootstraps from a full snapshot; later Syncs apply
// epoch deltas and fall back to a snapshot only when told to resync.
func NewEmbeddingReplica(c *EmbeddingClient) *EmbeddingReplica {
	return client.NewReplica(c)
}

// NearestNeighbors returns the k rows of X nearest to query under the
// metric, ascending by distance. Pass a row id as exclude to skip it
// (the row the query came from), or a negative value to keep all rows.
func NearestNeighbors(workers int, X *Dense, query []float64, k int, m NeighborMetric, exclude int) []Neighbor {
	return cluster.TopK(workers, X, query, k, m, exclude)
}

// BuildApproxIndex clusters the rows of X into an inverted-file
// approximate nearest-neighbor index: Search probes only the nprobe
// lists nearest the query instead of scanning every row. X must stay
// immutable while the index is in use (index a published snapshot's
// matrix, not a live one).
func BuildApproxIndex(workers int, X *Dense, opts ApproxIndexOptions) *ApproxIndex {
	return cluster.BuildIVF(workers, X, opts)
}

// Directed variant and structural helpers.

// EmbedDirected produces the 2K-wide directed embedding (separate out-
// and in-profiles per vertex).
func EmbedDirected(impl Impl, g *Graph, y []int32, opts Options) (*Result, error) {
	return gee.EmbedDirected(impl, g, y, opts)
}

// FoldDirected collapses a directed 2K-wide embedding to the standard K.
func FoldDirected(z *Dense) *Dense { return gee.FoldDirected(z) }

// DiagonalAugment adds a unit self loop per vertex (the GEE paper's
// diagonal augmentation for low-degree stability).
func DiagonalAugment(el *EdgeList) *EdgeList { return gee.DiagonalAugment(el) }

// KNNClassify predicts labels by k-nearest-neighbor vote in embedding
// space (rows with y >= 0 are the training set).
func KNNClassify(workers int, z *Dense, y []int32, k int) []int32 {
	return cluster.KNNClassify(workers, z, y, k)
}

// Random-walk embedding baseline (DeepWalk / node2vec).

type (
	// WalkConfig configures random-walk generation.
	WalkConfig = walks.WalkConfig
	// WalkTrainConfig configures skip-gram-with-negative-sampling training.
	WalkTrainConfig = walks.TrainConfig
)

// GenerateWalks produces random walks over a symmetrized, adjacency-
// sorted graph (uniform when P=Q=1, node2vec-biased otherwise).
func GenerateWalks(g *Graph, cfg WalkConfig) ([][]NodeID, error) {
	return walks.Generate(g, cfg)
}

// TrainWalkEmbedding learns vertex embeddings from a walk corpus (SGNS).
func TrainWalkEmbedding(n int, corpus [][]NodeID, cfg WalkTrainConfig) (*Dense, error) {
	return walks.Train(n, corpus, cfg)
}

// GCN baseline.

type (
	// GCNConfig configures the 2-layer GCN baseline.
	GCNConfig = gcn.Config
	// GCNResult is the trained GCN output.
	GCNResult = gcn.Result
)

// TrainGCN fits the 2-layer GCN baseline on a symmetrized graph for
// semi-supervised node classification (y: class or -1).
func TrainGCN(g *Graph, y []int32, x *Dense, cfg GCNConfig) (*GCNResult, error) {
	return gcn.Train(g, y, x, cfg)
}

// Additional engine algorithms.

// BellmanFord computes shortest-path distances over non-negative weights
// using the engine's writeMin primitive (+Inf = unreachable).
func BellmanFord(workers int, g *Graph, source NodeID) []float64 {
	return ligra.BellmanFord(workers, g, source)
}

// KCore returns the coreness of every vertex of a symmetrized graph.
func KCore(workers int, g *Graph) []int32 { return ligra.KCore(workers, g) }

// TriangleCount counts triangles of a symmetrized, adjacency-sorted graph.
func TriangleCount(workers int, g *Graph) int64 { return ligra.TriangleCount(workers, g) }

// BetweennessCentrality returns single-source Brandes dependencies.
func BetweennessCentrality(workers int, g *Graph, source NodeID) []float64 {
	return ligra.BetweennessCentrality(workers, g, source)
}

// MaximalIndependentSet computes an MIS with Luby's algorithm.
func MaximalIndependentSet(workers int, g *Graph, seed uint64) []bool {
	return ligra.MaximalIndependentSet(workers, g, seed)
}

// DeltaStepping computes shortest paths with bucketed relaxation
// (delta <= 0 picks the mean edge weight).
func DeltaStepping(workers int, g *Graph, source NodeID, delta float64) []float64 {
	return ligra.DeltaStepping(workers, g, source, delta)
}

// GreedyColor computes a proper vertex coloring (Jones-Plassmann).
func GreedyColor(workers int, g *Graph, seed uint64) []int32 {
	return ligra.GreedyColor(workers, g, seed)
}

// SortAdjacency canonically sorts every adjacency list (required by
// TriangleCount and node2vec-biased walks).
func SortAdjacency(workers int, g *Graph) { graph.SortAdjacency(workers, g) }

// Compressed graphs and large-graph loading.

// CompressedGraph is the Ligra+-style varint delta-encoded adjacency
// structure (unweighted graphs; 2-4x smaller than plain CSR).
type CompressedGraph = graph.CompressedCSR

// CompressGraph builds the compressed form of an unweighted graph.
func CompressGraph(workers int, g *Graph) (*CompressedGraph, error) {
	return graph.Compress(workers, g)
}

// EmbedCompressed runs the parallel GEE kernel directly over a
// compressed graph, decoding adjacency on the fly.
func EmbedCompressed(c *CompressedGraph, y []int32, opts Options) (*Result, error) {
	return gee.EmbedCompressed(c, y, opts)
}

// MmapBinary maps a compact binary CSR file into memory without copying
// (Linux; falls back to a regular read elsewhere). Call the closer when
// done; the graph must not be used afterwards.
func MmapBinary(path string) (*Graph, func() error, error) {
	return graph.MmapBinaryFile(path)
}

// LoadMETIS reads a METIS-format graph (symmetrized, 1-indexed).
func LoadMETIS(path string) (*Graph, error) { return graph.ReadMETISFile(path) }

// SaveMETIS writes a symmetrized graph in METIS format.
func SaveMETIS(path string, g *Graph) error { return graph.WriteMETISFile(path, g) }

// DegreeOrder returns the hubs-first relabeling permutation.
func DegreeOrder(workers int, g *Graph) []NodeID { return graph.DegreeOrder(workers, g) }

// BFSOrder returns the BFS-discovery relabeling permutation.
func BFSOrder(g *Graph) []NodeID { return graph.BFSOrder(g) }

// ApplyOrder rebuilds a graph under a relabeling permutation
// (perm[old] = new).
func ApplyOrder(workers int, g *Graph, perm []NodeID) *Graph {
	return graph.ApplyOrder(workers, g, perm)
}
