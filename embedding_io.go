package repro

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/mat"
	"repro/internal/sticky"
)

// writeEmbeddingTSV streams a dense matrix as tab-separated text, one row
// per line. The sticky.Writer retains the first error for Flush, so the
// per-value writes stay unchecked by design.
func writeEmbeddingTSV(w io.Writer, z *mat.Dense) error {
	sw := sticky.NewWriter(w, 1<<20)
	for i := 0; i < z.R; i++ {
		row := z.Row(i)
		for j, v := range row {
			if j > 0 {
				sw.WriteByte('\t')
			}
			sw.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		}
		sw.WriteByte('\n')
	}
	return sw.Flush()
}

// ReadEmbedding parses the TSV produced by WriteEmbedding.
func ReadEmbedding(r io.Reader) (*Dense, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var rows [][]float64
	cols := -1
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Split(line, "\t")
		if cols == -1 {
			cols = len(fields)
		} else if len(fields) != cols {
			return nil, fmt.Errorf("repro: ragged embedding row %d: %d fields, want %d",
				len(rows), len(fields), cols)
		}
		row := make([]float64, len(fields))
		for j, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("repro: embedding row %d col %d: %w", len(rows), j, err)
			}
			row[j] = v
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return mat.FromRows(rows), nil
}
