package repro_test

import (
	"fmt"

	"repro"
)

// The basic flow: generate (or load) a graph, sample labels, embed.
func ExampleEmbed() {
	el := repro.NewErdosRenyi(1, 1000, 8000, 7)
	y := repro.SampleLabels(el.N, 10, 0.10, 1)
	res, err := repro.Embed(repro.LigraParallel, el, y, repro.Options{K: 10, Workers: 4})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Z.R, res.Z.C, res.Impl)
	// Output: 1000 10 GEE-Ligra-Parallel
}

// Every implementation computes the same embedding; Verify checks them
// all against the faithful Algorithm 1 oracle.
func ExampleVerify() {
	el := repro.NewErdosRenyi(1, 200, 1000, 3)
	y := repro.SampleLabels(el.N, 5, 0.5, 4)
	reports, err := repro.Verify(el, y, repro.Options{K: 5, Workers: 4}, 1e-9)
	if err != nil {
		panic(err)
	}
	ok, total := 0, 0
	for _, r := range reports {
		if r.Impl == repro.LigraParallelUnsafe {
			continue // racy by design; may deviate on multicore non-race builds
		}
		total++
		if r.WithinTol {
			ok++
		}
	}
	fmt.Printf("%d/%d race-free implementations within tolerance\n", ok, total)
	// Output: 5/5 race-free implementations within tolerance
}

// Unsupervised use: alternate embedding and clustering until labels
// stabilize (the GEE paper's refinement pipeline).
func ExampleRefine() {
	el, truth := repro.NewSBM(1, 600, 2, 0.2, 0.01, 5)
	res, err := repro.Refine(el, repro.RefineOptions{
		Embedding: repro.Options{K: 2, Workers: 4},
		Impl:      repro.LigraParallel,
		Seed:      6,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("ARI %.0f\n", repro.ARI(res.Labels, truth))
	// Output: ARI 1
}

// Contributions are linear, so edges stream in incrementally.
func ExampleNewStreamingEmbedder() {
	y := repro.SampleLabels(100, 4, 1.0, 8)
	s, err := repro.NewStreamingEmbedder(100, y, repro.Options{K: 4})
	if err != nil {
		panic(err)
	}
	el := repro.NewErdosRenyi(1, 100, 500, 9)
	if err := s.AddEdges(el.Edges[:250]); err != nil {
		panic(err)
	}
	if err := s.AddEdges(el.Edges[250:]); err != nil {
		panic(err)
	}
	batch, _ := repro.Embed(repro.Reference, el, y, repro.Options{K: 4})
	fmt.Println(batch.Z.EqualTol(s.Z(), 1e-9))
	// Output: true
}

// The engine under GEE is a general Ligra-style toolkit.
func ExampleBFS() {
	// a path 0-1-2-3: distances from 0 are 0,1,2,3
	el := &repro.EdgeList{N: 4, Edges: []repro.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 2, V: 3, W: 1},
	}}
	g := repro.BuildGraph(1, repro.Symmetrize(el))
	fmt.Println(repro.BFS(2, g, 0))
	// Output: [0 1 2 3]
}
