package repro

import (
	"path/filepath"
	"testing"
)

func TestFacadeMETIS(t *testing.T) {
	dir := t.TempDir()
	el := NewErdosRenyi(2, 60, 300, 53)
	// METIS requires symmetrized, self-loop-free graphs
	for i := 0; i < len(el.Edges); {
		if el.Edges[i].U == el.Edges[i].V {
			el.Edges = append(el.Edges[:i], el.Edges[i+1:]...)
		} else {
			i++
		}
	}
	g := BuildGraph(2, Symmetrize(el))
	path := filepath.Join(dir, "g.metis")
	if err := SaveMETIS(path, g); err != nil {
		t.Fatal(err)
	}
	got, err := LoadMETIS(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumEdges() != g.NumEdges() || got.N != g.N {
		t.Fatalf("round trip: n=%d m=%d want n=%d m=%d", got.N, got.NumEdges(), g.N, g.NumEdges())
	}
}

func TestFacadeMmap(t *testing.T) {
	dir := t.TempDir()
	el := NewErdosRenyi(2, 80, 500, 54)
	g := BuildGraph(2, el)
	path := filepath.Join(dir, "g.bin")
	if err := SaveBinary(path, g); err != nil {
		t.Fatal(err)
	}
	mg, closer, err := MmapBinary(path)
	if err != nil {
		t.Fatal(err)
	}
	if mg.NumEdges() != g.NumEdges() {
		t.Fatal("mmap mismatch")
	}
	// embedding from a mapped graph works
	y := SampleLabels(mg.N, 3, 0.5, 55)
	res, err := EmbedGraph(LigraParallel, mg, y, Options{K: 3, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	want, err := EmbedGraph(Reference, g, y, Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !want.Z.EqualTol(res.Z, 1e-9) {
		t.Fatal("embedding from mapped graph differs")
	}
	if err := closer(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeCompressed(t *testing.T) {
	el := NewRMAT(2, 10, 8000, 56)
	g := BuildGraph(2, el)
	SortAdjacency(2, g)
	c, err := CompressGraph(2, g)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumEdges() != g.NumEdges() {
		t.Fatal("compression lost edges")
	}
	y := SampleLabels(el.N, 6, 0.3, 57)
	got, err := EmbedCompressed(c, y, Options{K: 6, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	want, err := EmbedGraph(Reference, g, y, Options{K: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !want.Z.EqualTol(got.Z, 1e-9) {
		t.Fatal("compressed embedding differs")
	}
}

func TestFacadeReorderInvariance(t *testing.T) {
	// GEE is permutation-equivariant, so a reordered graph with
	// reordered labels yields a row-permuted embedding.
	el := NewErdosRenyi(2, 120, 900, 58)
	g := BuildGraph(2, el)
	y := SampleLabels(g.N, 4, 0.5, 59)
	perm := DegreeOrder(2, g)
	rg := ApplyOrder(2, g, perm)
	ry := make([]int32, len(y))
	for old, p := range perm {
		ry[p] = y[old]
	}
	a, err := EmbedGraph(LigraParallel, g, y, Options{K: 4, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := EmbedGraph(LigraParallel, rg, ry, Options{K: 4, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N; v++ {
		ra := a.Z.Row(v)
		rb := b.Z.Row(int(perm[v]))
		for c := range ra {
			diff := ra[c] - rb[c]
			if diff < -1e-9 || diff > 1e-9 {
				t.Fatalf("row %d differs after reorder", v)
			}
		}
	}
	// BFSOrder also yields a valid permutation
	bperm := BFSOrder(g)
	seen := make([]bool, g.N)
	for _, p := range bperm {
		if seen[p] {
			t.Fatal("BFSOrder not a permutation")
		}
		seen[p] = true
	}
}
