package trace

import (
	"context"
	"testing"
	"time"
)

func TestIDRoundTrip(t *testing.T) {
	id := NewID()
	if id == 0 {
		t.Fatal("NewID minted the reserved zero id")
	}
	s := id.String()
	if len(s) != 16 {
		t.Fatalf("ID.String() = %q, want 16 hex digits", s)
	}
	got, ok := ParseID(s)
	if !ok || got != id {
		t.Fatalf("ParseID(%q) = (%v, %v), want (%v, true)", s, got, ok, id)
	}
	for _, bad := range []string{"", "0", "zz", "123456789abcdef01", "0x12"} {
		if _, ok := ParseID(bad); ok {
			t.Errorf("ParseID(%q) accepted, want reject", bad)
		}
	}
	// Short hex (no leading zeros) is accepted: header leniency.
	if got, ok := ParseID("ff"); !ok || got != 0xff {
		t.Errorf("ParseID(\"ff\") = (%v, %v), want (255, true)", got, ok)
	}
}

func TestSpanLifecycle(t *testing.T) {
	tr := Adopt(42, "POST /v1/edges")
	if tr.ID() != 42 || tr.Name() != "POST /v1/edges" {
		t.Fatalf("Adopt kept id=%v name=%q", tr.ID(), tr.Name())
	}
	q := tr.StartSpan("queue")
	time.Sleep(time.Millisecond)
	tr.EndSpan(q)
	tr.SpanTag(q, "depth", "3")
	open := tr.StartSpan("ack") // left open: Finish must close it
	tr.Tag("status", "200")
	dur := tr.Finish()
	if dur <= 0 || tr.Duration() != dur {
		t.Fatalf("Finish() = %v, Duration() = %v", dur, tr.Duration())
	}
	sp, ok := tr.Span("queue")
	if !ok {
		t.Fatal("queue span missing")
	}
	if sp.Duration() < time.Millisecond || sp.End > dur {
		t.Fatalf("queue span [%v,%v] outside trace duration %v", sp.Start, sp.End, dur)
	}
	if len(sp.Tags) != 1 || sp.Tags[0] != (Tag{"depth", "3"}) {
		t.Fatalf("queue span tags = %v", sp.Tags)
	}
	if got := tr.Spans()[open]; got.End != dur {
		t.Fatalf("Finish left span open: End=%v want %v", got.End, dur)
	}
	if len(tr.Tags()) != 1 || tr.Tags()[0] != (Tag{"status", "200"}) {
		t.Fatalf("trace tags = %v", tr.Tags())
	}
}

func TestAddSpanExplicitTimes(t *testing.T) {
	tr := New("w")
	start := tr.Begin().Add(time.Millisecond)
	end := start.Add(2 * time.Millisecond)
	ref := tr.AddSpan("fold", start, end)
	tr.Finish()
	sp := tr.Spans()[ref]
	if sp.Start != time.Millisecond || sp.Duration() != 2*time.Millisecond {
		t.Fatalf("AddSpan recorded [%v,%v]", sp.Start, sp.End)
	}
}

// TestNilTraceSafe pins the disabled-tracing contract: every method on
// a nil *Trace is a no-op, so call sites carry no guards.
func TestNilTraceSafe(t *testing.T) {
	var tr *Trace
	ref := tr.StartSpan("queue")
	if ref >= 0 {
		t.Fatalf("nil StartSpan returned live ref %d", ref)
	}
	tr.EndSpan(ref)
	tr.EndSpan(0)
	tr.SpanTag(ref, "k", "v")
	tr.AddSpan("x", time.Now(), time.Now())
	tr.Tag("k", "v")
	if tr.Finish() != 0 || tr.ID() != 0 || tr.Name() != "" || tr.Duration() != 0 {
		t.Fatal("nil trace accessors not zero")
	}
	if tr.Spans() != nil || tr.Tags() != nil {
		t.Fatal("nil trace slices not nil")
	}
	if _, ok := tr.Span("queue"); ok {
		t.Fatal("nil trace found a span")
	}
	// Out-of-range refs on a live trace are equally inert.
	live := New("w")
	live.EndSpan(5)
	live.SpanTag(5, "k", "v")
	if len(live.Spans()) != 0 {
		t.Fatal("bad ref mutated a live trace")
	}
}

func TestContextRoundTrip(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context carried a trace")
	}
	tr := New("sync")
	ctx := NewContext(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("context did not round-trip the trace")
	}
	if got := NewContext(context.Background(), nil); FromContext(got) != nil {
		t.Fatal("NewContext(nil) stored a value")
	}
}
