package trace

import (
	"sync/atomic"
	"time"
)

// ring is a fixed-size lock-free buffer of published traces. Record
// claims a slot with one atomic increment and stores an immutable
// *Trace into it; Dump loads whatever pointers are present. A reader
// never sees a torn trace — only a whole one (possibly newer than the
// one it raced with) or nil for a slot never written.
type ring struct {
	next  atomic.Uint64
	slots []atomic.Pointer[Trace]
}

func newRing(capacity int) *ring {
	return &ring{slots: make([]atomic.Pointer[Trace], capacity)}
}

// record publishes t into the next slot.
//
//gee:noalloc
func (r *ring) record(t *Trace) {
	i := r.next.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(t)
}

// dump returns the resident traces, approximately newest-first.
func (r *ring) dump() []*Trace {
	n := r.next.Load()
	out := make([]*Trace, 0, len(r.slots))
	for k := 0; k < len(r.slots); k++ {
		if uint64(k) >= n {
			break
		}
		// Walk backwards from the most recently claimed slot.
		i := (n - 1 - uint64(k)) % uint64(len(r.slots))
		if t := r.slots[i].Load(); t != nil {
			out = append(out, t)
		}
	}
	return out
}

// DefBucketThresholds are the duration floors of the slowest-retained
// buckets: a finished trace is also stored in the slowest bucket whose
// floor it meets, so a burst of fast requests can never evict the rare
// slow one from the recorder.
var DefBucketThresholds = []time.Duration{
	time.Millisecond,
	10 * time.Millisecond,
	100 * time.Millisecond,
	time.Second,
}

// Bucket is one slowest-retained shelf in a dump.
type Bucket struct {
	Min    time.Duration
	Traces []*Trace
}

// Recorder is the always-on flight recorder: a recent ring holding the
// last N finished traces regardless of speed, plus small
// duration-bucketed rings that retain slow traces against eviction by
// fast traffic. All operations are lock-free; memory is bounded by the
// ring capacities. Record must only be called with finished traces.
type Recorder struct {
	recent  *ring
	floors  []time.Duration
	buckets []*ring
}

// NewRecorder builds a recorder whose recent ring holds recentCap
// traces (0 selects 256). Each slowest-retained bucket holds
// recentCap/8 (minimum 8).
func NewRecorder(recentCap int) *Recorder {
	if recentCap <= 0 {
		recentCap = 256
	}
	bcap := max(recentCap/8, 8)
	r := &Recorder{recent: newRing(recentCap), floors: DefBucketThresholds}
	for range r.floors {
		r.buckets = append(r.buckets, newRing(bcap))
	}
	return r
}

// Record publishes a finished trace. Nil traces are ignored, so a
// tracing-disabled pipeline can call it unconditionally.
//
//gee:noalloc
func (r *Recorder) Record(t *Trace) {
	if r == nil || t == nil {
		return
	}
	r.recent.record(t)
	d := t.Duration()
	for i := len(r.floors) - 1; i >= 0; i-- {
		if d >= r.floors[i] {
			r.buckets[i].record(t)
			return
		}
	}
}

// Recent returns the traces in the recent ring, approximately
// newest-first.
func (r *Recorder) Recent() []*Trace {
	if r == nil {
		return nil
	}
	return r.recent.dump()
}

// Buckets returns the slowest-retained shelves, fastest floor first.
func (r *Recorder) Buckets() []Bucket {
	if r == nil {
		return nil
	}
	out := make([]Bucket, len(r.floors))
	for i := range r.floors {
		out[i] = Bucket{Min: r.floors[i], Traces: r.buckets[i].dump()}
	}
	return out
}

// Find returns any retained trace with the given id (recent ring
// first, then the slow buckets), or nil.
func (r *Recorder) Find(id ID) *Trace {
	if r == nil {
		return nil
	}
	for _, t := range r.recent.dump() {
		if t.ID() == id {
			return t
		}
	}
	for _, b := range r.buckets {
		for _, t := range b.dump() {
			if t.ID() == id {
				return t
			}
		}
	}
	return nil
}
