package trace

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// finished fabricates a published trace with a chosen duration (the
// recorder buckets on Duration, which tests can't control through the
// wall clock).
func finished(name string, d time.Duration) *Trace {
	tr := New(name)
	tr.AddSpan("queue", tr.begin, tr.begin.Add(d/2))
	tr.dur = d
	return tr
}

// TestRecorderBounded is the capacity property: however many traces
// are recorded, the recorder retains at most recentCap in the recent
// ring and bucketCap per slow shelf.
func TestRecorderBounded(t *testing.T) {
	rec := NewRecorder(16)
	for i := 0; i < 500; i++ {
		rec.Record(finished("w", time.Duration(i)*time.Millisecond))
	}
	if n := len(rec.Recent()); n > 16 {
		t.Fatalf("recent ring holds %d traces, cap 16", n)
	}
	for _, b := range rec.Buckets() {
		if len(b.Traces) > 8 {
			t.Fatalf("bucket %v holds %d traces, cap 8", b.Min, len(b.Traces))
		}
		for _, tr := range b.Traces {
			if tr.Duration() < b.Min {
				t.Fatalf("bucket %v retained a %v trace", b.Min, tr.Duration())
			}
		}
	}
}

// TestSlowestRetainedSurvivesEviction: one slow trace followed by a
// flood of fast ones must be evicted from the recent ring yet stay
// findable through its duration bucket.
func TestSlowestRetainedSurvivesEviction(t *testing.T) {
	rec := NewRecorder(16)
	slow := finished("w", 2*time.Second)
	rec.Record(slow)
	for i := 0; i < 1000; i++ {
		rec.Record(finished("w", 10*time.Microsecond))
	}
	for _, tr := range rec.Recent() {
		if tr == slow {
			t.Fatal("slow trace still in recent ring after 1000 records: eviction untested")
		}
	}
	if got := rec.Find(slow.ID()); got != slow {
		t.Fatalf("Find(%v) = %v after fast flood, want the slow trace retained", slow.ID(), got)
	}
	buckets := rec.Buckets()
	last := buckets[len(buckets)-1]
	if len(last.Traces) != 1 || last.Traces[0] != slow {
		t.Fatalf("1s bucket = %d traces, want exactly the slow one", len(last.Traces))
	}
}

// TestRecorderNewestFirst: dumps walk backwards from the last claimed
// slot, so the most recent record leads.
func TestRecorderNewestFirst(t *testing.T) {
	rec := NewRecorder(8)
	for i := 0; i < 20; i++ {
		rec.Record(finished(fmt.Sprintf("t%d", i), 0))
	}
	got := rec.Recent()
	if len(got) != 8 {
		t.Fatalf("recent holds %d, want 8", len(got))
	}
	if got[0].Name() != "t19" || got[7].Name() != "t12" {
		t.Fatalf("order = [%s .. %s], want [t19 .. t12]", got[0].Name(), got[7].Name())
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var rec *Recorder
	rec.Record(finished("w", time.Second))
	if rec.Recent() != nil || rec.Buckets() != nil || rec.Find(1) != nil {
		t.Fatal("nil recorder returned data")
	}
	live := NewRecorder(4)
	live.Record(nil)
	if n := len(live.Recent()); n != 0 {
		t.Fatalf("Record(nil) stored %d traces", n)
	}
}

// TestRecorderConcurrentRecordDump is the torn-read property test (run
// under -race in CI): writers publish finished traces while readers
// dump continuously. Every trace a reader observes must be internally
// consistent — a whole published value, never a partial write.
func TestRecorderConcurrentRecordDump(t *testing.T) {
	rec := NewRecorder(32)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				d := time.Duration(i%2000) * time.Millisecond
				tr := finished(fmt.Sprintf("w%d", w), d)
				tr.Tag("dur", d.String())
				rec.Record(tr)
			}
		}(w)
	}
	check := func(tr *Trace) {
		// Published traces carry exactly the shape finished() built:
		// one closed queue span at half the duration, one matching tag.
		if tr.ID() == 0 {
			t.Error("dumped trace has zero id")
		}
		sp, ok := tr.Span("queue")
		if !ok || sp.End != tr.Duration()/2 {
			t.Errorf("torn trace: span %+v vs duration %v", sp, tr.Duration())
		}
		tags := tr.Tags()
		if len(tags) != 1 || tags[0].Value != tr.Duration().String() {
			t.Errorf("torn trace: tags %v vs duration %v", tags, tr.Duration())
		}
	}
	deadline := time.Now().Add(200 * time.Millisecond)
	for time.Now().Before(deadline) {
		for _, tr := range rec.Recent() {
			check(tr)
		}
		for _, b := range rec.Buckets() {
			for _, tr := range b.Traces {
				check(tr)
				if tr.Duration() < b.Min {
					t.Errorf("bucket %v holds %v trace", b.Min, tr.Duration())
				}
			}
		}
	}
	close(stop)
	wg.Wait()
}
