// Package trace is a dependency-free, allocation-conscious span
// recorder for the serving pipeline. One Trace is a flat span tree: a
// root interval (the HTTP request, or a replica sync) plus named child
// spans recorded as offsets from the root's begin time, each carrying
// optional string tags. Traces are minted at ingress — or adopted from
// a caller-supplied 64-bit id so a client and server share one id —
// threaded through the pipeline by value handoff, finished once, and
// then published to a Recorder as immutable values.
//
// Concurrency contract: a *Trace is owned by exactly one goroutine at
// a time. Handoffs (HTTP handler → coalescer ingest goroutine → back
// to the handler via the ack channel) must synchronize through a
// channel send/receive or equivalent, which establishes the
// happens-before edge the unguarded field writes rely on. After
// Finish the trace must not be mutated; Recorder only ever publishes
// finished traces, so readers of a dump never observe a torn trace.
//
// Every method on *Trace is nil-safe: with tracing disabled the
// pipeline threads a nil *Trace through the same code paths and every
// call is a cheap no-op, so call sites need no `if tr != nil` guards.
package trace

import (
	"context"
	"fmt"
	"math/rand/v2"
	"strconv"
	"time"
)

// Header is the HTTP header carrying a trace id between processes.
// Clients send it so the server adopts their id; the contract is a
// 1-16 digit lowercase hex string encoding a nonzero uint64.
const Header = "X-Gee-Trace"

// ID is a 64-bit trace identifier. Zero is reserved for "no id".
type ID uint64

// NewID mints a random nonzero trace id.
func NewID() ID {
	for {
		if id := ID(rand.Uint64()); id != 0 {
			return id
		}
	}
}

// String renders the id in the fixed 16-hex-digit wire form.
func (id ID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// ParseID parses the wire form (any 1-16 digit hex string). The zero
// id and malformed strings report ok=false.
func ParseID(s string) (ID, bool) {
	if s == "" || len(s) > 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil || v == 0 {
		return 0, false
	}
	return ID(v), true
}

// Tag is one key=value annotation on a trace or span.
type Tag struct {
	Key, Value string
}

// Span is one named stage inside a trace. Start and End are offsets
// from the trace's Begin time; End is -1 while the span is open
// (Finish closes any span still open at the trace's end).
type Span struct {
	Name  string
	Start time.Duration
	End   time.Duration
	Tags  []Tag
}

// Duration is the span's extent; 0 for a span that never closed.
func (s Span) Duration() time.Duration {
	if s.End < s.Start {
		return 0
	}
	return s.End - s.Start
}

// SpanRef names a span within its trace for EndSpan/SpanTag. The
// no-op reference (returned by methods on a nil trace) is negative.
type SpanRef int

// Trace is one request's span tree under construction. Zero value is
// not useful; construct with New or Adopt.
type Trace struct {
	id    ID
	name  string
	begin time.Time
	dur   time.Duration // set by Finish; 0 while in flight
	spans []Span
	tags  []Tag
}

// New starts a trace with a freshly minted id.
func New(name string) *Trace { return Adopt(NewID(), name) }

// Adopt starts a trace under a caller-supplied id (a zero id mints a
// fresh one), beginning now.
func Adopt(id ID, name string) *Trace {
	if id == 0 {
		id = NewID()
	}
	return &Trace{id: id, name: name, begin: time.Now(), spans: make([]Span, 0, 8)}
}

// StartSpan opens a span beginning now.
func (t *Trace) StartSpan(name string) SpanRef {
	return t.StartSpanAt(name, time.Now())
}

// StartSpanAt opens a span beginning at an explicit instant, so
// adjacent stages can share one clock reading and stay contiguous.
func (t *Trace) StartSpanAt(name string, at time.Time) SpanRef {
	if t == nil {
		return -1
	}
	t.spans = append(t.spans, Span{Name: name, Start: at.Sub(t.begin), End: -1})
	return SpanRef(len(t.spans) - 1)
}

// EndSpan closes the referenced span now.
func (t *Trace) EndSpan(ref SpanRef) { t.EndSpanAt(ref, time.Now()) }

// EndSpanAt closes the referenced span at an explicit instant.
func (t *Trace) EndSpanAt(ref SpanRef, at time.Time) {
	if t == nil || ref < 0 || int(ref) >= len(t.spans) {
		return
	}
	t.spans[ref].End = at.Sub(t.begin)
}

// AddSpan records an already-measured closed span.
func (t *Trace) AddSpan(name string, start, end time.Time) SpanRef {
	if t == nil {
		return -1
	}
	t.spans = append(t.spans, Span{Name: name, Start: start.Sub(t.begin), End: end.Sub(t.begin)})
	return SpanRef(len(t.spans) - 1)
}

// SpanTag annotates the referenced span.
func (t *Trace) SpanTag(ref SpanRef, key, value string) {
	if t == nil || ref < 0 || int(ref) >= len(t.spans) {
		return
	}
	t.spans[ref].Tags = append(t.spans[ref].Tags, Tag{key, value})
}

// Tag annotates the trace itself.
func (t *Trace) Tag(key, value string) {
	if t == nil {
		return
	}
	t.tags = append(t.tags, Tag{key, value})
}

// Finish closes the trace (and any span still open) and returns its
// end-to-end duration. The trace must not be mutated afterwards.
func (t *Trace) Finish() time.Duration {
	if t == nil {
		return 0
	}
	t.dur = time.Since(t.begin)
	for i := range t.spans {
		if t.spans[i].End < 0 {
			t.spans[i].End = t.dur
		}
	}
	return t.dur
}

// ID returns the trace id (zero for a nil trace).
func (t *Trace) ID() ID {
	if t == nil {
		return 0
	}
	return t.id
}

// Name returns the trace's root name.
func (t *Trace) Name() string {
	if t == nil {
		return ""
	}
	return t.name
}

// Begin returns the trace's start time.
func (t *Trace) Begin() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.begin
}

// Duration returns the end-to-end duration (0 until Finish).
//
//gee:noalloc
func (t *Trace) Duration() time.Duration {
	if t == nil {
		return 0
	}
	return t.dur
}

// Spans returns the recorded spans. The caller must not mutate the
// slice once the trace is finished and published.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	return t.spans
}

// Tags returns the trace-level tags.
func (t *Trace) Tags() []Tag {
	if t == nil {
		return nil
	}
	return t.tags
}

// Span returns the first span with the given name, or false.
func (t *Trace) Span(name string) (Span, bool) {
	if t != nil {
		for _, s := range t.spans {
			if s.Name == name {
				return s, true
			}
		}
	}
	return Span{}, false
}

type ctxKey struct{}

// NewContext returns ctx carrying the trace, so a client call stack
// can propagate the id into outbound request headers.
func NewContext(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the trace carried by ctx, or nil.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}
