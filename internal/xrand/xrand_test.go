package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(12345), New(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between different seeds", same)
	}
}

func TestStreamsIndependent(t *testing.T) {
	s0, s1 := NewStream(7, 0), NewStream(7, 1)
	same := 0
	for i := 0; i < 1000; i++ {
		if s0.Uint64() == s1.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("substreams overlap: %d equal outputs", same)
	}
}

func TestStreamDeterministic(t *testing.T) {
	a := NewStream(99, 5)
	b := NewStream(99, 5)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("substream not deterministic")
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPowerOfTwo(t *testing.T) {
	r := New(8)
	for i := 0; i < 1000; i++ {
		if v := r.Uint64n(64); v >= 64 {
			t.Fatalf("Uint64n(64)=%d", v)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	for i := 0; i < 10_000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64()=%v out of [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(5)
	var sum float64
	const n = 200_000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("mean=%v, expected ~0.5", mean)
	}
}

func TestIntnUniformity(t *testing.T) {
	r := New(17)
	const buckets = 10
	const n = 100_000
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	want := float64(n) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d deviates from %v", b, c, want)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(23)
	const n = 200_000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean=%v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance=%v", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(31)
	for _, n := range []int{0, 1, 2, 10, 1000} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(41)
	s := []int{1, 2, 2, 3, 3, 3, 4}
	want := map[int]int{1: 1, 2: 2, 3: 3, 4: 1}
	Shuffle(r, s)
	got := map[int]int{}
	for _, v := range s {
		got[v]++
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("multiset changed: got %v", got)
		}
	}
}

func TestPoissonMean(t *testing.T) {
	for _, lambda := range []float64{0.5, 3, 25, 100, 5000} {
		r := New(uint64(53 + int(lambda)))
		const n = 20_000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(r.Poisson(lambda))
		}
		mean := sum / n
		// Poisson stderr = sqrt(lambda/n); allow 6 sigma.
		tol := 6 * math.Sqrt(lambda/float64(n))
		if math.Abs(mean-lambda) > tol+0.05 {
			t.Fatalf("lambda=%v: sample mean %v", lambda, mean)
		}
	}
}

func TestPoissonNonNegative(t *testing.T) {
	r := New(61)
	for i := 0; i < 10_000; i++ {
		if r.Poisson(40) < 0 {
			t.Fatal("negative Poisson draw")
		}
	}
	if r.Poisson(0) != 0 || r.Poisson(-3) != 0 {
		t.Fatal("Poisson of non-positive lambda must be 0")
	}
}

func TestExponentialMean(t *testing.T) {
	r := New(67)
	const n = 100_000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exponential()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("Exp(1) mean=%v", mean)
	}
}

func TestMix64Injective(t *testing.T) {
	f := func(a, b uint64) bool {
		if a == b {
			return true
		}
		return Mix64(a) != Mix64(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
