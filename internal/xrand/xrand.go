// Package xrand implements deterministic, splittable pseudo-random number
// generation for parallel workloads.
//
// Graph generation in this repository is parallel: each worker generates a
// disjoint chunk of edges. To keep outputs identical regardless of worker
// count (a requirement for reproducible benchmarks), every chunk derives
// its own statistically independent stream from (seed, streamID) via
// SplitMix64, feeding a xoshiro256** generator.
package xrand

import "math"

// SplitMix64 is the 64-bit mixing generator from Steele et al. It is used
// both as a standalone generator and to seed xoshiro streams.
type SplitMix64 struct{ state uint64 }

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 { return &SplitMix64{state: seed} }

// Next returns the next 64-bit value.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix64 returns a single SplitMix64 step of x: a cheap, high-quality
// 64-bit hash used to derive per-stream seeds.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Rand is a xoshiro256** generator.
type Rand struct{ s0, s1, s2, s3 uint64 }

// New returns a generator seeded from seed via SplitMix64.
func New(seed uint64) *Rand {
	sm := NewSplitMix64(seed)
	return &Rand{sm.Next(), sm.Next(), sm.Next(), sm.Next()}
}

// NewStream returns the generator for substream streamID of seed. Distinct
// (seed, streamID) pairs yield independent streams; the mapping is
// deterministic, so parallel generation is reproducible for any worker
// count.
func NewStream(seed, streamID uint64) *Rand {
	return New(Mix64(seed) ^ Mix64(streamID*0xda942042e4dd58b5+1))
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Uint32 returns the next 32 random bits.
func (r *Rand) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniform value in [0, n). n must be > 0.
// Uses Lemire's multiply-shift bounded generation (negligible bias for the
// graph sizes used here is avoided via the rejection step).
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform value in [0, n) using rejection sampling.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with n == 0")
	}
	if n&(n-1) == 0 { // power of two
		return r.Uint64() & (n - 1)
	}
	max := ^uint64(0) - ^uint64(0)%n
	for {
		v := r.Uint64()
		if v <= max {
			return v % n
		}
	}
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate (Box-Muller, cached pair
// omitted for simplicity; generators here are not throughput-critical).
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes s in place (Fisher-Yates).
func Shuffle[T any](r *Rand, s []T) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}

// Exponential returns an Exp(1) variate.
func (r *Rand) Exponential() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Poisson returns a Poisson(lambda) variate. For small lambda it uses
// Knuth's product method; for large lambda a normal approximation with
// continuity correction, which is accurate far beyond the needs of
// expected-degree graph sampling.
func (r *Rand) Poisson(lambda float64) int64 {
	if lambda <= 0 {
		return 0
	}
	if lambda < 30 {
		l := math.Exp(-lambda)
		var k int64
		p := 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	v := lambda + math.Sqrt(lambda)*r.NormFloat64() + 0.5
	if v < 0 {
		return 0
	}
	return int64(v)
}
