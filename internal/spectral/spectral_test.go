package spectral

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/gen"
	"repro/internal/graph"
)

func symCSR(t *testing.T, el *graph.EdgeList) *graph.CSR {
	t.Helper()
	g := graph.BuildCSR(4, graph.Symmetrize(el))
	graph.SortAdjacency(4, g)
	return g
}

func TestLeadingEigenvalueIsOne(t *testing.T) {
	// For any connected non-bipartite graph the normalized adjacency has
	// a unique dominant eigenvalue exactly 1 (eigenvector D^{1/2}·1).
	// (Bipartite graphs also have -1, which ties in magnitude — subspace
	// iteration cannot prefer one, so those need the K=2 test below.)
	grid := gen.Grid2D(5, 6)
	grid.Edges = append(grid.Edges, graph.Edge{U: 0, V: 7, W: 1}) // diagonal: adds a triangle
	for _, el := range []*graph.EdgeList{gen.Cycle(15), gen.Complete(10), grid} {
		g := symCSR(t, el)
		res, err := Embed(g, Options{K: 1, Seed: 1, MaxIter: 2000, Tol: 1e-12})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Values[0]-1) > 1e-6 {
			t.Fatalf("top eigenvalue %v want 1", res.Values[0])
		}
	}
}

func TestCompleteGraphSpectrum(t *testing.T) {
	// Normalized adjacency of K_n: eigenvalues 1 and -1/(n-1).
	n := 12
	g := symCSR(t, gen.Complete(n))
	res, err := Embed(g, Options{K: 3, Seed: 2, MaxIter: 2000, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Values[0]-1) > 1e-6 {
		t.Fatalf("lambda0=%v", res.Values[0])
	}
	want := -1.0 / float64(n-1)
	for _, got := range res.Values[1:] {
		if math.Abs(got-want) > 1e-5 {
			t.Fatalf("subdominant eigenvalue %v want %v", got, want)
		}
	}
}

func TestOddCycleSpectrum(t *testing.T) {
	// Normalized adjacency of C_n has eigenvalues cos(2*pi*j/n). For odd
	// n = 15 the three largest by magnitude are {1, cos(14π/15),
	// cos(14π/15)} ≈ {1, -0.978, -0.978}, with a clean magnitude gap to
	// the next pair (0.913) — so subspace iteration must recover them.
	// (Even cycles are bipartite with a ±1 magnitude tie; subspace
	// iteration cannot split equal-magnitude eigenvalues, so they make a
	// poor oracle.)
	n := 15
	g := symCSR(t, gen.Cycle(n))
	res, err := Embed(g, Options{K: 3, Seed: 3, MaxIter: 5000, Tol: 1e-13})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Values[0]-1) > 1e-6 {
		t.Fatalf("lambda0=%v", res.Values[0])
	}
	want := math.Cos(2 * math.Pi * 7 / float64(n))
	for _, got := range res.Values[1:] {
		if math.Abs(got-want) > 1e-4 {
			t.Fatalf("eigenvalues %v want second pair %v", res.Values, want)
		}
	}
}

func TestBipartiteNegativeEigenvalueFound(t *testing.T) {
	// Even cycles are bipartite: the spectrum contains -1, which ties +1
	// in magnitude. The Rayleigh-Ritz rotation must surface both signs
	// in the top-2 Ritz values.
	g := symCSR(t, gen.Cycle(16))
	res, err := Embed(g, Options{K: 2, Seed: 3, MaxIter: 3000, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	mags := []float64{math.Abs(res.Values[0]), math.Abs(res.Values[1])}
	if math.Abs(mags[0]-1) > 1e-5 || math.Abs(mags[1]-1) > 1e-5 {
		t.Fatalf("magnitudes %v want 1,1", mags)
	}
	if res.Values[0]*res.Values[1] > 0 {
		t.Fatalf("bipartite ±1 pair not separated: %v", res.Values)
	}
}

func TestVectorsOrthonormal(t *testing.T) {
	el := gen.ErdosRenyi(4, 300, 3000, 5)
	g := symCSR(t, el)
	res, err := Embed(g, Options{K: 5, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	v := res.Vectors
	for a := 0; a < v.C; a++ {
		for b := a; b < v.C; b++ {
			var dot float64
			for i := 0; i < v.R; i++ {
				dot += v.At(i, a) * v.At(i, b)
			}
			want := 0.0
			if a == b {
				want = 1
			}
			if math.Abs(dot-want) > 1e-8 {
				t.Fatalf("col %d·%d = %v want %v", a, b, dot, want)
			}
		}
	}
}

func TestEigenvectorResidual(t *testing.T) {
	el := gen.ErdosRenyi(4, 200, 2400, 7)
	g := symCSR(t, el)
	res, err := Embed(g, Options{K: 2, Seed: 5, MaxIter: 2000, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	// ||B q - lambda q|| should be small for the dominant pair
	n := g.N
	invSqrt := make([]float64, n)
	for v := 0; v < n; v++ {
		d := float64(g.Degree(graph.NodeID(v)))
		if d > 0 {
			invSqrt[v] = 1 / math.Sqrt(d)
		}
	}
	q := make([]float64, n)
	for i := range q {
		q[i] = res.Vectors.At(i, 0)
	}
	bq := make([]float64, n)
	for u := 0; u < n; u++ {
		for i := g.Offsets[u]; i < g.Offsets[u+1]; i++ {
			v := g.Targets[i]
			bq[u] += invSqrt[u] * invSqrt[v] * q[v]
		}
	}
	var resid float64
	for i := range q {
		d := bq[i] - res.Values[0]*q[i]
		resid += d * d
	}
	if math.Sqrt(resid) > 1e-5 {
		t.Fatalf("residual %v", math.Sqrt(resid))
	}
}

func TestSBMRecoverySpectral(t *testing.T) {
	el, truth := gen.SBM(8, 1200, 3, 0.08, 0.003, 11)
	g := symCSR(t, el)
	res, err := Embed(g, Options{K: 3, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	km := cluster.KMeans(8, res.Z, 3, 7, 100)
	if ari := cluster.ARI(km.Assign, truth); ari < 0.8 {
		t.Fatalf("spectral ARI=%v on separated SBM", ari)
	}
}

func TestEmbedValidation(t *testing.T) {
	g := graph.BuildCSR(1, gen.Path(3))
	if _, err := Embed(g, Options{K: 0}); err == nil {
		t.Fatal("K=0 accepted")
	}
	// K > n clamps
	res, err := Embed(graph.BuildCSR(1, graph.Symmetrize(gen.Path(3))), Options{K: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Z.C != 3 {
		t.Fatalf("K not clamped: %d", res.Z.C)
	}
}

func TestIsolatedVerticesZeroRows(t *testing.T) {
	el := &graph.EdgeList{N: 4, Edges: []graph.Edge{{U: 0, V: 1, W: 1}}}
	g := symCSR(t, el)
	res, err := Embed(g, Options{K: 2, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	// vertices 2,3 are isolated: their Z rows must be zero (no degree)
	for _, v := range []int{2, 3} {
		for j := 0; j < 2; j++ {
			if math.Abs(res.Z.At(v, j)) > 1e-9 {
				t.Fatalf("isolated vertex %d has nonzero embedding %v", v, res.Z.Row(v))
			}
		}
	}
}
