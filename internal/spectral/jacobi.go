package spectral

import "math"

// jacobiEigen computes the full eigendecomposition of a small symmetric
// k×k matrix (row-major) with the cyclic Jacobi rotation method:
// returns eigenvalues and the column-eigenvector matrix V (row-major,
// V[i*k+j] = component i of eigenvector j). k here is the embedding
// dimension (≤ a few hundred), for which Jacobi is simple and accurate.
func jacobiEigen(a []float64, k int) (values []float64, vectors []float64) {
	m := make([]float64, len(a))
	copy(m, a)
	v := make([]float64, k*k)
	for i := 0; i < k; i++ {
		v[i*k+i] = 1
	}
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		var off float64
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				off += m[i*k+j] * m[i*k+j]
			}
		}
		if off < 1e-22 {
			break
		}
		for p := 0; p < k; p++ {
			for q := p + 1; q < k; q++ {
				apq := m[p*k+q]
				if math.Abs(apq) < 1e-15 {
					continue
				}
				app, aqq := m[p*k+p], m[q*k+q]
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				// rotate rows/cols p and q of m
				for i := 0; i < k; i++ {
					aip, aiq := m[i*k+p], m[i*k+q]
					m[i*k+p] = c*aip - s*aiq
					m[i*k+q] = s*aip + c*aiq
				}
				for i := 0; i < k; i++ {
					api, aqi := m[p*k+i], m[q*k+i]
					m[p*k+i] = c*api - s*aqi
					m[q*k+i] = s*api + c*aqi
				}
				// accumulate rotations into v
				for i := 0; i < k; i++ {
					vip, viq := v[i*k+p], v[i*k+q]
					v[i*k+p] = c*vip - s*viq
					v[i*k+q] = s*vip + c*viq
				}
			}
		}
	}
	values = make([]float64, k)
	for i := 0; i < k; i++ {
		values[i] = m[i*k+i]
	}
	return values, v
}
