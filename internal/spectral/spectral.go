// Package spectral implements adjacency spectral embedding (ASE), the
// baseline family the GEE line of work measures itself against: the top
// k eigenpairs of the degree-normalized adjacency D^{-1/2} A D^{-1/2},
// computed by orthogonal (subspace) iteration over a parallel sparse
// matrix-vector product.
//
// The paper's motivation (§I) is that spectral embedding costs an SVD
// while GEE is a single pass over edges; this package exists so that the
// repository can demonstrate that comparison end-to-end: both methods
// embed the same graphs, both are evaluated with the same clustering
// metrics, and the benchmark suite times them side by side.
package spectral

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/mat"
	"repro/internal/parallel"
	"repro/internal/xrand"
)

// Options configures an embedding run.
type Options struct {
	// K is the embedding dimension (number of leading eigenpairs).
	K int
	// MaxIter bounds orthogonal iteration rounds (default 300).
	MaxIter int
	// Tol is the subspace-change convergence threshold (default 1e-7).
	Tol float64
	// Workers bounds parallelism; <= 0 selects GOMAXPROCS.
	Workers int
	// Seed initializes the random starting subspace.
	Seed uint64
}

// Result holds the spectral embedding.
type Result struct {
	// Z is n×K: row v is eigenvector entries scaled by sqrt(|eigenvalue|)
	// (the ASE convention).
	Z *mat.Dense
	// Vectors is the orthonormal eigenvector matrix (n×K).
	Vectors *mat.Dense
	// Values are the Ritz values (eigenvalue estimates), descending by
	// magnitude.
	Values []float64
	Iters  int
}

// Embed computes the ASE of the symmetrized graph g. The graph must
// contain both arc directions of every edge (use graph.Symmetrize before
// building the CSR); self-loops are allowed.
func Embed(g *graph.CSR, opts Options) (*Result, error) {
	n := g.N
	if opts.K <= 0 {
		return nil, fmt.Errorf("spectral: K must be positive")
	}
	k := opts.K
	if k > n {
		k = n
	}
	if opts.MaxIter <= 0 {
		opts.MaxIter = 300
	}
	if opts.Tol <= 0 {
		opts.Tol = 1e-7
	}
	workers := parallel.Workers(opts.Workers)

	// D^{-1/2} for the normalized operator; zero-degree rows stay zero.
	invSqrt := make([]float64, n)
	parallel.For(workers, n, func(v int) {
		var d float64
		for i := g.Offsets[v]; i < g.Offsets[v+1]; i++ {
			d += float64(g.Weight(i))
		}
		if d > 0 {
			invSqrt[v] = 1 / math.Sqrt(d)
		}
	})

	// random orthonormal start
	x := mat.NewDense(n, k)
	r := xrand.New(opts.Seed)
	for i := range x.Data {
		x.Data[i] = r.NormFloat64()
	}
	orthonormalize(x)

	y := mat.NewDense(n, k)
	prev := make([]float64, k)
	res := &Result{Values: make([]float64, k)}
	for iter := 1; iter <= opts.MaxIter; iter++ {
		res.Iters = iter
		normalizedMatVec(workers, g, invSqrt, x, y)
		// Rayleigh–Ritz projection: T = Xᵀ B X = Xᵀ Y (symmetric since X
		// is orthonormal). Its eigenpairs give the Ritz values and the
		// rotation that separates mixed-sign dominant eigenvectors
		// (bipartite graphs have |λ| ties at ±1 that per-column Rayleigh
		// quotients cannot split).
		t := make([]float64, k*k)
		for a := 0; a < k; a++ {
			for b := a; b < k; b++ {
				var dot float64
				for i := 0; i < n; i++ {
					dot += x.At(i, a) * y.At(i, b)
				}
				t[a*k+b] = dot
				t[b*k+a] = dot
			}
		}
		ritz, vecs := jacobiEigen(t, k)
		// order by |ritz| descending (dominant subspace convention)
		order := make([]int, k)
		for i := range order {
			order[i] = i
		}
		for a := 0; a < k; a++ {
			for b := a + 1; b < k; b++ {
				if math.Abs(ritz[order[b]]) > math.Abs(ritz[order[a]]) {
					order[a], order[b] = order[b], order[a]
				}
			}
		}
		// X_new = Y · V(ordered), then re-orthonormalize
		parallel.ForChunk(workers, n, 0, func(lo, hi int) {
			tmp := make([]float64, k)
			for i := lo; i < hi; i++ {
				yr := y.Row(i)
				for jj, col := range order {
					var s float64
					for a := 0; a < k; a++ {
						s += yr[a] * vecs[a*k+col]
					}
					tmp[jj] = s
				}
				copy(x.Row(i), tmp)
			}
		})
		orthonormalize(x)
		var delta float64
		for jj, col := range order {
			res.Values[jj] = ritz[col]
			if d := math.Abs(res.Values[jj] - prev[jj]); d > delta {
				delta = d
			}
			prev[jj] = res.Values[jj]
		}
		if delta < opts.Tol {
			break
		}
	}
	res.Vectors = x
	res.Z = mat.NewDense(n, k)
	for j := 0; j < k; j++ {
		s := math.Sqrt(math.Abs(res.Values[j]))
		for i := 0; i < n; i++ {
			res.Z.Set(i, j, x.At(i, j)*s)
		}
	}
	return res, nil
}

// normalizedMatVec computes y = D^{-1/2} A D^{-1/2} x for all k columns
// simultaneously, parallel over rows (each row of y is owned by one
// worker — no atomics needed).
func normalizedMatVec(workers int, g *graph.CSR, invSqrt []float64, x, y *mat.Dense) {
	k := x.C
	parallel.ForChunk(workers, g.N, 0, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			row := y.Row(u)
			for j := range row {
				row[j] = 0
			}
			su := invSqrt[u]
			if su == 0 {
				continue
			}
			for i := g.Offsets[u]; i < g.Offsets[u+1]; i++ {
				v := g.Targets[i]
				scale := float64(g.Weight(i)) * su * invSqrt[v]
				xv := x.Row(int(v))
				for j := 0; j < k; j++ {
					row[j] += scale * xv[j]
				}
			}
		}
	})
}

// orthonormalize runs modified Gram-Schmidt over the columns of x in
// place. Columns that collapse to (near) zero are re-randomized against
// a deterministic generator to keep the subspace full-rank.
func orthonormalize(x *mat.Dense) {
	n, k := x.R, x.C
	col := func(j int) []float64 {
		c := make([]float64, n)
		for i := 0; i < n; i++ {
			c[i] = x.At(i, j)
		}
		return c
	}
	setCol := func(j int, c []float64) {
		for i := 0; i < n; i++ {
			x.Set(i, j, c[i])
		}
	}
	r := xrand.New(0xdecafbad)
	for j := 0; j < k; j++ {
		cj := col(j)
		for prev := 0; prev < j; prev++ {
			cp := col(prev)
			var dot float64
			for i := range cj {
				dot += cj[i] * cp[i]
			}
			for i := range cj {
				cj[i] -= dot * cp[i]
			}
		}
		var norm float64
		for _, v := range cj {
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm < 1e-12 {
			for i := range cj {
				cj[i] = r.NormFloat64()
			}
			setCol(j, cj)
			j-- // redo this column
			continue
		}
		inv := 1 / norm
		for i := range cj {
			cj[i] *= inv
		}
		setCol(j, cj)
	}
}
