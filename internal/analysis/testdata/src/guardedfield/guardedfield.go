// Package guardedfield seeds guarded-by annotated fields with locked,
// unlocked, and exempt access shapes.
package guardedfield

import "sync"

type box struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// cfg.v is listed as Required in the golden config but carries no
// guarded-by comment; the required check reports at the package clause.
type cfg struct {
	mu sync.Mutex
	v  int
}

// good holds the lock across the access: clean.
func (b *box) good() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.n
}

// bad reads the guarded field with no lock in sight.
func (b *box) bad() int {
	return b.n // want "without holding mu"
}

// setLocked is named *Locked: the caller holds the lock, exempt.
func (b *box) setLocked(v int) {
	b.n = v
}

// newBox initializes through a composite literal: exempt.
func newBox() *box {
	return &box{n: 1}
}

// local creates the value in-function; nothing else can see it yet.
func local() int {
	var b box
	b.n = 3
	return b.n
}

// early uses the early-exit unlock pattern: the unlock on the
// returning path must not poison the fallthrough path.
func (b *box) early() int {
	b.mu.Lock()
	if b.n > 0 {
		v := b.n
		b.mu.Unlock()
		return v
	}
	b.mu.Unlock()
	return 0
}
