// Package stickywrite seeds bare Write calls on blessed and unblessed
// writer types.
package stickywrite

import (
	"bufio"
	"bytes"
	"strings"
)

// bad drops a bufio error on the floor.
func bad(bw *bufio.Writer) {
	bw.WriteString("x") // want "discards the write error"
}

func badByte(bw *bufio.Writer) {
	bw.WriteByte('x') // want "discards the write error"
}

// okBuilder writes to a blessed type whose writes cannot fail.
func okBuilder(sb *strings.Builder) {
	sb.WriteString("x")
}

func okBuffer(b *bytes.Buffer) {
	b.WriteByte('x')
}

// okExplicit discards visibly: a greppable decision, not an accident.
func okExplicit(bw *bufio.Writer) {
	_, _ = bw.WriteString("x")
}

// okChecked handles the error.
func okChecked(bw *bufio.Writer) error {
	_, err := bw.WriteString("x")
	return err
}
