// Package racybad carries the racy annotation without being on the
// analyzer's allowed list: geevet must reject the annotation itself.
//
//gee:racy
package racybad

// Placeholder so the package has a declaration.
var _ = 0
