// Package atomiccell seeds mixed atomic/plain cell accesses for the
// golden test. Tagged lines must produce a finding whose message
// contains the quoted substring; untagged lines must not.
package atomiccell

import "sync/atomic"

type counter struct {
	hits  int64
	total int64
}

func (c *counter) bump() {
	atomic.AddInt64(&c.hits, 1)
}

// read mixes a plain load into a cell the package also touches
// atomically: the canonical finding.
func (c *counter) read() int64 {
	return c.hits // want "plain access of field"
}

// readTotal touches a cell with no atomic evidence anywhere: clean.
func (c *counter) readTotal() int64 {
	return c.total
}

// fresh writes the tracked field on a locally created value before it
// is shared: the intended setup pattern, exempt.
func fresh() *counter {
	c := &counter{total: 1}
	c.hits = 0
	return c
}

// race reads a slice element plainly inside a parallel closure while
// the declaring function updates the same elements atomically.
func race(xs []int64) int64 {
	before := xs[0] // plain element access in the declaring function: exempt
	_ = before
	done := make(chan struct{})
	go func() {
		xs[0]++ // want "parallel closure"
		close(done)
	}()
	atomic.AddInt64(&xs[0], 1)
	<-done
	return atomic.LoadInt64(&xs[0])
}
