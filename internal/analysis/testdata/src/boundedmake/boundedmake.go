// Package boundedmake seeds allocations sized from wire-style tainted
// numbers. Header stands in for a decoded frame prefix; the golden
// config lists it as a taint source.
package boundedmake

import "encoding/binary"

const maxCount = 1 << 20

// Header mimics a wire-decoded prefix: every numeric field is
// attacker-chosen until compared against a cap.
type Header struct {
	NRows uint32
	NCols uint32
	NIDs  uint32
}

// decodeRows sizes an allocation from an uncapped count.
func decodeRows(h Header) []uint32 {
	return make([]uint32, h.NRows) // want "Header.NRows"
}

// decodeCols caps the count in-function before allocating: clean.
func decodeCols(h Header) []uint32 {
	if h.NCols > maxCount {
		return nil
	}
	return make([]uint32, h.NCols)
}

// validate caps NIDs for the whole package (the wire.Header.BodySize
// pattern): package-level evidence.
func validate(h Header) bool { return h.NIDs <= maxCount }

// decodeIDs relies on the package-level cap in validate: clean.
func decodeIDs(h Header) []uint32 {
	if !validate(h) {
		return nil
	}
	return make([]uint32, h.NIDs)
}

// readLen sizes an allocation straight from a varint.
func readLen(b []byte) []byte {
	n, _ := binary.Uvarint(b)
	return make([]byte, n) // want "a decoded value"
}

// readLenChecked compares the varint against the cap first: clean.
func readLenChecked(b []byte) []byte {
	n, _ := binary.Uvarint(b)
	if n > maxCount {
		return nil
	}
	return make([]byte, n)
}

// gather appends inside a loop whose bound is attacker-chosen.
func gather(h Header) []uint32 {
	var out []uint32
	for i := uint32(0); i < h.NRows; i++ {
		out = append(out, i) // want "append inside a loop bounded by"
	}
	return out
}

// gatherChecked caps the bound first: clean.
func gatherChecked(h Header) []uint32 {
	if h.NCols > maxCount {
		return nil
	}
	var out []uint32
	for i := uint32(0); i < h.NCols; i++ {
		out = append(out, i)
	}
	return out
}
