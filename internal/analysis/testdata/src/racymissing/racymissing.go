// Package racymissing is configured as required-to-be-racy but does
// not carry the annotation: the required check must fire.
package racymissing

// Placeholder so the package has a declaration.
var _ = 0
