// Package noalloc seeds allocating constructs inside annotated
// functions, plus a required-but-unannotated hot path.
package noalloc

import "strconv"

// mustAnnotate is listed as Required in the golden config but carries
// no annotation.
func mustAnnotate() {} // want "must carry //gee:noalloc"

func helper() {}

//gee:noalloc
func leaf() {}

// callsLeaf calls an annotated module function: clean.
//
//gee:noalloc
func callsLeaf() { leaf() }

// callsHelper calls an unannotated module function.
//
//gee:noalloc
func callsHelper() {
	helper() // want "not annotated"
}

//gee:noalloc
func appends(xs []int, v int) []int {
	return append(xs, v) // want "append may grow"
}

//gee:noalloc
func concat(a, b string) string {
	return a + b // want "string concatenation allocates"
}

//gee:noalloc
func makes() []byte {
	return make([]byte, 8) // want "make allocates"
}

//gee:noalloc
func converts(s string) []byte {
	return []byte(s) // want "conversion copies"
}

// formats appends into a caller-owned buffer through the
// strconv.Append allowlist: clean.
//
//gee:noalloc
func formats(buf []byte, v uint64) []byte {
	return strconv.AppendUint(buf[:0], v, 10)
}

//gee:noalloc
func spawns() {
	go leaf() // want "go statement"
}

//gee:noalloc
func dyn(f func()) {
	f() // want "dynamic call"
}

// sink is annotated and empty; its interface parameter is the boxing
// target below.
//
//gee:noalloc
func sink(v any) { _ = v }

//gee:noalloc
func boxes(n int) {
	sink(n) // want "boxes (allocates)"
}
