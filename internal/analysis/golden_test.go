package analysis

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The golden tests load one fixture package per analyzer from
// testdata/src and check the findings against `// want "substring"`
// markers in the fixture source: every marked line must produce a
// finding containing the substring, and no unmarked line may produce
// one. Package-level diagnostics (which land on the package clause or
// an annotation comment) are listed as line-agnostic extras instead.

var wantRe = regexp.MustCompile(`// want "([^"]+)"`)

func TestGolden(t *testing.T) {
	tests := []struct {
		name     string
		analyzer Analyzer
		extra    []string // line-agnostic expected message substrings
	}{
		{
			name:     "atomiccell",
			analyzer: &AtomicCell{AtomicPkgs: []string{"sync/atomic"}},
		},
		{
			name: "racybad",
			analyzer: &AtomicCell{
				AtomicPkgs:  []string{"sync/atomic"},
				RacyAllowed: []string{"fixture/somewhere-else"},
			},
			extra: []string{"carries //gee:racy but only"},
		},
		{
			name: "racymissing",
			analyzer: &AtomicCell{
				AtomicPkgs:   []string{"sync/atomic"},
				RacyRequired: []string{"fixture/racymissing"},
			},
			extra: []string{"must be annotated //gee:racy"},
		},
		{
			name: "boundedmake",
			analyzer: &BoundedMake{
				SourceTypes: []string{"fixture/boundedmake.Header"},
				SourceCalls: []string{"encoding/binary.Uvarint"},
			},
		},
		{
			name: "noalloc",
			analyzer: &NoAlloc{
				Required:      []string{"fixture/noalloc.mustAnnotate"},
				StdlibAllowed: []string{"strconv.Append"},
			},
		},
		{
			name: "guardedfield",
			analyzer: &GuardedField{
				Required: []string{
					"fixture/guardedfield.box.n",
					"fixture/guardedfield.cfg.v",
				},
			},
			extra: []string{`must carry a "// guarded by`},
		},
		{
			name:     "stickywrite",
			analyzer: &StickyWrite{Blessed: []string{"strings.Builder", "bytes.Buffer"}},
		},
	}

	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", tc.name)
			m, err := LoadDir(dir, "fixture/"+tc.name)
			if err != nil {
				t.Fatalf("LoadDir: %v", err)
			}
			findings := Run(m, []Analyzer{tc.analyzer})

			type want struct {
				file   string
				line   int
				substr string
				met    bool
			}
			var wants []*want
			entries, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range entries {
				if !strings.HasSuffix(e.Name(), ".go") {
					continue
				}
				data, err := os.ReadFile(filepath.Join(dir, e.Name()))
				if err != nil {
					t.Fatal(err)
				}
				for i, line := range strings.Split(string(data), "\n") {
					for _, mm := range wantRe.FindAllStringSubmatch(line, -1) {
						wants = append(wants, &want{file: e.Name(), line: i + 1, substr: mm[1]})
					}
				}
			}
			extras := make([]*want, 0, len(tc.extra))
			for _, s := range tc.extra {
				extras = append(extras, &want{substr: s})
			}

			for _, f := range findings {
				matched := false
				for _, w := range wants {
					if !w.met && filepath.Base(f.Pos.Filename) == w.file &&
						f.Pos.Line == w.line && strings.Contains(f.Message, w.substr) {
						w.met = true
						matched = true
						break
					}
				}
				if !matched {
					for _, w := range extras {
						if !w.met && strings.Contains(f.Message, w.substr) {
							w.met = true
							matched = true
							break
						}
					}
				}
				if !matched {
					t.Errorf("unexpected finding: %s", f)
				}
			}
			for _, w := range wants {
				if !w.met {
					t.Errorf("%s:%d: expected finding containing %q, got none", w.file, w.line, w.substr)
				}
			}
			for _, w := range extras {
				if !w.met {
					t.Errorf("expected a finding containing %q, got none", w.substr)
				}
			}
		})
	}
}
