package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GuardedField checks "// guarded by mu" field comments against
// syntactic Lock/Unlock regions: every access of an annotated field
// must happen while the named sibling mutex is held.
//
// The lock-region model is deliberately syntactic and per-function:
// statements are scanned in source order, <recv>.mu.Lock()/RLock()
// opens a region, <recv>.mu.Unlock()/RUnlock() closes it, and a
// deferred Unlock holds to the end of the function. An Unlock inside a
// block that terminates (ends in return/break/continue/panic) closes
// nothing for the code after the block — that is the early-exit
// pattern:
//
//	mu.Lock()
//	if closed { mu.Unlock(); return }   // exit path
//	...still held here...
//
// Functions whose name ends in "Locked" are assumed to be called with
// the lock held. Composite-literal initialization and accesses in the
// declaring function of a locally created value are exempt.
//
// Required lists make the annotations load-bearing: those fields must
// carry the comment, so deleting it fails geevet.
type GuardedField struct {
	// Required lists fields that must carry a guarded-by annotation, as
	// "pkgpath.Type.Field".
	Required []string
}

func (*GuardedField) Name() string { return "guardedfield" }
func (*GuardedField) Doc() string {
	return `fields annotated "guarded by mu" must only be accessed with mu held`
}

// guardInfo is one annotated field and its guarding mutex name.
type guardInfo struct {
	mu string
}

func (a *GuardedField) Run(pass *Pass) {
	pkg := pass.Pkg

	// Collect annotated fields and verify the named mutex is a sibling.
	guards := make(map[*types.Var]guardInfo)
	annotatedNames := make(map[string]bool)
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			var fieldNames []string
			for _, f := range st.Fields.List {
				for _, name := range f.Names {
					fieldNames = append(fieldNames, name.Name)
				}
			}
			hasField := func(name string) bool {
				for _, fn := range fieldNames {
					if fn == name {
						return true
					}
				}
				return false
			}
			for _, f := range st.Fields.List {
				mu, ok := FieldGuardedBy(f)
				if !ok {
					continue
				}
				if !hasField(mu) {
					pass.Reportf(f.Pos(),
						"field is annotated guarded by %s, but %s.%s has no field %s",
						mu, pkg.Path, ts.Name.Name, mu)
					continue
				}
				for _, name := range f.Names {
					if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
						guards[v] = guardInfo{mu: mu}
						annotatedNames[pkg.Path+"."+ts.Name.Name+"."+name.Name] = true
					}
				}
			}
			return true
		})
	}

	// Required annotations present?
	for _, req := range a.Required {
		if !strings.HasPrefix(req, pkg.Path+".") {
			continue
		}
		if !annotatedNames[req] {
			pass.Reportf(pkg.Files[0].Package,
				`%s is concurrently accessed state and must carry a "// guarded by <mu>" comment (see internal/analysis config)`, req)
		}
	}
	if len(guards) == 0 {
		return
	}

	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				continue // contract: caller holds the lock
			}
			a.checkFunc(pass, fd, guards)
		}
	}
}

func (a *GuardedField) checkFunc(pass *Pass, fd *ast.FuncDecl, guards map[*types.Var]guardInfo) {
	pkg := pass.Pkg

	// lockEvent is a Lock/Unlock call in source order.
	type lockEvent struct {
		pos      token.Pos
		mu       string
		delta    int  // +1 lock, -1 unlock
		deferred bool // deferred unlock: holds to function end
		exitPath bool // unlock on a terminating path: ignored for later code
	}
	var events []lockEvent

	// access is one read/write of a guarded field.
	type access struct {
		pos token.Pos
		v   *types.Var
		mu  string
	}
	var accesses []access

	lockCall := func(call *ast.CallExpr) (mu string, delta int, ok bool) {
		sel, selOK := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !selOK {
			return "", 0, false
		}
		var name string
		switch sel.Sel.Name {
		case "Lock", "RLock":
			delta = +1
		case "Unlock", "RUnlock":
			delta = -1
		default:
			return "", 0, false
		}
		// The mutex expression: x.mu or plain mu.
		switch m := ast.Unparen(sel.X).(type) {
		case *ast.SelectorExpr:
			name = m.Sel.Name
		case *ast.Ident:
			name = m.Name
		default:
			return "", 0, false
		}
		return name, delta, true
	}

	inspectStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Closures run later (often on other goroutines): analyze
			// their bodies independently with no inherited lock state.
			// Events and accesses inside still collect — keeping this
			// simple costs a little precision (a closure invoked inline
			// under the lock is treated as unlocked); annotate such
			// helpers *Locked if the pattern ever appears.
			return true
		case *ast.DeferStmt:
			if call := n.Call; call != nil {
				if mu, delta, ok := lockCall(call); ok && delta < 0 {
					events = append(events, lockEvent{pos: n.Pos(), mu: mu, delta: delta, deferred: true})
					return false
				}
			}
		case *ast.CallExpr:
			if mu, delta, ok := lockCall(n); ok {
				events = append(events, lockEvent{
					pos: n.Pos(), mu: mu, delta: delta,
					exitPath: delta < 0 && onTerminatingPath(stack, n),
				})
			}
		case *ast.SelectorExpr:
			if s, ok := pkg.Info.Selections[n]; ok {
				if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
					if g, guarded := guards[v]; guarded {
						if !inCompositeLit(stack) && !localValueAccess(pkg.Info, n, fd) {
							accesses = append(accesses, access{pos: n.Pos(), v: v, mu: g.mu})
						}
					}
				}
			}
		}
		return true
	})

	// Replay events in source order, asking for each access whether its
	// mutex is held at that point.
	for _, acc := range accesses {
		held := 0
		deferredHold := false
		for _, ev := range events {
			if ev.pos >= acc.pos {
				break
			}
			if ev.mu != acc.mu {
				continue
			}
			switch {
			case ev.deferred:
				deferredHold = true
			case ev.exitPath:
				// Unlock on a path that leaves the function: the
				// fallthrough code still holds the lock.
			default:
				held += ev.delta
			}
		}
		if held <= 0 && !deferredHold {
			pass.Reportf(acc.pos,
				"access of %s (guarded by %s) without holding %s; lock it, or rename the enclosing function *Locked if the caller holds it",
				acc.v.Name(), acc.mu, acc.mu)
		}
	}
}

// onTerminatingPath reports whether the statement containing n sits in
// a block whose control flow leaves the enclosing function (or loop)
// right after: the innermost enclosing block's statement list ends in
// return, break, continue, goto, or a panic call.
// localValueAccess reports whether the selector's base is a non-pointer
// struct value declared inside fd's body: a purely local copy (or a
// fresh zero value) that no other goroutine can see, so its fields need
// no lock. Pointers are not exempt — a local *T may alias shared state.
func localValueAccess(info *types.Info, sel *ast.SelectorExpr, fd *ast.FuncDecl) bool {
	base := identRoot(sel.X)
	if base == nil {
		return false
	}
	v, ok := info.Uses[base].(*types.Var)
	if !ok {
		v, ok = info.Defs[base].(*types.Var)
	}
	if !ok || v == nil {
		return false
	}
	if fd.Body == nil || v.Pos() < fd.Body.Pos() || v.Pos() >= fd.Body.End() {
		return false // parameter, receiver, or package-level: shared
	}
	if _, isPtr := v.Type().Underlying().(*types.Pointer); isPtr {
		return false
	}
	return true
}

func onTerminatingPath(stack []ast.Node, n ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		var list []ast.Stmt
		switch b := stack[i].(type) {
		case *ast.BlockStmt:
			if i > 0 {
				switch stack[i-1].(type) {
				case *ast.FuncDecl, *ast.FuncLit:
					return false // the function's own body: the main path
				}
			}
			list = b.List
		case *ast.CaseClause:
			list = b.Body
		case *ast.CommClause:
			list = b.Body
		case *ast.FuncDecl, *ast.FuncLit:
			return false // reached function scope: this is the main path
		default:
			continue
		}
		if len(list) == 0 {
			return false
		}
		switch last := list[len(list)-1].(type) {
		case *ast.ReturnStmt, *ast.BranchStmt:
			return true
		case *ast.ExprStmt:
			if call, ok := last.X.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
					return true
				}
			}
			return false
		default:
			return false
		}
	}
	return false
}
