package analysis

// This file is the repo policy: which packages may race on purpose,
// which functions are declared hot paths, which fields are declared
// lock-guarded, which types carry attacker-controlled numbers. The
// Required lists make the source annotations load-bearing — deleting a
// //gee: comment from the code makes the corresponding analyzer fail
// here, instead of silently dropping the check.

// DefaultAnalyzers returns the five analyzers configured for this
// repository. cmd/geevet and the repo-wide test both run exactly this
// set.
func DefaultAnalyzers() []Analyzer {
	return []Analyzer{
		&AtomicCell{
			AtomicPkgs: []string{
				"sync/atomic",
				"repro/internal/atomicx",
			},
			AtomicFuncs: []string{
				"repro/internal/graph.atomicFetchAdd",
			},
			// The paper's benign-race executor is the one deliberate
			// exception; it must declare itself.
			RacyAllowed:  []string{"repro/internal/exec"},
			RacyRequired: []string{"repro/internal/exec"},
		},
		&BoundedMake{
			SourceTypes: []string{
				// Wire-decoded frame header: every count in it is
				// attacker-chosen until BodySize caps it.
				"repro/internal/wire.Header",
				// Request bodies: numbers a client posts.
				"repro/internal/server.NeighborsRequest",
				"repro/internal/server.EdgeUpdate",
				"repro/internal/server.LabelUpdate",
			},
			SourceCalls: []string{
				"encoding/binary.Uvarint",
				"encoding/binary.Varint",
				"encoding/binary.ReadUvarint",
				"encoding/binary.ReadVarint",
			},
		},
		&NoAlloc{
			Required: []string{
				// Streamer numeric writers: every float of an n×K
				// snapshot passes through these.
				"(*repro/internal/server.streamer).uintv",
				"(*repro/internal/server.streamer).intv",
				"(*repro/internal/server.streamer).floatv",
				// The sticky writer the streamers feed.
				"(*repro/internal/sticky.Writer).Write",
				"(*repro/internal/sticky.Writer).WriteString",
				"(*repro/internal/sticky.Writer).WriteByte",
				// Metrics: Observe sits on every request path.
				"(*repro/internal/metrics.Histogram).Observe",
				"(*repro/internal/metrics.Histogram).ObserveSince",
				// Trace flight recorder: publish must not allocate or
				// it shows up in every profile it exists to explain.
				"(*repro/internal/trace.ring).record",
				"(*repro/internal/trace.Recorder).Record",
				// Exec kernels: the per-edge inner loop.
				"(*repro/internal/exec.Kernel).Apply",
				"(*repro/internal/exec.Kernel).ApplySrc",
				"(*repro/internal/exec.Kernel).ApplyDst",
				"(*repro/internal/exec.Kernel).scale",
			},
			StdlibAllowed: []string{
				"strconv.Append",
				"sync/atomic.",
				"(*sync/atomic.",
				"(sync/atomic.",
				"math.",
				"sort.Search",
				"time.Since",
				"time.Now",
				"(time.Time).",
				"(time.Duration).",
				"encoding/binary.",
				"(encoding/binary.",
				"(*bufio.Writer).Write",
				"(*bufio.Writer).WriteString",
				"(*bufio.Writer).WriteByte",
				"unsafe.",
			},
		},
		&GuardedField{
			Required: []string{
				// The coalescer's accept/close handshake: losing the mu
				// on either side re-opens the send-on-closed-channel
				// crash PR 5 fixed.
				"repro/internal/server.Coalescer.closed",
				// The scatter-gather router's close latch: submit checks
				// it before locking target coalescers, close sets it.
				// Unguarded, a submit racing close could enqueue into a
				// coalescer whose queue is being torn down.
				"repro/internal/server.router.closed",
				// Per-route status counters: map mutated on first
				// sighting of a status code, read on every response.
				"repro/internal/server.routeMetrics.status",
			},
		},
		&StickyWrite{
			Blessed: []string{
				"repro/internal/sticky.Writer",
				"strings.Builder", // Write* never returns an error
				"bytes.Buffer",    // ditto (panics on OOM instead)
			},
		},
	}
}
