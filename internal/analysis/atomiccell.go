package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicCell flags mixed atomic/plain access to the same memory cell —
// the bug class go vet cannot see because both halves are individually
// well-typed.
//
// Two shapes are checked:
//
//   - Struct fields: a field whose address is passed to sync/atomic (or
//     a configured atomic helper package) anywhere in the package must
//     not also be read or written plainly. Composite-literal
//     initialization is exempt (the cell is not shared yet), as is any
//     access inside the function that declared the enclosing variable
//     (single-owner setup before publication).
//
//   - Slice elements: when &s[i] escapes into an atomic call somewhere,
//     plain s[j] access inside a closure nested below the slice's
//     declaring function is flagged — that is exactly the parallel
//     worker shape where a goroutine races the atomic writers.
//     Plain element access in the declaring function itself stays
//     legal: init loops and post-join reads are the intended pattern.
//
// A package annotated //gee:racy is exempt: the paper's benign-race
// executor does this on purpose. Only the packages in RacyAllowed may
// carry the annotation, and the packages in RacyRequired must (so
// deleting the annotation fails the build).
type AtomicCell struct {
	// AtomicPkgs are package paths whose calls taking &x constitute
	// atomic access evidence (sync/atomic plus repo helpers).
	AtomicPkgs []string
	// AtomicFuncs are additional fully-qualified functions (FuncKey
	// form) treated as atomic accessors of their pointer arguments.
	AtomicFuncs []string
	// RacyAllowed lists package paths that may carry //gee:racy.
	RacyAllowed []string
	// RacyRequired lists package paths that must carry //gee:racy.
	RacyRequired []string
}

func (*AtomicCell) Name() string { return "atomiccell" }
func (*AtomicCell) Doc() string {
	return "a cell accessed via sync/atomic anywhere must be accessed atomically everywhere"
}

func (a *AtomicCell) isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	f := calleeFunc(info, call)
	if f == nil || f.Pkg() == nil {
		return false
	}
	for _, p := range a.AtomicPkgs {
		if f.Pkg().Path() == p {
			return true
		}
	}
	key := FuncKey(f)
	for _, fn := range a.AtomicFuncs {
		if key == fn {
			return true
		}
	}
	return false
}

func (a *AtomicCell) Run(pass *Pass) {
	pkg := pass.Pkg
	racyPos, racy := PackageRacy(pkg)

	allowed := false
	for _, p := range a.RacyAllowed {
		if pkg.Path == p {
			allowed = true
		}
	}
	if racy && !allowed {
		pass.Reportf(racyPos, "package %s carries //gee:racy but only %v may", pkg.Path, a.RacyAllowed)
	}
	for _, p := range a.RacyRequired {
		if pkg.Path == p && !racy {
			pass.Reportf(pkg.Files[0].Package,
				"package %s hosts the deliberate-race executor and must be annotated //gee:racy", pkg.Path)
		}
	}
	if racy && allowed {
		return // intentional races: analyzer stands down for this package
	}

	// Pass 1 over the package: collect atomic-access evidence.
	// atomicFields: field vars whose address feeds an atomic call.
	// atomicElems: slice/array vars (locals, params, fields) with some
	// &v[i] feeding an atomic call.
	// atomicArgPos: positions of the &x expressions themselves, so pass
	// 2 does not re-flag the atomic call sites.
	atomicFields := make(map[*types.Var]token.Pos)
	atomicElems := make(map[*types.Var]token.Pos)
	atomicArgPos := make(map[ast.Expr]bool)

	// declFunc maps every local object (params and receivers included)
	// to its declaring FuncDecl/FuncLit. localCreated holds only vars
	// introduced by := or var inside a function — values the function
	// itself created, as opposed to shared state it received.
	declFunc := make(map[*types.Var]ast.Node)
	localCreated := make(map[*types.Var]bool)

	recordCreated := func(info *types.Info, idents []*ast.Ident) {
		for _, id := range idents {
			if v, ok := info.Defs[id].(*types.Var); ok {
				localCreated[v] = true
			}
		}
	}

	for _, file := range pkg.Files {
		inspectStack(file, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if n.Tok == token.DEFINE {
					for _, lhs := range n.Lhs {
						if id, ok := lhs.(*ast.Ident); ok {
							recordCreated(pkg.Info, []*ast.Ident{id})
						}
					}
				}
			case *ast.ValueSpec:
				if enclosingFunc(stack) != nil {
					recordCreated(pkg.Info, n.Names)
				}
			case *ast.Ident:
				if v, ok := pkg.Info.Defs[n].(*types.Var); ok && !v.IsField() {
					if fn := enclosingFunc(stack); fn != nil {
						declFunc[v] = fn
					}
				}
			case *ast.CallExpr:
				if !a.isAtomicCall(pkg.Info, n) {
					return true
				}
				for _, arg := range n.Args {
					un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
					if !ok || un.Op != token.AND {
						continue
					}
					switch target := ast.Unparen(un.X).(type) {
					case *ast.SelectorExpr:
						if v := selectedField(pkg.Info, target); v != nil {
							atomicFields[v] = n.Pos()
							atomicArgPos[target] = true
						}
					case *ast.IndexExpr:
						if v := baseVar(pkg.Info, target.X); v != nil {
							atomicElems[v] = n.Pos()
							atomicArgPos[target] = true
						}
						// &s.f[i]: the elements of field f are the cell.
						if sel, ok := ast.Unparen(target.X).(*ast.SelectorExpr); ok {
							if v := selectedField(pkg.Info, sel); v != nil {
								atomicElems[v] = n.Pos()
							}
						}
					}
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 && len(atomicElems) == 0 {
		return
	}

	// Pass 2: find plain accesses of the same cells.
	for _, file := range pkg.Files {
		inspectStack(file, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if atomicArgPos[n] {
					return true
				}
				v := selectedField(pkg.Info, n)
				if v == nil {
					return true
				}
				if _, tracked := atomicFields[v]; !tracked {
					return true
				}
				if inCompositeLit(stack) || receiverIsLocal(pkg.Info, n.X, declFunc, localCreated, stack) {
					return true
				}
				pass.Reportf(n.Pos(),
					"plain access of field %s.%s, which is accessed atomically elsewhere in this package (use sync/atomic, or annotate the package //gee:racy if the race is intended)",
					fieldOwnerName(v), v.Name())
			case *ast.IndexExpr:
				if atomicArgPos[n] {
					return true
				}
				v := baseVar(pkg.Info, n.X)
				if v == nil {
					return true
				}
				if _, tracked := atomicElems[v]; !tracked {
					return true
				}
				// Plain element access is only a finding inside a
				// closure nested below the declaring function — the
				// parallel-worker shape.
				fn := enclosingFunc(stack)
				if _, isLit := fn.(*ast.FuncLit); !isLit {
					return true
				}
				if declFunc[v] == fn {
					return true // the closure's own local
				}
				pass.Reportf(n.Pos(),
					"plain access of %s[...] inside a parallel closure, but %s's elements are accessed atomically in this package (use an atomic load/store)",
					v.Name(), v.Name())
			}
			return true
		})
	}
}

// selectedField resolves a selector to the struct field it denotes, or
// nil for method/package selections.
func selectedField(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	if s, ok := info.Selections[sel]; ok {
		if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
			return v
		}
		return nil
	}
	// Qualified identifiers (pkg.Var) land in Uses, not Selections.
	return nil
}

// baseVar resolves the base of an index expression to a variable
// (local, param, or package-level). Field bases resolve to the field
// var.
func baseVar(info *types.Info, e ast.Expr) *types.Var {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := info.Uses[x].(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		return selectedField(info, x)
	}
	return nil
}

// inCompositeLit reports whether the node is being used inside a
// composite literal (field initialization before the value escapes).
func inCompositeLit(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.CompositeLit:
			return true
		case *ast.FuncLit, *ast.FuncDecl:
			return false
		}
	}
	return false
}

// receiverIsLocal reports whether the base variable of the selector was
// created (by := or var, not received as a parameter) in the function
// performing the access — single-owner setup of a value that has not
// escaped yet (e.g. s := &streamer{}; s.n = 0).
func receiverIsLocal(info *types.Info, recv ast.Expr, declFunc map[*types.Var]ast.Node, localCreated map[*types.Var]bool, stack []ast.Node) bool {
	root := identRoot(recv)
	if root == nil {
		return false
	}
	v, ok := info.Uses[root].(*types.Var)
	if !ok {
		return false
	}
	fn := enclosingFunc(stack)
	return fn != nil && declFunc[v] == fn && localCreated[v]
}

// fieldOwnerName names the struct type owning a field, best-effort.
func fieldOwnerName(v *types.Var) string {
	if v.Pkg() == nil {
		return "?"
	}
	// The field's parent struct type is not directly recorded; report
	// the package-qualified field for orientation.
	return v.Pkg().Name()
}
