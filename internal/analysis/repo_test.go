package analysis

import "testing"

// TestRepoClean runs the full production configuration over the module
// itself — the same check CI's geevet step performs, reachable from a
// plain `go test`. Any finding here means either a real invariant
// violation slipped in or a load-bearing //gee: annotation was deleted.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module from source")
	}
	m, err := LoadModule(".")
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	findings := Run(m, DefaultAnalyzers())
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Logf("geevet is expected to run clean over this repository; "+
			"fix the findings or (for intended exceptions) extend the policy in config.go (%d findings)",
			len(findings))
	}
}
