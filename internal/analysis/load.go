// Package analysis is the repo's zero-dependency static-analysis
// toolkit: a module-aware package loader built on go/parser + go/types
// + the source importer, a small analyzer framework, and the five
// repo-specific analyzers cmd/geevet drives (atomiccell, boundedmake,
// noalloc, guardedfield, stickywrite). Everything here is stdlib-only
// so go.mod stays dependency-free.
package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package of the module under
// analysis.
type Package struct {
	Path  string // import path ("repro/internal/wire")
	Dir   string // absolute directory
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Module is a fully loaded module: every buildable package, parsed with
// comments and type-checked against a shared FileSet, in dependency
// order.
type Module struct {
	Path string // module path from go.mod
	Root string // module root directory
	Fset *token.FileSet
	Pkgs []*Package // topologically sorted, dependencies first

	byPath       map[string]*Package
	noallocCache map[string]bool
}

// Lookup returns the loaded package with the given import path, or nil.
func (m *Module) Lookup(path string) *Package { return m.byPath[path] }

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// buildContext returns the build.Context used for file selection and
// stdlib source import. Cgo is off: the analyzers only reason about Go
// source, and disabling cgo selects the pure-Go fallbacks in net and
// friends so the source importer never needs a C preprocessor.
func buildContext() *build.Context {
	ctxt := build.Default
	ctxt.CgoEnabled = false
	return &ctxt
}

// LoadModule loads and type-checks every buildable package under the
// module rooted at (or above) dir. Test files are excluded: the
// invariants the analyzers enforce are production-code properties, and
// tests deliberately poke at racy/unchecked paths.
func LoadModule(dir string) (*Module, error) {
	root, err := FindModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	ctxt := buildContext()

	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}

	m := &Module{
		Path:   modPath,
		Root:   root,
		Fset:   token.NewFileSet(),
		byPath: make(map[string]*Package),
	}

	all := make(map[string]*parsedPkg)
	for _, d := range dirs {
		rel, err := filepath.Rel(root, d)
		if err != nil {
			return nil, err
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		files, err := parseDir(m.Fset, ctxt, d)
		if err != nil {
			return nil, err
		}
		if len(files) == 0 {
			continue
		}
		p := &parsedPkg{
			pkg:     &Package{Path: importPath, Dir: d, Files: files},
			imports: make(map[string]bool),
		}
		for _, f := range files {
			for _, imp := range f.Imports {
				path := strings.Trim(imp.Path.Value, `"`)
				if path == modPath || strings.HasPrefix(path, modPath+"/") {
					p.imports[path] = true
				}
			}
		}
		all[importPath] = p
	}

	order, err := topoOrder(all)
	if err != nil {
		return nil, err
	}

	// One source importer instance shared across the module: stdlib
	// packages type-check once and are reused by every importer of
	// encoding/json, net/http, etc.
	stdImp := importer.ForCompiler(m.Fset, "source", nil)
	imp := &moduleImporter{modPath: modPath, mod: m, std: stdImp}

	for _, path := range order {
		p := all[path]
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Instances:  make(map[*ast.Ident]types.Instance),
		}
		var typeErrs []error
		conf := types.Config{
			Importer: imp,
			Error:    func(err error) { typeErrs = append(typeErrs, err) },
		}
		tpkg, err := conf.Check(path, m.Fset, p.pkg.Files, info)
		if len(typeErrs) > 0 {
			return nil, fmt.Errorf("analysis: type-checking %s: %v", path, typeErrs[0])
		}
		if err != nil {
			return nil, fmt.Errorf("analysis: type-checking %s: %v", path, err)
		}
		p.pkg.Types = tpkg
		p.pkg.Info = info
		m.byPath[path] = p.pkg
		m.Pkgs = append(m.Pkgs, p.pkg)
	}
	return m, nil
}

// LoadDir loads a single directory as a standalone package with the
// given import path — the golden-test harness entry point. Imports may
// only reference the standard library.
func LoadDir(dir, importPath string) (*Module, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	ctxt := buildContext()
	fset := token.NewFileSet()
	files, err := parseDir(fset, ctxt, abs)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no buildable Go files in %s", dir)
	}
	m := &Module{
		Path:   importPath,
		Root:   abs,
		Fset:   fset,
		byPath: make(map[string]*Package),
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "source", nil),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", importPath, typeErrs[0])
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", importPath, err)
	}
	p := &Package{Path: importPath, Dir: abs, Files: files, Types: tpkg, Info: info}
	m.byPath[importPath] = p
	m.Pkgs = []*Package{p}
	return m, nil
}

// packageDirs walks the module tree collecting candidate package
// directories, skipping hidden dirs, testdata, and vendor.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor" || name == "node_modules") {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// parseDir parses the buildable non-test Go files of one directory
// (comments retained — the analyzers read annotations from them).
// Returns nil when the directory holds no buildable files.
func parseDir(fset *token.FileSet, ctxt *build.Context, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	pkgName := ""
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		match, err := ctxt.MatchFile(dir, name)
		if err != nil {
			return nil, fmt.Errorf("analysis: matching %s: %v", filepath.Join(dir, name), err)
		}
		if !match {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		if ignoreBuildTag(f) {
			continue
		}
		if pkgName == "" {
			pkgName = f.Name.Name
		}
		if f.Name.Name != pkgName {
			return nil, fmt.Errorf("analysis: %s: multiple packages in %s (%s and %s)",
				name, dir, pkgName, f.Name.Name)
		}
		files = append(files, f)
	}
	return files, nil
}

// ignoreBuildTag reports whether the file carries a "//go:build ignore"
// style constraint that MatchFile does not see (MatchFile handles real
// constraints; this catches the gen-script convention).
func ignoreBuildTag(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.End() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, "//go:build ignore") || strings.HasPrefix(c.Text, "// +build ignore") {
				return true
			}
		}
	}
	return false
}

// parsedPkg is a package parsed but not yet type-checked, with its
// module-internal import edges.
type parsedPkg struct {
	pkg     *Package
	imports map[string]bool
}

// topoOrder sorts the parsed packages dependencies-first, detecting
// import cycles. Iteration is deterministic (sorted paths).
func topoOrder(all map[string]*parsedPkg) ([]string, error) {
	paths := make([]string, 0, len(all))
	for p := range all {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	const (
		white = 0 // unvisited
		gray  = 1 // on stack
		black = 2 // done
	)
	state := make(map[string]int, len(all))
	var order []string
	var visit func(path string) error
	visit = func(path string) error {
		switch state[path] {
		case black:
			return nil
		case gray:
			return fmt.Errorf("analysis: import cycle through %s", path)
		}
		state[path] = gray
		deps := make([]string, 0, len(all[path].imports))
		for dep := range all[path].imports {
			deps = append(deps, dep)
		}
		sort.Strings(deps)
		for _, dep := range deps {
			if _, ok := all[dep]; !ok {
				continue // import of a non-loaded (e.g. empty) dir: let the type checker complain
			}
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[path] = black
		order = append(order, path)
		return nil
	}
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// moduleImporter resolves module-internal imports from the already
// type-checked package set and delegates everything else to the stdlib
// source importer.
type moduleImporter struct {
	modPath string
	mod     *Module
	std     types.Importer
}

func (mi *moduleImporter) Import(path string) (*types.Package, error) {
	if path == mi.modPath || strings.HasPrefix(path, mi.modPath+"/") {
		if p := mi.mod.byPath[path]; p != nil {
			return p.Types, nil
		}
		return nil, fmt.Errorf("analysis: internal import %s not yet loaded (import cycle?)", path)
	}
	return mi.std.Import(path)
}
