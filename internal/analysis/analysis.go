package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// A Finding is one diagnostic produced by an analyzer.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// An Analyzer checks one invariant over one package at a time. The
// five repo analyzers live in their own files; DefaultAnalyzers wires
// them up with the repo policy from config.go.
type Analyzer interface {
	Name() string
	Doc() string
	Run(pass *Pass)
}

// A Pass is one (analyzer, package) unit of work.
type Pass struct {
	Module *Module
	Pkg    *Package

	analyzer string
	out      *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.out = append(*p.out, Finding{
		Analyzer: p.analyzer,
		Pos:      p.Module.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies each analyzer to each package of the module and returns
// the findings sorted by position.
func Run(m *Module, analyzers []Analyzer) []Finding {
	var findings []Finding
	for _, a := range analyzers {
		for _, pkg := range m.Pkgs {
			pass := &Pass{Module: m, Pkg: pkg, analyzer: a.Name(), out: &findings}
			a.Run(pass)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings
}

// ---- annotations ----------------------------------------------------

// The repo's annotation interfaces (documented in README "Static
// analysis"): //gee:racy on a package clause, //gee:noalloc on a
// function declaration, and "// guarded by <mu>" on a struct field.

const (
	racyDirective    = "//gee:racy"
	noallocDirective = "//gee:noalloc"
)

// commentHasDirective reports whether any line of the comment group is
// exactly the given directive.
func commentHasDirective(cg *ast.CommentGroup, directive string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.TrimSpace(c.Text) == directive {
			return true
		}
	}
	return false
}

// PackageRacy reports whether the package carries //gee:racy: the
// directive must appear in a comment group that ends before the
// package clause of one of its files (i.e. it annotates the package,
// not some function halfway down). The returned position points at the
// directive for diagnostics.
func PackageRacy(pkg *Package) (token.Pos, bool) {
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			if cg.End() >= f.Package {
				break
			}
			for _, c := range cg.List {
				if strings.TrimSpace(c.Text) == racyDirective {
					return c.Pos(), true
				}
			}
		}
		if f.Doc != nil {
			for _, c := range f.Doc.List {
				if strings.TrimSpace(c.Text) == racyDirective {
					return c.Pos(), true
				}
			}
		}
	}
	return token.NoPos, false
}

// FuncNoalloc reports whether a function declaration carries
// //gee:noalloc in its doc comment.
func FuncNoalloc(decl *ast.FuncDecl) bool {
	return commentHasDirective(decl.Doc, noallocDirective)
}

var guardedByRe = regexp.MustCompile(`guarded by (\w+)\b`)

// FieldGuardedBy extracts the mutex name from a "// guarded by mu"
// annotation on a struct field (trailing comment or doc comment).
func FieldGuardedBy(field *ast.Field) (string, bool) {
	for _, cg := range []*ast.CommentGroup{field.Comment, field.Doc} {
		if cg == nil {
			continue
		}
		if m := guardedByRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1], true
		}
	}
	return "", false
}

// FuncKey returns the stable qualified name used in config lists and
// the cross-package noalloc annotation map:
// "pkgpath.Func", "(pkgpath.T).Method" or "(*pkgpath.T).Method", with
// type-parameter brackets stripped so generic instantiations match
// their origin declaration.
func FuncKey(f *types.Func) string {
	f = f.Origin()
	return stripBrackets(f.FullName())
}

// stripBrackets removes [...] segments (type parameters /
// instantiations) from a qualified function name.
func stripBrackets(s string) string {
	if !strings.ContainsRune(s, '[') {
		return s
	}
	var b strings.Builder
	depth := 0
	for _, r := range s {
		switch r {
		case '[':
			depth++
		case ']':
			depth--
		default:
			if depth == 0 {
				b.WriteRune(r)
			}
		}
	}
	return b.String()
}

// noallocFuncs builds (and caches) the module-wide map of
// //gee:noalloc-annotated functions, keyed by FuncKey. The noalloc
// analyzer uses it for the transitive rule: an annotated function may
// only call module functions that are themselves annotated.
func (m *Module) noallocFuncs() map[string]bool {
	if m.noallocCache != nil {
		return m.noallocCache
	}
	out := make(map[string]bool)
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || !FuncNoalloc(fd) {
					continue
				}
				if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					out[FuncKey(obj)] = true
				}
			}
		}
	}
	m.noallocCache = out
	return out
}

// ---- AST helpers ----------------------------------------------------

// inspectStack walks root like ast.Inspect but also hands fn the stack
// of ancestor nodes (outermost first, not including n itself).
func inspectStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false // children skipped: ast.Inspect sends no nil pop
		}
		stack = append(stack, n)
		return true
	})
}

// enclosingFunc returns the innermost FuncDecl or FuncLit in the stack.
func enclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}

// identRoot peels selectors and index expressions off an expression
// and returns the base identifier: a.b[i].c → a. Returns nil for
// non-lvalue shapes (calls, literals).
func identRoot(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// calleeFunc resolves a call expression to the called *types.Func
// (static calls and method calls; nil for builtins, conversions, and
// calls through function-typed values).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	case *ast.IndexExpr: // explicit generic instantiation f[T](...)
		return calleeFunc(info, &ast.CallExpr{Fun: fun.X})
	case *ast.IndexListExpr:
		return calleeFunc(info, &ast.CallExpr{Fun: fun.X})
	}
	return nil
}

// isPkgCall reports whether call is a call of pkgpath.name (a
// package-level function of the given package path).
func isPkgCall(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	f := calleeFunc(info, call)
	if f == nil || f.Pkg() == nil {
		return false
	}
	return f.Pkg().Path() == pkgPath && f.Name() == name
}
