package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// BoundedMake flags make calls (and loop-driven appends) whose size
// derives from an attacker-controlled number — a wire-header count or a
// request-body field — unless that number is checked against a named
// cap constant first. This generalizes the PR 6 hostile-header fixes:
// the recurring bug class is `make([]T, h.NRows)` where h came off the
// network.
//
// Taint sources are numeric field reads of the configured source types
// and the results of configured decoder calls (encoding/binary).
// Lengths of already-materialized data (len(x)) are NOT tainted:
// decoded slices were bounded when they were built; the dangerous
// values are the raw numbers an attacker sends.
//
// Sanitization evidence is a comparison (<, <=, >, >=) between the
// tainted source and a declared named constant, either
//
//   - in the same function, before the allocation (dominance is
//     approximated by source order), or
//   - anywhere in the same package for the same (type, field) source —
//     the repo's wire.Header.BodySize pattern, where one validation
//     helper caps every count field and every decode path calls it
//     first.
type BoundedMake struct {
	// SourceTypes are fully-qualified named struct types whose numeric
	// fields are tainted ("repro/internal/wire.Header").
	SourceTypes []string
	// SourceCalls are FuncKey-form functions whose (first) result is
	// tainted ("encoding/binary.Uvarint").
	SourceCalls []string
}

func (*BoundedMake) Name() string { return "boundedmake" }
func (*BoundedMake) Doc() string {
	return "make/append sized by wire- or request-supplied numbers must be capped by a named constant"
}

// fieldSource identifies one (struct type, field) taint source.
type fieldSource struct {
	typ   string // qualified type name
	field string
}

func (a *BoundedMake) Run(pass *Pass) {
	pkg := pass.Pkg

	srcTypes := make(map[string]bool, len(a.SourceTypes))
	for _, t := range a.SourceTypes {
		srcTypes[t] = true
	}
	srcCalls := make(map[string]bool, len(a.SourceCalls))
	for _, c := range a.SourceCalls {
		srcCalls[c] = true
	}

	// taintedFieldRead resolves sel to a (type, field) source if it
	// reads a numeric field of a configured source type.
	taintedFieldRead := func(sel *ast.SelectorExpr) (fieldSource, bool) {
		s, ok := pkg.Info.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return fieldSource{}, false
		}
		v, ok := s.Obj().(*types.Var)
		if !ok || !isNumeric(v.Type()) {
			return fieldSource{}, false
		}
		recv := s.Recv()
		if p, ok := recv.(*types.Pointer); ok {
			recv = p.Elem()
		}
		named, ok := recv.(*types.Named)
		if !ok {
			return fieldSource{}, false
		}
		name := typeKey(named)
		if !srcTypes[name] {
			return fieldSource{}, false
		}
		return fieldSource{typ: name, field: v.Name()}, true
	}

	// Package-level evidence: every (type, field) source compared
	// against a named constant anywhere in the package.
	pkgEvidence := make(map[fieldSource]bool)
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || !isComparison(be.Op) {
				return true
			}
			for lr, side := range [2]ast.Expr{be.X, be.Y} {
				other := [2]ast.Expr{be.Y, be.X}[lr]
				if !isNamedConst(pkg.Info, other) {
					continue
				}
				for _, sel := range taintedSelectorsIn(pkg.Info, side, taintedFieldRead) {
					pkgEvidence[sel] = true
				}
			}
			return true
		})
	}

	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			a.checkFunc(pass, fd, taintedFieldRead, srcCalls, pkgEvidence)
		}
	}
}

// taintState tracks, within one function, which local objects carry
// taint and from which field source (if any) it originated.
type taintState struct {
	vars map[*types.Var]fieldSource // tainted locals → originating source ({} if call-derived)
}

func (a *BoundedMake) checkFunc(pass *Pass, fd *ast.FuncDecl,
	fieldRead func(*ast.SelectorExpr) (fieldSource, bool),
	srcCalls map[string]bool,
	pkgEvidence map[fieldSource]bool,
) {
	pkg := pass.Pkg
	st := &taintState{vars: make(map[*types.Var]fieldSource)}

	// taintOf reports whether e is tainted and the field source it
	// traces back to (zero fieldSource for call-derived taint).
	var taintOf func(e ast.Expr) (fieldSource, bool)
	taintOf = func(e ast.Expr) (fieldSource, bool) {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if v, ok := pkg.Info.Uses[x].(*types.Var); ok {
				if src, tainted := st.vars[v]; tainted {
					return src, true
				}
			}
		case *ast.SelectorExpr:
			if src, ok := fieldRead(x); ok {
				return src, true
			}
			// x.y.F where the base expression itself is tainted? Field
			// reads of non-source types stay clean.
		case *ast.CallExpr:
			if f := calleeFunc(pkg.Info, x); f != nil && srcCalls[FuncKey(f)] {
				return fieldSource{}, true
			}
			// Conversions propagate: int(h.NRows).
			if len(x.Args) == 1 {
				if tv, ok := pkg.Info.Types[x.Fun]; ok && tv.IsType() {
					return taintOf(x.Args[0])
				}
			}
		case *ast.BinaryExpr:
			if src, ok := taintOf(x.X); ok {
				return src, true
			}
			return taintOf(x.Y)
		case *ast.UnaryExpr:
			return taintOf(x.X)
		}
		return fieldSource{}, false
	}

	// Walk statements in source order: record guards and taints as they
	// appear, flag unguarded tainted allocations.
	guarded := make(map[fieldSource]bool) // in-function evidence so far
	guardedVars := make(map[*types.Var]bool)

	recordGuards := func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			be, ok := m.(*ast.BinaryExpr)
			if !ok || !isComparison(be.Op) {
				return true
			}
			for lr, side := range [2]ast.Expr{be.X, be.Y} {
				other := [2]ast.Expr{be.Y, be.X}[lr]
				if !isNamedConst(pkg.Info, other) {
					continue
				}
				if src, ok := taintOf(side); ok {
					if src != (fieldSource{}) {
						guarded[src] = true
					}
					if id, ok := ast.Unparen(side).(*ast.Ident); ok {
						if v, ok := pkg.Info.Uses[id].(*types.Var); ok {
							guardedVars[v] = true
						}
					}
				}
			}
			return true
		})
	}

	checkAllocArg := func(pos token.Pos, what string, arg ast.Expr) {
		src, tainted := taintOf(arg)
		if !tainted {
			return
		}
		if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
			if v, ok := pkg.Info.Uses[id].(*types.Var); ok && guardedVars[v] {
				return
			}
		}
		if src != (fieldSource{}) && (guarded[src] || pkgEvidence[src]) {
			return
		}
		srcDesc := "a decoded value"
		if src != (fieldSource{}) {
			srcDesc = src.typ + "." + src.field
		}
		pass.Reportf(pos,
			"%s sized by %s with no comparison against a named cap constant (hostile input can pick the size)",
			what, srcDesc)
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			if n.Cond != nil {
				recordGuards(n.Cond)
			}
		case *ast.ForStmt:
			if n.Cond != nil {
				recordGuards(n.Cond)
			}
		case *ast.SwitchStmt:
			recordGuards(n)
		case *ast.AssignStmt:
			// Multi-value form first: n, _ := binary.Uvarint(b) taints
			// the first variable (SourceCalls taint their first result).
			if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
				if src, tainted := taintOf(n.Rhs[0]); tainted {
					if id, ok := n.Lhs[0].(*ast.Ident); ok {
						var v *types.Var
						if n.Tok == token.DEFINE {
							v, _ = pkg.Info.Defs[id].(*types.Var)
						} else {
							v, _ = pkg.Info.Uses[id].(*types.Var)
						}
						if v != nil {
							st.vars[v] = src
						}
					}
				}
			}
			// Taint propagation through assignment: x := h.NRows.
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					id, ok := n.Lhs[i].(*ast.Ident)
					if !ok {
						continue
					}
					var v *types.Var
					if n.Tok == token.DEFINE {
						v, _ = pkg.Info.Defs[id].(*types.Var)
					} else {
						v, _ = pkg.Info.Uses[id].(*types.Var)
					}
					if v == nil {
						continue
					}
					if src, tainted := taintOf(n.Rhs[i]); tainted {
						st.vars[v] = src
					} else {
						delete(st.vars, v)
						delete(guardedVars, v)
					}
				}
			}
		case *ast.CallExpr:
			fn, ok := ast.Unparen(n.Fun).(*ast.Ident)
			if !ok {
				return true
			}
			if fn.Name == "make" && isBuiltin(pkg.Info, fn) && len(n.Args) > 1 {
				for _, sizeArg := range n.Args[1:] {
					checkAllocArg(n.Pos(), "make", sizeArg)
				}
			}
		}
		return true
	})

	// Loop-driven appends: for i := 0; i < tainted; i++ { s = append(s, ...) }
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Cond == nil {
			return true
		}
		cond, ok := loop.Cond.(*ast.BinaryExpr)
		if !ok || !isComparison(cond.Op) {
			return true
		}
		var bound ast.Expr
		if _, tainted := taintOf(cond.Y); tainted {
			bound = cond.Y
		} else if _, tainted := taintOf(cond.X); tainted {
			bound = cond.X
		}
		if bound == nil {
			return true
		}
		src, _ := taintOf(bound)
		if id, ok := ast.Unparen(bound).(*ast.Ident); ok {
			if v, ok := pkg.Info.Uses[id].(*types.Var); ok && guardedVarsContains(fd, pkg, v, loop.Pos()) {
				return true
			}
		}
		if src != (fieldSource{}) && (guarded[src] || pkgEvidence[src]) {
			return true
		}
		ast.Inspect(loop.Body, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && fn.Name == "append" && isBuiltin(pkg.Info, fn) {
				srcDesc := "a decoded value"
				if src != (fieldSource{}) {
					srcDesc = src.typ + "." + src.field
				}
				pass.Reportf(call.Pos(),
					"append inside a loop bounded by %s with no comparison against a named cap constant (hostile input can pick the iteration count)",
					srcDesc)
			}
			return true
		})
		return true
	})
}

// guardedVarsContains re-scans the function for a named-const
// comparison of v textually before pos. (The main walk's guardedVars
// covers the common case; this handles the loop pass, which runs as a
// second traversal.)
func guardedVarsContains(fd *ast.FuncDecl, pkg *Package, v *types.Var, pos token.Pos) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found || n == nil || n.Pos() >= pos {
			return !found
		}
		be, ok := n.(*ast.BinaryExpr)
		if !ok || !isComparison(be.Op) {
			return true
		}
		for lr, side := range [2]ast.Expr{be.X, be.Y} {
			other := [2]ast.Expr{be.Y, be.X}[lr]
			if !isNamedConst(pkg.Info, other) {
				continue
			}
			if id, ok := ast.Unparen(side).(*ast.Ident); ok {
				if u, ok := pkg.Info.Uses[id].(*types.Var); ok && u == v {
					found = true
				}
			}
		}
		return true
	})
	return found
}

// taintedSelectorsIn collects the field sources read anywhere in e.
func taintedSelectorsIn(info *types.Info, e ast.Expr, fieldRead func(*ast.SelectorExpr) (fieldSource, bool)) []fieldSource {
	var out []fieldSource
	ast.Inspect(e, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if src, ok := fieldRead(sel); ok {
				out = append(out, src)
			}
		}
		return true
	})
	return out
}

func isComparison(op token.Token) bool {
	switch op {
	case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
		return true
	}
	return false
}

// isNamedConst reports whether e denotes a declared named constant (not
// a literal): the "named cap constant" the analyzer demands, so the cap
// has one authoritative definition.
func isNamedConst(info *types.Info, e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		_, ok := info.Uses[x].(*types.Const)
		return ok
	case *ast.SelectorExpr:
		_, ok := info.Uses[x.Sel].(*types.Const)
		return ok
	case *ast.CallExpr: // int64(maxBody) style conversion of a named const
		if len(x.Args) == 1 {
			if tv, ok := info.Types[x.Fun]; ok && tv.IsType() {
				return isNamedConst(info, x.Args[0])
			}
		}
	case *ast.BinaryExpr: // maxCount*rowBytes style constant arithmetic
		if tv, ok := info.Types[x]; ok && tv.Value != nil {
			return isNamedConst(info, x.X) || isNamedConst(info, x.Y)
		}
	}
	return false
}

func isBuiltin(info *types.Info, id *ast.Ident) bool {
	_, ok := info.Uses[id].(*types.Builtin)
	return ok
}

func isNumeric(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsInteger|types.IsFloat) != 0
}

// typeKey names a defined type as "pkgpath.Name".
func typeKey(n *types.Named) string {
	obj := n.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}
