package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// NoAlloc checks functions annotated //gee:noalloc — the hot paths
// where a single allocation per call would dominate the work (streamer
// numeric writers, histogram Observe, the trace-ring publish, exec
// kernels). Inside an annotated function it flags every allocating
// construct:
//
//   - make, new, growing append
//   - slice/map/pointer composite literals
//   - string concatenation and string<->[]byte conversions
//   - fmt.* calls (interface boxing plus formatting state)
//   - function literals (closure allocation) and go statements
//   - passing a concrete value where an interface is expected (boxing)
//   - calls to module functions that are not themselves annotated, and
//     calls to stdlib functions outside a small amortized-zero
//     allowlist (strconv.Append*, sync/atomic, math, sort.Search*, ...)
//   - dynamic calls (interface methods, function values) — the callee
//     is unknowable statically, so the annotation cannot vouch for it
//
// "No alloc" means amortized steady-state zero: strconv.Append* into a
// reused buffer is allowed even though the first call may grow it.
//
// The Required list makes annotations load-bearing: those functions
// must carry //gee:noalloc, so deleting the annotation fails geevet
// rather than silently dropping the check.
type NoAlloc struct {
	// Required lists FuncKey-form functions that must be annotated.
	Required []string
	// StdlibAllowed are prefixes of stdlib FuncKeys that are callable
	// from noalloc code ("strconv.Append", "(*sync/atomic.Int64).").
	StdlibAllowed []string
}

func (*NoAlloc) Name() string { return "noalloc" }
func (*NoAlloc) Doc() string {
	return "//gee:noalloc functions must not contain allocating constructs"
}

func (a *NoAlloc) Run(pass *Pass) {
	pkg := pass.Pkg
	mod := pass.Module
	annotated := mod.noallocFuncs()

	required := make(map[string]bool, len(a.Required))
	for _, r := range a.Required {
		required[r] = true
	}

	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			key := FuncKey(obj)
			if required[key] && !FuncNoalloc(fd) {
				pass.Reportf(fd.Name.Pos(),
					"%s is a declared hot path and must carry //gee:noalloc (see internal/analysis config)", key)
				continue
			}
			if !FuncNoalloc(fd) || fd.Body == nil {
				continue
			}
			a.checkBody(pass, fd, key, annotated)
		}
	}
}

func (a *NoAlloc) checkBody(pass *Pass, fd *ast.FuncDecl, key string, annotated map[string]bool) {
	pkg := pass.Pkg
	modPath := pass.Module.Path

	report := func(n ast.Node, format string, args ...any) {
		pass.Reportf(n.Pos(), "%s: %s", key, fmt.Sprintf(format, args...))
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			report(n, "function literal allocates a closure")
			return false
		case *ast.GoStmt:
			report(n, "go statement allocates a goroutine")
		case *ast.CompositeLit:
			if tv, ok := pkg.Info.Types[n]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Slice, *types.Map, *types.Chan:
					report(n, "%s composite literal allocates", tv.Type)
				}
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					report(n, "&composite literal allocates")
				}
			}
		case *ast.BinaryExpr:
			if n.Op.String() == "+" {
				if tv, ok := pkg.Info.Types[n.X]; ok {
					if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						report(n, "string concatenation allocates")
					}
				}
			}
		case *ast.CallExpr:
			a.checkCall(pass, report, pkg, modPath, n, annotated)
		}
		return true
	})
}

func (a *NoAlloc) checkCall(pass *Pass, report func(ast.Node, string, ...any), pkg *Package, modPath string, call *ast.CallExpr, annotated map[string]bool) {
	info := pkg.Info

	// Builtins and conversions first.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				report(call, "make allocates")
			case "new":
				report(call, "new allocates")
			case "append":
				report(call, "append may grow its backing array")
			}
			return
		}
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		// Conversion: string<->[]byte/[]rune copies; everything else is free.
		to := tv.Type.Underlying()
		if len(call.Args) == 1 {
			if from, ok := info.Types[call.Args[0]]; ok {
				if isStringByteConv(from.Type, to) {
					report(call, "string/[]byte conversion copies")
				}
			}
		}
		return
	}

	f := calleeFunc(info, call)
	if f == nil {
		// Dynamic call: interface method or function value.
		report(call, "dynamic call (interface method or function value) cannot be verified noalloc")
		return
	}
	if f.Pkg() == nil {
		return // universe scope (error.Error etc. resolve with a package; nothing to do)
	}
	fkey := FuncKey(f)
	fpkg := f.Pkg().Path()

	if fpkg == "fmt" || strings.HasPrefix(fkey, "fmt.") {
		report(call, "fmt call allocates (boxing + formatting state)")
		return
	}

	if fpkg == modPath || strings.HasPrefix(fpkg, modPath+"/") {
		if !annotated[fkey] {
			report(call, "calls %s, which is not annotated //gee:noalloc", fkey)
		}
		// Annotated module callees vouch for themselves; still check
		// boxing at this call site below.
	} else {
		allowed := false
		for _, prefix := range a.StdlibAllowed {
			if strings.HasPrefix(fkey, prefix) {
				allowed = true
				break
			}
		}
		if !allowed {
			report(call, "calls %s, outside the noalloc stdlib allowlist", fkey)
			return
		}
	}

	// Interface boxing at the call site: a concrete argument passed to
	// an interface parameter escapes to the heap (unless pointer-shaped
	// and cached, which we do not model — hot paths should not box).
	sig, ok := info.Types[call.Fun].Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		if sig.Variadic() && i >= params.Len()-1 {
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		} else if i < params.Len() {
			pt = params.At(i).Type()
		}
		if pt == nil {
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at, ok := info.Types[arg]
		if !ok || at.Type == nil {
			continue
		}
		if types.IsInterface(at.Type) {
			continue // already an interface; no new box
		}
		if isPointerShaped(at.Type) {
			continue // pointers box without allocating
		}
		report(arg, "passing %s as interface %s boxes (allocates)", at.Type, pt)
	}
}

func isStringByteConv(from, to types.Type) bool {
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isBytes := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isStr(from) && isBytes(to)) || (isBytes(from) && isStr(to))
}

func isPointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	}
	return false
}
