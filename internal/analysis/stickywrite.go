package analysis

import (
	"go/ast"
	"go/types"
)

// StickyWrite flags bare Write/WriteString/WriteByte/WriteRune calls
// whose error result is discarded by an expression statement. Dropping
// a write error on the floor is only legal on the repo's sticky-error
// types (internal/sticky.Writer and the stdlib's never-failing
// strings.Builder / bytes.Buffer), where the first failure is retained
// and checked once at the end of the stream. Anywhere else — most
// notably a naked http.ResponseWriter — the call silently loses the
// failure.
//
// An explicit blank assignment (`_, _ = w.Write(p)`) is not flagged:
// that is a visible, greppable decision, not an accident.
type StickyWrite struct {
	// Blessed lists named types (as "pkgpath.Type") whose write errors
	// are sticky or impossible.
	Blessed []string
}

func (*StickyWrite) Name() string { return "stickywrite" }
func (*StickyWrite) Doc() string {
	return "bare Write calls discarding errors are only legal on sticky-error writer types"
}

var stickyWriteMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
}

func (a *StickyWrite) Run(pass *Pass) {
	pkg := pass.Pkg
	blessed := make(map[string]bool, len(a.Blessed))
	for _, b := range a.Blessed {
		blessed[b] = true
	}

	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || !stickyWriteMethods[sel.Sel.Name] {
				return true
			}
			f, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok {
				return true
			}
			sig, ok := f.Type().(*types.Signature)
			if !ok || sig.Recv() == nil || sig.Results().Len() == 0 {
				return true // not a method, or no results to discard
			}
			recv := sig.Recv().Type()
			if name, ok := namedRecv(recv); ok && blessed[name] {
				return true
			}
			recvDesc := types.TypeString(recv, nil)
			pass.Reportf(call.Pos(),
				"%s on %s discards the write error; check it, assign it to _ explicitly, or stream through internal/sticky.Writer",
				sel.Sel.Name, recvDesc)
			return true
		})
	}
}

// namedRecv resolves a receiver type to its "pkgpath.Type" key, peeling
// one pointer.
func namedRecv(t types.Type) (string, bool) {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return typeKey(n), true
	}
	return "", false
}
