package gen

import "repro/internal/graph"

// Deterministic small fixture graphs used throughout the test suite.

// Path returns the path graph 0-1-2-...-(n-1) as n-1 edges.
func Path(n int) *graph.EdgeList {
	el := &graph.EdgeList{N: n}
	for v := 0; v+1 < n; v++ {
		el.Edges = append(el.Edges, graph.Edge{U: graph.NodeID(v), V: graph.NodeID(v + 1), W: 1})
	}
	return el
}

// Cycle returns the n-cycle.
func Cycle(n int) *graph.EdgeList {
	el := Path(n)
	if n >= 3 {
		el.Edges = append(el.Edges, graph.Edge{U: graph.NodeID(n - 1), V: 0, W: 1})
	}
	return el
}

// Star returns the star with center 0 and n-1 leaves.
func Star(n int) *graph.EdgeList {
	el := &graph.EdgeList{N: n}
	for v := 1; v < n; v++ {
		el.Edges = append(el.Edges, graph.Edge{U: 0, V: graph.NodeID(v), W: 1})
	}
	return el
}

// Complete returns K_n (each unordered pair once).
func Complete(n int) *graph.EdgeList {
	el := &graph.EdgeList{N: n}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			el.Edges = append(el.Edges, graph.Edge{U: graph.NodeID(u), V: graph.NodeID(v), W: 1})
		}
	}
	return el
}

// Grid2D returns the rows x cols 4-neighbor grid.
func Grid2D(rows, cols int) *graph.EdgeList {
	el := &graph.EdgeList{N: rows * cols}
	id := func(r, c int) graph.NodeID { return graph.NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				el.Edges = append(el.Edges, graph.Edge{U: id(r, c), V: id(r, c+1), W: 1})
			}
			if r+1 < rows {
				el.Edges = append(el.Edges, graph.Edge{U: id(r, c), V: id(r+1, c), W: 1})
			}
		}
	}
	return el
}

// TwoTriangles returns two disjoint triangles {0,1,2} and {3,4,5} joined
// by nothing — the smallest graph with two perfectly separable
// communities, used to sanity-check embedding quality.
func TwoTriangles() (*graph.EdgeList, []int32) {
	el := &graph.EdgeList{N: 6, Edges: []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 2, V: 0, W: 1},
		{U: 3, V: 4, W: 1}, {U: 4, V: 5, W: 1}, {U: 5, V: 3, W: 1},
	}}
	return el, []int32{0, 0, 0, 1, 1, 1}
}
