package gen

import (
	"math"
	"testing"

	"repro/internal/graph"
)

func TestErdosRenyiShape(t *testing.T) {
	el := ErdosRenyi(4, 1000, 5000, 1)
	if el.N != 1000 || len(el.Edges) != 5000 {
		t.Fatalf("n=%d m=%d", el.N, len(el.Edges))
	}
	if err := el.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestErdosRenyiWorkerInvariance(t *testing.T) {
	a := ErdosRenyi(1, 500, 20_000, 42)
	b := ErdosRenyi(16, 500, 20_000, 42)
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("edge %d differs between worker counts", i)
		}
	}
}

func TestErdosRenyiSeedSensitivity(t *testing.T) {
	a := ErdosRenyi(4, 500, 10_000, 1)
	b := ErdosRenyi(4, 500, 10_000, 2)
	same := 0
	for i := range a.Edges {
		if a.Edges[i] == b.Edges[i] {
			same++
		}
	}
	if same > len(a.Edges)/100 {
		t.Fatalf("%d/%d identical edges across seeds", same, len(a.Edges))
	}
}

func TestErdosRenyiEndpointUniformity(t *testing.T) {
	n := 50
	el := ErdosRenyi(8, n, 200_000, 7)
	counts := make([]float64, n)
	for _, e := range el.Edges {
		counts[e.U]++
		counts[e.V]++
	}
	want := float64(2*len(el.Edges)) / float64(n)
	for v, c := range counts {
		if math.Abs(c-want) > 6*math.Sqrt(want) {
			t.Fatalf("vertex %d endpoint count %v deviates from %v", v, c, want)
		}
	}
}

func TestRMATShapeAndRange(t *testing.T) {
	el := RMAT(4, 10, 50_000, Graph500Params, 3)
	if el.N != 1024 || len(el.Edges) != 50_000 {
		t.Fatalf("n=%d m=%d", el.N, len(el.Edges))
	}
	if err := el.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRMATWorkerInvariance(t *testing.T) {
	a := RMAT(1, 12, 70_000, Graph500Params, 11)
	b := RMAT(24, 12, 70_000, Graph500Params, 11)
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("edge %d differs between worker counts", i)
		}
	}
}

func TestRMATSkewedDegrees(t *testing.T) {
	// RMAT with Graph500 params must be much more skewed than ER.
	scale := 14
	m := int64(16) << scale
	rmat := RMAT(8, scale, m, Graph500Params, 5)
	er := ErdosRenyi(8, 1<<scale, m, 5)
	maxDeg := func(el *graph.EdgeList) int64 {
		g := graph.BuildCSR(8, el)
		s := graph.ComputeStats(8, g)
		return s.MaxDegree
	}
	mr, me := maxDeg(rmat), maxDeg(er)
	if mr < 4*me {
		t.Fatalf("RMAT max degree %d not skewed vs ER %d", mr, me)
	}
}

func TestSBMShapeAndLabels(t *testing.T) {
	el, labels := SBM(4, 1200, 3, 0.02, 0.001, 9)
	if el.N != 1200 || len(labels) != 1200 {
		t.Fatalf("n=%d labels=%d", el.N, len(labels))
	}
	if err := el.Validate(); err != nil {
		t.Fatal(err)
	}
	counts := map[int32]int{}
	for _, l := range labels {
		counts[l]++
	}
	if len(counts) != 3 {
		t.Fatalf("blocks=%d want 3", len(counts))
	}
	for b, c := range counts {
		if c < 350 || c > 450 {
			t.Fatalf("block %d size %d not ~400", b, c)
		}
	}
}

func TestSBMAssortativity(t *testing.T) {
	el, labels := SBM(8, 3000, 4, 0.05, 0.002, 13)
	within, across := 0, 0
	for _, e := range el.Edges {
		if labels[e.U] == labels[e.V] {
			within++
		} else {
			across++
		}
	}
	// pIn/pOut = 25x, blocks equal size: within should dominate.
	if within < 2*across {
		t.Fatalf("within=%d across=%d: not assortative", within, across)
	}
}

func TestSBMNoWithinBlockSelfLoops(t *testing.T) {
	el, _ := SBM(4, 400, 2, 0.1, 0.01, 17)
	for _, e := range el.Edges {
		if e.U == e.V {
			t.Fatalf("self loop %d", e.U)
		}
	}
}

func TestSBMExpectedEdgeCount(t *testing.T) {
	n, k := 2000, 2
	pIn, pOut := 0.01, 0.001
	el, _ := SBM(4, n, k, pIn, pOut, 23)
	half := float64(n / k)
	expect := 2*(half*(half-1)/2)*pIn + half*half*pOut
	got := float64(len(el.Edges))
	if math.Abs(got-expect) > 6*math.Sqrt(expect) {
		t.Fatalf("edges=%v expected~%v", got, expect)
	}
}

func TestBarabasiAlbert(t *testing.T) {
	el := BarabasiAlbert(500, 3, 29)
	if err := el.Validate(); err != nil {
		t.Fatal(err)
	}
	// m edges per new vertex beyond the core
	if len(el.Edges) < 3*(500-4) {
		t.Fatalf("too few edges: %d", len(el.Edges))
	}
	for _, e := range el.Edges {
		if e.U == e.V {
			t.Fatal("self loop in BA graph")
		}
	}
	// preferential attachment implies a hub: max total degree >> mPer
	deg := make([]int, 500)
	for _, e := range el.Edges {
		deg[e.U]++
		deg[e.V]++
	}
	max := 0
	for _, d := range deg {
		if d > max {
			max = d
		}
	}
	if max < 20 {
		t.Fatalf("max degree %d: no hub formed", max)
	}
}

func TestBarabasiAlbertDegenerate(t *testing.T) {
	if el := BarabasiAlbert(1, 3, 1); len(el.Edges) != 0 {
		t.Fatal("n=1 must have no edges")
	}
	if el := BarabasiAlbert(10, 0, 1); len(el.Edges) != 0 {
		t.Fatal("mPer=0 must have no edges")
	}
}

func TestWattsStrogatz(t *testing.T) {
	el := WattsStrogatz(100, 2, 0.1, 31)
	if len(el.Edges) != 200 {
		t.Fatalf("edges=%d want n*kHalf=200", len(el.Edges))
	}
	if err := el.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, e := range el.Edges {
		if e.U == e.V {
			t.Fatal("self loop after rewiring")
		}
	}
}

func TestWattsStrogatzBetaZeroIsLattice(t *testing.T) {
	n, kHalf := 20, 3
	el := WattsStrogatz(n, kHalf, 0, 1)
	i := 0
	for u := 0; u < n; u++ {
		for d := 1; d <= kHalf; d++ {
			e := el.Edges[i]
			if e.U != graph.NodeID(u) || e.V != graph.NodeID((u+d)%n) {
				t.Fatalf("edge %d = %v, want ring edge", i, e)
			}
			i++
		}
	}
}

func TestFixtures(t *testing.T) {
	cases := []struct {
		name  string
		el    *graph.EdgeList
		n     int
		edges int
	}{
		{"path", Path(5), 5, 4},
		{"cycle", Cycle(5), 5, 5},
		{"star", Star(6), 6, 5},
		{"complete", Complete(5), 5, 10},
		{"grid", Grid2D(3, 4), 12, 17},
		{"path1", Path(1), 1, 0},
		{"cycle2", Cycle(2), 2, 1},
	}
	for _, c := range cases {
		if c.el.N != c.n || len(c.el.Edges) != c.edges {
			t.Fatalf("%s: n=%d m=%d want n=%d m=%d", c.name, c.el.N, len(c.el.Edges), c.n, c.edges)
		}
		if err := c.el.Validate(); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
	}
}

func TestTwoTriangles(t *testing.T) {
	el, labels := TwoTriangles()
	if el.N != 6 || len(el.Edges) != 6 || len(labels) != 6 {
		t.Fatal("bad fixture shape")
	}
	for _, e := range el.Edges {
		if labels[e.U] != labels[e.V] {
			t.Fatal("triangles must not cross communities")
		}
	}
}
