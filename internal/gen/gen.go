// Package gen generates synthetic graphs for benchmarking and testing.
//
// The paper evaluates on SNAP social networks (Twitch, Pokec,
// LiveJournal, Orkut) and the 1.8B-edge Friendster graph, none of which
// are available offline. The generators here are the documented
// substitutes (DESIGN.md §3): RMAT reproduces the skewed degree
// distributions of social graphs; Erdős–Rényi reproduces the paper's
// Figure 4 sweep exactly as specified; the SBM provides ground-truth
// communities for validating embedding quality.
//
// All generators are deterministic for a given seed *and* independent of
// the worker count: each worker derives a substream from (seed, chunk).
package gen

import (
	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/xrand"
)

// genChunk is the number of edges generated per RNG substream.
const genChunk = 1 << 16

// ErdosRenyi samples m edges of G(n, m): endpoints uniform and
// independent (a sparse random multigraph, matching the paper's Figure 4
// workload "Erdős–Rényi random graphs with increasing numbers of edges").
func ErdosRenyi(workers, n int, m int64, seed uint64) *graph.EdgeList {
	el := &graph.EdgeList{N: n, Edges: make([]graph.Edge, m)}
	nChunks := int((m + genChunk - 1) / genChunk)
	parallel.For(workers, nChunks, func(c int) {
		r := xrand.NewStream(seed, uint64(c))
		lo := int64(c) * genChunk
		hi := lo + genChunk
		if hi > m {
			hi = m
		}
		for i := lo; i < hi; i++ {
			el.Edges[i] = graph.Edge{
				U: graph.NodeID(r.Intn(n)),
				V: graph.NodeID(r.Intn(n)),
				W: 1,
			}
		}
	})
	return el
}

// RMATParams are the recursive-matrix quadrant probabilities. They must
// sum to 1.
type RMATParams struct{ A, B, C, D float64 }

// Graph500Params is the standard Graph500 RMAT parameterization, which
// produces the heavy-tailed degree distributions characteristic of social
// networks.
var Graph500Params = RMATParams{A: 0.57, B: 0.19, C: 0.19, D: 0.05}

// RMAT samples m edges from the R-MAT recursive model over n = 2^scale
// vertices. Endpoint bits are chosen quadrant-by-quadrant with slight
// per-level parameter noise (as in the Graph500 reference generator) to
// avoid exact self-similarity artifacts.
func RMAT(workers, scale int, m int64, p RMATParams, seed uint64) *graph.EdgeList {
	n := 1 << scale
	el := &graph.EdgeList{N: n, Edges: make([]graph.Edge, m)}
	nChunks := int((m + genChunk - 1) / genChunk)
	parallel.For(workers, nChunks, func(c int) {
		r := xrand.NewStream(seed, uint64(c))
		lo := int64(c) * genChunk
		hi := lo + genChunk
		if hi > m {
			hi = m
		}
		for i := lo; i < hi; i++ {
			var u, v int
			for level := 0; level < scale; level++ {
				// ±10% symmetric noise keeps expected params identical
				noise := 0.9 + 0.2*r.Float64()
				a := p.A * noise
				b := p.B * noise
				cq := p.C * noise
				norm := a + b + cq + p.D*noise
				x := r.Float64() * norm
				switch {
				case x < a:
					// top-left: no bits set
				case x < a+b:
					v |= 1 << level
				case x < a+b+cq:
					u |= 1 << level
				default:
					u |= 1 << level
					v |= 1 << level
				}
			}
			el.Edges[i] = graph.Edge{U: graph.NodeID(u), V: graph.NodeID(v), W: 1}
		}
	})
	return el
}

// SBM samples a planted-partition stochastic block model: n vertices in k
// equal blocks, within-block edge probability pIn, cross-block pOut.
// Sampling is by expected edge count per block pair (Poisson
// approximation to the binomial), which is O(edges) rather than O(n^2).
// The returned labels are the ground-truth block of each vertex.
func SBM(workers, n, k int, pIn, pOut float64, seed uint64) (*graph.EdgeList, []int32) {
	labels := make([]int32, n)
	blockOf := func(v int) int32 { return int32(v * k / n) }
	for v := range labels {
		labels[v] = blockOf(v)
	}
	blockLo := func(b int) int { return (b*n + k - 1) / k }
	blockHi := func(b int) int { return ((b+1)*n + k - 1) / k } // exclusive

	type pairJob struct {
		bi, bj int
		count  int64
	}
	var jobs []pairJob
	seedRNG := xrand.New(seed)
	var total int64
	for bi := 0; bi < k; bi++ {
		for bj := bi; bj < k; bj++ {
			ni := int64(blockHi(bi) - blockLo(bi))
			nj := int64(blockHi(bj) - blockLo(bj))
			var pairs float64
			var p float64
			if bi == bj {
				pairs = float64(ni*(ni-1)) / 2
				p = pIn
			} else {
				pairs = float64(ni * nj)
				p = pOut
			}
			cnt := seedRNG.Poisson(pairs * p)
			if cnt > 0 {
				jobs = append(jobs, pairJob{bi, bj, cnt})
				total += cnt
			}
		}
	}
	el := &graph.EdgeList{N: n, Edges: make([]graph.Edge, total)}
	starts := make([]int64, len(jobs))
	var acc int64
	for j := range jobs {
		starts[j] = acc
		acc += jobs[j].count
	}
	parallel.For(workers, len(jobs), func(j int) {
		job := jobs[j]
		r := xrand.NewStream(seed, uint64(j)+1)
		lo1, hi1 := blockLo(job.bi), blockHi(job.bi)
		lo2, hi2 := blockLo(job.bj), blockHi(job.bj)
		base := starts[j]
		for i := int64(0); i < job.count; i++ {
			u := lo1 + r.Intn(hi1-lo1)
			v := lo2 + r.Intn(hi2-lo2)
			if job.bi == job.bj {
				for u == v { // no self loops within a block draw
					v = lo2 + r.Intn(hi2-lo2)
				}
			}
			el.Edges[base+i] = graph.Edge{U: graph.NodeID(u), V: graph.NodeID(v), W: 1}
		}
	})
	return el, labels
}

// BarabasiAlbert grows a preferential-attachment graph: each new vertex
// attaches mPer edges to existing vertices chosen proportionally to
// degree (repeated-endpoint list method). Serial by construction (the
// process is inherently sequential) — used for tests, not scale runs.
func BarabasiAlbert(n, mPer int, seed uint64) *graph.EdgeList {
	if n < 2 || mPer < 1 {
		return &graph.EdgeList{N: n}
	}
	r := xrand.New(seed)
	el := &graph.EdgeList{N: n}
	// endpoint multiset: each edge contributes both endpoints
	targets := make([]graph.NodeID, 0, 2*mPer*n)
	// seed clique-ish core of mPer+1 vertices in a ring
	core := mPer + 1
	if core > n {
		core = n
	}
	for v := 0; v < core; v++ {
		u := graph.NodeID(v)
		w := graph.NodeID((v + 1) % core)
		if u == w {
			continue
		}
		el.Edges = append(el.Edges, graph.Edge{U: u, V: w, W: 1})
		targets = append(targets, u, w)
	}
	for v := core; v < n; v++ {
		chosen := map[graph.NodeID]bool{}
		for len(chosen) < mPer {
			var t graph.NodeID
			if len(targets) == 0 || r.Float64() < 0.01 {
				t = graph.NodeID(r.Intn(v))
			} else {
				t = targets[r.Intn(len(targets))]
			}
			if t == graph.NodeID(v) || chosen[t] {
				continue
			}
			chosen[t] = true
		}
		for t := range chosen {
			el.Edges = append(el.Edges, graph.Edge{U: graph.NodeID(v), V: t, W: 1})
			targets = append(targets, graph.NodeID(v), t)
		}
	}
	return el
}

// WattsStrogatz generates a small-world ring lattice: n vertices, each
// connected to its kHalf nearest clockwise neighbors, with each edge
// rewired to a uniform random target with probability beta.
func WattsStrogatz(n, kHalf int, beta float64, seed uint64) *graph.EdgeList {
	r := xrand.New(seed)
	el := &graph.EdgeList{N: n}
	for u := 0; u < n; u++ {
		for d := 1; d <= kHalf; d++ {
			v := (u + d) % n
			if r.Float64() < beta {
				v = r.Intn(n)
				for v == u {
					v = r.Intn(n)
				}
			}
			el.Edges = append(el.Edges, graph.Edge{U: graph.NodeID(u), V: graph.NodeID(v), W: 1})
		}
	}
	return el
}
