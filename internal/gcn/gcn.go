// Package gcn implements a two-layer graph convolutional network (Kipf &
// Welling, ICLR 2017) for semi-supervised node classification — the last
// of the three baseline families the paper's introduction positions GEE
// against (§I: "Graph convolutional neural networks are quite expensive
// in practice").
//
// The model is the reference architecture:
//
//	Z = Â · ReLU(Â · X · W₀) · W₁,   Â = D̃^{-1/2} (A + I) D̃^{-1/2}
//
// trained with softmax cross-entropy on the labeled vertices and Adam.
// Gradients are derived and implemented by hand; the sparse Â·M products
// are the same parallel row-wise kernels the spectral baseline uses.
package gcn

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/mat"
	"repro/internal/parallel"
	"repro/internal/xrand"
)

// Config configures training.
type Config struct {
	Hidden       int     // hidden layer width (default 16)
	Features     int     // input feature width when X is nil (default 64, random features)
	Epochs       int     // full-batch epochs (default 200)
	LearningRate float64 // Adam step size (default 0.01)
	Workers      int
	Seed         uint64
}

func (c Config) withDefaults() Config {
	if c.Hidden <= 0 {
		c.Hidden = 16
	}
	if c.Features <= 0 {
		c.Features = 64
	}
	if c.Epochs <= 0 {
		c.Epochs = 200
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.01
	}
	return c
}

// Result holds the trained model outputs.
type Result struct {
	// Logits is n×K (pre-softmax class scores).
	Logits *mat.Dense
	// Hidden is the n×Hidden penultimate representation (an embedding).
	Hidden *mat.Dense
	// Pred is the argmax class per vertex.
	Pred []int32
	// Losses records the training cross-entropy per epoch.
	Losses []float64
}

// Train fits the GCN on a symmetrized graph with labels y (y[v] in
// [0, K), or -1 for unlabeled; K inferred). X supplies node features; nil
// selects fixed random features (the featureless-graph convention when
// one-hot identity features are too wide).
func Train(g *graph.CSR, y []int32, X *mat.Dense, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	n := g.N
	if len(y) != n {
		return nil, fmt.Errorf("gcn: %d labels for %d vertices", len(y), n)
	}
	k := 0
	labeled := 0
	for _, v := range y {
		if v >= 0 {
			labeled++
			if int(v)+1 > k {
				k = int(v) + 1
			}
		}
	}
	if k < 2 {
		return nil, fmt.Errorf("gcn: need at least 2 observed classes, got %d", k)
	}
	if X == nil {
		X = randomFeatures(n, cfg.Features, cfg.Seed)
	}
	if X.R != n {
		return nil, fmt.Errorf("gcn: feature rows %d != n %d", X.R, n)
	}
	adj := newNormAdj(g, cfg.Workers)

	r := xrand.New(cfg.Seed + 1)
	w0 := glorot(r, X.C, cfg.Hidden)
	w1 := glorot(r, cfg.Hidden, k)
	optW0 := newAdam(len(w0.Data), cfg.LearningRate)
	optW1 := newAdam(len(w1.Data), cfg.LearningRate)

	res := &Result{Losses: make([]float64, 0, cfg.Epochs)}
	ax := mat.NewDense(n, X.C)
	adj.mul(X, ax) // Â·X is constant across epochs
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		// forward
		pre1 := matMul(cfg.Workers, ax, w0)    // n×h
		h1 := relu(pre1)                       // n×h
		ah1 := mat.NewDense(n, cfg.Hidden)     // Â·H₁
		adj.mul(h1, ah1)                       //
		logits := matMul(cfg.Workers, ah1, w1) // n×k

		// softmax cross-entropy over labeled rows
		probs, loss := softmaxLoss(logits, y, labeled)
		res.Losses = append(res.Losses, loss)

		// backward: dLogits = (probs - onehot)/labeled on labeled rows
		dLogits := probs // reuse
		for v := 0; v < n; v++ {
			row := dLogits.Row(v)
			if y[v] < 0 {
				for j := range row {
					row[j] = 0
				}
				continue
			}
			row[y[v]] -= 1
			for j := range row {
				row[j] /= float64(labeled)
			}
		}
		// dW1 = (Â·H₁)ᵀ · dLogits
		dW1 := matTMul(cfg.Workers, ah1, dLogits)
		// dAH1 = dLogits · W₁ᵀ ; dH1 = Âᵀ·dAH1 = Â·dAH1 (symmetric)
		dAH1 := matMulT(cfg.Workers, dLogits, w1)
		dH1 := mat.NewDense(n, cfg.Hidden)
		adj.mul(dAH1, dH1)
		// ReLU gate
		for i, v := range pre1.Data {
			if v <= 0 {
				dH1.Data[i] = 0
			}
		}
		// dW0 = (Â·X)ᵀ · dH1
		dW0 := matTMul(cfg.Workers, ax, dH1)

		optW0.step(w0.Data, dW0.Data)
		optW1.step(w1.Data, dW1.Data)

		if epoch == cfg.Epochs-1 {
			res.Logits = logits
			res.Hidden = h1
		}
	}
	res.Pred = make([]int32, n)
	for v := 0; v < n; v++ {
		res.Pred[v] = int32(res.Logits.ArgMaxRow(v))
	}
	return res, nil
}

// randomFeatures returns fixed Gaussian features (a random projection of
// the identity — the usual featureless-graph stand-in).
func randomFeatures(n, d int, seed uint64) *mat.Dense {
	x := mat.NewDense(n, d)
	r := xrand.New(seed)
	scale := 1 / math.Sqrt(float64(d))
	for i := range x.Data {
		x.Data[i] = r.NormFloat64() * scale
	}
	return x
}

// glorot initializes a weight matrix with the Glorot/Xavier uniform rule.
func glorot(r *xrand.Rand, fanIn, fanOut int) *mat.Dense {
	w := mat.NewDense(fanIn, fanOut)
	limit := math.Sqrt(6 / float64(fanIn+fanOut))
	for i := range w.Data {
		w.Data[i] = (2*r.Float64() - 1) * limit
	}
	return w
}

// normAdj is Â = D̃^{-1/2}(A+I)D̃^{-1/2} in implicit form (the self-loop
// handled separately so the CSR is untouched).
type normAdj struct {
	g       *graph.CSR
	invSqrt []float64
	workers int
}

func newNormAdj(g *graph.CSR, workers int) *normAdj {
	inv := make([]float64, g.N)
	parallel.For(workers, g.N, func(v int) {
		d := 1.0 // self loop
		for i := g.Offsets[v]; i < g.Offsets[v+1]; i++ {
			d += float64(g.Weight(i))
		}
		inv[v] = 1 / math.Sqrt(d)
	})
	return &normAdj{g: g, invSqrt: inv, workers: workers}
}

// mul computes out = Â · in, parallel over rows.
func (a *normAdj) mul(in, out *mat.Dense) {
	k := in.C
	parallel.ForChunk(a.workers, a.g.N, 0, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			row := out.Row(u)
			su := a.invSqrt[u]
			// self loop term
			self := su * su
			inRow := in.Row(u)
			for j := 0; j < k; j++ {
				row[j] = self * inRow[j]
			}
			for i := a.g.Offsets[u]; i < a.g.Offsets[u+1]; i++ {
				v := a.g.Targets[i]
				scale := float64(a.g.Weight(i)) * su * a.invSqrt[v]
				vr := in.Row(int(v))
				for j := 0; j < k; j++ {
					row[j] += scale * vr[j]
				}
			}
		}
	})
}

// matMul returns a·b (dense, parallel over rows of a).
func matMul(workers int, a, b *mat.Dense) *mat.Dense {
	out := mat.NewDense(a.R, b.C)
	parallel.ForChunk(workers, a.R, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ar := a.Row(i)
			or := out.Row(i)
			for l, av := range ar {
				if av == 0 {
					continue
				}
				br := b.Row(l)
				for j := range or {
					or[j] += av * br[j]
				}
			}
		}
	})
	return out
}

// matTMul returns aᵀ·b.
func matTMul(workers int, a, b *mat.Dense) *mat.Dense {
	out := mat.NewDense(a.C, b.C)
	// parallel over columns of a (rows of the result)
	parallel.For(workers, a.C, func(i int) {
		or := out.Row(i)
		for l := 0; l < a.R; l++ {
			av := a.At(l, i)
			if av == 0 {
				continue
			}
			br := b.Row(l)
			for j := range or {
				or[j] += av * br[j]
			}
		}
	})
	return out
}

// matMulT returns a·bᵀ.
func matMulT(workers int, a, b *mat.Dense) *mat.Dense {
	out := mat.NewDense(a.R, b.R)
	parallel.ForChunk(workers, a.R, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ar := a.Row(i)
			or := out.Row(i)
			for j := 0; j < b.R; j++ {
				br := b.Row(j)
				var s float64
				for l := range ar {
					s += ar[l] * br[l]
				}
				or[j] = s
			}
		}
	})
	return out
}

// relu returns max(0, x) elementwise (fresh matrix).
func relu(x *mat.Dense) *mat.Dense {
	out := mat.NewDense(x.R, x.C)
	for i, v := range x.Data {
		if v > 0 {
			out.Data[i] = v
		}
	}
	return out
}

// softmaxLoss returns row-softmax probabilities and the mean
// cross-entropy over labeled rows.
func softmaxLoss(logits *mat.Dense, y []int32, labeled int) (*mat.Dense, float64) {
	probs := mat.NewDense(logits.R, logits.C)
	var loss float64
	for v := 0; v < logits.R; v++ {
		row := logits.Row(v)
		pr := probs.Row(v)
		mx := row[0]
		for _, x := range row[1:] {
			if x > mx {
				mx = x
			}
		}
		var sum float64
		for j, x := range row {
			e := math.Exp(x - mx)
			pr[j] = e
			sum += e
		}
		inv := 1 / sum
		for j := range pr {
			pr[j] *= inv
		}
		if y[v] >= 0 {
			loss += -math.Log(math.Max(pr[y[v]], 1e-12))
		}
	}
	if labeled > 0 {
		loss /= float64(labeled)
	}
	return probs, loss
}

// adam is a standard Adam optimizer state.
type adam struct {
	m, v   []float64
	lr     float64
	t      int
	beta1  float64
	beta2  float64
	epsilo float64
}

func newAdam(size int, lr float64) *adam {
	return &adam{
		m: make([]float64, size), v: make([]float64, size),
		lr: lr, beta1: 0.9, beta2: 0.999, epsilo: 1e-8,
	}
}

// step applies one Adam update: w -= lr * m̂ / (sqrt(v̂) + eps).
func (a *adam) step(w, grad []float64) {
	a.t++
	b1c := 1 - math.Pow(a.beta1, float64(a.t))
	b2c := 1 - math.Pow(a.beta2, float64(a.t))
	for i, g := range grad {
		a.m[i] = a.beta1*a.m[i] + (1-a.beta1)*g
		a.v[i] = a.beta2*a.v[i] + (1-a.beta2)*g*g
		w[i] -= a.lr * (a.m[i] / b1c) / (math.Sqrt(a.v[i]/b2c) + a.epsilo)
	}
}
