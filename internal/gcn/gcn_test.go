package gcn

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/labels"
	"repro/internal/mat"
	"repro/internal/xrand"
)

func symCSR(t *testing.T, el *graph.EdgeList) *graph.CSR {
	t.Helper()
	return graph.BuildCSR(4, graph.Symmetrize(el))
}

func TestTrainValidation(t *testing.T) {
	g := symCSR(t, gen.Cycle(6))
	if _, err := Train(g, []int32{0, 0}, nil, Config{}); err == nil {
		t.Fatal("label length mismatch accepted")
	}
	if _, err := Train(g, []int32{0, 0, 0, -1, -1, -1}, nil, Config{}); err == nil {
		t.Fatal("single observed class accepted")
	}
	bad := mat.NewDense(3, 4)
	if _, err := Train(g, []int32{0, 1, 0, 1, 0, 1}, bad, Config{Epochs: 1}); err == nil {
		t.Fatal("wrong feature rows accepted")
	}
}

func TestLossDecreases(t *testing.T) {
	el, truth := gen.SBM(4, 300, 2, 0.1, 0.005, 1)
	g := symCSR(t, el)
	y := semiSupervised(truth, 0.2, 2)
	res, err := Train(g, y, nil, Config{Epochs: 60, Workers: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	first, last := res.Losses[0], res.Losses[len(res.Losses)-1]
	if last >= first {
		t.Fatalf("loss did not decrease: %v -> %v", first, last)
	}
	if last > 0.7*first {
		t.Fatalf("loss barely moved: %v -> %v", first, last)
	}
	for _, l := range res.Losses {
		if math.IsNaN(l) || math.IsInf(l, 0) {
			t.Fatal("non-finite loss")
		}
	}
}

// semiSupervised reveals a fraction of true labels.
func semiSupervised(truth []int32, fraction float64, seed uint64) []int32 {
	y := make([]int32, len(truth))
	mask := labels.SampleSemiSupervised(len(truth), 2, fraction, seed)
	for i := range y {
		y[i] = labels.Unknown
		if mask[i] >= 0 {
			y[i] = truth[i]
		}
	}
	return y
}

func TestGCNClassifiesSBM(t *testing.T) {
	el, truth := gen.SBM(4, 400, 2, 0.12, 0.005, 5)
	g := symCSR(t, el)
	y := semiSupervised(truth, 0.15, 6)
	res, err := Train(g, y, nil, Config{Epochs: 150, Workers: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if acc := cluster.Accuracy(res.Pred, truth); acc < 0.85 {
		t.Fatalf("GCN accuracy %v on strong 2-block SBM", acc)
	}
	if res.Hidden.R != 400 {
		t.Fatal("hidden representation missing")
	}
}

func TestGCNWithExplicitFeatures(t *testing.T) {
	// features that encode the answer directly: GCN must fit quickly
	el, truth := gen.SBM(4, 200, 2, 0.08, 0.01, 9)
	g := symCSR(t, el)
	X := mat.NewDense(200, 2)
	r := xrand.New(10)
	for v := 0; v < 200; v++ {
		X.Set(v, int(truth[v]), 1+0.1*r.NormFloat64())
	}
	y := semiSupervised(truth, 0.1, 11)
	res, err := Train(g, y, X, Config{Epochs: 80, Workers: 4, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	if acc := cluster.Accuracy(res.Pred, truth); acc < 0.95 {
		t.Fatalf("accuracy %v with oracle features", acc)
	}
}

func TestNormAdjRowStochasticOnRegular(t *testing.T) {
	// On a d-regular graph, Â has constant row sums (d+1)/(d+1) = 1.
	g := symCSR(t, gen.Cycle(12)) // 2-regular
	adj := newNormAdj(g, 2)
	ones := mat.NewDense(12, 1)
	for i := range ones.Data {
		ones.Data[i] = 1
	}
	out := mat.NewDense(12, 1)
	adj.mul(ones, out)
	for v := 0; v < 12; v++ {
		if math.Abs(out.At(v, 0)-1) > 1e-12 {
			t.Fatalf("row %d sum %v want 1", v, out.At(v, 0))
		}
	}
}

func TestMatMulOracles(t *testing.T) {
	a := mat.FromRows([][]float64{{1, 2}, {3, 4}})
	b := mat.FromRows([][]float64{{5, 6}, {7, 8}})
	ab := matMul(2, a, b)
	want := mat.FromRows([][]float64{{19, 22}, {43, 50}})
	if ab.MaxAbsDiff(want) != 0 {
		t.Fatalf("ab=%v", ab.Data)
	}
	atb := matTMul(2, a, b)
	wantT := mat.FromRows([][]float64{{26, 30}, {38, 44}})
	if atb.MaxAbsDiff(wantT) != 0 {
		t.Fatalf("atb=%v", atb.Data)
	}
	abt := matMulT(2, a, b)
	wantBT := mat.FromRows([][]float64{{17, 23}, {39, 53}})
	if abt.MaxAbsDiff(wantBT) != 0 {
		t.Fatalf("abt=%v", abt.Data)
	}
}

func TestGradientCheck(t *testing.T) {
	// Numerical gradient check of the full forward pass wrt W1 on a tiny
	// problem: analytic dW1 must match finite differences.
	el, truth := gen.SBM(2, 30, 2, 0.3, 0.05, 13)
	g := symCSR(t, el)
	y := make([]int32, 30)
	copy(y, truth) // fully labeled
	X := randomFeatures(30, 5, 14)
	r := xrand.New(15)
	w0 := glorot(r, 5, 4)
	w1 := glorot(r, 4, 2)
	adj := newNormAdj(g, 2)
	labeled := 30

	forward := func() (*mat.Dense, float64) {
		ax := mat.NewDense(30, 5)
		adj.mul(X, ax)
		pre1 := matMul(1, ax, w0)
		h1 := relu(pre1)
		ah1 := mat.NewDense(30, 4)
		adj.mul(h1, ah1)
		logits := matMul(1, ah1, w1)
		_, loss := softmaxLoss(logits, y, labeled)
		return ah1, loss
	}
	// analytic dW1
	ah1, _ := forward()
	ax := mat.NewDense(30, 5)
	adj.mul(X, ax)
	logits := matMul(1, ah1, w1)
	probs, _ := softmaxLoss(logits, y, labeled)
	for v := 0; v < 30; v++ {
		row := probs.Row(v)
		row[y[v]] -= 1
		for j := range row {
			row[j] /= float64(labeled)
		}
	}
	dW1 := matTMul(1, ah1, probs)
	// finite differences
	const eps = 1e-6
	for _, idx := range []int{0, 3, 5, 7} {
		orig := w1.Data[idx]
		w1.Data[idx] = orig + eps
		_, lp := forward()
		w1.Data[idx] = orig - eps
		_, lm := forward()
		w1.Data[idx] = orig
		numeric := (lp - lm) / (2 * eps)
		if math.Abs(numeric-dW1.Data[idx]) > 1e-5*math.Max(1, math.Abs(numeric)) {
			t.Fatalf("dW1[%d]: analytic %v numeric %v", idx, dW1.Data[idx], numeric)
		}
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// minimize (w-3)^2: Adam should approach 3
	w := []float64{0}
	opt := newAdam(1, 0.1)
	for i := 0; i < 500; i++ {
		grad := []float64{2 * (w[0] - 3)}
		opt.step(w, grad)
	}
	if math.Abs(w[0]-3) > 0.05 {
		t.Fatalf("w=%v want 3", w[0])
	}
}
