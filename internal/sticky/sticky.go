// Package sticky provides the repo's buffered writer with sticky-error
// semantics: the first error of the underlying writer is retained, every
// later write short-circuits, and the byte count that actually reached
// the destination stays observable. Streaming code writes whole
// responses without checking each chunk and consults Err exactly once
// at the end — the discipline the stickywrite analyzer
// (internal/analysis) enforces: bare Write calls that discard errors
// are only legal on this type.
package sticky

import (
	"bufio"
	"io"
)

// tracker sits under the bufio buffer: it records the first error of
// the destination writer (bufio.Writer keeps its own sticky error
// private) and counts the bytes that actually reached it.
type tracker struct {
	w    io.Writer
	err  error
	sent int64
}

func (t *tracker) Write(p []byte) (int, error) {
	if t.err != nil {
		return 0, t.err
	}
	n, err := t.w.Write(p)
	t.sent += int64(n)
	if err != nil {
		t.err = err
	}
	return n, err
}

// Writer is a buffered writer whose first destination error sticks:
// subsequent writes are cheap no-ops and Err reports the original
// failure. It implements io.Writer (so fmt.Fprintf works), io.StringWriter
// and io.ByteWriter.
type Writer struct {
	t  tracker
	bw *bufio.Writer
}

// NewWriter returns a Writer buffering up to size bytes before w.
func NewWriter(w io.Writer, size int) *Writer {
	sw := &Writer{}
	sw.t.w = w
	sw.bw = bufio.NewWriterSize(&sw.t, size)
	return sw
}

// Reset discards unflushed state and retargets the Writer at w,
// clearing the sticky error and the byte count. The buffer is kept, so
// a pooled Writer pays no per-use allocation.
func (w *Writer) Reset(dst io.Writer) {
	w.t.w, w.t.err, w.t.sent = dst, nil, 0
	w.bw.Reset(&w.t)
}

// Detach drops the destination reference (so a pooled Writer does not
// pin a request's ResponseWriter) without discarding the buffer.
func (w *Writer) Detach() {
	w.t.w = nil
}

// Write appends p to the buffer. After the destination has failed it
// reports that sticky error and writes nothing.
//
//gee:noalloc
func (w *Writer) Write(p []byte) (int, error) {
	return w.bw.Write(p)
}

// WriteString appends s to the buffer; errors stick for Err.
//
//gee:noalloc
func (w *Writer) WriteString(s string) {
	_, _ = w.bw.WriteString(s) // error observed via the tracker, not per call
}

// WriteByte appends c to the buffer. It returns the sticky error (the
// canonical io.ByteWriter signature); callers may discard it and
// consult Err or Flush once at the end.
//
//gee:noalloc
func (w *Writer) WriteByte(c byte) error {
	_ = w.bw.WriteByte(c) // error observed via the tracker, not per call
	return w.t.err
}

// Flush writes buffered data to the destination and returns the sticky
// error, if any.
func (w *Writer) Flush() error {
	_ = w.bw.Flush() // the tracker saw any error first
	return w.t.err
}

// Err returns the first error the destination writer reported, or nil.
// Buffered-but-unflushed data never surfaces an error here; call Flush
// first for a final verdict.
func (w *Writer) Err() error { return w.t.err }

// BytesSent reports how many bytes reached the destination so far
// (flush before reading it for a final figure).
func (w *Writer) BytesSent() int64 { return w.t.sent }
