package sticky

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
)

// failAfter fails with errBoom once more than limit bytes have been
// written, accepting a prefix of the failing write like a real socket.
type failAfter struct {
	buf   bytes.Buffer
	limit int
}

var errBoom = errors.New("boom")

func (f *failAfter) Write(p []byte) (int, error) {
	room := f.limit - f.buf.Len()
	if room <= 0 {
		return 0, errBoom
	}
	if len(p) <= room {
		return f.buf.Write(p)
	}
	n, _ := f.buf.Write(p[:room])
	return n, errBoom
}

func TestWriterHappyPath(t *testing.T) {
	var dst bytes.Buffer
	w := NewWriter(&dst, 8)
	w.WriteString("hello")
	w.WriteByte(' ')
	fmt.Fprintf(w, "world %d", 42)
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if got, want := dst.String(), "hello world 42"; got != want {
		t.Fatalf("wrote %q, want %q", got, want)
	}
	if got := w.BytesSent(); got != int64(len("hello world 42")) {
		t.Fatalf("BytesSent = %d, want %d", got, len("hello world 42"))
	}
	if w.Err() != nil {
		t.Fatalf("Err = %v, want nil", w.Err())
	}
}

func TestWriterStickyError(t *testing.T) {
	f := &failAfter{limit: 4}
	w := NewWriter(f, 2) // tiny buffer so the failure surfaces mid-stream
	for i := 0; i < 100; i++ {
		w.WriteString("abcdef")
	}
	if err := w.Flush(); !errors.Is(err, errBoom) {
		t.Fatalf("Flush = %v, want errBoom", err)
	}
	if !errors.Is(w.Err(), errBoom) {
		t.Fatalf("Err = %v, want errBoom", w.Err())
	}
	if got := w.BytesSent(); got != 4 {
		t.Fatalf("BytesSent = %d, want 4 (bytes accepted before failure)", got)
	}
	// The destination must not have been written again after the error.
	if f.buf.Len() != 4 {
		t.Fatalf("destination got %d bytes, want 4", f.buf.Len())
	}
}

func TestWriterWriteReportsStickyError(t *testing.T) {
	f := &failAfter{limit: 0}
	w := NewWriter(f, 1)
	if _, err := w.Write([]byte("xy")); !errors.Is(err, errBoom) {
		// A write larger than the buffer goes straight through, so the
		// destination error surfaces on the Write itself.
		t.Fatalf("Write = %v, want errBoom", err)
	}
	if _, err := io.WriteString(w, "more"); !errors.Is(err, errBoom) {
		t.Fatalf("later writes should keep reporting the sticky error, got %v", err)
	}
}

func TestWriterReset(t *testing.T) {
	f := &failAfter{limit: 0}
	w := NewWriter(f, 4)
	w.WriteString("doomed")
	if err := w.Flush(); err == nil {
		t.Fatal("expected sticky error before Reset")
	}
	var dst strings.Builder
	w.Reset(&dst)
	if w.Err() != nil || w.BytesSent() != 0 {
		t.Fatalf("Reset left err=%v sent=%d", w.Err(), w.BytesSent())
	}
	w.WriteString("fresh")
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush after Reset: %v", err)
	}
	if dst.String() != "fresh" {
		t.Fatalf("after Reset wrote %q, want %q", dst.String(), "fresh")
	}
}
