package mat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDenseZeroed(t *testing.T) {
	m := NewDense(3, 4)
	if m.R != 3 || m.C != 4 || len(m.Data) != 12 {
		t.Fatalf("bad shape %dx%d len %d", m.R, m.C, len(m.Data))
	}
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("not zeroed")
		}
	}
}

func TestAtSetAdd(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Fatalf("At=%v", m.At(1, 2))
	}
	m.Add(1, 2, 2.5)
	if m.At(1, 2) != 7.5 {
		t.Fatalf("after Add: %v", m.At(1, 2))
	}
	if m.At(0, 0) != 0 || m.At(1, 1) != 0 {
		t.Fatal("unexpected writes to other cells")
	}
}

func TestRowAliases(t *testing.T) {
	m := NewDense(2, 2)
	r := m.Row(1)
	r[0] = 9
	if m.At(1, 0) != 9 {
		t.Fatal("Row must alias storage")
	}
	if len(r) != 2 {
		t.Fatalf("row length %d", len(r))
	}
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.R != 3 || m.C != 2 {
		t.Fatalf("shape %dx%d", m.R, m.C)
	}
	if m.At(2, 1) != 6 || m.At(0, 0) != 1 {
		t.Fatal("wrong values")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged rows did not panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestCloneIndependent(t *testing.T) {
	m := FromRows([][]float64{{1, 2}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("clone shares storage")
	}
}

func TestZeroScale(t *testing.T) {
	m := FromRows([][]float64{{2, -4}})
	m.Scale(0.5)
	if m.At(0, 0) != 1 || m.At(0, 1) != -2 {
		t.Fatalf("scale wrong: %v", m.Data)
	}
	m.Zero()
	if m.At(0, 0) != 0 || m.At(0, 1) != 0 {
		t.Fatal("zero failed")
	}
}

func TestFrobeniusNorm(t *testing.T) {
	m := FromRows([][]float64{{3, 4}})
	if got := m.FrobeniusNorm(); math.Abs(got-5) > 1e-15 {
		t.Fatalf("norm=%v want 5", got)
	}
	if NewDense(0, 0).FrobeniusNorm() != 0 {
		t.Fatal("empty norm")
	}
}

func TestMaxAbsAndDiff(t *testing.T) {
	a := FromRows([][]float64{{1, -7, 3}})
	b := FromRows([][]float64{{1, -4, 3.5}})
	if a.MaxAbs() != 7 {
		t.Fatalf("MaxAbs=%v", a.MaxAbs())
	}
	if d := a.MaxAbsDiff(b); d != 3 {
		t.Fatalf("MaxAbsDiff=%v want 3", d)
	}
}

func TestMaxAbsDiffShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch did not panic")
		}
	}()
	NewDense(1, 2).MaxAbsDiff(NewDense(2, 1))
}

func TestEqualTol(t *testing.T) {
	a := FromRows([][]float64{{1e9, 1}})
	b := FromRows([][]float64{{1e9 + 1, 1 + 1e-12}})
	if !a.EqualTol(b, 1e-8) {
		t.Fatal("should be equal within relative tol")
	}
	if a.EqualTol(b, 1e-12) {
		t.Fatal("should differ at tight tol")
	}
	if a.EqualTol(NewDense(1, 3), 1) {
		t.Fatal("shape mismatch must be unequal")
	}
}

func TestRowL2Normalize(t *testing.T) {
	m := FromRows([][]float64{{3, 4}, {0, 0}, {0, 2}})
	m.RowL2Normalize()
	if math.Abs(m.At(0, 0)-0.6) > 1e-15 || math.Abs(m.At(0, 1)-0.8) > 1e-15 {
		t.Fatalf("row0=%v", m.Row(0))
	}
	if m.At(1, 0) != 0 || m.At(1, 1) != 0 {
		t.Fatal("zero row must stay zero")
	}
	if m.At(2, 1) != 1 {
		t.Fatalf("row2=%v", m.Row(2))
	}
}

func TestArgMaxRow(t *testing.T) {
	m := FromRows([][]float64{{1, 3, 2}, {5, 5, 4}})
	if m.ArgMaxRow(0) != 1 {
		t.Fatalf("argmax row0 = %d", m.ArgMaxRow(0))
	}
	if m.ArgMaxRow(1) != 0 { // tie -> lowest index
		t.Fatalf("argmax row1 = %d", m.ArgMaxRow(1))
	}
	if NewDense(1, 0).ArgMaxRow(0) != -1 {
		t.Fatal("zero-width argmax must be -1")
	}
}

func TestEqualTolReflexiveProperty(t *testing.T) {
	f := func(vals []float64) bool {
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				vals[i] = 0
			}
		}
		m := &Dense{R: 1, C: len(vals), Data: vals}
		return m.EqualTol(m, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeDimensionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative dims did not panic")
		}
	}()
	NewDense(-1, 2)
}
