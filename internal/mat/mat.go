// Package mat provides the minimal dense matrix type used for GEE's
// embedding matrix Z (n x K) and projection matrix W.
//
// Storage is a single row-major []float64 so that a row Z(u, ·) is
// contiguous — the layout the paper relies on for cache reuse during
// dense edge maps (§III: "Z(u,:) ... will be in the processor cache").
package mat

import (
	"fmt"
	"math"
)

// Dense is a row-major dense matrix.
type Dense struct {
	R, C int
	Data []float64 // len R*C, row-major
}

// NewDense allocates an R x C zero matrix.
func NewDense(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", r, c))
	}
	return &Dense{R: r, C: c, Data: make([]float64, r*c)}
}

// FromRows builds a Dense from a slice of equal-length rows (copied).
func FromRows(rows [][]float64) *Dense {
	r := len(rows)
	if r == 0 {
		return NewDense(0, 0)
	}
	c := len(rows[0])
	m := NewDense(r, c)
	for i, row := range rows {
		if len(row) != c {
			panic("mat: ragged rows")
		}
		copy(m.Row(i), row)
	}
	return m
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.C+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.C+j] = v }

// Add increments element (i, j) by v.
func (m *Dense) Add(i, j int, v float64) { m.Data[i*m.C+j] += v }

// Row returns row i as a mutable slice aliasing the matrix storage.
func (m *Dense) Row(i int) []float64 { return m.Data[i*m.C : (i+1)*m.C] }

// Zero resets all elements to 0.
func (m *Dense) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.R, m.C)
	copy(out.Data, m.Data)
	return out
}

// Scale multiplies every element by a.
func (m *Dense) Scale(a float64) {
	for i := range m.Data {
		m.Data[i] *= a
	}
}

// FrobeniusNorm returns sqrt(sum of squared elements).
func (m *Dense) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest absolute element (0 for an empty matrix).
func (m *Dense) MaxAbs() float64 {
	var mx float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// MaxAbsDiff returns the largest absolute element-wise difference between
// m and other. Panics on shape mismatch.
func (m *Dense) MaxAbsDiff(other *Dense) float64 {
	if m.R != other.R || m.C != other.C {
		panic(fmt.Sprintf("mat: shape mismatch %dx%d vs %dx%d", m.R, m.C, other.R, other.C))
	}
	var mx float64
	for i, v := range m.Data {
		if d := math.Abs(v - other.Data[i]); d > mx {
			mx = d
		}
	}
	return mx
}

// EqualTol reports whether m and other agree element-wise within a mixed
// absolute/relative tolerance: |a-b| <= tol * max(1, |a|, |b|).
func (m *Dense) EqualTol(other *Dense, tol float64) bool {
	if m.R != other.R || m.C != other.C {
		return false
	}
	for i, a := range m.Data {
		b := other.Data[i]
		scale := 1.0
		if aa := math.Abs(a); aa > scale {
			scale = aa
		}
		if bb := math.Abs(b); bb > scale {
			scale = bb
		}
		if math.Abs(a-b) > tol*scale {
			return false
		}
	}
	return true
}

// RowL2Normalize scales each nonzero row to unit Euclidean norm. This is
// the normalization the GEE paper applies before clustering embeddings.
func (m *Dense) RowL2Normalize() {
	for i := 0; i < m.R; i++ {
		row := m.Row(i)
		var s float64
		for _, v := range row {
			s += v * v
		}
		if s == 0 {
			continue
		}
		inv := 1 / math.Sqrt(s)
		for j := range row {
			row[j] *= inv
		}
	}
}

// ArgMaxRow returns the index of the maximum element of row i (ties go to
// the lowest index); -1 for a zero-width matrix.
func (m *Dense) ArgMaxRow(i int) int {
	if m.C == 0 {
		return -1
	}
	row := m.Row(i)
	best, bv := 0, row[0]
	for j := 1; j < m.C; j++ {
		if row[j] > bv {
			best, bv = j, row[j]
		}
	}
	return best
}
