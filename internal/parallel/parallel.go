// Package parallel provides the shared-memory parallel primitives that the
// rest of the repository is built on: grain-scheduled parallel for loops,
// reductions, prefix scans, histograms and a parallel sort.
//
// It stands in for the Cilk-style work scheduler that Ligra uses in the
// original C++ implementation. The primitives are deliberately simple:
// static block partitioning with a configurable grain size, which matches
// the access patterns of the GEE kernels (dense, uniform edge maps) and
// keeps scheduling overhead predictable for strong-scaling experiments.
package parallel

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// DefaultGrain is the minimum number of iterations assigned to a worker
// chunk when no explicit grain is requested. Small enough to load-balance
// skewed per-iteration costs (e.g. power-law vertex degrees), large enough
// to amortize goroutine scheduling.
const DefaultGrain = 1024

// Workers returns the effective worker count: w if w > 0, otherwise
// runtime.GOMAXPROCS(0).
func Workers(w int) int {
	if w > 0 {
		return w
	}
	return runtime.GOMAXPROCS(0)
}

// For runs body(i) for every i in [0, n) using up to workers goroutines.
// workers <= 0 selects GOMAXPROCS. Iterations are distributed dynamically
// in grain-sized chunks so skewed iteration costs still balance.
func For(workers, n int, body func(i int)) {
	ForChunk(workers, n, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForChunk runs body(lo, hi) over disjoint chunks covering [0, n).
// grain <= 0 selects an automatic grain targeting ~4 chunks per worker.
// workers <= 0 selects GOMAXPROCS. Chunks are claimed dynamically from a
// shared atomic counter, which balances skewed chunk costs.
func ForChunk(workers, n, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	w := Workers(workers)
	if grain <= 0 {
		grain = n / (4 * w)
		if grain < 1 {
			grain = 1
		}
		if grain > DefaultGrain {
			grain = DefaultGrain
		}
	}
	nChunks := (n + grain - 1) / grain
	if w > nChunks {
		w = nChunks
	}
	if w <= 1 {
		body(0, n)
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= nChunks {
					return
				}
				lo := c * grain
				hi := lo + grain
				if hi > n {
					hi = n
				}
				body(lo, hi)
			}
		}()
	}
	wg.Wait()
}

// ForStatic runs body(worker, lo, hi) over exactly min(workers, n)
// contiguous, statically assigned ranges covering [0, n). Use it when the
// body needs a stable per-worker identity (e.g. private accumulation
// buffers indexed by worker).
func ForStatic(workers, n int, body func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		body(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(w)
	chunk := (n + w - 1) / w
	for g := 0; g < w; g++ {
		go func(g int) {
			defer wg.Done()
			lo := g * chunk
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			if lo < hi {
				body(g, lo, hi)
			}
		}(g)
	}
	wg.Wait()
}

// Reduce computes combine over per-chunk partial results of f applied to
// disjoint ranges covering [0, n). identity must satisfy
// combine(identity, x) == x. combine must be associative; the combination
// order across chunks is deterministic (ascending worker index).
func Reduce[T any](workers, n int, identity T, f func(lo, hi int) T, combine func(a, b T) T) T {
	if n <= 0 {
		return identity
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		return combine(identity, f(0, n))
	}
	parts := make([]T, w)
	for i := range parts {
		// Seed with the identity: ForStatic's chunk rounding can leave
		// trailing workers without a range, and a zero-value partial is
		// wrong for non-additive reductions (e.g. a min).
		parts[i] = identity
	}
	ForStatic(w, n, func(g, lo, hi int) {
		parts[g] = f(lo, hi)
	})
	acc := identity
	for _, p := range parts {
		acc = combine(acc, p)
	}
	return acc
}

// Integer is the constraint for the scan/histogram helpers.
type Integer interface {
	~int | ~int32 | ~int64 | ~uint32 | ~uint64
}

// ExclusiveSum replaces s with its exclusive prefix sum and returns the
// total. It is the core primitive for building CSR offsets. Runs in two
// parallel passes (per-block sums, then per-block rewrite).
func ExclusiveSum[T Integer](workers int, s []T) T {
	n := len(s)
	if n == 0 {
		return 0
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 || n < 4096 {
		var acc T
		for i := range s {
			v := s[i]
			s[i] = acc
			acc += v
		}
		return acc
	}
	blockSums := make([]T, w)
	chunk := (n + w - 1) / w
	ForStatic(w, n, func(g, lo, hi int) {
		var acc T
		for i := lo; i < hi; i++ {
			acc += s[i]
		}
		blockSums[g] = acc
	})
	var total T
	for g := range blockSums {
		v := blockSums[g]
		blockSums[g] = total
		total += v
	}
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		lo := g * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(g, lo, hi int) {
			defer wg.Done()
			acc := blockSums[g]
			for i := lo; i < hi; i++ {
				v := s[i]
				s[i] = acc
				acc += v
			}
		}(g, lo, hi)
	}
	wg.Wait()
	return total
}

// SplitByWeight partitions the index range [0, n) into parts contiguous
// ranges of roughly equal total weight, where prefix is the exclusive
// prefix-sum array of the per-index weights (len n+1, monotone,
// prefix[n] = total). It returns parts+1 monotone boundaries b with
// b[0] = 0 and b[parts] = n; ranges may be empty when a single index
// outweighs its fair share (e.g. a power-law hub vertex).
//
// This is the range-partition primitive behind the destination-sharded
// executor: handed a CSR's Offsets array (a degree prefix sum), it yields
// vertex ranges with balanced incident-arc counts rather than balanced
// vertex counts.
func SplitByWeight[T Integer](parts int, prefix []T) []int {
	n := len(prefix) - 1
	if n < 0 {
		panic("parallel: SplitByWeight needs a non-empty prefix array")
	}
	if parts < 1 {
		parts = 1
	}
	bounds := make([]int, parts+1)
	bounds[parts] = n
	total := prefix[n]
	lo := 0
	for p := 1; p < parts; p++ {
		// Smallest i with prefix[i] >= target, searched from the previous
		// boundary so boundaries stay monotone. Weights are counts, so the
		// uint64 product cannot overflow for any realistic m × parts.
		target := T(uint64(total) * uint64(p) / uint64(parts))
		i := sort.Search(n-lo, func(j int) bool { return prefix[lo+j] >= target }) + lo
		bounds[p] = i
		lo = i
	}
	return bounds
}

// RangeOf returns the index p of the range containing i under the
// boundary array returned by SplitByWeight: bounds[p] <= i < bounds[p+1].
// Empty ranges are skipped (the returned range always contains i).
func RangeOf(bounds []int, i int) int {
	// Largest p with bounds[p] <= i; sort.Search finds the first boundary
	// strictly above i.
	return sort.Search(len(bounds)-1, func(p int) bool { return bounds[p+1] > i })
}

// Histogram counts key(i) occurrences for i in [0, n) into buckets
// [0, nBuckets). Keys outside the range are ignored. Uses per-worker
// private counters merged at the end, so it is contention-free.
func Histogram(workers, n, nBuckets int, key func(i int) int) []int64 {
	w := Workers(workers)
	if w > n && n > 0 {
		w = n
	}
	if w < 1 {
		w = 1
	}
	locals := make([][]int64, w)
	ForStatic(w, n, func(g, lo, hi int) {
		c := make([]int64, nBuckets)
		for i := lo; i < hi; i++ {
			k := key(i)
			if k >= 0 && k < nBuckets {
				c[k]++
			}
		}
		locals[g] = c
	})
	out := make([]int64, nBuckets)
	for _, c := range locals {
		for b, v := range c {
			out[b] += v
		}
	}
	return out
}
