package parallel

import (
	"math/rand"
	"sort"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 24} {
		for _, n := range []int{0, 1, 2, 3, 100, 1023, 1024, 1025, 100_000} {
			hit := make([]int32, n)
			For(workers, n, func(i int) { atomic.AddInt32(&hit[i], 1) })
			for i, h := range hit {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestForChunkDisjointCoverage(t *testing.T) {
	for _, grain := range []int{0, 1, 3, 64, 10_000} {
		n := 12345
		hit := make([]int32, n)
		ForChunk(8, n, grain, func(lo, hi int) {
			if lo >= hi {
				t.Errorf("empty chunk [%d,%d)", lo, hi)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hit[i], 1)
			}
		})
		for i, h := range hit {
			if h != 1 {
				t.Fatalf("grain=%d: index %d visited %d times", grain, i, h)
			}
		}
	}
}

func TestForChunkZeroAndNegativeN(t *testing.T) {
	called := false
	ForChunk(4, 0, 0, func(lo, hi int) { called = true })
	ForChunk(4, -5, 0, func(lo, hi int) { called = true })
	if called {
		t.Fatal("body called for n <= 0")
	}
}

func TestForStaticWorkerIdentity(t *testing.T) {
	n := 1000
	workers := 8
	owner := make([]int32, n)
	seen := make([]int32, workers)
	ForStatic(workers, n, func(g, lo, hi int) {
		atomic.AddInt32(&seen[g], 1)
		for i := lo; i < hi; i++ {
			atomic.StoreInt32(&owner[i], int32(g))
		}
	})
	for g := 0; g < workers; g++ {
		if seen[g] != 1 {
			t.Fatalf("worker %d invoked %d times", g, seen[g])
		}
	}
	// Static ranges must be contiguous and ascending by worker id.
	for i := 1; i < n; i++ {
		if owner[i] < owner[i-1] {
			t.Fatalf("non-monotone ownership at %d: %d then %d", i, owner[i-1], owner[i])
		}
	}
}

func TestForStaticMoreWorkersThanItems(t *testing.T) {
	var count atomic.Int64
	ForStatic(64, 3, func(g, lo, hi int) {
		count.Add(int64(hi - lo))
	})
	if count.Load() != 3 {
		t.Fatalf("covered %d items, want 3", count.Load())
	}
}

func TestReduceSum(t *testing.T) {
	for _, n := range []int{0, 1, 10, 1000, 123_457} {
		got := Reduce(8, n, int64(0), func(lo, hi int) int64 {
			var s int64
			for i := lo; i < hi; i++ {
				s += int64(i)
			}
			return s
		}, func(a, b int64) int64 { return a + b })
		want := int64(n) * int64(n-1) / 2
		if n == 0 {
			want = 0
		}
		if got != want {
			t.Fatalf("n=%d: got %d want %d", n, got, want)
		}
	}
}

func TestReduceMax(t *testing.T) {
	vals := []int{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 97, 2}
	got := Reduce(4, len(vals), -1, func(lo, hi int) int {
		m := -1
		for i := lo; i < hi; i++ {
			if vals[i] > m {
				m = vals[i]
			}
		}
		return m
	}, func(a, b int) int {
		if a > b {
			return a
		}
		return b
	})
	if got != 97 {
		t.Fatalf("got %d want 97", got)
	}
}

// TestReduceMinIdentityWithSkippedWorkers is a regression test: when n
// is not divisible by the worker count, ForStatic's chunk rounding can
// leave trailing workers without a range, and their partials must be
// the identity — not the zero value, which would poison a min.
func TestReduceMinIdentityWithSkippedWorkers(t *testing.T) {
	// n=9, workers=8: chunk=2, workers 5-7 get no range.
	const n = 9
	got := Reduce(8, n, n, func(lo, hi int) int {
		return n // nothing found in any chunk
	}, func(a, b int) int {
		if b < a {
			return b
		}
		return a
	})
	if got != n {
		t.Fatalf("min-reduce with skipped workers: got %d want %d", got, n)
	}
}

func TestExclusiveSumSmall(t *testing.T) {
	s := []int64{3, 1, 4, 1, 5}
	total := ExclusiveSum(4, s)
	want := []int64{0, 3, 4, 8, 9}
	if total != 14 {
		t.Fatalf("total=%d want 14", total)
	}
	for i := range s {
		if s[i] != want[i] {
			t.Fatalf("s[%d]=%d want %d", i, s[i], want[i])
		}
	}
}

func TestExclusiveSumEmpty(t *testing.T) {
	if got := ExclusiveSum(4, []int64(nil)); got != 0 {
		t.Fatalf("empty scan total = %d", got)
	}
}

func TestExclusiveSumMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 5, 4095, 4096, 4097, 100_003} {
		orig := make([]int64, n)
		for i := range orig {
			orig[i] = int64(rng.Intn(100))
		}
		serial := make([]int64, n)
		copy(serial, orig)
		var acc int64
		for i := range serial {
			v := serial[i]
			serial[i] = acc
			acc += v
		}
		par := make([]int64, n)
		copy(par, orig)
		total := ExclusiveSum(8, par)
		if total != acc {
			t.Fatalf("n=%d: total %d want %d", n, total, acc)
		}
		for i := range par {
			if par[i] != serial[i] {
				t.Fatalf("n=%d: par[%d]=%d want %d", n, i, par[i], serial[i])
			}
		}
	}
}

func TestExclusiveSumUint32(t *testing.T) {
	s := []uint32{1, 2, 3}
	if total := ExclusiveSum(2, s); total != 6 {
		t.Fatalf("total=%d", total)
	}
	if s[0] != 0 || s[1] != 1 || s[2] != 3 {
		t.Fatalf("scan=%v", s)
	}
}

func TestHistogram(t *testing.T) {
	n := 10_000
	keys := make([]int, n)
	rng := rand.New(rand.NewSource(7))
	want := make([]int64, 13)
	for i := range keys {
		keys[i] = rng.Intn(15) - 1 // includes out-of-range -1 and 13, 14
		if keys[i] >= 0 && keys[i] < 13 {
			want[keys[i]]++
		}
	}
	got := Histogram(8, n, 13, func(i int) int { return keys[i] })
	for b := range want {
		if got[b] != want[b] {
			t.Fatalf("bucket %d: got %d want %d", b, got[b], want[b])
		}
	}
}

func TestHistogramEmpty(t *testing.T) {
	got := Histogram(4, 0, 5, func(i int) int { t.Fatal("key called"); return 0 })
	for _, v := range got {
		if v != 0 {
			t.Fatal("nonzero bucket for empty input")
		}
	}
}

func TestSortFuncMatchesStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, n := range []int{0, 1, 2, 100, 1 << 14, 1<<16 + 3} {
		a := make([]int, n)
		for i := range a {
			a[i] = rng.Intn(1000)
		}
		b := append([]int(nil), a...)
		SortFunc(8, a, func(x, y int) bool { return x < y })
		sort.Ints(b)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("n=%d: mismatch at %d: %d vs %d", n, i, a[i], b[i])
			}
		}
	}
}

func TestSortFuncProperty(t *testing.T) {
	f := func(vals []uint16) bool {
		s := make([]int, len(vals))
		for i, v := range vals {
			s[i] = int(v)
		}
		SortFunc(4, s, func(a, b int) bool { return a < b })
		return sort.IntsAreSorted(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWorkers(t *testing.T) {
	if Workers(5) != 5 {
		t.Fatal("explicit workers not honored")
	}
	if Workers(0) < 1 || Workers(-1) < 1 {
		t.Fatal("default workers must be >= 1")
	}
}

func TestReducePropertySumEqualsSerial(t *testing.T) {
	f := func(vals []int32) bool {
		var want int64
		for _, v := range vals {
			want += int64(v)
		}
		got := Reduce(6, len(vals), int64(0), func(lo, hi int) int64 {
			var s int64
			for i := lo; i < hi; i++ {
				s += int64(vals[i])
			}
			return s
		}, func(a, b int64) int64 { return a + b })
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitByWeightBalancesSkewedWeights(t *testing.T) {
	// Power-law-ish weights: one heavy index among many light ones.
	weights := make([]int64, 1000)
	for i := range weights {
		weights[i] = 1
	}
	weights[17] = 5000
	prefix := make([]int64, len(weights)+1)
	for i, w := range weights {
		prefix[i+1] = prefix[i] + w
	}
	for _, parts := range []int{1, 2, 3, 7, 16} {
		bounds := SplitByWeight(parts, prefix)
		if len(bounds) != parts+1 || bounds[0] != 0 || bounds[parts] != len(weights) {
			t.Fatalf("parts=%d: bounds=%v", parts, bounds)
		}
		total := prefix[len(weights)]
		fair := total / int64(parts)
		for p := 0; p < parts; p++ {
			if bounds[p] > bounds[p+1] {
				t.Fatalf("parts=%d: non-monotone bounds %v", parts, bounds)
			}
			got := prefix[bounds[p+1]] - prefix[bounds[p]]
			// Each range holds at most its fair share plus one item's
			// weight (the indivisible heavy index).
			if got > fair+5000 {
				t.Fatalf("parts=%d range %d: weight %d over fair share %d", parts, p, got, fair)
			}
		}
	}
}

func TestSplitByWeightEdgeCases(t *testing.T) {
	// Empty range.
	bounds := SplitByWeight(4, []int64{0})
	if len(bounds) != 5 || bounds[4] != 0 {
		t.Fatalf("empty: %v", bounds)
	}
	// Zero total weight: all boundaries collapse but cover [0, n).
	bounds = SplitByWeight(3, []int64{0, 0, 0})
	if bounds[0] != 0 || bounds[3] != 2 {
		t.Fatalf("zero-weight: %v", bounds)
	}
	// parts < 1 clamps to 1.
	bounds = SplitByWeight(0, []int64{0, 3, 9})
	if len(bounds) != 2 || bounds[1] != 2 {
		t.Fatalf("clamped: %v", bounds)
	}
}

func TestRangeOfLocatesEveryIndex(t *testing.T) {
	prefix := []int64{0, 4, 4, 10, 11, 20}
	for _, parts := range []int{1, 2, 3, 5} {
		bounds := SplitByWeight(parts, prefix)
		for i := 0; i < 5; i++ {
			p := RangeOf(bounds, i)
			if p < 0 || p >= parts || bounds[p] > i || i >= bounds[p+1] {
				t.Fatalf("parts=%d i=%d: p=%d bounds=%v", parts, i, p, bounds)
			}
		}
	}
}
