package parallel

import (
	"sort"
	"sync"
)

// sortSerialThreshold is the slice length below which SortFunc falls back
// to the standard library sort.
const sortSerialThreshold = 1 << 14

// SortFunc sorts s by less using a parallel merge sort. The sort is not
// stable. workers <= 0 selects GOMAXPROCS.
func SortFunc[T any](workers int, s []T, less func(a, b T) bool) {
	w := Workers(workers)
	if w <= 1 || len(s) < sortSerialThreshold {
		sort.Slice(s, func(i, j int) bool { return less(s[i], s[j]) })
		return
	}
	buf := make([]T, len(s))
	mergeSort(s, buf, less, depthFor(w))
}

// depthFor picks a recursion depth that yields at least 2*w leaves so the
// scheduler can balance uneven halves.
func depthFor(w int) int {
	d := 0
	for 1<<d < 2*w {
		d++
	}
	return d
}

// mergeSort sorts s in place using buf as scratch, spawning goroutines
// until depth reaches zero.
func mergeSort[T any](s, buf []T, less func(a, b T) bool, depth int) {
	if depth <= 0 || len(s) < sortSerialThreshold {
		sort.Slice(s, func(i, j int) bool { return less(s[i], s[j]) })
		return
	}
	mid := len(s) / 2
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		mergeSort(s[:mid], buf[:mid], less, depth-1)
	}()
	mergeSort(s[mid:], buf[mid:], less, depth-1)
	wg.Wait()
	merge(s, buf, mid, less)
}

// merge merges the sorted halves s[:mid] and s[mid:] through buf back
// into s.
func merge[T any](s, buf []T, mid int, less func(a, b T) bool) {
	copy(buf, s)
	i, j := 0, mid
	for k := 0; k < len(s); k++ {
		switch {
		case i >= mid:
			s[k] = buf[j]
			j++
		case j >= len(s):
			s[k] = buf[i]
			i++
		case less(buf[j], buf[i]):
			s[k] = buf[j]
			j++
		default:
			s[k] = buf[i]
			i++
		}
	}
}
