package graph

import (
	"sync/atomic"
	"testing"

	"repro/internal/xrand"
)

func buildRandomUnweighted(t *testing.T, n, m int, seed uint64) *CSR {
	t.Helper()
	r := xrand.New(seed)
	el := &EdgeList{N: n}
	for i := 0; i < m; i++ {
		el.Edges = append(el.Edges, Edge{U: NodeID(r.Intn(n)), V: NodeID(r.Intn(n)), W: 1})
	}
	return BuildCSR(4, el)
}

func TestCompressRoundTrip(t *testing.T) {
	g := buildRandomUnweighted(t, 500, 8000, 1)
	SortAdjacency(4, g)
	c, err := Compress(4, g)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumEdges() != g.NumEdges() {
		t.Fatalf("m=%d want %d", c.NumEdges(), g.NumEdges())
	}
	back := c.Decompress(4)
	csrEqual(t, g, back)
}

func TestCompressSavesSpace(t *testing.T) {
	// dense-ish sorted adjacency compresses well below 4 bytes/edge
	g := buildRandomUnweighted(t, 2000, 200_000, 3)
	SortAdjacency(4, g)
	c, err := Compress(4, g)
	if err != nil {
		t.Fatal(err)
	}
	plain := g.NumEdges() * 4
	if c.Bytes() >= plain {
		t.Fatalf("compressed %d bytes >= plain %d", c.Bytes(), plain)
	}
}

func TestCompressRejectsWeighted(t *testing.T) {
	el := &EdgeList{N: 2, Weighted: true, Edges: []Edge{{U: 0, V: 1, W: 2}}}
	if _, err := Compress(2, BuildCSR(1, el)); err == nil {
		t.Fatal("weighted graph compressed")
	}
}

func TestDecodeMatchesNeighbors(t *testing.T) {
	g := buildRandomUnweighted(t, 300, 4000, 5)
	SortAdjacency(2, g)
	c, err := Compress(2, g)
	if err != nil {
		t.Fatal(err)
	}
	var buf []NodeID
	for u := 0; u < g.N; u++ {
		buf = c.Decode(NodeID(u), buf[:0])
		want := g.Neighbors(NodeID(u))
		if len(buf) != len(want) {
			t.Fatalf("vertex %d: %d decoded, want %d", u, len(buf), len(want))
		}
		for i := range want {
			if buf[i] != want[i] {
				t.Fatalf("vertex %d[%d]: %d want %d", u, i, buf[i], want[i])
			}
		}
	}
}

func TestCompressFirstNeighborBelowVertex(t *testing.T) {
	// zig-zag path: neighbors entirely below the vertex id
	el := &EdgeList{N: 10, Edges: []Edge{{U: 9, V: 0, W: 1}, {U: 9, V: 3, W: 1}}}
	g := BuildCSR(1, el)
	c, err := Compress(1, g)
	if err != nil {
		t.Fatal(err)
	}
	nbrs := c.Decode(9, nil)
	if len(nbrs) != 2 || nbrs[0] != 0 || nbrs[1] != 3 {
		t.Fatalf("decoded %v", nbrs)
	}
}

func TestProcessEdgesVisitsAll(t *testing.T) {
	g := buildRandomUnweighted(t, 400, 6000, 7)
	SortAdjacency(4, g)
	c, err := Compress(4, g)
	if err != nil {
		t.Fatal(err)
	}
	var count atomic.Int64
	c.ProcessEdges(8, func(u, v NodeID) { count.Add(1) })
	if count.Load() != g.NumEdges() {
		t.Fatalf("visited %d want %d", count.Load(), g.NumEdges())
	}
}

func TestCompressEmptyAndIsolated(t *testing.T) {
	g := BuildCSR(1, &EdgeList{N: 5})
	c, err := Compress(2, g)
	if err != nil {
		t.Fatal(err)
	}
	if c.Bytes() != 0 || c.NumEdges() != 0 {
		t.Fatalf("bytes=%d m=%d", c.Bytes(), c.NumEdges())
	}
	back := c.Decompress(2)
	if back.N != 5 || back.NumEdges() != 0 {
		t.Fatal("decompress of empty failed")
	}
}

func TestCompressSelfLoopAndDuplicates(t *testing.T) {
	el := &EdgeList{N: 3, Edges: []Edge{
		{U: 1, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 1, V: 2, W: 1},
	}}
	g := BuildCSR(1, el)
	c, err := Compress(1, g)
	if err != nil {
		t.Fatal(err)
	}
	nbrs := c.Decode(1, nil)
	if len(nbrs) != 3 || nbrs[0] != 1 || nbrs[1] != 2 || nbrs[2] != 2 {
		t.Fatalf("decoded %v", nbrs)
	}
}
