package graph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/sticky"
)

// METIS graph format (the standard HPC partitioner input): header line
// "n m [fmt]", then one line per vertex listing its neighbors,
// 1-indexed. fmt "1" marks edge weights (neighbor, weight pairs).
// Comment lines start with '%'. METIS stores undirected graphs with
// both arc directions present; this reader loads exactly the arcs given.

// WriteMETIS writes g in METIS format. The declared edge count is the
// undirected count arcs/2, per the format convention; graphs with odd
// arc counts (directed inputs) are rejected.
func WriteMETIS(w io.Writer, g *CSR) error {
	if g.NumEdges()%2 != 0 {
		return fmt.Errorf("graph: METIS requires symmetrized graphs (odd arc count %d)", g.NumEdges())
	}
	sw := sticky.NewWriter(w, 1<<20)
	format := ""
	if g.Weights != nil {
		format = " 1"
	}
	fmt.Fprintf(sw, "%d %d%s\n", g.N, g.NumEdges()/2, format)
	for u := 0; u < g.N; u++ {
		lo, hi := g.Offsets[u], g.Offsets[u+1]
		for i := lo; i < hi; i++ {
			if i > lo {
				sw.WriteByte(' ')
			}
			sw.WriteString(strconv.FormatUint(uint64(g.Targets[i])+1, 10))
			if g.Weights != nil {
				sw.WriteByte(' ')
				sw.WriteString(strconv.FormatFloat(float64(g.Weights[i]), 'g', -1, 32))
			}
		}
		sw.WriteByte('\n')
	}
	return sw.Flush()
}

// ReadMETIS parses a METIS graph into a CSR.
func ReadMETIS(r io.Reader) (*CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	line, err := nextMETISLine(sc)
	if err != nil {
		return nil, fmt.Errorf("graph: METIS header: %w", err)
	}
	header := strings.Fields(line)
	if len(header) < 2 {
		return nil, fmt.Errorf("graph: METIS header %q", line)
	}
	n, err := strconv.Atoi(header[0])
	if err != nil || n < 0 {
		return nil, fmt.Errorf("graph: METIS vertex count %q", header[0])
	}
	declared, err := strconv.ParseInt(header[1], 10, 64)
	if err != nil || declared < 0 {
		return nil, fmt.Errorf("graph: METIS edge count %q", header[1])
	}
	weighted := false
	if len(header) >= 3 {
		switch header[2] {
		case "0", "00", "000":
		case "1", "01", "001":
			weighted = true
		default:
			return nil, fmt.Errorf("graph: unsupported METIS fmt %q (vertex weights not supported)", header[2])
		}
	}
	el := &EdgeList{N: n, Weighted: weighted}
	for u := 0; u < n; u++ {
		line, err := nextMETISLine(sc)
		if err == io.EOF {
			// trailing isolated vertices may be omitted by some writers
			break
		}
		if err != nil {
			return nil, fmt.Errorf("graph: METIS vertex %d: %w", u+1, err)
		}
		fields := strings.Fields(line)
		step := 1
		if weighted {
			step = 2
		}
		if len(fields)%step != 0 {
			return nil, fmt.Errorf("graph: METIS vertex %d: %d fields not divisible by %d", u+1, len(fields), step)
		}
		for i := 0; i < len(fields); i += step {
			v, err := strconv.ParseUint(fields[i], 10, 32)
			if err != nil || v == 0 || int(v) > n {
				return nil, fmt.Errorf("graph: METIS vertex %d: bad neighbor %q", u+1, fields[i])
			}
			w := float32(1)
			if weighted {
				wf, err := strconv.ParseFloat(fields[i+1], 32)
				if err != nil {
					return nil, fmt.Errorf("graph: METIS vertex %d: bad weight %q", u+1, fields[i+1])
				}
				w = float32(wf)
			}
			el.Edges = append(el.Edges, Edge{U: NodeID(u), V: NodeID(v - 1), W: w})
		}
	}
	if int64(len(el.Edges)) != 2*declared {
		return nil, fmt.Errorf("graph: METIS declared %d edges, found %d arcs (want %d)",
			declared, len(el.Edges), 2*declared)
	}
	return BuildCSR(0, el), nil
}

// nextMETISLine returns the next non-comment line.
func nextMETISLine(sc *bufio.Scanner) (string, error) {
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(strings.TrimSpace(line), "%") {
			continue
		}
		return line, nil
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", io.EOF
}

// WriteMETISFile writes g to path in METIS format.
func WriteMETISFile(path string, g *CSR) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteMETIS(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadMETISFile loads a METIS graph file.
func ReadMETISFile(path string) (*CSR, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadMETIS(f)
}
