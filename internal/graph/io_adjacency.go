package graph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"

	"repro/internal/sticky"
)

// The Ligra AdjacencyGraph text format (Problem Based Benchmark Suite):
//
//	AdjacencyGraph
//	<n>
//	<m>
//	<offset 0> ... <offset n-1>
//	<target 0> ... <target m-1>
//
// WeightedAdjacencyGraph appends m weights after the targets.

const (
	adjHeader         = "AdjacencyGraph"
	weightedAdjHeader = "WeightedAdjacencyGraph"
)

// WriteAdjacency writes g in (Weighted)AdjacencyGraph format. Writes go
// through a sticky.Writer: the first error is retained and returned by
// Flush, so the per-line writes stay unchecked by design.
func WriteAdjacency(w io.Writer, g *CSR) error {
	sw := sticky.NewWriter(w, 1<<20)
	header := adjHeader
	if g.Weights != nil {
		header = weightedAdjHeader
	}
	fmt.Fprintf(sw, "%s\n%d\n%d\n", header, g.N, g.NumEdges())
	for u := 0; u < g.N; u++ {
		sw.WriteString(strconv.FormatInt(g.Offsets[u], 10))
		sw.WriteByte('\n')
	}
	for _, v := range g.Targets {
		sw.WriteString(strconv.FormatUint(uint64(v), 10))
		sw.WriteByte('\n')
	}
	if g.Weights != nil {
		for _, wt := range g.Weights {
			sw.WriteString(strconv.FormatFloat(float64(wt), 'g', -1, 32))
			sw.WriteByte('\n')
		}
	}
	return sw.Flush()
}

// ReadAdjacency parses a (Weighted)AdjacencyGraph stream into a CSR.
func ReadAdjacency(r io.Reader) (*CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	sc.Split(bufio.ScanWords)
	next := func() (string, error) {
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return "", err
			}
			return "", io.ErrUnexpectedEOF
		}
		return sc.Text(), nil
	}
	header, err := next()
	if err != nil {
		return nil, fmt.Errorf("graph: reading header: %w", err)
	}
	weighted := false
	switch header {
	case adjHeader:
	case weightedAdjHeader:
		weighted = true
	default:
		return nil, fmt.Errorf("graph: unknown header %q", header)
	}
	nStr, err := next()
	if err != nil {
		return nil, err
	}
	n, err := strconv.Atoi(nStr)
	if err != nil || n < 0 {
		return nil, fmt.Errorf("graph: bad vertex count %q", nStr)
	}
	mStr, err := next()
	if err != nil {
		return nil, err
	}
	m, err := strconv.ParseInt(mStr, 10, 64)
	if err != nil || m < 0 {
		return nil, fmt.Errorf("graph: bad edge count %q", mStr)
	}
	g := &CSR{N: n, Offsets: make([]int64, n+1), Targets: make([]NodeID, m)}
	for u := 0; u < n; u++ {
		tok, err := next()
		if err != nil {
			return nil, fmt.Errorf("graph: offset %d: %w", u, err)
		}
		off, err := strconv.ParseInt(tok, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: offset %d: %w", u, err)
		}
		g.Offsets[u] = off
	}
	g.Offsets[n] = m
	for i := int64(0); i < m; i++ {
		tok, err := next()
		if err != nil {
			return nil, fmt.Errorf("graph: target %d: %w", i, err)
		}
		t, err := strconv.ParseUint(tok, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: target %d: %w", i, err)
		}
		g.Targets[i] = NodeID(t)
	}
	if weighted {
		g.Weights = make([]float32, m)
		for i := int64(0); i < m; i++ {
			tok, err := next()
			if err != nil {
				return nil, fmt.Errorf("graph: weight %d: %w", i, err)
			}
			wt, err := strconv.ParseFloat(tok, 32)
			if err != nil {
				return nil, fmt.Errorf("graph: weight %d: %w", i, err)
			}
			g.Weights[i] = float32(wt)
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// WriteAdjacencyFile writes g to path in (Weighted)AdjacencyGraph format.
func WriteAdjacencyFile(path string, g *CSR) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteAdjacency(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadAdjacencyFile loads a (Weighted)AdjacencyGraph file.
func ReadAdjacencyFile(path string) (*CSR, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadAdjacency(f)
}
