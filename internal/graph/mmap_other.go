//go:build !linux

package graph

// MmapBinaryFile on non-Linux platforms falls back to a regular read;
// the closer is a no-op.
func MmapBinaryFile(path string) (*CSR, func() error, error) {
	g, err := ReadBinaryFile(path)
	if err != nil {
		return nil, nil, err
	}
	return g, func() error { return nil }, nil
}
