package graph

import (
	"math"

	"repro/internal/parallel"
)

// Stats summarizes a CSR graph's structure.
type Stats struct {
	N           int
	M           int64
	MinDegree   int64
	MaxDegree   int64
	AvgDegree   float64
	Isolated    int // vertices with out-degree 0
	SelfLoops   int64
	DegreeP50   int64
	DegreeP99   int64
	WeightTotal float64
}

// ComputeStats scans the graph once and returns structural statistics.
func ComputeStats(workers int, g *CSR) Stats {
	s := Stats{N: g.N, M: g.NumEdges(), MinDegree: math.MaxInt64}
	if g.N == 0 {
		s.MinDegree = 0
		return s
	}
	type part struct {
		min, max, loops int64
		isolated        int
		wsum            float64
	}
	p := parallel.Reduce(workers, g.N, part{min: math.MaxInt64},
		func(lo, hi int) part {
			pp := part{min: math.MaxInt64}
			for u := lo; u < hi; u++ {
				d := g.Offsets[u+1] - g.Offsets[u]
				if d < pp.min {
					pp.min = d
				}
				if d > pp.max {
					pp.max = d
				}
				if d == 0 {
					pp.isolated++
				}
				for i := g.Offsets[u]; i < g.Offsets[u+1]; i++ {
					if g.Targets[i] == NodeID(u) {
						pp.loops++
					}
					pp.wsum += float64(g.Weight(i))
				}
			}
			return pp
		},
		func(a, b part) part {
			if b.min < a.min {
				a.min = b.min
			}
			if b.max > a.max {
				a.max = b.max
			}
			a.isolated += b.isolated
			a.loops += b.loops
			a.wsum += b.wsum
			return a
		})
	s.MinDegree, s.MaxDegree = p.min, p.max
	s.Isolated = p.isolated
	s.SelfLoops = p.loops
	s.WeightTotal = p.wsum
	s.AvgDegree = float64(s.M) / float64(s.N)
	s.DegreeP50 = degreePercentile(g, 0.50)
	s.DegreeP99 = degreePercentile(g, 0.99)
	return s
}

// degreePercentile computes the q-th percentile of the out-degree
// distribution using a counting pass over a capped histogram plus an
// overflow bucket walk.
func degreePercentile(g *CSR, q float64) int64 {
	if g.N == 0 {
		return 0
	}
	const cap = 4096
	hist := make([]int64, cap+1)
	for u := 0; u < g.N; u++ {
		d := g.Offsets[u+1] - g.Offsets[u]
		if d >= cap {
			hist[cap]++
		} else {
			hist[d]++
		}
	}
	target := int64(q * float64(g.N))
	if target >= int64(g.N) {
		target = int64(g.N) - 1
	}
	var cum int64
	for d := int64(0); d <= cap; d++ {
		cum += hist[d]
		if cum > target {
			if d == cap {
				// walk the tail exactly
				tail := make([]int64, 0, hist[cap])
				for u := 0; u < g.N; u++ {
					if dd := g.Offsets[u+1] - g.Offsets[u]; dd >= cap {
						tail = append(tail, dd)
					}
				}
				parallel.SortFunc(1, tail, func(a, b int64) bool { return a < b })
				idx := target - (cum - hist[cap])
				return tail[idx]
			}
			return d
		}
	}
	return 0
}

// OutDegrees returns the out-degree of every vertex.
func OutDegrees(workers int, g *CSR) []int64 {
	d := make([]int64, g.N)
	parallel.For(workers, g.N, func(u int) { d[u] = g.Offsets[u+1] - g.Offsets[u] })
	return d
}

// WeightedDegrees returns per-vertex total outgoing edge weight, the
// degree notion the Laplacian GEE variant normalizes by. For an edge list
// interpreted by Algorithm 1 (both endpoints updated per row), the degree
// of a vertex is its total incident weight, so callers should pass the
// symmetrized CSR or combine with in-degrees for directed graphs.
func WeightedDegrees(workers int, g *CSR) []float64 {
	d := make([]float64, g.N)
	parallel.For(workers, g.N, func(u int) {
		var s float64
		for i := g.Offsets[u]; i < g.Offsets[u+1]; i++ {
			s += float64(g.Weight(i))
		}
		d[u] = s
	})
	return d
}
