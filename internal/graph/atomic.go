package graph

import "sync/atomic"

// atomicFetchAdd atomically adds delta to *p and returns the previous
// value (the reserved slot index for CSR scatter).
func atomicFetchAdd(p *int64, delta int64) int64 {
	return atomic.AddInt64(p, delta) - delta
}
