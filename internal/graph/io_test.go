package graph

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func sampleCSR(t *testing.T, weighted bool) *CSR {
	t.Helper()
	el := randomEdgeList(37, 500, 21, weighted)
	g := BuildCSR(4, el)
	SortAdjacency(4, g)
	return g
}

func csrEqual(t *testing.T, a, b *CSR) {
	t.Helper()
	if a.N != b.N || a.NumEdges() != b.NumEdges() {
		t.Fatalf("shape mismatch: (%d,%d) vs (%d,%d)", a.N, a.NumEdges(), b.N, b.NumEdges())
	}
	for u := 0; u <= a.N; u++ {
		if a.Offsets[u] != b.Offsets[u] {
			t.Fatalf("offset mismatch at %d", u)
		}
	}
	for i := range a.Targets {
		if a.Targets[i] != b.Targets[i] {
			t.Fatalf("target mismatch at %d", i)
		}
	}
	if (a.Weights == nil) != (b.Weights == nil) {
		t.Fatal("weighted-ness mismatch")
	}
	for i := range a.Weights {
		if a.Weights[i] != b.Weights[i] {
			t.Fatalf("weight mismatch at %d", i)
		}
	}
}

func TestAdjacencyRoundTrip(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		g := sampleCSR(t, weighted)
		var buf bytes.Buffer
		if err := WriteAdjacency(&buf, g); err != nil {
			t.Fatal(err)
		}
		got, err := ReadAdjacency(&buf)
		if err != nil {
			t.Fatal(err)
		}
		csrEqual(t, g, got)
	}
}

func TestAdjacencyHeaderDetection(t *testing.T) {
	g := sampleCSR(t, true)
	var buf bytes.Buffer
	WriteAdjacency(&buf, g)
	if !strings.HasPrefix(buf.String(), "WeightedAdjacencyGraph\n") {
		t.Fatal("weighted graph must use WeightedAdjacencyGraph header")
	}
}

func TestReadAdjacencyErrors(t *testing.T) {
	cases := []string{
		"",
		"NotAGraph\n1\n0\n0\n",
		"AdjacencyGraph\n2\n1\n0\n0\n",      // missing target
		"AdjacencyGraph\n1\n1\n0\n7\n",      // target out of range
		"AdjacencyGraph\nx\n0\n",            // bad n
		"AdjacencyGraph\n1\n-2\n0\n",        // bad m
		"AdjacencyGraph\n2\n2\n0\nbad\n0\n", // bad offset
	}
	for i, c := range cases {
		if _, err := ReadAdjacency(strings.NewReader(c)); err == nil {
			t.Fatalf("case %d: malformed input accepted", i)
		}
	}
}

func TestAdjacencyKnownFormat(t *testing.T) {
	// Hand-written 3-vertex file in PBBS format.
	in := "AdjacencyGraph\n3\n3\n0\n1\n2\n1\n2\n0\n"
	g, err := ReadAdjacency(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 3 || g.NumEdges() != 3 {
		t.Fatalf("n=%d m=%d", g.N, g.NumEdges())
	}
	if g.Neighbors(0)[0] != 1 || g.Neighbors(1)[0] != 2 || g.Neighbors(2)[0] != 0 {
		t.Fatal("wrong adjacency")
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		el := randomEdgeList(23, 200, 31, weighted)
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, el); err != nil {
			t.Fatal(err)
		}
		got, err := ReadEdgeList(&buf, el.N)
		if err != nil {
			t.Fatal(err)
		}
		if got.N != el.N || len(got.Edges) != len(el.Edges) || got.Weighted != weighted {
			t.Fatalf("shape: n=%d m=%d weighted=%v", got.N, len(got.Edges), got.Weighted)
		}
		for i := range el.Edges {
			if got.Edges[i] != el.Edges[i] {
				t.Fatalf("edge %d: %v vs %v", i, got.Edges[i], el.Edges[i])
			}
		}
	}
}

func TestReadEdgeListCommentsAndSizing(t *testing.T) {
	in := "# comment\n% also comment\n\n0 5\n3 1 2.5\n"
	el, err := ReadEdgeList(strings.NewReader(in), 0)
	if err != nil {
		t.Fatal(err)
	}
	if el.N != 6 {
		t.Fatalf("N=%d want 6 (max id 5)", el.N)
	}
	if len(el.Edges) != 2 || !el.Weighted {
		t.Fatalf("edges=%v weighted=%v", el.Edges, el.Weighted)
	}
	if el.Edges[1].W != 2.5 {
		t.Fatalf("weight=%v", el.Edges[1].W)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	for i, c := range []string{"0\n", "a b\n", "0 b\n", "0 1 w\n"} {
		if _, err := ReadEdgeList(strings.NewReader(c), 0); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		g := sampleCSR(t, weighted)
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			t.Fatal(err)
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			t.Fatal(err)
		}
		csrEqual(t, g, got)
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("notmagicatall___"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadBinary(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty accepted")
	}
}

func TestBinaryTruncated(t *testing.T) {
	g := sampleCSR(t, false)
	var buf bytes.Buffer
	WriteBinary(&buf, g)
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := ReadBinary(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated stream accepted")
	}
}

func TestFileHelpers(t *testing.T) {
	dir := t.TempDir()
	g := sampleCSR(t, true)

	adjPath := filepath.Join(dir, "g.adj")
	if err := WriteAdjacencyFile(adjPath, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAdjacencyFile(adjPath)
	if err != nil {
		t.Fatal(err)
	}
	csrEqual(t, g, got)

	binPath := filepath.Join(dir, "g.bin")
	if err := WriteBinaryFile(binPath, g); err != nil {
		t.Fatal(err)
	}
	got2, err := ReadBinaryFile(binPath)
	if err != nil {
		t.Fatal(err)
	}
	csrEqual(t, g, got2)

	el := g.ToEdgeList()
	elPath := filepath.Join(dir, "g.txt")
	if err := WriteEdgeListFile(elPath, el); err != nil {
		t.Fatal(err)
	}
	gotEl, err := ReadEdgeListFile(elPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotEl.Edges) != len(el.Edges) {
		t.Fatalf("edge count %d want %d", len(gotEl.Edges), len(el.Edges))
	}
}

func TestFileHelpersMissingFile(t *testing.T) {
	if _, err := ReadAdjacencyFile("/nonexistent/x.adj"); err == nil {
		t.Fatal("missing file accepted")
	}
	if _, err := ReadBinaryFile("/nonexistent/x.bin"); err == nil {
		t.Fatal("missing file accepted")
	}
	if _, err := ReadEdgeListFile("/nonexistent/x.txt"); err == nil {
		t.Fatal("missing file accepted")
	}
}
