package graph

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

// triangle returns the directed 3-cycle 0->1->2->0.
func triangle() *EdgeList {
	return &EdgeList{N: 3, Edges: []Edge{{0, 1, 1}, {1, 2, 1}, {2, 0, 1}}}
}

func randomEdgeList(n, m int, seed uint64, weighted bool) *EdgeList {
	r := xrand.New(seed)
	el := &EdgeList{N: n, Weighted: weighted, Edges: make([]Edge, m)}
	for i := range el.Edges {
		w := float32(1)
		if weighted {
			w = float32(r.Intn(10) + 1)
		}
		el.Edges[i] = Edge{U: NodeID(r.Intn(n)), V: NodeID(r.Intn(n)), W: w}
	}
	return el
}

func TestEdgeListValidate(t *testing.T) {
	el := triangle()
	if err := el.Validate(); err != nil {
		t.Fatal(err)
	}
	el.Edges = append(el.Edges, Edge{U: 5, V: 0, W: 1})
	if err := el.Validate(); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	bad := &EdgeList{N: -1}
	if err := bad.Validate(); err == nil {
		t.Fatal("negative N accepted")
	}
}

func TestEdgeListClone(t *testing.T) {
	el := triangle()
	c := el.Clone()
	c.Edges[0].U = 2
	if el.Edges[0].U != 0 {
		t.Fatal("clone shares storage")
	}
}

func TestBuildCSRTriangle(t *testing.T) {
	g := BuildCSR(4, triangle())
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 3 || g.N != 3 {
		t.Fatalf("n=%d m=%d", g.N, g.NumEdges())
	}
	for u := NodeID(0); u < 3; u++ {
		if g.Degree(u) != 1 {
			t.Fatalf("degree(%d)=%d", u, g.Degree(u))
		}
		want := NodeID((u + 1) % 3)
		if g.Neighbors(u)[0] != want {
			t.Fatalf("neighbor(%d)=%d want %d", u, g.Neighbors(u)[0], want)
		}
	}
}

func TestBuildCSRPreservesMultiset(t *testing.T) {
	for _, workers := range []int{1, 8} {
		el := randomEdgeList(50, 5000, 7, true)
		g := BuildCSR(workers, el)
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
		back := g.ToEdgeList()
		if len(back.Edges) != len(el.Edges) {
			t.Fatalf("edge count %d want %d", len(back.Edges), len(el.Edges))
		}
		key := func(e Edge) [3]uint64 {
			return [3]uint64{uint64(e.U), uint64(e.V), uint64(e.W * 100)}
		}
		count := map[[3]uint64]int{}
		for _, e := range el.Edges {
			count[key(e)]++
		}
		for _, e := range back.Edges {
			count[key(e)]--
		}
		for k, c := range count {
			if c != 0 {
				t.Fatalf("edge multiset mismatch at %v: %d", k, c)
			}
		}
	}
}

func TestBuildCSRDeterministicAfterSort(t *testing.T) {
	el := randomEdgeList(40, 4000, 3, false)
	g1 := BuildCSR(1, el)
	g8 := BuildCSR(8, el)
	SortAdjacency(4, g1)
	SortAdjacency(4, g8)
	for u := 0; u < el.N; u++ {
		a, b := g1.Neighbors(NodeID(u)), g8.Neighbors(NodeID(u))
		if len(a) != len(b) {
			t.Fatalf("degree mismatch at %d", u)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("adjacency mismatch at %d[%d]: %d vs %d", u, i, a[i], b[i])
			}
		}
	}
}

func TestBuildCSREmptyAndIsolated(t *testing.T) {
	g := BuildCSR(4, &EdgeList{N: 5})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 0 {
		t.Fatal("expected no edges")
	}
	for u := NodeID(0); u < 5; u++ {
		if g.Degree(u) != 0 {
			t.Fatal("expected isolated vertices")
		}
	}
	empty := BuildCSR(4, &EdgeList{N: 0})
	if err := empty.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCSRWeights(t *testing.T) {
	el := &EdgeList{N: 2, Weighted: true, Edges: []Edge{{0, 1, 2.5}}}
	g := BuildCSR(1, el)
	if g.Weight(0) != 2.5 {
		t.Fatalf("weight=%v", g.Weight(0))
	}
	if got := g.EdgeWeights(0); len(got) != 1 || got[0] != 2.5 {
		t.Fatalf("EdgeWeights=%v", got)
	}
	unweighted := BuildCSR(1, triangle())
	if unweighted.Weight(0) != 1 {
		t.Fatal("unweighted graphs must report unit weights")
	}
	if unweighted.EdgeWeights(0) != nil {
		t.Fatal("unweighted EdgeWeights must be nil")
	}
}

func TestCSRValidateCatchesCorruption(t *testing.T) {
	g := BuildCSR(1, triangle())
	g.Targets[0] = 99
	if err := g.Validate(); err == nil {
		t.Fatal("out-of-range target accepted")
	}
	g = BuildCSR(1, triangle())
	g.Offsets[1] = 5
	if err := g.Validate(); err == nil {
		t.Fatal("broken offsets accepted")
	}
	g = BuildCSR(1, triangle())
	g.Offsets = g.Offsets[:2]
	if err := g.Validate(); err == nil {
		t.Fatal("short offsets accepted")
	}
}

func TestSymmetrize(t *testing.T) {
	el := &EdgeList{N: 3, Edges: []Edge{{0, 1, 2}, {2, 2, 1}}}
	s := Symmetrize(el)
	if len(s.Edges) != 3 { // (0,1),(1,0),(2,2)
		t.Fatalf("got %d edges", len(s.Edges))
	}
	found := false
	for _, e := range s.Edges {
		if e.U == 1 && e.V == 0 && e.W == 2 {
			found = true
		}
	}
	if !found {
		t.Fatal("reverse arc missing or weight lost")
	}
}

func TestRemoveSelfLoops(t *testing.T) {
	el := &EdgeList{N: 3, Edges: []Edge{{0, 0, 1}, {0, 1, 1}, {2, 2, 1}}}
	RemoveSelfLoops(el)
	if len(el.Edges) != 1 || el.Edges[0].V != 1 {
		t.Fatalf("got %v", el.Edges)
	}
}

func TestDeduplicate(t *testing.T) {
	el := &EdgeList{N: 3, Edges: []Edge{{1, 2, 1}, {0, 1, 1}, {1, 2, 9}, {0, 1, 1}}}
	Deduplicate(2, el)
	if len(el.Edges) != 2 {
		t.Fatalf("got %d edges: %v", len(el.Edges), el.Edges)
	}
	if el.Edges[0].U != 0 || el.Edges[1].U != 1 {
		t.Fatalf("not sorted: %v", el.Edges)
	}
}

func TestPermuteRoundTrip(t *testing.T) {
	el := randomEdgeList(20, 100, 11, false)
	perm := RandomPermutation(20, 5)
	inv := make([]NodeID, 20)
	for i, p := range perm {
		inv[p] = NodeID(i)
	}
	back := Permute(Permute(el, perm), inv)
	for i := range el.Edges {
		if back.Edges[i] != el.Edges[i] {
			t.Fatalf("round trip mismatch at %d", i)
		}
	}
}

func TestRandomPermutationIsPermutation(t *testing.T) {
	p := RandomPermutation(100, 9)
	seen := make([]bool, 100)
	for _, v := range p {
		if seen[v] {
			t.Fatal("duplicate in permutation")
		}
		seen[v] = true
	}
}

func TestTranspose(t *testing.T) {
	g := BuildCSR(2, triangle())
	gt := Transpose(2, g)
	// transpose of 0->1->2->0 is 0->2->1->0
	for u := NodeID(0); u < 3; u++ {
		want := NodeID((u + 2) % 3)
		if gt.Neighbors(u)[0] != want {
			t.Fatalf("transpose neighbor(%d)=%d want %d", u, gt.Neighbors(u)[0], want)
		}
	}
	// double transpose = original (after sorting)
	gtt := Transpose(2, gt)
	SortAdjacency(1, g)
	SortAdjacency(1, gtt)
	for u := NodeID(0); u < 3; u++ {
		if gtt.Neighbors(u)[0] != g.Neighbors(u)[0] {
			t.Fatal("double transpose differs")
		}
	}
}

func TestSortAdjacencySorted(t *testing.T) {
	el := randomEdgeList(30, 2000, 13, true)
	g := BuildCSR(8, el)
	SortAdjacency(8, g)
	for u := 0; u < g.N; u++ {
		nbrs := g.Neighbors(NodeID(u))
		if !sort.SliceIsSorted(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] }) {
			t.Fatalf("adjacency of %d not sorted", u)
		}
	}
}

func TestSortAdjacencyKeepsWeightPairing(t *testing.T) {
	// weight encodes the target so pairing is checkable after sort
	el := &EdgeList{N: 4, Weighted: true}
	for v := 3; v >= 1; v-- {
		el.Edges = append(el.Edges, Edge{U: 0, V: NodeID(v), W: float32(v) * 10})
	}
	g := BuildCSR(1, el)
	SortAdjacency(1, g)
	for i, v := range g.Neighbors(0) {
		if g.EdgeWeights(0)[i] != float32(v)*10 {
			t.Fatalf("weight decoupled from target: v=%d w=%v", v, g.EdgeWeights(0)[i])
		}
	}
}

func TestComputeStats(t *testing.T) {
	el := &EdgeList{N: 4, Edges: []Edge{{0, 1, 1}, {0, 2, 1}, {0, 0, 1}, {1, 2, 1}}}
	g := BuildCSR(2, el)
	s := ComputeStats(2, g)
	if s.N != 4 || s.M != 4 {
		t.Fatalf("n=%d m=%d", s.N, s.M)
	}
	if s.MaxDegree != 3 || s.MinDegree != 0 {
		t.Fatalf("min=%d max=%d", s.MinDegree, s.MaxDegree)
	}
	if s.Isolated != 2 { // vertices 2 and 3 have no out-edges
		t.Fatalf("isolated=%d", s.Isolated)
	}
	if s.SelfLoops != 1 {
		t.Fatalf("selfloops=%d", s.SelfLoops)
	}
	if s.WeightTotal != 4 {
		t.Fatalf("weight total=%v", s.WeightTotal)
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	s := ComputeStats(2, BuildCSR(1, &EdgeList{N: 0}))
	if s.N != 0 || s.M != 0 || s.MinDegree != 0 {
		t.Fatalf("%+v", s)
	}
}

func TestDegreePercentiles(t *testing.T) {
	// Star graph: center has degree n-1, leaves 0.
	n := 1000
	el := &EdgeList{N: n}
	for v := 1; v < n; v++ {
		el.Edges = append(el.Edges, Edge{U: 0, V: NodeID(v), W: 1})
	}
	g := BuildCSR(4, el)
	s := ComputeStats(4, g)
	if s.DegreeP50 != 0 {
		t.Fatalf("p50=%d want 0", s.DegreeP50)
	}
	if s.DegreeP99 != 0 {
		t.Fatalf("p99=%d want 0 (only 1 of 1000 vertices has degree)", s.DegreeP99)
	}
	if s.MaxDegree != int64(n-1) {
		t.Fatalf("max=%d", s.MaxDegree)
	}
}

func TestOutDegreesAndWeightedDegrees(t *testing.T) {
	el := &EdgeList{N: 3, Weighted: true, Edges: []Edge{{0, 1, 2}, {0, 2, 3}, {1, 0, 1}}}
	g := BuildCSR(2, el)
	d := OutDegrees(2, g)
	if d[0] != 2 || d[1] != 1 || d[2] != 0 {
		t.Fatalf("degrees=%v", d)
	}
	wd := WeightedDegrees(2, g)
	if wd[0] != 5 || wd[1] != 1 || wd[2] != 0 {
		t.Fatalf("weighted degrees=%v", wd)
	}
}

func TestToEdgeListProperty(t *testing.T) {
	f := func(seed uint64) bool {
		el := randomEdgeList(17, 300, seed, false)
		g := BuildCSR(4, el)
		back := g.ToEdgeList()
		if back.N != el.N || len(back.Edges) != len(el.Edges) {
			return false
		}
		// every CSR arc starts at the vertex whose range contains it
		for u := 0; u < g.N; u++ {
			for i := g.Offsets[u]; i < g.Offsets[u+1]; i++ {
				if back.Edges[i].U != NodeID(u) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
