package graph

import (
	"sort"

	"repro/internal/parallel"
)

// Vertex reorderings for cache-locality studies. The paper's §III
// discusses exactly this effect: during a dense edge map, Z(u,·) is
// cache-resident while Z(v,·) accesses "will likely result in cache
// misses". How much depends on the vertex ordering; these reorderings
// let the benchmarks quantify it.

// DegreeOrder returns a permutation placing vertices in descending
// out-degree order (hub vertices first — the hot rows of Z become
// contiguous). perm[old] = new.
func DegreeOrder(workers int, g *CSR) []NodeID {
	n := g.N
	order := make([]NodeID, n)
	for i := range order {
		order[i] = NodeID(i)
	}
	parallel.SortFunc(workers, order, func(a, b NodeID) bool {
		da, db := g.Degree(a), g.Degree(b)
		if da != db {
			return da > db
		}
		return a < b
	})
	perm := make([]NodeID, n)
	for newID, oldID := range order {
		perm[oldID] = NodeID(newID)
	}
	return perm
}

// BFSOrder returns a permutation placing vertices in BFS discovery order
// from the highest-degree vertex (neighbors become near-contiguous —
// the classic locality ordering). Unreached vertices follow in id order.
// perm[old] = new.
func BFSOrder(g *CSR) []NodeID {
	n := g.N
	perm := make([]NodeID, n)
	visited := make([]bool, n)
	next := NodeID(0)
	// start from the max-degree vertex
	start := 0
	for v := 1; v < n; v++ {
		if g.Degree(NodeID(v)) > g.Degree(NodeID(start)) {
			start = v
		}
	}
	queue := make([]NodeID, 0, n)
	enqueue := func(v NodeID) {
		visited[v] = true
		perm[v] = next
		next++
		queue = append(queue, v)
	}
	if n > 0 {
		enqueue(NodeID(start))
	}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		nbrs := append([]NodeID(nil), g.Neighbors(u)...)
		sort.Slice(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] })
		for _, v := range nbrs {
			if !visited[v] {
				enqueue(v)
			}
		}
	}
	for v := 0; v < n; v++ {
		if !visited[v] {
			perm[v] = next
			next++
		}
	}
	return perm
}

// ApplyOrder rebuilds the CSR under a permutation (perm[old] = new).
func ApplyOrder(workers int, g *CSR, perm []NodeID) *CSR {
	el := g.ToEdgeList()
	return BuildCSR(workers, Permute(el, perm))
}
