//go:build linux

package graph

import (
	"encoding/binary"
	"fmt"
	"os"
	"syscall"
	"unsafe"
)

// MmapBinaryFile maps a compact binary CSR file (WriteBinaryFile format)
// into memory and returns a CSR whose slices alias the mapping — loading
// a multi-GB graph costs page-table setup, not a copy. Call the returned
// closer to unmap; the CSR must not be used afterwards.
//
// Only the fixed-width arrays are aliased; the header is validated the
// same way ReadBinary validates it.
func MmapBinaryFile(path string) (*CSR, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	headerSize := int64(8 + 3*8)
	if size < headerSize {
		return nil, nil, fmt.Errorf("graph: %s too small for header", path)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("graph: mmap %s: %w", path, err)
	}
	closer := func() error { return syscall.Munmap(data) }
	fail := func(err error) (*CSR, func() error, error) {
		closer()
		return nil, nil, err
	}
	var magic [8]byte
	copy(magic[:], data[:8])
	if magic != binMagic {
		return fail(fmt.Errorf("graph: bad magic in %s", path))
	}
	n := binary.LittleEndian.Uint64(data[8:])
	m := binary.LittleEndian.Uint64(data[16:])
	flags := binary.LittleEndian.Uint64(data[24:])
	weighted := flags&flagWeighted != 0
	need := headerSize + int64(n+1)*8 + int64(m)*4
	if weighted {
		need += int64(m) * 4
	}
	if size < need {
		return fail(fmt.Errorf("graph: %s truncated: %d bytes, need %d", path, size, need))
	}
	off := headerSize
	offsets := unsafe.Slice((*int64)(unsafe.Pointer(&data[off])), n+1)
	off += int64(n+1) * 8
	targets := unsafe.Slice((*NodeID)(unsafe.Pointer(&data[off])), m)
	off += int64(m) * 4
	g := &CSR{N: int(n), Offsets: offsets, Targets: targets}
	if weighted {
		g.Weights = unsafe.Slice((*float32)(unsafe.Pointer(&data[off])), m)
	}
	if err := g.Validate(); err != nil {
		return fail(err)
	}
	return g, closer, nil
}
