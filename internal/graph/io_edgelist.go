package graph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/sticky"
)

// SNAP-style edge list text format: one "u v" or "u v w" per line,
// '#'-prefixed comment lines ignored. Vertex count is max id + 1 unless a
// larger N is forced by the caller.

// WriteEdgeList writes el as text, one edge per line (weight column only
// when el.Weighted). The sticky.Writer retains the first error for
// Flush, so per-field writes stay unchecked by design.
func WriteEdgeList(w io.Writer, el *EdgeList) error {
	sw := sticky.NewWriter(w, 1<<20)
	fmt.Fprintf(sw, "# nodes %d edges %d\n", el.N, len(el.Edges))
	for _, e := range el.Edges {
		sw.WriteString(strconv.FormatUint(uint64(e.U), 10))
		sw.WriteByte('\t')
		sw.WriteString(strconv.FormatUint(uint64(e.V), 10))
		if el.Weighted {
			sw.WriteByte('\t')
			sw.WriteString(strconv.FormatFloat(float64(e.W), 'g', -1, 32))
		}
		sw.WriteByte('\n')
	}
	return sw.Flush()
}

// ReadEdgeList parses a SNAP-style edge list. minN forces a minimum vertex
// count (pass 0 to size from the data).
func ReadEdgeList(r io.Reader, minN int) (*EdgeList, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	el := &EdgeList{N: minN}
	maxID := -1
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") || strings.HasPrefix(text, "%") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: need at least 2 fields", line)
		}
		u, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", line, err)
		}
		v, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", line, err)
		}
		w := float32(1)
		if len(fields) >= 3 {
			wf, err := strconv.ParseFloat(fields[2], 32)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %w", line, err)
			}
			w = float32(wf)
			el.Weighted = true
		}
		el.Edges = append(el.Edges, Edge{U: NodeID(u), V: NodeID(v), W: w})
		if int(u) > maxID {
			maxID = int(u)
		}
		if int(v) > maxID {
			maxID = int(v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if maxID+1 > el.N {
		el.N = maxID + 1
	}
	return el, nil
}

// WriteEdgeListFile writes el to path.
func WriteEdgeListFile(path string, el *EdgeList) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteEdgeList(f, el); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadEdgeListFile loads an edge list file.
func ReadEdgeListFile(path string) (*EdgeList, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadEdgeList(f, 0)
}
