package graph

import (
	"os"
	"path/filepath"
	"testing"
)

func TestMmapBinaryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	for _, weighted := range []bool{false, true} {
		g := buildRandomUnweighted(t, 200, 3000, 11)
		if weighted {
			g.Weights = make([]float32, g.NumEdges())
			for i := range g.Weights {
				g.Weights[i] = float32(i%7 + 1)
			}
		}
		path := filepath.Join(dir, "g.bin")
		if err := WriteBinaryFile(path, g); err != nil {
			t.Fatal(err)
		}
		mg, closer, err := MmapBinaryFile(path)
		if err != nil {
			t.Fatal(err)
		}
		csrEqual(t, g, mg)
		if err := closer(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMmapRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.bin")
	os.WriteFile(bad, []byte("definitely not a graph file....."), 0o644)
	if _, _, err := MmapBinaryFile(bad); err == nil {
		t.Fatal("garbage mapped")
	}
	tiny := filepath.Join(dir, "tiny.bin")
	os.WriteFile(tiny, []byte("x"), 0o644)
	if _, _, err := MmapBinaryFile(tiny); err == nil {
		t.Fatal("tiny file mapped")
	}
	if _, _, err := MmapBinaryFile(filepath.Join(dir, "missing.bin")); err == nil {
		t.Fatal("missing file mapped")
	}
}

func TestMmapRejectsTruncated(t *testing.T) {
	dir := t.TempDir()
	g := buildRandomUnweighted(t, 100, 1000, 13)
	path := filepath.Join(dir, "g.bin")
	if err := WriteBinaryFile(path, g); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	trunc := filepath.Join(dir, "trunc.bin")
	os.WriteFile(trunc, data[:len(data)/2], 0o644)
	if _, _, err := MmapBinaryFile(trunc); err == nil {
		t.Fatal("truncated file mapped")
	}
}
