package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// Compact binary CSR format, little-endian:
//
//	magic   [8]byte  "GEECSR01"
//	n       uint64
//	m       uint64
//	flags   uint64   bit0 = weighted
//	offsets (n+1) x int64
//	targets m x uint32
//	weights m x float32 (when weighted)
//
// This is the fast path for benchmark graphs: loading is a few large
// sequential reads rather than a text parse.

var binMagic = [8]byte{'G', 'E', 'E', 'C', 'S', 'R', '0', '1'}

const flagWeighted = 1 << 0

// WriteBinary streams g in the compact binary format.
func WriteBinary(w io.Writer, g *CSR) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(binMagic[:]); err != nil {
		return err
	}
	var flags uint64
	if g.Weights != nil {
		flags |= flagWeighted
	}
	hdr := []uint64{uint64(g.N), uint64(g.NumEdges()), flags}
	if err := binary.Write(bw, binary.LittleEndian, hdr); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.Offsets); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.Targets); err != nil {
		return err
	}
	if g.Weights != nil {
		if err := binary.Write(bw, binary.LittleEndian, g.Weights); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary parses the compact binary format.
func ReadBinary(r io.Reader) (*CSR, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("graph: binary magic: %w", err)
	}
	if magic != binMagic {
		return nil, fmt.Errorf("graph: bad magic %q", magic[:])
	}
	hdr := make([]uint64, 3)
	if err := binary.Read(br, binary.LittleEndian, hdr); err != nil {
		return nil, err
	}
	n, m, flags := hdr[0], hdr[1], hdr[2]
	const maxReasonable = 1 << 40
	if n > maxReasonable || m > maxReasonable {
		return nil, fmt.Errorf("graph: implausible sizes n=%d m=%d", n, m)
	}
	g := &CSR{N: int(n), Offsets: make([]int64, n+1), Targets: make([]NodeID, m)}
	if err := binary.Read(br, binary.LittleEndian, g.Offsets); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, g.Targets); err != nil {
		return nil, err
	}
	if flags&flagWeighted != 0 {
		g.Weights = make([]float32, m)
		if err := binary.Read(br, binary.LittleEndian, g.Weights); err != nil {
			return nil, err
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// WriteBinaryFile writes g to path in the compact binary format.
func WriteBinaryFile(path string, g *CSR) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteBinary(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadBinaryFile loads a compact binary CSR file.
func ReadBinaryFile(path string) (*CSR, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBinary(f)
}
