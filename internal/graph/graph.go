// Package graph provides the graph substrate for the GEE reproduction:
// edge lists, a compressed sparse row (CSR) representation with a parallel
// builder, structural transforms, statistics, and file I/O in the formats
// Ligra and SNAP use.
//
// Node identifiers are uint32 (supports up to ~4.29B nodes); edge counts
// and CSR offsets are int64 so billion-edge graphs index correctly.
package graph

import (
	"fmt"
	"sync/atomic"

	"repro/internal/parallel"
)

// NodeID identifies a vertex. Vertices are dense integers [0, N).
type NodeID = uint32

// Edge is one row of the paper's edge list E ∈ R^{s×3}: source, target,
// weight. Unweighted graphs carry unit weights.
type Edge struct {
	U, V NodeID
	W    float32
}

// EdgeList is the paper's input representation (Algorithm 1 consumes it
// directly). Each logical edge appears exactly once; GEE's kernel applies
// both endpoint updates per row, so undirected graphs need no
// symmetrization at this layer.
type EdgeList struct {
	N     int    // number of vertices
	Edges []Edge // s rows
	// Weighted records whether weights were provided by the source
	// (loader or generator); the W fields are always populated (1 when
	// unweighted).
	Weighted bool
}

// NumEdges returns s.
func (el *EdgeList) NumEdges() int { return len(el.Edges) }

// Validate checks that every endpoint is within [0, N).
func (el *EdgeList) Validate() error {
	if el.N < 0 {
		return fmt.Errorf("graph: negative vertex count %d", el.N)
	}
	n := uint32(el.N)
	for i, e := range el.Edges {
		if e.U >= n || e.V >= n {
			return fmt.Errorf("graph: edge %d (%d->%d) out of range [0,%d)", i, e.U, e.V, el.N)
		}
	}
	return nil
}

// FirstInvalidEdge returns the index of the first edge whose endpoint
// falls outside [0, n), or -1 when every edge is valid. The scan is
// chunked across workers, so validating a large ingest batch is not a
// serial pre-pass in front of a parallel kernel; the reported index is
// the smallest one, matching the serial scan.
func FirstInvalidEdge(workers, n int, edges []Edge) int {
	limit := uint32(n)
	bad := parallel.Reduce(workers, len(edges), len(edges), func(lo, hi int) int {
		for i := lo; i < hi; i++ {
			if edges[i].U >= limit || edges[i].V >= limit {
				return i
			}
		}
		return len(edges)
	}, func(a, b int) int {
		if b < a {
			return b
		}
		return a
	})
	if bad == len(edges) {
		return -1
	}
	return bad
}

// Clone deep-copies the edge list.
func (el *EdgeList) Clone() *EdgeList {
	out := &EdgeList{N: el.N, Weighted: el.Weighted, Edges: make([]Edge, len(el.Edges))}
	copy(out.Edges, el.Edges)
	return out
}

// CSR is a compressed sparse row graph over the out-edges of each vertex:
// the arcs of vertex u are Targets[Offsets[u]:Offsets[u+1]] (and the
// matching Weights range when weighted). This is the representation
// Ligra's edgeMapDense traverses.
type CSR struct {
	N       int
	Offsets []int64   // len N+1
	Targets []NodeID  // len M
	Weights []float32 // len M, nil for unweighted graphs

	// plan caches a derived execution structure on the graph (the
	// destination-shard plan of internal/exec). A CSR is immutable once
	// built except for SortAdjacency/planCache itself, so the cache
	// survives for the graph's lifetime and repeated runs skip the O(m)
	// derivation. Access is atomic; in-place arc mutations must call
	// InvalidatePlan.
	plan atomic.Pointer[planBox]
}

// planBox wraps the cached plan so heterogeneous plan types can share
// the one atomic slot.
type planBox struct{ v any }

// CachePlan stores an opaque derived execution plan on the graph,
// replacing any previous one. The cached value must be safe for
// concurrent use by multiple readers.
func (g *CSR) CachePlan(p any) { g.plan.Store(&planBox{v: p}) }

// CachedPlan returns the plan stored by CachePlan, or nil.
func (g *CSR) CachedPlan() any {
	if b := g.plan.Load(); b != nil {
		return b.v
	}
	return nil
}

// InvalidatePlan drops any cached execution plan. Callers that mutate
// the arc arrays in place (SortAdjacency, external reorderings) must
// invalidate so stale arc orderings are not replayed.
func (g *CSR) InvalidatePlan() { g.plan.Store(nil) }

// NumEdges returns the number of stored arcs.
func (g *CSR) NumEdges() int64 { return int64(len(g.Targets)) }

// Degree returns the out-degree of u.
func (g *CSR) Degree(u NodeID) int64 { return g.Offsets[u+1] - g.Offsets[u] }

// Neighbors returns the adjacency slice of u (aliases internal storage).
func (g *CSR) Neighbors(u NodeID) []NodeID {
	return g.Targets[g.Offsets[u]:g.Offsets[u+1]]
}

// EdgeWeights returns the weight slice of u's arcs, or nil when the graph
// is unweighted (unit weights).
func (g *CSR) EdgeWeights(u NodeID) []float32 {
	if g.Weights == nil {
		return nil
	}
	return g.Weights[g.Offsets[u]:g.Offsets[u+1]]
}

// Weight returns the weight of arc index i (1 for unweighted graphs).
func (g *CSR) Weight(i int64) float32 {
	if g.Weights == nil {
		return 1
	}
	return g.Weights[i]
}

// Validate checks structural invariants: monotone offsets covering
// exactly len(Targets), and in-range targets.
func (g *CSR) Validate() error {
	if len(g.Offsets) != g.N+1 {
		return fmt.Errorf("graph: offsets length %d, want N+1=%d", len(g.Offsets), g.N+1)
	}
	if g.N > 0 && g.Offsets[0] != 0 {
		return fmt.Errorf("graph: offsets[0]=%d, want 0", g.Offsets[0])
	}
	for u := 0; u < g.N; u++ {
		if g.Offsets[u+1] < g.Offsets[u] {
			return fmt.Errorf("graph: offsets not monotone at %d", u)
		}
	}
	if g.N >= 0 && len(g.Offsets) > 0 && g.Offsets[g.N] != int64(len(g.Targets)) {
		return fmt.Errorf("graph: offsets end %d != %d targets", g.Offsets[g.N], len(g.Targets))
	}
	if g.Weights != nil && len(g.Weights) != len(g.Targets) {
		return fmt.Errorf("graph: %d weights for %d targets", len(g.Weights), len(g.Targets))
	}
	n := uint32(g.N)
	for i, v := range g.Targets {
		if v >= n {
			return fmt.Errorf("graph: target %d at arc %d out of range", v, i)
		}
	}
	return nil
}

// BuildCSR constructs the CSR form of el in parallel: a degree histogram,
// an exclusive prefix scan for offsets, then a scatter pass driven by
// per-vertex atomic cursors. workers <= 0 selects GOMAXPROCS.
//
// Arc order within a vertex follows edge-list order up to scatter races;
// call SortAdjacency for a canonical ordering.
func BuildCSR(workers int, el *EdgeList) *CSR {
	n := el.N
	m := len(el.Edges)
	deg := make([]int64, n+1)
	// Degree count. Contention on deg cells is possible but cheap
	// relative to allocating per-worker histograms for large n.
	counts := parallel.Histogram(workers, m, n, func(i int) int { return int(el.Edges[i].U) })
	copy(deg, counts)
	parallel.ExclusiveSum(workers, deg)
	g := &CSR{N: n, Offsets: deg, Targets: make([]NodeID, m)}
	if el.Weighted {
		g.Weights = make([]float32, m)
	}
	cursor := make([]int64, n)
	copy(cursor, deg[:n])
	parallel.ForChunk(workers, m, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			e := el.Edges[i]
			slot := atomicFetchAdd(&cursor[e.U], 1)
			g.Targets[slot] = e.V
			if g.Weights != nil {
				g.Weights[slot] = e.W
			}
		}
	})
	return g
}

// ToEdgeList expands the CSR back to an edge list (arc per row, in CSR
// order).
func (g *CSR) ToEdgeList() *EdgeList {
	el := &EdgeList{N: g.N, Weighted: g.Weights != nil, Edges: make([]Edge, g.NumEdges())}
	for u := 0; u < g.N; u++ {
		lo, hi := g.Offsets[u], g.Offsets[u+1]
		for i := lo; i < hi; i++ {
			el.Edges[i] = Edge{U: NodeID(u), V: g.Targets[i], W: g.Weight(i)}
		}
	}
	return el
}
