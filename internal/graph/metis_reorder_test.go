package graph

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestMETISRoundTrip(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		el := randomEdgeList(40, 300, 61, weighted)
		RemoveSelfLoops(el) // METIS disallows self loops in practice
		if weighted {
			// duplicate (u,v) arcs land in scheduler-dependent slot
			// order; endpoint-determined weights keep the positional
			// comparison below meaningful
			for i := range el.Edges {
				e := &el.Edges[i]
				e.W = float32(e.U%5 + e.V%3 + 1)
			}
		}
		g := BuildCSR(2, Symmetrize(el))
		SortAdjacency(2, g)
		var buf bytes.Buffer
		if err := WriteMETIS(&buf, g); err != nil {
			t.Fatal(err)
		}
		got, err := ReadMETIS(&buf)
		if err != nil {
			t.Fatal(err)
		}
		SortAdjacency(2, got)
		csrEqual(t, g, got)
	}
}

func TestMETISKnownFile(t *testing.T) {
	// the triangle 1-2-3 in METIS's own documentation style
	in := "% a comment\n3 3\n2 3\n1 3\n1 2\n"
	g, err := ReadMETIS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 3 || g.NumEdges() != 6 {
		t.Fatalf("n=%d m=%d", g.N, g.NumEdges())
	}
	SortAdjacency(1, g)
	if g.Neighbors(0)[0] != 1 || g.Neighbors(0)[1] != 2 {
		t.Fatalf("adjacency %v", g.Neighbors(0))
	}
}

func TestMETISErrors(t *testing.T) {
	cases := []string{
		"",
		"x 3\n",
		"3\n",
		"3 3 7\n1 2\n",      // unsupported fmt
		"3 5\n2 3\n1\n1\n",  // declared edges mismatch
		"2 1\n5\n1\n",       // neighbor out of range
		"2 1\n0\n1\n",       // neighbor 0 (1-indexed format)
		"2 1 1\n2\n1 1.0\n", // weighted: odd fields on vertex 1
	}
	for i, c := range cases {
		if _, err := ReadMETIS(strings.NewReader(c)); err == nil {
			t.Fatalf("case %d accepted: %q", i, c)
		}
	}
}

func TestMETISRejectsOddArcCount(t *testing.T) {
	g := BuildCSR(1, &EdgeList{N: 2, Edges: []Edge{{U: 0, V: 1, W: 1}}})
	var buf bytes.Buffer
	if err := WriteMETIS(&buf, g); err == nil {
		t.Fatal("directed (odd-arc) graph accepted")
	}
}

func TestMETISFileHelpers(t *testing.T) {
	dir := t.TempDir()
	el := randomEdgeList(20, 100, 67, false)
	RemoveSelfLoops(el)
	g := BuildCSR(2, Symmetrize(el))
	path := filepath.Join(dir, "g.metis")
	if err := WriteMETISFile(path, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMETISFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumEdges() != g.NumEdges() {
		t.Fatalf("m=%d want %d", got.NumEdges(), g.NumEdges())
	}
	if _, err := ReadMETISFile(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestDegreeOrderHubsFirst(t *testing.T) {
	// star: center must map to position 0
	el := Symmetrize(&EdgeList{N: 5, Edges: []Edge{
		{U: 0, V: 1, W: 1}, {U: 0, V: 2, W: 1}, {U: 0, V: 3, W: 1}, {U: 0, V: 4, W: 1},
	}})
	g := BuildCSR(2, el)
	perm := DegreeOrder(2, g)
	if perm[0] != 0 {
		t.Fatalf("center mapped to %d", perm[0])
	}
	seen := make([]bool, 5)
	for _, p := range perm {
		if seen[p] {
			t.Fatal("not a permutation")
		}
		seen[p] = true
	}
}

func TestBFSOrderContiguity(t *testing.T) {
	// path graph from the highest-degree (interior) vertex: BFS order
	// must be a permutation and neighbors must get nearby new ids
	el := Symmetrize(&EdgeList{N: 6, Edges: []Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 2, V: 3, W: 1},
		{U: 3, V: 4, W: 1}, {U: 4, V: 5, W: 1},
	}})
	g := BuildCSR(2, el)
	perm := BFSOrder(g)
	seen := make([]bool, 6)
	for _, p := range perm {
		if seen[p] {
			t.Fatal("not a permutation")
		}
		seen[p] = true
	}
	// every edge must connect vertices within BFS-level distance in the
	// new ordering (path graph: distance <= 4 trivially; check adjacency
	// gaps are mostly small)
	total := 0
	for u := 0; u < g.N; u++ {
		for _, v := range g.Neighbors(NodeID(u)) {
			d := int(perm[u]) - int(perm[v])
			if d < 0 {
				d = -d
			}
			total += d
		}
	}
	if total > 30 { // path graph BFS order keeps gaps tiny
		t.Fatalf("total adjacency gap %d too large for a path", total)
	}
}

func TestBFSOrderDisconnected(t *testing.T) {
	el := &EdgeList{N: 4, Edges: []Edge{{U: 0, V: 1, W: 1}}}
	g := BuildCSR(1, Symmetrize(el))
	perm := BFSOrder(g)
	seen := make([]bool, 4)
	for _, p := range perm {
		if seen[p] {
			t.Fatal("not a permutation")
		}
		seen[p] = true
	}
}

func TestApplyOrderPreservesStructure(t *testing.T) {
	el := randomEdgeList(30, 200, 71, false)
	g := BuildCSR(2, el)
	perm := DegreeOrder(2, g)
	rg := ApplyOrder(2, g, perm)
	if rg.NumEdges() != g.NumEdges() {
		t.Fatal("edge count changed")
	}
	// degree multiset preserved
	var a, b []int64
	for v := 0; v < g.N; v++ {
		a = append(a, g.Degree(NodeID(v)))
		b = append(b, rg.Degree(NodeID(v)))
	}
	parallel := func(s []int64) {
		for i := 1; i < len(s); i++ {
			for j := i; j > 0 && s[j] < s[j-1]; j-- {
				s[j], s[j-1] = s[j-1], s[j]
			}
		}
	}
	parallel(a)
	parallel(b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("degree multiset changed")
		}
	}
}
