package graph

import (
	"repro/internal/parallel"
	"repro/internal/xrand"
)

// Symmetrize returns an edge list in which every edge {u,v} of el appears
// as both (u,v) and (v,u). Self loops are kept single. Use it to build the
// out-edge CSR of an undirected graph for traversal-style algorithms
// (BFS, label propagation); the GEE kernels do NOT need it because
// Algorithm 1 already applies both endpoint updates per row.
func Symmetrize(el *EdgeList) *EdgeList {
	out := &EdgeList{N: el.N, Weighted: el.Weighted, Edges: make([]Edge, 0, 2*len(el.Edges))}
	for _, e := range el.Edges {
		out.Edges = append(out.Edges, e)
		if e.U != e.V {
			out.Edges = append(out.Edges, Edge{U: e.V, V: e.U, W: e.W})
		}
	}
	return out
}

// RemoveSelfLoops filters u->u edges in place and returns el.
func RemoveSelfLoops(el *EdgeList) *EdgeList {
	kept := el.Edges[:0]
	for _, e := range el.Edges {
		if e.U != e.V {
			kept = append(kept, e)
		}
	}
	el.Edges = kept
	return el
}

// Deduplicate removes duplicate (u,v) arcs, keeping the first occurrence.
// It sorts the edge list as a side effect.
func Deduplicate(workers int, el *EdgeList) *EdgeList {
	if len(el.Edges) == 0 {
		return el
	}
	parallel.SortFunc(workers, el.Edges, func(a, b Edge) bool {
		if a.U != b.U {
			return a.U < b.U
		}
		return a.V < b.V
	})
	kept := el.Edges[:1]
	for _, e := range el.Edges[1:] {
		last := kept[len(kept)-1]
		if e.U != last.U || e.V != last.V {
			kept = append(kept, e)
		}
	}
	el.Edges = kept
	return el
}

// Permute relabels vertices by perm (node i becomes perm[i]) and returns
// a new edge list. Useful for cache-behaviour experiments: a random
// permutation destroys any locality in generated IDs.
func Permute(el *EdgeList, perm []NodeID) *EdgeList {
	out := &EdgeList{N: el.N, Weighted: el.Weighted, Edges: make([]Edge, len(el.Edges))}
	for i, e := range el.Edges {
		out.Edges[i] = Edge{U: perm[e.U], V: perm[e.V], W: e.W}
	}
	return out
}

// RandomPermutation returns a uniform random relabeling of n vertices.
func RandomPermutation(n int, seed uint64) []NodeID {
	r := xrand.New(seed)
	p := make([]NodeID, n)
	for i := range p {
		p[i] = NodeID(i)
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// SortAdjacency sorts each vertex's adjacency (and matching weights) by
// target id, giving the CSR a canonical form independent of scatter
// interleaving.
func SortAdjacency(workers int, g *CSR) {
	g.InvalidatePlan() // arc order changes; any cached plan is stale
	parallel.For(workers, g.N, func(u int) {
		lo, hi := g.Offsets[u], g.Offsets[u+1]
		if hi-lo < 2 {
			return
		}
		if g.Weights == nil {
			insertionSortIDs(g.Targets[lo:hi])
			return
		}
		insertionSortPairs(g.Targets[lo:hi], g.Weights[lo:hi])
	})
}

// insertionSortIDs sorts small adjacency slices; vertex degrees in the
// benchmark graphs are modest per-list, and insertion sort avoids
// interface overhead in this hot path.
func insertionSortIDs(a []NodeID) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

func insertionSortPairs(a []NodeID, w []float32) {
	for i := 1; i < len(a); i++ {
		v, vw := a[i], w[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1], w[j+1] = a[j], w[j]
			j--
		}
		a[j+1], w[j+1] = v, vw
	}
}

// Transpose returns the in-edge CSR (reverse of every arc).
func Transpose(workers int, g *CSR) *CSR {
	el := &EdgeList{N: g.N, Weighted: g.Weights != nil, Edges: make([]Edge, g.NumEdges())}
	parallel.For(workers, g.N, func(u int) {
		lo, hi := g.Offsets[u], g.Offsets[u+1]
		for i := lo; i < hi; i++ {
			el.Edges[i] = Edge{U: g.Targets[i], V: NodeID(u), W: g.Weight(i)}
		}
	})
	return BuildCSR(workers, el)
}
