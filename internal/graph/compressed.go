package graph

import (
	"encoding/binary"
	"fmt"

	"repro/internal/parallel"
)

// CompressedCSR is a Ligra+-style byte-compressed adjacency structure:
// each vertex's neighbor list is stored sorted and delta-encoded with
// varints (first neighbor as a zig-zag delta from the vertex id, the
// rest as gaps). For social graphs this cuts adjacency memory by ~2-4x
// at the cost of decode work per traversal — the memory/compute trade
// the paper's "memory efficiency" discussion lives in; the benchmark
// suite compares traversal speed against the plain CSR.
//
// Weighted graphs are not compressed (weights dominate the footprint).
type CompressedCSR struct {
	N       int
	Offsets []int64 // byte offset of each vertex's encoded list; len N+1
	Data    []byte  // varint stream
	m       int64
}

// Compress builds the compressed form of g. Adjacency lists are sorted
// as a side effect of encoding (gaps require order); g itself is not
// modified. Returns an error for weighted graphs.
func Compress(workers int, g *CSR) (*CompressedCSR, error) {
	if g.Weights != nil {
		return nil, fmt.Errorf("graph: cannot compress weighted graphs")
	}
	n := g.N
	// encode each vertex independently into a private buffer, then
	// concatenate with a prefix scan over lengths
	bufs := make([][]byte, n)
	parallel.For(workers, n, func(u int) {
		nbrs := append([]NodeID(nil), g.Neighbors(NodeID(u))...)
		insertionSortIDs(nbrs)
		var buf []byte
		prev := int64(-1)
		for i, v := range nbrs {
			var delta uint64
			if i == 0 {
				// zig-zag of (v - u): first neighbor can precede u
				d := int64(v) - int64(u)
				delta = uint64((d << 1) ^ (d >> 63))
			} else {
				delta = uint64(int64(v) - prev) // sorted: non-negative gap
			}
			prev = int64(v)
			buf = binary.AppendUvarint(buf, delta)
		}
		bufs[u] = buf
	})
	lengths := make([]int64, n+1)
	for u := 0; u < n; u++ {
		lengths[u] = int64(len(bufs[u]))
	}
	total := parallel.ExclusiveSum(workers, lengths)
	out := &CompressedCSR{N: n, Offsets: lengths, Data: make([]byte, total), m: g.NumEdges()}
	parallel.For(workers, n, func(u int) {
		copy(out.Data[out.Offsets[u]:], bufs[u])
	})
	return out, nil
}

// NumEdges returns the number of encoded arcs.
func (c *CompressedCSR) NumEdges() int64 { return c.m }

// Bytes returns the adjacency payload size (excluding offsets).
func (c *CompressedCSR) Bytes() int64 { return int64(len(c.Data)) }

// Decode appends vertex u's neighbors (sorted) to dst and returns it.
func (c *CompressedCSR) Decode(u NodeID, dst []NodeID) []NodeID {
	data := c.Data[c.Offsets[u]:c.Offsets[u+1]]
	prev := int64(0)
	first := true
	for len(data) > 0 {
		delta, k := binary.Uvarint(data)
		if k <= 0 {
			panic("graph: corrupt compressed adjacency")
		}
		data = data[k:]
		var v int64
		if first {
			d := int64(delta>>1) ^ -int64(delta&1) // un-zig-zag
			v = int64(u) + d
			first = false
		} else {
			v = prev + int64(delta)
		}
		prev = v
		dst = append(dst, NodeID(v))
	}
	return dst
}

// ForEachNeighbor streams vertex u's neighbors without allocating.
func (c *CompressedCSR) ForEachNeighbor(u NodeID, fn func(v NodeID)) {
	data := c.Data[c.Offsets[u]:c.Offsets[u+1]]
	prev := int64(0)
	first := true
	for len(data) > 0 {
		delta, k := binary.Uvarint(data)
		if k <= 0 {
			panic("graph: corrupt compressed adjacency")
		}
		data = data[k:]
		var v int64
		if first {
			d := int64(delta>>1) ^ -int64(delta&1)
			v = int64(u) + d
			first = false
		} else {
			v = prev + int64(delta)
		}
		prev = v
		fn(NodeID(v))
	}
}

// ProcessEdges traverses every arc in parallel (dense schedule: one task
// per vertex, sequential within a list) — the compressed counterpart of
// the engine's edge map fast path, used by the compression benchmarks.
func (c *CompressedCSR) ProcessEdges(workers int, fn func(u, v NodeID)) {
	parallel.ForChunk(workers, c.N, 0, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			c.ForEachNeighbor(NodeID(u), func(v NodeID) { fn(NodeID(u), v) })
		}
	})
}

// Decompress reconstructs the plain CSR (adjacency sorted).
func (c *CompressedCSR) Decompress(workers int) *CSR {
	degrees := make([]int64, c.N+1)
	parallel.For(workers, c.N, func(u int) {
		count := int64(0)
		c.ForEachNeighbor(NodeID(u), func(NodeID) { count++ })
		degrees[u] = count
	})
	m := parallel.ExclusiveSum(workers, degrees)
	g := &CSR{N: c.N, Offsets: degrees, Targets: make([]NodeID, m)}
	parallel.For(workers, c.N, func(u int) {
		i := g.Offsets[u]
		c.ForEachNeighbor(NodeID(u), func(v NodeID) {
			g.Targets[i] = v
			i++
		})
	})
	return g
}
