package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/dyn"
	"repro/internal/graph"
	"repro/internal/labels"
)

func newEmbedder(t *testing.T, n, k int, opts dyn.Options) *dyn.DynamicEmbedder {
	t.Helper()
	if opts.K == 0 {
		opts.K = k
	}
	d, err := dyn.New(n, labels.Full(n, k, 11), opts)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestCoalescerBackpressure fills the bounded queue of an idle
// coalescer and checks the overflow is rejected, then starts the loop
// and checks the queued requests drain with published acks.
func TestCoalescerBackpressure(t *testing.T) {
	d := newEmbedder(t, 10, 2, dyn.Options{})
	c := NewCoalescer(d, CoalescerOptions{QueueCap: 2, MaxDelay: time.Millisecond})
	mk := func(u, v uint32) dyn.Batch {
		return dyn.Batch{Insert: []graph.Edge{{U: u, V: v, W: 1}}}
	}
	ack1, err := c.Submit(mk(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	ack2, err := c.Submit(mk(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(mk(4, 5)); err != ErrBacklog {
		t.Fatalf("overflow submit: %v, want ErrBacklog", err)
	}
	if st := c.Stats(); st.Rejected != 1 || st.Requests != 2 {
		t.Fatalf("stats before start: %+v", st)
	}
	c.Start()
	for i, ack := range []<-chan Ack{ack1, ack2} {
		a := <-ack
		if a.Err != nil {
			t.Fatalf("ack %d: %v", i, a.Err)
		}
		if a.Epoch == 0 {
			t.Fatalf("ack %d carries the unpublished epoch 0", i)
		}
	}
	if got := d.Snapshot().Edges; got != 2 {
		t.Fatalf("%d live edges after drain, want 2", got)
	}
	c.Close()
	if _, err := c.Submit(mk(6, 7)); err != ErrClosed {
		t.Fatalf("submit after close: %v, want ErrClosed", err)
	}
}

// TestCoalescerReplayIsolatesOffenders merges a bad request (deleting
// an edge that is not live) with good ones; the merged batch fails and
// the replay must fail only the offender.
func TestCoalescerReplayIsolatesOffenders(t *testing.T) {
	d := newEmbedder(t, 10, 2, dyn.Options{})
	c := NewCoalescer(d, CoalescerOptions{MaxDelay: 50 * time.Millisecond})
	good1, err := c.Submit(dyn.Batch{Insert: []graph.Edge{{U: 0, V: 1, W: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	bad, err := c.Submit(dyn.Batch{Delete: []graph.Edge{{U: 8, V: 9, W: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	good2, err := c.Submit(dyn.Batch{Insert: []graph.Edge{{U: 2, V: 3, W: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	if a := <-good1; a.Err != nil {
		t.Fatalf("good1 failed: %v", a.Err)
	}
	if a := <-bad; a.Err == nil {
		t.Fatal("bad delete acked")
	}
	if a := <-good2; a.Err != nil {
		t.Fatalf("good2 failed: %v", a.Err)
	}
	if st := c.Stats(); st.Replays != 3 {
		t.Fatalf("replays = %d, want 3", st.Replays)
	}
	if got := d.Snapshot().Edges; got != 2 {
		t.Fatalf("%d live edges, want 2", got)
	}
	c.Close()
}

// TestServerBackpressureHTTP drives the 429 path end to end: with an
// idle coalescer and QueueCap 1, a second concurrent POST is refused
// with Too Many Requests and a Retry-After header.
func TestServerBackpressureHTTP(t *testing.T) {
	d := newEmbedder(t, 10, 2, dyn.Options{})
	s := newServer(d, Options{Coalescer: CoalescerOptions{QueueCap: 1}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func() *http.Response {
		resp, err := http.Post(ts.URL+"/v1/edges", "application/json",
			strings.NewReader(`{"edges":[{"u":0,"v":1}]}`))
		if err != nil {
			t.Error(err)
			return nil
		}
		return resp
	}
	first := make(chan *http.Response, 1)
	go func() { first <- post() }()
	// Wait until the first request occupies the queue slot.
	for i := 0; ; i++ {
		if s.co.Stats().Requests == 1 {
			break
		}
		if i > 2000 {
			t.Fatal("first request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	resp := post()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow POST: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	var e ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
		t.Fatalf("429 body: %v %+v", err, e)
	}
	resp.Body.Close()

	s.co.Start()
	if resp := <-first; resp != nil {
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("queued POST: status %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// After shutdown the coalescer refuses: the handler answers 503.
	resp = post()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post after shutdown: status %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()
}
