package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dyn"
	"repro/internal/graph"
	"repro/internal/labels"
)

func newEmbedder(t *testing.T, n, k int, opts dyn.Options) *dyn.DynamicEmbedder {
	t.Helper()
	if opts.K == 0 {
		opts.K = k
	}
	d, err := dyn.New(n, labels.Full(n, k, 11), opts)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestCoalescerBackpressure fills the bounded queue of an idle
// coalescer and checks the overflow is rejected, then starts the loop
// and checks the queued requests drain with published acks.
func TestCoalescerBackpressure(t *testing.T) {
	d := newEmbedder(t, 10, 2, dyn.Options{})
	c := NewCoalescer(d, CoalescerOptions{QueueCap: 2, MaxDelay: time.Millisecond})
	mk := func(u, v uint32) dyn.Batch {
		return dyn.Batch{Insert: []graph.Edge{{U: u, V: v, W: 1}}}
	}
	ack1, err := c.Submit(mk(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	ack2, err := c.Submit(mk(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(mk(4, 5)); err != ErrBacklog {
		t.Fatalf("overflow submit: %v, want ErrBacklog", err)
	}
	if st := c.Stats(); st.Rejected != 1 || st.Requests != 2 {
		t.Fatalf("stats before start: %+v", st)
	}
	c.Start()
	for i, ack := range []<-chan Ack{ack1, ack2} {
		a := <-ack
		if a.Err != nil {
			t.Fatalf("ack %d: %v", i, a.Err)
		}
		if a.Epoch == 0 {
			t.Fatalf("ack %d carries the unpublished epoch 0", i)
		}
	}
	if got := d.Snapshot().Edges; got != 2 {
		t.Fatalf("%d live edges after drain, want 2", got)
	}
	c.Close()
	if _, err := c.Submit(mk(6, 7)); err != ErrClosed {
		t.Fatalf("submit after close: %v, want ErrClosed", err)
	}
}

// TestCoalescerReplayIsolatesOffenders merges a bad request (deleting
// an edge that is not live) with good ones; the merged batch fails and
// the replay must fail only the offender.
func TestCoalescerReplayIsolatesOffenders(t *testing.T) {
	d := newEmbedder(t, 10, 2, dyn.Options{})
	c := NewCoalescer(d, CoalescerOptions{MaxDelay: 50 * time.Millisecond})
	good1, err := c.Submit(dyn.Batch{Insert: []graph.Edge{{U: 0, V: 1, W: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	bad, err := c.Submit(dyn.Batch{Delete: []graph.Edge{{U: 8, V: 9, W: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	good2, err := c.Submit(dyn.Batch{Insert: []graph.Edge{{U: 2, V: 3, W: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	if a := <-good1; a.Err != nil {
		t.Fatalf("good1 failed: %v", a.Err)
	}
	if a := <-bad; a.Err == nil {
		t.Fatal("bad delete acked")
	}
	if a := <-good2; a.Err != nil {
		t.Fatalf("good2 failed: %v", a.Err)
	}
	if st := c.Stats(); st.Replays != 3 {
		t.Fatalf("replays = %d, want 3", st.Replays)
	}
	if got := d.Snapshot().Edges; got != 2 {
		t.Fatalf("%d live edges, want 2", got)
	}
	c.Close()
}

// TestCoalescerAllReplaysFail covers the settle path when an entire
// merged micro-batch is invalid: every replay fails, every requester
// gets an error ack (nobody hangs waiting for a publish that will
// never cover them), and the coalescer keeps serving afterwards.
func TestCoalescerAllReplaysFail(t *testing.T) {
	d := newEmbedder(t, 10, 2, dyn.Options{})
	c := NewCoalescer(d, CoalescerOptions{MaxDelay: 50 * time.Millisecond})
	// Three deletes of never-inserted edges, queued while idle so they
	// merge into one batch.
	var acks []<-chan Ack
	for i := uint32(0); i < 3; i++ {
		ack, err := c.Submit(dyn.Batch{Delete: []graph.Edge{{U: 2 * i, V: 2*i + 1, W: 1}}})
		if err != nil {
			t.Fatal(err)
		}
		acks = append(acks, ack)
	}
	c.Start()
	for i, ack := range acks {
		if a := <-ack; a.Err == nil {
			t.Fatalf("bad delete %d acked without error", i)
		}
	}
	if st := c.Stats(); st.Replays != 3 || st.Flushes != 1 {
		t.Fatalf("stats after all-fail batch: %+v", st)
	}
	if got := d.Snapshot().Edges; got != 0 {
		t.Fatalf("failed batch left %d live edges", got)
	}
	// The loop is healthy: a good request still lands and acks.
	ack, err := c.Submit(dyn.Batch{Insert: []graph.Edge{{U: 0, V: 1, W: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if a := <-ack; a.Err != nil || a.Epoch == 0 {
		t.Fatalf("good request after all-fail batch: %+v", a)
	}
	c.Close()
}

// TestCoalescerSubmitCloseRace races concurrent Submits against Close
// (run with -race): every accepted request must receive exactly one
// ack — Close drains the queue, never strands a caller — and Submits
// losing the race fail with ErrClosed, not a panic on a closed
// channel.
func TestCoalescerSubmitCloseRace(t *testing.T) {
	d := newEmbedder(t, 100, 2, dyn.Options{PublishEvery: 32})
	c := NewCoalescer(d, CoalescerOptions{MaxDelay: time.Millisecond, QueueCap: 64})
	c.Start()
	const writers = 8
	var accepted, acked, refused atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			<-start
			for i := 0; i < 200; i++ {
				u := uint32((id*200 + i) % 99)
				ack, err := c.Submit(dyn.Batch{Insert: []graph.Edge{{U: u, V: u + 1, W: 1}}})
				switch err {
				case nil:
					accepted.Add(1)
					if a := <-ack; a.Err != nil {
						t.Errorf("accepted insert failed: %v", a.Err)
					}
					acked.Add(1)
				case ErrClosed, ErrBacklog:
					refused.Add(1)
				default:
					t.Errorf("submit: %v", err)
				}
			}
		}(w)
	}
	close(start)
	time.Sleep(2 * time.Millisecond)
	c.Close()
	wg.Wait()
	if accepted.Load() != acked.Load() {
		t.Fatalf("%d accepted but %d acked: Close stranded callers", accepted.Load(), acked.Load())
	}
	if accepted.Load() != d.Stats().Inserts {
		t.Fatalf("%d accepted inserts but embedder applied %d", accepted.Load(), d.Stats().Inserts)
	}
	if _, err := c.Submit(dyn.Batch{Insert: []graph.Edge{{U: 0, V: 1, W: 1}}}); err != ErrClosed {
		t.Fatalf("submit after close: %v, want ErrClosed", err)
	}
	t.Logf("accepted %d, refused %d", accepted.Load(), refused.Load())
}

// TestCoalescerAckEpochMonotonic locks in the invariant the delta ring
// (and every replica riding on ack epochs) depends on: across
// sequential requests, ack epochs never go backwards, are never the
// unpublished epoch 0, and the final published epoch covers the last
// ack — under both the PublishEvery op-count policy (publishes from
// inside Apply) and the settle-on-idle policy (publishes from the
// coalescer).
func TestCoalescerAckEpochMonotonic(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts dyn.Options
	}{
		{"publish-every-16", dyn.Options{PublishEvery: 16}},
		{"settle-only", dyn.Options{PublishEvery: 1 << 30}},
		{"publish-per-batch", dyn.Options{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			d := newEmbedder(t, 200, 2, tc.opts)
			c := NewCoalescer(d, CoalescerOptions{MaxDelay: time.Millisecond})
			c.Start()
			defer c.Close()
			var last uint64
			for i := 0; i < 60; i++ {
				u := uint32(i % 99)
				ack, err := c.Submit(dyn.Batch{Insert: []graph.Edge{{U: 2 * u, V: 2*u + 1, W: 1}}})
				if err != nil {
					t.Fatal(err)
				}
				a := <-ack
				if a.Err != nil {
					t.Fatal(a.Err)
				}
				if a.Epoch == 0 {
					t.Fatalf("request %d acked at the unpublished epoch 0", i)
				}
				if a.Epoch < last {
					t.Fatalf("ack epoch went backwards: %d after %d", a.Epoch, last)
				}
				// Read-your-writes: the published snapshot at or after
				// the ack epoch reflects the insert (edge count grows
				// monotonically in this workload).
				if snap := d.Snapshot(); snap.Epoch < a.Epoch || snap.Edges < int64(i+1) {
					t.Fatalf("request %d: ack epoch %d not covered by snapshot (%d, %d edges)",
						i, a.Epoch, snap.Epoch, snap.Edges)
				}
				last = a.Epoch
			}
			if d.Epoch() < last {
				t.Fatalf("final epoch %d below last ack %d", d.Epoch(), last)
			}
		})
	}
}

// TestServerBackpressureHTTP drives the 429 path end to end: with an
// idle coalescer and QueueCap 1, a second concurrent POST is refused
// with Too Many Requests and a Retry-After header.
func TestServerBackpressureHTTP(t *testing.T) {
	d := newEmbedder(t, 10, 2, dyn.Options{})
	s := newServer(d, Options{Coalescer: CoalescerOptions{QueueCap: 1}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func() *http.Response {
		resp, err := http.Post(ts.URL+"/v1/edges", "application/json",
			strings.NewReader(`{"edges":[{"u":0,"v":1}]}`))
		if err != nil {
			t.Error(err)
			return nil
		}
		return resp
	}
	first := make(chan *http.Response, 1)
	go func() { first <- post() }()
	// Wait until the first request occupies the queue slot.
	for i := 0; ; i++ {
		if s.co.Stats().Requests == 1 {
			break
		}
		if i > 2000 {
			t.Fatal("first request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	resp := post()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow POST: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	var e ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
		t.Fatalf("429 body: %v %+v", err, e)
	}
	resp.Body.Close()

	s.co.Start()
	if resp := <-first; resp != nil {
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("queued POST: status %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// After shutdown the coalescer refuses: the handler answers 503.
	resp = post()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post after shutdown: status %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()
}
