package server

import (
	"bytes"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dyn"
	"repro/internal/graph"
	"repro/internal/metrics"
)

// TestRetryAfterSeconds pins the derived-backoff contract at the three
// interesting queue states: an empty queue advises the minimum, a
// half-full queue scales with the observed drain rate, and a full queue
// against a slow drain clamps at the maximum.
func TestRetryAfterSeconds(t *testing.T) {
	const cap = 1024
	cases := []struct {
		name  string
		depth int
		rate  float64
		want  int
	}{
		{"empty queue", 0, 100, 1},
		{"empty queue, no rate yet", 0, 0, 1},
		{"half queue", cap / 2, 100, 6}, // ceil(512/100)
		{"half queue, fast drain", cap / 2, 10_000, 1},
		{"full queue", cap, 100, 11}, // ceil(1024/100)
		{"full queue, slow drain", cap, 10, 30},
		{"full queue, no rate yet", cap, 0, 30},
		{"full queue, stalled", cap, -1, 30},
	}
	for _, c := range cases {
		if got := retryAfterSeconds(c.depth, c.rate); got != c.want {
			t.Errorf("%s: retryAfterSeconds(%d, %g) = %d, want %d",
				c.name, c.depth, c.rate, got, c.want)
		}
	}
}

// TestCoalescerRetryAfterLive checks the wired path: a cold coalescer
// advises conservatively for a non-empty queue, and after real traffic
// the drain-rate EWMA is populated so the hint derives from it.
func TestCoalescerRetryAfterLive(t *testing.T) {
	d := newEmbedder(t, 64, 4, dyn.Options{})
	co := NewCoalescer(d, CoalescerOptions{MaxDelay: time.Millisecond})
	if got := co.RetryAfter(); got != 1 {
		t.Fatalf("idle cold coalescer advises %d, want 1", got)
	}
	co.Start()
	for i := 0; i < 8; i++ {
		ack, err := co.Submit(dyn.Batch{Insert: []graph.Edge{{U: graph.NodeID(i), V: graph.NodeID(i + 1), W: 1}}})
		if err != nil {
			t.Fatal(err)
		}
		<-ack
	}
	co.Close()
	if rate := co.RetryAfter(); rate < 1 || rate > 30 {
		t.Fatalf("RetryAfter() = %d outside [1,30]", rate)
	}
}

// TestStatsConsistentUnderConcurrentScrape is the /statsz regression
// test (run under -race in CI): counters scraped while writers hammer
// Submit must always satisfy the cross-counter invariants — Ops ≥
// Requests (every accepted request carries at least one op), and
// Coalesced/Flushes never exceed Requests. The seed code incremented
// requests before ops and loaded the counters in an order that let a
// scrape observe a request without its ops.
func TestStatsConsistentUnderConcurrentScrape(t *testing.T) {
	d := newEmbedder(t, 4096, 4, dyn.Options{PublishEvery: 256})
	co := NewCoalescer(d, CoalescerOptions{MaxBatch: 512, MaxDelay: 500 * time.Microsecond})
	co.Start()
	defer co.Close()

	const writers, perWriter = 4, 200
	stop := make(chan struct{})
	var scrapeWG sync.WaitGroup
	for s := 0; s < 2; s++ {
		scrapeWG.Add(1)
		go func() {
			defer scrapeWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := co.Stats()
				if st.Ops < st.Requests {
					t.Errorf("scrape saw Ops %d < Requests %d", st.Ops, st.Requests)
					return
				}
				if st.Coalesced > st.Requests {
					t.Errorf("scrape saw Coalesced %d > Requests %d", st.Coalesced, st.Requests)
					return
				}
				if st.Flushes > st.Requests {
					t.Errorf("scrape saw Flushes %d > Requests %d", st.Flushes, st.Requests)
					return
				}
			}
		}()
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				u := graph.NodeID((w*perWriter + i) * 2 % 4094)
				ack, err := co.Submit(dyn.Batch{Insert: []graph.Edge{{U: u, V: u + 1, W: 1}}})
				if err == ErrBacklog {
					continue
				}
				if err != nil {
					t.Error(err)
					return
				}
				<-ack
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	scrapeWG.Wait()
}

// TestStatszContentType pins the /statsz response header: the seed's
// handler went through writeJSON, but the header is part of the
// endpoint's contract and deserves its own assertion.
func TestStatszContentType(t *testing.T) {
	d := newEmbedder(t, 16, 2, dyn.Options{})
	s := New(d, Options{})
	defer s.Close()
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/statsz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/statsz status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("/statsz Content-Type %q, want application/json", ct)
	}
}

// TestMetricsEndpoint drives real traffic through the server and then
// checks the exposition: parseable text format, request counters for
// the exercised routes, latency histogram children, and the coalescer
// queue-depth gauge.
func TestMetricsEndpoint(t *testing.T) {
	d := newEmbedder(t, 64, 4, dyn.Options{})
	s := New(d, Options{})
	defer s.Close()
	h := s.Handler()

	post := func(path, body string) int {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("POST", path, strings.NewReader(body))
		h.ServeHTTP(rec, req)
		return rec.Code
	}
	if code := post("/v1/edges", `{"edges":[{"u":1,"v":2}]}`); code != http.StatusOK {
		t.Fatalf("insert status %d", code)
	}
	if code := post("/v1/neighbors", `{"v":1,"k":3}`); code != http.StatusOK {
		t.Fatalf("neighbors status %d", code)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/embedding/1", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("embedding status %d", rec.Code)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics Content-Type %q", ct)
	}
	samples, err := metrics.ParseText(rec.Body)
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	find := func(name string, match map[string]string) (float64, bool) {
	next:
		for _, sm := range samples {
			if sm.Name != name {
				continue
			}
			for k, v := range match {
				if sm.Labels[k] != v {
					continue next
				}
			}
			return sm.Value, true
		}
		return 0, false
	}
	for _, route := range []string{"POST /v1/edges", "POST /v1/neighbors", "GET /v1/embedding/{v}"} {
		v, ok := find("gee_http_requests_total", map[string]string{"route": route, "code": "200"})
		if !ok || v < 1 {
			t.Errorf("no 200 request counter for route %q (found=%v value=%g)", route, ok, v)
		}
		v, ok = find("gee_http_request_seconds_count", map[string]string{"route": route})
		if !ok || v < 1 {
			t.Errorf("no latency histogram for route %q (found=%v value=%g)", route, ok, v)
		}
	}
	if _, ok := find("gee_coalescer_queue_depth", nil); !ok {
		t.Error("gee_coalescer_queue_depth gauge missing")
	}
	if v, ok := find("gee_coalescer_requests_total", nil); !ok || v < 1 {
		t.Errorf("gee_coalescer_requests_total = %g (found=%v), want >= 1", v, ok)
	}
	if v, ok := find("gee_dyn_publish_seconds_count", nil); !ok || v < 1 {
		t.Errorf("gee_dyn_publish_seconds_count = %g (found=%v), want >= 1", v, ok)
	}
	// The mutation wrote one micro-batch: the wire-format split must
	// attribute its JSON response bytes to wire="json".
	if v, ok := find("gee_http_response_bytes_count", map[string]string{"route": "POST /v1/edges", "wire": "json"}); !ok || v < 1 {
		t.Errorf("response bytes by wire format missing (found=%v value=%g)", ok, v)
	}
}

// TestPprofGating checks the default-off contract: /debug/pprof/ serves
// nothing unless Options.EnablePprof is set.
func TestPprofGating(t *testing.T) {
	d := newEmbedder(t, 16, 2, dyn.Options{})
	off := New(d, Options{})
	defer off.Close()
	rec := httptest.NewRecorder()
	off.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("pprof served %d with EnablePprof unset, want 404", rec.Code)
	}

	d2 := newEmbedder(t, 16, 2, dyn.Options{})
	on := New(d2, Options{EnablePprof: true})
	defer on.Close()
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/goroutine?debug=1"} {
		rec := httptest.NewRecorder()
		on.Handler().ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("pprof %s served %d with EnablePprof set, want 200", path, rec.Code)
		}
		if b, _ := io.ReadAll(rec.Body); len(b) == 0 {
			t.Fatalf("pprof %s served an empty body", path)
		}
	}
}

// TestSlowRequestTrace sets a zero-distance threshold so every request
// is "slow" and checks the trace line carries the documented fields.
func TestSlowRequestTrace(t *testing.T) {
	d := newEmbedder(t, 16, 2, dyn.Options{})
	var buf bytes.Buffer
	var mu sync.Mutex
	lg := log.New(syncWriter{&mu, &buf}, "", 0)
	s := New(d, Options{SlowRequestThreshold: time.Nanosecond, SlowRequestLog: lg})
	defer s.Close()

	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/v1/edges", strings.NewReader(`{"edges":[{"u":1,"v":2}]}`))
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("insert status %d", rec.Code)
	}
	mu.Lock()
	line := buf.String()
	mu.Unlock()
	for _, field := range []string{
		"slow-request", "id=", "method=POST", "path=/v1/edges",
		"status=200", "vertices=1", "epoch=", "dur=",
	} {
		if !strings.Contains(line, field) {
			t.Errorf("trace line %q missing %q", line, field)
		}
	}
	if strings.Contains(line, "epoch=-") {
		t.Errorf("acked mutation trace has no epoch: %q", line)
	}
}

// syncWriter serializes the slow-request logger's writes against the
// test's read (the handler runs on the test goroutine here, but the
// logger contract does not promise that).
type syncWriter struct {
	mu *sync.Mutex
	w  io.Writer
}

func (s syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}
