package server

import (
	"context"
	"errors"
	"net/http"
	"testing"

	"repro/internal/dyn"
	"repro/internal/graph"
	"repro/internal/labels"
	"repro/internal/xrand"
)

var errConnClosed = errors.New("simulated client disconnect")

// brokenPipeWriter accepts `limit` bytes and then fails every write —
// what an http.ResponseWriter does once the client has closed the
// connection mid-stream.
type brokenPipeWriter struct {
	h         http.Header
	limit     int
	total     int
	failed    bool
	afterFail int // writes attempted after the first failure
}

func (f *brokenPipeWriter) Header() http.Header {
	if f.h == nil {
		f.h = http.Header{}
	}
	return f.h
}
func (f *brokenPipeWriter) WriteHeader(int) {}
func (f *brokenPipeWriter) Write(p []byte) (int, error) {
	if f.failed {
		f.afterFail++
		return 0, errConnClosed
	}
	if f.total+len(p) > f.limit {
		f.failed = true
		return 0, errConnClosed
	}
	f.total += len(p)
	return len(p), nil
}

// cancelAfterWriter accepts writes but cancels the request context
// once `limit` bytes have passed — the disconnect signal the server
// sees before any write has had a chance to fail.
type cancelAfterWriter struct {
	limit  int
	total  int
	cancel context.CancelFunc
}

func (c *cancelAfterWriter) Write(p []byte) (int, error) {
	c.total += len(p)
	if c.total > c.limit {
		c.cancel()
	}
	return len(p), nil
}

// bigSnapshot builds a published snapshot large enough that its stream
// spans many bufio flushes.
func bigSnapshot(t *testing.T, n, k int) *dyn.Snapshot {
	t.Helper()
	d, err := dyn.New(n, labels.Full(n, k, 171), dyn.Options{K: k, ManualPublish: true})
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(173)
	edges := make([]graph.Edge, 4*n)
	for i := range edges {
		edges[i] = graph.Edge{U: graph.NodeID(r.Intn(n)), V: graph.NodeID(r.Intn(n)), W: 1}
	}
	if err := d.AddEdges(edges); err != nil {
		t.Fatal(err)
	}
	return d.Publish()
}

// TestStreamSnapshotAbortsOnWriteError is the regression test for the
// discarded-write-error bug: once the client's connection is gone, the
// stream must stop within one abort-check window instead of formatting
// (and throwing away) the remaining O(nK) rows.
func TestStreamSnapshotAbortsOnWriteError(t *testing.T) {
	const n, k = 20000, 8
	snap := bigSnapshot(t, n, k)
	fw := &brokenPipeWriter{limit: 60_000}
	rows := streamSnapshot(newStreamer(fw, context.Background()), snap)
	if rows == n {
		t.Fatalf("stream ran to completion (%d rows) over a broken pipe", rows)
	}
	// The 64 KiB buffer fails its first flush around row ~4000; the
	// abort check fires within abortCheckEvery rows of that.
	if rows > 8000 {
		t.Fatalf("streamed %d rows after the pipe broke (abort too late)", rows)
	}
	if fw.afterFail > 1 {
		t.Fatalf("%d writes attempted after the connection failed", fw.afterFail)
	}
}

// TestStreamSnapshotAbortsOnCancel covers the other disconnect signal:
// the request context is cancelled while rows are still being
// formatted (no write has failed yet because the buffer absorbed
// them). The stream must notice between row chunks.
func TestStreamSnapshotAbortsOnCancel(t *testing.T) {
	const n, k = 20000, 8
	snap := bigSnapshot(t, n, k)
	ctx, cancel := context.WithCancel(context.Background())
	cw := &cancelAfterWriter{limit: 100_000, cancel: cancel}
	rows := streamSnapshot(newStreamer(cw, ctx), snap)
	if rows == n {
		t.Fatalf("stream ran to completion (%d rows) past a cancelled request", rows)
	}
	if rows > 10000 {
		t.Fatalf("streamed %d rows after cancellation (abort too late)", rows)
	}
	// An already-dead request produces (next to) nothing.
	cancelled, cancel2 := context.WithCancel(context.Background())
	cancel2()
	fw := &brokenPipeWriter{limit: 1 << 30}
	if rows := streamSnapshot(newStreamer(fw, cancelled), snap); rows != 0 {
		t.Fatalf("dead request still streamed %d rows", rows)
	}
	if fw.total > 4096 {
		t.Fatalf("dead request still wrote %d bytes", fw.total)
	}
}

// TestStreamDeltaAbortsOnWriteError gives the delta stream the same
// guarantee as the snapshot stream.
func TestStreamDeltaAbortsOnWriteError(t *testing.T) {
	const n, k = 20000, 8
	d, err := dyn.New(n, labels.Full(n, k, 177), dyn.Options{K: k})
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(179)
	// n/4 edges draw n/2 endpoints with collisions: a wide dirty set
	// that still stays under the full-promotion threshold (n/2 rows).
	edges := make([]graph.Edge, n/4)
	for i := range edges {
		edges[i] = graph.Edge{U: graph.NodeID(r.Intn(n)), V: graph.NodeID(r.Intn(n)), W: 1}
	}
	if err := d.AddEdges(edges); err != nil {
		t.Fatal(err)
	}
	dl := d.Delta(0)
	if dl.Resync || len(dl.Rows) < 4000 {
		t.Fatalf("workload did not produce a wide row delta: resync=%v rows=%d", dl.Resync, len(dl.Rows))
	}
	fw := &brokenPipeWriter{limit: 60_000}
	rows := streamDelta(newStreamer(fw, context.Background()), dl, k)
	if rows == len(dl.Rows) {
		t.Fatal("delta stream ran to completion over a broken pipe")
	}
	if fw.afterFail > 1 {
		t.Fatalf("%d writes attempted after the connection failed", fw.afterFail)
	}
}
