package server

import (
	"fmt"
	"math"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/cluster"
	"repro/internal/dyn"
	"repro/internal/graph"
	"repro/internal/labels"
	"repro/internal/metrics"
	"repro/internal/shard"
	"repro/internal/trace"
)

// router is the sharded backend: a scatter-gather front over N
// vertex-partitioned shards, each owning one embedder and one ingest
// coalescer. Writes split by edge endpoint (a cut edge is delivered to
// both owners, each folding the full edge but publishing only its owned
// row; labels broadcast so global class counts stay exact), and the
// scattered enqueue is all-or-nothing: the router holds every target
// coalescer's lock at once, checks room everywhere, then enqueues
// everywhere — a write is never half-admitted under backpressure.
// Acks carry the per-shard epoch vector; reads route (or scatter) by
// vertex ownership.
//
// Admission is all-or-nothing, but apply is not: a batch that passes
// range validation here can still be rejected by one shard at fold time
// (e.g. deleting an edge that is not live). Sibling shards will have
// applied their sub-batches — exactly the partial-failure surface a
// merged coalescer micro-batch already has — and the 400 tells the
// client which operation was refused.
type shardUnit struct {
	sh    *shard.Shard
	co    *Coalescer
	index *indexCache
}

type router struct {
	part    *shard.Partition
	units   []*shardUnit
	workers int // per-shard search/scan parallelism
	n, k    int

	mu     sync.Mutex
	closed bool // guarded by mu

	cutEdges  atomic.Int64 // edge ops delivered to two owner shards
	scattered atomic.Int64 // write requests that spanned >1 shard
}

func newRouter(p *shard.Partition, shards []*shard.Shard, opts Options) *router {
	rt := &router{
		part:    p,
		workers: opts.SearchWorkers,
		n:       p.N,
		k:       shards[0].D.K(),
	}
	for _, sh := range shards {
		rt.units = append(rt.units, &shardUnit{
			sh:    sh,
			co:    NewCoalescer(sh.D, opts.Coalescer),
			index: newIndexCache(sh.D, opts.SearchWorkers, opts.Index),
		})
	}
	return rt
}

func (rt *router) vertices() int { return rt.n }
func (rt *router) width() int    { return rt.k }

// validate mirrors dyn's batch validation against the global vertex
// range before the scatter, so a malformed batch is refused whole
// instead of being rejected by every shard after siblings applied
// nothing — the range checks are the only validation every shard would
// agree on without applying.
func (rt *router) validate(b *dyn.Batch) error {
	if i := graph.FirstInvalidEdge(0, rt.n, b.Insert); i >= 0 {
		e := b.Insert[i]
		return fmt.Errorf("dyn: insert %d (%d->%d) out of range [0,%d)", i, e.U, e.V, rt.n)
	}
	if i := graph.FirstInvalidEdge(0, rt.n, b.Delete); i >= 0 {
		e := b.Delete[i]
		return fmt.Errorf("dyn: delete %d (%d->%d) out of range [0,%d)", i, e.U, e.V, rt.n)
	}
	for i, lu := range b.Labels {
		if int(lu.V) >= rt.n {
			return fmt.Errorf("dyn: label update %d: vertex %d out of range [0,%d)", i, lu.V, rt.n)
		}
		if lu.Class < labels.Unknown || int(lu.Class) >= rt.k {
			return fmt.Errorf("dyn: label update %d: class %d outside [-1,%d)", i, lu.Class, rt.k)
		}
	}
	return nil
}

// epochVector reads the current published epoch of every shard.
func (rt *router) epochVector() shard.EpochVector {
	ev := make(shard.EpochVector, len(rt.units))
	for i, u := range rt.units {
		ev[i] = u.sh.D.Epoch()
	}
	return ev
}

func (rt *router) submit(b dyn.Batch, tr *trace.Trace) (writeAck, error) {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return writeAck{}, ErrClosed
	}
	rt.mu.Unlock()
	if err := rt.validate(&b); err != nil {
		// A validation failure is the apply-time rejection surfaced
		// early (same 400 the embedder would return), caught before the
		// scatter so no shard applies a batch a sibling would refuse.
		return writeAck{err: err}, nil
	}
	subs, cut := shard.Split(rt.part, b)
	type target struct {
		i, ops int
		b      dyn.Batch
	}
	var targets []target
	for i := range subs {
		if ops := shard.Ops(subs[i]); ops > 0 {
			targets = append(targets, target{i: i, ops: ops, b: subs[i]})
		}
	}
	if len(targets) == 0 {
		// Nothing to apply: ack immediately at the current vector, as
		// the coalescer does for an empty batch.
		ev := rt.epochVector()
		return writeAck{epoch: ev.Max(), epochs: ev}, nil
	}
	rt.cutEdges.Add(int64(cut))
	if len(targets) > 1 {
		rt.scattered.Add(1)
	}
	// The trace threads through exactly one sub-request (trace ownership
	// is single-goroutine; two ingest goroutines writing spans would
	// race): the one carrying the most operations.
	big := 0
	for j, t := range targets {
		if t.ops > targets[big].ops {
			big = j
		}
	}
	// All-or-nothing admission: lock every target coalescer in ascending
	// shard order (Split emits sub-batches in shard order, so concurrent
	// scattered writes acquire in the same order and cannot deadlock),
	// check room on all, then enqueue on all. No sub-batch can be
	// rejected — or reordered against another scattered write — after a
	// sibling was accepted.
	for _, t := range targets {
		rt.units[t.i].co.lock()
	}
	for _, t := range targets {
		if err := rt.units[t.i].co.canAcceptLocked(); err != nil {
			for _, u := range targets {
				rt.units[u.i].co.unlock()
			}
			return writeAck{}, err
		}
	}
	acks := make([]<-chan Ack, len(targets))
	for j, t := range targets {
		var sub *trace.Trace
		if j == big {
			sub = tr
		}
		acks[j] = rt.units[t.i].co.enqueueLocked(t.b, t.ops, sub)
	}
	for _, t := range targets {
		rt.units[t.i].co.unlock()
	}
	out := writeAck{epochs: make(shard.EpochVector, len(targets))}
	for j, ch := range acks {
		a := <-ch
		if a.Err != nil && out.err == nil {
			out.err = a.Err
		}
		out.epochs[targets[j].i] = a.Epoch
		if a.sent.After(out.sent) {
			out.sent = a.sent
		}
	}
	out.epoch = out.epochs.Max()
	return out, nil
}

// maxRetryAfter derives the sharded Retry-After hint from the per-shard
// queue depths and drain rates: a scattered write is admitted only when
// every target shard has room, so the client must outwait the slowest
// shard's backlog — the max of the per-shard estimates (never below the
// 1-second floor retryAfterSeconds keeps for an empty queue).
func maxRetryAfter(depths []int, rates []float64) int {
	hint := 1
	for i, d := range depths {
		if s := retryAfterSeconds(d, rates[i]); s > hint {
			hint = s
		}
	}
	return hint
}

func (rt *router) retryAfter() int {
	depths := make([]int, len(rt.units))
	rates := make([]float64, len(rt.units))
	for i, u := range rt.units {
		depths[i] = len(u.co.queue)
		rates[i] = math.Float64frombits(u.co.drainRate.Load())
	}
	return maxRetryAfter(depths, rates)
}

func (rt *router) snapshotFor(v uint32) *dyn.Snapshot {
	return rt.units[rt.part.Owner(graph.NodeID(v))].sh.D.Snapshot()
}

func (rt *router) view() readView {
	snaps := make([]*dyn.Snapshot, len(rt.units))
	for i, u := range rt.units {
		snaps[i] = u.sh.D.Snapshot()
	}
	return readView{snaps: snaps, part: rt.part}
}

// search is the scatter-gather top-k: every shard ranks its owned rows
// against the query (exact scan over its owned view, or its IVF index
// when approx and warm), partial lists shift to global ids, and the
// router merges them under the same ascending-distance, ties-by-id
// order — so a quiesced sharded scan is id-for-id the unsharded exact
// scan. The query row always comes from the owner shard's snapshot
// (only the owner publishes it; other shards hold zeros there). Mode is
// "approx" when at least one shard answered from its index; IndexEpoch
// is the oldest data epoch any shard's distances were computed against.
func (rt *router) search(v uint32, k int, metric cluster.Metric, name string, approx bool, nprobe int, tr *trace.Trace) searchOut {
	loadRef := tr.StartSpan("snapshot-load")
	rv := rt.view()
	tr.EndSpan(loadRef)
	query := rv.snaps[rv.owner(v)].Z.Row(int(v))
	searchRef := tr.StartSpan("search")
	lists := make([][]cluster.Neighbor, len(rt.units))
	mode := "exact"
	minUsed := uint64(math.MaxUint64)
	for i, u := range rt.units {
		lo, hi := rt.part.Range(i)
		exclude := -1
		if v >= lo && v < hi {
			exclude = int(v - lo)
		}
		used := rv.snaps[i].Epoch
		served := false
		var nbrs []cluster.Neighbor
		if approx {
			if idx := u.index.current(rv.snaps[i]); idx != nil {
				nbrs = idx.ivf.Search(rt.workers, query, k, metric, exclude, nprobe)
				used = idx.snap.Epoch
				mode = "approx"
				served = true
			}
		}
		if !served {
			nbrs = cluster.TopK(rt.workers, u.index.view(rv.snaps[i]), query, k, metric, exclude)
		}
		// Shard results are owned-view relative; lift to global ids.
		for j := range nbrs {
			nbrs[j].V += int(lo)
		}
		lists[i] = nbrs
		if used < minUsed {
			minUsed = used
		}
	}
	nbrs := cluster.MergeNeighbors(k, lists...)
	tr.EndSpan(searchRef)
	tr.SpanTag(searchRef, "mode", mode)
	tr.SpanTag(searchRef, "metric", name)
	tr.SpanTag(searchRef, "index_epoch", strconv.FormatUint(minUsed, 10))
	tr.SpanTag(searchRef, "shards", strconv.Itoa(len(rt.units)))
	if nprobe > 0 {
		tr.SpanTag(searchRef, "nprobe", strconv.Itoa(nprobe))
	}
	ev := rv.epochs()
	return searchOut{nbrs: nbrs, mode: mode, epoch: ev.Max(), indexEpoch: minUsed, epochs: ev}
}

func (rt *router) sectioned() bool { return true }
func (rt *router) shardCount() int { return len(rt.units) }

func (rt *router) section(i int) (*dyn.Snapshot, int, int) {
	lo, hi := rt.part.Range(i)
	return rt.units[i].sh.D.Snapshot(), int(lo), int(hi)
}

func (rt *router) sectionDelta(i int, from uint64) *dyn.Delta {
	return rt.units[i].sh.D.Delta(from)
}

func (rt *router) meta() shard.Meta {
	m := shard.Meta{
		Shards:    len(rt.units),
		N:         rt.n,
		K:         rt.k,
		Bounds:    rt.part.Bounds(),
		Instances: make([]uint64, len(rt.units)),
		Epochs:    make(shard.EpochVector, len(rt.units)),
	}
	for i, u := range rt.units {
		snap := u.sh.D.Snapshot()
		m.Instances[i] = snap.Instance
		m.Epochs[i] = snap.Epoch
	}
	return m
}

func (rt *router) ready() (uint64, string) {
	for i, u := range rt.units {
		if !u.co.Accepting() {
			return 0, fmt.Sprintf("shard %d: ingest coalescer not accepting writes", i)
		}
	}
	var max uint64
	for i, u := range rt.units {
		snap := u.sh.D.Snapshot()
		if snap == nil {
			return 0, fmt.Sprintf("shard %d: no snapshot published", i)
		}
		if snap.Epoch > max {
			max = snap.Epoch
		}
	}
	return max, ""
}

func (rt *router) health() HealthResponse {
	return HealthResponse{Status: "ok", Epoch: rt.epochVector().Max(), N: rt.n, K: rt.k}
}

// stats aggregates across shards and appends the per-shard breakdown.
// The aggregate LiveEdges counts a cut edge once per owner (each shard
// folds its own copy); the per-shard entries are the exact view.
func (rt *router) stats() StatsResponse {
	st := StatsResponse{
		N: rt.n, K: rt.k,
		Epochs: make(shard.EpochVector, len(rt.units)),
	}
	for i, u := range rt.units {
		lo, hi := rt.part.Range(i)
		ds := u.sh.D.Stats()
		cs := u.co.Stats()
		is := u.index.stats()
		st.Shards = append(st.Shards, ShardStats{
			Shard: i, Lo: lo, Hi: hi,
			Instance: u.sh.D.Instance(),
			Dyn:      ds, Coalescer: cs, Index: is,
		})
		st.Epochs[i] = ds.Epoch
		if ds.Epoch > st.Dyn.Epoch {
			st.Dyn.Epoch = ds.Epoch
		}
		st.Dyn.LiveEdges += ds.LiveEdges
		st.Dyn.Inserts += ds.Inserts
		st.Dyn.Deletes += ds.Deletes
		st.Dyn.LabelMoves += ds.LabelMoves
		st.Dyn.Batches += ds.Batches
		st.Dyn.AtomicFolds += ds.AtomicFolds
		st.Dyn.ShardedFolds += ds.ShardedFolds
		st.Dyn.SerialFolds += ds.SerialFolds
		st.Dyn.Publishes += ds.Publishes
		st.Coalescer.Requests += cs.Requests
		st.Coalescer.Ops += cs.Ops
		st.Coalescer.Flushes += cs.Flushes
		st.Coalescer.Coalesced += cs.Coalesced
		st.Coalescer.Replays += cs.Replays
		st.Coalescer.Rejected += cs.Rejected
		st.Index.Builds += is.Builds
		st.Index.Lists += is.Lists
		st.Index.Indexing = st.Index.Indexing || is.Indexing
		st.Index.Stale = st.Index.Stale || is.Stale
		if is.Epoch > 0 && (st.Index.Epoch == 0 || is.Epoch < st.Index.Epoch) {
			st.Index.Epoch = is.Epoch
		}
	}
	return st
}

// instrument registers every shard's embedder, coalescer, and index
// instruments under a distinct shard label — N shards' series coexist
// on one registry (gee_coalescer_queue_depth{shard="2"}) instead of
// silently aliasing the first registration's cells — plus the router's
// own scatter counters.
func (rt *router) instrument(reg *metrics.Registry) {
	for i, u := range rt.units {
		l := metrics.L("shard", strconv.Itoa(i))
		u.sh.D.Instrument(reg, l)
		u.co.instrument(reg, l)
		u.index.instrument(reg, l)
	}
	reg.GaugeFunc("gee_router_shards",
		"Number of vertex-partition shards behind this server.",
		func() float64 { return float64(len(rt.units)) })
	reg.CounterFunc("gee_router_cut_edges_total",
		"Edge operations whose endpoints live on different shards (delivered to both owners).",
		func() float64 { return float64(rt.cutEdges.Load()) })
	reg.CounterFunc("gee_router_scattered_requests_total",
		"Write requests split across more than one shard.",
		func() float64 { return float64(rt.scattered.Load()) })
}

func (rt *router) start() {
	for _, u := range rt.units {
		u.co.Start()
	}
}

func (rt *router) close() {
	rt.mu.Lock()
	rt.closed = true
	rt.mu.Unlock()
	// Drain every coalescer before refusing index rebuilds, mirroring
	// the single path's Shutdown ordering shard by shard.
	for _, u := range rt.units {
		u.co.Close()
	}
	for _, u := range rt.units {
		u.index.close()
	}
}
