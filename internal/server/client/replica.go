package client

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/mat"
	"repro/internal/server"
)

// Replica is a read-only follower of one serving endpoint: it
// bootstraps a full copy of the embedding from /v1/snapshot and then
// keeps it current by applying /v1/delta responses — changed rows
// instead of O(nK) re-streams — falling back to a fresh snapshot
// whenever the server answers "resync". This is the read fan-out
// story: any number of replicas serve local, lock-free reads (the
// same copy-on-epoch discipline as the primary's own snapshot reads)
// while the primary pays each publish's delta once per replica, not
// each read once per network round trip.
//
// Reads (Snapshot, Embedding) never block and are safe for any
// concurrency; Bootstrap and Sync are serialized internally, so one
// background goroutine calling Sync on a ticker is the intended use.
type Replica struct {
	c *Client

	mu  sync.Mutex // serializes Bootstrap/Sync (the only writers)
	cur atomic.Pointer[ReplicaSnapshot]

	syncs         atomic.Int64
	resyncs       atomic.Int64
	rowsApplied   atomic.Int64
	deltaBytes    atomic.Int64
	snapshotBytes atomic.Int64
}

// ReplicaSnapshot is one immutable local version of the embedding.
// Identical contract to dyn.Snapshot: readers may hold it forever.
type ReplicaSnapshot struct {
	Epoch uint64
	// Instance is the server-side embedder lifetime the epoch belongs
	// to; Sync discards local state and bootstraps afresh when the
	// server's instance changes (a restart resets the epoch counter,
	// so cross-instance deltas would silently corrupt the copy).
	Instance uint64
	Z        *mat.Dense
	Y        []int32
	Edges    int64
}

// ReplicaStats counts what the replica has done and paid.
type ReplicaStats struct {
	Epoch         uint64 // current local epoch
	Syncs         int64  // Sync calls that completed successfully
	Resyncs       int64  // syncs that fell back to a full snapshot
	RowsApplied   int64  // rows patched in via deltas
	DeltaBytes    int64  // response-body bytes spent on /v1/delta
	SnapshotBytes int64  // response-body bytes spent on /v1/snapshot
}

// NewReplica prepares a follower over the client. Call Bootstrap (or
// the first Sync, which bootstraps implicitly) before reading.
func NewReplica(c *Client) *Replica { return &Replica{c: c} }

// Snapshot returns the current local version, or nil before the first
// successful Bootstrap/Sync. The returned value is immutable.
func (r *Replica) Snapshot() *ReplicaSnapshot { return r.cur.Load() }

// Embedding returns a copy of vertex v's local row, or nil when the
// replica is not bootstrapped or v is out of range. Never blocks, even
// during a concurrent Sync.
func (r *Replica) Embedding(v graph.NodeID) []float64 {
	s := r.cur.Load()
	if s == nil || int(v) >= s.Z.R {
		return nil
	}
	out := make([]float64, s.Z.C)
	copy(out, s.Z.Row(int(v)))
	return out
}

// Stats returns a copy of the counters.
func (r *Replica) Stats() ReplicaStats {
	var epoch uint64
	if s := r.cur.Load(); s != nil {
		epoch = s.Epoch
	}
	return ReplicaStats{
		Epoch:         epoch,
		Syncs:         r.syncs.Load(),
		Resyncs:       r.resyncs.Load(),
		RowsApplied:   r.rowsApplied.Load(),
		DeltaBytes:    r.deltaBytes.Load(),
		SnapshotBytes: r.snapshotBytes.Load(),
	}
}

// Bootstrap (re)initializes the local copy from a full snapshot.
func (r *Replica) Bootstrap(ctx context.Context) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.bootstrapLocked(ctx)
}

func (r *Replica) bootstrapLocked(ctx context.Context) error {
	var snap server.SnapshotResponse
	n, err := r.c.do(ctx, http.MethodGet, "/v1/snapshot", nil, &snap)
	r.snapshotBytes.Add(n)
	if err != nil {
		return err
	}
	// Validate the decoded shape like Sync validates deltas: a
	// malformed or truncated response must surface as an error, not as
	// an out-of-bounds panic here or a short Y that explodes later.
	if snap.N < 0 || snap.K < 0 || len(snap.Z) != snap.N || len(snap.Y) != snap.N {
		return fmt.Errorf("client: snapshot shape n=%d k=%d with %d rows / %d labels",
			snap.N, snap.K, len(snap.Z), len(snap.Y))
	}
	z := mat.NewDense(snap.N, snap.K)
	for u, row := range snap.Z {
		if len(row) != snap.K {
			return fmt.Errorf("client: snapshot row %d has width %d, want %d", u, len(row), snap.K)
		}
		copy(z.Row(u), row)
	}
	r.cur.Store(&ReplicaSnapshot{
		Epoch: snap.Epoch, Instance: snap.Instance, Z: z, Y: snap.Y, Edges: snap.Edges,
	})
	return nil
}

// Sync advances the local copy to the server's published epoch: one
// /v1/delta round trip, or a full bootstrap when the replica has no
// state yet or the server demands a resync. Returns whether a full
// snapshot transfer happened. Copy-on-epoch: readers holding the
// previous ReplicaSnapshot are unaffected.
func (r *Replica) Sync(ctx context.Context) (resynced bool, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	cur := r.cur.Load()
	if cur == nil {
		if err := r.bootstrapLocked(ctx); err != nil {
			return false, err
		}
		r.syncs.Add(1)
		r.resyncs.Add(1)
		return true, nil
	}
	var dl server.DeltaResponse
	n, err := r.c.do(ctx, http.MethodGet, fmt.Sprintf("/v1/delta?from=%d", cur.Epoch), nil, &dl)
	r.deltaBytes.Add(n)
	if err != nil {
		return false, err
	}
	// A changed instance means the server restarted (or was replaced):
	// its epochs belong to a different history, so even a well-formed
	// row delta would patch an unrelated base. Discard and bootstrap.
	if dl.Resync || dl.Instance != cur.Instance {
		if err := r.bootstrapLocked(ctx); err != nil {
			return false, err
		}
		r.syncs.Add(1)
		r.resyncs.Add(1)
		return true, nil
	}
	if dl.Epoch == cur.Epoch {
		r.syncs.Add(1)
		return false, nil // already current
	}
	if len(dl.Z) != len(dl.Rows) {
		return false, fmt.Errorf("client: delta carries %d rows but %d value rows", len(dl.Rows), len(dl.Z))
	}
	z := cur.Z.Clone()
	for i, v := range dl.Rows {
		if int(v) >= z.R || len(dl.Z[i]) != z.C {
			return false, fmt.Errorf("client: delta row %d (vertex %d) malformed", i, v)
		}
		copy(z.Row(int(v)), dl.Z[i])
	}
	y := append([]int32(nil), cur.Y...)
	for _, l := range dl.Labels {
		if int(l.V) >= len(y) {
			return false, fmt.Errorf("client: delta label vertex %d out of range", l.V)
		}
		y[l.V] = l.Class
	}
	r.cur.Store(&ReplicaSnapshot{
		Epoch: dl.Epoch, Instance: cur.Instance, Z: z, Y: y, Edges: dl.Edges,
	})
	r.syncs.Add(1)
	r.rowsApplied.Add(int64(len(dl.Rows)))
	return false, nil
}
