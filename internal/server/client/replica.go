package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/mat"
	"repro/internal/metrics"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Replica is a read-only follower of one serving endpoint: it
// bootstraps a full copy of the embedding from /v1/snapshot and then
// keeps it current by applying /v1/delta responses — changed rows
// instead of O(nK) re-streams — falling back to a fresh snapshot
// whenever the server answers "resync". This is the read fan-out
// story: any number of replicas serve local, lock-free reads (the
// same copy-on-epoch discipline as the primary's own snapshot reads)
// while the primary pays each publish's delta once per replica, not
// each read once per network round trip.
//
// Over a Binary-format client the bootstrap is zero-copy: the frame
// bytes stream to a spill file which is mmap'd read-only, so the rows
// never get decoded into a heap copy — the local matrix aliases the
// kernel page cache (on Linux; elsewhere the frame is decoded in
// memory). Deltas then patch copy-on-write float32 versions.
//
// Reads (Snapshot, Embedding) never block and are safe for any
// concurrency; Bootstrap and Sync are serialized internally, so one
// background goroutine calling Sync on a ticker is the intended use.
type Replica struct {
	c *Client

	mu  sync.Mutex // serializes Bootstrap/Sync (the only writers)
	cur atomic.Pointer[ReplicaSnapshot]

	syncs           atomic.Int64
	resyncs         atomic.Int64
	rowsApplied     atomic.Int64
	deltaBytes      atomic.Int64
	snapshotBytes   atomic.Int64
	deltaPayload    atomic.Int64
	snapshotPayload atomic.Int64

	// Observability instruments (nil until Instrument; all uses are
	// nil-guarded).
	mSyncDelta  *metrics.Histogram // Sync wall time, delta-served calls
	mSyncResync *metrics.Histogram // Sync wall time, full-bootstrap calls
	mBytesDelta *metrics.Histogram // on-wire bytes per /v1/delta response
	mBytesSnap  *metrics.Histogram // on-wire bytes per /v1/snapshot response

	// rec, when set via RecordTraces, receives one finished trace per
	// Sync: the rpc round trip(s) plus the local apply span, under the
	// same id the server adopted for its side of the call.
	rec *trace.Recorder
}

// ReplicaSnapshot is one immutable local version of the embedding.
// Identical contract to dyn.Snapshot: readers may hold it forever.
// Use Dims and CopyRow to read rows — they work for both storage
// representations (see Z).
type ReplicaSnapshot struct {
	Epoch uint64
	// Instance is the server-side embedder lifetime the epoch belongs
	// to; Sync discards local state and bootstraps afresh when the
	// server's instance changes (a restart resets the epoch counter,
	// so cross-instance deltas would silently corrupt the copy). Zero
	// when following a sharded server — each shard has its own
	// instance, tracked internally per section (see Epochs).
	Instance uint64
	// Epochs is the per-shard epoch vector when following a sharded
	// server (nil otherwise): Epochs[i] is the section epoch shard i's
	// rows are current at, and Epoch is the max. Sections sync
	// independently, so the vector's entries generally differ.
	Epochs shard.EpochVector
	// Z is the heap float64 copy of the embedding when the snapshot
	// came over the JSON wire; nil when it came over the binary wire
	// (float32 rows, possibly aliasing a read-only mmap of the
	// bootstrap spill file — unmapped automatically once the snapshot
	// is unreachable).
	Z *mat.Dense
	// Y is the label vector (always heap-backed, never aliases a
	// mapping).
	Y     []int32
	Edges int64

	z32  []float32 // row-major n×k; set exactly when Z is nil
	n, k int
	// secs is the per-shard section state when following a sharded
	// server (nil otherwise): secs[i] mirrors shard i's owned window.
	// It rides the immutable snapshot chain — Sync builds the next
	// version's secs copy-on-write, like the matrix itself.
	secs []section
}

// section is one shard's locally-mirrored owned row window [lo, hi):
// which global rows the shard is the authority for, and the epoch and
// embedder instance those rows are current at.
type section struct {
	lo, hi   int
	epoch    uint64
	instance uint64
	edges    int64
}

// Dims returns the local matrix shape (rows, columns).
func (s *ReplicaSnapshot) Dims() (n, k int) { return s.n, s.k }

// CopyRow copies vertex v's row into dst, which must have length ≥ k,
// and returns dst[:k]; nil when v is out of range. Binary-backed rows
// widen float32 → float64 exactly, so two reads of the same version
// always agree bit-for-bit.
func (s *ReplicaSnapshot) CopyRow(v int, dst []float64) []float64 {
	if v < 0 || v >= s.n {
		return nil
	}
	dst = dst[:s.k]
	if s.Z != nil {
		copy(dst, s.Z.Row(v))
		return dst
	}
	for j, x := range s.z32[v*s.k : (v+1)*s.k] {
		dst[j] = float64(x)
	}
	return dst
}

// ReplicaStats counts what the replica has done and paid. Wire bytes
// (what actually crossed the network) and payload bytes (the decoded
// rows/labels materialized locally) are tracked separately: a sparse
// binary delta crosses the wire in a small fraction of the bytes it
// decodes into, JSON text sits much closer to its payload, and the
// dense binary snapshot IS its payload — conflating the two would
// hide exactly the figure the binary format exists to improve.
type ReplicaStats struct {
	Epoch       uint64 // current local epoch
	Syncs       int64  // Sync calls that completed successfully
	Resyncs     int64  // syncs that fell back to a full snapshot
	RowsApplied int64  // rows patched in via deltas
	// On-wire response-body bytes, by endpoint.
	DeltaBytes    int64
	SnapshotBytes int64
	// Decoded-payload bytes materialized locally: rows × k × element
	// size (8 for float64 storage, 4 for float32) plus row ids and
	// label updates.
	DeltaPayloadBytes    int64
	SnapshotPayloadBytes int64
}

// NewReplica prepares a follower over the client. Call Bootstrap (or
// the first Sync, which bootstraps implicitly) before reading.
func NewReplica(c *Client) *Replica { return &Replica{c: c} }

// Snapshot returns the current local version, or nil before the first
// successful Bootstrap/Sync. The returned value is immutable.
func (r *Replica) Snapshot() *ReplicaSnapshot { return r.cur.Load() }

// Embedding returns a copy of vertex v's local row, or nil when the
// replica is not bootstrapped or v is out of range. Never blocks, even
// during a concurrent Sync.
func (r *Replica) Embedding(v graph.NodeID) []float64 {
	s := r.cur.Load()
	if s == nil || int(v) >= s.n {
		return nil
	}
	return s.CopyRow(int(v), make([]float64, s.k))
}

// Stats returns a copy of the counters.
func (r *Replica) Stats() ReplicaStats {
	var epoch uint64
	if s := r.cur.Load(); s != nil {
		epoch = s.Epoch
	}
	return ReplicaStats{
		Epoch:                epoch,
		Syncs:                r.syncs.Load(),
		Resyncs:              r.resyncs.Load(),
		RowsApplied:          r.rowsApplied.Load(),
		DeltaBytes:           r.deltaBytes.Load(),
		SnapshotBytes:        r.snapshotBytes.Load(),
		DeltaPayloadBytes:    r.deltaPayload.Load(),
		SnapshotPayloadBytes: r.snapshotPayload.Load(),
	}
}

// Instrument registers the replica's instruments: sync wall time split
// by outcome (a delta patch vs a full-snapshot resync — they differ by
// orders of magnitude, so one histogram would bury the delta signal),
// on-wire bytes per endpoint, and the existing counters. A process
// running several replicas should give each its own registry.
func (r *Replica) Instrument(reg *metrics.Registry) {
	r.mSyncDelta = reg.Histogram("gee_replica_sync_seconds",
		"Sync wall time by outcome (delta = row patch, resync = full snapshot).",
		metrics.DefLatencyBuckets, metrics.L("outcome", "delta"))
	r.mSyncResync = reg.Histogram("gee_replica_sync_seconds",
		"Sync wall time by outcome (delta = row patch, resync = full snapshot).",
		metrics.DefLatencyBuckets, metrics.L("outcome", "resync"))
	r.mBytesDelta = reg.Histogram("gee_replica_sync_bytes",
		"On-wire response-body bytes per sync round trip, by endpoint.",
		metrics.DefSizeBuckets, metrics.L("endpoint", "delta"))
	r.mBytesSnap = reg.Histogram("gee_replica_sync_bytes",
		"On-wire response-body bytes per sync round trip, by endpoint.",
		metrics.DefSizeBuckets, metrics.L("endpoint", "snapshot"))
	reg.CounterFunc("gee_replica_syncs_total",
		"Sync calls that completed successfully.",
		func() float64 { return float64(r.syncs.Load()) })
	reg.CounterFunc("gee_replica_resyncs_total",
		"Syncs that fell back to a full snapshot transfer.",
		func() float64 { return float64(r.resyncs.Load()) })
	reg.CounterFunc("gee_replica_rows_applied_total",
		"Rows patched in via deltas.",
		func() float64 { return float64(r.rowsApplied.Load()) })
	reg.GaugeFunc("gee_replica_epoch",
		"Current local epoch (0 before the first bootstrap).",
		func() float64 {
			if s := r.cur.Load(); s != nil {
				return float64(s.Epoch)
			}
			return 0
		})
}

// addSnapshotBytes / addDeltaBytes feed both the /statsz counters and,
// when instrumented, the per-round-trip byte histograms.
func (r *Replica) addSnapshotBytes(n int64) {
	r.snapshotBytes.Add(n)
	if r.mBytesSnap != nil {
		r.mBytesSnap.Observe(float64(n))
	}
}

func (r *Replica) addDeltaBytes(n int64) {
	r.deltaBytes.Add(n)
	if r.mBytesDelta != nil {
		r.mBytesDelta.Observe(float64(n))
	}
}

// RecordTraces turns on client-side sync tracing: every subsequent
// Sync records a span tree ("replica-sync": rpc round trips + the
// local apply) into rec. The trace id rides the X-Gee-Trace header, so
// the server's recorded trace for the same delta read shares it. Call
// before the sync loop starts; nil disables.
func (r *Replica) RecordTraces(rec *trace.Recorder) {
	r.mu.Lock()
	r.rec = rec
	r.mu.Unlock()
}

// Bootstrap (re)initializes the local copy from a full snapshot.
func (r *Replica) Bootstrap(ctx context.Context) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.bootstrapLocked(ctx)
}

func (r *Replica) bootstrapLocked(ctx context.Context) error {
	// Probe the partition first: a sharded server refuses bare
	// /v1/snapshot reads, so the shard layout decides the protocol. An
	// unsharded server answers a trivial single-shard partition (and a
	// server predating the endpoint answers 404) — both select the
	// legacy whole-matrix path, whose wire traffic is unchanged.
	meta, err := r.c.Partition(ctx)
	switch {
	case isNotFound(err):
		// fall through to the legacy path
	case err != nil:
		return err
	case meta.Shards > 1:
		return r.bootstrapShardedLocked(ctx, meta)
	}
	if r.c.wire == Binary {
		return r.bootstrapBinaryLocked(ctx)
	}
	var snap server.SnapshotResponse
	n, err := r.c.do(ctx, http.MethodGet, "/v1/snapshot", nil, &snap)
	r.addSnapshotBytes(n)
	if err != nil {
		return err
	}
	return r.storeDecodedSnapshot(&snap)
}

// storeDecodedSnapshot validates and installs a snapshot decoded into
// the JSON response struct (float64 heap storage).
func (r *Replica) storeDecodedSnapshot(snap *server.SnapshotResponse) error {
	// Validate the decoded shape like Sync validates deltas: a
	// malformed or truncated response must surface as an error, not as
	// an out-of-bounds panic here or a short Y that explodes later.
	if snap.N < 0 || snap.K < 0 || len(snap.Z) != snap.N || len(snap.Y) != snap.N {
		return fmt.Errorf("client: snapshot shape n=%d k=%d with %d rows / %d labels",
			snap.N, snap.K, len(snap.Z), len(snap.Y))
	}
	z := mat.NewDense(snap.N, snap.K)
	for u, row := range snap.Z {
		if len(row) != snap.K {
			return fmt.Errorf("client: snapshot row %d has width %d, want %d", u, len(row), snap.K)
		}
		copy(z.Row(u), row)
	}
	r.snapshotPayload.Add(int64(snap.N)*int64(snap.K)*8 + int64(snap.N)*4)
	r.cur.Store(&ReplicaSnapshot{
		Epoch: snap.Epoch, Instance: snap.Instance, Z: z, Y: snap.Y,
		Edges: snap.Edges, n: snap.N, k: snap.K,
	})
	return nil
}

// bootstrapBinaryLocked streams the binary snapshot frame to a spill
// file and maps it read-only: the n×K float32 payload is never decoded
// into a heap copy — the local matrix aliases the mapping, which is
// released once the snapshot version becomes unreachable. A server
// that answers JSON anyway (no binary support) is decoded in place.
func (r *Replica) bootstrapBinaryLocked(ctx context.Context) error {
	body, contentType, err := r.c.getStream(ctx, "/v1/snapshot")
	if err != nil {
		return err
	}
	defer body.Close()
	cr := &countingReader{r: body}
	if !isFrame(contentType) {
		var snap server.SnapshotResponse
		err := json.NewDecoder(cr).Decode(&snap)
		r.addSnapshotBytes(cr.n)
		if err != nil {
			return err
		}
		return r.storeDecodedSnapshot(&snap)
	}
	spill, err := os.CreateTemp("", "gee-replica-*.snap")
	if err != nil {
		return err
	}
	path := spill.Name()
	_, cpErr := io.Copy(spill, cr)
	r.addSnapshotBytes(cr.n)
	if err := spill.Close(); cpErr == nil {
		cpErr = err
	}
	if cpErr != nil {
		os.Remove(path)
		return fmt.Errorf("client: spilling snapshot frame: %w", cpErr)
	}
	f, closer, err := mapFrame(path)
	// The mapping (or the decoded copy) outlives the name either way.
	os.Remove(path)
	if err != nil {
		return err
	}
	fail := func(err error) error {
		if closer != nil {
			closer()
		}
		return err
	}
	if f.Kind != wire.KindSnapshot || f.NRows != f.N || f.RowIDs != nil || uint32(len(f.Y)) != f.N {
		return fail(fmt.Errorf("client: snapshot frame shape kind=%d n=%d rows=%d ids=%d labels=%d",
			f.Kind, f.N, f.NRows, len(f.RowIDs), len(f.Y)))
	}
	n, k := int(f.N), int(f.K)
	snap := &ReplicaSnapshot{
		Epoch: f.Epoch, Instance: f.Instance, Edges: f.Edges,
		// Y is copied to the heap: it is a public field, and a slice
		// that quietly aliased the mapping could outlive the snapshot
		// that keeps the mapping alive. The big payload — Rows — stays
		// aliased and is only reachable through CopyRow.
		Y:   append([]int32(nil), f.Y...),
		z32: f.Rows, n: n, k: k,
	}
	if closer != nil {
		// Unmap when this version becomes unreachable — readers may
		// hold it forever, so eager unmapping on the next Sync would
		// pull pages out from under them.
		runtime.AddCleanup(snap, func(unmap func() error) { unmap() }, closer)
	}
	r.snapshotPayload.Add(int64(n)*int64(k)*4 + int64(n)*4)
	r.cur.Store(snap)
	return nil
}

// sectionShapeError reports a section response whose shape disagrees
// with the partition metadata in hand — the layout changed under us
// (a restart with a different shard count or vertex range), so the
// right recovery is a full re-bootstrap, not a hard failure.
type sectionShapeError struct{ msg string }

func (e *sectionShapeError) Error() string { return e.msg }

// fetchSection fetches shard i's snapshot section and validates it
// against the expected window [lo, hi) and width k. Both wire formats
// land here: a binary section frame is a snapshot frame of the small
// owned window, so do's transparent frame decoding applies unchanged
// (the frame has no lo field — the window comes from the partition).
func (r *Replica) fetchSection(ctx context.Context, i, lo, hi, k int) (*server.SnapshotResponse, error) {
	var snap server.SnapshotResponse
	n, err := r.c.do(ctx, http.MethodGet, fmt.Sprintf("/v1/snapshot?shard=%d", i), nil, &snap)
	r.addSnapshotBytes(n)
	if err != nil {
		return nil, err
	}
	if snap.N != hi-lo || snap.K != k || len(snap.Z) != snap.N || len(snap.Y) != snap.N ||
		(snap.Lo != 0 && int(snap.Lo) != lo) {
		return nil, &sectionShapeError{msg: fmt.Sprintf(
			"client: shard %d section shape n=%d k=%d lo=%d (%d rows, %d labels), want window [%d,%d) k=%d",
			i, snap.N, snap.K, snap.Lo, len(snap.Z), len(snap.Y), lo, hi, k)}
	}
	for u, row := range snap.Z {
		if len(row) != k {
			return nil, fmt.Errorf("client: shard %d section row %d has width %d, want %d", i, u, len(row), k)
		}
	}
	return &snap, nil
}

// storeSectionRows copies a fetched section's rows and labels into the
// assembly arrays at the section's global offset. Exactly one of z and
// z32 is non-nil; float64 → float32 narrowing on the binary path is
// exact (the wire carried float32, widened on decode).
func storeSectionRows(z *mat.Dense, z32 []float32, y []int32, snap *server.SnapshotResponse, lo, k int) {
	for u, row := range snap.Z {
		if z != nil {
			copy(z.Row(lo+u), row)
			continue
		}
		dst := z32[(lo+u)*k : (lo+u+1)*k]
		for j, x := range row {
			dst[j] = float32(x)
		}
	}
	copy(y[lo:lo+len(snap.Y)], snap.Y)
}

// assembleSharded builds the immutable version from the assembly
// arrays and per-section state: Epoch is the vector max, and Edges
// sums the per-shard live-edge counts (a cut edge lives in both owning
// shards, so the sum counts it twice — the same convention as the
// sharded server's own /statsz aggregate).
func assembleSharded(z *mat.Dense, z32 []float32, y []int32, secs []section, n, k int) *ReplicaSnapshot {
	ev := make(shard.EpochVector, len(secs))
	var edges int64
	for i, sec := range secs {
		ev[i] = sec.epoch
		edges += sec.edges
	}
	return &ReplicaSnapshot{
		Epoch: ev.Max(), Epochs: ev, Z: z, z32: z32, Y: y,
		Edges: edges, n: n, k: k, secs: secs,
	}
}

// bootstrapShardedLocked (re)initializes the local copy from one
// snapshot section per shard. Sections are fetched sequentially, so
// they may straddle concurrent publishes — each section is internally
// consistent at its own epoch, and subsequent Syncs advance each shard
// independently; there is no cross-shard "one instant" any more than
// there is on the serving side. Binary-wire sections are decoded in
// memory rather than mmap-spilled: each is a fraction of the matrix,
// and assembling them into one full n×k array needs a writable copy
// anyway.
func (r *Replica) bootstrapShardedLocked(ctx context.Context, meta shard.Meta) error {
	if meta.N < 0 || meta.K < 0 || len(meta.Bounds) != meta.Shards+1 ||
		meta.Bounds[0] != 0 || int(meta.Bounds[meta.Shards]) != meta.N {
		return fmt.Errorf("client: partition shape shards=%d n=%d bounds=%v",
			meta.Shards, meta.N, meta.Bounds)
	}
	n, k := meta.N, meta.K
	var z *mat.Dense
	var z32 []float32
	elemSize := int64(8)
	if r.c.wire == Binary {
		z32 = make([]float32, n*k)
		elemSize = 4
	} else {
		z = mat.NewDense(n, k)
	}
	y := make([]int32, n)
	secs := make([]section, meta.Shards)
	for i := range secs {
		lo, hi := int(meta.Bounds[i]), int(meta.Bounds[i+1])
		snap, err := r.fetchSection(ctx, i, lo, hi, k)
		if err != nil {
			return err
		}
		storeSectionRows(z, z32, y, snap, lo, k)
		secs[i] = section{lo: lo, hi: hi, epoch: snap.Epoch, instance: snap.Instance, edges: snap.Edges}
		r.snapshotPayload.Add(int64(snap.N)*int64(k)*elemSize + int64(snap.N)*4)
	}
	r.cur.Store(assembleSharded(z, z32, y, secs, n, k))
	return nil
}

// Sync advances the local copy to the server's published epoch: one
// /v1/delta round trip, or a full bootstrap when the replica has no
// state yet or the server demands a resync. Returns whether a full
// snapshot transfer happened. Copy-on-epoch: readers holding the
// previous ReplicaSnapshot are unaffected.
func (r *Replica) Sync(ctx context.Context) (resynced bool, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.rec == nil {
		return r.syncLocked(ctx, nil)
	}
	tr := trace.New("replica-sync")
	resynced, err = r.syncLocked(trace.NewContext(ctx, tr), tr)
	switch {
	case err != nil:
		tr.Tag("error", err.Error())
	case resynced:
		tr.Tag("outcome", "resync")
	default:
		tr.Tag("outcome", "delta")
	}
	if s := r.cur.Load(); s != nil {
		tr.Tag("epoch", fmt.Sprint(s.Epoch))
	}
	tr.Finish()
	r.rec.Record(tr)
	return resynced, err
}

// syncLocked is Sync's body; tr (possibly nil) collects the apply span
// while the rpc spans come from the client's do via the context.
func (r *Replica) syncLocked(ctx context.Context, tr *trace.Trace) (resynced bool, err error) {
	t0 := time.Now()
	// observe records the wall time of a successful sync under the
	// outcome's histogram (resync transfers the full matrix, a delta
	// patches rows — mixing them would bury the delta signal).
	observe := func(resynced bool) {
		h := r.mSyncDelta
		if resynced {
			h = r.mSyncResync
		}
		if h != nil {
			h.ObserveSince(t0)
		}
	}
	cur := r.cur.Load()
	if cur == nil {
		if err := r.bootstrapLocked(ctx); err != nil {
			return false, err
		}
		r.syncs.Add(1)
		r.resyncs.Add(1)
		observe(true)
		return true, nil
	}
	if cur.secs != nil {
		resynced, err := r.syncShardedLocked(ctx, tr, cur)
		if err != nil {
			return false, err
		}
		r.syncs.Add(1)
		if resynced {
			r.resyncs.Add(1)
		}
		observe(resynced)
		return resynced, nil
	}
	var dl server.DeltaResponse
	n, err := r.c.do(ctx, http.MethodGet, fmt.Sprintf("/v1/delta?from=%d", cur.Epoch), nil, &dl)
	r.addDeltaBytes(n)
	if err != nil {
		return false, err
	}
	// A changed instance means the server restarted (or was replaced):
	// its epochs belong to a different history, so even a well-formed
	// row delta would patch an unrelated base. Discard and bootstrap.
	if dl.Resync || dl.Instance != cur.Instance {
		if err := r.bootstrapLocked(ctx); err != nil {
			return false, err
		}
		r.syncs.Add(1)
		r.resyncs.Add(1)
		observe(true)
		return true, nil
	}
	if dl.Epoch == cur.Epoch {
		r.syncs.Add(1)
		observe(false)
		return false, nil // already current
	}
	if len(dl.Z) != len(dl.Rows) {
		return false, fmt.Errorf("client: delta carries %d rows but %d value rows", len(dl.Rows), len(dl.Z))
	}
	applyRef := tr.StartSpan("apply")
	tr.SpanTag(applyRef, "rows", fmt.Sprint(len(dl.Rows)))
	defer tr.EndSpan(applyRef)
	next := &ReplicaSnapshot{
		Epoch: dl.Epoch, Instance: cur.Instance, Edges: dl.Edges,
		n: cur.n, k: cur.k,
	}
	elemSize := int64(8)
	if cur.Z != nil {
		z := cur.Z.Clone()
		for i, v := range dl.Rows {
			if int(v) >= cur.n || len(dl.Z[i]) != cur.k {
				return false, fmt.Errorf("client: delta row %d (vertex %d) malformed", i, v)
			}
			copy(z.Row(int(v)), dl.Z[i])
		}
		next.Z = z
	} else {
		// Binary storage: patch a fresh float32 version. The wire
		// carried float32 widened to float64 on decode, so narrowing
		// back is exact — the patched row equals the frame's bytes.
		z := append([]float32(nil), cur.z32...)
		for i, v := range dl.Rows {
			if int(v) >= cur.n || len(dl.Z[i]) != cur.k {
				return false, fmt.Errorf("client: delta row %d (vertex %d) malformed", i, v)
			}
			row := z[int(v)*cur.k : (int(v)+1)*cur.k]
			for j, x := range dl.Z[i] {
				row[j] = float32(x)
			}
		}
		next.z32 = z
		elemSize = 4
	}
	y := append([]int32(nil), cur.Y...)
	for _, l := range dl.Labels {
		if int(l.V) >= len(y) {
			return false, fmt.Errorf("client: delta label vertex %d out of range", l.V)
		}
		y[l.V] = l.Class
	}
	next.Y = y
	r.cur.Store(next)
	r.syncs.Add(1)
	r.rowsApplied.Add(int64(len(dl.Rows)))
	r.deltaPayload.Add(int64(len(dl.Rows))*int64(cur.k)*elemSize +
		int64(len(dl.Rows))*4 + int64(len(dl.Labels))*8)
	observe(false)
	return false, nil
}

// syncShardedLocked advances every section: one /v1/delta round trip
// per shard. Shards resync independently — only a section whose server
// answered "resync" (or whose embedder instance changed: that shard
// restarted) pays a full section transfer, the others keep patching
// rows. A section whose shape no longer matches the stored window
// means the partition itself changed, so the whole copy re-bootstraps
// through a fresh /v1/partition probe. Returns whether any full
// section (or bootstrap) transfer happened.
func (r *Replica) syncShardedLocked(ctx context.Context, tr *trace.Trace, cur *ReplicaSnapshot) (resynced bool, err error) {
	deltas := make([]server.DeltaResponse, len(cur.secs))
	apply := make([]bool, len(cur.secs))
	needSection := make([]bool, len(cur.secs))
	changed := false
	for i, sec := range cur.secs {
		var dl server.DeltaResponse
		n, err := r.c.do(ctx, http.MethodGet,
			fmt.Sprintf("/v1/delta?from=%d&shard=%d", sec.epoch, i), nil, &dl)
		r.addDeltaBytes(n)
		if err != nil {
			return false, err
		}
		if dl.Resync || dl.Instance != sec.instance {
			needSection[i] = true
			resynced, changed = true, true
			continue
		}
		if dl.Epoch == sec.epoch {
			continue
		}
		if len(dl.Z) != len(dl.Rows) {
			return false, fmt.Errorf("client: shard %d delta carries %d rows but %d value rows",
				i, len(dl.Rows), len(dl.Z))
		}
		deltas[i], apply[i] = dl, true
		changed = true
	}
	if !changed {
		return false, nil // every section already current
	}
	applyRef := tr.StartSpan("apply")
	defer tr.EndSpan(applyRef)
	// One copy-on-write clone covers all sections' patches: readers
	// holding the previous version are unaffected, and the new version
	// appears atomically with every section advanced.
	var z *mat.Dense
	var z32 []float32
	elemSize := int64(8)
	if cur.Z != nil {
		z = cur.Z.Clone()
	} else {
		z32 = append([]float32(nil), cur.z32...)
		elemSize = 4
	}
	y := append([]int32(nil), cur.Y...)
	secs := append([]section(nil), cur.secs...)
	rows := 0
	for i := range secs {
		sec := &secs[i]
		switch {
		case needSection[i]:
			snap, err := r.fetchSection(ctx, i, sec.lo, sec.hi, cur.k)
			var shape *sectionShapeError
			if errors.As(err, &shape) {
				// The partition changed under us; rebuild from the
				// current layout.
				if err := r.bootstrapLocked(ctx); err != nil {
					return false, err
				}
				return true, nil
			}
			if err != nil {
				return false, err
			}
			storeSectionRows(z, z32, y, snap, sec.lo, cur.k)
			sec.epoch, sec.instance, sec.edges = snap.Epoch, snap.Instance, snap.Edges
			r.snapshotPayload.Add(int64(snap.N)*int64(cur.k)*elemSize + int64(snap.N)*4)
		case apply[i]:
			dl := &deltas[i]
			if err := applySectionDelta(z, z32, y, dl, sec, cur.k); err != nil {
				return false, err
			}
			rows += len(dl.Rows)
			r.deltaPayload.Add(int64(len(dl.Rows))*int64(cur.k)*elemSize +
				int64(len(dl.Rows))*4 + int64(len(dl.Labels))*8)
		}
	}
	tr.SpanTag(applyRef, "rows", fmt.Sprint(rows))
	r.rowsApplied.Add(int64(rows))
	r.cur.Store(assembleSharded(z, z32, y, secs, cur.n, cur.k))
	return resynced, nil
}

// applySectionDelta patches one shard's delta rows and labels into the
// assembly arrays, enforcing the owned-window contract: a sharded
// delta's row ids are global but must fall inside the shard's window.
func applySectionDelta(z *mat.Dense, z32 []float32, y []int32, dl *server.DeltaResponse, sec *section, k int) error {
	for i, v := range dl.Rows {
		if int(v) < sec.lo || int(v) >= sec.hi || len(dl.Z[i]) != k {
			return fmt.Errorf("client: delta row %d (vertex %d) outside shard window [%d,%d) or malformed",
				i, v, sec.lo, sec.hi)
		}
		if z != nil {
			copy(z.Row(int(v)), dl.Z[i])
			continue
		}
		row := z32[int(v)*k : (int(v)+1)*k]
		for j, x := range dl.Z[i] {
			row[j] = float32(x)
		}
	}
	for _, l := range dl.Labels {
		if int(l.V) < sec.lo || int(l.V) >= sec.hi {
			return fmt.Errorf("client: delta label vertex %d outside shard window [%d,%d)",
				l.V, sec.lo, sec.hi)
		}
		y[l.V] = l.Class
	}
	sec.epoch = dl.Epoch
	sec.edges = dl.Edges
	return nil
}
