package client

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/mat"
	"repro/internal/metrics"
	"repro/internal/server"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Replica is a read-only follower of one serving endpoint: it
// bootstraps a full copy of the embedding from /v1/snapshot and then
// keeps it current by applying /v1/delta responses — changed rows
// instead of O(nK) re-streams — falling back to a fresh snapshot
// whenever the server answers "resync". This is the read fan-out
// story: any number of replicas serve local, lock-free reads (the
// same copy-on-epoch discipline as the primary's own snapshot reads)
// while the primary pays each publish's delta once per replica, not
// each read once per network round trip.
//
// Over a Binary-format client the bootstrap is zero-copy: the frame
// bytes stream to a spill file which is mmap'd read-only, so the rows
// never get decoded into a heap copy — the local matrix aliases the
// kernel page cache (on Linux; elsewhere the frame is decoded in
// memory). Deltas then patch copy-on-write float32 versions.
//
// Reads (Snapshot, Embedding) never block and are safe for any
// concurrency; Bootstrap and Sync are serialized internally, so one
// background goroutine calling Sync on a ticker is the intended use.
type Replica struct {
	c *Client

	mu  sync.Mutex // serializes Bootstrap/Sync (the only writers)
	cur atomic.Pointer[ReplicaSnapshot]

	syncs           atomic.Int64
	resyncs         atomic.Int64
	rowsApplied     atomic.Int64
	deltaBytes      atomic.Int64
	snapshotBytes   atomic.Int64
	deltaPayload    atomic.Int64
	snapshotPayload atomic.Int64

	// Observability instruments (nil until Instrument; all uses are
	// nil-guarded).
	mSyncDelta  *metrics.Histogram // Sync wall time, delta-served calls
	mSyncResync *metrics.Histogram // Sync wall time, full-bootstrap calls
	mBytesDelta *metrics.Histogram // on-wire bytes per /v1/delta response
	mBytesSnap  *metrics.Histogram // on-wire bytes per /v1/snapshot response

	// rec, when set via RecordTraces, receives one finished trace per
	// Sync: the rpc round trip(s) plus the local apply span, under the
	// same id the server adopted for its side of the call.
	rec *trace.Recorder
}

// ReplicaSnapshot is one immutable local version of the embedding.
// Identical contract to dyn.Snapshot: readers may hold it forever.
// Use Dims and CopyRow to read rows — they work for both storage
// representations (see Z).
type ReplicaSnapshot struct {
	Epoch uint64
	// Instance is the server-side embedder lifetime the epoch belongs
	// to; Sync discards local state and bootstraps afresh when the
	// server's instance changes (a restart resets the epoch counter,
	// so cross-instance deltas would silently corrupt the copy).
	Instance uint64
	// Z is the heap float64 copy of the embedding when the snapshot
	// came over the JSON wire; nil when it came over the binary wire
	// (float32 rows, possibly aliasing a read-only mmap of the
	// bootstrap spill file — unmapped automatically once the snapshot
	// is unreachable).
	Z *mat.Dense
	// Y is the label vector (always heap-backed, never aliases a
	// mapping).
	Y     []int32
	Edges int64

	z32  []float32 // row-major n×k; set exactly when Z is nil
	n, k int
}

// Dims returns the local matrix shape (rows, columns).
func (s *ReplicaSnapshot) Dims() (n, k int) { return s.n, s.k }

// CopyRow copies vertex v's row into dst, which must have length ≥ k,
// and returns dst[:k]; nil when v is out of range. Binary-backed rows
// widen float32 → float64 exactly, so two reads of the same version
// always agree bit-for-bit.
func (s *ReplicaSnapshot) CopyRow(v int, dst []float64) []float64 {
	if v < 0 || v >= s.n {
		return nil
	}
	dst = dst[:s.k]
	if s.Z != nil {
		copy(dst, s.Z.Row(v))
		return dst
	}
	for j, x := range s.z32[v*s.k : (v+1)*s.k] {
		dst[j] = float64(x)
	}
	return dst
}

// ReplicaStats counts what the replica has done and paid. Wire bytes
// (what actually crossed the network) and payload bytes (the decoded
// rows/labels materialized locally) are tracked separately: a sparse
// binary delta crosses the wire in a small fraction of the bytes it
// decodes into, JSON text sits much closer to its payload, and the
// dense binary snapshot IS its payload — conflating the two would
// hide exactly the figure the binary format exists to improve.
type ReplicaStats struct {
	Epoch       uint64 // current local epoch
	Syncs       int64  // Sync calls that completed successfully
	Resyncs     int64  // syncs that fell back to a full snapshot
	RowsApplied int64  // rows patched in via deltas
	// On-wire response-body bytes, by endpoint.
	DeltaBytes    int64
	SnapshotBytes int64
	// Decoded-payload bytes materialized locally: rows × k × element
	// size (8 for float64 storage, 4 for float32) plus row ids and
	// label updates.
	DeltaPayloadBytes    int64
	SnapshotPayloadBytes int64
}

// NewReplica prepares a follower over the client. Call Bootstrap (or
// the first Sync, which bootstraps implicitly) before reading.
func NewReplica(c *Client) *Replica { return &Replica{c: c} }

// Snapshot returns the current local version, or nil before the first
// successful Bootstrap/Sync. The returned value is immutable.
func (r *Replica) Snapshot() *ReplicaSnapshot { return r.cur.Load() }

// Embedding returns a copy of vertex v's local row, or nil when the
// replica is not bootstrapped or v is out of range. Never blocks, even
// during a concurrent Sync.
func (r *Replica) Embedding(v graph.NodeID) []float64 {
	s := r.cur.Load()
	if s == nil || int(v) >= s.n {
		return nil
	}
	return s.CopyRow(int(v), make([]float64, s.k))
}

// Stats returns a copy of the counters.
func (r *Replica) Stats() ReplicaStats {
	var epoch uint64
	if s := r.cur.Load(); s != nil {
		epoch = s.Epoch
	}
	return ReplicaStats{
		Epoch:                epoch,
		Syncs:                r.syncs.Load(),
		Resyncs:              r.resyncs.Load(),
		RowsApplied:          r.rowsApplied.Load(),
		DeltaBytes:           r.deltaBytes.Load(),
		SnapshotBytes:        r.snapshotBytes.Load(),
		DeltaPayloadBytes:    r.deltaPayload.Load(),
		SnapshotPayloadBytes: r.snapshotPayload.Load(),
	}
}

// Instrument registers the replica's instruments: sync wall time split
// by outcome (a delta patch vs a full-snapshot resync — they differ by
// orders of magnitude, so one histogram would bury the delta signal),
// on-wire bytes per endpoint, and the existing counters. A process
// running several replicas should give each its own registry.
func (r *Replica) Instrument(reg *metrics.Registry) {
	r.mSyncDelta = reg.Histogram("gee_replica_sync_seconds",
		"Sync wall time by outcome (delta = row patch, resync = full snapshot).",
		metrics.DefLatencyBuckets, metrics.L("outcome", "delta"))
	r.mSyncResync = reg.Histogram("gee_replica_sync_seconds",
		"Sync wall time by outcome (delta = row patch, resync = full snapshot).",
		metrics.DefLatencyBuckets, metrics.L("outcome", "resync"))
	r.mBytesDelta = reg.Histogram("gee_replica_sync_bytes",
		"On-wire response-body bytes per sync round trip, by endpoint.",
		metrics.DefSizeBuckets, metrics.L("endpoint", "delta"))
	r.mBytesSnap = reg.Histogram("gee_replica_sync_bytes",
		"On-wire response-body bytes per sync round trip, by endpoint.",
		metrics.DefSizeBuckets, metrics.L("endpoint", "snapshot"))
	reg.CounterFunc("gee_replica_syncs_total",
		"Sync calls that completed successfully.",
		func() float64 { return float64(r.syncs.Load()) })
	reg.CounterFunc("gee_replica_resyncs_total",
		"Syncs that fell back to a full snapshot transfer.",
		func() float64 { return float64(r.resyncs.Load()) })
	reg.CounterFunc("gee_replica_rows_applied_total",
		"Rows patched in via deltas.",
		func() float64 { return float64(r.rowsApplied.Load()) })
	reg.GaugeFunc("gee_replica_epoch",
		"Current local epoch (0 before the first bootstrap).",
		func() float64 {
			if s := r.cur.Load(); s != nil {
				return float64(s.Epoch)
			}
			return 0
		})
}

// addSnapshotBytes / addDeltaBytes feed both the /statsz counters and,
// when instrumented, the per-round-trip byte histograms.
func (r *Replica) addSnapshotBytes(n int64) {
	r.snapshotBytes.Add(n)
	if r.mBytesSnap != nil {
		r.mBytesSnap.Observe(float64(n))
	}
}

func (r *Replica) addDeltaBytes(n int64) {
	r.deltaBytes.Add(n)
	if r.mBytesDelta != nil {
		r.mBytesDelta.Observe(float64(n))
	}
}

// RecordTraces turns on client-side sync tracing: every subsequent
// Sync records a span tree ("replica-sync": rpc round trips + the
// local apply) into rec. The trace id rides the X-Gee-Trace header, so
// the server's recorded trace for the same delta read shares it. Call
// before the sync loop starts; nil disables.
func (r *Replica) RecordTraces(rec *trace.Recorder) {
	r.mu.Lock()
	r.rec = rec
	r.mu.Unlock()
}

// Bootstrap (re)initializes the local copy from a full snapshot.
func (r *Replica) Bootstrap(ctx context.Context) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.bootstrapLocked(ctx)
}

func (r *Replica) bootstrapLocked(ctx context.Context) error {
	if r.c.wire == Binary {
		return r.bootstrapBinaryLocked(ctx)
	}
	var snap server.SnapshotResponse
	n, err := r.c.do(ctx, http.MethodGet, "/v1/snapshot", nil, &snap)
	r.addSnapshotBytes(n)
	if err != nil {
		return err
	}
	return r.storeDecodedSnapshot(&snap)
}

// storeDecodedSnapshot validates and installs a snapshot decoded into
// the JSON response struct (float64 heap storage).
func (r *Replica) storeDecodedSnapshot(snap *server.SnapshotResponse) error {
	// Validate the decoded shape like Sync validates deltas: a
	// malformed or truncated response must surface as an error, not as
	// an out-of-bounds panic here or a short Y that explodes later.
	if snap.N < 0 || snap.K < 0 || len(snap.Z) != snap.N || len(snap.Y) != snap.N {
		return fmt.Errorf("client: snapshot shape n=%d k=%d with %d rows / %d labels",
			snap.N, snap.K, len(snap.Z), len(snap.Y))
	}
	z := mat.NewDense(snap.N, snap.K)
	for u, row := range snap.Z {
		if len(row) != snap.K {
			return fmt.Errorf("client: snapshot row %d has width %d, want %d", u, len(row), snap.K)
		}
		copy(z.Row(u), row)
	}
	r.snapshotPayload.Add(int64(snap.N)*int64(snap.K)*8 + int64(snap.N)*4)
	r.cur.Store(&ReplicaSnapshot{
		Epoch: snap.Epoch, Instance: snap.Instance, Z: z, Y: snap.Y,
		Edges: snap.Edges, n: snap.N, k: snap.K,
	})
	return nil
}

// bootstrapBinaryLocked streams the binary snapshot frame to a spill
// file and maps it read-only: the n×K float32 payload is never decoded
// into a heap copy — the local matrix aliases the mapping, which is
// released once the snapshot version becomes unreachable. A server
// that answers JSON anyway (no binary support) is decoded in place.
func (r *Replica) bootstrapBinaryLocked(ctx context.Context) error {
	body, contentType, err := r.c.getStream(ctx, "/v1/snapshot")
	if err != nil {
		return err
	}
	defer body.Close()
	cr := &countingReader{r: body}
	if !isFrame(contentType) {
		var snap server.SnapshotResponse
		err := json.NewDecoder(cr).Decode(&snap)
		r.addSnapshotBytes(cr.n)
		if err != nil {
			return err
		}
		return r.storeDecodedSnapshot(&snap)
	}
	spill, err := os.CreateTemp("", "gee-replica-*.snap")
	if err != nil {
		return err
	}
	path := spill.Name()
	_, cpErr := io.Copy(spill, cr)
	r.addSnapshotBytes(cr.n)
	if err := spill.Close(); cpErr == nil {
		cpErr = err
	}
	if cpErr != nil {
		os.Remove(path)
		return fmt.Errorf("client: spilling snapshot frame: %w", cpErr)
	}
	f, closer, err := mapFrame(path)
	// The mapping (or the decoded copy) outlives the name either way.
	os.Remove(path)
	if err != nil {
		return err
	}
	fail := func(err error) error {
		if closer != nil {
			closer()
		}
		return err
	}
	if f.Kind != wire.KindSnapshot || f.NRows != f.N || f.RowIDs != nil || uint32(len(f.Y)) != f.N {
		return fail(fmt.Errorf("client: snapshot frame shape kind=%d n=%d rows=%d ids=%d labels=%d",
			f.Kind, f.N, f.NRows, len(f.RowIDs), len(f.Y)))
	}
	n, k := int(f.N), int(f.K)
	snap := &ReplicaSnapshot{
		Epoch: f.Epoch, Instance: f.Instance, Edges: f.Edges,
		// Y is copied to the heap: it is a public field, and a slice
		// that quietly aliased the mapping could outlive the snapshot
		// that keeps the mapping alive. The big payload — Rows — stays
		// aliased and is only reachable through CopyRow.
		Y:   append([]int32(nil), f.Y...),
		z32: f.Rows, n: n, k: k,
	}
	if closer != nil {
		// Unmap when this version becomes unreachable — readers may
		// hold it forever, so eager unmapping on the next Sync would
		// pull pages out from under them.
		runtime.AddCleanup(snap, func(unmap func() error) { unmap() }, closer)
	}
	r.snapshotPayload.Add(int64(n)*int64(k)*4 + int64(n)*4)
	r.cur.Store(snap)
	return nil
}

// Sync advances the local copy to the server's published epoch: one
// /v1/delta round trip, or a full bootstrap when the replica has no
// state yet or the server demands a resync. Returns whether a full
// snapshot transfer happened. Copy-on-epoch: readers holding the
// previous ReplicaSnapshot are unaffected.
func (r *Replica) Sync(ctx context.Context) (resynced bool, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.rec == nil {
		return r.syncLocked(ctx, nil)
	}
	tr := trace.New("replica-sync")
	resynced, err = r.syncLocked(trace.NewContext(ctx, tr), tr)
	switch {
	case err != nil:
		tr.Tag("error", err.Error())
	case resynced:
		tr.Tag("outcome", "resync")
	default:
		tr.Tag("outcome", "delta")
	}
	if s := r.cur.Load(); s != nil {
		tr.Tag("epoch", fmt.Sprint(s.Epoch))
	}
	tr.Finish()
	r.rec.Record(tr)
	return resynced, err
}

// syncLocked is Sync's body; tr (possibly nil) collects the apply span
// while the rpc spans come from the client's do via the context.
func (r *Replica) syncLocked(ctx context.Context, tr *trace.Trace) (resynced bool, err error) {
	t0 := time.Now()
	// observe records the wall time of a successful sync under the
	// outcome's histogram (resync transfers the full matrix, a delta
	// patches rows — mixing them would bury the delta signal).
	observe := func(resynced bool) {
		h := r.mSyncDelta
		if resynced {
			h = r.mSyncResync
		}
		if h != nil {
			h.ObserveSince(t0)
		}
	}
	cur := r.cur.Load()
	if cur == nil {
		if err := r.bootstrapLocked(ctx); err != nil {
			return false, err
		}
		r.syncs.Add(1)
		r.resyncs.Add(1)
		observe(true)
		return true, nil
	}
	var dl server.DeltaResponse
	n, err := r.c.do(ctx, http.MethodGet, fmt.Sprintf("/v1/delta?from=%d", cur.Epoch), nil, &dl)
	r.addDeltaBytes(n)
	if err != nil {
		return false, err
	}
	// A changed instance means the server restarted (or was replaced):
	// its epochs belong to a different history, so even a well-formed
	// row delta would patch an unrelated base. Discard and bootstrap.
	if dl.Resync || dl.Instance != cur.Instance {
		if err := r.bootstrapLocked(ctx); err != nil {
			return false, err
		}
		r.syncs.Add(1)
		r.resyncs.Add(1)
		observe(true)
		return true, nil
	}
	if dl.Epoch == cur.Epoch {
		r.syncs.Add(1)
		observe(false)
		return false, nil // already current
	}
	if len(dl.Z) != len(dl.Rows) {
		return false, fmt.Errorf("client: delta carries %d rows but %d value rows", len(dl.Rows), len(dl.Z))
	}
	applyRef := tr.StartSpan("apply")
	tr.SpanTag(applyRef, "rows", fmt.Sprint(len(dl.Rows)))
	defer tr.EndSpan(applyRef)
	next := &ReplicaSnapshot{
		Epoch: dl.Epoch, Instance: cur.Instance, Edges: dl.Edges,
		n: cur.n, k: cur.k,
	}
	elemSize := int64(8)
	if cur.Z != nil {
		z := cur.Z.Clone()
		for i, v := range dl.Rows {
			if int(v) >= cur.n || len(dl.Z[i]) != cur.k {
				return false, fmt.Errorf("client: delta row %d (vertex %d) malformed", i, v)
			}
			copy(z.Row(int(v)), dl.Z[i])
		}
		next.Z = z
	} else {
		// Binary storage: patch a fresh float32 version. The wire
		// carried float32 widened to float64 on decode, so narrowing
		// back is exact — the patched row equals the frame's bytes.
		z := append([]float32(nil), cur.z32...)
		for i, v := range dl.Rows {
			if int(v) >= cur.n || len(dl.Z[i]) != cur.k {
				return false, fmt.Errorf("client: delta row %d (vertex %d) malformed", i, v)
			}
			row := z[int(v)*cur.k : (int(v)+1)*cur.k]
			for j, x := range dl.Z[i] {
				row[j] = float32(x)
			}
		}
		next.z32 = z
		elemSize = 4
	}
	y := append([]int32(nil), cur.Y...)
	for _, l := range dl.Labels {
		if int(l.V) >= len(y) {
			return false, fmt.Errorf("client: delta label vertex %d out of range", l.V)
		}
		y[l.V] = l.Class
	}
	next.Y = y
	r.cur.Store(next)
	r.syncs.Add(1)
	r.rowsApplied.Add(int64(len(dl.Rows)))
	r.deltaPayload.Add(int64(len(dl.Rows))*int64(cur.k)*elemSize +
		int64(len(dl.Rows))*4 + int64(len(dl.Labels))*8)
	observe(false)
	return false, nil
}
