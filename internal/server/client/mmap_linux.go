//go:build linux

package client

import (
	"fmt"
	"os"
	"syscall"

	"repro/internal/wire"
)

// mapFrame maps the spilled snapshot frame read-only and decodes it.
// When the host layout permits zero-copy (little-endian, page-aligned
// mapping — always 4-aligned), the returned frame's sections alias the
// mapping and the returned closer must outlive them: the replica hangs
// it off the snapshot version via a cleanup. Otherwise the decode
// copied everything and the mapping is released here (nil closer).
func mapFrame(path string) (*wire.Frame, func() error, error) {
	file, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer file.Close()
	fi, err := file.Stat()
	if err != nil {
		return nil, nil, err
	}
	if fi.Size() == 0 {
		return nil, nil, fmt.Errorf("client: empty snapshot spill file")
	}
	data, err := syscall.Mmap(int(file.Fd()), 0, int(fi.Size()),
		syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("client: mmap snapshot spill: %w", err)
	}
	f, err := wire.DecodeFrame(data)
	if err != nil {
		syscall.Munmap(data)
		return nil, nil, err
	}
	if !wire.ZeroCopy(data) {
		// Decode fell back to copying; nothing references the pages.
		syscall.Munmap(data)
		return f, nil, nil
	}
	return f, func() error { return syscall.Munmap(data) }, nil
}
