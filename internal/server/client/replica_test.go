package client_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/dyn"
	"repro/internal/graph"
	"repro/internal/labels"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/xrand"
)

// startPrimary builds an embedder + server and returns the embedder
// (for direct state comparison) and a typed client.
func startPrimary(t *testing.T, n, k int, opts dyn.Options) (*dyn.DynamicEmbedder, *client.Client) {
	t.Helper()
	opts.K = k
	d, err := dyn.New(n, labels.SampleSemiSupervised(n, k, 0.5, 61), opts)
	if err != nil {
		t.Fatal(err)
	}
	s := server.New(d, server.Options{})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		if err := s.Close(); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		ts.Close()
	})
	return d, client.New(ts.URL, ts.Client())
}

// mustMatchPrimary asserts the replica state equals the primary's
// published snapshot exactly — the same float bits, labels, epoch, and
// edge count. This is the acceptance bar: a follower fed only deltas
// (resyncing when told to) is indistinguishable from the primary.
func mustMatchPrimary(t *testing.T, rep *client.Replica, d *dyn.DynamicEmbedder) {
	t.Helper()
	got := rep.Snapshot()
	want := d.Snapshot()
	if got == nil {
		t.Fatal("replica has no state")
	}
	if got.Epoch != want.Epoch || got.Instance != want.Instance || got.Edges != want.Edges {
		t.Fatalf("replica at epoch %d/instance %d/%d edges, primary at %d/%d/%d",
			got.Epoch, got.Instance, got.Edges, want.Epoch, want.Instance, want.Edges)
	}
	if got.Z.R != want.Z.R || got.Z.C != want.Z.C {
		t.Fatalf("replica shape %dx%d, primary %dx%d", got.Z.R, got.Z.C, want.Z.R, want.Z.C)
	}
	for i, v := range want.Z.Data {
		if got.Z.Data[i] != v {
			t.Fatalf("replica Z[%d] = %v, primary %v (not bit-identical)", i, got.Z.Data[i], v)
		}
	}
	for v := range want.Y {
		if got.Y[v] != want.Y[v] {
			t.Fatalf("replica label of %d is %d, primary %d", v, got.Y[v], want.Y[v])
		}
	}
}

// TestReplicaFollowsPrimaryExactly is the tentpole acceptance test: a
// replica bootstrapped from /v1/snapshot and then fed only /v1/delta
// responses equals the primary's published Z exactly (same floats)
// after a mixed insert/delete/relabel workload over HTTP — including
// counts-changing relabels that force full-resync epochs. Along the
// way it must actually use both paths: row-wise deltas for the
// edge-only windows, resyncs for the relabel ones.
func TestReplicaFollowsPrimaryExactly(t *testing.T) {
	// n well above the per-round churn, so row deltas stay a small
	// fraction of the matrix and the byte-asymmetry assertion below is
	// about the mechanism, not workload luck.
	const n, k, rounds = 1500, 4, 40
	d, c := startPrimary(t, n, k, dyn.Options{DeltaHistory: 16})
	ctx := context.Background()
	rep := client.NewReplica(c)
	if err := rep.Bootstrap(ctx); err != nil {
		t.Fatal(err)
	}
	mustMatchPrimary(t, rep, d)

	// Concurrent local reads must never block or tear while syncs
	// replace the state underneath them (run with -race).
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		r := xrand.New(67)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if row := rep.Embedding(graph.NodeID(r.Intn(n))); len(row) != k {
				panic("short replica row")
			}
		}
	}()

	r := xrand.New(71)
	var live []graph.Edge
	for round := 0; round < rounds; round++ {
		batch := make([]graph.Edge, 15)
		for i := range batch {
			batch[i] = graph.Edge{
				U: graph.NodeID(r.Intn(n)), V: graph.NodeID(r.Intn(n)),
				W: float32(r.Intn(3) + 1),
			}
		}
		if _, err := c.InsertEdges(ctx, batch); err != nil {
			t.Fatal(err)
		}
		live = append(live, batch...)
		if len(live) > 300 {
			if _, err := c.DeleteEdges(ctx, live[:30]); err != nil {
				t.Fatal(err)
			}
			live = live[30:]
		}
		if round%8 == 7 {
			// A counts-changing relabel: the next delta spanning this
			// epoch must be a resync.
			if _, err := c.UpdateLabels(ctx, []dyn.LabelUpdate{
				{V: graph.NodeID(r.Intn(n)), Class: int32(r.Intn(k))},
			}); err != nil {
				t.Fatal(err)
			}
		}
		// Sync every other round so deltas span multiple epochs too.
		if round%2 == 1 {
			if _, err := rep.Sync(ctx); err != nil {
				t.Fatal(err)
			}
			mustMatchPrimary(t, rep, d)
		}
	}
	close(stop)
	wg.Wait()

	st := rep.Stats()
	if st.Resyncs == 0 {
		t.Fatal("counts-changing relabels never forced a resync")
	}
	if st.RowsApplied == 0 || st.Syncs <= st.Resyncs {
		t.Fatalf("no row-wise syncs happened: %+v", st)
	}
	if st.DeltaBytes == 0 || st.SnapshotBytes == 0 {
		t.Fatalf("byte accounting missing: %+v", st)
	}
	// Per-transfer, a row delta must be far cheaper than a snapshot:
	// that asymmetry is the reason the endpoint exists.
	rowSyncs := st.Syncs - st.Resyncs
	if st.DeltaBytes/rowSyncs*4 >= st.SnapshotBytes/(st.Resyncs+1) {
		t.Fatalf("mean delta not ≪ mean snapshot: %+v", st)
	}
	t.Logf("replica: %d syncs (%d resyncs), %d rows applied, %d delta bytes vs %d snapshot bytes",
		st.Syncs, st.Resyncs, st.RowsApplied, st.DeltaBytes, st.SnapshotBytes)

	// An idle primary yields an empty delta, not a transfer.
	before := rep.Stats().RowsApplied
	if resynced, err := rep.Sync(ctx); err != nil || resynced {
		t.Fatalf("idle sync: resynced=%v err=%v", resynced, err)
	}
	if _, err := rep.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	if rep.Stats().RowsApplied != before {
		t.Fatal("idle syncs applied rows")
	}
	mustMatchPrimary(t, rep, d)
}

// TestReplicaDetectsServerRestart covers the instance check: a
// restarted server restarts its epoch counter, so a replica whose
// local epoch is "covered" by the new history must still discard its
// state and bootstrap — applying the new instance's row deltas onto
// the old instance's base would silently corrupt every untouched row.
func TestReplicaDetectsServerRestart(t *testing.T) {
	const n, k = 80, 3
	ctx := context.Background()
	mkStack := func(seed uint64) (*dyn.DynamicEmbedder, http.Handler) {
		d, err := dyn.New(n, labels.Full(n, k, 79), dyn.Options{K: k})
		if err != nil {
			t.Fatal(err)
		}
		s := server.New(d, server.Options{})
		t.Cleanup(func() { s.Close() })
		r := xrand.New(seed)
		edges := make([]graph.Edge, 120)
		for i := range edges {
			edges[i] = graph.Edge{U: graph.NodeID(r.Intn(n)), V: graph.NodeID(r.Intn(n)), W: 1}
		}
		// Several single-edge batches so both instances sit at an epoch
		// comfortably inside their delta rings.
		for lo := 0; lo < len(edges); lo += 10 {
			if err := d.AddEdges(edges[lo : lo+10]); err != nil {
				t.Fatal(err)
			}
		}
		return d, s.Handler()
	}
	d1, h1 := mkStack(83)
	d2, h2 := mkStack(89) // different data, same shape, fresh epochs
	var current atomic.Pointer[http.Handler]
	current.Store(&h1)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		(*current.Load()).ServeHTTP(w, r)
	}))
	defer ts.Close()

	rep := client.NewReplica(client.New(ts.URL, ts.Client()))
	if err := rep.Bootstrap(ctx); err != nil {
		t.Fatal(err)
	}
	mustMatchPrimary(t, rep, d1)

	// "Restart": the same address now serves instance 2. Advance it a
	// little so the replica's epoch is strictly behind (the lag path a
	// naive epoch-only protocol would mis-serve as a row delta).
	if err := d2.AddEdges([]graph.Edge{{U: 0, V: 1, W: 1}, {U: 2, V: 3, W: 1}}); err != nil {
		t.Fatal(err)
	}
	if d2.Epoch() <= rep.Snapshot().Epoch {
		t.Fatalf("test setup: new instance epoch %d not ahead of replica %d", d2.Epoch(), rep.Snapshot().Epoch)
	}
	current.Store(&h2)
	resynced, err := rep.Sync(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !resynced {
		t.Fatal("replica applied a cross-instance delta instead of resyncing")
	}
	mustMatchPrimary(t, rep, d2)
}

// TestReplicaLagBeyondRing checks the eviction path: a replica left
// behind for more rounds than the ring retains is told to resync and
// still converges exactly.
func TestReplicaLagBeyondRing(t *testing.T) {
	const n, k = 100, 3
	d, c := startPrimary(t, n, k, dyn.Options{DeltaHistory: 4})
	ctx := context.Background()
	rep := client.NewReplica(c)
	if _, err := rep.Sync(ctx); err != nil { // first Sync bootstraps
		t.Fatal(err)
	}
	r := xrand.New(73)
	for round := 0; round < 10; round++ { // 10 epochs ≫ 4 retained
		if _, err := c.InsertEdges(ctx, []graph.Edge{
			{U: graph.NodeID(r.Intn(n)), V: graph.NodeID(r.Intn(n)), W: 1},
		}); err != nil {
			t.Fatal(err)
		}
	}
	resynced, err := rep.Sync(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !resynced {
		t.Fatal("lagging replica was not resynced")
	}
	mustMatchPrimary(t, rep, d)
}
