package client_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/dyn"
	"repro/internal/graph"
	"repro/internal/labels"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/xrand"
)

// startPrimaryWire is startPrimary with a chosen wire format, keeping
// the server around so a second client in a different format can point
// at the same primary.
func startPrimaryWire(t *testing.T, n, k int, opts dyn.Options) (*dyn.DynamicEmbedder, string) {
	t.Helper()
	opts.K = k
	d, err := dyn.New(n, labels.SampleSemiSupervised(n, k, 0.5, 61), opts)
	if err != nil {
		t.Fatal(err)
	}
	s := server.New(d, server.Options{})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		if err := s.Close(); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		ts.Close()
	})
	return d, ts.URL
}

// mustMatchPrimaryQuantized is mustMatchPrimary for a binary-wire
// replica: every local value must equal the primary's bits after the
// documented float32 narrowing — the only transform the wire applies.
func mustMatchPrimaryQuantized(t *testing.T, rep *client.Replica, d *dyn.DynamicEmbedder) {
	t.Helper()
	got := rep.Snapshot()
	want := d.Snapshot()
	if got == nil {
		t.Fatal("replica has no state")
	}
	if got.Epoch != want.Epoch || got.Instance != want.Instance || got.Edges != want.Edges {
		t.Fatalf("replica at epoch %d/instance %d/%d edges, primary at %d/%d/%d",
			got.Epoch, got.Instance, got.Edges, want.Epoch, want.Instance, want.Edges)
	}
	rn, rk := got.Dims()
	if rn != want.Z.R || rk != want.Z.C {
		t.Fatalf("replica shape %dx%d, primary %dx%d", rn, rk, want.Z.R, want.Z.C)
	}
	if got.Z != nil {
		t.Fatal("binary-wire replica holds a float64 matrix; want float32 storage")
	}
	row := make([]float64, rk)
	for v := 0; v < rn; v++ {
		prow := want.Z.Row(v)
		for j, x := range got.CopyRow(v, row) {
			if x != float64(float32(prow[j])) {
				t.Fatalf("replica Z[%d][%d] = %v, primary %v (quantized %v)",
					v, j, x, prow[j], float64(float32(prow[j])))
			}
		}
	}
	for v, want := range want.Y {
		if got.Y[v] != want {
			t.Fatalf("replica Y[%d] = %d, primary %d", v, got.Y[v], want)
		}
	}
}

// TestReplicaBinaryFollowsPrimary drives a binary-wire replica through
// bootstrap (the mmap path on Linux) and a stretch of delta syncs with
// inserts, deletes, and relabels: after every sync the local state must
// be the float32-quantized image of the primary.
func TestReplicaBinaryFollowsPrimary(t *testing.T) {
	const n, k, rounds = 800, 4, 24
	d, base := startPrimaryWire(t, n, k, dyn.Options{DeltaHistory: 16})
	c := client.New(base, nil, client.WithWire(client.Binary))
	ctx := context.Background()
	rep := client.NewReplica(c)
	if err := rep.Bootstrap(ctx); err != nil {
		t.Fatal(err)
	}
	mustMatchPrimaryQuantized(t, rep, d)
	if st := rep.Stats(); st.SnapshotBytes == 0 || st.SnapshotPayloadBytes == 0 {
		t.Fatalf("bootstrap recorded no bytes: %+v", st)
	}

	r := xrand.New(71)
	var live []graph.Edge
	for round := 0; round < rounds; round++ {
		batch := make([]graph.Edge, 12)
		for i := range batch {
			batch[i] = graph.Edge{
				U: graph.NodeID(r.Intn(n)), V: graph.NodeID(r.Intn(n)),
				W: float32(r.Intn(3) + 1),
			}
		}
		if _, err := c.InsertEdges(ctx, batch); err != nil {
			t.Fatal(err)
		}
		live = append(live, batch...)
		if len(live) > 200 {
			if _, err := c.DeleteEdges(ctx, live[:20]); err != nil {
				t.Fatal(err)
			}
			live = live[20:]
		}
		if round%8 == 7 {
			ups := []dyn.LabelUpdate{{V: graph.NodeID(r.Intn(n)), Class: int32(r.Intn(k))}}
			if _, err := c.UpdateLabels(ctx, ups); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := rep.Sync(ctx); err != nil {
			t.Fatal(err)
		}
		mustMatchPrimaryQuantized(t, rep, d)
	}
	st := rep.Stats()
	if st.Syncs == 0 || st.RowsApplied == 0 {
		t.Fatalf("no delta syncs happened: %+v", st)
	}
	if st.DeltaPayloadBytes == 0 || st.DeltaBytes == 0 {
		t.Fatalf("delta byte accounting empty: %+v", st)
	}
	// float32 storage: payload accounts 4 bytes per applied value plus
	// 4 per row id (labels add 8 each; relabels are rare here, so the
	// floor below ignores them).
	if min := st.RowsApplied * int64(k+1) * 4; st.DeltaPayloadBytes < min {
		t.Fatalf("delta payload %d B below the %d B floor for %d rows",
			st.DeltaPayloadBytes, min, st.RowsApplied)
	}
}

// TestReplicaWireBytesBinaryVsJSON bootstraps one replica per wire
// format off the same primary and compares the recorded on-wire bytes:
// binary must be strictly cheaper for both the snapshot and the delta
// stream, and payload accounting must track the storage element size
// (4 B vs 8 B per value).
func TestReplicaWireBytesBinaryVsJSON(t *testing.T) {
	const n, k, rounds = 600, 4, 10
	_, base := startPrimaryWire(t, n, k, dyn.Options{DeltaHistory: 32})
	ctx := context.Background()
	cj := client.New(base, nil)
	cb := client.New(base, nil, client.WithWire(client.Binary))
	r := xrand.New(43)
	// Seed real structure before bootstrapping: an untouched embedding
	// is mostly zeros, which JSON encodes in one byte per value — the
	// snapshot comparison below is about realistic matrices.
	seed := make([]graph.Edge, 4*n)
	for i := range seed {
		seed[i] = graph.Edge{
			U: graph.NodeID(r.Intn(n)), V: graph.NodeID(r.Intn(n)),
			W: float32(r.Intn(3) + 1),
		}
	}
	if _, err := cj.InsertEdges(ctx, seed); err != nil {
		t.Fatal(err)
	}
	rj, rb := client.NewReplica(cj), client.NewReplica(cb)
	if err := rj.Bootstrap(ctx); err != nil {
		t.Fatal(err)
	}
	if err := rb.Bootstrap(ctx); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < rounds; round++ {
		batch := make([]graph.Edge, 20)
		for i := range batch {
			batch[i] = graph.Edge{
				U: graph.NodeID(r.Intn(n)), V: graph.NodeID(r.Intn(n)),
				W: float32(r.Intn(3) + 1),
			}
		}
		if _, err := cj.InsertEdges(ctx, batch); err != nil {
			t.Fatal(err)
		}
		if _, err := rj.Sync(ctx); err != nil {
			t.Fatal(err)
		}
		if _, err := rb.Sync(ctx); err != nil {
			t.Fatal(err)
		}
	}
	sj, sb := rj.Stats(), rb.Stats()
	if sj.Resyncs > 0 || sb.Resyncs > 0 {
		t.Fatalf("unexpected resyncs (json %d, binary %d): byte comparison would be apples to oranges",
			sj.Resyncs, sb.Resyncs)
	}
	if sb.RowsApplied != sj.RowsApplied {
		t.Fatalf("replicas applied different row counts: json %d, binary %d", sj.RowsApplied, sb.RowsApplied)
	}
	if sb.SnapshotBytes >= sj.SnapshotBytes {
		t.Errorf("binary snapshot cost %d B, JSON %d B — want cheaper", sb.SnapshotBytes, sj.SnapshotBytes)
	}
	if sb.DeltaBytes >= sj.DeltaBytes {
		t.Errorf("binary deltas cost %d B, JSON %d B — want cheaper", sb.DeltaBytes, sj.DeltaBytes)
	}
	// Same rows applied, half-width elements: binary payload accounting
	// must come in strictly below JSON's (4+4 vs 8+4 bytes per value
	// and id; label bytes are identical).
	if sb.DeltaPayloadBytes >= sj.DeltaPayloadBytes {
		t.Errorf("binary delta payload %d B, JSON %d B — want smaller elements",
			sb.DeltaPayloadBytes, sj.DeltaPayloadBytes)
	}
	// Both sides of the split must be populated — the counters are
	// independent measurements, not one derived from the other.
	if sj.DeltaPayloadBytes == 0 || sb.DeltaPayloadBytes == 0 ||
		sj.SnapshotPayloadBytes == 0 || sb.SnapshotPayloadBytes == 0 {
		t.Errorf("payload accounting has empty counters: json %+v binary %+v", sj, sb)
	}
}

// TestBinaryClientFallsBackToJSON points a binary-wire replica at a
// server that ignores Accept and answers JSON — the pre-binary world.
// Bootstrap and reads must work transparently off the JSON decode path.
func TestBinaryClientFallsBackToJSON(t *testing.T) {
	snap := server.SnapshotResponse{
		Epoch: 7, Instance: 99, N: 2, K: 2, Edges: 3,
		Y: []int32{0, 1},
		Z: [][]float64{{0.125, -1.5}, {2.25, 3.75}},
	}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		switch r.URL.Path {
		case "/v1/snapshot":
			json.NewEncoder(w).Encode(snap)
		case "/v1/delta":
			json.NewEncoder(w).Encode(server.DeltaResponse{
				From: 7, Epoch: 7, Instance: 99,
			})
		default:
			http.NotFound(w, r)
		}
	}))
	defer ts.Close()
	c := client.New(ts.URL, nil, client.WithWire(client.Binary))
	rep := client.NewReplica(c)
	ctx := context.Background()
	if err := rep.Bootstrap(ctx); err != nil {
		t.Fatal(err)
	}
	s := rep.Snapshot()
	if s == nil || s.Epoch != 7 || s.Z == nil {
		t.Fatalf("fallback bootstrap state: %+v", s)
	}
	rn, rk := s.Dims()
	if rn != 2 || rk != 2 {
		t.Fatalf("fallback dims %dx%d", rn, rk)
	}
	for v := 0; v < 2; v++ {
		row := s.CopyRow(v, make([]float64, rk))
		for j := range row {
			if row[j] != snap.Z[v][j] {
				t.Fatalf("fallback Z[%d][%d] = %v, want %v (no quantization on JSON)", v, j, row[j], snap.Z[v][j])
			}
		}
	}
	if resynced, err := rep.Sync(ctx); err != nil || resynced {
		t.Fatalf("idle sync: resynced=%v err=%v", resynced, err)
	}
}
