// Package client is the typed Go client for the GEE serving API
// (internal/server). Every mutation call blocks until the server has
// published the operations and returns the ack epoch: a successful
// InsertEdges means any subsequent Embedding or Snapshot read at or
// after that epoch reflects the inserted edges.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/dyn"
	"repro/internal/graph"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/trace"
	"repro/internal/wire"
)

// ErrBacklog reports a 429: the server's ingest queue was full. The
// request was not applied; retry after a pause.
var ErrBacklog = errors.New("client: server ingest queue full (429)")

// Format selects how the client asks the server to encode the large
// row-carrying responses (snapshot, delta, batched embeddings).
type Format int

const (
	// JSON (the default) is the debug-friendly text path: float64 rows
	// in shortest round-trip decimal — re-reading recovers the exact
	// published bits.
	JSON Format = iota
	// Binary negotiates compact wire frames (internal/wire): dense
	// float32 snapshots a replica can mmap directly, and sparse delta
	// rows at a fraction of the JSON bytes — decoded transparently
	// into the same response structs. Falls back to JSON automatically
	// against a server that does not speak it.
	Binary
)

func (f Format) String() string {
	if f == Binary {
		return "binary"
	}
	return "json"
}

// Option configures a Client.
type Option func(*Client)

// WithWire selects the wire format for large row responses.
func WithWire(f Format) Option { return func(c *Client) { c.wire = f } }

// Client talks to one serving endpoint. Safe for concurrent use.
type Client struct {
	base string
	hc   *http.Client
	wire Format
}

// New builds a client for a base URL like "http://127.0.0.1:8080". A
// nil http.Client selects http.DefaultClient.
func New(base string, hc *http.Client, opts ...Option) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	c := &Client{base: strings.TrimRight(base, "/"), hc: hc}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Wire reports the client's negotiated wire format for row responses.
func (c *Client) Wire() Format { return c.wire }

// countingReader counts bytes as they are consumed — the replica's
// delta-vs-snapshot payload accounting.
type countingReader struct {
	r io.Reader
	n int64
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n += int64(n)
	return n, err
}

// acceptValue is what a binary-mode client sends: frames preferred,
// JSON accepted — an old server that ignores the first type still
// answers something the client can parse.
const acceptValue = wire.ContentType + ", application/json"

// isFrame reports whether a response Content-Type is the binary frame
// type.
func isFrame(contentType string) bool {
	mt, _, _ := strings.Cut(contentType, ";")
	return strings.EqualFold(strings.TrimSpace(mt), wire.ContentType)
}

// statusError is a non-200, non-429 response, carrying the status code
// so callers can branch on it (the replica's partition probe treats a
// 404 as "server predates sharding", not as a failure).
type statusError struct {
	code int
	msg  string
}

func (e *statusError) Error() string { return e.msg }

// isNotFound reports whether err is an HTTP 404 from this client.
func isNotFound(err error) bool {
	var se *statusError
	return errors.As(err, &se) && se.code == http.StatusNotFound
}

// checkStatus translates a non-200 response into an error (consuming
// the body). A nil return means the caller owns a 200 body.
func checkStatus(resp *http.Response, method, path string) error {
	if resp.StatusCode == http.StatusOK {
		return nil
	}
	defer io.Copy(io.Discard, resp.Body)
	if resp.StatusCode == http.StatusTooManyRequests {
		return ErrBacklog
	}
	var e server.ErrorResponse
	if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
		return &statusError{code: resp.StatusCode,
			msg: fmt.Sprintf("client: %s %s: %s (%d)", method, path, e.Error, resp.StatusCode)}
	}
	return &statusError{code: resp.StatusCode,
		msg: fmt.Sprintf("client: %s %s: status %d", method, path, resp.StatusCode)}
}

// do runs one request and decodes the response into out, translating
// error statuses. A binary-mode client negotiates wire frames for the
// row-carrying endpoints and decodes them transparently — out is
// filled either way; the response's Content-Type decides the decoder.
// It returns the number of response-body bytes consumed (0 for error
// statuses), so callers that care about wire cost — the Replica — can
// account for it.
func (c *Client) do(ctx context.Context, method, path string, body any, out any) (int64, error) {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return 0, err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.wire == Binary {
		req.Header.Set("Accept", acceptValue)
	}
	// Propagate (or mint) the trace id so the server's recorded trace
	// shares an id with the caller's: a slow-request line on the server
	// is directly joinable with client-side logs. When the context
	// carries a live trace, the call also records an rpc span in it.
	tr := trace.FromContext(ctx)
	rpc := tr.StartSpan("rpc")
	tr.SpanTag(rpc, "path", path)
	if tr != nil {
		req.Header.Set(trace.Header, tr.ID().String())
	} else {
		req.Header.Set(trace.Header, trace.NewID().String())
	}
	defer tr.EndSpan(rpc)
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if err := checkStatus(resp, method, path); err != nil {
		return 0, err
	}
	cr := &countingReader{r: resp.Body}
	if out == nil {
		io.Copy(io.Discard, cr)
		return cr.n, nil
	}
	if isFrame(resp.Header.Get("Content-Type")) {
		f, err := wire.ReadFrame(cr)
		if err != nil {
			return cr.n, err
		}
		return cr.n, frameInto(f, out)
	}
	if err := json.NewDecoder(cr).Decode(out); err != nil {
		return cr.n, err
	}
	return cr.n, nil
}

// getStream issues a GET and hands back the status-checked response
// body with its Content-Type — the replica's spill-to-file bootstrap
// path, which must see the raw frame bytes rather than a decoded copy.
// The caller owns Close.
func (c *Client) getStream(ctx context.Context, path string) (io.ReadCloser, string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, "", err
	}
	if c.wire == Binary {
		req.Header.Set("Accept", acceptValue)
	}
	// Same id contract as do; no rpc span here — the body outlives the
	// call, so its extent is the caller's to measure.
	if tr := trace.FromContext(ctx); tr != nil {
		req.Header.Set(trace.Header, tr.ID().String())
	} else {
		req.Header.Set(trace.Header, trace.NewID().String())
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, "", err
	}
	if err := checkStatus(resp, http.MethodGet, path); err != nil {
		resp.Body.Close()
		return nil, "", err
	}
	return resp.Body, resp.Header.Get("Content-Type"), nil
}

func toWire(edges []graph.Edge) []server.EdgeWire {
	wire := make([]server.EdgeWire, len(edges))
	for i, e := range edges {
		w := e.W
		// The weight goes on the wire explicitly (the server treats only
		// an *omitted* weight as 1 and rejects explicit zeros, so the
		// client must not hide what the caller passed).
		wire[i] = server.EdgeWire{U: e.U, V: e.V, W: &w}
	}
	return wire
}

// InsertEdges inserts a batch of edges and returns the publish ack.
func (c *Client) InsertEdges(ctx context.Context, edges []graph.Edge) (server.MutationResponse, error) {
	var out server.MutationResponse
	_, err := c.do(ctx, http.MethodPost, "/v1/edges", server.MutationRequest{Edges: toWire(edges)}, &out)
	return out, err
}

// DeleteEdges deletes a batch of live edges (exact match) and returns
// the publish ack.
func (c *Client) DeleteEdges(ctx context.Context, edges []graph.Edge) (server.MutationResponse, error) {
	var out server.MutationResponse
	_, err := c.do(ctx, http.MethodDelete, "/v1/edges", server.MutationRequest{Edges: toWire(edges)}, &out)
	return out, err
}

// UpdateLabels applies a batch of label reassignments and returns the
// publish ack.
func (c *Client) UpdateLabels(ctx context.Context, ups []dyn.LabelUpdate) (server.MutationResponse, error) {
	wire := make([]server.LabelWire, len(ups))
	for i, u := range ups {
		wire[i] = server.LabelWire{V: u.V, Class: u.Class}
	}
	var out server.MutationResponse
	_, err := c.do(ctx, http.MethodPost, "/v1/labels", server.MutationRequest{Labels: wire}, &out)
	return out, err
}

// Embedding fetches vertex v's row of the current published snapshot.
func (c *Client) Embedding(ctx context.Context, v graph.NodeID) (server.EmbeddingResponse, error) {
	var out server.EmbeddingResponse
	_, err := c.do(ctx, http.MethodGet, fmt.Sprintf("/v1/embedding/%d", v), nil, &out)
	return out, err
}

// Embeddings fetches the rows of several vertices in one request; all
// rows come from the same published snapshot (per-vertex Embedding
// calls can straddle a publish). Rows[i] belongs to vs[i].
func (c *Client) Embeddings(ctx context.Context, vs []graph.NodeID) (server.BatchEmbeddingResponse, error) {
	var out server.BatchEmbeddingResponse
	// graph.NodeID is an alias of uint32, so the slice is the wire type.
	_, err := c.do(ctx, http.MethodPost, "/v1/embeddings", server.BatchEmbeddingRequest{Vs: vs}, &out)
	return out, err
}

// Neighbors fetches the top-k vertices nearest to req.V in the
// published embedding, ascending by distance. Zero-value request
// fields select the server defaults ("l2", mode "exact"); set Mode to
// "approx" (optionally with NProbe) for the IVF index — the response's
// Mode and IndexEpoch report what actually answered, since an approx
// request is served exactly while the index is cold and from a
// slightly stale epoch while it rebuilds.
func (c *Client) Neighbors(ctx context.Context, req server.NeighborsRequest) (server.NeighborsResponse, error) {
	var out server.NeighborsResponse
	_, err := c.do(ctx, http.MethodPost, "/v1/neighbors", req, &out)
	return out, err
}

// Delta fetches the epoch delta from `from` to the currently published
// epoch. A response with Resync set means the caller must refetch the
// full Snapshot instead (see server.DeltaResponse).
func (c *Client) Delta(ctx context.Context, from uint64) (server.DeltaResponse, error) {
	var out server.DeltaResponse
	_, err := c.do(ctx, http.MethodGet, fmt.Sprintf("/v1/delta?from=%d", from), nil, &out)
	return out, err
}

// Snapshot fetches the whole current published snapshot.
func (c *Client) Snapshot(ctx context.Context) (server.SnapshotResponse, error) {
	var out server.SnapshotResponse
	_, err := c.do(ctx, http.MethodGet, "/v1/snapshot", nil, &out)
	return out, err
}

// Partition fetches the serving tier's shard layout. An unsharded
// server answers a trivial single-shard partition, so a client probes
// this once and then knows whether /v1/snapshot and /v1/delta speak
// the whole-matrix protocol or require per-shard sections (?shard=).
func (c *Client) Partition(ctx context.Context) (shard.Meta, error) {
	var out shard.Meta
	_, err := c.do(ctx, http.MethodGet, "/v1/partition", nil, &out)
	return out, err
}

// SnapshotShard fetches shard s's section of a sharded server's
// snapshot: the shard's owned row window only, with Lo carrying the
// window's global row offset (implicit on the binary wire — use
// Partition's bounds). Against an unsharded server only s == 0 is
// valid and the response is the whole snapshot.
func (c *Client) SnapshotShard(ctx context.Context, s int) (server.SnapshotResponse, error) {
	var out server.SnapshotResponse
	_, err := c.do(ctx, http.MethodGet, fmt.Sprintf("/v1/snapshot?shard=%d", s), nil, &out)
	return out, err
}

// DeltaShard fetches shard s's epoch delta from `from` to that shard's
// currently published epoch. Row ids are global, restricted to the
// shard's owned window.
func (c *Client) DeltaShard(ctx context.Context, s int, from uint64) (server.DeltaResponse, error) {
	var out server.DeltaResponse
	_, err := c.do(ctx, http.MethodGet, fmt.Sprintf("/v1/delta?from=%d&shard=%d", from, s), nil, &out)
	return out, err
}

// Health fetches /healthz.
func (c *Client) Health(ctx context.Context) (server.HealthResponse, error) {
	var out server.HealthResponse
	_, err := c.do(ctx, http.MethodGet, "/healthz", nil, &out)
	return out, err
}

// Stats fetches /statsz.
func (c *Client) Stats(ctx context.Context) (server.StatsResponse, error) {
	var out server.StatsResponse
	_, err := c.do(ctx, http.MethodGet, "/statsz", nil, &out)
	return out, err
}
