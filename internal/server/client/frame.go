package client

import (
	"fmt"

	"repro/internal/server"
	"repro/internal/wire"
)

// Conversions from decoded wire frames to the JSON response structs,
// so a binary-mode client is a drop-in replacement: callers see the
// same types whichever format the server answered with. Rows widen
// float32 → float64 exactly (every float32 is representable), so a
// value surviving binary → float64 → float32 round trips bit-exactly.

// rowsToF64 converts a frame's float32 payload into per-row float64
// slices over one backing array.
func rowsToF64(rows []float32, n, k int) [][]float64 {
	out := make([][]float64, n)
	flat := make([]float64, n*k)
	for i, x := range rows {
		flat[i] = float64(x)
	}
	for i := range out {
		out[i] = flat[i*k : (i+1)*k : (i+1)*k]
	}
	return out
}

func frameLabels(ls []wire.Label) []server.LabelWire {
	if len(ls) == 0 {
		return nil
	}
	out := make([]server.LabelWire, len(ls))
	for i, l := range ls {
		out[i] = server.LabelWire{V: l.V, Class: l.Class}
	}
	return out
}

// frameInto fills one of the row-carrying response structs from a
// frame, validating that the frame kind and shape match what the
// caller asked for.
func frameInto(f *wire.Frame, out any) error {
	switch o := out.(type) {
	case *server.SnapshotResponse:
		if f.Kind != wire.KindSnapshot {
			return fmt.Errorf("client: frame kind %d answering a snapshot request", f.Kind)
		}
		if f.NRows != f.N || f.RowIDs != nil || uint32(len(f.Y)) != f.N {
			return fmt.Errorf("client: snapshot frame shape n=%d rows=%d ids=%d labels=%d",
				f.N, f.NRows, len(f.RowIDs), len(f.Y))
		}
		n, k := int(f.N), int(f.K)
		o.Epoch, o.Instance = f.Epoch, f.Instance
		o.N, o.K, o.Edges = n, k, f.Edges
		o.Y = append([]int32(nil), f.Y...)
		o.Z = rowsToF64(f.Rows, n, k)
		return nil
	case *server.DeltaResponse:
		if f.Kind != wire.KindDelta {
			return fmt.Errorf("client: frame kind %d answering a delta request", f.Kind)
		}
		o.From, o.Epoch, o.Instance = f.From, f.Epoch, f.Instance
		o.Resync = f.Resync
		if f.Resync {
			return nil
		}
		if int(f.NRows) > 0 && len(f.RowIDs) != int(f.NRows) {
			return fmt.Errorf("client: delta frame carries %d rows but %d ids", f.NRows, len(f.RowIDs))
		}
		o.Edges = f.Edges
		o.Labels = frameLabels(f.Labels)
		o.Rows = append([]uint32(nil), f.RowIDs...)
		o.Z = rowsToF64(f.Rows, int(f.NRows), int(f.K))
		return nil
	case *server.BatchEmbeddingResponse:
		if f.Kind != wire.KindEmbeddings {
			return fmt.Errorf("client: frame kind %d answering an embeddings request", f.Kind)
		}
		o.Epoch = f.Epoch
		o.Rows = rowsToF64(f.Rows, int(f.NRows), int(f.K))
		return nil
	default:
		return fmt.Errorf("client: server sent a binary frame for %T, which has no frame form", out)
	}
}
