//go:build !linux

package client

import (
	"os"

	"repro/internal/wire"
)

// mapFrame decodes the spilled snapshot frame into memory — the
// portable fallback for hosts without the mmap fast path. The nil
// closer tells the caller nothing aliases the file.
func mapFrame(path string) (*wire.Frame, func() error, error) {
	file, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer file.Close()
	f, err := wire.ReadFrame(file)
	if err != nil {
		return nil, nil, err
	}
	return f, nil, nil
}
