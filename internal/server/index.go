package server

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/dyn"
	"repro/internal/mat"
	"repro/internal/metrics"
)

// The approximate-neighbor read path. An IVF index is built over one
// published snapshot and answers `mode: "approx"` /v1/neighbors queries
// from it. Publishes outpace index builds by design (a build clusters
// the whole matrix; a publish is one copy-on-epoch), so the cache is
// deliberately stale-tolerant: a query observing a newer published
// epoch kicks exactly one asynchronous rebuild and is answered from the
// previous index meanwhile — the response carries the epoch actually
// searched. While no index exists yet (cold start, or the matrix is
// below the exact threshold where a scan is cheaper than probing), the
// query falls back to the exact scan over the live snapshot.

// IndexOptions configures the /v1/neighbors approximate index.
type IndexOptions struct {
	// Lists and NProbe pass through to cluster.IVFOptions (0 selects
	// the cluster defaults: ~sqrt(n) lists, max(4, lists/8) probes).
	Lists  int
	NProbe int
	// ExactRows is the row count under which no index is built and
	// approx requests are answered exactly from the live snapshot.
	// 0 selects cluster.DefaultIVFExactRows; negative always indexes.
	ExactRows int
	// Seed drives the k-means partition (rebuilds are deterministic
	// per snapshot for a given seed).
	Seed uint64
}

// IndexStats reports the approximate index's state in /statsz.
type IndexStats struct {
	// Indexing reports whether this server maintains an index at all
	// (n is at or above the exact threshold). False means every
	// approx request is served by the exact scan, permanently — which
	// a client measuring recall must distinguish from a cold index
	// whose first build is merely still in flight.
	Indexing bool
	// Builds counts completed index builds this server lifetime.
	Builds int64
	// Epoch is the snapshot epoch the current index was built from
	// (0 when no index has been built yet).
	Epoch uint64
	// Lists is the current index's inverted-list count.
	Lists int
	// Stale reports whether the published epoch has moved past the
	// current index (a rebuild is pending or in flight).
	Stale bool
}

// builtIndex pins one IVF index to the snapshot it answers from: query
// rows must come from the same epoch the lists were built on.
type builtIndex struct {
	snap *dyn.Snapshot
	ivf  *cluster.IVF
}

// indexCache holds the current index and the single-flight rebuild
// state. Lock-free on the read side: Search-path loads are one atomic
// pointer read.
type indexCache struct {
	d       *dyn.DynamicEmbedder
	workers int
	opts    IndexOptions
	// lo, hi is the embedder's owned row window: the index is built
	// over the owned view of the snapshot (rows [lo, hi)), so a sharded
	// server indexes only rows it is the authority for. Search results
	// are view-relative; callers add lo. Unsharded: [0, n).
	lo, hi  int
	cur     atomic.Pointer[builtIndex]
	buildWG sync.WaitGroup
	buildMu sync.Mutex // serializes kick-off/close checks, not builds-in-progress reads
	pending bool
	closed  bool
	builds  atomic.Int64

	// mBuild times completed index builds (nil until instrument).
	mBuild *metrics.Histogram
}

func newIndexCache(d *dyn.DynamicEmbedder, workers int, opts IndexOptions) *indexCache {
	if opts.ExactRows == 0 {
		opts.ExactRows = cluster.DefaultIVFExactRows
	}
	lo, hi := d.Owned()
	return &indexCache{d: d, workers: workers, opts: opts, lo: lo, hi: hi}
}

// view returns the owned-row window of snap's matrix — the rows this
// embedder publishes — as a borrowed slice of the immutable snapshot
// (no copy). Row i of the view is global row i+lo.
func (ic *indexCache) view(snap *dyn.Snapshot) *mat.Dense {
	k := snap.Z.C
	return &mat.Dense{R: ic.hi - ic.lo, C: k, Data: snap.Z.Data[ic.lo*k : ic.hi*k]}
}

// current returns the freshest built index — possibly behind snap's
// epoch, nil while cold — and, when it trails snap, kicks one
// asynchronous rebuild against snap. Never blocks on a build. The
// comparisons are ordinal, not equality: a request that loaded its
// snapshot just before a publish-plus-rebuild landed must neither be
// answered by the *newer* index (IndexEpoch would exceed the
// response's Epoch, breaking the staleness contract — it falls back
// to exact on its own snapshot instead) nor kick a rebuild for its
// older epoch.
func (ic *indexCache) current(snap *dyn.Snapshot) *builtIndex {
	if ic.opts.ExactRows > 0 && ic.hi-ic.lo < ic.opts.ExactRows {
		return nil
	}
	idx := ic.cur.Load()
	if idx == nil || idx.snap.Epoch < snap.Epoch {
		ic.kick()
	}
	if idx != nil && idx.snap.Epoch > snap.Epoch {
		return nil
	}
	return idx
}

// kick starts a rebuild unless one is already in flight (single
// flight: concurrent stale readers must not pile up builds) or the
// cache is closed. The build clusters the *freshest* published
// snapshot, not the one the triggering query held — under sustained
// ingest many epochs publish during one build, and anchoring on the
// trigger's snapshot would leave every finished build further behind
// than it needs to be.
func (ic *indexCache) kick() {
	ic.buildMu.Lock()
	if ic.pending || ic.closed {
		ic.buildMu.Unlock()
		return
	}
	ic.pending = true
	ic.buildWG.Add(1)
	ic.buildMu.Unlock()
	go func() {
		defer ic.buildWG.Done()
		t0 := time.Now()
		snap := ic.d.Snapshot()
		ivf := cluster.BuildIVF(ic.workers, ic.view(snap), cluster.IVFOptions{
			Lists:     ic.opts.Lists,
			NProbe:    ic.opts.NProbe,
			ExactRows: -1, // the threshold gate already ran in current()
			Seed:      ic.opts.Seed,
		})
		// Builds are single-flight, so this store cannot race another
		// builder — but it must still never regress the cache to an
		// older epoch.
		if old := ic.cur.Load(); old == nil || old.snap.Epoch < snap.Epoch {
			ic.cur.Store(&builtIndex{snap: snap, ivf: ivf})
		}
		ic.builds.Add(1)
		if ic.mBuild != nil {
			ic.mBuild.ObserveSince(t0)
		}
		ic.buildMu.Lock()
		ic.pending = false
		ic.buildMu.Unlock()
	}()
}

// close refuses further kicks, then waits out any in-flight build (it
// touches only immutable snapshots, but it must not outlive Close into
// tests or process teardown). The gate matters even though Shutdown
// stops accepting connections first: an expired shutdown context
// returns from http.Shutdown while handlers are still running, and a
// late kick must neither leak its goroutine nor Add to a WaitGroup
// being waited on — a kick either acquired the lock before close (its
// Add is covered by the Wait) or observes closed and no-ops.
func (ic *indexCache) close() {
	ic.buildMu.Lock()
	ic.closed = true
	ic.buildMu.Unlock()
	ic.buildWG.Wait()
}

// instrument registers the index cache's instruments. Staleness is
// exposed as the epoch gap (published minus indexed), not a boolean:
// a dashboard wants to see the index fall behind, not just that it has.
func (ic *indexCache) instrument(reg *metrics.Registry, labels ...metrics.Label) {
	ic.mBuild = reg.Histogram("gee_index_build_seconds",
		"Wall time of one completed IVF index build.",
		metrics.DefLatencyBuckets, labels...)
	reg.CounterFunc("gee_index_builds_total",
		"Completed IVF index builds this server lifetime.",
		func() float64 { return float64(ic.builds.Load()) }, labels...)
	reg.GaugeFunc("gee_index_staleness_epochs",
		"Published epochs the approximate index trails by (0 = fresh or cold).",
		func() float64 {
			idx := ic.cur.Load()
			if idx == nil {
				return 0
			}
			pub := ic.d.Epoch()
			if pub <= idx.snap.Epoch {
				return 0
			}
			return float64(pub - idx.snap.Epoch)
		}, labels...)
	reg.GaugeFunc("gee_index_epoch",
		"Snapshot epoch the current approximate index was built from (0 = cold).",
		func() float64 {
			if idx := ic.cur.Load(); idx != nil {
				return float64(idx.snap.Epoch)
			}
			return 0
		}, labels...)
}

func (ic *indexCache) stats() IndexStats {
	st := IndexStats{
		Indexing: ic.opts.ExactRows <= 0 || ic.hi-ic.lo >= ic.opts.ExactRows,
		Builds:   ic.builds.Load(),
	}
	if idx := ic.cur.Load(); idx != nil {
		st.Epoch = idx.snap.Epoch
		st.Lists = idx.ivf.Lists()
		st.Stale = ic.d.Epoch() != idx.snap.Epoch
	}
	return st
}
