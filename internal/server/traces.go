// GET /debug/traces: the JSON view over the request-trace flight
// recorder — the most recent finished traces plus the slowest-retained
// duration buckets, so the one slow write that happened an hour ago is
// still inspectable after a million fast requests. The wire types are
// exported because geeload decodes them for its post-load report.

package server

import (
	"net/http"
	"time"

	"repro/internal/trace"
)

// SpanWire is one pipeline stage inside a dumped trace. Offsets and
// durations are microseconds from the trace's start.
type SpanWire struct {
	Name    string            `json:"name"`
	StartUS int64             `json:"start_us"`
	DurUS   int64             `json:"dur_us"`
	Tags    map[string]string `json:"tags,omitempty"`
}

// TraceWire is one finished trace in a /debug/traces dump.
type TraceWire struct {
	ID    string            `json:"id"`
	Name  string            `json:"name"`
	Start time.Time         `json:"start"`
	DurUS int64             `json:"dur_us"`
	Tags  map[string]string `json:"tags,omitempty"`
	Spans []SpanWire        `json:"spans,omitempty"`
}

// BucketWire is one slowest-retained shelf: traces of at least MinUS
// end-to-end, surviving eviction by faster traffic.
type BucketWire struct {
	MinUS  int64       `json:"min_us"`
	Traces []TraceWire `json:"traces"`
}

// TracesResponse is the body of GET /debug/traces. An optional ?name=
// query filters both sections to traces whose root name matches
// exactly (route patterns, e.g. "POST /v1/edges").
type TracesResponse struct {
	Recent  []TraceWire  `json:"recent"`
	Buckets []BucketWire `json:"buckets"`
}

func tagMap(tags []trace.Tag) map[string]string {
	if len(tags) == 0 {
		return nil
	}
	m := make(map[string]string, len(tags))
	for _, t := range tags {
		m[t.Key] = t.Value
	}
	return m
}

func toTraceWire(t *trace.Trace) TraceWire {
	tw := TraceWire{
		ID:    t.ID().String(),
		Name:  t.Name(),
		Start: t.Begin(),
		DurUS: t.Duration().Microseconds(),
		Tags:  tagMap(t.Tags()),
	}
	for _, sp := range t.Spans() {
		tw.Spans = append(tw.Spans, SpanWire{
			Name:    sp.Name,
			StartUS: sp.Start.Microseconds(),
			DurUS:   sp.Duration().Microseconds(),
			Tags:    tagMap(sp.Tags),
		})
	}
	return tw
}

func toTraceWires(ts []*trace.Trace, name string) []TraceWire {
	out := make([]TraceWire, 0, len(ts))
	for _, t := range ts {
		if name != "" && t.Name() != name {
			continue
		}
		out = append(out, toTraceWire(t))
	}
	return out
}

func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	rec := s.sm.rec
	if rec == nil {
		writeError(w, http.StatusNotFound, "tracing disabled (server started with DisableTracing)")
		return
	}
	name := r.URL.Query().Get("name")
	resp := TracesResponse{Recent: toTraceWires(rec.Recent(), name)}
	for _, b := range rec.Buckets() {
		resp.Buckets = append(resp.Buckets, BucketWire{
			MinUS:  b.Min.Microseconds(),
			Traces: toTraceWires(b.Traces, name),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}
