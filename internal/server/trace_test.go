package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dyn"
	"repro/internal/trace"
)

// writeStages are the pipeline stages every acked write's trace must
// decompose into (plus the handler-side "ack" hop).
var writeStages = []string{"queue", "fold", "publish", "ack"}

// TestWriteTracePropagation is the tentpole acceptance test, run under
// -race in CI: 200 concurrent writes, each under its own client-minted
// trace id. Every ack's retained trace must carry all pipeline stages,
// closed, in order, and the stage durations must sum to within the
// wrapper-measured end-to-end latency (the stages are contiguous
// sub-intervals of the request, so overshooting it means double
// counting).
func TestWriteTracePropagation(t *testing.T) {
	d := newEmbedder(t, 512, 4, dyn.Options{})
	s := New(d, Options{Coalescer: CoalescerOptions{MaxDelay: time.Millisecond}, TraceBuffer: 512})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const writers = 200
	ids := make([]trace.ID, writers)
	e2e := make([]time.Duration, writers)
	var wg sync.WaitGroup
	var failed atomic.Int64
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := trace.NewID()
			ids[i] = id
			body := fmt.Sprintf(`{"edges":[{"u":%d,"v":%d}]}`, i, (i+1)%512)
			req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/edges", strings.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			req.Header.Set(trace.Header, id.String())
			t0 := time.Now()
			resp, err := http.DefaultClient.Do(req)
			e2e[i] = time.Since(t0)
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				failed.Add(1)
			}
		}(i)
	}
	wg.Wait()
	if n := failed.Load(); n > 0 {
		t.Fatalf("%d writes not acked 200", n)
	}

	for i, id := range ids {
		tr := s.sm.rec.Find(id)
		if tr == nil {
			t.Fatalf("write %d: trace %v not retained (recorder too small for the test?)", i, id)
		}
		if tr.Duration() <= 0 {
			t.Fatalf("write %d: trace not finished", i)
		}
		var sum time.Duration
		prevEnd := time.Duration(-1)
		for _, stage := range writeStages {
			sp, ok := tr.Span(stage)
			if !ok {
				t.Fatalf("write %d: trace %v missing stage %q (spans: %v)", i, id, stage, tr.Spans())
			}
			if sp.End < sp.Start {
				t.Fatalf("write %d: stage %q not closed: [%v,%v]", i, stage, sp.Start, sp.End)
			}
			if sp.Start < prevEnd {
				t.Fatalf("write %d: stage %q starts at %v before previous stage ended (%v)",
					i, stage, sp.Start, prevEnd)
			}
			prevEnd = sp.End
			sum += sp.Duration()
		}
		// The stages are disjoint sub-intervals of the request, so their
		// sum is bounded by the trace duration, which in turn is inside
		// the client-measured round trip.
		if sum > tr.Duration() {
			t.Errorf("write %d: stage sum %v exceeds trace duration %v", i, sum, tr.Duration())
		}
		if tr.Duration() > e2e[i] {
			t.Errorf("write %d: trace duration %v exceeds client-measured %v", i, tr.Duration(), e2e[i])
		}
	}

	// The per-stage histograms saw every stage of every write.
	var b strings.Builder
	if err := s.Metrics().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	for _, stage := range writeStages {
		want := fmt.Sprintf(`gee_write_stage_seconds_count{stage=%q} %d`, stage, writers)
		if !strings.Contains(b.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestTraceStageSumMatchesAckWait pins the 5%-decomposition acceptance
// criterion on a write slow enough to measure: with a deliberately
// large MaxDelay the queue span dominates, and the four stage
// durations must sum to within 5% of the submit-to-ack wall time.
func TestTraceStageSumMatchesAckWait(t *testing.T) {
	d := newEmbedder(t, 256, 4, dyn.Options{})
	s := New(d, Options{Coalescer: CoalescerOptions{MaxDelay: 60 * time.Millisecond}})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	id := trace.NewID()
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/edges",
		strings.NewReader(`{"edges":[{"u":1,"v":2}]}`))
	req.Header.Set(trace.Header, id.String())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	tr := s.sm.rec.Find(id)
	if tr == nil {
		t.Fatal("trace not retained")
	}
	queue, _ := tr.Span("queue")
	ack, ok := tr.Span("ack")
	if !ok {
		t.Fatalf("spans: %v", tr.Spans())
	}
	wall := ack.End - queue.Start // submit instant → ack received
	var sum time.Duration
	for _, stage := range writeStages {
		sp, ok := tr.Span(stage)
		if !ok {
			t.Fatalf("missing stage %q", stage)
		}
		sum += sp.Duration()
	}
	if wall < 50*time.Millisecond {
		t.Fatalf("write completed in %v, too fast for a meaningful decomposition check", wall)
	}
	lo, hi := wall*95/100, wall*105/100
	if sum < lo || sum > hi {
		t.Fatalf("stage sum %v outside 5%% of wall %v (spans: %v)", sum, wall, tr.Spans())
	}
}

// TestReadyz: readiness requires a started, accepting coalescer — a
// wired-but-idle server (newServer) and a closed one must both answer
// 503 while /healthz still answers 200.
func TestReadyz(t *testing.T) {
	d := newEmbedder(t, 64, 4, dyn.Options{})
	idle := newServer(d, Options{})
	get := func(s *Server, path string) (int, string) {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodGet, path, nil)
		s.Handler().ServeHTTP(rec, req)
		return rec.Code, rec.Body.String()
	}
	if code, body := get(idle, "/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("idle coalescer: /readyz = %d %s, want 503", code, body)
	}
	if code, _ := get(idle, "/healthz"); code != http.StatusOK {
		t.Fatalf("idle coalescer: /healthz must stay 200 (liveness != readiness)")
	}

	d2 := newEmbedder(t, 64, 4, dyn.Options{})
	live := New(d2, Options{})
	code, body := get(live, "/readyz")
	if code != http.StatusOK {
		t.Fatalf("started server: /readyz = %d %s, want 200", code, body)
	}
	var ready ReadyResponse
	if err := json.Unmarshal([]byte(body), &ready); err != nil || !ready.Ready {
		t.Fatalf("started server: body %q not ready", body)
	}
	if err := live.Close(); err != nil {
		t.Fatal(err)
	}
	if code, _ := get(live, "/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("closed server: /readyz = %d, want 503", code)
	}
}

// failAfterWriter errors every write after the first n bytes — a
// client that departs mid-stream, from the handler's point of view.
type failAfterWriter struct {
	httptest.ResponseRecorder
	remaining int
}

func (f *failAfterWriter) Write(p []byte) (int, error) {
	if len(p) > f.remaining {
		n, _ := f.ResponseRecorder.Write(p[:f.remaining])
		f.remaining = 0
		// The error must ride on the truncating call itself: a bare
		// short write would become bufio's private ErrShortWrite, which
		// the server's error tracker never observes.
		return n, fmt.Errorf("client went away")
	}
	f.remaining -= len(p)
	return f.ResponseRecorder.Write(p)
}

// TestAbortedStreamCounted: a snapshot stream cut off mid-body must
// increment gee_http_aborted_streams_total for the route and tag the
// recorded trace aborted, while a completed stream must not.
func TestAbortedStreamCounted(t *testing.T) {
	d := newEmbedder(t, 2048, 4, dyn.Options{})
	s := New(d, Options{})
	defer s.Close()

	// Complete stream first: no abort counted.
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/snapshot", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("snapshot status %d", rec.Code)
	}

	fw := &failAfterWriter{ResponseRecorder: *httptest.NewRecorder(), remaining: 1 << 10}
	s.Handler().ServeHTTP(fw, httptest.NewRequest(http.MethodGet, "/v1/snapshot", nil))

	var b strings.Builder
	if err := s.Metrics().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := `gee_http_aborted_streams_total{route="GET /v1/snapshot"} 1`
	if !strings.Contains(b.String(), want) {
		t.Fatalf("exposition missing %q after one aborted and one complete stream", want)
	}

	var aborted, clean bool
	for _, tr := range s.sm.rec.Recent() {
		if tr.Name() != "GET /v1/snapshot" {
			continue
		}
		has := false
		for _, tag := range tr.Tags() {
			if tag.Key == "aborted" && tag.Value == "true" {
				has = true
			}
		}
		if has {
			aborted = true
		} else {
			clean = true
		}
	}
	if !aborted || !clean {
		t.Fatalf("recorded traces: aborted=%v clean=%v, want one of each", aborted, clean)
	}
}

// TestDebugTracesEndpoint covers the dump's shape and the ?name=
// filter: after one write and one health read, the filtered dump
// carries only the write route, stages included, and ids stay stable
// through the JSON round trip.
func TestDebugTracesEndpoint(t *testing.T) {
	d := newEmbedder(t, 128, 4, dyn.Options{})
	s := New(d, Options{})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	id := trace.NewID()
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/edges",
		strings.NewReader(`{"edges":[{"u":3,"v":4}]}`))
	req.Header.Set(trace.Header, id.String())
	if resp, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("write status %d", resp.StatusCode)
		}
	}
	if _, err := http.Get(ts.URL + "/healthz"); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/debug/traces?name=POST%20/v1/edges")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var dump TracesResponse
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		t.Fatal(err)
	}
	if len(dump.Recent) == 0 {
		t.Fatal("filtered dump has no recent traces")
	}
	found := false
	for _, tw := range dump.Recent {
		if tw.Name != "POST /v1/edges" {
			t.Fatalf("?name filter leaked trace %q", tw.Name)
		}
		if tw.ID == id.String() {
			found = true
			stages := map[string]bool{}
			for _, sp := range tw.Spans {
				stages[sp.Name] = true
			}
			for _, stage := range writeStages {
				if !stages[stage] {
					t.Fatalf("dumped trace missing stage %q: %+v", stage, tw.Spans)
				}
			}
		}
	}
	if !found {
		t.Fatalf("adopted id %v not in dump", id)
	}
}

// TestTracingDisabled: DisableTracing must 404 the dump endpoint, keep
// the per-stage histograms out of the exposition, and leave writes
// fully functional.
func TestTracingDisabled(t *testing.T) {
	d := newEmbedder(t, 64, 4, dyn.Options{})
	s := New(d, Options{DisableTracing: true})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/edges", "application/json",
		strings.NewReader(`{"edges":[{"u":1,"v":2}]}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("write with tracing disabled: status %d", resp.StatusCode)
	}
	dumpResp, err := http.Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, dumpResp.Body)
	dumpResp.Body.Close()
	if dumpResp.StatusCode != http.StatusNotFound {
		t.Fatalf("/debug/traces with tracing disabled: status %d, want 404", dumpResp.StatusCode)
	}
	var b strings.Builder
	if err := s.Metrics().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "gee_write_stage_seconds") {
		t.Fatal("stage histograms registered despite DisableTracing")
	}
}

// TestSlowLogCarriesTrace: with a zero-ish threshold every request is
// "slow"; the log line must carry trace=<the adopted id> and be
// followed by the span dump line.
func TestSlowLogCarriesTrace(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	safe := &lockedWriter{mu: &mu, w: &buf}
	d := newEmbedder(t, 64, 4, dyn.Options{})
	s := New(d, Options{
		SlowRequestThreshold: time.Nanosecond,
		SlowRequestLog:       log.New(safe, "", 0),
	})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	id := trace.NewID()
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/edges",
		strings.NewReader(`{"edges":[{"u":5,"v":6}]}`))
	req.Header.Set(trace.Header, id.String())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if !strings.Contains(out, "trace="+id.String()) {
		t.Fatalf("slow log missing trace=%s:\n%s", id, out)
	}
	if !strings.Contains(out, "spans:") || !strings.Contains(out, "fold=") {
		t.Fatalf("slow log missing span dump:\n%s", out)
	}
}

type lockedWriter struct {
	mu *sync.Mutex
	w  io.Writer
}

func (l *lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

// TestRuntimeGaugesExposed: the server registry carries the process
// health instruments after construction.
func TestRuntimeGaugesExposed(t *testing.T) {
	d := newEmbedder(t, 64, 4, dyn.Options{})
	s := New(d, Options{})
	defer s.Close()
	var b strings.Builder
	if err := s.Metrics().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"gee_go_goroutines", "gee_go_heap_alloc_bytes", "gee_go_gc_cycles_total"} {
		if !strings.Contains(b.String(), "\n"+name+" ") {
			t.Errorf("server exposition missing %s", name)
		}
	}
}
