package server

import (
	"repro/internal/dyn"
	"repro/internal/wire"
)

// Binary counterparts of the JSON streamers: the same abort discipline
// (stop formatting within one check window of a departed client), the
// same pooled scratch buffer, but rows leave as little-endian float32
// frames (see internal/wire) instead of decimal text. Snapshots and
// embeddings are dense (a replica mmaps them without a decode pass);
// deltas use the sparse row encoding, which lands at ~6× fewer bytes
// than the JSON text on the geeload workload. Negotiated per request
// via the Accept header; JSON stays the default.

// binRowsPerChunk rows are converted into scratch between writes: big
// enough to amortize the bufio call, small enough that scratch stays a
// few tens of KiB for any plausible K.
const binRowsPerChunk = 64

// binHeader writes the frame prefix.
func (s *streamer) binHeader(h wire.Header) {
	s.scratch = h.AppendTo(s.scratch[:0])
	s.w.Write(s.scratch)
}

// binI32s writes an int32 section with periodic abort checks; reports
// whether it ran to completion.
func (s *streamer) binI32s(vals []int32) bool {
	for lo := 0; lo < len(vals); lo += 8 * abortCheckEvery {
		if s.aborted() {
			return false
		}
		hi := min(lo+8*abortCheckEvery, len(vals))
		s.scratch = wire.AppendI32s(s.scratch[:0], vals[lo:hi])
		s.w.Write(s.scratch)
	}
	return true
}

// binU32s writes a uint32 section with periodic abort checks.
func (s *streamer) binU32s(vals []uint32) bool {
	for lo := 0; lo < len(vals); lo += 8 * abortCheckEvery {
		if s.aborted() {
			return false
		}
		hi := min(lo+8*abortCheckEvery, len(vals))
		s.scratch = wire.AppendU32s(s.scratch[:0], vals[lo:hi])
		s.w.Write(s.scratch)
	}
	return true
}

// binRows writes n embedding rows as float32 payload, checking for a
// departed client between chunks. Returns the number of rows emitted —
// n when the stream completed (a truncated frame only ever reaches a
// reader that already left; the decoder rejects it).
func (s *streamer) binRows(n int, row func(i int) []float64) int {
	for i := 0; i < n; {
		if s.aborted() {
			return i
		}
		hi := min(i+binRowsPerChunk, n)
		s.scratch = s.scratch[:0]
		for ; i < hi; i++ {
			s.scratch = wire.AppendRow(s.scratch, row(i))
		}
		s.w.Write(s.scratch)
	}
	return n
}

// streamSnapshotBinary writes one published snapshot as a snapshot
// frame (implicit identity row ids). Returns the number of Z rows
// emitted; a short count means the client went away mid-stream.
func streamSnapshotBinary(s *streamer, snap *dyn.Snapshot) int {
	s.binHeader(wire.Header{
		Kind: wire.KindSnapshot, K: uint32(snap.Z.C),
		Epoch: snap.Epoch, Instance: snap.Instance, Edges: snap.Edges,
		N: uint32(snap.Z.R), NY: uint32(len(snap.Y)), NRows: uint32(snap.Z.R),
	})
	rows := 0
	if s.binI32s(snap.Y) {
		rows = s.binRows(snap.Z.R, snap.Z.Row)
	}
	s.flush()
	return rows
}

// streamDeltaBinary writes one dyn.Delta as a sparse delta frame; k is
// the embedding width and n the server's vertex count. Returns the
// number of changed rows emitted.
//
// Deltas use the sparse row encoding (varint id increments, nonzero
// bitmaps): changed rows are mostly zeros, and a fixed-width frame
// would spend four bytes on each zero that JSON spends one on. The
// header carries the blob's exact length, so the blob is built in a
// pooled side buffer before anything is written.
func streamDeltaBinary(s *streamer, dl *dyn.Delta, k, n int) int {
	h := wire.Header{
		Kind: wire.KindDelta, Resync: dl.Resync, K: uint32(k),
		Epoch: dl.Epoch, Instance: dl.Instance, From: dl.FromEpoch,
		N: uint32(n),
	}
	if dl.Resync {
		s.binHeader(h)
		s.flush()
		return 0
	}
	s.blob = s.blob[:0]
	prev := uint64(0)
	for i, v := range dl.Rows {
		if i%abortCheckEvery == 0 && s.aborted() {
			return 0
		}
		delta := uint64(v)
		if i > 0 {
			delta = uint64(v) - prev
		}
		prev = uint64(v)
		s.blob = wire.AppendSparseRow(s.blob, delta, dl.Values[i*k:(i+1)*k])
	}
	h.Sparse = true
	h.Edges = dl.Edges
	h.NLabels = uint32(len(dl.Labels))
	h.NIDs = uint32(len(dl.Rows))
	h.NRows = uint32(len(dl.Rows))
	h.BodyBytes = uint32(len(s.blob))
	s.binHeader(h)
	for lo := 0; lo < len(dl.Labels); lo += 8 * abortCheckEvery {
		if s.aborted() {
			s.flush()
			return 0
		}
		hi := min(lo+8*abortCheckEvery, len(dl.Labels))
		s.scratch = s.scratch[:0]
		for _, lu := range dl.Labels[lo:hi] {
			s.scratch = wire.AppendLabel(s.scratch, wire.Label{V: lu.V, Class: lu.Class})
		}
		s.w.Write(s.scratch)
	}
	if s.aborted() {
		s.flush()
		return 0
	}
	s.w.Write(s.blob)
	s.flush()
	if s.aborted() {
		return 0
	}
	return len(dl.Rows)
}

// streamEmbeddingsBinary writes a batched read's rows as an embeddings
// frame: explicit row ids in request order (duplicates preserved).
func streamEmbeddingsBinary(s *streamer, snap *dyn.Snapshot, vs []uint32) int {
	s.binHeader(wire.Header{
		Kind: wire.KindEmbeddings, K: uint32(snap.Z.C),
		Epoch: snap.Epoch, Instance: snap.Instance, Edges: snap.Edges,
		N: uint32(snap.Z.R), NIDs: uint32(len(vs)), NRows: uint32(len(vs)),
	})
	rows := 0
	if s.binU32s(vs) {
		rows = s.binRows(len(vs), func(i int) []float64 {
			return snap.Z.Row(int(vs[i]))
		})
	}
	s.flush()
	return rows
}
