package server_test

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dyn"
	"repro/internal/gee"
	"repro/internal/graph"
	"repro/internal/labels"
	"repro/internal/mat"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/xrand"
)

// startServer builds an embedder + server + typed client over httptest.
func startServer(t *testing.T, n int, y []int32, dopts dyn.Options, sopts server.Options) (*server.Server, *client.Client) {
	t.Helper()
	d, err := dyn.New(n, y, dopts)
	if err != nil {
		t.Fatal(err)
	}
	s := server.New(d, sopts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		if err := s.Close(); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		ts.Close()
	})
	return s, client.New(ts.URL, ts.Client())
}

func fullLabels(n, k int) []int32 {
	y := make([]int32, n)
	for v := range y {
		y[v] = int32(v % k)
	}
	return y
}

// TestServerCoalescesConcurrentWrites is the tentpole acceptance check:
// many concurrent single-edge POSTs must be applied in far fewer folds
// than requests, and every ack's epoch must be at or after the epoch at
// which its edge became visible to GET /v1/embedding — checked by
// reading the edge back immediately after the ack: the read must show
// the edge and must not be older than the ack.
func TestServerCoalescesConcurrentWrites(t *testing.T) {
	const requests, k = 200, 4
	n := 2 * requests
	y := fullLabels(n, k)
	// PublishEvery well above a single op forces the coalescer's settle
	// path (publish on idle) as well as the embedder's op-count policy.
	_, c := startServer(t, n, y, dyn.Options{K: k, PublishEvery: 512},
		server.Options{Coalescer: server.CoalescerOptions{MaxBatch: 1024, MaxDelay: 25 * time.Millisecond}})

	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, requests)
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			u, v := graph.NodeID(2*i), graph.NodeID(2*i+1)
			ack, err := c.InsertEdges(ctx, []graph.Edge{{U: u, V: v, W: 1}})
			if err != nil {
				errs <- err
				return
			}
			if ack.Epoch == 0 || ack.Applied != 1 {
				errs <- fmt.Errorf("ack %+v for edge %d", ack, i)
				return
			}
			// Read-your-write: the ack promises visibility at Epoch, so
			// a read issued after the ack (which always sees an epoch at
			// or after it) must already contain the edge's contribution.
			emb, err := c.Embedding(ctx, u)
			if err != nil {
				errs <- err
				return
			}
			if emb.Epoch < ack.Epoch {
				errs <- fmt.Errorf("read epoch %d older than ack epoch %d", emb.Epoch, ack.Epoch)
				return
			}
			if class := y[v]; emb.Row[class] <= 0 {
				errs <- fmt.Errorf("edge %d invisible after ack at epoch %d: row %v", i, ack.Epoch, emb.Row)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	co := st.Coalescer
	if co.Requests != requests || co.Rejected != 0 {
		t.Fatalf("coalescer requests=%d rejected=%d, want %d/0", co.Requests, co.Rejected, requests)
	}
	if co.Flushes*4 > co.Requests {
		t.Fatalf("coalescing failed: %d flushes for %d requests (want ≤ 1/4)", co.Flushes, co.Requests)
	}
	if co.Coalesced == 0 {
		t.Fatal("no request ever shared a micro-batch")
	}
	// The embedder saw micro-batches, not per-request folds; publishes
	// are amortized the same way.
	if st.Dyn.Batches != co.Flushes+co.Replays {
		t.Fatalf("dyn folded %d batches, coalescer flushed %d (+%d replays)",
			st.Dyn.Batches, co.Flushes, co.Replays)
	}
	if st.Dyn.Publishes*4 > int64(requests) {
		t.Fatalf("publishes not amortized: %d for %d requests", st.Dyn.Publishes, requests)
	}
	if st.Dyn.Inserts != requests {
		t.Fatalf("dyn applied %d inserts, want %d", st.Dyn.Inserts, requests)
	}
}

// TestServerIngestMatchesBatchEmbed drives a full ingest — concurrent
// edge inserts, label updates, then deletions — purely through the
// typed client and checks the final streamed snapshot equals a
// from-scratch batch Embed on the same graph within 1e-9.
func TestServerIngestMatchesBatchEmbed(t *testing.T) {
	const n, k, m, writers = 250, 5, 3000, 4
	y0 := labels.SampleSemiSupervised(n, k, 0.4, 31)
	_, c := startServer(t, n, y0, dyn.Options{K: k, ManualPublish: true},
		server.Options{Coalescer: server.CoalescerOptions{MaxDelay: time.Millisecond}})
	ctx := context.Background()

	r := xrand.New(33)
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{
			U: graph.NodeID(r.Intn(n)), V: graph.NodeID(r.Intn(n)),
			W: float32(r.Intn(4) + 1),
		}
	}
	// Concurrent chunked inserts.
	var wg sync.WaitGroup
	chunk := (m + writers - 1) / writers
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		lo, hi := w*chunk, min((w+1)*chunk, m)
		wg.Add(1)
		go func(part []graph.Edge) {
			defer wg.Done()
			for len(part) > 0 {
				sz := min(97, len(part))
				if _, err := c.InsertEdges(ctx, part[:sz]); err != nil {
					errs <- err
					return
				}
				part = part[sz:]
			}
		}(edges[lo:hi])
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Label churn: move some vertices, unlabel a few.
	yFinal := append([]int32(nil), y0...)
	var ups []dyn.LabelUpdate
	for v := 0; v < n; v += 3 {
		class := int32((v + 1) % k)
		if v%9 == 0 {
			class = labels.Unknown
		}
		ups = append(ups, dyn.LabelUpdate{V: graph.NodeID(v), Class: class})
		yFinal[v] = class
	}
	if _, err := c.UpdateLabels(ctx, ups); err != nil {
		t.Fatal(err)
	}
	// Delete a slice of the live edges through the DELETE endpoint.
	if _, err := c.DeleteEdges(ctx, edges[:m/5]); err != nil {
		t.Fatal(err)
	}
	live := edges[m/5:]

	snap, err := c.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.N != n || snap.K != k || snap.Edges != int64(len(live)) {
		t.Fatalf("snapshot shape n=%d k=%d edges=%d, want %d/%d/%d",
			snap.N, snap.K, snap.Edges, n, k, len(live))
	}
	for v := range yFinal {
		if snap.Y[v] != yFinal[v] {
			t.Fatalf("label of %d drifted: %d vs %d", v, snap.Y[v], yFinal[v])
		}
	}
	want, err := gee.Embed(gee.Reference, &graph.EdgeList{N: n, Edges: live, Weighted: true},
		yFinal, gee.Options{K: k})
	if err != nil {
		t.Fatal(err)
	}
	got := mat.FromRows(snap.Z)
	if !want.Z.EqualTol(got, 1e-9) {
		t.Fatalf("served snapshot deviates from batch embed by %v", want.Z.MaxAbsDiff(got))
	}
}

// TestServerReadsAndErrors covers the small read endpoints and the
// HTTP error mapping.
func TestServerReadsAndErrors(t *testing.T) {
	const n, k = 20, 2
	_, c := startServer(t, n, fullLabels(n, k), dyn.Options{K: k}, server.Options{})
	ctx := context.Background()

	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.N != n || h.K != k {
		t.Fatalf("health %+v", h)
	}
	if _, err := c.InsertEdges(ctx, []graph.Edge{{U: 0, V: 1, W: 2}}); err != nil {
		t.Fatal(err)
	}
	emb, err := c.Embedding(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(emb.Row) != k || emb.V != 0 {
		t.Fatalf("embedding %+v", emb)
	}
	// Validation errors surface as 400 with the dyn message.
	if _, err := c.InsertEdges(ctx, []graph.Edge{{U: 999, V: 0, W: 1}}); err == nil ||
		!strings.Contains(err.Error(), "out of range") {
		t.Fatalf("out-of-range insert: %v", err)
	}
	if _, err := c.Embedding(ctx, 999); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("out-of-range embedding: %v", err)
	}
	// An empty mutation is acknowledged without entering the queue.
	ack, err := c.InsertEdges(ctx, nil)
	if err != nil || ack.Applied != 0 {
		t.Fatalf("empty insert: %+v %v", ack, err)
	}
}

// TestServerMalformedBodies exercises the raw HTTP surface the typed
// client never produces.
func TestServerMalformedBodies(t *testing.T) {
	d, err := dyn.New(10, fullLabels(10, 2), dyn.Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := server.New(d, server.Options{})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, tc := range []struct {
		name, method, path, body string
		want                     int
	}{
		{"bad json", http.MethodPost, "/v1/edges", `{"edges":[`, http.StatusBadRequest},
		{"unknown field", http.MethodPost, "/v1/edges", `{"edgez":[]}`, http.StatusBadRequest},
		{"bad vertex", http.MethodGet, "/v1/embedding/xyz", "", http.StatusBadRequest},
		{"wrong method", http.MethodPut, "/v1/edges", `{}`, http.StatusMethodNotAllowed},
	} {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
}
