package server_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/dyn"
	"repro/internal/gee"
	"repro/internal/graph"
	"repro/internal/labels"
	"repro/internal/mat"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/xrand"
)

// startServer builds an embedder + server + typed client over httptest
// and reports the base URL for raw HTTP access.
func startServer(t *testing.T, n int, y []int32, dopts dyn.Options, sopts server.Options) (*server.Server, *client.Client, string) {
	t.Helper()
	d, err := dyn.New(n, y, dopts)
	if err != nil {
		t.Fatal(err)
	}
	s := server.New(d, sopts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		if err := s.Close(); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		ts.Close()
	})
	return s, client.New(ts.URL, ts.Client()), ts.URL
}

func fullLabels(n, k int) []int32 {
	y := make([]int32, n)
	for v := range y {
		y[v] = int32(v % k)
	}
	return y
}

// TestServerCoalescesConcurrentWrites is the tentpole acceptance check:
// many concurrent single-edge POSTs must be applied in far fewer folds
// than requests, and every ack's epoch must be at or after the epoch at
// which its edge became visible to GET /v1/embedding — checked by
// reading the edge back immediately after the ack: the read must show
// the edge and must not be older than the ack.
func TestServerCoalescesConcurrentWrites(t *testing.T) {
	const requests, k = 200, 4
	n := 2 * requests
	y := fullLabels(n, k)
	// PublishEvery well above a single op forces the coalescer's settle
	// path (publish on idle) as well as the embedder's op-count policy.
	_, c, _ := startServer(t, n, y, dyn.Options{K: k, PublishEvery: 512},
		server.Options{Coalescer: server.CoalescerOptions{MaxBatch: 1024, MaxDelay: 25 * time.Millisecond}})

	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, requests)
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			u, v := graph.NodeID(2*i), graph.NodeID(2*i+1)
			ack, err := c.InsertEdges(ctx, []graph.Edge{{U: u, V: v, W: 1}})
			if err != nil {
				errs <- err
				return
			}
			if ack.Epoch == 0 || ack.Applied != 1 {
				errs <- fmt.Errorf("ack %+v for edge %d", ack, i)
				return
			}
			// Read-your-write: the ack promises visibility at Epoch, so
			// a read issued after the ack (which always sees an epoch at
			// or after it) must already contain the edge's contribution.
			emb, err := c.Embedding(ctx, u)
			if err != nil {
				errs <- err
				return
			}
			if emb.Epoch < ack.Epoch {
				errs <- fmt.Errorf("read epoch %d older than ack epoch %d", emb.Epoch, ack.Epoch)
				return
			}
			if class := y[v]; emb.Row[class] <= 0 {
				errs <- fmt.Errorf("edge %d invisible after ack at epoch %d: row %v", i, ack.Epoch, emb.Row)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	co := st.Coalescer
	if co.Requests != requests || co.Rejected != 0 {
		t.Fatalf("coalescer requests=%d rejected=%d, want %d/0", co.Requests, co.Rejected, requests)
	}
	if co.Flushes*4 > co.Requests {
		t.Fatalf("coalescing failed: %d flushes for %d requests (want ≤ 1/4)", co.Flushes, co.Requests)
	}
	if co.Coalesced == 0 {
		t.Fatal("no request ever shared a micro-batch")
	}
	// The embedder saw micro-batches, not per-request folds; publishes
	// are amortized the same way.
	if st.Dyn.Batches != co.Flushes+co.Replays {
		t.Fatalf("dyn folded %d batches, coalescer flushed %d (+%d replays)",
			st.Dyn.Batches, co.Flushes, co.Replays)
	}
	if st.Dyn.Publishes*4 > int64(requests) {
		t.Fatalf("publishes not amortized: %d for %d requests", st.Dyn.Publishes, requests)
	}
	if st.Dyn.Inserts != requests {
		t.Fatalf("dyn applied %d inserts, want %d", st.Dyn.Inserts, requests)
	}
}

// TestServerIngestMatchesBatchEmbed drives a full ingest — concurrent
// edge inserts, label updates, then deletions — purely through the
// typed client and checks the final streamed snapshot equals a
// from-scratch batch Embed on the same graph within 1e-9.
func TestServerIngestMatchesBatchEmbed(t *testing.T) {
	const n, k, m, writers = 250, 5, 3000, 4
	y0 := labels.SampleSemiSupervised(n, k, 0.4, 31)
	_, c, _ := startServer(t, n, y0, dyn.Options{K: k, ManualPublish: true},
		server.Options{Coalescer: server.CoalescerOptions{MaxDelay: time.Millisecond}})
	ctx := context.Background()

	r := xrand.New(33)
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{
			U: graph.NodeID(r.Intn(n)), V: graph.NodeID(r.Intn(n)),
			W: float32(r.Intn(4) + 1),
		}
	}
	// Concurrent chunked inserts.
	var wg sync.WaitGroup
	chunk := (m + writers - 1) / writers
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		lo, hi := w*chunk, min((w+1)*chunk, m)
		wg.Add(1)
		go func(part []graph.Edge) {
			defer wg.Done()
			for len(part) > 0 {
				sz := min(97, len(part))
				if _, err := c.InsertEdges(ctx, part[:sz]); err != nil {
					errs <- err
					return
				}
				part = part[sz:]
			}
		}(edges[lo:hi])
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Label churn: move some vertices, unlabel a few.
	yFinal := append([]int32(nil), y0...)
	var ups []dyn.LabelUpdate
	for v := 0; v < n; v += 3 {
		class := int32((v + 1) % k)
		if v%9 == 0 {
			class = labels.Unknown
		}
		ups = append(ups, dyn.LabelUpdate{V: graph.NodeID(v), Class: class})
		yFinal[v] = class
	}
	if _, err := c.UpdateLabels(ctx, ups); err != nil {
		t.Fatal(err)
	}
	// Delete a slice of the live edges through the DELETE endpoint.
	if _, err := c.DeleteEdges(ctx, edges[:m/5]); err != nil {
		t.Fatal(err)
	}
	live := edges[m/5:]

	snap, err := c.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.N != n || snap.K != k || snap.Edges != int64(len(live)) {
		t.Fatalf("snapshot shape n=%d k=%d edges=%d, want %d/%d/%d",
			snap.N, snap.K, snap.Edges, n, k, len(live))
	}
	for v := range yFinal {
		if snap.Y[v] != yFinal[v] {
			t.Fatalf("label of %d drifted: %d vs %d", v, snap.Y[v], yFinal[v])
		}
	}
	want, err := gee.Embed(gee.Reference, &graph.EdgeList{N: n, Edges: live, Weighted: true},
		yFinal, gee.Options{K: k})
	if err != nil {
		t.Fatal(err)
	}
	got := mat.FromRows(snap.Z)
	if !want.Z.EqualTol(got, 1e-9) {
		t.Fatalf("served snapshot deviates from batch embed by %v", want.Z.MaxAbsDiff(got))
	}
}

// TestServerReadsAndErrors covers the small read endpoints and the
// HTTP error mapping.
func TestServerReadsAndErrors(t *testing.T) {
	const n, k = 20, 2
	_, c, _ := startServer(t, n, fullLabels(n, k), dyn.Options{K: k}, server.Options{})
	ctx := context.Background()

	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.N != n || h.K != k {
		t.Fatalf("health %+v", h)
	}
	if _, err := c.InsertEdges(ctx, []graph.Edge{{U: 0, V: 1, W: 2}}); err != nil {
		t.Fatal(err)
	}
	emb, err := c.Embedding(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(emb.Row) != k || emb.V != 0 {
		t.Fatalf("embedding %+v", emb)
	}
	// Validation errors surface as 400 with the dyn message.
	if _, err := c.InsertEdges(ctx, []graph.Edge{{U: 999, V: 0, W: 1}}); err == nil ||
		!strings.Contains(err.Error(), "out of range") {
		t.Fatalf("out-of-range insert: %v", err)
	}
	if _, err := c.Embedding(ctx, 999); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("out-of-range embedding: %v", err)
	}
	// An empty mutation is acknowledged without entering the queue.
	ack, err := c.InsertEdges(ctx, nil)
	if err != nil || ack.Applied != 0 {
		t.Fatalf("empty insert: %+v %v", ack, err)
	}
}

// TestServerBatchedEmbeddings checks POST /v1/embeddings: all rows
// come from one snapshot, order (and duplicates) follow the request,
// and any out-of-range vertex fails the whole read.
func TestServerBatchedEmbeddings(t *testing.T) {
	const n, k = 60, 3
	_, c, _ := startServer(t, n, fullLabels(n, k), dyn.Options{K: k}, server.Options{})
	ctx := context.Background()
	if _, err := c.InsertEdges(ctx, []graph.Edge{{U: 3, V: 4, W: 2}, {U: 59, V: 0, W: 1}}); err != nil {
		t.Fatal(err)
	}
	vs := []graph.NodeID{3, 0, 59, 3}
	out, err := c.Embeddings(ctx, vs)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != len(vs) {
		t.Fatalf("%d rows for %d vertices", len(out.Rows), len(vs))
	}
	for i, v := range vs {
		single, err := c.Embedding(ctx, v)
		if err != nil {
			t.Fatal(err)
		}
		if single.Epoch != out.Epoch {
			t.Fatalf("epoch drifted between reads on an idle server: %d vs %d", single.Epoch, out.Epoch)
		}
		for col := range single.Row {
			if out.Rows[i][col] != single.Row[col] {
				t.Fatalf("batched row for %d differs from single read: %v vs %v", v, out.Rows[i], single.Row)
			}
		}
	}
	if out.Rows[0][fullLabels(n, k)[4]] <= 0 {
		t.Fatalf("row of vertex 3 missing the inserted edge: %v", out.Rows[0])
	}
	// Whole-request failure on any bad vertex.
	if _, err := c.Embeddings(ctx, []graph.NodeID{1, 999}); err == nil ||
		!strings.Contains(err.Error(), "404") {
		t.Fatalf("out-of-range batched read: %v", err)
	}
	// Empty batch: the epoch alone.
	out, err = c.Embeddings(ctx, nil)
	if err != nil || len(out.Rows) != 0 || out.Epoch == 0 {
		t.Fatalf("empty batched read: %+v %v", out, err)
	}
}

// TestServerNeighbors checks POST /v1/neighbors against a local TopK
// over the fetched snapshot for both metrics, plus the error mapping.
func TestServerNeighbors(t *testing.T) {
	const n, k, m, topk = 80, 4, 600, 7
	_, c, _ := startServer(t, n, fullLabels(n, k), dyn.Options{K: k}, server.Options{})
	ctx := context.Background()
	r := xrand.New(53)
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{
			U: graph.NodeID(r.Intn(n)), V: graph.NodeID(r.Intn(n)),
			W: float32(r.Intn(3) + 1),
		}
	}
	if _, err := c.InsertEdges(ctx, edges); err != nil {
		t.Fatal(err)
	}
	snap, err := c.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	Z := mat.FromRows(snap.Z)
	for _, metric := range []string{"", "l2", "cosine"} {
		res, err := c.Neighbors(ctx, server.NeighborsRequest{V: 5, K: topk, Metric: metric})
		if err != nil {
			t.Fatalf("metric %q: %v", metric, err)
		}
		wantName := metric
		if wantName == "" {
			wantName = "l2"
		}
		if res.Metric != wantName || res.V != 5 || res.Epoch != snap.Epoch {
			t.Fatalf("metric %q response header: %+v", metric, res)
		}
		// An exact answer is computed against the live snapshot: the
		// reported index epoch is the published epoch itself.
		if res.Mode != "exact" || res.IndexEpoch != res.Epoch {
			t.Fatalf("metric %q mode/index epoch: %+v", metric, res)
		}
		cm := cluster.L2
		if wantName == "cosine" {
			cm = cluster.Cosine
		}
		want := cluster.TopK(0, Z, Z.Row(5), topk, cm, 5)
		if len(res.Neighbors) != len(want) {
			t.Fatalf("metric %q: %d neighbors, want %d", metric, len(res.Neighbors), len(want))
		}
		for i, nb := range res.Neighbors {
			if int(nb.V) == 5 {
				t.Fatalf("metric %q: query vertex in its own neighbors", metric)
			}
			if int(nb.V) != want[i].V || nb.Dist != want[i].Dist {
				t.Fatalf("metric %q neighbor %d: got (%d, %v), want (%d, %v)",
					metric, i, nb.V, nb.Dist, want[i].V, want[i].Dist)
			}
			if i > 0 && nb.Dist < res.Neighbors[i-1].Dist {
				t.Fatalf("metric %q: distances not ascending: %+v", metric, res.Neighbors)
			}
		}
	}
	if _, err := c.Neighbors(ctx, server.NeighborsRequest{V: 5, K: 0}); err == nil || !strings.Contains(err.Error(), "400") {
		t.Fatalf("k=0 accepted: %v", err)
	}
	// An attacker-sized k is clamped to the row count, not allocated.
	if res, err := c.Neighbors(ctx, server.NeighborsRequest{V: 5, K: 1 << 40}); err != nil || len(res.Neighbors) != n-1 {
		t.Fatalf("huge k: %d neighbors, err %v (want %d, nil)", len(res.Neighbors), err, n-1)
	}
	if _, err := c.Neighbors(ctx, server.NeighborsRequest{V: 5, K: 3, Metric: "manhattan"}); err == nil || !strings.Contains(err.Error(), "400") {
		t.Fatalf("unknown metric accepted: %v", err)
	}
	if _, err := c.Neighbors(ctx, server.NeighborsRequest{V: 999, K: 3}); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("out-of-range vertex accepted: %v", err)
	}
	if _, err := c.Neighbors(ctx, server.NeighborsRequest{V: 5, K: 3, Mode: "fuzzy"}); err == nil || !strings.Contains(err.Error(), "400") {
		t.Fatalf("unknown mode accepted: %v", err)
	}
	if _, err := c.Neighbors(ctx, server.NeighborsRequest{V: 5, K: 3, NProbe: -1, Mode: "approx"}); err == nil || !strings.Contains(err.Error(), "400") {
		t.Fatalf("negative nprobe accepted: %v", err)
	}
	if _, err := c.Neighbors(ctx, server.NeighborsRequest{V: 5, K: 3, NProbe: 2}); err == nil || !strings.Contains(err.Error(), "400") {
		t.Fatalf("nprobe without approx accepted: %v", err)
	}
	// n=80 sits below the index threshold: an approx request is served
	// exactly — and says so — instead of paying for an index.
	res, err := c.Neighbors(ctx, server.NeighborsRequest{V: 5, K: topk, Mode: "approx"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != "exact" || res.IndexEpoch != res.Epoch {
		t.Fatalf("below-threshold approx request not served exact: %+v", res)
	}
	// And the stats say so: this server will never index, which is how
	// recall-measuring clients tell "permanently exact" from "cold".
	if st, err := c.Stats(ctx); err != nil || st.Index.Indexing {
		t.Fatalf("below-threshold server claims Indexing (err %v): %+v", err, st.Index)
	}
	want := cluster.TopK(0, Z, Z.Row(5), topk, cluster.L2, 5)
	for i, nb := range res.Neighbors {
		if int(nb.V) != want[i].V || nb.Dist != want[i].Dist {
			t.Fatalf("below-threshold approx neighbor %d: got (%d, %v), want (%d, %v)",
				i, nb.V, nb.Dist, want[i].V, want[i].Dist)
		}
	}
}

// TestServerNeighborsApprox drives the IVF read path end to end: the
// first approx query on a cold index is answered exactly (and kicks the
// asynchronous build), later ones answer from the index with the epoch
// they were computed against, a full-probe approx answer equals the
// exact scan, and after churn the index converges back to the published
// epoch without ever blocking a query.
func TestServerNeighborsApprox(t *testing.T) {
	const n, k, m, topk = 3000, 6, 9000, 10
	_, c, _ := startServer(t, n, fullLabels(n, k), dyn.Options{K: k}, server.Options{})
	ctx := context.Background()
	r := xrand.New(71)
	edges := make([]graph.Edge, m)
	for i := range edges {
		// Block-structured edges (u ≡ v mod k) so the embedding is the
		// clustered shape the index defaults target.
		u := r.Intn(n)
		v := u%k + k*r.Intn((n-1-u%k)/k+1)
		edges[i] = graph.Edge{U: graph.NodeID(u), V: graph.NodeID(v), W: float32(r.Intn(3) + 1)}
	}
	if _, err := c.InsertEdges(ctx, edges); err != nil {
		t.Fatal(err)
	}

	// Cold: the very first approx query cannot have an index yet.
	res, err := c.Neighbors(ctx, server.NeighborsRequest{V: 3, K: topk, Mode: "approx"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != "exact" || res.IndexEpoch != res.Epoch {
		t.Fatalf("cold approx query should fall back to exact: %+v", res)
	}
	// The fallback kicked an async build; poll until the index answers.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if res, err = c.Neighbors(ctx, server.NeighborsRequest{V: 3, K: topk, Mode: "approx"}); err != nil {
			t.Fatal(err)
		}
		if res.Mode == "approx" && res.IndexEpoch == res.Epoch {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("index never became current: %+v", res)
		}
		time.Sleep(5 * time.Millisecond)
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Index.Indexing || st.Index.Builds == 0 || st.Index.Lists == 0 ||
		st.Index.Epoch != res.IndexEpoch || st.Index.Stale {
		t.Fatalf("index stats after build: %+v", st.Index)
	}

	// Probing every list is exact: identical to the brute-force scan
	// (the server is idle, so both run against the same epoch).
	for _, v := range []graph.NodeID{3, 100, 2999} {
		exact, err := c.Neighbors(ctx, server.NeighborsRequest{V: v, K: topk})
		if err != nil {
			t.Fatal(err)
		}
		full, err := c.Neighbors(ctx, server.NeighborsRequest{V: v, K: topk, Mode: "approx", NProbe: st.Index.Lists})
		if err != nil {
			t.Fatal(err)
		}
		if full.Mode != "approx" || full.IndexEpoch != exact.Epoch {
			t.Fatalf("full-probe header: %+v vs exact %+v", full, exact)
		}
		if len(full.Neighbors) != len(exact.Neighbors) {
			t.Fatalf("v=%d: full probe %d neighbors, exact %d", v, len(full.Neighbors), len(exact.Neighbors))
		}
		for i := range exact.Neighbors {
			if full.Neighbors[i] != exact.Neighbors[i] {
				t.Fatalf("v=%d neighbor %d: full probe %+v, exact %+v",
					v, i, full.Neighbors[i], exact.Neighbors[i])
			}
		}
		// Default-nprobe answers come from the same epoch and respect
		// the response contract even where recall is approximate.
		approx, err := c.Neighbors(ctx, server.NeighborsRequest{V: v, K: topk, Mode: "approx"})
		if err != nil {
			t.Fatal(err)
		}
		if approx.Mode != "approx" || len(approx.Neighbors) == 0 {
			t.Fatalf("v=%d approx answer: %+v", v, approx)
		}
		for i := 1; i < len(approx.Neighbors); i++ {
			if approx.Neighbors[i].Dist < approx.Neighbors[i-1].Dist {
				t.Fatalf("v=%d approx distances not ascending: %+v", v, approx.Neighbors)
			}
		}
	}

	// Churn: the published epoch moves ahead of the index. Queries keep
	// answering (from the stale index — IndexEpoch never exceeds the
	// published epoch) and the index converges once ingest stops.
	if _, err := c.InsertEdges(ctx, edges[:100]); err != nil {
		t.Fatal(err)
	}
	stale, err := c.Neighbors(ctx, server.NeighborsRequest{V: 3, K: topk, Mode: "approx"})
	if err != nil {
		t.Fatal(err)
	}
	if stale.Mode != "approx" || stale.IndexEpoch > stale.Epoch {
		t.Fatalf("post-churn approx answer: %+v", stale)
	}
	for {
		if res, err = c.Neighbors(ctx, server.NeighborsRequest{V: 3, K: topk, Mode: "approx"}); err != nil {
			t.Fatal(err)
		}
		if res.Mode == "approx" && res.IndexEpoch == res.Epoch {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("index never reconverged after churn: %+v", res)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServerRejectsBadEdgeWeights is the regression test for the
// silent weight rewrite: an explicit "w":0 used to be mutated into
// weight 1 and acked — it must be a 400, as must negative weights. An
// *omitted* weight still means 1 (proved by deleting with an explicit
// w:1, which requires an exact match).
func TestServerRejectsBadEdgeWeights(t *testing.T) {
	const n, k = 10, 2
	_, c, base := startServer(t, n, fullLabels(n, k), dyn.Options{K: k}, server.Options{})
	ctx := context.Background()

	for _, tc := range []struct{ name, body string }{
		{"explicit zero", `{"edges":[{"u":0,"v":1,"w":0}]}`},
		{"negative", `{"edges":[{"u":0,"v":1,"w":-2}]}`},
	} {
		resp, err := http.Post(base+"/v1/edges", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		var e server.ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400 (error %q)", tc.name, resp.StatusCode, e.Error)
		}
		if !strings.Contains(e.Error, "weight") {
			t.Fatalf("%s: error does not name the weight: %q", tc.name, e.Error)
		}
	}
	// Nothing was applied by the rejected requests.
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Dyn.Inserts != 0 {
		t.Fatalf("rejected weights still applied %d inserts", st.Dyn.Inserts)
	}
	// Omitted weight means 1: the edge can be deleted by exact match.
	resp, err := http.Post(base+"/v1/edges", "application/json",
		strings.NewReader(`{"edges":[{"u":0,"v":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("omitted weight rejected: status %d", resp.StatusCode)
	}
	if _, err := c.DeleteEdges(ctx, []graph.Edge{{U: 0, V: 1, W: 1}}); err != nil {
		t.Fatalf("omitted weight did not default to 1: %v", err)
	}
}

// TestServerReadHeaderTimeout is the Slowloris regression test: a
// client that opens a connection and never finishes its headers used
// to hold it forever (the http.Server set no timeouts); now the server
// closes it after ReadHeaderTimeout.
func TestServerReadHeaderTimeout(t *testing.T) {
	d, err := dyn.New(10, fullLabels(10, 2), dyn.Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := server.New(d, server.Options{ReadHeaderTimeout: 100 * time.Millisecond})
	defer s.Close()
	addrCh := make(chan net.Addr, 1)
	go func() {
		if err := s.ListenAndServe("127.0.0.1:0", func(a net.Addr) { addrCh <- a }); err != nil {
			t.Errorf("serve: %v", err)
		}
	}()
	addr := <-addrCh

	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Start a request but stall mid-headers, forever.
	if _, err := conn.Write([]byte("GET /healthz HTTP/1.1\r\nHost: x\r\n")); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	// Our own deadline is the failure detector: on the old, timeoutless
	// server this read blocks until it fires.
	if err := conn.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	_, err = conn.Read(buf)
	if err == nil || os.IsTimeout(err) {
		t.Fatalf("server did not close the stalled connection (read err %v after %v)", err, time.Since(start))
	}
	if waited := time.Since(start); waited > 3*time.Second {
		t.Fatalf("connection closed only after %v", waited)
	}
}

// TestServerBatchedReadCap is the read-amplification regression test:
// a duplicate-heavy vs list within the body-size bound used to stream
// an arbitrarily large response; now the vertex count is capped and
// the limit is named in the 400.
func TestServerBatchedReadCap(t *testing.T) {
	const n, k = 30, 2
	_, c, _ := startServer(t, n, fullLabels(n, k), dyn.Options{K: k},
		server.Options{MaxReadBatch: 4})
	ctx := context.Background()
	if _, err := c.Embeddings(ctx, []graph.NodeID{1, 2, 3, 4}); err != nil {
		t.Fatalf("at-limit read rejected: %v", err)
	}
	_, err := c.Embeddings(ctx, []graph.NodeID{1, 1, 1, 1, 1})
	if err == nil || !strings.Contains(err.Error(), "400") || !strings.Contains(err.Error(), "limit of 4") {
		t.Fatalf("over-limit read: %v", err)
	}
	// The cap is per request, not cumulative: the next read still works.
	if _, err := c.Embeddings(ctx, []graph.NodeID{5}); err != nil {
		t.Fatal(err)
	}
}

// fetchBytes GETs a URL and returns the body size in bytes.
func fetchBytes(t *testing.T, url string) int64 {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	n, err := io.Copy(io.Discard, resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestServerDeltaEndpoint checks GET /v1/delta end to end: a churn
// window without relabels is served as a row delta whose payload is an
// order of magnitude smaller than the full snapshot, applying it to a
// held copy reproduces the new snapshot bit-for-bit, and a
// counts-changing relabel flips the response to the resync signal.
func TestServerDeltaEndpoint(t *testing.T) {
	const n, k = 4000, 8
	_, c, base := startServer(t, n, fullLabels(n, k), dyn.Options{K: k}, server.Options{})
	ctx := context.Background()

	// Seed a bulk graph, then hold its snapshot as the follower state.
	r := xrand.New(59)
	bulk := make([]graph.Edge, 3*n)
	for i := range bulk {
		bulk[i] = graph.Edge{U: graph.NodeID(r.Intn(n)), V: graph.NodeID(r.Intn(n)), W: 1}
	}
	if _, err := c.InsertEdges(ctx, bulk); err != nil {
		t.Fatal(err)
	}
	held, err := c.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// A small churn window: insert + delete, no relabels.
	if _, err := c.InsertEdges(ctx, []graph.Edge{{U: 1, V: 2, W: 1}, {U: 7, V: 9, W: 2}}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.DeleteEdges(ctx, bulk[:10]); err != nil {
		t.Fatal(err)
	}
	dl, err := c.Delta(ctx, held.Epoch)
	if err != nil {
		t.Fatal(err)
	}
	if dl.Resync {
		t.Fatal("no-relabel churn window answered with resync")
	}
	if dl.From != held.Epoch || len(dl.Rows) == 0 || len(dl.Z) != len(dl.Rows) {
		t.Fatalf("delta shape: %+v", dl)
	}
	// Apply to the held copy and compare with the served snapshot.
	for i, v := range dl.Rows {
		held.Z[v] = dl.Z[i]
	}
	for _, l := range dl.Labels {
		held.Y[l.V] = l.Class
	}
	now, err := c.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if now.Epoch != dl.Epoch || now.Edges != dl.Edges {
		t.Fatalf("delta epoch/edges %d/%d vs snapshot %d/%d", dl.Epoch, dl.Edges, now.Epoch, now.Edges)
	}
	for v := 0; v < n; v++ {
		for col := 0; col < k; col++ {
			if held.Z[v][col] != now.Z[v][col] {
				t.Fatalf("delta-advanced copy differs at (%d,%d): %v vs %v",
					v, col, held.Z[v][col], now.Z[v][col])
			}
		}
	}

	// The whole point: the delta payload is far smaller than the
	// snapshot payload it replaces.
	deltaBytes := fetchBytes(t, fmt.Sprintf("%s/v1/delta?from=%d", base, held.Epoch))
	snapBytes := fetchBytes(t, base+"/v1/snapshot")
	if deltaBytes*10 >= snapBytes {
		t.Fatalf("delta payload not ≪ snapshot: %d vs %d bytes", deltaBytes, snapBytes)
	}
	t.Logf("delta %d bytes vs snapshot %d bytes (%.1f×)", deltaBytes, snapBytes, float64(snapBytes)/float64(deltaBytes))

	// A counts-changing relabel cannot be row-served: resync.
	if _, err := c.UpdateLabels(ctx, []dyn.LabelUpdate{{V: 0, Class: 1}}); err != nil {
		t.Fatal(err)
	}
	dl, err = c.Delta(ctx, now.Epoch)
	if err != nil {
		t.Fatal(err)
	}
	if !dl.Resync {
		t.Fatal("counts-changing relabel served as a row delta")
	}
	// Malformed from parameter → 400.
	resp, err := http.Get(base + "/v1/delta?from=banana")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad from param: status %d", resp.StatusCode)
	}
}

// TestServerMalformedBodies exercises the raw HTTP surface the typed
// client never produces.
func TestServerMalformedBodies(t *testing.T) {
	d, err := dyn.New(10, fullLabels(10, 2), dyn.Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := server.New(d, server.Options{})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, tc := range []struct {
		name, method, path, body string
		want                     int
	}{
		{"bad json", http.MethodPost, "/v1/edges", `{"edges":[`, http.StatusBadRequest},
		{"unknown field", http.MethodPost, "/v1/edges", `{"edgez":[]}`, http.StatusBadRequest},
		{"bad vertex", http.MethodGet, "/v1/embedding/xyz", "", http.StatusBadRequest},
		{"wrong method", http.MethodPut, "/v1/edges", `{}`, http.StatusMethodNotAllowed},
	} {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
}
