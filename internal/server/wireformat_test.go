package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"strings"
	"testing"

	"repro/internal/dyn"
	"repro/internal/graph"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/wire"
)

// wireTestServer spins up a server with some published structure and
// returns its base URL plus a JSON client for acks/stats.
func wireTestServer(t *testing.T) (*client.Client, string) {
	t.Helper()
	const n, k = 300, 5
	_, c, base := startServer(t, n, fullLabels(n, k), dyn.Options{K: k}, server.Options{})
	edges := make([]graph.Edge, 0, 4*n)
	for i := 0; i < 4*n; i++ {
		edges = append(edges, graph.Edge{
			U: graph.NodeID((7 * i) % n), V: graph.NodeID((11*i + 3) % n), W: float32(i%3 + 1),
		})
	}
	if _, err := c.InsertEdges(context.Background(), edges); err != nil {
		t.Fatal(err)
	}
	return c, base
}

// get fetches path with an explicit Accept header and returns the
// response Content-Type and body.
func get(t *testing.T, base, path, accept string) (string, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s (Accept %q): status %d", path, accept, resp.StatusCode)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.Header.Get("Content-Type"), buf.Bytes()
}

// TestContentNegotiation pins the negotiation contract: binary only
// when the client explicitly lists the frame type with nonzero q;
// everything else — absent, wildcard, malformed, q=0 — stays JSON, so
// a pre-binary client can never receive bytes it cannot parse.
func TestContentNegotiation(t *testing.T) {
	_, base := wireTestServer(t)
	cases := []struct {
		accept string
		binary bool
	}{
		{"", false},
		{"*/*", false},
		{"application/*", false},
		{"application/json", false},
		{"application/json, */*;q=0.1", false},
		{"total garbage ;; ,,", false},
		{wire.ContentType, true},
		{strings.ToUpper(wire.ContentType), true},
		{"application/json, " + wire.ContentType, true},
		{wire.ContentType + ";q=0.5", true},
		{wire.ContentType + ";q=0", false},
		{wire.ContentType + "; q=0.000", false},
		{wire.ContentType + "-not-really", false},
	}
	for _, tc := range cases {
		ct, body := get(t, base, "/v1/snapshot", tc.accept)
		gotBinary := strings.HasPrefix(ct, wire.ContentType)
		if gotBinary != tc.binary {
			t.Errorf("Accept %q: got Content-Type %q, want binary=%v", tc.accept, ct, tc.binary)
			continue
		}
		if gotBinary {
			if _, err := wire.DecodeFrame(body); err != nil {
				t.Errorf("Accept %q: binary body does not decode: %v", tc.accept, err)
			}
		} else if !json.Valid(body) {
			t.Errorf("Accept %q: JSON body invalid", tc.accept)
		}
	}
}

// TestSnapshotCrossFormatEquivalence fetches the same published
// snapshot over both wire formats and checks they describe the same
// matrix: identical header fields and labels, and every binary float32
// bitwise equal to the quantized JSON float64 — the only difference
// between the formats is the documented float32 narrowing.
func TestSnapshotCrossFormatEquivalence(t *testing.T) {
	_, base := wireTestServer(t)
	_, jsonBody := get(t, base, "/v1/snapshot", "")
	var js server.SnapshotResponse
	if err := json.Unmarshal(jsonBody, &js); err != nil {
		t.Fatal(err)
	}
	ct, binBody := get(t, base, "/v1/snapshot", wire.ContentType)
	if !strings.HasPrefix(ct, wire.ContentType) {
		t.Fatalf("binary fetch answered %q", ct)
	}
	f, err := wire.DecodeFrame(binBody)
	if err != nil {
		t.Fatal(err)
	}
	if f.Epoch != js.Epoch || f.Instance != js.Instance || int(f.N) != js.N ||
		int(f.K) != js.K || f.Edges != js.Edges {
		t.Fatalf("headers disagree: frame %+v vs JSON epoch=%d n=%d k=%d edges=%d",
			f.Header, js.Epoch, js.N, js.K, js.Edges)
	}
	// Strictly smaller is all this synthetic matrix can promise — its
	// values happen to format as short decimals. The ≥5× ratio the
	// sparse delta path reaches on the real workload is measured by
	// the geeload runs in EXPERIMENTS.md.
	if len(binBody) >= len(jsonBody) {
		t.Errorf("binary snapshot is %d bytes vs %d JSON — expected smaller", len(binBody), len(jsonBody))
	}
	for v := range js.Y {
		if f.Y[v] != js.Y[v] {
			t.Fatalf("Y[%d]: binary %d, JSON %d", v, f.Y[v], js.Y[v])
		}
	}
	for v := 0; v < js.N; v++ {
		for j := 0; j < js.K; j++ {
			bin := f.Rows[v*js.K+j]
			if math.Float32bits(bin) != math.Float32bits(float32(js.Z[v][j])) {
				t.Fatalf("Z[%d][%d]: binary %v, JSON %v (quantized %v)", v, j, bin, js.Z[v][j], float32(js.Z[v][j]))
			}
		}
	}
}

// TestBinaryClientSeesJSONValuesQuantized drives the typed client in
// both formats over delta and batched-embedding endpoints: the binary
// decode must surface exactly float64(float32(jsonValue)).
func TestBinaryClientSeesJSONValuesQuantized(t *testing.T) {
	_, base := wireTestServer(t)
	ctx := context.Background()
	cj := client.New(base, nil)
	cb := client.New(base, nil, client.WithWire(client.Binary))

	vs := []graph.NodeID{0, 7, 7, 299, 150}
	ej, err := cj.Embeddings(ctx, vs)
	if err != nil {
		t.Fatal(err)
	}
	eb, err := cb.Embeddings(ctx, vs)
	if err != nil {
		t.Fatal(err)
	}
	if ej.Epoch != eb.Epoch || len(ej.Rows) != len(eb.Rows) {
		t.Fatalf("batch read disagrees: %d rows at epoch %d vs %d rows at epoch %d",
			len(ej.Rows), ej.Epoch, len(eb.Rows), eb.Epoch)
	}
	for i := range ej.Rows {
		for j := range ej.Rows[i] {
			if float64(float32(ej.Rows[i][j])) != eb.Rows[i][j] {
				t.Fatalf("row %d col %d: JSON %v, binary %v", i, j, ej.Rows[i][j], eb.Rows[i][j])
			}
		}
	}

	// Delta from epoch 0 — either a real delta or a resync flag; both
	// clients must agree on which and on the contents.
	dj, err := cj.Delta(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	db, err := cb.Delta(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dj.Resync != db.Resync || dj.Epoch != db.Epoch || dj.Instance != db.Instance {
		t.Fatalf("delta disagrees: JSON %+v vs binary %+v", dj, db)
	}
	if !dj.Resync {
		if len(dj.Rows) != len(db.Rows) {
			t.Fatalf("delta row counts disagree: %d vs %d", len(dj.Rows), len(db.Rows))
		}
		for i := range dj.Rows {
			if dj.Rows[i] != db.Rows[i] {
				t.Fatalf("delta row id %d: JSON %d, binary %d", i, dj.Rows[i], db.Rows[i])
			}
			for j := range dj.Z[i] {
				if float64(float32(dj.Z[i][j])) != db.Z[i][j] {
					t.Fatalf("delta row %d col %d: JSON %v, binary %v", i, j, dj.Z[i][j], db.Z[i][j])
				}
			}
		}
	}
}

// TestStatszWireCounters checks /statsz splits response counts and
// bytes by endpoint and format, and that the binary bytes actually
// undercut the JSON bytes for the same snapshot.
func TestStatszWireCounters(t *testing.T) {
	c, base := wireTestServer(t)
	ctx := context.Background()
	st0, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	_, jsonBody := get(t, base, "/v1/snapshot", "")
	_, binBody := get(t, base, "/v1/snapshot", wire.ContentType)
	cb := client.New(base, nil, client.WithWire(client.Binary))
	if _, err := cb.Embeddings(ctx, []graph.NodeID{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := cb.Delta(ctx, 0); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	snap := st.Wire.Snapshot
	d0 := st0.Wire.Snapshot
	if snap.JSONResponses-d0.JSONResponses != 1 || snap.BinaryResponses-d0.BinaryResponses != 1 {
		t.Fatalf("snapshot counters moved by json=%d binary=%d, want 1 and 1",
			snap.JSONResponses-d0.JSONResponses, snap.BinaryResponses-d0.BinaryResponses)
	}
	if snap.JSONBytes-d0.JSONBytes != int64(len(jsonBody)) {
		t.Errorf("snapshot json_bytes moved by %d, body was %d", snap.JSONBytes-d0.JSONBytes, len(jsonBody))
	}
	if snap.BinaryBytes-d0.BinaryBytes != int64(len(binBody)) {
		t.Errorf("snapshot binary_bytes moved by %d, body was %d", snap.BinaryBytes-d0.BinaryBytes, len(binBody))
	}
	if len(binBody) >= len(jsonBody) {
		t.Errorf("binary snapshot %d bytes vs JSON %d — expected smaller", len(binBody), len(jsonBody))
	}
	if st.Wire.Embeddings.BinaryResponses-st0.Wire.Embeddings.BinaryResponses != 1 {
		t.Errorf("embeddings binary_responses did not move")
	}
	if st.Wire.Delta.BinaryResponses-st0.Wire.Delta.BinaryResponses != 1 {
		t.Errorf("delta binary_responses did not move")
	}
}
