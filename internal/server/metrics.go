// The HTTP measurement surface: every registered route is wrapped with
// a per-endpoint latency histogram, a status counter, and a
// response-bytes histogram split by negotiated wire format, all
// resolved at registration time so the per-request cost is a few
// atomic adds. The same wrapper drives the slow-request trace log:
// requests over Options.SlowRequestThreshold log their method, path,
// status, vertex count, epoch, and duration under a monotonically
// increasing per-request id.

package server

import (
	"fmt"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/wire"
)

// serverMetrics owns the server's registry, per-route instruments, and
// the request-trace flight recorder.
type serverMetrics struct {
	reg     *metrics.Registry
	slow    time.Duration
	slowLog *log.Logger
	reqID   atomic.Int64 // per-request ids for the slow-request trace

	// rec retains finished request traces (nil when tracing is
	// disabled; every trace call site is nil-safe).
	rec *trace.Recorder
	// Per-stage write latency histograms, fed from finished traces'
	// queue/fold/publish/ack spans.
	stageQueue   *metrics.Histogram
	stageFold    *metrics.Histogram
	stagePublish *metrics.Histogram
	stageAck     *metrics.Histogram
}

func newServerMetrics(opts Options) *serverMetrics {
	reg := opts.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	lg := opts.SlowRequestLog
	if lg == nil {
		lg = log.New(os.Stderr, "", log.LstdFlags|log.Lmicroseconds)
	}
	sm := &serverMetrics{reg: reg, slow: opts.SlowRequestThreshold, slowLog: lg}
	if !opts.DisableTracing {
		sm.rec = trace.NewRecorder(opts.TraceBuffer)
		const help = "Write-path latency decomposed by pipeline stage (from request traces)."
		sm.stageQueue = reg.Histogram("gee_write_stage_seconds", help,
			metrics.DefLatencyBuckets, metrics.L("stage", "queue"))
		sm.stageFold = reg.Histogram("gee_write_stage_seconds", help,
			metrics.DefLatencyBuckets, metrics.L("stage", "fold"))
		sm.stagePublish = reg.Histogram("gee_write_stage_seconds", help,
			metrics.DefLatencyBuckets, metrics.L("stage", "publish"))
		sm.stageAck = reg.Histogram("gee_write_stage_seconds", help,
			metrics.DefLatencyBuckets, metrics.L("stage", "ack"))
	}
	return sm
}

// routeMetrics is one endpoint's instrument set, resolved once when the
// route is registered.
type routeMetrics struct {
	sm      *serverMetrics
	route   string
	latency *metrics.Histogram
	// Response-body bytes by negotiated wire format. Per-request sizes
	// go through a histogram (the _sum doubles as the total).
	bytesJSON   *metrics.Histogram
	bytesBinary *metrics.Histogram
	// aborted counts streamed responses cut short by client departure
	// (already-committed 200s whose body never completed).
	aborted *metrics.Counter

	mu     sync.RWMutex
	status map[int]*metrics.Counter // guarded by mu; lazily populated per status code
}

func (sm *serverMetrics) route(pattern string) *routeMetrics {
	return &routeMetrics{
		sm:    sm,
		route: pattern,
		latency: sm.reg.Histogram("gee_http_request_seconds",
			"End-to-end request latency by route (mutations include the publish ack wait).",
			metrics.DefLatencyBuckets, metrics.L("route", pattern)),
		bytesJSON: sm.reg.Histogram("gee_http_response_bytes",
			"Response body bytes by route and negotiated wire format.",
			metrics.DefSizeBuckets, metrics.L("route", pattern), metrics.L("wire", "json")),
		bytesBinary: sm.reg.Histogram("gee_http_response_bytes",
			"Response body bytes by route and negotiated wire format.",
			metrics.DefSizeBuckets, metrics.L("route", pattern), metrics.L("wire", "binary")),
		aborted: sm.reg.Counter("gee_http_aborted_streams_total",
			"Streamed responses aborted mid-body by client departure (status was already committed).",
			metrics.L("route", pattern)),
		status: make(map[int]*metrics.Counter),
	}
}

// statusCounter resolves the counter for one status code, registering
// it on first sight (the per-route code set is tiny, so after warmup
// this is one RLock and a map read).
func (rm *routeMetrics) statusCounter(code int) *metrics.Counter {
	rm.mu.RLock()
	c := rm.status[code]
	rm.mu.RUnlock()
	if c != nil {
		return c
	}
	rm.mu.Lock()
	defer rm.mu.Unlock()
	if c = rm.status[code]; c == nil {
		c = rm.sm.reg.Counter("gee_http_requests_total",
			"Requests served by route and status code.",
			metrics.L("route", rm.route), metrics.L("code", strconv.Itoa(code)))
		rm.status[code] = c
	}
	return c
}

// meteredWriter wraps the ResponseWriter to capture status and bytes,
// and carries the handler's trace annotations (vertex count, epoch)
// back to the wrapper.
type meteredWriter struct {
	http.ResponseWriter
	status int
	bytes  int64

	// Slow-trace annotations, set by handlers via annotate/annotateOps.
	ops      int
	epoch    uint64
	hasEpoch bool

	// tr is this request's trace (nil when tracing is disabled);
	// handlers reach it through traceOf.
	tr *trace.Trace
	// aborted marks a streamed response the client abandoned mid-body,
	// set by handlers via annotateAborted.
	aborted bool
}

func (m *meteredWriter) WriteHeader(code int) {
	if m.status == 0 {
		m.status = code
	}
	m.ResponseWriter.WriteHeader(code)
}

func (m *meteredWriter) Write(p []byte) (int, error) {
	if m.status == 0 {
		m.status = http.StatusOK
	}
	n, err := m.ResponseWriter.Write(p)
	m.bytes += int64(n)
	return n, err
}

// Flush passes through so the streaming endpoints keep their
// incremental delivery.
func (m *meteredWriter) Flush() {
	if f, ok := m.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// annotate records the vertex/op count and snapshot epoch a request
// touched, for the slow-request trace. Safe on any writer (tests call
// handlers with a bare httptest recorder).
func annotate(w http.ResponseWriter, ops int, epoch uint64) {
	if m, ok := w.(*meteredWriter); ok {
		m.ops = ops
		m.epoch = epoch
		m.hasEpoch = true
	}
}

// annotateOps records only the op count (for requests rejected before
// any snapshot was loaded).
func annotateOps(w http.ResponseWriter, ops int) {
	if m, ok := w.(*meteredWriter); ok {
		m.ops = ops
	}
}

// annotateAborted marks a streamed response that the client abandoned
// mid-body — the committed status (usually 200) no longer describes
// what was delivered. The wrapper counts it and tags the trace.
func annotateAborted(w http.ResponseWriter) {
	if m, ok := w.(*meteredWriter); ok {
		m.aborted = true
	}
}

// traceOf returns the request's trace for handlers wanting to record
// spans. Nil (a universal no-op) on unwrapped writers or with tracing
// disabled.
func traceOf(w http.ResponseWriter) *trace.Trace {
	if m, ok := w.(*meteredWriter); ok {
		return m.tr
	}
	return nil
}

// wrap instruments one route handler. The instruments are captured in
// the closure — no per-request lookups beyond the status-code map.
func (sm *serverMetrics) wrap(rm *routeMetrics, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := sm.reqID.Add(1)
		var tr *trace.Trace
		if sm.rec != nil {
			// Adopt the client's id when the header carries one, so one
			// id names the request on both sides of the wire.
			if tid, ok := trace.ParseID(r.Header.Get(trace.Header)); ok {
				tr = trace.Adopt(tid, rm.route)
			} else {
				tr = trace.New(rm.route)
			}
		}
		t0 := time.Now()
		mw := &meteredWriter{ResponseWriter: w, tr: tr}
		h(mw, r)
		if mw.status == 0 {
			// Handler wrote nothing (e.g. a streamed response that
			// aborted before the first byte): the status on the wire is
			// whatever the http server defaulted to.
			mw.status = http.StatusOK
		}
		dur := time.Since(t0)
		rm.latency.Observe(dur.Seconds())
		rm.statusCounter(mw.status).Inc()
		if w.Header().Get("Content-Type") == wire.ContentType {
			rm.bytesBinary.Observe(float64(mw.bytes))
		} else {
			rm.bytesJSON.Observe(float64(mw.bytes))
		}
		if mw.aborted {
			rm.aborted.Inc()
		}
		if tr != nil {
			tr.Tag("status", strconv.Itoa(mw.status))
			if mw.hasEpoch {
				tr.Tag("epoch", strconv.FormatUint(mw.epoch, 10))
			}
			if mw.aborted {
				tr.Tag("aborted", "true")
			}
			tr.Finish()
			sm.observeStages(tr)
			sm.rec.Record(tr)
		}
		if sm.slow > 0 && dur >= sm.slow {
			sm.traceSlow(id, rm.route, r, mw, dur)
		}
	}
}

// observeStages feeds the per-stage histograms from a finished trace's
// pipeline spans, so /metrics separates what the aggregate ack-wait
// histogram lumps together.
func (sm *serverMetrics) observeStages(tr *trace.Trace) {
	for _, sp := range tr.Spans() {
		var h *metrics.Histogram
		switch sp.Name {
		case "queue":
			h = sm.stageQueue
		case "fold":
			h = sm.stageFold
		case "publish":
			h = sm.stagePublish
		case "ack":
			h = sm.stageAck
		}
		if h != nil {
			h.Observe(sp.Duration().Seconds())
		}
	}
}

// traceSlow emits one slow-request line. The format is stable (keyed
// fields, one line) so log scrapers can parse it:
//
//	slow-request id=17 method=POST path=/v1/edges status=200 vertices=128 epoch=42 dur=153.2ms trace=00c27e5a93f1b204
//
// When tracing is on, a second line dumps the trace's span tree so the
// latency decomposition is in the log next to the event:
//
//	slow-request id=17 trace=00c27e5a93f1b204 spans: queue=1.2ms fold=3.4ms{batch_requests=7,batch_ops=224} publish=9.1ms ack=0.1ms
func (sm *serverMetrics) traceSlow(id int64, route string, r *http.Request, mw *meteredWriter, dur time.Duration) {
	epoch := "-"
	if mw.hasEpoch {
		epoch = strconv.FormatUint(mw.epoch, 10)
	}
	traceID := "-"
	if mw.tr != nil {
		traceID = mw.tr.ID().String()
	}
	sm.slowLog.Printf("slow-request id=%d method=%s path=%s route=%q status=%d vertices=%d epoch=%s dur=%s trace=%s",
		id, r.Method, r.URL.Path, route, mw.status, mw.ops, epoch, dur.Round(100*time.Microsecond), traceID)
	if mw.tr != nil && len(mw.tr.Spans()) > 0 {
		sm.slowLog.Printf("slow-request id=%d trace=%s spans: %s", id, traceID, formatSpans(mw.tr))
	}
}

// formatSpans renders a finished trace's spans on one line, in
// recorded order: name=duration{tag=v,...} separated by spaces.
func formatSpans(tr *trace.Trace) string {
	var b strings.Builder
	for i, sp := range tr.Spans() {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(sp.Name)
		b.WriteByte('=')
		b.WriteString(sp.Duration().Round(10 * time.Microsecond).String())
		if len(sp.Tags) > 0 {
			b.WriteByte('{')
			for j, tag := range sp.Tags {
				if j > 0 {
					b.WriteByte(',')
				}
				b.WriteString(tag.Key)
				b.WriteByte('=')
				b.WriteString(tag.Value)
			}
			b.WriteByte('}')
		}
	}
	return b.String()
}

// handleMetrics serves the Prometheus text exposition.
func (sm *serverMetrics) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := sm.reg.WriteText(w); err != nil {
		// Headers are gone; all we can do is cut the stream short.
		fmt.Fprintf(os.Stderr, "metrics exposition: %v\n", err)
	}
}
