// The HTTP measurement surface: every registered route is wrapped with
// a per-endpoint latency histogram, a status counter, and a
// response-bytes histogram split by negotiated wire format, all
// resolved at registration time so the per-request cost is a few
// atomic adds. The same wrapper drives the slow-request trace log:
// requests over Options.SlowRequestThreshold log their method, path,
// status, vertex count, epoch, and duration under a monotonically
// increasing per-request id.

package server

import (
	"fmt"
	"log"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/wire"
)

// serverMetrics owns the server's registry and per-route instruments.
type serverMetrics struct {
	reg     *metrics.Registry
	slow    time.Duration
	slowLog *log.Logger
	reqID   atomic.Int64 // per-request ids for the slow-request trace
}

func newServerMetrics(opts Options) *serverMetrics {
	reg := opts.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	lg := opts.SlowRequestLog
	if lg == nil {
		lg = log.New(os.Stderr, "", log.LstdFlags|log.Lmicroseconds)
	}
	return &serverMetrics{reg: reg, slow: opts.SlowRequestThreshold, slowLog: lg}
}

// routeMetrics is one endpoint's instrument set, resolved once when the
// route is registered.
type routeMetrics struct {
	sm      *serverMetrics
	route   string
	latency *metrics.Histogram
	// Response-body bytes by negotiated wire format. Per-request sizes
	// go through a histogram (the _sum doubles as the total).
	bytesJSON   *metrics.Histogram
	bytesBinary *metrics.Histogram

	mu     sync.RWMutex
	status map[int]*metrics.Counter // lazily populated per status code
}

func (sm *serverMetrics) route(pattern string) *routeMetrics {
	return &routeMetrics{
		sm:    sm,
		route: pattern,
		latency: sm.reg.Histogram("gee_http_request_seconds",
			"End-to-end request latency by route (mutations include the publish ack wait).",
			metrics.DefLatencyBuckets, metrics.L("route", pattern)),
		bytesJSON: sm.reg.Histogram("gee_http_response_bytes",
			"Response body bytes by route and negotiated wire format.",
			metrics.DefSizeBuckets, metrics.L("route", pattern), metrics.L("wire", "json")),
		bytesBinary: sm.reg.Histogram("gee_http_response_bytes",
			"Response body bytes by route and negotiated wire format.",
			metrics.DefSizeBuckets, metrics.L("route", pattern), metrics.L("wire", "binary")),
		status: make(map[int]*metrics.Counter),
	}
}

// statusCounter resolves the counter for one status code, registering
// it on first sight (the per-route code set is tiny, so after warmup
// this is one RLock and a map read).
func (rm *routeMetrics) statusCounter(code int) *metrics.Counter {
	rm.mu.RLock()
	c := rm.status[code]
	rm.mu.RUnlock()
	if c != nil {
		return c
	}
	rm.mu.Lock()
	defer rm.mu.Unlock()
	if c = rm.status[code]; c == nil {
		c = rm.sm.reg.Counter("gee_http_requests_total",
			"Requests served by route and status code.",
			metrics.L("route", rm.route), metrics.L("code", strconv.Itoa(code)))
		rm.status[code] = c
	}
	return c
}

// meteredWriter wraps the ResponseWriter to capture status and bytes,
// and carries the handler's trace annotations (vertex count, epoch)
// back to the wrapper.
type meteredWriter struct {
	http.ResponseWriter
	status int
	bytes  int64

	// Slow-trace annotations, set by handlers via annotate/annotateOps.
	ops      int
	epoch    uint64
	hasEpoch bool
}

func (m *meteredWriter) WriteHeader(code int) {
	if m.status == 0 {
		m.status = code
	}
	m.ResponseWriter.WriteHeader(code)
}

func (m *meteredWriter) Write(p []byte) (int, error) {
	if m.status == 0 {
		m.status = http.StatusOK
	}
	n, err := m.ResponseWriter.Write(p)
	m.bytes += int64(n)
	return n, err
}

// Flush passes through so the streaming endpoints keep their
// incremental delivery.
func (m *meteredWriter) Flush() {
	if f, ok := m.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// annotate records the vertex/op count and snapshot epoch a request
// touched, for the slow-request trace. Safe on any writer (tests call
// handlers with a bare httptest recorder).
func annotate(w http.ResponseWriter, ops int, epoch uint64) {
	if m, ok := w.(*meteredWriter); ok {
		m.ops = ops
		m.epoch = epoch
		m.hasEpoch = true
	}
}

// annotateOps records only the op count (for requests rejected before
// any snapshot was loaded).
func annotateOps(w http.ResponseWriter, ops int) {
	if m, ok := w.(*meteredWriter); ok {
		m.ops = ops
	}
}

// wrap instruments one route handler. The instruments are captured in
// the closure — no per-request lookups beyond the status-code map.
func (sm *serverMetrics) wrap(rm *routeMetrics, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := sm.reqID.Add(1)
		t0 := time.Now()
		mw := &meteredWriter{ResponseWriter: w}
		h(mw, r)
		if mw.status == 0 {
			// Handler wrote nothing (e.g. a streamed response that
			// aborted before the first byte): the status on the wire is
			// whatever the http server defaulted to.
			mw.status = http.StatusOK
		}
		dur := time.Since(t0)
		rm.latency.Observe(dur.Seconds())
		rm.statusCounter(mw.status).Inc()
		if w.Header().Get("Content-Type") == wire.ContentType {
			rm.bytesBinary.Observe(float64(mw.bytes))
		} else {
			rm.bytesJSON.Observe(float64(mw.bytes))
		}
		if sm.slow > 0 && dur >= sm.slow {
			sm.traceSlow(id, rm.route, r, mw, dur)
		}
	}
}

// traceSlow emits one slow-request line. The format is stable (keyed
// fields, one line) so log scrapers can parse it:
//
//	slow-request id=17 method=POST path=/v1/edges status=200 vertices=128 epoch=42 dur=153.2ms
func (sm *serverMetrics) traceSlow(id int64, route string, r *http.Request, mw *meteredWriter, dur time.Duration) {
	epoch := "-"
	if mw.hasEpoch {
		epoch = strconv.FormatUint(mw.epoch, 10)
	}
	sm.slowLog.Printf("slow-request id=%d method=%s path=%s route=%q status=%d vertices=%d epoch=%s dur=%s",
		id, r.Method, r.URL.Path, route, mw.status, mw.ops, epoch, dur.Round(100*time.Microsecond))
}

// handleMetrics serves the Prometheus text exposition.
func (sm *serverMetrics) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := sm.reg.WriteText(w); err != nil {
		// Headers are gone; all we can do is cut the stream short.
		fmt.Fprintf(os.Stderr, "metrics exposition: %v\n", err)
	}
}
