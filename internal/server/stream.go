package server

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"sync"

	"repro/internal/dyn"
	"repro/internal/sticky"
)

// Large read responses (snapshots, deltas, batched rows) are streamed
// through a streamer rather than marshaled whole: the n×K matrix never
// gets a second in-memory copy, floats go out in shortest round-trip
// form (a client re-reading them recovers the exact published bits),
// and — the part handleSnapshot originally got wrong — the stream
// aborts as soon as the client is gone. Without the abort a
// disconnected reader still cost the full O(nK) serialization:
// bufio's sticky error made the bytes vanish quietly while the loop
// kept formatting every remaining row.

// abortCheckEvery is how many rows are emitted between client-liveness
// checks: frequent enough that a vanished reader wastes at most a few
// hundred rows of formatting, rare enough that the context poll stays
// invisible next to the float formatting itself.
const abortCheckEvery = 256

// streamer incrementally writes one large response — JSON through the
// numeric writers below, binary frames through the stream_binary.go
// side. Chunks go through a sticky.Writer: the first client error is
// retained there, every later write is a cheap no-op, and the streamer
// checks the verdict once per abort window instead of once per chunk
// (which is why the bare w.Write calls below are legal — see the
// stickywrite analyzer). Streamers are pooled: the 64 KiB write buffer
// and the scratch formatting buffer survive across requests, so
// concurrent snapshot/delta streams stop paying a fresh allocation per
// request.
type streamer struct {
	w       *sticky.Writer
	ctx     context.Context
	scratch []byte
	// blob assembles a sparse delta body, which must be sized before
	// the header that precedes it can be written (so it cannot go
	// through w incrementally like scratch does).
	blob []byte
}

var streamerPool = sync.Pool{New: func() any {
	return &streamer{w: sticky.NewWriter(nil, 1<<16)}
}}

func newStreamer(w io.Writer, ctx context.Context) *streamer {
	s := streamerPool.Get().(*streamer)
	s.w.Reset(w)
	s.ctx = ctx
	return s
}

// bytesSent reports how many bytes reached the underlying writer so
// far (flush before reading it for a final figure) — the per-endpoint
// bytes-sent figure /statsz reports.
func (s *streamer) bytesSent() int64 { return s.w.BytesSent() }

// release returns the streamer (and its buffers) to the pool. The
// caller must not touch it afterwards. An unusually large delta blob
// (a sync spanning most of the matrix) is dropped rather than parked
// in the pool forever.
func (s *streamer) release() {
	s.w.Detach()
	s.ctx = nil
	if cap(s.blob) > 1<<20 {
		s.blob = nil
	}
	streamerPool.Put(s)
}

// aborted reports whether further output is pointless: the writer
// failed (client disconnected mid-flush) or the request context was
// cancelled (client disconnected while we were still formatting).
func (s *streamer) aborted() bool {
	return s.w.Err() != nil || s.ctx.Err() != nil
}

// failed reports whether the underlying writer itself errored. Unlike
// aborted it ignores the request context, so a fully delivered body
// whose client cancels just after the last flush is not misread as
// cut short.
func (s *streamer) failed() bool { return s.w.Err() != nil }

func (s *streamer) raw(v string)   { s.w.WriteString(v) }
func (s *streamer) rawByte(c byte) { s.w.WriteByte(c) }
func (s *streamer) flush() error   { return s.w.Flush() }

// The numeric writers format into one buffer reused across the whole
// stream (the write-back keeps the grown capacity), so a snapshot's
// n×K floats cost zero allocations, not one each.
//
//gee:noalloc
func (s *streamer) uintv(v uint64) {
	s.scratch = strconv.AppendUint(s.scratch[:0], v, 10)
	s.w.Write(s.scratch)
}

//gee:noalloc
func (s *streamer) intv(v int64) {
	s.scratch = strconv.AppendInt(s.scratch[:0], v, 10)
	s.w.Write(s.scratch)
}

//gee:noalloc
func (s *streamer) floatv(x float64) {
	s.scratch = strconv.AppendFloat(s.scratch[:0], x, 'g', -1, 64)
	s.w.Write(s.scratch)
}

// intArray emits a JSON array of int32s with periodic abort checks.
// Reports whether it ran to completion.
func (s *streamer) intArray(vals []int32) bool {
	s.rawByte('[')
	for i, v := range vals {
		if i%(8*abortCheckEvery) == 0 && s.aborted() {
			return false
		}
		if i > 0 {
			s.rawByte(',')
		}
		s.intv(int64(v))
	}
	s.rawByte(']')
	return true
}

// floatRows emits a JSON array of n row arrays, checking for a
// departed client every abortCheckEvery rows. Returns the number of
// rows emitted — n when the stream completed, less when it aborted
// (the truncated output only ever reaches a reader that already left).
func (s *streamer) floatRows(n int, row func(i int) []float64) int {
	s.rawByte('[')
	for i := 0; i < n; i++ {
		if i%abortCheckEvery == 0 && s.aborted() {
			return i
		}
		if i > 0 {
			s.rawByte(',')
		}
		s.rawByte('[')
		for c, x := range row(i) {
			if c > 0 {
				s.rawByte(',')
			}
			s.floatv(x)
		}
		s.rawByte(']')
	}
	s.rawByte(']')
	return n
}

// streamSnapshot writes one published snapshot as SnapshotResponse
// JSON. Returns the number of Z rows emitted; a short count means the
// client went away and the stream was cut. Split from the handler so
// tests can drive it with a failing writer or cancelled context.
func streamSnapshot(s *streamer, snap *dyn.Snapshot) int {
	fmt.Fprintf(s.w, `{"epoch":%d,"instance":%d,"n":%d,"k":%d,"edges":%d,"y":`,
		snap.Epoch, snap.Instance, snap.Z.R, snap.Z.C, snap.Edges)
	rows := 0
	if s.intArray(snap.Y) {
		s.raw(`,"z":`)
		rows = s.floatRows(snap.Z.R, snap.Z.Row)
		if rows == snap.Z.R {
			s.rawByte('}')
		}
	}
	s.flush()
	return rows
}

// streamSnapshotSection writes one shard's section of the sharded
// snapshot protocol: the streamSnapshot layout over the pre-sliced
// owned window (n is the section width, y and z carry only owned rows)
// plus the shard id and the window's global row offset, so a section is
// self-describing without /v1/partition in hand.
func streamSnapshotSection(s *streamer, snap *dyn.Snapshot, shardID, lo int) int {
	fmt.Fprintf(s.w, `{"epoch":%d,"instance":%d,"shard":%d,"lo":%d,"n":%d,"k":%d,"edges":%d,"y":`,
		snap.Epoch, snap.Instance, shardID, lo, snap.Z.R, snap.Z.C, snap.Edges)
	rows := 0
	if s.intArray(snap.Y) {
		s.raw(`,"z":`)
		rows = s.floatRows(snap.Z.R, snap.Z.Row)
		if rows == snap.Z.R {
			s.rawByte('}')
		}
	}
	s.flush()
	return rows
}

// streamDelta writes one dyn.Delta as DeltaResponse JSON; k is the
// embedding width. Returns the number of changed rows emitted.
func streamDelta(s *streamer, dl *dyn.Delta, k int) int {
	if dl.Resync {
		fmt.Fprintf(s.w, `{"from":%d,"epoch":%d,"instance":%d,"resync":true}`,
			dl.FromEpoch, dl.Epoch, dl.Instance)
		s.flush()
		return 0
	}
	fmt.Fprintf(s.w, `{"from":%d,"epoch":%d,"instance":%d,"resync":false,"edges":%d,"labels":[`,
		dl.FromEpoch, dl.Epoch, dl.Instance, dl.Edges)
	for i, lu := range dl.Labels {
		if i > 0 {
			s.rawByte(',')
		}
		fmt.Fprintf(s.w, `{"v":%d,"class":%d}`, lu.V, lu.Class)
	}
	s.raw(`],"rows":[`)
	for i, v := range dl.Rows {
		if i%(8*abortCheckEvery) == 0 && s.aborted() {
			s.flush()
			return 0
		}
		if i > 0 {
			s.rawByte(',')
		}
		s.uintv(uint64(v))
	}
	s.raw(`],"z":`)
	rows := s.floatRows(len(dl.Rows), func(i int) []float64 {
		return dl.Values[i*k : (i+1)*k]
	})
	if rows == len(dl.Rows) {
		s.rawByte('}')
	}
	s.flush()
	return rows
}
