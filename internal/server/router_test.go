package server

import (
	"bytes"
	"strconv"
	"testing"

	"repro/internal/dyn"
	"repro/internal/metrics"
	"repro/internal/shard"
)

// TestMaxRetryAfter pins the sharded backoff hint: a scattered write is
// admitted only when every target shard has room, so the hint must
// outwait the slowest shard — the max of the per-shard estimates, never
// below the 1-second floor, clamped at the 30-second ceiling, and 30
// for any shard with backlog but no observed drain.
func TestMaxRetryAfter(t *testing.T) {
	cases := []struct {
		name   string
		depths []int
		rates  []float64
		want   int
	}{
		{"no shards", nil, nil, 1},
		{"all empty", []int{0, 0, 0, 0}, []float64{10, 10, 10, 10}, 1},
		{"one hot", []int{0, 30, 0, 0}, []float64{10, 10, 10, 10}, 3},
		{"all full takes the max", []int{50, 80, 20, 10}, []float64{10, 10, 10, 10}, 8},
		{"cold shard with backlog", []int{0, 5, 0, 0}, []float64{10, 0, 10, 10}, 30},
		{"cold shards all idle", []int{0, 0}, []float64{0, 0}, 1},
		{"clamped at ceiling", []int{1000, 0}, []float64{1, 10}, 30},
		{"rounds up", []int{11, 0}, []float64{10, 10}, 2},
	}
	for _, tc := range cases {
		if got := maxRetryAfter(tc.depths, tc.rates); got != tc.want {
			t.Errorf("%s: maxRetryAfter(%v, %v) = %d, want %d", tc.name, tc.depths, tc.rates, got, tc.want)
		}
	}
}

// TestShardedInstrumentDistinctSeries pins the shard-label dimension:
// four shards registering the same instrument names against ONE
// registry must yield four distinct labeled series
// (gee_coalescer_queue_depth{shard="2"} and so on). The registry
// silently aliases a duplicate name+labels registration instead of
// panicking, so without the shard label every shard would write the
// first shard's cells and this test would see one series, not four.
func TestShardedInstrumentDistinctSeries(t *testing.T) {
	const n, k, nShards = 64, 4, 4
	y := make([]int32, n)
	for v := range y {
		y[v] = int32(v % k)
	}
	p, err := shard.NewPartition(n, nShards)
	if err != nil {
		t.Fatal(err)
	}
	shs, err := shard.NewShards(p, y, dyn.Options{K: k})
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	s := NewSharded(p, shs, Options{Metrics: reg})
	defer func() {
		if err := s.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	samples, err := metrics.ParseText(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	perShard := []string{"gee_coalescer_queue_depth", "gee_index_epoch"}
	seen := map[string]map[string]bool{}
	routerShards := -1.0
	for _, smp := range samples {
		for _, name := range perShard {
			if smp.Name == name {
				if seen[name] == nil {
					seen[name] = map[string]bool{}
				}
				seen[name][smp.Labels["shard"]] = true
			}
		}
		if smp.Name == "gee_router_shards" {
			routerShards = smp.Value
		}
	}
	for _, name := range perShard {
		got := seen[name]
		if len(got) != nShards {
			t.Errorf("%s: %d distinct shard-label series %v, want %d", name, len(got), got, nShards)
			continue
		}
		for i := 0; i < nShards; i++ {
			if !got[strconv.Itoa(i)] {
				t.Errorf("%s: missing shard=%q series", name, strconv.Itoa(i))
			}
		}
	}
	if routerShards != nShards {
		t.Errorf("gee_router_shards = %v, want %d", routerShards, nShards)
	}
}
