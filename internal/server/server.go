package server

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"repro/internal/cluster"
	"repro/internal/dyn"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/shard"
	"repro/internal/wire"
)

// Wire types. An omitted edge weight means 1; an *explicit* zero,
// negative, or non-finite weight is rejected with a 400 — the server
// must never silently rewrite a value the client actually sent.

// EdgeWire is one edge in a mutation request. W is a pointer so the
// decoder can tell "omitted" (nil → weight 1) from an explicit "w":0
// (rejected).
type EdgeWire struct {
	U uint32   `json:"u"`
	V uint32   `json:"v"`
	W *float32 `json:"w,omitempty"`
}

// LabelWire is one label update in a mutation request; class -1 removes
// the label.
type LabelWire struct {
	V     uint32 `json:"v"`
	Class int32  `json:"class"`
}

// MutationRequest is the body of POST /v1/edges, DELETE /v1/edges, and
// POST /v1/labels. Edge endpoints read Edges; the label endpoint reads
// Labels.
type MutationRequest struct {
	Edges  []EdgeWire  `json:"edges,omitempty"`
	Labels []LabelWire `json:"labels,omitempty"`
}

// MutationResponse acknowledges an applied mutation: every snapshot at
// or after Epoch reflects its operations. On a sharded server Epochs
// carries the per-shard ack vector — Epochs[i] is the epoch at which
// shard i published this batch's operations (only shards the batch
// touched appear) — and Epoch is its max; read-your-writes per shard
// keys on the vector, not the scalar.
type MutationResponse struct {
	Epoch   uint64            `json:"epoch"`
	Epochs  shard.EpochVector `json:"epochs,omitempty"`
	Applied int               `json:"applied"`
}

// EmbeddingResponse is the body of GET /v1/embedding/{v}: one vertex's
// row of the snapshot published at Epoch.
type EmbeddingResponse struct {
	Epoch uint64    `json:"epoch"`
	V     uint32    `json:"v"`
	Row   []float64 `json:"row"`
}

// SnapshotResponse is the body of GET /v1/snapshot (streamed on the
// way out; clients decode it whole). On a sharded server the endpoint
// serves per-shard sections (?shard=i, required): Shard and Lo identify
// the section, N is the section width (hi−lo), and Y/Z carry only the
// owned window — vertex Lo+j is row j. An unsharded snapshot never sets
// Shard/Lo.
type SnapshotResponse struct {
	Epoch uint64 `json:"epoch"`
	// Instance identifies the embedder lifetime; epochs from different
	// instances are not comparable (a follower must resync across a
	// server restart). Sharded: per-shard lifetime.
	Instance uint64      `json:"instance"`
	Shard    int         `json:"shard,omitempty"`
	Lo       uint32      `json:"lo,omitempty"`
	N        int         `json:"n"`
	K        int         `json:"k"`
	Edges    int64       `json:"edges"`
	Y        []int32     `json:"y"`
	Z        [][]float64 `json:"z"`
}

// BatchEmbeddingRequest is the body of POST /v1/embeddings: a batched
// multi-vertex read answered from one snapshot load.
type BatchEmbeddingRequest struct {
	Vs []uint32 `json:"vs"`
}

// BatchEmbeddingResponse is the body of POST /v1/embeddings: Rows[i]
// is vertex Vs[i]'s row of the snapshot published at Epoch — all rows
// from the same version, which per-vertex GETs cannot promise. On a
// sharded server each row comes from its owner shard's snapshot,
// Epochs is that per-shard version vector, and Epoch is its max (the
// "same version" promise becomes per-shard).
type BatchEmbeddingResponse struct {
	Epoch  uint64            `json:"epoch"`
	Epochs shard.EpochVector `json:"epochs,omitempty"`
	Rows   [][]float64       `json:"rows"`
}

// NeighborsRequest is the body of POST /v1/neighbors: the top K
// vertices nearest to V in the published embedding under Metric
// ("l2", the default, or "cosine"). Mode "exact" (the default) scans
// the live snapshot; "approx" answers from the IVF index — possibly a
// few epochs behind the published snapshot (the response says which) —
// probing NProbe inverted lists (0 = the server's default).
type NeighborsRequest struct {
	V      uint32 `json:"v"`
	K      int    `json:"k"`
	Metric string `json:"metric,omitempty"`
	Mode   string `json:"mode,omitempty"`
	NProbe int    `json:"nprobe,omitempty"`
}

// NeighborWire is one neighbor: a vertex and its distance to the query
// vertex.
type NeighborWire struct {
	V    uint32  `json:"v"`
	Dist float64 `json:"dist"`
}

// NeighborsResponse is the body of POST /v1/neighbors, neighbors in
// ascending distance order (the query vertex itself excluded). Mode is
// what actually answered — an "approx" request is served "exact" while
// the index is cold or the matrix is below the index threshold — and
// IndexEpoch is the epoch of the data the distances were computed
// against: equal to Epoch (the published epoch at answer time) for
// exact answers, possibly older for approx ones (index staleness).
// On a sharded server the scan scatter-gathers: each shard ranks its
// owned rows and the partials merge under the same order, Epochs is the
// per-shard snapshot vector the scan covered, Mode is "approx" when at
// least one shard answered from its index, and IndexEpoch is the oldest
// data epoch any shard's distances were computed against.
type NeighborsResponse struct {
	Epoch      uint64            `json:"epoch"`
	Epochs     shard.EpochVector `json:"epochs,omitempty"`
	IndexEpoch uint64            `json:"index_epoch"`
	Mode       string            `json:"mode"`
	V          uint32            `json:"v"`
	Metric     string            `json:"metric"`
	Neighbors  []NeighborWire    `json:"neighbors"`
}

// DeltaResponse is the body of GET /v1/delta?from=E (streamed on the
// way out). When Resync is false, overwriting rows Rows[i] with Z[i]
// and applying Labels turns an epoch-From copy into the epoch-Epoch
// snapshot exactly; when Resync is true the follower must refetch
// /v1/snapshot (the ring evicted From, or an epoch in the span changed
// class counts and rescaled whole columns).
type DeltaResponse struct {
	From  uint64 `json:"from"`
	Epoch uint64 `json:"epoch"`
	// Instance is the embedder lifetime the epochs belong to; a
	// follower holding state from a different instance must discard it
	// and bootstrap from /v1/snapshot even on a non-resync response.
	Instance uint64      `json:"instance"`
	Resync   bool        `json:"resync"`
	Edges    int64       `json:"edges,omitempty"`
	Labels   []LabelWire `json:"labels,omitempty"`
	Rows     []uint32    `json:"rows,omitempty"`
	Z        [][]float64 `json:"z,omitempty"`
}

// HealthResponse is the body of GET /healthz.
type HealthResponse struct {
	Status string `json:"status"`
	Epoch  uint64 `json:"epoch"`
	N      int    `json:"n"`
	K      int    `json:"k"`
}

// ReadyResponse is the body of GET /readyz. Unlike /healthz (process
// liveness), readiness means the server can actually do its job: the
// ingest coalescer is accepting writes and a snapshot epoch has
// published for reads.
type ReadyResponse struct {
	Ready  bool   `json:"ready"`
	Reason string `json:"reason,omitempty"`
	Epoch  uint64 `json:"epoch"`
}

// StatsResponse is the body of GET /statsz. On a sharded server Dyn,
// Coalescer, and Index are aggregates (epochs maxed, counters summed —
// a cut edge counts once per owner in LiveEdges), Shards holds the
// exact per-shard breakdown, and Epochs is the published epoch vector.
type StatsResponse struct {
	N         int            `json:"n"`
	K         int            `json:"k"`
	Dyn       dyn.Stats      `json:"dyn"`
	Coalescer CoalescerStats `json:"coalescer"`
	Index     IndexStats     `json:"index"`
	// Wire counts responses and bytes sent by the row-carrying
	// endpoints, split by negotiated format — the JSON-vs-binary byte
	// win, visible in production rather than only in geeload output.
	Wire   WireStats         `json:"wire"`
	Shards []ShardStats      `json:"shards,omitempty"`
	Epochs shard.EpochVector `json:"epochs,omitempty"`
}

// ShardStats is one shard's slice of /statsz on a sharded server.
type ShardStats struct {
	Shard     int            `json:"shard"`
	Lo        uint32         `json:"lo"`
	Hi        uint32         `json:"hi"`
	Instance  uint64         `json:"instance"`
	Dyn       dyn.Stats      `json:"dyn"`
	Coalescer CoalescerStats `json:"coalescer"`
	Index     IndexStats     `json:"index"`
}

// ErrorResponse carries any non-2xx outcome.
type ErrorResponse struct {
	Error string `json:"error"`
}

// maxBodyBytes bounds a mutation request body (64 MiB ≈ 5M edges) so a
// single client cannot balloon server memory.
const maxBodyBytes = 64 << 20

// Connection and response-amplification defaults (overridable via
// Options). The header timeout kills Slowloris-style clients that open
// a connection and trickle header bytes forever; the idle timeout
// reclaims keep-alive connections of departed clients; the read-batch
// cap stops a small duplicate-heavy /v1/embeddings body from streaming
// an arbitrarily large response.
const (
	defaultReadHeaderTimeout = 5 * time.Second
	defaultIdleTimeout       = 2 * time.Minute
	defaultMaxReadBatch      = 8192
)

// Options configures a Server.
type Options struct {
	// Coalescer bounds the ingest micro-batching (zero fields select
	// defaults; see CoalescerOptions).
	Coalescer CoalescerOptions
	// SearchWorkers bounds the parallelism of one /v1/neighbors scan
	// or probe (and of an index build); <= 0 selects GOMAXPROCS.
	SearchWorkers int
	// Index configures the /v1/neighbors approximate (IVF) index.
	Index IndexOptions
	// ReadHeaderTimeout bounds how long a connection may take to send
	// its request headers. 0 selects 5s; negative disables.
	ReadHeaderTimeout time.Duration
	// IdleTimeout bounds how long a keep-alive connection may sit
	// idle. 0 selects 2m; negative disables.
	IdleTimeout time.Duration
	// MaxReadBatch caps len(vs) of one POST /v1/embeddings request.
	// 0 selects 8192; negative disables the cap.
	MaxReadBatch int
	// Metrics is the registry the server instruments itself (and the
	// embedder, coalescer, and index cache) into, served at
	// GET /metrics. Nil selects a fresh registry. One registry backs
	// one server: instrument names are fixed, so two servers sharing a
	// registry would share cells.
	Metrics *metrics.Registry
	// EnablePprof mounts net/http/pprof under /debug/pprof/ on the same
	// mux. Off by default: profiling endpoints leak heap contents and
	// must be an explicit operator decision.
	EnablePprof bool
	// SlowRequestThreshold enables the slow-request trace: any request
	// taking at least this long logs its method, path, status, vertex
	// count, epoch, and duration under a per-request id. 0 disables.
	SlowRequestThreshold time.Duration
	// SlowRequestLog receives slow-request lines. Nil selects stderr.
	SlowRequestLog *log.Logger
	// DisableTracing turns off the always-on request tracing (span
	// recording, /debug/traces, the per-stage write histograms). The
	// recorder is bounded memory and its per-request cost is a handful
	// of small allocations, so this exists as a measurement escape
	// hatch (the overhead A/B in EXPERIMENTS.md), not a recommendation.
	DisableTracing bool
	// TraceBuffer is the capacity of the flight recorder's recent-traces
	// ring. 0 selects 256. Each slowest-retained bucket holds 1/8 of it.
	TraceBuffer int
}

// Server serves a DynamicEmbedder — or a vertex-partitioned set of
// them — over HTTP. Construct with New (single embedder) or NewSharded
// (scatter-gather router); both start the ingest coalescer(s). Expose
// Handler somewhere (or use ListenAndServe/Serve), and Shutdown to
// drain. Every handler resolves through the backend interface, so the
// route table, decoding, tracing, and wire formats are shared across
// both shapes.
type Server struct {
	be      backend
	mux     *http.ServeMux
	http    *http.Server
	maxRead int
	wire    wireCounters
	sm      *serverMetrics

	// co aliases the single backend's coalescer (nil when sharded) for
	// Coalescer() and the white-box tests.
	co *Coalescer
}

// orDefault maps the Options timeout/limit convention (0 = default,
// negative = disabled) onto the value the http.Server / handler wants
// (0 = disabled).
func orDefault[T int | time.Duration](v, def T) T {
	switch {
	case v == 0:
		return def
	case v < 0:
		return 0
	}
	return v
}

// New builds a server over the embedder and starts its coalescer.
// Other writers may Apply to the embedder directly (dyn serializes
// writers, and a publish covers every applied op regardless of origin,
// so acks stay sound); only the coalescer's Flushes/Publishes counters
// then stop matching the dyn counters exactly.
func New(d *dyn.DynamicEmbedder, opts Options) *Server {
	s := newServer(d, opts)
	s.be.start()
	return s
}

// NewSharded builds a scatter-gather server over a vertex-partitioned
// shard set (see shard.NewShards) and starts every shard's coalescer.
// Writes split by edge endpoint, reads route or scatter by owner, and
// /v1/snapshot and /v1/delta serve per-shard sections (?shard=i).
func NewSharded(p *shard.Partition, shards []*shard.Shard, opts Options) *Server {
	s := newShardedServer(p, shards, opts)
	s.be.start()
	return s
}

// newServer wires the routes without starting the coalescer (white-box
// tests exercise the backpressure path against an idle queue).
func newServer(d *dyn.DynamicEmbedder, opts Options) *Server {
	sb := newSingleBackend(d, opts)
	s := wireServer(sb, opts)
	s.co = sb.co
	return s
}

// newShardedServer is NewSharded without starting the coalescers.
func newShardedServer(p *shard.Partition, shards []*shard.Shard, opts Options) *Server {
	return wireServer(newRouter(p, shards, opts), opts)
}

// wireServer builds the mux, metrics, and route table over a backend —
// the single shared serving surface.
func wireServer(be backend, opts Options) *Server {
	s := &Server{
		be:      be,
		maxRead: orDefault(opts.MaxReadBatch, defaultMaxReadBatch),
	}
	s.mux = http.NewServeMux()
	// Built here, not in Serve: Shutdown may run concurrently with (or
	// before) Serve from another goroutine, so the field must be
	// immutable after construction.
	s.http = &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: orDefault(opts.ReadHeaderTimeout, defaultReadHeaderTimeout),
		IdleTimeout:       orDefault(opts.IdleTimeout, defaultIdleTimeout),
	}
	s.sm = newServerMetrics(opts)
	// Every API route goes through the metrics wrapper; the instruments
	// are resolved here, once, so the per-request cost is atomic adds.
	handle := func(pattern string, h http.HandlerFunc) {
		s.mux.HandleFunc(pattern, s.sm.wrap(s.sm.route(pattern), h))
	}
	handle("POST /v1/edges", s.handleInsert)
	handle("DELETE /v1/edges", s.handleDelete)
	handle("POST /v1/labels", s.handleLabels)
	handle("GET /v1/embedding/{v}", s.handleEmbedding)
	handle("POST /v1/embeddings", s.handleEmbeddings)
	handle("POST /v1/neighbors", s.handleNeighbors)
	handle("GET /v1/partition", s.handlePartition)
	handle("GET /v1/snapshot", s.handleSnapshot)
	handle("GET /v1/delta", s.handleDelta)
	handle("GET /healthz", s.handleHealth)
	handle("GET /readyz", s.handleReady)
	handle("GET /statsz", s.handleStats)
	// The exposition endpoint itself stays unwrapped: scrapes measuring
	// themselves would put the scraper in every latency histogram. The
	// trace dump likewise: reading the flight recorder must not write
	// into it.
	s.mux.HandleFunc("GET /metrics", s.sm.handleMetrics)
	s.mux.HandleFunc("GET /debug/traces", s.handleTraces)
	if opts.EnablePprof {
		// pprof.Index dispatches /debug/pprof/{heap,goroutine,...} by
		// path suffix, so the subtree pattern covers the named profiles.
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	s.be.instrument(s.sm.reg)
	metrics.RegisterRuntime(s.sm.reg)
	return s
}

// Metrics returns the server's registry (the one /metrics serves), for
// embedding processes that want to add their own instruments.
func (s *Server) Metrics() *metrics.Registry { return s.sm.reg }

// Handler returns the HTTP handler (for httptest or custom servers).
func (s *Server) Handler() http.Handler { return s.mux }

// Coalescer exposes the ingest coalescer (stats, direct Submit). Nil
// on a sharded server, which runs one coalescer per shard (see
// /statsz for the per-shard view).
func (s *Server) Coalescer() *Coalescer { return s.co }

// ListenAndServe serves on addr until Shutdown. It reports the bound
// address through ready (useful with ":0") before blocking.
func (s *Server) ListenAndServe(addr string, ready func(net.Addr)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if ready != nil {
		ready(ln.Addr())
	}
	return s.Serve(ln)
}

// Serve serves on an existing listener until Shutdown.
func (s *Server) Serve(ln net.Listener) error {
	err := s.http.Serve(ln)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// Shutdown drains gracefully: stop accepting connections, wait for
// in-flight requests (their acks still arrive — the coalescer is
// stopped only afterwards), then drain and close the coalescer. Safe
// to call whether or not Serve was used.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.http.Shutdown(ctx)
	s.be.close()
	return err
}

// Close is Shutdown with no deadline.
func (s *Server) Close() error { return s.Shutdown(context.Background()) }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// decodeBody parses a bounded JSON request body into T.
func decodeBody[T any](w http.ResponseWriter, r *http.Request) (*T, bool) {
	var req T
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return nil, false
	}
	return &req, true
}

// decodeMutation parses a bounded JSON mutation body.
func decodeMutation(w http.ResponseWriter, r *http.Request) (*MutationRequest, bool) {
	return decodeBody[MutationRequest](w, r)
}

// toEdges converts wire edges. An omitted weight defaults to 1; an
// explicit zero, negative, or non-finite weight is an error — the old
// behavior of rewriting "w":0 to 1 silently mutated the client's
// request (and made a zero-weight delete match a weight-1 edge).
func toEdges(wire []EdgeWire) ([]graph.Edge, error) {
	edges := make([]graph.Edge, len(wire))
	for i, e := range wire {
		w := float32(1)
		if e.W != nil {
			w = *e.W
			if f := float64(w); w <= 0 || math.IsNaN(f) || math.IsInf(f, 0) {
				return nil, fmt.Errorf("edge %d (%d->%d): weight %v is not a positive finite number (omit w for 1)",
					i, e.U, e.V, w)
			}
		}
		edges[i] = graph.Edge{U: e.U, V: e.V, W: w}
	}
	return edges, nil
}

// submit runs one write batch through the backend and replies with the
// ack. The handler blocks until the batch is published (on every shard
// it touched, when sharded) — that is the point: a 200 means
// read-your-write holds from Epoch (or the Epochs vector) on.
func (s *Server) submit(w http.ResponseWriter, b dyn.Batch, ops int) {
	annotateOps(w, ops)
	// The trace crosses into the coalescer here and comes back with the
	// ack; both handoffs ride channels, so the unsynchronized span
	// writes in between are ordered.
	tr := traceOf(w)
	a, err := s.be.submit(b, tr)
	switch err {
	case nil:
	case ErrBacklog:
		// Retry-After derives from the observed drain rate, not a
		// constant: a client backing off for exactly as long as the queue
		// needs to drain avoids both thundering retries and dead air.
		w.Header().Set("Retry-After", strconv.Itoa(s.be.retryAfter()))
		writeError(w, http.StatusTooManyRequests, "ingest queue full")
		return
	case ErrClosed:
		writeError(w, http.StatusServiceUnavailable, "shutting down")
		return
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	// The ack span is the handoff back: channel wake-up plus handler
	// resume, measured from the instant the ingest goroutine released
	// the ack.
	if tr != nil && !a.sent.IsZero() {
		tr.AddSpan("ack", a.sent, time.Now())
	}
	if a.err != nil {
		writeError(w, http.StatusBadRequest, "%v", a.err)
		return
	}
	annotate(w, ops, a.epoch)
	writeJSON(w, http.StatusOK, MutationResponse{Epoch: a.epoch, Epochs: a.epochs, Applied: ops})
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeMutation(w, r)
	if !ok {
		return
	}
	// Never silently drop operations: a populated wrong-kind field
	// would be acked without being applied.
	if len(req.Labels) > 0 {
		writeError(w, http.StatusBadRequest, "labels not accepted on /v1/edges (use /v1/labels)")
		return
	}
	edges, err := toEdges(req.Edges)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.submit(w, dyn.Batch{Insert: edges}, len(edges))
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeMutation(w, r)
	if !ok {
		return
	}
	if len(req.Labels) > 0 {
		writeError(w, http.StatusBadRequest, "labels not accepted on /v1/edges (use /v1/labels)")
		return
	}
	edges, err := toEdges(req.Edges)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.submit(w, dyn.Batch{Delete: edges}, len(edges))
}

func (s *Server) handleLabels(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeMutation(w, r)
	if !ok {
		return
	}
	if len(req.Edges) > 0 {
		writeError(w, http.StatusBadRequest, "edges not accepted on /v1/labels (use /v1/edges)")
		return
	}
	ups := make([]dyn.LabelUpdate, len(req.Labels))
	for i, l := range req.Labels {
		ups[i] = dyn.LabelUpdate{V: l.V, Class: l.Class}
	}
	s.submit(w, dyn.Batch{Labels: ups}, len(ups))
}

func (s *Server) handleEmbedding(w http.ResponseWriter, r *http.Request) {
	v, err := strconv.ParseUint(r.PathValue("v"), 10, 32)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad vertex %q", r.PathValue("v"))
		return
	}
	if int(v) >= s.be.vertices() {
		writeError(w, http.StatusNotFound, "vertex %d outside [0,%d)", v, s.be.vertices())
		return
	}
	// The owner shard's snapshot is the authority for this row (the
	// single backend's only snapshot, unsharded).
	snap := s.be.snapshotFor(uint32(v))
	row := make([]float64, snap.Z.C)
	copy(row, snap.Z.Row(int(v)))
	annotate(w, 1, snap.Epoch)
	writeJSON(w, http.StatusOK, EmbeddingResponse{Epoch: snap.Epoch, V: uint32(v), Row: row})
}

// handleEmbeddings answers a batched multi-vertex read from a single
// snapshot load: all returned rows come from the same published
// version. Any out-of-range vertex fails the whole request (a partial
// answer would silently drop reads), and the vertex count is capped —
// the body size bound alone does not stop a tiny duplicate-heavy vs
// list from amplifying into an arbitrarily large streamed response.
func (s *Server) handleEmbeddings(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeBody[BatchEmbeddingRequest](w, r)
	if !ok {
		return
	}
	if s.maxRead > 0 && len(req.Vs) > s.maxRead {
		writeError(w, http.StatusBadRequest, "batch read of %d vertices exceeds the limit of %d per request",
			len(req.Vs), s.maxRead)
		return
	}
	rv := s.be.view()
	n := s.be.vertices()
	for _, v := range req.Vs {
		if int(v) >= n {
			writeError(w, http.StatusNotFound, "vertex %d outside [0,%d)", v, n)
			return
		}
	}
	ev := rv.epochs() // nil unsharded
	epoch := rv.epoch()
	annotate(w, len(req.Vs), epoch)
	st := newStreamer(w, r.Context())
	defer st.release()
	var rows int
	// The binary embeddings frame carries one epoch/instance pair, which
	// a sharded response does not have (each row is stamped by its owner
	// shard); a sharded server answers JSON regardless of Accept.
	if binary := wantsBinary(r); binary && ev == nil {
		w.Header().Set("Content-Type", wire.ContentType)
		rows = streamEmbeddingsBinary(st, rv.snaps[0], req.Vs)
		s.wire.embeddings.record(binary, st.bytesSent())
	} else {
		w.Header().Set("Content-Type", "application/json")
		if ev != nil {
			evJSON, _ := json.Marshal(ev)
			fmt.Fprintf(st.w, `{"epoch":%d,"epochs":%s,"rows":`, epoch, evJSON)
		} else {
			fmt.Fprintf(st.w, `{"epoch":%d,"rows":`, epoch)
		}
		rows = st.floatRows(len(req.Vs), func(i int) []float64 {
			return rv.row(req.Vs[i])
		})
		if rows == len(req.Vs) {
			st.rawByte('}')
		}
		st.flush()
		s.wire.embeddings.record(false, st.bytesSent())
	}
	if rows != len(req.Vs) || st.failed() {
		annotateAborted(w)
	}
}

// handleNeighbors answers a top-k nearest-neighbor query over the
// published embedding. Mode "exact" (the default) runs the parallel
// brute-force scan over the live snapshot; mode "approx" probes the
// IVF index, which may trail the published epoch (the response carries
// the epoch actually searched) — a stale-index query also kicks the
// asynchronous rebuild. Both paths are lock-free against ingest: every
// matrix touched is an immutable published version.
func (s *Server) handleNeighbors(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeBody[NeighborsRequest](w, r)
	if !ok {
		return
	}
	var metric cluster.Metric
	name := req.Metric
	switch name {
	case "", "l2":
		metric, name = cluster.L2, "l2"
	case "cosine":
		metric = cluster.Cosine
	default:
		writeError(w, http.StatusBadRequest, "unknown metric %q (want l2 or cosine)", req.Metric)
		return
	}
	mode := req.Mode
	switch mode {
	case "", "exact":
		mode = "exact"
	case "approx":
	default:
		writeError(w, http.StatusBadRequest, "unknown mode %q (want exact or approx)", req.Mode)
		return
	}
	if req.NProbe < 0 {
		writeError(w, http.StatusBadRequest, "nprobe must be non-negative, got %d", req.NProbe)
		return
	}
	if req.NProbe > 0 && mode != "approx" {
		writeError(w, http.StatusBadRequest, "nprobe only applies to mode approx")
		return
	}
	if req.K <= 0 {
		writeError(w, http.StatusBadRequest, "k must be positive, got %d", req.K)
		return
	}
	n := s.be.vertices()
	if int(req.V) >= n {
		writeError(w, http.StatusNotFound, "vertex %d outside [0,%d)", req.V, n)
		return
	}
	// Clamp k to the row count before the search sizes its per-worker
	// heaps by it — an attacker-sized k must not become an allocation.
	k := req.K
	if k > n {
		k = n
	}
	out := s.be.search(req.V, k, metric, name, mode == "approx", req.NProbe, traceOf(w))
	annotate(w, k, out.epoch)
	wire := make([]NeighborWire, len(out.nbrs))
	for i, nb := range out.nbrs {
		wire[i] = NeighborWire{V: uint32(nb.V), Dist: nb.Dist}
	}
	writeJSON(w, http.StatusOK, NeighborsResponse{
		Epoch: out.epoch, Epochs: out.epochs, IndexEpoch: out.indexEpoch, Mode: out.mode,
		V: req.V, Metric: name, Neighbors: wire,
	})
}

// handleSnapshot streams the whole published snapshot row by row
// through a pooled buffered writer — the n×K matrix is never marshaled
// into a second in-memory copy. The default JSON stream writes floats
// in shortest round-trip form, so a client re-reading them recovers
// the exact published values; a client that negotiated the binary
// format (Accept: application/x-gee-frame) gets the same rows as a
// dense float32 frame a replica can spill and mmap without a decode
// pass. Either stream aborts between row
// chunks when the client disconnects (write error or context
// cancellation), so a departed reader does not pay for the full O(nK)
// serialization.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	si, ok := s.sectionOf(w, r)
	if !ok {
		return
	}
	tr := traceOf(w)
	loadRef := tr.StartSpan("snapshot-load")
	snap, lo, hi := s.be.section(si)
	tr.EndSpan(loadRef)
	sectioned := s.be.sectioned()
	if sectioned {
		// A section is a snapshot of a smaller embedder: n = hi−lo,
		// implicit ids offset by lo. The binary frame layout and the
		// client's frame validation apply unchanged.
		snap = sectionSnapshot(snap, lo, hi)
	}
	annotate(w, snap.Z.R, snap.Epoch)
	st := newStreamer(w, r.Context())
	defer st.release()
	streamRef := tr.StartSpan("stream")
	binary := wantsBinary(r)
	var rows int
	switch {
	case binary:
		w.Header().Set("Content-Type", wire.ContentType)
		rows = streamSnapshotBinary(st, snap)
	case sectioned:
		w.Header().Set("Content-Type", "application/json")
		rows = streamSnapshotSection(st, snap, si, lo)
	default:
		w.Header().Set("Content-Type", "application/json")
		rows = streamSnapshot(st, snap)
	}
	s.wire.snapshot.record(binary, st.bytesSent())
	tr.EndSpan(streamRef)
	tr.SpanTag(streamRef, "rows", strconv.Itoa(rows))
	if sectioned {
		tr.SpanTag(streamRef, "shard", strconv.Itoa(si))
	}
	// A short row count means the client departed mid-body after the
	// 200 was already committed — the status line alone would record
	// this as a fully served response.
	if rows != snap.Z.R || st.failed() {
		annotateAborted(w)
	}
}

// sectionOf resolves the ?shard= query parameter: a sharded server
// requires it (snapshots and deltas are served as per-shard sections;
// /v1/partition lists them), an unsharded server accepts only the
// trivial shard 0 (and, bare, stays byte-compatible with the
// pre-sharding protocol).
func (s *Server) sectionOf(w http.ResponseWriter, r *http.Request) (int, bool) {
	q := r.URL.Query().Get("shard")
	if !s.be.sectioned() {
		if q != "" && q != "0" {
			writeError(w, http.StatusBadRequest, "unsharded server has only shard 0, got shard=%s", q)
			return 0, false
		}
		return 0, true
	}
	if q == "" {
		writeError(w, http.StatusBadRequest,
			"sharded server: pass ?shard= (0..%d; see /v1/partition)", s.be.shardCount()-1)
		return 0, false
	}
	si, err := strconv.Atoi(q)
	if err != nil || si < 0 || si >= s.be.shardCount() {
		writeError(w, http.StatusBadRequest, "bad shard %q (have %d shards)", q, s.be.shardCount())
		return 0, false
	}
	return si, true
}

// handlePartition serves the shard map: how many shards, which
// contiguous vertex range each owns, and each shard's current instance
// and epoch. An unsharded server reports the trivial one-shard
// partition, so clients probe this endpoint once to pick a protocol.
func (s *Server) handlePartition(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.be.meta())
}

// handleDelta streams the epoch delta from ?from=E to the published
// epoch, the replica fan-out read: changed rows instead of the full
// matrix, or a resync signal when the span is not row-reconstructible
// (see dyn.Delta).
func (s *Server) handleDelta(w http.ResponseWriter, r *http.Request) {
	fromStr := r.URL.Query().Get("from")
	from, err := strconv.ParseUint(fromStr, 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad from epoch %q", fromStr)
		return
	}
	si, ok := s.sectionOf(w, r)
	if !ok {
		return
	}
	tr := traceOf(w)
	// A shard's delta already lists only its owned rows and relabels
	// (global ids), so the section protocol reuses the delta format
	// as-is: per-shard sections never overlap.
	dl := s.be.sectionDelta(si, from)
	annotate(w, len(dl.Rows), dl.Epoch)
	st := newStreamer(w, r.Context())
	defer st.release()
	streamRef := tr.StartSpan("stream")
	binary := wantsBinary(r)
	var rows int
	if binary {
		w.Header().Set("Content-Type", wire.ContentType)
		rows = streamDeltaBinary(st, dl, s.be.width(), s.be.vertices())
	} else {
		w.Header().Set("Content-Type", "application/json")
		rows = streamDelta(st, dl, s.be.width())
	}
	s.wire.delta.record(binary, st.bytesSent())
	tr.EndSpan(streamRef)
	tr.SpanTag(streamRef, "rows", strconv.Itoa(rows))
	if s.be.sectioned() {
		tr.SpanTag(streamRef, "shard", strconv.Itoa(si))
	}
	if dl.Resync {
		tr.SpanTag(streamRef, "resync", "true")
	}
	expected := len(dl.Rows)
	if dl.Resync {
		expected = 0
	}
	if rows != expected || st.failed() {
		annotateAborted(w)
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.be.health())
}

// handleReady answers load-balancer readiness: 200 only when the
// coalescer is started and accepting (it is not during shutdown, nor
// in white-box tests that never Start it) and at least one epoch has
// published (the epoch-0 bootstrap publish counts — reads are
// answerable from it).
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	epoch, reason := s.be.ready()
	if reason != "" {
		writeJSON(w, http.StatusServiceUnavailable, ReadyResponse{Ready: false, Reason: reason})
		return
	}
	writeJSON(w, http.StatusOK, ReadyResponse{Ready: true, Epoch: epoch})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.be.stats()
	st.Wire = s.wire.stats()
	writeJSON(w, http.StatusOK, st)
}
