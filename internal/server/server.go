package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"

	"repro/internal/dyn"
	"repro/internal/graph"
)

// Wire types. Edge weights omitted or zero mean 1 (a zero-weight edge
// contributes nothing, so the shorthand costs no expressiveness).

// EdgeWire is one edge in a mutation request.
type EdgeWire struct {
	U uint32  `json:"u"`
	V uint32  `json:"v"`
	W float32 `json:"w,omitempty"`
}

// LabelWire is one label update in a mutation request; class -1 removes
// the label.
type LabelWire struct {
	V     uint32 `json:"v"`
	Class int32  `json:"class"`
}

// MutationRequest is the body of POST /v1/edges, DELETE /v1/edges, and
// POST /v1/labels. Edge endpoints read Edges; the label endpoint reads
// Labels.
type MutationRequest struct {
	Edges  []EdgeWire  `json:"edges,omitempty"`
	Labels []LabelWire `json:"labels,omitempty"`
}

// MutationResponse acknowledges an applied mutation: every snapshot at
// or after Epoch reflects its operations.
type MutationResponse struct {
	Epoch   uint64 `json:"epoch"`
	Applied int    `json:"applied"`
}

// EmbeddingResponse is the body of GET /v1/embedding/{v}: one vertex's
// row of the snapshot published at Epoch.
type EmbeddingResponse struct {
	Epoch uint64    `json:"epoch"`
	V     uint32    `json:"v"`
	Row   []float64 `json:"row"`
}

// SnapshotResponse is the body of GET /v1/snapshot (streamed on the
// way out; clients decode it whole).
type SnapshotResponse struct {
	Epoch uint64      `json:"epoch"`
	N     int         `json:"n"`
	K     int         `json:"k"`
	Edges int64       `json:"edges"`
	Y     []int32     `json:"y"`
	Z     [][]float64 `json:"z"`
}

// HealthResponse is the body of GET /healthz.
type HealthResponse struct {
	Status string `json:"status"`
	Epoch  uint64 `json:"epoch"`
	N      int    `json:"n"`
	K      int    `json:"k"`
}

// StatsResponse is the body of GET /statsz.
type StatsResponse struct {
	N         int            `json:"n"`
	K         int            `json:"k"`
	Dyn       dyn.Stats      `json:"dyn"`
	Coalescer CoalescerStats `json:"coalescer"`
}

// ErrorResponse carries any non-2xx outcome.
type ErrorResponse struct {
	Error string `json:"error"`
}

// maxBodyBytes bounds a mutation request body (64 MiB ≈ 5M edges) so a
// single client cannot balloon server memory.
const maxBodyBytes = 64 << 20

// Options configures a Server.
type Options struct {
	// Coalescer bounds the ingest micro-batching (zero fields select
	// defaults; see CoalescerOptions).
	Coalescer CoalescerOptions
}

// Server serves a DynamicEmbedder over HTTP. Construct with New (which
// starts the ingest coalescer), expose Handler somewhere (or use
// ListenAndServe/Serve), and Shutdown to drain.
type Server struct {
	d    *dyn.DynamicEmbedder
	co   *Coalescer
	mux  *http.ServeMux
	http *http.Server
}

// New builds a server over the embedder and starts its coalescer.
// Other writers may Apply to the embedder directly (dyn serializes
// writers, and a publish covers every applied op regardless of origin,
// so acks stay sound); only the coalescer's Flushes/Publishes counters
// then stop matching the dyn counters exactly.
func New(d *dyn.DynamicEmbedder, opts Options) *Server {
	s := newServer(d, opts)
	s.co.Start()
	return s
}

// newServer wires the routes without starting the coalescer (white-box
// tests exercise the backpressure path against an idle queue).
func newServer(d *dyn.DynamicEmbedder, opts Options) *Server {
	s := &Server{d: d, co: NewCoalescer(d, opts.Coalescer)}
	s.mux = http.NewServeMux()
	// Built here, not in Serve: Shutdown may run concurrently with (or
	// before) Serve from another goroutine, so the field must be
	// immutable after construction.
	s.http = &http.Server{Handler: s.mux}
	s.mux.HandleFunc("POST /v1/edges", s.handleInsert)
	s.mux.HandleFunc("DELETE /v1/edges", s.handleDelete)
	s.mux.HandleFunc("POST /v1/labels", s.handleLabels)
	s.mux.HandleFunc("GET /v1/embedding/{v}", s.handleEmbedding)
	s.mux.HandleFunc("GET /v1/snapshot", s.handleSnapshot)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /statsz", s.handleStats)
	return s
}

// Handler returns the HTTP handler (for httptest or custom servers).
func (s *Server) Handler() http.Handler { return s.mux }

// Coalescer exposes the ingest coalescer (stats, direct Submit).
func (s *Server) Coalescer() *Coalescer { return s.co }

// ListenAndServe serves on addr until Shutdown. It reports the bound
// address through ready (useful with ":0") before blocking.
func (s *Server) ListenAndServe(addr string, ready func(net.Addr)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if ready != nil {
		ready(ln.Addr())
	}
	return s.Serve(ln)
}

// Serve serves on an existing listener until Shutdown.
func (s *Server) Serve(ln net.Listener) error {
	err := s.http.Serve(ln)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// Shutdown drains gracefully: stop accepting connections, wait for
// in-flight requests (their acks still arrive — the coalescer is
// stopped only afterwards), then drain and close the coalescer. Safe
// to call whether or not Serve was used.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.http.Shutdown(ctx)
	s.co.Close()
	return err
}

// Close is Shutdown with no deadline.
func (s *Server) Close() error { return s.Shutdown(context.Background()) }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// decodeMutation parses a bounded JSON mutation body.
func decodeMutation(w http.ResponseWriter, r *http.Request) (*MutationRequest, bool) {
	var req MutationRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad mutation body: %v", err)
		return nil, false
	}
	return &req, true
}

func toEdges(wire []EdgeWire) []graph.Edge {
	edges := make([]graph.Edge, len(wire))
	for i, e := range wire {
		w := e.W
		if w == 0 {
			w = 1
		}
		edges[i] = graph.Edge{U: e.U, V: e.V, W: w}
	}
	return edges
}

// submit runs one write batch through the coalescer and replies with
// the ack. The handler blocks until the batch is published — that is
// the point: a 200 means read-your-write holds from Epoch on.
func (s *Server) submit(w http.ResponseWriter, b dyn.Batch, ops int) {
	ack, err := s.co.Submit(b)
	switch err {
	case nil:
	case ErrBacklog:
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "ingest queue full")
		return
	case ErrClosed:
		writeError(w, http.StatusServiceUnavailable, "shutting down")
		return
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	// The ack always arrives (Close drains the queue), so waiting on it
	// alone is safe; a departed client just discards the response.
	a := <-ack
	if a.Err != nil {
		writeError(w, http.StatusBadRequest, "%v", a.Err)
		return
	}
	writeJSON(w, http.StatusOK, MutationResponse{Epoch: a.Epoch, Applied: ops})
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeMutation(w, r)
	if !ok {
		return
	}
	// Never silently drop operations: a populated wrong-kind field
	// would be acked without being applied.
	if len(req.Labels) > 0 {
		writeError(w, http.StatusBadRequest, "labels not accepted on /v1/edges (use /v1/labels)")
		return
	}
	s.submit(w, dyn.Batch{Insert: toEdges(req.Edges)}, len(req.Edges))
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeMutation(w, r)
	if !ok {
		return
	}
	if len(req.Labels) > 0 {
		writeError(w, http.StatusBadRequest, "labels not accepted on /v1/edges (use /v1/labels)")
		return
	}
	s.submit(w, dyn.Batch{Delete: toEdges(req.Edges)}, len(req.Edges))
}

func (s *Server) handleLabels(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeMutation(w, r)
	if !ok {
		return
	}
	if len(req.Edges) > 0 {
		writeError(w, http.StatusBadRequest, "edges not accepted on /v1/labels (use /v1/edges)")
		return
	}
	ups := make([]dyn.LabelUpdate, len(req.Labels))
	for i, l := range req.Labels {
		ups[i] = dyn.LabelUpdate{V: l.V, Class: l.Class}
	}
	s.submit(w, dyn.Batch{Labels: ups}, len(ups))
}

func (s *Server) handleEmbedding(w http.ResponseWriter, r *http.Request) {
	v, err := strconv.ParseUint(r.PathValue("v"), 10, 32)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad vertex %q", r.PathValue("v"))
		return
	}
	snap := s.d.Snapshot()
	if int(v) >= snap.Z.R {
		writeError(w, http.StatusNotFound, "vertex %d outside [0,%d)", v, snap.Z.R)
		return
	}
	row := make([]float64, snap.Z.C)
	copy(row, snap.Z.Row(int(v)))
	writeJSON(w, http.StatusOK, EmbeddingResponse{Epoch: snap.Epoch, V: uint32(v), Row: row})
}

// handleSnapshot streams the whole published snapshot as one JSON
// object, row by row through a buffered writer — the n×K matrix is
// never marshaled into a second in-memory copy. Floats are written in
// shortest round-trip form, so a client re-reading them recovers the
// exact published values.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	snap := s.d.Snapshot()
	w.Header().Set("Content-Type", "application/json")
	bw := bufio.NewWriterSize(w, 1<<16)
	fmt.Fprintf(bw, `{"epoch":%d,"n":%d,"k":%d,"edges":%d,"y":[`,
		snap.Epoch, snap.Z.R, snap.Z.C, snap.Edges)
	var scratch []byte
	for i, c := range snap.Y {
		if i > 0 {
			bw.WriteByte(',')
		}
		scratch = strconv.AppendInt(scratch[:0], int64(c), 10)
		bw.Write(scratch)
	}
	bw.WriteString(`],"z":[`)
	for u := 0; u < snap.Z.R; u++ {
		if u > 0 {
			bw.WriteByte(',')
		}
		bw.WriteByte('[')
		for c, x := range snap.Z.Row(u) {
			if c > 0 {
				bw.WriteByte(',')
			}
			scratch = strconv.AppendFloat(scratch[:0], x, 'g', -1, 64)
			bw.Write(scratch)
		}
		bw.WriteByte(']')
	}
	bw.WriteString(`]}`)
	bw.Flush()
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{
		Status: "ok", Epoch: s.d.Epoch(), N: s.d.N(), K: s.d.K(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, StatsResponse{
		N: s.d.N(), K: s.d.K(), Dyn: s.d.Stats(), Coalescer: s.co.Stats(),
	})
}
