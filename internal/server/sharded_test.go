package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/dyn"
	"repro/internal/graph"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/shard"
	"repro/internal/wire"
	"repro/internal/xrand"
)

// startShardedServer builds a vertex-partitioned shard set behind a
// scatter-gather server over httptest, labels seeded round-robin.
func startShardedServer(t *testing.T, n, k, nShards int, dopts dyn.Options, sopts server.Options) (*server.Server, *client.Client, string) {
	t.Helper()
	p, err := shard.NewPartition(n, nShards)
	if err != nil {
		t.Fatal(err)
	}
	dopts.K = k
	shs, err := shard.NewShards(p, fullLabels(n, k), dopts)
	if err != nil {
		t.Fatal(err)
	}
	s := server.NewSharded(p, shs, sopts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		if err := s.Close(); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		ts.Close()
	})
	return s, client.New(ts.URL, ts.Client()), ts.URL
}

// TestShardedReadYourWrites is the sharded tentpole acceptance check:
// a write acked with epoch vector E must be visible to any subsequent
// read whose per-shard vector covers E — exercised with concurrent
// cut-edge writes whose endpoints deliberately span two shards.
func TestShardedReadYourWrites(t *testing.T) {
	const n, k, nShards, requests = 800, 4, 4, 64
	const width = n / nShards
	_, c, _ := startShardedServer(t, n, k, nShards, dyn.Options{}, server.Options{})
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, requests)
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// u and v on different shards: every edge is cut, so the ack
			// vector must name both owners.
			su, sv := i%nShards, (i+1)%nShards
			u := graph.NodeID(su*width + i%width)
			v := graph.NodeID(sv*width + (i*7)%width)
			ack, err := c.InsertEdges(ctx, []graph.Edge{{U: u, V: v, W: 1}})
			if err != nil {
				errs <- err
				return
			}
			if _, ok := ack.Epochs[su]; !ok {
				errs <- fmt.Errorf("ack vector %v missing owner %d of u=%d", ack.Epochs, su, u)
				return
			}
			if _, ok := ack.Epochs[sv]; !ok {
				errs <- fmt.Errorf("ack vector %v missing owner %d of v=%d", ack.Epochs, sv, v)
				return
			}
			for s, e := range ack.Epochs {
				if e == 0 {
					errs <- fmt.Errorf("ack vector %v has epoch 0 for shard %d", ack.Epochs, s)
					return
				}
			}
			if ack.Epoch != ack.Epochs.Max() {
				errs <- fmt.Errorf("scalar ack epoch %d != max of vector %v", ack.Epoch, ack.Epochs)
				return
			}
			// Read-your-writes: a post-ack read's vector covers the ack's
			// and the edge's contribution is present in u's row.
			resp, err := c.Embeddings(ctx, []graph.NodeID{u, v})
			if err != nil {
				errs <- err
				return
			}
			if !resp.Epochs.Covers(ack.Epochs) {
				errs <- fmt.Errorf("read vector %v does not cover ack vector %v", resp.Epochs, ack.Epochs)
				return
			}
			if class := int(v) % k; resp.Rows[0][class] <= 0 {
				errs <- fmt.Errorf("edge (%d,%d) invisible after ack %v: row %v", u, v, ack.Epochs, resp.Rows[0])
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Shards) != nShards || len(st.Epochs) != nShards {
		t.Fatalf("statsz: %d shard entries, %d epoch-vector entries, want %d", len(st.Shards), len(st.Epochs), nShards)
	}
	var requestsSeen int64
	for _, ss := range st.Shards {
		requestsSeen += ss.Coalescer.Requests
	}
	// Every edge was cut, so each write fanned out to two shards.
	if requestsSeen != 2*requests {
		t.Fatalf("per-shard coalescer requests sum to %d, want %d (every write scattered to 2 owners)", requestsSeen, 2*requests)
	}
}

// TestShardedSectionProtocol pins the ?shard= contract: /v1/partition
// describes the layout, sections require an explicit shard id, and out
// of range ids are a 400, not a panic or an empty body.
func TestShardedSectionProtocol(t *testing.T) {
	const n, k, nShards = 90, 3, 3
	_, c, base := startShardedServer(t, n, k, nShards, dyn.Options{}, server.Options{})
	ctx := context.Background()
	meta, err := c.Partition(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Shards != nShards || meta.N != n || meta.K != k || len(meta.Bounds) != nShards+1 {
		t.Fatalf("partition meta %+v, want %d shards over n=%d k=%d", meta, nShards, n, k)
	}
	if len(meta.Instances) != nShards || len(meta.Epochs) != nShards {
		t.Fatalf("partition meta instances=%v epochs=%v, want %d entries each", meta.Instances, meta.Epochs, nShards)
	}
	for _, path := range []string{"/v1/snapshot", "/v1/delta?from=0", "/v1/snapshot?shard=9", "/v1/snapshot?shard=x"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %s: status %d, want 400", path, resp.StatusCode)
		}
	}
	// A well-formed section read round-trips and matches the partition.
	for i := 0; i < nShards; i++ {
		sec, err := c.SnapshotShard(ctx, i)
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := int(meta.Bounds[i]), int(meta.Bounds[i+1])
		if sec.N != hi-lo || sec.K != k {
			t.Fatalf("shard %d section n=%d k=%d, want window [%d,%d) k=%d", i, sec.N, sec.K, lo, hi, k)
		}
		if i > 0 && int(sec.Lo) != lo {
			t.Fatalf("shard %d section lo=%d, want %d", i, sec.Lo, lo)
		}
	}
}

// TestShardedNeighborsMatchUnsharded drives the same write sequence
// into a 4-shard server and an unsharded one (serial folds, so the
// published floats agree bit for bit), then compares exact /v1/neighbors
// answers id-for-id. Ties are tolerated the way PR 5's recall rule
// tolerates them: an id mismatch at a rank is legal only when the two
// distances are equal within a relative epsilon (duplicate rows are
// legitimately interchangeable).
func TestShardedNeighborsMatchUnsharded(t *testing.T) {
	const n, k, nShards = 400, 5, 4
	dopts := dyn.Options{Workers: 1, ShardedThreshold: -1}
	_, single, _ := startServer(t, n, fullLabels(n, k), dopts, server.Options{})
	_, sharded, _ := startShardedServer(t, n, k, nShards, dopts, server.Options{})
	ctx := context.Background()
	r := xrand.New(7)
	randBatch := func(m int) []graph.Edge {
		edges := make([]graph.Edge, m)
		for i := range edges {
			u := r.Intn(n)
			v := r.Intn(n)
			if u == v {
				v = (v + 1) % n
			}
			edges[i] = graph.Edge{U: graph.NodeID(u), V: graph.NodeID(v), W: float32(r.Intn(3) + 1)}
		}
		return edges
	}
	var live [][]graph.Edge
	for b := 0; b < 20; b++ {
		edges := randBatch(60)
		if _, err := single.InsertEdges(ctx, edges); err != nil {
			t.Fatal(err)
		}
		if _, err := sharded.InsertEdges(ctx, edges); err != nil {
			t.Fatal(err)
		}
		live = append(live, edges)
		if len(live) > 6 {
			if _, err := single.DeleteEdges(ctx, live[0]); err != nil {
				t.Fatal(err)
			}
			if _, err := sharded.DeleteEdges(ctx, live[0]); err != nil {
				t.Fatal(err)
			}
			live = live[1:]
		}
		if b%5 == 0 {
			ups := []dyn.LabelUpdate{{V: graph.NodeID(r.Intn(n)), Class: int32(r.Intn(k))}}
			if _, err := single.UpdateLabels(ctx, ups); err != nil {
				t.Fatal(err)
			}
			if _, err := sharded.UpdateLabels(ctx, ups); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, metric := range []string{"l2", "cosine"} {
		for q := 0; q < 25; q++ {
			v := graph.NodeID(r.Intn(n))
			req := server.NeighborsRequest{V: v, K: 12, Metric: metric}
			want, err := single.Neighbors(ctx, req)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sharded.Neighbors(ctx, req)
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Neighbors) != len(want.Neighbors) {
				t.Fatalf("%s v=%d: %d sharded neighbors vs %d unsharded", metric, v, len(got.Neighbors), len(want.Neighbors))
			}
			if len(got.Epochs) != nShards {
				t.Fatalf("%s v=%d: response epoch vector %v, want %d entries", metric, v, got.Epochs, nShards)
			}
			for j := range want.Neighbors {
				g, w := got.Neighbors[j], want.Neighbors[j]
				if g.V == w.V && g.Dist == w.Dist {
					continue
				}
				eps := 1e-12 + 1e-12*math.Abs(w.Dist)
				if math.Abs(g.Dist-w.Dist) > eps {
					t.Fatalf("%s v=%d rank %d: sharded (%d, %.17g) vs unsharded (%d, %.17g)",
						metric, v, j, g.V, g.Dist, w.V, w.Dist)
				}
			}
		}
	}
}

// TestShardedReplica follows a sharded server with client.Replica over
// both wire formats: bootstrap assembles the full matrix from per-shard
// sections, deltas patch each section independently, and every local
// row must be bit-identical to the owning shard's section.
func TestShardedReplica(t *testing.T) {
	for _, wf := range []client.Format{client.JSON, client.Binary} {
		t.Run(wf.String(), func(t *testing.T) {
			const n, k, nShards = 240, 4, 3
			_, _, base := startShardedServer(t, n, k, nShards, dyn.Options{}, server.Options{})
			c := client.New(base, nil, client.WithWire(wf))
			ctx := context.Background()
			r := xrand.New(11)
			// churn drives insert batches; withLabels additionally mixes in
			// relabels. A relabel dirties every row, so the epoch that
			// carries it answers Delta with "resync" — the post-bootstrap
			// churn stays edge-only so the second Sync is a pure row delta
			// and the resync counter stays deterministic.
			churn := func(rounds int, withLabels bool) server.MutationResponse {
				var last server.MutationResponse
				for b := 0; b < rounds; b++ {
					edges := make([]graph.Edge, 40)
					for i := range edges {
						u := r.Intn(n)
						v := r.Intn(n)
						if u == v {
							v = (v + 1) % n
						}
						edges[i] = graph.Edge{U: graph.NodeID(u), V: graph.NodeID(v), W: float32(r.Intn(3) + 1)}
					}
					ack, err := c.InsertEdges(ctx, edges)
					if err != nil {
						t.Fatal(err)
					}
					last = ack
					if withLabels && b%2 == 0 {
						ups := []dyn.LabelUpdate{{V: graph.NodeID(r.Intn(n)), Class: int32(r.Intn(k))}}
						if _, err := c.UpdateLabels(ctx, ups); err != nil {
							t.Fatal(err)
						}
					}
				}
				return last
			}
			verify := func(rep *client.Replica) {
				t.Helper()
				// Converge on a stable epoch vector (the test is the only
				// writer, so one or two rounds suffice), then compare every
				// row against its owning shard's section bit for bit.
				secs := make([]server.SnapshotResponse, nShards)
				for tries := 0; ; tries++ {
					stable := true
					s := rep.Snapshot()
					for i := range secs {
						sec, err := c.SnapshotShard(ctx, i)
						if err != nil {
							t.Fatal(err)
						}
						secs[i] = sec
						if s == nil || s.Epochs[i] != sec.Epoch {
							stable = false
						}
					}
					if stable {
						break
					}
					if tries > 20 {
						t.Fatalf("replica never converged on the section epochs")
					}
					if _, err := rep.Sync(ctx); err != nil {
						t.Fatal(err)
					}
				}
				s := rep.Snapshot()
				rn, rk := s.Dims()
				if rn != n || rk != k {
					t.Fatalf("replica dims %dx%d, want %dx%d", rn, rk, n, k)
				}
				row := make([]float64, k)
				at := 0
				for i := range secs {
					sec := &secs[i]
					for u := 0; u < sec.N; u++ {
						v := at + u
						if s.Y[v] != sec.Y[u] {
							t.Fatalf("label of %d: replica %d, shard %d has %d", v, s.Y[v], i, sec.Y[u])
						}
						for col, x := range s.CopyRow(v, row) {
							if x != sec.Z[u][col] {
								t.Fatalf("Z[%d][%d]: replica %v, shard %d has %v (not bit-identical)", v, col, x, i, sec.Z[u][col])
							}
						}
					}
					at += sec.N
				}
			}

			ack := churn(6, true)
			rep := client.NewReplica(c)
			if resynced, err := rep.Sync(ctx); err != nil || !resynced {
				t.Fatalf("first sync: resynced=%v err=%v, want bootstrap", resynced, err)
			}
			s := rep.Snapshot()
			if len(s.Epochs) != nShards {
				t.Fatalf("replica epoch vector %v, want %d entries", s.Epochs, nShards)
			}
			if !s.Epochs.Covers(ack.Epochs) {
				t.Fatalf("replica vector %v does not cover last ack %v", s.Epochs, ack.Epochs)
			}
			verify(rep)

			churn(6, false)
			if _, err := rep.Sync(ctx); err != nil {
				t.Fatal(err)
			}
			verify(rep)

			rs := rep.Stats()
			if rs.Resyncs != 1 {
				t.Fatalf("replica resyncs = %d, want 1 (only the bootstrap)", rs.Resyncs)
			}
			if rs.RowsApplied == 0 {
				t.Fatalf("replica applied no delta rows across churn")
			}
		})
	}
}

// TestShardedEmbeddingsAnswersJSON pins the sharded batched-read
// format: a binary frame carries one epoch/instance pair, which a
// scatter read doesn't have, so the endpoint answers JSON (with the
// epoch vector) even when the client negotiates frames.
func TestShardedEmbeddingsAnswersJSON(t *testing.T) {
	const n, k, nShards = 90, 3, 3
	_, _, base := startShardedServer(t, n, k, nShards, dyn.Options{}, server.Options{})
	req, err := http.NewRequest(http.MethodPost, base+"/v1/embeddings",
		bytes.NewReader([]byte(`{"vs":[1,40,80]}`)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", wire.ContentType+", application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type %q, want application/json (sharded batch reads have no frame form)", ct)
	}
	var out server.BatchEmbeddingResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 3 || len(out.Epochs) != nShards {
		t.Fatalf("rows=%d epochs=%v, want 3 rows and a %d-entry vector", len(out.Rows), out.Epochs, nShards)
	}
}
