package server

import (
	"bytes"
	"context"
	"io"
	"math"
	"testing"

	"repro/internal/dyn"
	"repro/internal/graph"
	"repro/internal/labels"
	"repro/internal/race"
	"repro/internal/wire"
	"repro/internal/xrand"
)

// benchSnapshot is bigSnapshot for benchmarks (no *testing.T).
func benchSnapshot(b *testing.B, n, k int) *dyn.Snapshot {
	b.Helper()
	d, err := dyn.New(n, labels.Full(n, k, 171), dyn.Options{K: k, ManualPublish: true})
	if err != nil {
		b.Fatal(err)
	}
	r := xrand.New(173)
	edges := make([]graph.Edge, 4*n)
	for i := range edges {
		edges[i] = graph.Edge{U: graph.NodeID(r.Intn(n)), V: graph.NodeID(r.Intn(n)), W: 1}
	}
	if err := d.AddEdges(edges); err != nil {
		b.Fatal(err)
	}
	return d.Publish()
}

// TestStreamSnapshotBinaryRoundTrips checks the server-side encoder
// against the wire decoder: streaming a published snapshot as a binary
// frame and decoding it must recover the header and every row value
// modulo the documented float32 quantization.
func TestStreamSnapshotBinaryRoundTrips(t *testing.T) {
	snap := bigSnapshot(t, 500, 6)
	var buf bytes.Buffer
	st := newStreamer(&buf, context.Background())
	rows := streamSnapshotBinary(st, snap)
	if err := st.flush(); err != nil {
		t.Fatal(err)
	}
	sent := st.bytesSent()
	st.release()
	if rows != snap.Z.R {
		t.Fatalf("streamed %d rows, want %d", rows, snap.Z.R)
	}
	if sent != int64(buf.Len()) {
		t.Fatalf("bytesSent %d, buffer holds %d", sent, buf.Len())
	}
	f, err := wire.ReadFrame(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if f.Kind != wire.KindSnapshot || f.Epoch != snap.Epoch || f.Instance != snap.Instance ||
		f.Edges != snap.Edges || int(f.N) != snap.Z.R || int(f.K) != snap.Z.C {
		t.Fatalf("frame header %+v does not match snapshot (epoch %d, %dx%d)",
			f.Header, snap.Epoch, snap.Z.R, snap.Z.C)
	}
	if f.RowIDs != nil {
		t.Fatalf("snapshot frame carries %d explicit row ids, want implicit identity", len(f.RowIDs))
	}
	for v, want := range snap.Y {
		if f.Y[v] != want {
			t.Fatalf("Y[%d] = %d, want %d", v, f.Y[v], want)
		}
	}
	for v := 0; v < snap.Z.R; v++ {
		row := snap.Z.Row(v)
		for j, x := range row {
			got := f.Rows[v*snap.Z.C+j]
			if math.Float32bits(got) != math.Float32bits(float32(x)) {
				t.Fatalf("row %d col %d: frame %v, want float32(%v)", v, j, got, x)
			}
		}
	}
}

// TestStreamSnapshotBinaryAbortsOnWriteError mirrors the JSON abort
// test: once the client connection dies mid-frame the streamer must
// stop, not keep pumping the remaining rows into a dead writer.
func TestStreamSnapshotBinaryAbortsOnWriteError(t *testing.T) {
	snap := bigSnapshot(t, 20000, 8)
	fw := &brokenPipeWriter{limit: 30_000}
	st := newStreamer(fw, context.Background())
	rows := streamSnapshotBinary(st, snap)
	st.flush()
	st.release()
	if rows != 0 {
		t.Fatalf("aborted stream reported %d rows, want 0", rows)
	}
	// binRowsPerChunk rows buffer between error checks; anything far
	// beyond one flush after the failure means the abort was ignored.
	if fw.afterFail > 4 {
		t.Fatalf("%d writes attempted after the connection failed", fw.afterFail)
	}
}

// TestStreamSnapshotBinaryAbortsOnCancel: a request context cancelled
// mid-stream (client went away before a write failed) must abort too.
func TestStreamSnapshotBinaryAbortsOnCancel(t *testing.T) {
	snap := bigSnapshot(t, 20000, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cw := &cancelAfterWriter{limit: 30_000, cancel: cancel}
	rows := streamSnapshotBinary(newStreamer(cw, ctx), snap)
	if rows != 0 {
		t.Fatalf("cancelled stream reported %d rows, want 0", rows)
	}
}

// TestBinaryStreamScratchDoesNotScale is the pooling acceptance check:
// steady-state binary streaming must not allocate per row — the
// streamer, its buffered writer, and the scratch chunk all come from
// the pool. Measured by comparing allocations per stream at two sizes
// an order of magnitude apart: per-row allocations would scale ~10×.
func TestBinaryStreamScratchDoesNotScale(t *testing.T) {
	if race.Enabled {
		// Under the race detector sync.Pool deliberately drops a
		// random ~25% of Puts, so pool misses (and their streamer +
		// buffer reallocations) show up stochastically in
		// AllocsPerRun no matter how the streaming code behaves.
		t.Skip("sync.Pool randomly drops Puts under -race; alloc counts are noise")
	}
	small := bigSnapshot(t, 200, 8)
	large := bigSnapshot(t, 2000, 8)
	run := func(snap *dyn.Snapshot) float64 {
		return testing.AllocsPerRun(20, func() {
			st := newStreamer(io.Discard, context.Background())
			if rows := streamSnapshotBinary(st, snap); rows != snap.Z.R {
				t.Fatalf("streamed %d rows, want %d", rows, snap.Z.R)
			}
			st.flush()
			st.release()
		})
	}
	a1 := run(small)
	a2 := run(large)
	if a2 > a1+1 {
		t.Fatalf("allocations scale with rows: %v allocs at n=200, %v at n=2000", a1, a2)
	}
	if a2 > 4 {
		t.Fatalf("binary stream allocates %v times per request, want ~0", a2)
	}
}

// BenchmarkStreamSnapshotJSON / Binary compare the two encoders over
// the same published snapshot. Run with -benchmem: the binary side
// must report 0 allocs/op in steady state, and it streams an order of
// magnitude faster because no float formatting happens per value.
func BenchmarkStreamSnapshotJSON(b *testing.B) {
	snap := benchSnapshot(b, 5000, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := newStreamer(io.Discard, context.Background())
		if rows := streamSnapshot(st, snap); rows != snap.Z.R {
			b.Fatalf("streamed %d rows", rows)
		}
		st.flush()
		b.SetBytes(st.bytesSent())
		st.release()
	}
}

func BenchmarkStreamSnapshotBinary(b *testing.B) {
	snap := benchSnapshot(b, 5000, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := newStreamer(io.Discard, context.Background())
		if rows := streamSnapshotBinary(st, snap); rows != snap.Z.R {
			b.Fatalf("streamed %d rows", rows)
		}
		st.flush()
		b.SetBytes(st.bytesSent())
		st.release()
	}
}
