package server

import (
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"

	"repro/internal/wire"
)

// Content negotiation for the row-carrying endpoints (/v1/snapshot,
// /v1/delta, /v1/embeddings). JSON is the default and the debug path;
// a client opts into the compact binary frame format by listing
// wire.ContentType in its Accept header. Anything else — no header,
// */*, application/*, malformed values — stays JSON: an old client
// must never receive bytes it cannot parse.

// wantsBinary reports whether the request explicitly accepts the
// binary frame content type with a non-zero quality value.
func wantsBinary(r *http.Request) bool {
	for _, hv := range r.Header.Values("Accept") {
		for _, rng := range strings.Split(hv, ",") {
			mt, params, _ := strings.Cut(rng, ";")
			if !strings.EqualFold(strings.TrimSpace(mt), wire.ContentType) {
				continue
			}
			if q, ok := qValue(params); ok && q == 0 {
				continue // explicitly listed, explicitly refused
			}
			return true
		}
	}
	return false
}

// qValue extracts a media range's q parameter.
func qValue(params string) (float64, bool) {
	for _, p := range strings.Split(params, ";") {
		k, v, found := strings.Cut(strings.TrimSpace(p), "=")
		if !found || !strings.EqualFold(strings.TrimSpace(k), "q") {
			continue
		}
		q, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
		if err != nil {
			return 0, false // malformed q: ignore it, keep the match
		}
		return q, true
	}
	return 0, false
}

// endpointWire counts one endpoint's responses and bytes sent, split
// by wire format — the production-visible JSON-vs-binary comparison.
type endpointWire struct {
	jsonResponses atomic.Int64
	jsonBytes     atomic.Int64
	binResponses  atomic.Int64
	binBytes      atomic.Int64
}

func (e *endpointWire) record(binary bool, n int64) {
	if binary {
		e.binResponses.Add(1)
		e.binBytes.Add(n)
		return
	}
	e.jsonResponses.Add(1)
	e.jsonBytes.Add(n)
}

func (e *endpointWire) stats() EndpointWireStats {
	return EndpointWireStats{
		JSONResponses:   e.jsonResponses.Load(),
		JSONBytes:       e.jsonBytes.Load(),
		BinaryResponses: e.binResponses.Load(),
		BinaryBytes:     e.binBytes.Load(),
	}
}

// EndpointWireStats reports one endpoint's response counts and
// bytes-sent, split by wire format.
type EndpointWireStats struct {
	JSONResponses   int64 `json:"json_responses"`
	JSONBytes       int64 `json:"json_bytes"`
	BinaryResponses int64 `json:"binary_responses"`
	BinaryBytes     int64 `json:"binary_bytes"`
}

// WireStats groups the per-endpoint wire counters of the row-carrying
// endpoints (the only ones that negotiate a format).
type WireStats struct {
	Snapshot   EndpointWireStats `json:"snapshot"`
	Delta      EndpointWireStats `json:"delta"`
	Embeddings EndpointWireStats `json:"embeddings"`
}

// wireCounters is the server-side mutable form of WireStats.
type wireCounters struct {
	snapshot   endpointWire
	delta      endpointWire
	embeddings endpointWire
}

func (w *wireCounters) stats() WireStats {
	return WireStats{
		Snapshot:   w.snapshot.stats(),
		Delta:      w.delta.stats(),
		Embeddings: w.embeddings.stats(),
	}
}
