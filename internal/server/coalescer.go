// Package server is the network serving layer of the GEE reproduction:
// it exposes a dyn.DynamicEmbedder over HTTP/JSON. Reads (embedding
// rows, snapshots, stats) are answered lock-free from the currently
// published snapshot; writes (edge inserts/deletes, label updates) go
// through an ingest coalescer that merges concurrent small client
// requests into micro-batches before they hit the embedder, so the
// batch-oriented fold paths (atomic / sharded EdgePlan) see batch-sized
// work even when every client sends one edge at a time.
//
// The coalescer is the throughput lever: per-request Apply would pay a
// serial fold and an O(nK) publish per edge, while a micro-batch pays
// both once per hundreds or thousands of ops. Its queue is bounded —
// when clients outrun ingest, Submit fails fast (HTTP 429) instead of
// buffering without limit. Every accepted write request is acknowledged
// only after its operations are published, and the ack carries the
// published epoch, so a client that has its ack can immediately read
// its own write from any later snapshot.
package server

import (
	"errors"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dyn"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// ErrBacklog is returned by Submit when the bounded request queue is
// full; HTTP handlers translate it to 429 Too Many Requests.
var ErrBacklog = errors.New("server: ingest queue full")

// ErrClosed is returned by Submit after Close; HTTP handlers translate
// it to 503 Service Unavailable.
var ErrClosed = errors.New("server: coalescer closed")

// CoalescerOptions bounds the micro-batching.
type CoalescerOptions struct {
	// MaxBatch flushes a micro-batch once it holds at least this many
	// operations (edge ops + label updates). Zero selects 4096.
	MaxBatch int
	// MaxDelay flushes a micro-batch this long after its first request
	// arrived, bounding the latency a lone small write can be held for
	// the benefit of batching. Zero selects 2ms.
	MaxDelay time.Duration
	// QueueCap bounds the request queue; a full queue rejects with
	// ErrBacklog. Zero selects 1024.
	QueueCap int
}

func (o CoalescerOptions) withDefaults() CoalescerOptions {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 4096
	}
	if o.MaxDelay <= 0 {
		o.MaxDelay = 2 * time.Millisecond
	}
	if o.QueueCap <= 0 {
		o.QueueCap = 1024
	}
	return o
}

// CoalescerStats counts what the coalescer has done. Flushes vs
// Requests is the coalescing ratio: concurrent single-op clients should
// see Flushes ≪ Requests.
type CoalescerStats struct {
	Requests  int64 // write requests accepted into the queue
	Ops       int64 // operations across accepted requests
	Flushes   int64 // merged micro-batches applied to the embedder
	Coalesced int64 // requests that shared a micro-batch with another
	Replays   int64 // requests re-applied individually after a merged-batch error
	Rejected  int64 // requests refused with ErrBacklog
}

// Ack is the completion notice for one accepted write request. When Err
// is nil the request's operations are applied and published: every
// snapshot at or after Epoch reflects them.
type Ack struct {
	Epoch uint64
	Err   error

	// sent is the instant the ingest goroutine released this ack — the
	// start of the trace's ack span (channel wake-up + handler resume).
	sent time.Time
}

// request is one queued write with its completion channel (buffered, so
// the coalescer never blocks on a departed client).
type request struct {
	batch dyn.Batch
	ops   int
	done  chan Ack
	enq   time.Time // Submit time, for the ack-wait histogram

	// Trace threading (nil tr makes every span call a no-op). The
	// trace is owned by the ingest goroutine from the queue send until
	// the done send hands it back to the submitting handler.
	tr       *trace.Trace
	queueRef trace.SpanRef // open queue-wait span, closed when the batch is collected
	foldEnd  time.Time     // end of this request's fold span = start of publish-wait
}

// Coalescer merges concurrent write requests into micro-batches and
// applies them to the embedder on a single ingest goroutine, which also
// serializes publishes. Start it before submitting; Close drains.
type Coalescer struct {
	d    *dyn.DynamicEmbedder
	opts CoalescerOptions

	mu     sync.Mutex
	closed bool // guarded by mu (as is the send into queue)
	queue  chan *request

	requests  atomic.Int64
	ops       atomic.Int64
	flushes   atomic.Int64
	coalesced atomic.Int64
	replays   atomic.Int64
	rejected  atomic.Int64

	// drainRate is the EWMA of requests drained per second (float64
	// bits; written only by the ingest goroutine, read by RetryAfter and
	// the exposition gauge).
	drainRate atomic.Uint64

	// started flips once Start launches the ingest goroutine; together
	// with closed it backs Accepting (the /readyz signal).
	started atomic.Bool

	// pubNanos accumulates publish durations reported by the embedder's
	// publish hook. The fold path resets it before Apply and drains it
	// after, so auto-publishes that run *inside* Apply are attributed to
	// the publish span instead of inflating the fold span.
	pubNanos atomic.Int64

	// Observability instruments (nil until instrument; each use is
	// nil-guarded so an uninstrumented coalescer pays nothing).
	mBatchOps *metrics.Histogram // ops per merged micro-batch
	mFold     *metrics.Histogram // Apply (fold) latency per flush
	mAckWait  *metrics.Histogram // Submit-to-ack wall time per request

	pendingOps int // ops applied but unacked (ingest goroutine only)
	loopDone   chan struct{}
}

// NewCoalescer prepares a coalescer over the embedder. The returned
// coalescer is idle: requests queue up (to QueueCap) but nothing is
// applied until Start.
func NewCoalescer(d *dyn.DynamicEmbedder, opts CoalescerOptions) *Coalescer {
	opts = opts.withDefaults()
	c := &Coalescer{
		d:        d,
		opts:     opts,
		queue:    make(chan *request, opts.QueueCap),
		loopDone: make(chan struct{}),
	}
	d.SetPublishHook(func(_ uint64, dur time.Duration) {
		c.pubNanos.Add(int64(dur))
	})
	return c
}

// Start launches the ingest goroutine. Call exactly once.
func (c *Coalescer) Start() {
	c.started.Store(true)
	go c.run()
}

// Accepting reports whether the coalescer is taking writes: started
// and not yet closed. This is the write-path half of GET /readyz.
func (c *Coalescer) Accepting() bool {
	if !c.started.Load() {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return !c.closed
}

// Close stops intake (subsequent Submits fail with ErrClosed), drains
// and applies everything already queued, publishes, and acknowledges
// every pending request before returning.
func (c *Coalescer) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		<-c.loopDone
		return
	}
	c.closed = true
	close(c.queue)
	c.mu.Unlock()
	<-c.loopDone
}

// Stats returns a copy of the counters. Load order matters for a
// consistent snapshot under concurrent writers: every derived counter
// (flushes, coalesced, replays) increments strictly after the requests
// it covers, and ops increments before requests in Submit — so loading
// the derived counters first, then requests, then ops, guarantees the
// scraped view satisfies Coalesced ≤ Requests, Flushes ≤ Requests, and
// Ops ≥ Requests (each accepted request carries ≥ 1 op).
func (c *Coalescer) Stats() CoalescerStats {
	s := CoalescerStats{
		Flushes:   c.flushes.Load(),
		Coalesced: c.coalesced.Load(),
		Replays:   c.replays.Load(),
		Rejected:  c.rejected.Load(),
	}
	s.Requests = c.requests.Load()
	s.Ops = c.ops.Load()
	return s
}

// instrument registers the coalescer's instruments. The counters reuse
// the existing atomic cells via sampled callbacks, so /statsz and
// /metrics can never disagree. A sharded server passes a distinct
// shard label per coalescer (gee_coalescer_queue_depth{shard="2"}), so
// N coalescers' series coexist on one registry instead of silently
// aliasing the first registration's cells.
func (c *Coalescer) instrument(reg *metrics.Registry, labels ...metrics.Label) {
	c.mBatchOps = reg.Histogram("gee_coalescer_batch_ops",
		"Operations per merged micro-batch flushed to the embedder.",
		metrics.DefCountBuckets, labels...)
	c.mFold = reg.Histogram("gee_coalescer_fold_seconds",
		"Latency of folding one micro-batch into the embedder (dyn.Apply).",
		metrics.DefLatencyBuckets, labels...)
	c.mAckWait = reg.Histogram("gee_coalescer_ack_wait_seconds",
		"Submit-to-ack wall time per accepted write request (queue wait + fold + covering publish).",
		metrics.DefLatencyBuckets, labels...)
	reg.GaugeFunc("gee_coalescer_queue_depth",
		"Write requests waiting in the bounded ingest queue.",
		func() float64 { return float64(len(c.queue)) }, labels...)
	reg.GaugeFunc("gee_coalescer_queue_cap",
		"Capacity of the ingest queue (Submit rejects with 429 beyond it).",
		func() float64 { return float64(c.opts.QueueCap) }, labels...)
	reg.GaugeFunc("gee_coalescer_drain_rate",
		"EWMA of write requests drained from the queue per second.",
		func() float64 { return math.Float64frombits(c.drainRate.Load()) }, labels...)
	reg.CounterFunc("gee_coalescer_requests_total",
		"Write requests accepted into the ingest queue.",
		func() float64 { return float64(c.requests.Load()) }, labels...)
	reg.CounterFunc("gee_coalescer_ops_total",
		"Operations across accepted write requests.",
		func() float64 { return float64(c.ops.Load()) }, labels...)
	reg.CounterFunc("gee_coalescer_flushes_total",
		"Merged micro-batches applied to the embedder.",
		func() float64 { return float64(c.flushes.Load()) }, labels...)
	reg.CounterFunc("gee_coalescer_coalesced_total",
		"Requests that shared a micro-batch with another request.",
		func() float64 { return float64(c.coalesced.Load()) }, labels...)
	reg.CounterFunc("gee_coalescer_replays_total",
		"Requests re-applied individually after a merged-batch error.",
		func() float64 { return float64(c.replays.Load()) }, labels...)
	reg.CounterFunc("gee_coalescer_rejected_total",
		"Requests refused with 429 because the queue was full.",
		func() float64 { return float64(c.rejected.Load()) }, labels...)
}

// Submit enqueues one write request without blocking. The returned
// channel delivers exactly one Ack once the request's operations are
// published (or rejected by validation). A batch with no operations is
// acknowledged immediately at the current epoch.
func (c *Coalescer) Submit(b dyn.Batch) (<-chan Ack, error) {
	return c.SubmitTraced(b, nil)
}

// SubmitTraced is Submit carrying the request's trace. The coalescer
// opens the queue-wait span here and records fold and publish-wait
// spans as the request moves through the pipeline; ownership of tr
// transfers to the ingest goroutine on enqueue and returns to the
// caller with the ack (both handoffs synchronize via channels). A nil
// tr degrades to plain Submit.
func (c *Coalescer) SubmitTraced(b dyn.Batch, tr *trace.Trace) (<-chan Ack, error) {
	ops := len(b.Insert) + len(b.Delete) + len(b.Labels)
	done := make(chan Ack, 1)
	if ops == 0 {
		done <- Ack{Epoch: c.d.Epoch(), sent: time.Now()}
		return done, nil
	}
	req := &request{batch: b, ops: ops, done: done, enq: time.Now(), tr: tr}
	req.queueRef = tr.StartSpanAt("queue", req.enq)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	select {
	case c.queue <- req:
		c.mu.Unlock()
		// Ops before requests: a concurrent Stats/scrape loads requests
		// before ops, so this order keeps Ops ≥ Requests in every
		// observable snapshot.
		c.ops.Add(int64(ops))
		c.requests.Add(1)
		return done, nil
	default:
		c.mu.Unlock()
		c.rejected.Add(1)
		return nil, ErrBacklog
	}
}

// lock/unlock expose the coalescer's mutex to the sharded router,
// which must hold every target shard's lock at once to make a
// scattered write all-or-nothing: with all locks held it checks room
// on every shard, then enqueues on every shard, so no sub-batch can be
// rejected (or reordered against another scattered write) after a
// sibling was accepted. Single-embedder callers use Submit.
func (c *Coalescer) lock()   { c.mu.Lock() }
func (c *Coalescer) unlock() { c.mu.Unlock() }

// canAcceptLocked reports whether one more request would be accepted:
// ErrClosed after Close, ErrBacklog when the queue is full, nil
// otherwise. Callers hold c.mu (see lock).
func (c *Coalescer) canAcceptLocked() error {
	if c.closed {
		return ErrClosed
	}
	if len(c.queue) == cap(c.queue) {
		return ErrBacklog
	}
	return nil
}

// enqueueLocked enqueues one request that canAcceptLocked already
// admitted; the send cannot block because the room check and this send
// happen under one continuous hold of c.mu. Callers hold c.mu.
func (c *Coalescer) enqueueLocked(b dyn.Batch, ops int, tr *trace.Trace) <-chan Ack {
	done := make(chan Ack, 1)
	req := &request{batch: b, ops: ops, done: done, enq: time.Now(), tr: tr}
	req.queueRef = tr.StartSpanAt("queue", req.enq)
	c.queue <- req
	// Ops before requests, as in Submit, so scrapes keep Ops ≥ Requests.
	c.ops.Add(int64(ops))
	c.requests.Add(1)
	return done
}

// run is the ingest loop: collect a micro-batch (size- and
// latency-bounded), apply it, and acknowledge once published.
func (c *Coalescer) run() {
	defer close(c.loopDone)
	var pending []*request // applied, awaiting a covering publish
	for {
		first, ok := <-c.queue
		if !ok {
			c.settle(pending, true)
			return
		}
		t0 := time.Now()
		reqs := []*request{first}
		ops := first.ops
		timer := time.NewTimer(c.opts.MaxDelay)
	collect:
		for ops < c.opts.MaxBatch {
			select {
			case r, ok := <-c.queue:
				if !ok {
					break collect
				}
				reqs = append(reqs, r)
				ops += r.ops
			case <-timer.C:
				break collect
			}
		}
		timer.Stop()
		pending = c.apply(reqs, pending)
		pending = c.settle(pending, len(c.queue) == 0)
		c.observeDrain(len(reqs), time.Since(t0))
	}
}

// apply folds one micro-batch. The merged fast path applies all
// requests as a single dyn.Batch; if the merged batch is rejected
// (e.g. one request deletes an edge another request in the same
// micro-batch is still inserting — dyn orders deletions first — or a
// single request carries an invalid op), each request is replayed
// individually in arrival order so only the offenders fail.
func (c *Coalescer) apply(reqs []*request, pending []*request) []*request {
	t0 := time.Now()
	for _, r := range reqs {
		// One clock reading closes every queue span and opens the fold
		// span, so the stages stay contiguous: their sum is exactly the
		// enqueue-to-ack wall time.
		r.tr.EndSpanAt(r.queueRef, t0)
	}
	if len(reqs) == 1 {
		c.flushes.Add(1)
		c.observeBatch(reqs[0].ops)
		err := c.fold(reqs[0].batch)
		foldEnd := c.foldSpans(reqs, t0, reqs[0].ops, err)
		if err != nil {
			reqs[0].done <- Ack{Err: err, sent: time.Now()}
			return pending
		}
		reqs[0].foldEnd = foldEnd
		c.pendingOps += reqs[0].ops
		return append(pending, reqs[0])
	}
	var merged dyn.Batch
	ops := 0
	for _, r := range reqs {
		merged.Insert = append(merged.Insert, r.batch.Insert...)
		merged.Delete = append(merged.Delete, r.batch.Delete...)
		merged.Labels = append(merged.Labels, r.batch.Labels...)
		ops += r.ops
	}
	c.flushes.Add(1)
	c.observeBatch(ops)
	err := c.fold(merged)
	foldEnd := c.foldSpans(reqs, t0, ops, err)
	if err == nil {
		c.coalesced.Add(int64(len(reqs)))
		for _, r := range reqs {
			r.foldEnd = foldEnd
			c.pendingOps += r.ops
		}
		return append(pending, reqs...)
	}
	for _, r := range reqs {
		c.replays.Add(1)
		rt0 := time.Now()
		err := c.fold(r.batch)
		rEnd := c.foldSpans([]*request{r}, rt0, r.ops, err)
		if err != nil {
			r.done <- Ack{Err: err, sent: time.Now()}
			continue
		}
		r.foldEnd = rEnd
		c.pendingOps += r.ops
		pending = append(pending, r)
	}
	return pending
}

// foldSpans records a fold span on every request in the batch, ending
// at now minus whatever publish time the embedder's hook reported
// during the Apply — auto-publish runs inside Apply, and charging it
// to the fold would leave the publish-wait span empty. Returns the
// fold end instant (= publish-wait start). The span tags record the
// coalescing: how many requests and ops shared this fold.
func (c *Coalescer) foldSpans(reqs []*request, start time.Time, ops int, err error) time.Time {
	end := time.Now()
	pub := time.Duration(c.pubNanos.Swap(0))
	if pub < 0 {
		pub = 0
	}
	if window := end.Sub(start); pub > window {
		pub = window
	}
	foldEnd := end.Add(-pub)
	for _, r := range reqs {
		ref := r.tr.AddSpan("fold", start, foldEnd)
		r.tr.SpanTag(ref, "batch_requests", strconv.Itoa(len(reqs)))
		r.tr.SpanTag(ref, "batch_ops", strconv.Itoa(ops))
		if err != nil {
			r.tr.SpanTag(ref, "error", err.Error())
		}
	}
	return foldEnd
}

// fold applies one batch to the embedder, timing it when instrumented.
func (c *Coalescer) fold(b dyn.Batch) error {
	if c.mFold == nil {
		return c.d.Apply(b)
	}
	t0 := time.Now()
	err := c.d.Apply(b)
	c.mFold.ObserveSince(t0)
	return err
}

func (c *Coalescer) observeBatch(ops int) {
	if c.mBatchOps != nil {
		c.mBatchOps.Observe(float64(ops))
	}
}

// observeDrain folds one batch window (collect + fold + settle) into
// the drain-rate EWMA. Smoothing 0.2 makes the rate settle over ~5
// windows — fast enough to track a load shift, slow enough that one
// slow publish does not swing Retry-After.
func (c *Coalescer) observeDrain(reqs int, elapsed time.Duration) {
	sec := elapsed.Seconds()
	if sec <= 0 {
		return
	}
	inst := float64(reqs) / sec
	prev := math.Float64frombits(c.drainRate.Load())
	next := inst
	if prev > 0 {
		next = 0.2*inst + 0.8*prev
	}
	c.drainRate.Store(math.Float64bits(next))
}

// retryAfterSeconds derives a Retry-After hint from the queue depth and
// the drain rate: roughly how long until the backlog clears, clamped to
// [1, 30] seconds. With no drain observed yet (cold or stalled ingest)
// a non-empty queue advises the maximum.
func retryAfterSeconds(depth int, rate float64) int {
	const minRetry, maxRetry = 1, 30
	if rate <= 0 {
		if depth > 0 {
			return maxRetry
		}
		return minRetry
	}
	s := int(math.Ceil(float64(depth) / rate))
	if s < minRetry {
		return minRetry
	}
	if s > maxRetry {
		return maxRetry
	}
	return s
}

// RetryAfter returns the current backoff hint in whole seconds for a
// rejected write (the 429 Retry-After header).
func (c *Coalescer) RetryAfter() int {
	return retryAfterSeconds(len(c.queue), math.Float64frombits(c.drainRate.Load()))
}

// settle acknowledges applied requests once a publish covers them. If
// the embedder auto-published during apply (per-batch or PublishEvery
// policy) the current epoch already covers everything applied; when it
// did not, a publish is forced once the queue is idle (or the pending
// ops have grown past MaxBatch), so acks are never deferred behind an
// arbitrarily long backlog.
func (c *Coalescer) settle(pending []*request, idle bool) []*request {
	if len(pending) == 0 {
		return pending
	}
	// PendingOps == 0 means every applied op — ours included — is
	// covered by some already-published epoch, so any snapshot loaded
	// *after* that check is at or past it (epochs are monotonic; this
	// ordering stays sound even when another writer publishes
	// concurrently). PendingOps > 0 may also be another writer's
	// unpublished ops; publishing ours along with them is harmless.
	var snap *dyn.Snapshot
	if c.d.PendingOps() > 0 {
		if !idle && c.pendingOps < c.opts.MaxBatch {
			return pending
		}
		snap = c.d.Publish()
		// The forced publish above reported into pubNanos; drain it so
		// the next window's fold span does not subtract it again (the
		// publish-wait spans recorded below already cover it).
		c.pubNanos.Store(0)
	} else {
		snap = c.d.Snapshot()
	}
	epoch := snap.Epoch
	now := time.Now()
	epochTag := strconv.FormatUint(epoch, 10)
	for _, r := range pending {
		if c.mAckWait != nil {
			c.mAckWait.Observe(now.Sub(r.enq).Seconds())
		}
		if r.tr != nil {
			ref := r.tr.AddSpan("publish", r.foldEnd, now)
			r.tr.SpanTag(ref, "epoch", epochTag)
		}
		r.done <- Ack{Epoch: epoch, sent: now}
	}
	c.pendingOps = 0
	return pending[:0]
}
