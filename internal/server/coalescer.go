// Package server is the network serving layer of the GEE reproduction:
// it exposes a dyn.DynamicEmbedder over HTTP/JSON. Reads (embedding
// rows, snapshots, stats) are answered lock-free from the currently
// published snapshot; writes (edge inserts/deletes, label updates) go
// through an ingest coalescer that merges concurrent small client
// requests into micro-batches before they hit the embedder, so the
// batch-oriented fold paths (atomic / sharded EdgePlan) see batch-sized
// work even when every client sends one edge at a time.
//
// The coalescer is the throughput lever: per-request Apply would pay a
// serial fold and an O(nK) publish per edge, while a micro-batch pays
// both once per hundreds or thousands of ops. Its queue is bounded —
// when clients outrun ingest, Submit fails fast (HTTP 429) instead of
// buffering without limit. Every accepted write request is acknowledged
// only after its operations are published, and the ack carries the
// published epoch, so a client that has its ack can immediately read
// its own write from any later snapshot.
package server

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dyn"
)

// ErrBacklog is returned by Submit when the bounded request queue is
// full; HTTP handlers translate it to 429 Too Many Requests.
var ErrBacklog = errors.New("server: ingest queue full")

// ErrClosed is returned by Submit after Close; HTTP handlers translate
// it to 503 Service Unavailable.
var ErrClosed = errors.New("server: coalescer closed")

// CoalescerOptions bounds the micro-batching.
type CoalescerOptions struct {
	// MaxBatch flushes a micro-batch once it holds at least this many
	// operations (edge ops + label updates). Zero selects 4096.
	MaxBatch int
	// MaxDelay flushes a micro-batch this long after its first request
	// arrived, bounding the latency a lone small write can be held for
	// the benefit of batching. Zero selects 2ms.
	MaxDelay time.Duration
	// QueueCap bounds the request queue; a full queue rejects with
	// ErrBacklog. Zero selects 1024.
	QueueCap int
}

func (o CoalescerOptions) withDefaults() CoalescerOptions {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 4096
	}
	if o.MaxDelay <= 0 {
		o.MaxDelay = 2 * time.Millisecond
	}
	if o.QueueCap <= 0 {
		o.QueueCap = 1024
	}
	return o
}

// CoalescerStats counts what the coalescer has done. Flushes vs
// Requests is the coalescing ratio: concurrent single-op clients should
// see Flushes ≪ Requests.
type CoalescerStats struct {
	Requests  int64 // write requests accepted into the queue
	Ops       int64 // operations across accepted requests
	Flushes   int64 // merged micro-batches applied to the embedder
	Coalesced int64 // requests that shared a micro-batch with another
	Replays   int64 // requests re-applied individually after a merged-batch error
	Rejected  int64 // requests refused with ErrBacklog
}

// Ack is the completion notice for one accepted write request. When Err
// is nil the request's operations are applied and published: every
// snapshot at or after Epoch reflects them.
type Ack struct {
	Epoch uint64
	Err   error
}

// request is one queued write with its completion channel (buffered, so
// the coalescer never blocks on a departed client).
type request struct {
	batch dyn.Batch
	ops   int
	done  chan Ack
}

// Coalescer merges concurrent write requests into micro-batches and
// applies them to the embedder on a single ingest goroutine, which also
// serializes publishes. Start it before submitting; Close drains.
type Coalescer struct {
	d    *dyn.DynamicEmbedder
	opts CoalescerOptions

	mu     sync.Mutex // guards closed + the send into queue
	closed bool
	queue  chan *request

	requests  atomic.Int64
	ops       atomic.Int64
	flushes   atomic.Int64
	coalesced atomic.Int64
	replays   atomic.Int64
	rejected  atomic.Int64

	pendingOps int // ops applied but unacked (ingest goroutine only)
	loopDone   chan struct{}
}

// NewCoalescer prepares a coalescer over the embedder. The returned
// coalescer is idle: requests queue up (to QueueCap) but nothing is
// applied until Start.
func NewCoalescer(d *dyn.DynamicEmbedder, opts CoalescerOptions) *Coalescer {
	opts = opts.withDefaults()
	return &Coalescer{
		d:        d,
		opts:     opts,
		queue:    make(chan *request, opts.QueueCap),
		loopDone: make(chan struct{}),
	}
}

// Start launches the ingest goroutine. Call exactly once.
func (c *Coalescer) Start() { go c.run() }

// Close stops intake (subsequent Submits fail with ErrClosed), drains
// and applies everything already queued, publishes, and acknowledges
// every pending request before returning.
func (c *Coalescer) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		<-c.loopDone
		return
	}
	c.closed = true
	close(c.queue)
	c.mu.Unlock()
	<-c.loopDone
}

// Stats returns a copy of the counters.
func (c *Coalescer) Stats() CoalescerStats {
	return CoalescerStats{
		Requests:  c.requests.Load(),
		Ops:       c.ops.Load(),
		Flushes:   c.flushes.Load(),
		Coalesced: c.coalesced.Load(),
		Replays:   c.replays.Load(),
		Rejected:  c.rejected.Load(),
	}
}

// Submit enqueues one write request without blocking. The returned
// channel delivers exactly one Ack once the request's operations are
// published (or rejected by validation). A batch with no operations is
// acknowledged immediately at the current epoch.
func (c *Coalescer) Submit(b dyn.Batch) (<-chan Ack, error) {
	ops := len(b.Insert) + len(b.Delete) + len(b.Labels)
	done := make(chan Ack, 1)
	if ops == 0 {
		done <- Ack{Epoch: c.d.Epoch()}
		return done, nil
	}
	req := &request{batch: b, ops: ops, done: done}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	select {
	case c.queue <- req:
		c.mu.Unlock()
		c.requests.Add(1)
		c.ops.Add(int64(ops))
		return done, nil
	default:
		c.mu.Unlock()
		c.rejected.Add(1)
		return nil, ErrBacklog
	}
}

// run is the ingest loop: collect a micro-batch (size- and
// latency-bounded), apply it, and acknowledge once published.
func (c *Coalescer) run() {
	defer close(c.loopDone)
	var pending []*request // applied, awaiting a covering publish
	for {
		first, ok := <-c.queue
		if !ok {
			c.settle(pending, true)
			return
		}
		reqs := []*request{first}
		ops := first.ops
		timer := time.NewTimer(c.opts.MaxDelay)
	collect:
		for ops < c.opts.MaxBatch {
			select {
			case r, ok := <-c.queue:
				if !ok {
					break collect
				}
				reqs = append(reqs, r)
				ops += r.ops
			case <-timer.C:
				break collect
			}
		}
		timer.Stop()
		pending = c.apply(reqs, pending)
		pending = c.settle(pending, len(c.queue) == 0)
	}
}

// apply folds one micro-batch. The merged fast path applies all
// requests as a single dyn.Batch; if the merged batch is rejected
// (e.g. one request deletes an edge another request in the same
// micro-batch is still inserting — dyn orders deletions first — or a
// single request carries an invalid op), each request is replayed
// individually in arrival order so only the offenders fail.
func (c *Coalescer) apply(reqs []*request, pending []*request) []*request {
	if len(reqs) == 1 {
		c.flushes.Add(1)
		if err := c.d.Apply(reqs[0].batch); err != nil {
			reqs[0].done <- Ack{Err: err}
			return pending
		}
		c.pendingOps += reqs[0].ops
		return append(pending, reqs[0])
	}
	var merged dyn.Batch
	for _, r := range reqs {
		merged.Insert = append(merged.Insert, r.batch.Insert...)
		merged.Delete = append(merged.Delete, r.batch.Delete...)
		merged.Labels = append(merged.Labels, r.batch.Labels...)
	}
	c.flushes.Add(1)
	if err := c.d.Apply(merged); err == nil {
		c.coalesced.Add(int64(len(reqs)))
		for _, r := range reqs {
			c.pendingOps += r.ops
		}
		return append(pending, reqs...)
	}
	for _, r := range reqs {
		c.replays.Add(1)
		if err := c.d.Apply(r.batch); err != nil {
			r.done <- Ack{Err: err}
			continue
		}
		c.pendingOps += r.ops
		pending = append(pending, r)
	}
	return pending
}

// settle acknowledges applied requests once a publish covers them. If
// the embedder auto-published during apply (per-batch or PublishEvery
// policy) the current epoch already covers everything applied; when it
// did not, a publish is forced once the queue is idle (or the pending
// ops have grown past MaxBatch), so acks are never deferred behind an
// arbitrarily long backlog.
func (c *Coalescer) settle(pending []*request, idle bool) []*request {
	if len(pending) == 0 {
		return pending
	}
	// PendingOps == 0 means every applied op — ours included — is
	// covered by some already-published epoch, so any snapshot loaded
	// *after* that check is at or past it (epochs are monotonic; this
	// ordering stays sound even when another writer publishes
	// concurrently). PendingOps > 0 may also be another writer's
	// unpublished ops; publishing ours along with them is harmless.
	var snap *dyn.Snapshot
	if c.d.PendingOps() > 0 {
		if !idle && c.pendingOps < c.opts.MaxBatch {
			return pending
		}
		snap = c.d.Publish()
	} else {
		snap = c.d.Snapshot()
	}
	epoch := snap.Epoch
	for _, r := range pending {
		r.done <- Ack{Epoch: epoch}
	}
	c.pendingOps = 0
	return pending[:0]
}
