package server

import (
	"strconv"
	"time"

	"repro/internal/cluster"
	"repro/internal/dyn"
	"repro/internal/graph"
	"repro/internal/mat"
	"repro/internal/metrics"
	"repro/internal/shard"
	"repro/internal/trace"
)

// The serving tier fronts either one embedder or a set of
// vertex-partitioned shards; every HTTP handler resolves through the
// backend interface so the route table, request decoding, tracing, and
// wire formats are written once. The single-embedder implementation
// below is the N=1 fast path: it is the pre-sharding code moved behind
// the interface verbatim, so an unsharded server's wire output is
// unchanged. The sharded implementation (router.go) scatters writes by
// edge endpoint and gathers reads across shards.

// writeAck is a backend's answer to one accepted write batch.
type writeAck struct {
	// epoch is the scalar summary clients key read-your-writes on: the
	// single backend's published epoch, or the max of the vector below.
	epoch uint64
	// epochs is the per-shard ack vector (nil on the single backend):
	// epochs[i] is the epoch at which shard i published this batch's
	// operations (only shards the batch touched appear).
	epochs shard.EpochVector
	// err is an apply-time rejection (HTTP 400); the batch was accepted
	// into the queue but the embedder refused it.
	err error
	// sent is the latest instant an ingest goroutine released an ack,
	// the start of the trace's ack span.
	sent time.Time
}

// searchOut is a backend's answer to one /v1/neighbors query.
type searchOut struct {
	nbrs []cluster.Neighbor
	// mode is what actually answered: "exact" or "approx" (an approx
	// request degrades to exact while indexes are cold; on a sharded
	// backend "approx" means at least one shard answered from its index).
	mode       string
	epoch      uint64
	indexEpoch uint64
	// epochs is the per-shard snapshot vector the scan covered (nil on
	// the single backend).
	epochs shard.EpochVector
}

// readView pins one published snapshot per shard so a multi-row read
// answers every row from one consistent per-shard version. The single
// backend's view is one snapshot; the router's is one per shard, each
// row served by its owner.
type readView struct {
	snaps []*dyn.Snapshot
	part  *shard.Partition // nil on the single backend
}

// row returns vertex v's embedding row from its owning shard's
// snapshot. Only the owner's copy of a row is ever published (non-owned
// rows are zero by the dyn owned-window contract), so ownership is the
// only correct routing.
func (rv readView) row(v uint32) []float64 {
	return rv.snaps[rv.owner(v)].Z.Row(int(v))
}

func (rv readView) owner(v uint32) int {
	if rv.part == nil {
		return 0
	}
	return rv.part.Owner(graph.NodeID(v))
}

// epoch is the scalar version summary for the response header path:
// the single snapshot's epoch, or the max across shards.
func (rv readView) epoch() uint64 {
	var max uint64
	for _, s := range rv.snaps {
		if s.Epoch > max {
			max = s.Epoch
		}
	}
	return max
}

// epochs is the per-shard version vector (nil on the single backend,
// keeping unsharded response bodies byte-identical via omitempty).
func (rv readView) epochs() shard.EpochVector {
	if rv.part == nil {
		return nil
	}
	ev := make(shard.EpochVector, len(rv.snaps))
	for i, s := range rv.snaps {
		ev[i] = s.Epoch
	}
	return ev
}

// backend is the serving surface every handler resolves through: one
// embedder (singleBackend) or a vertex-partitioned shard set (router).
type backend interface {
	// vertices and width are the global embedding dimensions n and K.
	vertices() int
	width() int

	// submit runs one write batch to publication: validate, enqueue
	// (scattered across owner shards when sharded), await every ack.
	// The returned error is the admission verdict (ErrBacklog,
	// ErrClosed); an apply-time rejection rides writeAck.err.
	submit(b dyn.Batch, tr *trace.Trace) (writeAck, error)
	// retryAfter is the backoff hint for a rejected write, in seconds.
	retryAfter() int

	// snapshotFor returns the published snapshot that is the authority
	// for vertex v's row.
	snapshotFor(v uint32) *dyn.Snapshot
	// view pins one snapshot per shard for a consistent batch read.
	view() readView
	// search answers one top-k neighbors query (scatter-gather when
	// sharded). k is already clamped to [1, n]; v is in range.
	search(v uint32, k int, metric cluster.Metric, name string, approx bool, nprobe int, tr *trace.Trace) searchOut

	// sectioned reports whether snapshot/delta reads are served as
	// per-shard sections (?shard= required on a sharded server).
	sectioned() bool
	shardCount() int
	// section returns shard i's published snapshot and its owned global
	// row window [lo, hi). The single backend's only section is the
	// whole matrix.
	section(i int) (snap *dyn.Snapshot, lo, hi int)
	// sectionDelta returns shard i's delta from epoch `from` (rows are
	// global ids, restricted to the shard's owned window).
	sectionDelta(i int, from uint64) *dyn.Delta
	// meta describes the partition for GET /v1/partition.
	meta() shard.Meta

	// ready reports load-balancer readiness: a non-empty reason means
	// 503; otherwise epoch is the published epoch reads answer from.
	ready() (epoch uint64, reason string)
	health() HealthResponse
	// stats fills everything except Wire (the server owns those
	// counters across backends).
	stats() StatsResponse

	instrument(reg *metrics.Registry)
	start()
	close()
}

// singleBackend is the unsharded serving path: one embedder, one
// coalescer, one index cache. Behavior (and wire bytes) match the
// pre-sharding server exactly.
type singleBackend struct {
	d       *dyn.DynamicEmbedder
	co      *Coalescer
	index   *indexCache
	workers int // search/scan parallelism
}

func newSingleBackend(d *dyn.DynamicEmbedder, opts Options) *singleBackend {
	return &singleBackend{
		d:       d,
		co:      NewCoalescer(d, opts.Coalescer),
		index:   newIndexCache(d, opts.SearchWorkers, opts.Index),
		workers: opts.SearchWorkers,
	}
}

func (sb *singleBackend) vertices() int { return sb.d.N() }
func (sb *singleBackend) width() int    { return sb.d.K() }

func (sb *singleBackend) submit(b dyn.Batch, tr *trace.Trace) (writeAck, error) {
	ack, err := sb.co.SubmitTraced(b, tr)
	if err != nil {
		return writeAck{}, err
	}
	// The ack always arrives (Close drains the queue), so waiting on it
	// alone is safe; a departed client just discards the response.
	a := <-ack
	return writeAck{epoch: a.Epoch, err: a.Err, sent: a.sent}, nil
}

func (sb *singleBackend) retryAfter() int { return sb.co.RetryAfter() }

func (sb *singleBackend) snapshotFor(v uint32) *dyn.Snapshot { return sb.d.Snapshot() }

func (sb *singleBackend) view() readView {
	return readView{snaps: []*dyn.Snapshot{sb.d.Snapshot()}}
}

func (sb *singleBackend) search(v uint32, k int, metric cluster.Metric, name string, approx bool, nprobe int, tr *trace.Trace) searchOut {
	loadRef := tr.StartSpan("snapshot-load")
	snap := sb.d.Snapshot()
	tr.EndSpan(loadRef)
	out := searchOut{mode: "exact", epoch: snap.Epoch, indexEpoch: snap.Epoch}
	served := false
	searchRef := tr.StartSpan("search")
	if approx {
		if idx := sb.index.current(snap); idx != nil {
			// The query row must come from the index's own snapshot:
			// distances against mixed epochs would be meaningless.
			out.nbrs = idx.ivf.Search(sb.workers, idx.snap.Z.Row(int(v)), k, metric, int(v), nprobe)
			out.indexEpoch = idx.snap.Epoch
			out.mode = "approx"
			served = true
		}
		// Cold index or matrix below the index threshold: answer exactly
		// from the live snapshot and say so.
	}
	if !served {
		out.nbrs = cluster.TopK(sb.workers, snap.Z, snap.Z.Row(int(v)), k, metric, int(v))
	}
	tr.EndSpan(searchRef)
	tr.SpanTag(searchRef, "mode", out.mode)
	tr.SpanTag(searchRef, "metric", name)
	tr.SpanTag(searchRef, "index_epoch", strconv.FormatUint(out.indexEpoch, 10))
	if nprobe > 0 {
		tr.SpanTag(searchRef, "nprobe", strconv.Itoa(nprobe))
	}
	return out
}

func (sb *singleBackend) sectioned() bool { return false }
func (sb *singleBackend) shardCount() int { return 1 }

func (sb *singleBackend) section(i int) (*dyn.Snapshot, int, int) {
	return sb.d.Snapshot(), 0, sb.d.N()
}

func (sb *singleBackend) sectionDelta(i int, from uint64) *dyn.Delta {
	return sb.d.Delta(from)
}

func (sb *singleBackend) meta() shard.Meta {
	snap := sb.d.Snapshot()
	return shard.Meta{
		Shards:    1,
		N:         sb.d.N(),
		K:         sb.d.K(),
		Bounds:    []uint32{0, uint32(sb.d.N())},
		Instances: []uint64{sb.d.Instance()},
		Epochs:    shard.EpochVector{0: snap.Epoch},
	}
}

func (sb *singleBackend) ready() (uint64, string) {
	if !sb.co.Accepting() {
		return 0, "ingest coalescer not accepting writes"
	}
	snap := sb.d.Snapshot()
	if snap == nil {
		return 0, "no snapshot published"
	}
	return snap.Epoch, ""
}

func (sb *singleBackend) health() HealthResponse {
	return HealthResponse{Status: "ok", Epoch: sb.d.Epoch(), N: sb.d.N(), K: sb.d.K()}
}

func (sb *singleBackend) stats() StatsResponse {
	return StatsResponse{
		N: sb.d.N(), K: sb.d.K(), Dyn: sb.d.Stats(), Coalescer: sb.co.Stats(),
		Index: sb.index.stats(),
	}
}

func (sb *singleBackend) instrument(reg *metrics.Registry) {
	sb.d.Instrument(reg)
	sb.co.instrument(reg)
	sb.index.instrument(reg)
}

func (sb *singleBackend) start() { sb.co.Start() }

func (sb *singleBackend) close() {
	sb.co.Close()
	// Refuse further index rebuilds and wait out any in-flight one
	// (an expired ctx returns from http.Shutdown with handlers still
	// running, so late kicks must be gated, not assumed impossible).
	sb.index.close()
}

// sectionSnapshot slices a shard's published snapshot down to its owned
// window [lo, hi): a section is encoded exactly like a snapshot of a
// smaller embedder (n = hi−lo, implicit ids starting at the section's
// global offset), so the existing binary frame layout and client
// validation apply unchanged. Borrows the immutable snapshot — no copy.
func sectionSnapshot(snap *dyn.Snapshot, lo, hi int) *dyn.Snapshot {
	k := snap.Z.C
	return &dyn.Snapshot{
		Epoch:    snap.Epoch,
		Instance: snap.Instance,
		Edges:    snap.Edges,
		Y:        snap.Y[lo:hi],
		Z:        &mat.Dense{R: hi - lo, C: k, Data: snap.Z.Data[lo*k : hi*k]},
	}
}
