// Package labels produces the class-label vector Y that GEE consumes.
//
// The paper's protocol (§IV): "We generated the Y labels uniformly at
// random from [0, K = 50] for 10% of nodes, which were also selected
// uniformly at random." SampleSemiSupervised reproduces that exactly.
// The paper also notes Y "may be derived from unsupervised clustering,
// such as by running the Leiden community detection algorithm";
// Propagation provides that role with synchronous label propagation
// (the documented Leiden substitute, DESIGN.md §3).
package labels

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/xrand"
)

// Unknown marks an unlabeled vertex in Y.
const Unknown int32 = -1

// SampleSemiSupervised returns Y of length n with exactly
// round(fraction*n) vertices labeled uniformly from [0, K) and the rest
// Unknown. Labeled vertices are a uniform random subset. Deterministic
// in seed.
func SampleSemiSupervised(n, k int, fraction float64, seed uint64) []int32 {
	if k <= 0 {
		panic(fmt.Sprintf("labels: k=%d must be positive", k))
	}
	if fraction < 0 || fraction > 1 {
		panic(fmt.Sprintf("labels: fraction=%v out of [0,1]", fraction))
	}
	y := make([]int32, n)
	for i := range y {
		y[i] = Unknown
	}
	budget := int(fraction*float64(n) + 0.5)
	r := xrand.New(seed)
	// partial Fisher-Yates over vertex ids: the first `budget` draws are
	// a uniform subset
	ids := make([]graph.NodeID, n)
	for i := range ids {
		ids[i] = graph.NodeID(i)
	}
	for i := 0; i < budget; i++ {
		j := i + r.Intn(n-i)
		ids[i], ids[j] = ids[j], ids[i]
		y[ids[i]] = int32(r.Intn(k))
	}
	return y
}

// Full returns Y with every vertex labeled uniformly from [0, K).
func Full(n, k int, seed uint64) []int32 {
	y := make([]int32, n)
	r := xrand.New(seed)
	for i := range y {
		y[i] = int32(r.Intn(k))
	}
	return y
}

// Stats summarizes a label vector.
type Stats struct {
	N        int
	Labeled  int
	K        int     // 1 + max label
	Coverage float64 // Labeled / N
	Counts   []int64 // per-class counts
}

// Summarize scans Y.
func Summarize(y []int32) Stats {
	s := Stats{N: len(y)}
	for _, v := range y {
		if v >= 0 {
			s.Labeled++
			if int(v)+1 > s.K {
				s.K = int(v) + 1
			}
		}
	}
	s.Counts = make([]int64, s.K)
	for _, v := range y {
		if v >= 0 {
			s.Counts[v]++
		}
	}
	if s.N > 0 {
		s.Coverage = float64(s.Labeled) / float64(s.N)
	}
	return s
}

// Validate checks that all labels are in [-1, k).
func Validate(y []int32, k int) error {
	for i, v := range y {
		if v < Unknown || int(v) >= k {
			return fmt.Errorf("labels: y[%d]=%d outside [-1,%d)", i, v, k)
		}
	}
	return nil
}

// Propagation runs synchronous label propagation on a symmetrized graph
// for at most rounds iterations: every vertex adopts the most frequent
// label among its neighbors (ties to the smallest label), starting from
// singleton labels. Returns a dense community labeling relabeled to
// [0,#communities). This is the repository's stand-in for Leiden as an
// unsupervised source of Y (see package comment).
func Propagation(workers int, g *graph.CSR, rounds int, seed uint64) []int32 {
	n := g.N
	cur := make([]int32, n)
	for i := range cur {
		cur[i] = int32(i)
	}
	next := make([]int32, n)
	for round := 0; round < rounds; round++ {
		var changed int64
		changed = parallel.Reduce(workers, n, int64(0), func(lo, hi int) int64 {
			var ch int64
			counts := map[int32]int{}
			for u := lo; u < hi; u++ {
				nbrs := g.Neighbors(graph.NodeID(u))
				if len(nbrs) == 0 {
					next[u] = cur[u]
					continue
				}
				clear(counts)
				for _, v := range nbrs {
					counts[cur[v]]++
				}
				best, bestCount := cur[u], 0
				for l, c := range counts {
					if c > bestCount || (c == bestCount && l < best) {
						best, bestCount = l, c
					}
				}
				next[u] = best
				if best != cur[u] {
					ch++
				}
			}
			return ch
		}, func(a, b int64) int64 { return a + b })
		cur, next = next, cur
		if changed == 0 {
			break
		}
	}
	return Relabel(cur)
}

// Relabel maps arbitrary non-negative label values to a dense [0, K)
// range preserving first-occurrence order; Unknown stays Unknown.
func Relabel(y []int32) []int32 {
	out := make([]int32, len(y))
	seen := map[int32]int32{}
	for i, v := range y {
		if v < 0 {
			out[i] = Unknown
			continue
		}
		id, ok := seen[v]
		if !ok {
			id = int32(len(seen))
			seen[v] = id
		}
		out[i] = id
	}
	return out
}
