package labels

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/gen"
	"repro/internal/graph"
)

func TestSampleSemiSupervisedBudgetExact(t *testing.T) {
	for _, tc := range []struct {
		n        int
		fraction float64
		want     int
	}{
		{1000, 0.1, 100},
		{1000, 0, 0},
		{1000, 1, 1000},
		{7, 0.5, 4}, // rounds 3.5 -> 4
	} {
		y := SampleSemiSupervised(tc.n, 50, tc.fraction, 1)
		s := Summarize(y)
		if s.Labeled != tc.want {
			t.Fatalf("n=%d f=%v: labeled %d want %d", tc.n, tc.fraction, s.Labeled, tc.want)
		}
	}
}

func TestSampleSemiSupervisedPaperProtocol(t *testing.T) {
	// The paper's exact setting: 10% of nodes, K=50.
	n := 100_000
	y := SampleSemiSupervised(n, 50, 0.1, 42)
	s := Summarize(y)
	if s.Labeled != 10_000 {
		t.Fatalf("labeled=%d", s.Labeled)
	}
	if s.K > 50 {
		t.Fatalf("max class %d out of range", s.K)
	}
	// class counts roughly uniform: 10k/50 = 200 each
	for c, cnt := range s.Counts {
		if math.Abs(float64(cnt)-200) > 6*math.Sqrt(200) {
			t.Fatalf("class %d count %d deviates from 200", c, cnt)
		}
	}
	if err := Validate(y, 50); err != nil {
		t.Fatal(err)
	}
}

func TestSampleSemiSupervisedDeterministic(t *testing.T) {
	a := SampleSemiSupervised(5000, 10, 0.2, 9)
	b := SampleSemiSupervised(5000, 10, 0.2, 9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("not deterministic")
		}
	}
	c := SampleSemiSupervised(5000, 10, 0.2, 10)
	diff := 0
	for i := range a {
		if a[i] != c[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical labelings")
	}
}

func TestSampleSemiSupervisedUniformSubset(t *testing.T) {
	// Each vertex should be labeled with probability ~fraction across seeds.
	n := 500
	hits := make([]int, n)
	const trials = 200
	for s := 0; s < trials; s++ {
		y := SampleSemiSupervised(n, 5, 0.1, uint64(s))
		for i, v := range y {
			if v >= 0 {
				hits[i]++
			}
		}
	}
	for i, h := range hits {
		// Binomial(200, 0.1): mean 20, sd ~4.24; allow 6 sigma
		if math.Abs(float64(h)-20) > 26 {
			t.Fatalf("vertex %d labeled %d/200 times", i, h)
		}
	}
}

func TestSamplePanics(t *testing.T) {
	for _, f := range []func(){
		func() { SampleSemiSupervised(10, 0, 0.1, 1) },
		func() { SampleSemiSupervised(10, 5, -0.1, 1) },
		func() { SampleSemiSupervised(10, 5, 1.1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			f()
		}()
	}
}

func TestFull(t *testing.T) {
	y := Full(1000, 7, 3)
	s := Summarize(y)
	if s.Labeled != 1000 || s.K > 7 {
		t.Fatalf("%+v", s)
	}
	if err := Validate(y, 7); err != nil {
		t.Fatal(err)
	}
}

func TestValidate(t *testing.T) {
	if err := Validate([]int32{0, 1, -1}, 2); err != nil {
		t.Fatal(err)
	}
	if err := Validate([]int32{2}, 2); err == nil {
		t.Fatal("label == k accepted")
	}
	if err := Validate([]int32{-2}, 2); err == nil {
		t.Fatal("label < -1 accepted")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Labeled != 0 || s.Coverage != 0 {
		t.Fatalf("%+v", s)
	}
}

func TestRelabel(t *testing.T) {
	y := Relabel([]int32{7, 7, 3, -1, 9, 3})
	want := []int32{0, 0, 1, -1, 2, 1}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("relabel=%v want %v", y, want)
		}
	}
}

func TestPropagationTwoCliques(t *testing.T) {
	// Two 20-cliques joined by one bridge edge.
	el := &graph.EdgeList{N: 40}
	for u := 0; u < 20; u++ {
		for v := u + 1; v < 20; v++ {
			el.Edges = append(el.Edges, graph.Edge{U: graph.NodeID(u), V: graph.NodeID(v), W: 1})
			el.Edges = append(el.Edges, graph.Edge{U: graph.NodeID(u + 20), V: graph.NodeID(v + 20), W: 1})
		}
	}
	el.Edges = append(el.Edges, graph.Edge{U: 0, V: 20, W: 1})
	g := graph.BuildCSR(4, graph.Symmetrize(el))
	y := Propagation(4, g, 50, 1)
	truth := make([]int32, 40)
	for i := 20; i < 40; i++ {
		truth[i] = 1
	}
	if ari := cluster.ARI(y, truth); ari < 0.9 {
		t.Fatalf("propagation ARI=%v on two cliques", ari)
	}
}

func TestPropagationSBM(t *testing.T) {
	el, truth := gen.SBM(8, 1000, 2, 0.1, 0.002, 5)
	g := graph.BuildCSR(8, graph.Symmetrize(el))
	y := Propagation(8, g, 100, 2)
	if ari := cluster.ARI(y, truth); ari < 0.5 {
		t.Fatalf("propagation ARI=%v on strong SBM", ari)
	}
}

func TestPropagationIsolatedVertices(t *testing.T) {
	g := graph.BuildCSR(2, &graph.EdgeList{N: 5})
	y := Propagation(2, g, 10, 1)
	seen := map[int32]bool{}
	for _, v := range y {
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Fatalf("isolated vertices merged: %v", y)
	}
}
