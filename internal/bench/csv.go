package bench

import (
	"encoding/csv"
	"io"
	"strconv"

	"repro/internal/gee"
)

// Machine-readable exports of every experiment's results, for plotting
// the figures outside this repository.

// WriteTableICSV emits the measured Table I rows.
func WriteTableICSV(w io.Writer, rows []TableIRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"graph", "n", "m",
		"reference_s", "optimized_s", "ligra_serial_s", "ligra_parallel_s", "sharded_parallel_s",
		"speedup_vs_reference", "speedup_vs_optimized", "speedup_vs_serial", "sharded_vs_parallel"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Graph,
			strconv.Itoa(r.N),
			strconv.FormatInt(r.M, 10),
			fmtF(r.Reference.Seconds()),
			fmtF(r.Optimized.Seconds()),
			fmtF(r.Serial.Seconds()),
			fmtF(r.Parallel.Seconds()),
			fmtF(r.Sharded.Seconds()),
			fmtF(r.SpeedupVsReference),
			fmtF(r.SpeedupVsOptimized),
			fmtF(r.SpeedupVsSerial),
			fmtF(r.ShardedVsParallel),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFig3CSV emits the strong-scaling points.
func WriteFig3CSV(w io.Writer, points []ScalingPoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"cores", "runtime_s", "speedup"}); err != nil {
		return err
	}
	for _, p := range points {
		if err := cw.Write([]string{
			strconv.Itoa(p.Cores), fmtF(p.Runtime.Seconds()), fmtF(p.Speedup),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFig4CSV emits the edge-sweep series, one row per size with one
// column per implementation (empty when skipped).
func WriteFig4CSV(w io.Writer, points []Fig4Point) error {
	cw := csv.NewWriter(w)
	header := []string{"log2_edges", "edges"}
	for _, im := range Fig4Impls {
		header = append(header, im.String()+"_s")
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, p := range points {
		rec := []string{strconv.Itoa(p.Log2Edges), strconv.FormatInt(p.Edges, 10)}
		for _, im := range Fig4Impls {
			if t, ok := p.Runtimes[im]; ok {
				rec = append(rec, fmtF(t.Seconds()))
			} else {
				rec = append(rec, "")
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteWInitCSV emits the phase-split sweep.
func WriteWInitCSV(w io.Writer, points []WInitPoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"avg_degree", "n", "m", "winit_s", "edgemap_s", "winit_pct"}); err != nil {
		return err
	}
	for _, p := range points {
		if err := cw.Write([]string{
			fmtF(p.AvgDegree), strconv.Itoa(p.N), strconv.FormatInt(p.M, 10),
			fmtF(p.WInit.Seconds()), fmtF(p.EdgeMap.Seconds()), fmtF(p.WInitPct),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }

// ImplColumn returns the canonical CSV column label for an impl.
func ImplColumn(im gee.Impl) string { return im.String() + "_s" }
