// Package bench regenerates every table and figure of the paper's
// evaluation section (§IV):
//
//	Table I  — runtime of the four implementations on six graphs
//	Figure 2 — largest-graph runtimes normalized to the compiled serial baseline
//	Figure 3 — strong scaling of GEE-Ligra parallel, 1..24 cores
//	Figure 4 — runtime vs log2(edges) on Erdős–Rényi graphs
//
// plus the paper's two inline experiments: the atomics-off ablation (§IV)
// and the O(nk) W-initialization crossover (§III).
//
// The SNAP/Friendster datasets are not available offline; each Table I
// row uses a deterministic RMAT stand-in matched to the original (n, s)
// divided by a configurable scale divisor (DESIGN.md §3). EXPERIMENTS.md
// records the paper's absolute numbers next to the measured ones.
package bench

import (
	"fmt"

	"repro/internal/gen"
	"repro/internal/graph"
)

// GraphSpec describes one Table I dataset and its synthetic stand-in.
type GraphSpec struct {
	Name   string
	PaperN int64 // vertices in the paper's dataset
	PaperM int64 // edges in the paper's dataset
	Seed   uint64
}

// TableISpecs lists the six datasets in Table I order.
var TableISpecs = []GraphSpec{
	{Name: "Twitch", PaperN: 168_000, PaperM: 6_800_000, Seed: 101},
	{Name: "soc-Pokec", PaperN: 1_600_000, PaperM: 30_000_000, Seed: 102},
	{Name: "soc-LiveJournal", PaperN: 6_400_000, PaperM: 69_000_000, Seed: 103},
	{Name: "soc-orkut", PaperN: 3_000_000, PaperM: 117_000_000, Seed: 104},
	{Name: "orkut-groups", PaperN: 3_000_000, PaperM: 327_000_000, Seed: 105},
	{Name: "Friendster", PaperN: 65_000_000, PaperM: 1_800_000_000, Seed: 106},
}

// PaperTableI records the paper's measured runtimes (seconds) for each
// dataset, in implementation order [GEE-Python, Numba serial, Ligra
// serial, Ligra parallel]. Used by the renderer to print paper-vs-
// measured shape comparisons.
var PaperTableI = map[string][4]float64{
	"Twitch":          {12.18, 0.20, 0.11, 0.013},
	"soc-Pokec":       {133.21, 1.68, 0.99, 0.12},
	"soc-LiveJournal": {301.64, 4.29, 2.39, 0.39},
	"soc-orkut":       {499.83, 4.48, 2.97, 0.26},
	"orkut-groups":    {595.29, 11.43, 6.06, 2.36},
	"Friendster":      {3374.72, 112.33, 77.23, 6.42},
}

// ScaledSize returns the stand-in (n, m) for a spec at divisor div
// (n is rounded up to the RMAT power of two; see Build).
func (s GraphSpec) ScaledSize(div int64) (n, m int64) {
	if div < 1 {
		div = 1
	}
	n = s.PaperN / div
	if n < 1024 {
		n = 1024
	}
	m = s.PaperM / div
	if m < n {
		m = n
	}
	return n, m
}

// Build generates the stand-in graph at divisor div: an RMAT graph with
// Graph500 parameters whose vertex count is the next power of two ≥ the
// scaled n and whose edge count is the scaled m. RMAT vertex ids are
// then randomly permuted so generated locality does not flatter the
// cache behaviour relative to real SNAP orderings.
func (s GraphSpec) Build(workers int, div int64) *graph.EdgeList {
	n, m := s.ScaledSize(div)
	scale := 0
	for int64(1)<<scale < n {
		scale++
	}
	el := gen.RMAT(workers, scale, m, gen.Graph500Params, s.Seed)
	perm := graph.RandomPermutation(el.N, s.Seed^0xabcdef)
	return graph.Permute(el, perm)
}

// FindSpec returns the spec with the given name.
func FindSpec(name string) (GraphSpec, error) {
	for _, s := range TableISpecs {
		if s.Name == name {
			return s, nil
		}
	}
	return GraphSpec{}, fmt.Errorf("bench: unknown graph %q", name)
}

// LargestSpec returns the Friendster stand-in (Figures 2 and 3 target).
func LargestSpec() GraphSpec { return TableISpecs[len(TableISpecs)-1] }
