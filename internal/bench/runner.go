package bench

import (
	"runtime"
	"sort"
	"time"

	"repro/internal/gee"
	"repro/internal/graph"
	"repro/internal/labels"
)

// Config controls a benchmark campaign.
type Config struct {
	// ScaleDiv divides every paper dataset size (DESIGN.md §3). 16 fits
	// the full Table I in ~20 GB; tests and testing.B benches use much
	// larger divisors.
	ScaleDiv int64
	// Reps per measurement; the median is reported (default 3).
	Reps int
	// Workers for the parallel implementation (default GOMAXPROCS).
	Workers int
	// K is the number of classes (paper: 50).
	K int
	// LabelFraction is the labeled share of nodes (paper: 0.1).
	LabelFraction float64
	// SkipReference drops the slow faithful-Algorithm-1 rows (its full
	// n×K W matrix dominates memory at small divisors).
	SkipReference bool
	Seed          uint64
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.ScaleDiv <= 0 {
		c.ScaleDiv = 16
	}
	if c.Reps <= 0 {
		c.Reps = 3
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.K <= 0 {
		c.K = 50
	}
	if c.LabelFraction <= 0 {
		c.LabelFraction = 0.1
	}
	if c.Seed == 0 {
		c.Seed = 12345
	}
	return c
}

// Workload is a prepared benchmark input: the graph in both
// representations plus labels, so each implementation consumes its
// native form and graph construction stays out of the timed region
// (matching the paper, which times the algorithm only).
type Workload struct {
	Name string
	EL   *graph.EdgeList
	G    *graph.CSR
	Y    []int32
	K    int
}

// PrepareWorkload builds the stand-in graph and labels for a spec.
func PrepareWorkload(spec GraphSpec, cfg Config) *Workload {
	cfg = cfg.withDefaults()
	el := spec.Build(cfg.Workers, cfg.ScaleDiv)
	g := graph.BuildCSR(cfg.Workers, el)
	y := labels.SampleSemiSupervised(el.N, cfg.K, cfg.LabelFraction, cfg.Seed+spec.Seed)
	return &Workload{Name: spec.Name, EL: el, G: g, Y: y, K: cfg.K}
}

// TimeImpl runs one implementation on a prepared workload and returns
// the median wall-clock duration over cfg.Reps repetitions.
func TimeImpl(w *Workload, impl gee.Impl, cfg Config) (time.Duration, error) {
	cfg = cfg.withDefaults()
	opts := gee.Options{K: w.K, Workers: cfg.Workers}
	times := make([]time.Duration, 0, cfg.Reps)
	for r := 0; r < cfg.Reps; r++ {
		start := time.Now()
		var err error
		switch impl {
		case gee.Reference, gee.Optimized:
			// edge-list implementations consume E directly
			_, err = gee.Embed(impl, w.EL, w.Y, opts)
		default:
			_, err = gee.EmbedCSR(impl, w.G, w.Y, opts)
		}
		if err != nil {
			return 0, err
		}
		times = append(times, time.Since(start))
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times[len(times)/2], nil
}

// TimeFunc medians an arbitrary timed body (used by the ablation and
// W-init experiments).
func TimeFunc(reps int, body func() error) (time.Duration, error) {
	if reps <= 0 {
		reps = 3
	}
	times := make([]time.Duration, 0, reps)
	for r := 0; r < reps; r++ {
		start := time.Now()
		if err := body(); err != nil {
			return 0, err
		}
		times = append(times, time.Since(start))
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times[len(times)/2], nil
}
