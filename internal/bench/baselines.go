package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/cluster"
	"repro/internal/gcn"
	"repro/internal/gee"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/labels"
	"repro/internal/spectral"
	"repro/internal/walks"
)

// BaselineResult compares GEE against the three baseline families the
// paper's introduction names — spectral embedding, random-walk
// embeddings, and GCNs — on the same planted-partition workload: runtime
// and community-recovery quality. This is the motivating comparison of
// the GEE line of work (§I: GEE is "already an order of magnitude faster
// than spectral methods"); the parallel implementation widens that gap.
type BaselineResult struct {
	N, Blocks     int
	M             int64
	GEETime       time.Duration // LigraParallel, semi-supervised labels
	GEERefineTime time.Duration // unsupervised refinement pipeline
	SpectralTime  time.Duration // orthogonal-iteration ASE
	DeepWalkTime  time.Duration // walks + SGNS (0 when skipped)
	GCNTime       time.Duration // 2-layer GCN training (0 when skipped)
	GEEARI        float64
	GEERefineARI  float64
	SpectralARI   float64
	DeepWalkARI   float64
	GCNAccuracy   float64 // supervised method: accuracy, not ARI
}

// RunBaselines measures GEE and the spectral baseline on an SBM with
// ground truth; RunBaselinesFull adds the slow DeepWalk and GCN rows.
func RunBaselines(cfg Config, n, blocks int, pIn, pOut float64, progress io.Writer) (*BaselineResult, error) {
	return runBaselines(cfg, n, blocks, pIn, pOut, false, progress)
}

// RunBaselinesFull is RunBaselines plus the DeepWalk and GCN baselines
// (orders of magnitude slower than the others; see §I's cost claims).
func RunBaselinesFull(cfg Config, n, blocks int, pIn, pOut float64, progress io.Writer) (*BaselineResult, error) {
	return runBaselines(cfg, n, blocks, pIn, pOut, true, progress)
}

func runBaselines(cfg Config, n, blocks int, pIn, pOut float64, full bool, progress io.Writer) (*BaselineResult, error) {
	cfg = cfg.withDefaults()
	if progress != nil {
		fmt.Fprintf(progress, "# preparing SBM n=%d blocks=%d\n", n, blocks)
	}
	el, truth := gen.SBM(cfg.Workers, n, blocks, pIn, pOut, cfg.Seed)
	res := &BaselineResult{N: n, Blocks: blocks, M: int64(len(el.Edges))}

	// GEE semi-supervised: reveal truth on LabelFraction of nodes.
	y := make([]int32, n)
	mask := labels.SampleSemiSupervised(n, blocks, cfg.LabelFraction, cfg.Seed+1)
	for i := range y {
		y[i] = labels.Unknown
		if mask[i] >= 0 {
			y[i] = truth[i]
		}
	}
	g := graph.BuildCSR(cfg.Workers, el)
	opts := gee.Options{K: blocks, Workers: cfg.Workers}
	var geeRes *gee.Result
	t, err := TimeFunc(cfg.Reps, func() error {
		var err error
		geeRes, err = gee.EmbedCSR(gee.LigraParallel, g, y, opts)
		return err
	})
	if err != nil {
		return nil, err
	}
	res.GEETime = t
	pred := make([]int32, n)
	for v := 0; v < n; v++ {
		pred[v] = int32(geeRes.Z.ArgMaxRow(v))
	}
	res.GEEARI = cluster.ARI(pred, truth)

	// GEE unsupervised refinement.
	var refineRes *gee.RefineResult
	t, err = TimeFunc(1, func() error {
		var err error
		refineRes, err = gee.Refine(el, gee.RefineOptions{
			Embedding: opts, Impl: gee.LigraParallel, Seed: cfg.Seed + 2,
		})
		return err
	})
	if err != nil {
		return nil, err
	}
	res.GEERefineTime = t
	res.GEERefineARI = cluster.ARI(refineRes.Labels, truth)

	// Spectral baseline (needs the symmetrized graph).
	sg := graph.BuildCSR(cfg.Workers, graph.Symmetrize(el))
	var spRes *spectral.Result
	t, err = TimeFunc(1, func() error {
		var err error
		spRes, err = spectral.Embed(sg, spectral.Options{
			K: blocks, Workers: cfg.Workers, Seed: cfg.Seed + 3,
		})
		return err
	})
	if err != nil {
		return nil, err
	}
	res.SpectralTime = t
	km := cluster.KMeans(cfg.Workers, spRes.Z, blocks, cfg.Seed+4, 100)
	res.SpectralARI = cluster.ARI(km.Assign, truth)

	if full {
		// DeepWalk: uniform walks + SGNS, k-means on the embedding.
		if progress != nil {
			fmt.Fprintln(progress, "# running DeepWalk baseline")
		}
		graph.SortAdjacency(cfg.Workers, sg)
		var dwZ *cluster.KMeansResult
		t, err = TimeFunc(1, func() error {
			corpus, err := walks.Generate(sg, walks.WalkConfig{
				WalksPerNode: 10, WalkLength: 40, Workers: cfg.Workers, Seed: cfg.Seed + 5,
			})
			if err != nil {
				return err
			}
			z, err := walks.Train(n, corpus, walks.TrainConfig{
				Dims: 64, Epochs: 3, Workers: cfg.Workers, Seed: cfg.Seed + 6,
			})
			if err != nil {
				return err
			}
			z.RowL2Normalize()
			dwZ = cluster.KMeans(cfg.Workers, z, blocks, cfg.Seed+7, 100)
			return nil
		})
		if err != nil {
			return nil, err
		}
		res.DeepWalkTime = t
		res.DeepWalkARI = cluster.ARI(dwZ.Assign, truth)

		// GCN: semi-supervised classification with the same label budget.
		if progress != nil {
			fmt.Fprintln(progress, "# running GCN baseline")
		}
		var gcnRes *gcn.Result
		t, err = TimeFunc(1, func() error {
			var err error
			gcnRes, err = gcn.Train(sg, y, nil, gcn.Config{
				Epochs: 100, Workers: cfg.Workers, Seed: cfg.Seed + 8,
			})
			return err
		})
		if err != nil {
			return nil, err
		}
		res.GCNTime = t
		res.GCNAccuracy = cluster.Accuracy(gcnRes.Pred, truth)
	}
	return res, nil
}

// RenderBaselines prints the comparison.
func RenderBaselines(w io.Writer, r *BaselineResult) {
	fmt.Fprintf(w, "Baseline comparison — SBM n=%d, %d blocks, %d edges\n", r.N, r.Blocks, r.M)
	fmt.Fprintf(w, "  %-34s %12s %8s\n", "method", "runtime", "quality")
	fmt.Fprintf(w, "  %-34s %12s %8.3f ARI\n", "GEE parallel (semi-supervised)", fmtSecs(r.GEETime), r.GEEARI)
	fmt.Fprintf(w, "  %-34s %12s %8.3f ARI\n", "GEE refinement (unsupervised)", fmtSecs(r.GEERefineTime), r.GEERefineARI)
	fmt.Fprintf(w, "  %-34s %12s %8.3f ARI\n", "spectral ASE (orthogonal iter)", fmtSecs(r.SpectralTime), r.SpectralARI)
	if r.DeepWalkTime > 0 {
		fmt.Fprintf(w, "  %-34s %12s %8.3f ARI\n", "DeepWalk (walks + SGNS)", fmtSecs(r.DeepWalkTime), r.DeepWalkARI)
	}
	if r.GCNTime > 0 {
		fmt.Fprintf(w, "  %-34s %12s %8.3f acc\n", "GCN (2 layers, 100 epochs)", fmtSecs(r.GCNTime), r.GCNAccuracy)
	}
	fmt.Fprintln(w, "GEE's one edge pass should beat every baseline by a wide and growing margin")
}
