package bench

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
	"time"

	"repro/internal/gee"
)

func TestWriteTableICSV(t *testing.T) {
	rows := []TableIRow{{
		Graph: "Twitch", N: 100, M: 400,
		Reference: 4 * time.Second, Optimized: 2 * time.Second,
		Serial: time.Second, Parallel: 100 * time.Millisecond,
		Sharded:            80 * time.Millisecond,
		SpeedupVsReference: 40, SpeedupVsOptimized: 20, SpeedupVsSerial: 10,
		ShardedVsParallel: 1.25,
	}}
	var buf bytes.Buffer
	if err := WriteTableICSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[1][0] != "Twitch" || recs[1][3] != "4" {
		t.Fatalf("recs=%v", recs)
	}
	if recs[0][7] != "sharded_parallel_s" || recs[1][7] != "0.08" {
		t.Fatalf("sharded column: header=%q value=%q", recs[0][7], recs[1][7])
	}
	if recs[0][11] != "sharded_vs_parallel" || recs[1][11] != "1.25" {
		t.Fatalf("sharded speedup column: %v", recs[0])
	}
}

func TestWriteFig3CSV(t *testing.T) {
	points := []ScalingPoint{
		{Cores: 1, Runtime: time.Second, Speedup: 1},
		{Cores: 24, Runtime: 90 * time.Millisecond, Speedup: 11.1},
	}
	var buf bytes.Buffer
	if err := WriteFig3CSV(&buf, points); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[2][0] != "24" {
		t.Fatalf("recs=%v", recs)
	}
}

func TestWriteFig4CSVSkippedColumnEmpty(t *testing.T) {
	points := []Fig4Point{{
		Log2Edges: 20, Edges: 1 << 20,
		Runtimes: map[gee.Impl]time.Duration{
			gee.Optimized:     time.Second,
			gee.LigraSerial:   time.Second,
			gee.LigraParallel: 100 * time.Millisecond,
			// Reference skipped (over cap)
		},
	}}
	var buf bytes.Buffer
	if err := WriteFig4CSV(&buf, points); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if recs[1][2] != "" { // reference column
		t.Fatalf("skipped impl should be empty, got %q", recs[1][2])
	}
	if recs[1][5] == "" {
		t.Fatal("parallel column missing")
	}
	if !strings.Contains(recs[0][2], "GEE-Reference") {
		t.Fatalf("header=%v", recs[0])
	}
}

func TestWriteWInitCSV(t *testing.T) {
	points := []WInitPoint{{AvgDegree: 2, N: 100, M: 200,
		WInit: time.Millisecond, EdgeMap: 9 * time.Millisecond, WInitPct: 10}}
	var buf bytes.Buffer
	if err := WriteWInitCSV(&buf, points); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[1][5] != "10" {
		t.Fatalf("recs=%v", recs)
	}
}

func TestImplColumn(t *testing.T) {
	if ImplColumn(gee.LigraParallel) != "GEE-Ligra-Parallel_s" {
		t.Fatal(ImplColumn(gee.LigraParallel))
	}
}
