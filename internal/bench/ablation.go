package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/gee"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/labels"
)

// AblationResult compares the race-handling strategies on the same
// workload (the paper's §IV ablation: "we ran the program with atomics
// off, performing unsafe updates, and saw no appreciable performance
// difference" — plus the replicated-buffer alternative the paper's
// memory-efficiency argument implicitly rejects, and the
// destination-sharded backend that avoids atomics with no replicas).
type AblationResult struct {
	Graph      string
	N          int
	M          int64
	Atomic     time.Duration // LigraParallel (writeAdd)
	Unsafe     time.Duration // LigraParallelUnsafe (plain adds, racy)
	Replicated time.Duration // per-worker Z buffers + reduction
	Sharded    time.Duration // ShardedParallel (owned row ranges, plain writes)
	// MaxUnsafeDeviation is the largest |Z_atomic - Z_unsafe| observed,
	// i.e. how much the races actually corrupted on this run.
	MaxUnsafeDeviation float64
}

// RunAblation measures the ablation on the named Table I stand-in.
func RunAblation(spec GraphSpec, cfg Config, progress io.Writer) (*AblationResult, error) {
	cfg = cfg.withDefaults()
	if progress != nil {
		fmt.Fprintf(progress, "# preparing %s stand-in\n", spec.Name)
	}
	w := PrepareWorkload(spec, cfg)
	res := &AblationResult{Graph: w.Name, N: w.EL.N, M: int64(len(w.EL.Edges))}
	var err error
	if res.Atomic, err = TimeImpl(w, gee.LigraParallel, cfg); err != nil {
		return nil, err
	}
	if res.Unsafe, err = TimeImpl(w, gee.LigraParallelUnsafe, cfg); err != nil {
		return nil, err
	}
	if res.Replicated, err = TimeImpl(w, gee.Replicated, cfg); err != nil {
		return nil, err
	}
	if res.Sharded, err = TimeImpl(w, gee.ShardedParallel, cfg); err != nil {
		return nil, err
	}
	opts := gee.Options{K: w.K, Workers: cfg.Workers}
	atomic, err := gee.EmbedCSR(gee.LigraParallel, w.G, w.Y, opts)
	if err != nil {
		return nil, err
	}
	unsafeRes, err := gee.EmbedCSR(gee.LigraParallelUnsafe, w.G, w.Y, opts)
	if err != nil {
		return nil, err
	}
	res.MaxUnsafeDeviation = atomic.Z.MaxAbsDiff(unsafeRes.Z)
	return res, nil
}

// RenderAblation prints the comparison.
func RenderAblation(w io.Writer, r *AblationResult) {
	fmt.Fprintf(w, "Atomics ablation — %s stand-in (n=%d, s=%d)\n", r.Graph, r.N, r.M)
	fmt.Fprintf(w, "  %-34s %10s\n", "variant", "runtime")
	fmt.Fprintf(w, "  %-34s %10s\n", "atomic writeAdd (paper's choice)", fmtSecs(r.Atomic))
	fmt.Fprintf(w, "  %-34s %10s\n", "atomics off (unsafe, racy)", fmtSecs(r.Unsafe))
	fmt.Fprintf(w, "  %-34s %10s\n", "replicated per-worker Z + reduce", fmtSecs(r.Replicated))
	fmt.Fprintf(w, "  %-34s %10s\n", "destination-sharded (no atomics)", fmtSecs(r.Sharded))
	fmt.Fprintf(w, "  max |Z_atomic - Z_unsafe| this run: %g\n", r.MaxUnsafeDeviation)
	fmt.Fprintln(w, "Paper: atomics on vs off showed no appreciable difference (memory-bound)")
}

// WInitPoint is one sample of the E6 experiment: the share of runtime
// spent in the O(nk) projection initialization as average degree falls
// (paper §III: "O(nk) becomes the dominant component of the runtime when
// graphs have a high n and a very low average degree").
type WInitPoint struct {
	AvgDegree float64
	N         int
	M         int64
	WInit     time.Duration
	EdgeMap   time.Duration
	WInitPct  float64
}

// RunWInit sweeps average degree downward at fixed edge count and
// measures the two phases of Algorithm 2.
func RunWInit(cfg Config, degrees []float64, edges int64, progress io.Writer) ([]WInitPoint, error) {
	cfg = cfg.withDefaults()
	if degrees == nil {
		// The W-init share crosses 50% where s ≈ nK, i.e. at average
		// degree ≈ K (paper §III: "For most graphs and choices of
		// K < 50, s > nk"). Sweep from well above K=50 to well below.
		degrees = []float64{512, 256, 128, 64, 32, 16, 4, 1}
	}
	if edges <= 0 {
		edges = 1 << 23
	}
	points := make([]WInitPoint, 0, len(degrees))
	for _, d := range degrees {
		n := int(float64(edges) / d)
		if n < 1024 {
			n = 1024
		}
		if progress != nil {
			fmt.Fprintf(progress, "# winit sweep: avg degree %.2f, n=%d\n", d, n)
		}
		el := gen.ErdosRenyi(cfg.Workers, n, edges, cfg.Seed+uint64(n))
		g := graph.BuildCSR(cfg.Workers, el)
		y := labels.SampleSemiSupervised(n, cfg.K, cfg.LabelFraction, cfg.Seed)
		var agg gee.Timings
		if _, err := TimeFunc(cfg.Reps, func() error {
			_, tm, err := gee.EmbedCSRTimed(gee.LigraParallel, g, y,
				gee.Options{K: cfg.K, Workers: cfg.Workers})
			if err == nil {
				agg = *tm // keep the last rep's phase split
			}
			return err
		}); err != nil {
			return nil, err
		}
		total := agg.WInit + agg.EdgeMap
		pct := 0.0
		if total > 0 {
			pct = 100 * agg.WInit.Seconds() / total.Seconds()
		}
		points = append(points, WInitPoint{
			AvgDegree: d, N: n, M: edges,
			WInit: agg.WInit, EdgeMap: agg.EdgeMap, WInitPct: pct,
		})
	}
	return points, nil
}

// RenderWInit prints the phase split per degree.
func RenderWInit(w io.Writer, points []WInitPoint) {
	fmt.Fprintln(w, "W-init crossover (paper §III) — fixed edges, falling average degree")
	fmt.Fprintf(w, "%10s %12s %12s %12s %10s\n", "avg deg", "n", "W-init", "edge map", "W-init %")
	for _, p := range points {
		fmt.Fprintf(w, "%10.2f %12d %12s %12s %9.1f%%\n",
			p.AvgDegree, p.N, fmtSecs(p.WInit), fmtSecs(p.EdgeMap), p.WInitPct)
	}
	fmt.Fprintln(w, "Paper: the O(nk) initialization dominates at high n / very low average degree")
}
