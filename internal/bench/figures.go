package bench

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/gee"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/labels"
)

// Fig2Result holds the Figure 2 bars: largest-graph runtimes normalized
// to the compiled serial baseline (paper: "Runtimes for Friendster,
// normalized to Numba Serial").
type Fig2Result struct {
	Graph              string
	Optimized          time.Duration
	Serial             time.Duration
	Parallel           time.Duration
	SerialNormalized   float64 // Serial / Optimized (paper: 0.69, i.e. 31% faster)
	ParallelNormalized float64 // Parallel / Optimized (paper: ~1/17)
}

// RunFig2 measures the Figure 2 bars on the Friendster stand-in.
func RunFig2(cfg Config, progress io.Writer) (*Fig2Result, error) {
	cfg = cfg.withDefaults()
	spec := LargestSpec()
	if progress != nil {
		fmt.Fprintf(progress, "# preparing %s stand-in\n", spec.Name)
	}
	w := PrepareWorkload(spec, cfg)
	res := &Fig2Result{Graph: w.Name}
	var err error
	if res.Optimized, err = TimeImpl(w, gee.Optimized, cfg); err != nil {
		return nil, err
	}
	if res.Serial, err = TimeImpl(w, gee.LigraSerial, cfg); err != nil {
		return nil, err
	}
	if res.Parallel, err = TimeImpl(w, gee.LigraParallel, cfg); err != nil {
		return nil, err
	}
	if res.Optimized > 0 {
		res.SerialNormalized = res.Serial.Seconds() / res.Optimized.Seconds()
		res.ParallelNormalized = res.Parallel.Seconds() / res.Optimized.Seconds()
	}
	return res, nil
}

// RenderFig2 prints the normalized bars with the paper's values.
func RenderFig2(w io.Writer, r *Fig2Result) {
	fmt.Fprintf(w, "Figure 2 reproduction — %s stand-in, runtimes normalized to Optimized serial\n", r.Graph)
	bars := []struct {
		name string
		norm float64
		abs  time.Duration
	}{
		{"Optimized (Numba analog)", 1.0, r.Optimized},
		{"GEE-Ligra serial", r.SerialNormalized, r.Serial},
		{"GEE-Ligra parallel", r.ParallelNormalized, r.Parallel},
	}
	for _, b := range bars {
		width := int(b.norm*40 + 0.5)
		if width > 60 {
			width = 60
		}
		fmt.Fprintf(w, "  %-26s %6.3f %-8s |%s\n",
			b.name, b.norm, fmtSecs(b.abs), strings.Repeat("#", width))
	}
	fmt.Fprintln(w, "Paper: Ligra serial = 0.69 (31% below Numba), Ligra parallel ≈ 0.059 (17x below Numba)")
}

// ScalingPoint is one Figure 3 measurement.
type ScalingPoint struct {
	Cores   int
	Runtime time.Duration
	Speedup float64 // vs the 1-core runtime
}

// RunFig3 sweeps worker counts on the Friendster stand-in (strong
// scaling). cores lists the sweep points; nil selects 1..cfg.Workers.
func RunFig3(cfg Config, cores []int, progress io.Writer) ([]ScalingPoint, error) {
	cfg = cfg.withDefaults()
	if cores == nil {
		for c := 1; c <= cfg.Workers; c++ {
			cores = append(cores, c)
		}
	}
	spec := LargestSpec()
	if progress != nil {
		fmt.Fprintf(progress, "# preparing %s stand-in\n", spec.Name)
	}
	w := PrepareWorkload(spec, cfg)
	points := make([]ScalingPoint, 0, len(cores))
	var base time.Duration
	for _, c := range cores {
		sub := cfg
		sub.Workers = c
		t, err := TimeImpl(w, gee.LigraParallel, sub)
		if err != nil {
			return nil, err
		}
		if len(points) == 0 {
			base = t
		}
		points = append(points, ScalingPoint{
			Cores:   c,
			Runtime: t,
			Speedup: base.Seconds() / t.Seconds(),
		})
		if progress != nil {
			fmt.Fprintf(progress, "# cores=%d runtime=%s\n", c, fmtSecs(t))
		}
	}
	return points, nil
}

// RenderFig3 prints the scaling curve.
func RenderFig3(w io.Writer, points []ScalingPoint) {
	fmt.Fprintln(w, "Figure 3 reproduction — GEE-Ligra strong scaling on the Friendster stand-in")
	fmt.Fprintf(w, "%6s %12s %9s\n", "cores", "runtime", "speedup")
	for _, p := range points {
		bar := strings.Repeat("*", int(p.Speedup*3+0.5))
		fmt.Fprintf(w, "%6d %12s %8.2fx |%s\n", p.Cores, fmtSecs(p.Runtime), p.Speedup, bar)
	}
	fmt.Fprintln(w, "Paper: ~11x speedup at 24 cores (memory-bound workload)")
}

// Fig4Point is one curve sample of Figure 4.
type Fig4Point struct {
	Log2Edges int
	Edges     int64
	Runtimes  map[gee.Impl]time.Duration
}

// Fig4Impls lists the Figure 4 curves: the paper's four plus the
// repository's contention-free sharded backend, so the sweep shows
// where destination sharding overtakes atomic writeAdd as edge counts
// (and hot-row contention) grow.
var Fig4Impls = []gee.Impl{gee.Reference, gee.Optimized, gee.LigraSerial, gee.LigraParallel, gee.ShardedParallel}

// RunFig4 sweeps Erdős–Rényi graphs of doubling edge counts, timing each
// implementation (paper: 2^13 .. 2^29 edges, n = m/16). refMaxLog2
// bounds the faithful-Algorithm-1 curve separately: its full n×K W
// matrix dominates memory at large n. impls nil selects Fig4Impls.
func RunFig4(cfg Config, minLog2, maxLog2, refMaxLog2 int, impls []gee.Impl, progress io.Writer) ([]Fig4Point, error) {
	cfg = cfg.withDefaults()
	if impls == nil {
		impls = Fig4Impls
	}
	if minLog2 <= 0 {
		minLog2 = 13
	}
	if maxLog2 < minLog2 {
		maxLog2 = minLog2
	}
	points := make([]Fig4Point, 0, maxLog2-minLog2+1)
	for lg := minLog2; lg <= maxLog2; lg++ {
		m := int64(1) << lg
		n := int(m / 16)
		if n < 1024 {
			n = 1024
		}
		if progress != nil {
			fmt.Fprintf(progress, "# ER sweep: 2^%d = %d edges, n=%d\n", lg, m, n)
		}
		el := gen.ErdosRenyi(cfg.Workers, n, m, cfg.Seed+uint64(lg))
		g := graph.BuildCSR(cfg.Workers, el)
		y := labels.SampleSemiSupervised(n, cfg.K, cfg.LabelFraction, cfg.Seed+uint64(lg)*7)
		w := &Workload{Name: fmt.Sprintf("ER-2^%d", lg), EL: el, G: g, Y: y, K: cfg.K}
		pt := Fig4Point{Log2Edges: lg, Edges: m, Runtimes: map[gee.Impl]time.Duration{}}
		for _, impl := range impls {
			if impl == gee.Reference && lg > refMaxLog2 {
				continue
			}
			t, err := TimeImpl(w, impl, cfg)
			if err != nil {
				return nil, err
			}
			pt.Runtimes[impl] = t
		}
		points = append(points, pt)
	}
	return points, nil
}

// RenderFig4 prints the sweep as aligned series (one column per curve).
func RenderFig4(w io.Writer, points []Fig4Point) {
	fmt.Fprintln(w, "Figure 4 reproduction — runtime vs edges on Erdős–Rényi graphs (n = m/16)")
	fmt.Fprintf(w, "%10s %12s", "log2(m)", "edges")
	for _, im := range Fig4Impls {
		fmt.Fprintf(w, " %18s", im)
	}
	fmt.Fprintln(w)
	for _, p := range points {
		fmt.Fprintf(w, "%10d %12d", p.Log2Edges, p.Edges)
		for _, im := range Fig4Impls {
			if t, ok := p.Runtimes[im]; ok {
				fmt.Fprintf(w, " %18s", fmtSecs(t))
			} else {
				fmt.Fprintf(w, " %18s", "-")
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "Paper: all four curves linear in edge count; ordering GEE >> Numba > Ligra serial > Ligra parallel")
}
