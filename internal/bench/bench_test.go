package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/gee"
)

// tinyCfg keeps unit tests fast: huge scale divisor, one rep.
func tinyCfg() Config {
	return Config{ScaleDiv: 2048, Reps: 1, Workers: 4, K: 10, LabelFraction: 0.1, Seed: 7}
}

func TestSpecsMatchPaperSizes(t *testing.T) {
	if len(TableISpecs) != 6 {
		t.Fatalf("%d specs, want the paper's 6", len(TableISpecs))
	}
	for _, s := range TableISpecs {
		if _, ok := PaperTableI[s.Name]; !ok {
			t.Fatalf("no paper numbers for %s", s.Name)
		}
		if s.PaperM < s.PaperN {
			t.Fatalf("%s: m < n", s.Name)
		}
	}
	if LargestSpec().Name != "Friendster" {
		t.Fatal("largest spec must be Friendster")
	}
}

func TestScaledSize(t *testing.T) {
	s := TableISpecs[0] // Twitch 168k / 6.8M
	n, m := s.ScaledSize(16)
	if n != 10_500 || m != 425_000 {
		t.Fatalf("n=%d m=%d", n, m)
	}
	// floors: tiny divisor output still usable
	n, m = s.ScaledSize(1 << 30)
	if n < 1024 || m < n {
		t.Fatalf("floor broken: n=%d m=%d", n, m)
	}
	n, m = s.ScaledSize(0)
	if n != s.PaperN || m != s.PaperM {
		t.Fatalf("div=0 must mean full size, got n=%d m=%d", n, m)
	}
}

func TestBuildStandIn(t *testing.T) {
	el := TableISpecs[0].Build(4, 1024)
	if err := el.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(el.Edges) == 0 {
		t.Fatal("empty stand-in")
	}
	// deterministic
	el2 := TableISpecs[0].Build(8, 1024)
	if len(el.Edges) != len(el2.Edges) {
		t.Fatal("stand-in not deterministic across worker counts")
	}
	for i := range el.Edges {
		if el.Edges[i] != el2.Edges[i] {
			t.Fatal("stand-in edges differ across worker counts")
		}
	}
}

func TestFindSpec(t *testing.T) {
	s, err := FindSpec("Twitch")
	if err != nil || s.Name != "Twitch" {
		t.Fatalf("s=%v err=%v", s, err)
	}
	if _, err := FindSpec("nope"); err == nil {
		t.Fatal("unknown graph accepted")
	}
}

func TestPrepareAndTimeImpl(t *testing.T) {
	w := PrepareWorkload(TableISpecs[0], tinyCfg())
	if w.G.NumEdges() != int64(len(w.EL.Edges)) {
		t.Fatal("CSR and edge list disagree")
	}
	for _, impl := range []gee.Impl{gee.Reference, gee.Optimized, gee.LigraSerial, gee.LigraParallel} {
		d, err := TimeImpl(w, impl, tinyCfg())
		if err != nil {
			t.Fatalf("%v: %v", impl, err)
		}
		if d <= 0 {
			t.Fatalf("%v: nonpositive duration", impl)
		}
	}
}

func TestTimeFuncMedian(t *testing.T) {
	calls := 0
	d, err := TimeFunc(5, func() error {
		calls++
		time.Sleep(time.Millisecond)
		return nil
	})
	if err != nil || calls != 5 || d < time.Millisecond/2 {
		t.Fatalf("d=%v calls=%d err=%v", d, calls, err)
	}
}

func TestRunTableITiny(t *testing.T) {
	cfg := tinyCfg()
	rows, err := RunTableI(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Parallel <= 0 || r.Optimized <= 0 || r.Serial <= 0 || r.Reference <= 0 || r.Sharded <= 0 {
			t.Fatalf("%s: zero duration in %+v", r.Graph, r)
		}
		if r.SpeedupVsOptimized <= 0 || r.SpeedupVsSerial <= 0 || r.SpeedupVsReference <= 0 {
			t.Fatalf("%s: speedups not computed", r.Graph)
		}
		if r.ShardedVsParallel <= 0 {
			t.Fatalf("%s: sharded speedup not computed", r.Graph)
		}
	}
	var buf bytes.Buffer
	RenderTableI(&buf, rows, cfg)
	out := buf.String()
	for _, want := range []string{"Twitch", "Friendster", "Paper's Table I", "vs Ref"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRunTableISkipReference(t *testing.T) {
	cfg := tinyCfg()
	cfg.SkipReference = true
	rows, err := RunTableI(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Reference != 0 || rows[0].SpeedupVsReference != 0 {
		t.Fatal("reference timed despite SkipReference")
	}
	var buf bytes.Buffer
	RenderTableI(&buf, rows, cfg) // must not panic on missing column
}

func TestRunFig2Tiny(t *testing.T) {
	res, err := RunFig2(tinyCfg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.SerialNormalized <= 0 || res.ParallelNormalized <= 0 {
		t.Fatalf("normalization missing: %+v", res)
	}
	var buf bytes.Buffer
	RenderFig2(&buf, res)
	if !strings.Contains(buf.String(), "Figure 2") {
		t.Fatal("render header missing")
	}
}

func TestRunFig3Tiny(t *testing.T) {
	points, err := RunFig3(tinyCfg(), []int{1, 2, 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 || points[0].Cores != 1 {
		t.Fatalf("points=%v", points)
	}
	if points[0].Speedup != 1 {
		t.Fatalf("1-core speedup=%v", points[0].Speedup)
	}
	var buf bytes.Buffer
	RenderFig3(&buf, points)
	if !strings.Contains(buf.String(), "speedup") {
		t.Fatal("render missing")
	}
}

func TestRunFig4Tiny(t *testing.T) {
	cfg := tinyCfg()
	points, err := RunFig4(cfg, 13, 15, 14, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("%d points", len(points))
	}
	// reference capped at 2^14
	if _, ok := points[2].Runtimes[gee.Reference]; ok {
		t.Fatal("reference should be capped at refMaxLog2")
	}
	if _, ok := points[0].Runtimes[gee.Reference]; !ok {
		t.Fatal("reference missing below the cap")
	}
	for _, p := range points {
		if p.Runtimes[gee.LigraParallel] <= 0 {
			t.Fatal("parallel curve missing")
		}
		if p.Runtimes[gee.ShardedParallel] <= 0 {
			t.Fatal("sharded curve missing")
		}
	}
	var buf bytes.Buffer
	RenderFig4(&buf, points)
	if !strings.Contains(buf.String(), "Figure 4") {
		t.Fatal("render missing")
	}
}

func TestRunAblationTiny(t *testing.T) {
	res, err := RunAblation(TableISpecs[0], tinyCfg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Atomic <= 0 || res.Unsafe <= 0 || res.Replicated <= 0 || res.Sharded <= 0 {
		t.Fatalf("%+v", res)
	}
	var buf bytes.Buffer
	RenderAblation(&buf, res)
	if !strings.Contains(buf.String(), "atomic writeAdd") {
		t.Fatal("render missing")
	}
	if !strings.Contains(buf.String(), "destination-sharded") {
		t.Fatal("sharded row missing from render")
	}
}

func TestRunWInitTiny(t *testing.T) {
	points, err := RunWInit(tinyCfg(), []float64{16, 1}, 1<<16, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("%d points", len(points))
	}
	// Lower average degree => larger n => W-init share must not shrink.
	if points[1].WInitPct < points[0].WInitPct {
		t.Logf("warning: W-init share fell from %.1f%% to %.1f%% (timing noise at tiny sizes)",
			points[0].WInitPct, points[1].WInitPct)
	}
	var buf bytes.Buffer
	RenderWInit(&buf, points)
	if !strings.Contains(buf.String(), "W-init") {
		t.Fatal("render missing")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.ScaleDiv != 16 || c.Reps != 3 || c.K != 50 || c.LabelFraction != 0.1 {
		t.Fatalf("%+v", c)
	}
	if c.Workers < 1 {
		t.Fatal("workers default")
	}
}
