package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunBaselinesTiny(t *testing.T) {
	cfg := tinyCfg()
	res, err := RunBaselines(cfg, 2000, 4, 0.02, 0.001, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.GEETime <= 0 || res.SpectralTime <= 0 || res.GEERefineTime <= 0 {
		t.Fatalf("%+v", res)
	}
	if res.M == 0 {
		t.Fatal("empty workload")
	}
	// On a 20x-separated SBM both methods must find real structure.
	if res.GEEARI < 0.3 {
		t.Fatalf("GEE ARI %v suspiciously low", res.GEEARI)
	}
	if res.SpectralARI < 0.3 {
		t.Fatalf("spectral ARI %v suspiciously low", res.SpectralARI)
	}
	var buf bytes.Buffer
	RenderBaselines(&buf, res)
	if !strings.Contains(buf.String(), "spectral") {
		t.Fatal("render missing")
	}
}
