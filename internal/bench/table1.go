package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/gee"
)

// TableIRow is one measured row of Table I.
type TableIRow struct {
	Graph     string
	N         int
	M         int64
	Reference time.Duration // "GEE-Python" column (faithful Algorithm 1)
	Optimized time.Duration // "Numba Serial" column
	Serial    time.Duration // "GEE-Ligra Serial" column
	Parallel  time.Duration // "GEE-Ligra Parallel" column
	Sharded   time.Duration // GEE-Sharded: destination-sharded, no atomics

	// Speedup columns exactly as the paper reports them.
	SpeedupVsReference float64 // parallel vs GEE(-Python analog)
	SpeedupVsOptimized float64 // parallel vs Numba analog
	SpeedupVsSerial    float64 // parallel vs Ligra serial
	// ShardedVsParallel extends the table beyond the paper: the atomic
	// parallel time over the sharded time (> 1 means sharding wins).
	ShardedVsParallel float64
}

// RunTableI measures every implementation on every Table I stand-in.
// Graph construction happens between measurements and is not timed.
func RunTableI(cfg Config, progress io.Writer) ([]TableIRow, error) {
	cfg = cfg.withDefaults()
	rows := make([]TableIRow, 0, len(TableISpecs))
	for _, spec := range TableISpecs {
		if progress != nil {
			n, m := spec.ScaledSize(cfg.ScaleDiv)
			fmt.Fprintf(progress, "# preparing %s stand-in (n=%d, m=%d, div=%d)\n",
				spec.Name, n, m, cfg.ScaleDiv)
		}
		w := PrepareWorkload(spec, cfg)
		row := TableIRow{Graph: w.Name, N: w.EL.N, M: int64(len(w.EL.Edges))}
		var err error
		if !cfg.SkipReference {
			if row.Reference, err = TimeImpl(w, gee.Reference, cfg); err != nil {
				return nil, err
			}
		}
		if row.Optimized, err = TimeImpl(w, gee.Optimized, cfg); err != nil {
			return nil, err
		}
		if row.Serial, err = TimeImpl(w, gee.LigraSerial, cfg); err != nil {
			return nil, err
		}
		if row.Parallel, err = TimeImpl(w, gee.LigraParallel, cfg); err != nil {
			return nil, err
		}
		if row.Sharded, err = TimeImpl(w, gee.ShardedParallel, cfg); err != nil {
			return nil, err
		}
		if row.Parallel > 0 {
			if row.Reference > 0 {
				row.SpeedupVsReference = row.Reference.Seconds() / row.Parallel.Seconds()
			}
			row.SpeedupVsOptimized = row.Optimized.Seconds() / row.Parallel.Seconds()
			row.SpeedupVsSerial = row.Serial.Seconds() / row.Parallel.Seconds()
			if row.Sharded > 0 {
				row.ShardedVsParallel = row.Parallel.Seconds() / row.Sharded.Seconds()
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderTableI prints the measured table next to the paper's numbers.
func RenderTableI(w io.Writer, rows []TableIRow, cfg Config) {
	cfg = cfg.withDefaults()
	fmt.Fprintf(w, "Table I reproduction — K=%d, %.0f%% labels, %d workers, scale 1/%d\n",
		cfg.K, cfg.LabelFraction*100, cfg.Workers, cfg.ScaleDiv)
	fmt.Fprintf(w, "%-17s %10s %11s | %10s %10s %10s %10s %10s | %8s %8s %8s %8s\n",
		"Graph", "n", "s", "Reference", "Optimized", "LigraSer", "LigraPar", "Sharded",
		"vs Ref", "vs Opt", "vs Ser", "Shd/Par")
	for _, r := range rows {
		ref := "-"
		vsRef := "-"
		if r.Reference > 0 {
			ref = fmtSecs(r.Reference)
			vsRef = fmt.Sprintf("%.0fx", r.SpeedupVsReference)
		}
		fmt.Fprintf(w, "%-17s %10d %11d | %10s %10s %10s %10s %10s | %8s %7.1fx %7.1fx %7.2fx\n",
			r.Graph, r.N, r.M,
			ref, fmtSecs(r.Optimized), fmtSecs(r.Serial), fmtSecs(r.Parallel), fmtSecs(r.Sharded),
			vsRef, r.SpeedupVsOptimized, r.SpeedupVsSerial, r.ShardedVsParallel)
	}
	fmt.Fprintln(w, "\nPaper's Table I (24-core Xeon, full-size datasets), for shape comparison:")
	fmt.Fprintf(w, "%-17s %10s %10s %10s %10s | %8s %8s %8s\n",
		"Graph", "GEE-Py", "Numba", "LigraSer", "LigraPar", "vs Py", "vs Numba", "vs Ser")
	for _, spec := range TableISpecs {
		p := PaperTableI[spec.Name]
		fmt.Fprintf(w, "%-17s %9.2fs %9.2fs %9.2fs %9.3fs | %7.0fx %7.1fx %7.1fx\n",
			spec.Name, p[0], p[1], p[2], p[3], p[0]/p[3], p[1]/p[3], p[2]/p[3])
	}
}

// fmtSecs renders a duration in seconds with sensible precision.
func fmtSecs(d time.Duration) string {
	s := d.Seconds()
	switch {
	case s >= 100:
		return fmt.Sprintf("%.0fs", s)
	case s >= 1:
		return fmt.Sprintf("%.2fs", s)
	case s >= 0.001:
		return fmt.Sprintf("%.1fms", s*1000)
	default:
		return fmt.Sprintf("%.0fµs", s*1e6)
	}
}
