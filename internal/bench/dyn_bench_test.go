package bench

import (
	"testing"

	"repro/internal/dyn"
	"repro/internal/gee"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/labels"
)

// Dynamic-ingest throughput: edges folded per second into a live
// DynamicEmbedder, across the exec routing tiers (atomic adds vs the
// contention-free sharded edge plan) and batch sizes. Publishes are
// manual so the numbers isolate ingest; BenchmarkDynamicPublish prices
// the snapshot separately. Run with -benchtime=1x for a smoke pass.
//
// Workers are pinned (not GOMAXPROCS) so the parallel fold paths are
// exercised even on a single-core machine; like Table I's Shd/Par
// column, the relative numbers are only meaningful with real cores.

const (
	dynBenchScale   = 15 // 2^15 vertices
	dynBenchN       = 1 << dynBenchScale
	dynBenchK       = 16
	dynBenchWorkers = 4
)

// dynEdgePool pre-generates a skewed edge pool so generation stays out
// of the timed region.
func dynEdgePool(m int64) []graph.Edge {
	return gen.RMAT(0, dynBenchScale, m, gen.Graph500Params, 77).Edges
}

func BenchmarkDynamicIngest(b *testing.B) {
	pool := dynEdgePool(1 << 20)
	for _, bc := range []struct {
		name   string
		batch  int
		thresh int // -1 pins atomic folds, 1 pins sharded folds
	}{
		{"atomic/batch=4096", 4096, -1},
		{"sharded/batch=4096", 4096, 1},
		{"atomic/batch=65536", 65536, -1},
		{"sharded/batch=65536", 65536, 1},
	} {
		b.Run(bc.name, func(b *testing.B) {
			y := labels.SampleSemiSupervised(dynBenchN, dynBenchK, 0.1, 7)
			d, err := dyn.New(dynBenchN, y, dyn.Options{
				K: dynBenchK, Workers: dynBenchWorkers,
				ShardedThreshold: bc.thresh, ManualPublish: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			off := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if off+bc.batch > len(pool) {
					off = 0
				}
				if err := d.AddEdges(pool[off : off+bc.batch]); err != nil {
					b.Fatal(err)
				}
				off += bc.batch
			}
			b.StopTimer()
			edges := float64(b.N) * float64(bc.batch)
			b.ReportMetric(edges/b.Elapsed().Seconds(), "edges/s")
		})
	}
}

// BenchmarkDynamicChurn interleaves inserts, deletions of an earlier
// batch, and label updates — the mixed workload geeserve drives.
func BenchmarkDynamicChurn(b *testing.B) {
	const batch = 8192
	pool := dynEdgePool(1 << 20)
	y := labels.SampleSemiSupervised(dynBenchN, dynBenchK, 0.1, 7)
	d, err := dyn.New(dynBenchN, y, dyn.Options{
		K: dynBenchK, Workers: dynBenchWorkers, ManualPublish: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	var pending [][]graph.Edge // inserted but not yet deleted
	off := 0
	next := func() []graph.Edge {
		if off+batch > len(pool) {
			off = 0
		}
		e := pool[off : off+batch]
		off += batch
		return e
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bt := dyn.Batch{Insert: next()}
		if len(pending) > 2 {
			bt.Delete = pending[0]
			pending = pending[1:]
		}
		for v := 0; v < 64; v++ {
			bt.Labels = append(bt.Labels, dyn.LabelUpdate{
				V: graph.NodeID((i*64 + v) % dynBenchN), Class: int32(v % dynBenchK),
			})
		}
		if err := d.Apply(bt); err != nil {
			b.Fatal(err)
		}
		pending = append(pending, bt.Insert)
	}
	b.StopTimer()
	st := d.Stats()
	ops := float64(st.Inserts + st.Deletes + st.LabelMoves)
	b.ReportMetric(ops/b.Elapsed().Seconds(), "ops/s")
}

// BenchmarkDynamicPublish prices one copy-on-epoch snapshot (O(nK)
// normalize + label copy) at the benchmark's service size.
func BenchmarkDynamicPublish(b *testing.B) {
	y := labels.SampleSemiSupervised(dynBenchN, dynBenchK, 0.1, 7)
	d, err := dyn.New(dynBenchN, y, dyn.Options{K: dynBenchK, ManualPublish: true})
	if err != nil {
		b.Fatal(err)
	}
	if err := d.AddEdges(dynEdgePool(1 << 18)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Publish()
	}
}

// BenchmarkShardedPlanReuse shows the ROADMAP plan-cache payoff: the
// first sharded run on a CSR pays the O(m) bucketing, subsequent runs
// reuse the plan cached on the graph.
func BenchmarkShardedPlanReuse(b *testing.B) {
	el := gen.RMAT(0, dynBenchScale, 1<<19, gen.Graph500Params, 79)
	y := labels.SampleSemiSupervised(el.N, dynBenchK, 0.1, 7)
	for _, fresh := range []bool{true, false} {
		name := "cached-plan"
		if fresh {
			name = "fresh-plan"
		}
		b.Run(name, func(b *testing.B) {
			g := graph.BuildCSR(0, el)
			w := &Workload{Name: name, EL: el, G: g, Y: y, K: dynBenchK}
			cfg := Config{Reps: 1, K: dynBenchK, Workers: dynBenchWorkers}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if fresh {
					g.InvalidatePlan()
				}
				if _, err := TimeImpl(w, gee.ShardedParallel, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
