package exec

import (
	"fmt"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/parallel"
)

// Sharded execution over edge slices. The CSR executor (sharded.go)
// buckets a whole graph once; dynamic ingest instead folds a stream of
// batches into a long-lived Z, so the shard layout must outlive any one
// edge set. EdgePlan is that layout: shard boundaries plus a vertex →
// shard map, built once, against which every batch is bucketed in
// O(batch) — the per-batch patch of a cached plan, not a per-batch
// rebuild. Each arc contributes two half-updates with structurally
// known target rows, so the src half routes to the owner of u and the
// dst half to the owner of v; every worker then writes only rows it
// owns, with plain non-atomic adds.

// EdgePlan is a persistent shard layout over the vertex range [0, n).
// The scratch buffers are reused across calls, so a plan is
// single-writer: concurrent ShardedEdges calls on one plan must be
// externally serialized (the dynamic embedder holds its writer lock).
// Readers of Z snapshots are unaffected.
type EdgePlan struct {
	n       int
	bounds  []int   // len parts+1 — vertex range of each shard
	shardOf []int32 // len n — owner shard of each vertex

	// per-batch scratch, grown on demand and reused
	srcArcs, dstArcs   []graph.Edge
	srcStart, dstStart []int64
}

// NewEdgePlan builds a shard layout with parts uniform vertex ranges
// (clamped to [1, n]). Uniform ranges are the right default for a
// dynamic graph whose degree profile is unknown and shifting; a skewed
// steady state can be rebalanced by building a fresh plan.
func NewEdgePlan(n, parts int) (*EdgePlan, error) {
	if n <= 0 {
		return nil, fmt.Errorf("exec: edge plan over %d vertices", n)
	}
	if parts > n {
		parts = n
	}
	if parts < 1 {
		parts = 1
	}
	p := &EdgePlan{n: n, bounds: make([]int, parts+1), shardOf: make([]int32, n)}
	for s := 0; s <= parts; s++ {
		p.bounds[s] = s * n / parts
	}
	parallel.ForChunk(0, n, 0, func(lo, hi int) {
		s := parallel.RangeOf(p.bounds, lo)
		for v := lo; v < hi; v++ {
			for v >= p.bounds[s+1] {
				s++
			}
			p.shardOf[v] = int32(s)
		}
	})
	return p, nil
}

// Shards returns the number of shards in the layout.
func (p *EdgePlan) Shards() int { return len(p.bounds) - 1 }

// N returns the vertex count the layout covers.
func (p *EdgePlan) N() int { return p.n }

// ShardedEdges applies the kernel over an edge slice with the
// contention-free sharded discipline: both half-updates of every arc
// are bucketed by the shard owning their target row (a two-pass
// count-and-scatter over the batch only), then each shard owner drains
// its buckets with plain writes. The race-free alternative to
// AtomicEdges for large batches; below a few thousand edges the
// bucketing pass costs more than the atomics it saves.
func ShardedEdges[T Float](k Kernel[T], edges []graph.Edge, z []T, p *EdgePlan, workers int) (Stats, error) {
	if err := k.validate(p.n, len(z)); err != nil {
		return Stats{}, err
	}
	parts := p.Shards()
	if parts <= 1 || len(edges) == 0 {
		return SerialEdges(k, edges, p.n, z)
	}
	b := len(edges)
	w := parallel.Workers(workers)
	if w > b {
		w = b
	}

	// Pass 1: per-(worker, shard) half-update counts over static batch
	// ranges.
	srcCounts := make([][]int64, w)
	dstCounts := make([][]int64, w)
	parallel.ForStatic(w, b, func(worker, lo, hi int) {
		sc := make([]int64, parts)
		dc := make([]int64, parts)
		for i := lo; i < hi; i++ {
			sc[p.shardOf[edges[i].U]]++
			dc[p.shardOf[edges[i].V]]++
		}
		srcCounts[worker] = sc
		dstCounts[worker] = dc
	})
	for worker := 0; worker < w; worker++ {
		// ForStatic leaves trailing workers without a range when its
		// chunking rounds up; they contributed nothing.
		if srcCounts[worker] == nil {
			srcCounts[worker] = make([]int64, parts)
			dstCounts[worker] = make([]int64, parts)
		}
	}

	// Cursor scan: slot ranges ordered by (shard, worker) so each
	// worker's scatter writes are disjoint.
	p.srcStart = sliceTo(p.srcStart, parts+1)
	p.dstStart = sliceTo(p.dstStart, parts+1)
	srcCur := make([][]int64, w)
	dstCur := make([][]int64, w)
	for worker := 0; worker < w; worker++ {
		srcCur[worker] = make([]int64, parts)
		dstCur[worker] = make([]int64, parts)
	}
	var sAcc, dAcc int64
	for s := 0; s < parts; s++ {
		p.srcStart[s] = sAcc
		p.dstStart[s] = dAcc
		for worker := 0; worker < w; worker++ {
			srcCur[worker][s] = sAcc
			sAcc += srcCounts[worker][s]
			dstCur[worker][s] = dAcc
			dAcc += dstCounts[worker][s]
		}
	}
	p.srcStart[parts] = sAcc
	p.dstStart[parts] = dAcc

	// Pass 2: scatter the batch into the reserved slots.
	p.srcArcs = sliceTo(p.srcArcs, b)
	p.dstArcs = sliceTo(p.dstArcs, b)
	parallel.ForStatic(w, b, func(worker, lo, hi int) {
		sc, dc := srcCur[worker], dstCur[worker]
		for i := lo; i < hi; i++ {
			e := edges[i]
			s := p.shardOf[e.U]
			p.srcArcs[sc[s]] = e
			sc[s]++
			d := p.shardOf[e.V]
			p.dstArcs[dc[d]] = e
			dc[d]++
		}
	})

	// Drain: each shard owner applies the half-updates landing in its
	// rows, with plain adds. Concurrency is bounded by the caller's
	// worker budget — a worker may own several shards — not by the
	// shard count.
	var adds atomic.Int64
	parallel.ForStatic(parallel.Workers(workers), parts, func(_, lo, hi int) {
		var local int64
		for s := lo; s < hi; s++ {
			src := p.srcArcs[p.srcStart[s]:p.srcStart[s+1]]
			for i := range src {
				e := &src[i]
				local += k.ApplySrc(z, e.U, e.V, e.W)
			}
			dst := p.dstArcs[p.dstStart[s]:p.dstStart[s+1]]
			for i := range dst {
				e := &dst[i]
				local += k.ApplyDst(z, e.U, e.V, e.W)
			}
		}
		adds.Add(local)
	})
	// PlanBuilds/PlanReuses stay zero: an EdgePlan is built by the
	// caller, not derived during the run, so those counters would lie.
	return Stats{PlainAdds: adds.Load(), Shards: parts}, nil
}

// sliceTo returns s resized to length n, reusing capacity.
func sliceTo[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}
