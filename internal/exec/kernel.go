// Package exec is the unified edge-kernel execution layer of the GEE
// reproduction. The paper's central observation is that every GEE variant
// is the same computation — a single pass over the edges applying two
// per-arc contributions into the embedding matrix Z — and that the
// implementations differ only in *how* the concurrent writes are
// resolved. This package makes that split explicit:
//
//   - Kernel[T] carries the per-edge math in data form (which column each
//     half-update lands in, its magnitude, an optional per-vertex scale).
//   - An executor Strategy decides scheduling and write discipline:
//     Serial (one worker, plain adds), Atomic (Ligra's lock-free
//     writeAdd), Racy (the paper's atomics-off ablation), Replicated
//     (per-worker private Z buffers + reduction), and ShardedDest (a
//     contention-free destination-range sharding with plain writes).
//
// The gee package builds kernels for each variant (standard, Laplacian,
// directed, float32) and delegates execution here, so the update loop
// exists once per strategy instead of once per variant × strategy.
package exec

import (
	"fmt"

	"repro/internal/atomicx"
	"repro/internal/graph"
)

// Float constrains the embedding cell type. The paper's pipeline is
// float64; the float32 instantiation is the memory-traffic ablation.
type Float interface {
	~float32 | ~float64
}

// Kernel is one GEE-style edge-map workload in data form. For each
// stored arc (u, v, w) up to two half-updates apply to the row-major
// embedding buffer z (row stride Width):
//
//	src side: z[u·Width + SrcCol[v]] += Coeff[v] · s   (skipped when SrcCol[v] < 0)
//	dst side: z[v·Width + DstCol[u]] += Coeff[u] · s   (skipped when DstCol[u] < 0)
//
// where s = w · Scale[u] · Scale[v] (s = w when Scale is nil). The
// column arrays are indexed by the *labeled* endpoint of each
// half-update — the one whose class determines the column — which is how
// Algorithm 1's two updates Z(u,Y(v)) and Z(v,Y(u)) are both expressed
// by one kernel:
//
//   - standard GEE: SrcCol = DstCol = Y (labels are already the columns,
//     with negative = unlabeled), Coeff[x] = 1/count(Y = Y(x)).
//   - Laplacian GEE: additionally Scale[x] = 1/sqrt(deg(x)), so
//     s = w/sqrt(deg(u)·deg(v)).
//   - directed GEE: DstCol = Y + K shifts in-profile updates into the
//     second half of a 2K-wide Z.
type Kernel[T Float] struct {
	// Width is the number of columns of Z (K, or 2K for directed).
	Width int
	// SrcCol[v] is the column of the update landing in the source row u
	// of an arc (u, v); negative skips the update (unlabeled v).
	SrcCol []int32
	// DstCol[u] is the column of the update landing in the target row v
	// of an arc (u, v); negative skips the update (unlabeled u).
	DstCol []int32
	// Coeff[x] is the contribution magnitude of the half-update keyed by
	// labeled endpoint x (Algorithm 1's W(x, Y(x))).
	Coeff []T
	// Scale is an optional per-vertex multiplicative factor applied to
	// both half-updates of an arc (nil = 1). The Laplacian variant sets
	// Scale[x] = 1/sqrt(deg(x)).
	Scale []T
}

// Narrow32 converts a float64 kernel to its float32 instantiation: the
// column arrays are shared, the numeric arrays narrowed. This keeps the
// kernel assembly in one place for the single-precision ablation.
func Narrow32(k Kernel[float64]) Kernel[float32] {
	out := Kernel[float32]{
		Width:  k.Width,
		SrcCol: k.SrcCol,
		DstCol: k.DstCol,
		Coeff:  make([]float32, len(k.Coeff)),
	}
	for i, v := range k.Coeff {
		out.Coeff[i] = float32(v)
	}
	if k.Scale != nil {
		out.Scale = make([]float32, len(k.Scale))
		for i, v := range k.Scale {
			out.Scale[i] = float32(v)
		}
	}
	return out
}

// validate checks the kernel arrays against a vertex count and buffer.
func (k *Kernel[T]) validate(n int, zlen int) error {
	if k.Width <= 0 {
		return fmt.Errorf("exec: kernel width %d", k.Width)
	}
	if len(k.SrcCol) != n || len(k.DstCol) != n || len(k.Coeff) != n {
		return fmt.Errorf("exec: kernel arrays (%d src, %d dst, %d coeff) for %d vertices",
			len(k.SrcCol), len(k.DstCol), len(k.Coeff), n)
	}
	if k.Scale != nil && len(k.Scale) != n {
		return fmt.Errorf("exec: %d scale entries for %d vertices", len(k.Scale), n)
	}
	if zlen != n*k.Width {
		return fmt.Errorf("exec: buffer length %d, want n×Width = %d", zlen, n*k.Width)
	}
	return nil
}

// scale returns the per-arc multiplicative factor s for (u, v, w).
//
//gee:noalloc
func (k *Kernel[T]) scale(u, v graph.NodeID, w float32) T {
	s := T(w)
	if k.Scale != nil {
		s *= k.Scale[u] * k.Scale[v]
	}
	return s
}

// Apply performs both half-updates of arc (u, v, w) into z with plain
// adds and returns the number of adds performed. Used by the serial
// executors and by callers that own disjoint slices of z.
//
//gee:noalloc
func (k *Kernel[T]) Apply(z []T, u, v graph.NodeID, w float32) int64 {
	s := k.scale(u, v, w)
	adds := int64(0)
	if c := k.SrcCol[v]; c >= 0 {
		z[int(u)*k.Width+int(c)] += k.Coeff[v] * s
		adds++
	}
	if c := k.DstCol[u]; c >= 0 {
		z[int(v)*k.Width+int(c)] += k.Coeff[u] * s
		adds++
	}
	return adds
}

// ApplySrc performs only the source-side half-update (the write into row
// u), returning the number of adds (0 or 1). The sharded executor uses
// the split halves to keep every write inside the worker's owned row
// range.
//
//gee:noalloc
func (k *Kernel[T]) ApplySrc(z []T, u, v graph.NodeID, w float32) int64 {
	if c := k.SrcCol[v]; c >= 0 {
		z[int(u)*k.Width+int(c)] += k.Coeff[v] * k.scale(u, v, w)
		return 1
	}
	return 0
}

// ApplyDst performs only the destination-side half-update (the write
// into row v), returning the number of adds (0 or 1).
//
//gee:noalloc
func (k *Kernel[T]) ApplyDst(z []T, u, v graph.NodeID, w float32) int64 {
	if c := k.DstCol[u]; c >= 0 {
		z[int(v)*k.Width+int(c)] += k.Coeff[u] * k.scale(u, v, w)
		return 1
	}
	return 0
}

// AtomicApplier returns the atomic analog of Apply — both half-updates
// performed with lock-free atomic adds (Ligra's writeAdd). The
// width-matched add is resolved once, outside the per-edge path, so
// each call pays only an indirect call rather than a dynamic dispatch
// per add (Go's gcshape stenciling would otherwise re-resolve the
// pointer type on every add). Exposed for traversals that live outside
// this package — the compressed-graph edge decoder and the gee sparse
// edge-map ablation — so the kernel math still exists only here.
func (k *Kernel[T]) AtomicApplier() func(z []T, u, v graph.NodeID, w float32) int64 {
	add := atomicAddFn[T]()
	kk := *k
	return func(z []T, u, v graph.NodeID, w float32) int64 {
		s := kk.scale(u, v, w)
		adds := int64(0)
		if c := kk.SrcCol[v]; c >= 0 {
			add(&z[int(u)*kk.Width+int(c)], kk.Coeff[v]*s)
			adds++
		}
		if c := kk.DstCol[u]; c >= 0 {
			add(&z[int(v)*kk.Width+int(c)], kk.Coeff[u]*s)
			adds++
		}
		return adds
	}
}

// atomicAddFn resolves the width-matched lock-free add for T once; the
// any-assertion back to func(*T, T) is an identity at runtime for both
// instantiations.
func atomicAddFn[T Float]() func(p *T, v T) {
	var zero T
	switch any(zero).(type) {
	case float64:
		f := func(p *float64, v float64) { atomicx.AddFloat64(p, v) }
		return any(f).(func(p *T, v T))
	case float32:
		f := func(p *float32, v float32) { atomicx.AddFloat32(p, v) }
		return any(f).(func(p *T, v T))
	default:
		panic("exec: unsupported float type")
	}
}
