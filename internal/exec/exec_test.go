package exec

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/parallel"
)

// testKernel builds a GEE-shaped kernel over n vertices: k classes
// cycled over the vertices with every 7th vertex unlabeled, coefficients
// 1/count(class), and optionally a per-vertex scale (the Laplacian
// shape) and a shifted DstCol (the directed shape, width 2k).
func testKernel(n, k int, scaled, directed bool) Kernel[float64] {
	y := make([]int32, n)
	counts := make([]int64, k)
	for i := range y {
		if i%7 == 3 {
			y[i] = -1
			continue
		}
		y[i] = int32(i % k)
		counts[y[i]]++
	}
	coeff := make([]float64, n)
	for i, c := range y {
		if c >= 0 {
			coeff[i] = 1 / float64(counts[c])
		}
	}
	width := k
	dst := y
	if directed {
		width = 2 * k
		dst = make([]int32, n)
		for i, c := range y {
			if c >= 0 {
				dst[i] = c + int32(k)
			} else {
				dst[i] = -1
			}
		}
	}
	var scale []float64
	if scaled {
		scale = make([]float64, n)
		for i := range scale {
			scale[i] = 1 / math.Sqrt(float64(i%5+1))
		}
	}
	return Kernel[float64]{Width: width, SrcCol: y, DstCol: dst, Coeff: coeff, Scale: scale}
}

func maxAbsDiff(a, b []float64) float64 {
	var d float64
	for i := range a {
		if x := math.Abs(a[i] - b[i]); x > d {
			d = x
		}
	}
	return d
}

// powerLawGraph builds a skewed RMAT stand-in: the workload where hot
// destination rows serialize atomic adds and sharding matters.
func powerLawGraph(t testing.TB, scale int, m int64, seed uint64) *graph.CSR {
	t.Helper()
	el := gen.RMAT(4, scale, m, gen.Graph500Params, seed)
	return graph.BuildCSR(4, el)
}

func TestStrategiesMatchSerialOracle(t *testing.T) {
	g := powerLawGraph(t, 11, 40_000, 1)
	shapes := []struct {
		name             string
		scaled, directed bool
	}{
		{"plain", false, false},
		{"scaled", true, false},
		{"directed", false, true},
		{"scaled-directed", true, true},
	}
	for _, shape := range shapes {
		k := testKernel(g.N, 8, shape.scaled, shape.directed)
		oracle := make([]float64, g.N*k.Width)
		if _, err := Run(Serial, g, k, oracle, Options{}); err != nil {
			t.Fatalf("%s serial: %v", shape.name, err)
		}
		for _, s := range []Strategy{Atomic, Replicated, ShardedDest} {
			z := make([]float64, len(oracle))
			st, err := Run(s, g, k, z, Options{Workers: 8})
			if err != nil {
				t.Fatalf("%s %v: %v", shape.name, s, err)
			}
			if d := maxAbsDiff(oracle, z); d > 1e-9 {
				t.Errorf("%s %v: max |Δ| = %g vs serial oracle", shape.name, s, d)
			}
			if st.AtomicAdds+st.PlainAdds == 0 {
				t.Errorf("%s %v: no adds recorded", shape.name, s)
			}
		}
	}
}

func TestWeightedArcsMatchSerialOracle(t *testing.T) {
	el := gen.RMAT(4, 10, 20_000, gen.Graph500Params, 5)
	el.Weighted = true
	for i := range el.Edges {
		el.Edges[i].W = float32(i%9 + 1)
	}
	g := graph.BuildCSR(4, el)
	k := testKernel(g.N, 6, true, false)
	oracle := make([]float64, g.N*k.Width)
	if _, err := Run(Serial, g, k, oracle, Options{}); err != nil {
		t.Fatal(err)
	}
	for _, s := range []Strategy{Atomic, Replicated, ShardedDest} {
		z := make([]float64, len(oracle))
		if _, err := Run(s, g, k, z, Options{Workers: 8}); err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if d := maxAbsDiff(oracle, z); d > 1e-9 {
			t.Errorf("%v: max |Δ| = %g on weighted arcs", s, d)
		}
	}
}

// TestShardedMatchesAtomicWithZeroAtomicAdds is the acceptance check for
// the sharded backend: output equal to the Atomic (LigraParallel)
// discipline within 1e-9 while the Stats counting hook records zero
// atomic operations, and the same number of logical adds.
func TestShardedMatchesAtomicWithZeroAtomicAdds(t *testing.T) {
	g := powerLawGraph(t, 12, 100_000, 7)
	k := testKernel(g.N, 16, false, false)
	az := make([]float64, g.N*k.Width)
	sz := make([]float64, g.N*k.Width)
	ast, err := Run(Atomic, g, k, az, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	sst, err := Run(ShardedDest, g, k, sz, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(az, sz); d > 1e-9 {
		t.Fatalf("sharded deviates from atomic by %g", d)
	}
	if sst.AtomicAdds != 0 {
		t.Fatalf("sharded performed %d atomic adds, want 0", sst.AtomicAdds)
	}
	if ast.PlainAdds != 0 {
		t.Fatalf("atomic performed %d plain adds, want 0", ast.PlainAdds)
	}
	if sst.PlainAdds != ast.AtomicAdds {
		t.Fatalf("add counts disagree: sharded %d plain vs atomic %d atomic (lost or duplicated updates)",
			sst.PlainAdds, ast.AtomicAdds)
	}
	if sst.Shards < 2 {
		t.Fatalf("expected a real shard split, got %d", sst.Shards)
	}
}

// TestShardedRaceFree exercises ShardedDest under the race detector on a
// skewed power-law graph with more workers than cores, across repeated
// runs: the contention-free ownership claim is that no two workers ever
// touch the same Z cell. `go test -race ./internal/exec` is the real
// assertion here.
func TestShardedRaceFree(t *testing.T) {
	g := powerLawGraph(t, 12, 150_000, 11)
	k := testKernel(g.N, 4, false, false)
	for trial := 0; trial < 3; trial++ {
		z := make([]float64, g.N*k.Width)
		st, err := Run(ShardedDest, g, k, z, Options{Workers: 16})
		if err != nil {
			t.Fatal(err)
		}
		if st.AtomicAdds != 0 {
			t.Fatalf("trial %d: %d atomic adds", trial, st.AtomicAdds)
		}
	}
}

func TestShardedDeterministic(t *testing.T) {
	// Disjoint ownership means a fixed per-cell accumulation order:
	// repeated runs must agree bit-for-bit (unlike Atomic, whose
	// interleaving reorders the sums).
	g := powerLawGraph(t, 10, 30_000, 13)
	k := testKernel(g.N, 8, true, false)
	a := make([]float64, g.N*k.Width)
	b := make([]float64, g.N*k.Width)
	if _, err := Run(ShardedDest, g, k, a, Options{Workers: 8}); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(ShardedDest, g, k, b, Options{Workers: 8}); err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("cell %d: %v vs %v across identical runs", i, a[i], b[i])
		}
	}
}

func TestShardedBucketsCoverEveryArc(t *testing.T) {
	g := powerLawGraph(t, 10, 25_000, 17)
	for _, parts := range []int{2, 3, 8} {
		plan := buildDestPlan(g, parts, 4)
		if got := int64(len(plan.arcs)); got != g.NumEdges() {
			t.Fatalf("parts=%d: %d bucketed arcs for %d stored", parts, got, g.NumEdges())
		}
		if plan.start[len(plan.start)-1] != g.NumEdges() {
			t.Fatalf("parts=%d: bucket starts %v", parts, plan.start)
		}
		for p := 0; p < parts; p++ {
			for _, e := range plan.arcs[plan.start[p]:plan.start[p+1]] {
				if q := parallel.RangeOf(plan.bounds, int(e.V)); q != p {
					t.Fatalf("parts=%d: arc to %d bucketed into shard %d, owner %d", parts, e.V, p, q)
				}
			}
		}
	}
}

// TestShardedPlanCachedAcrossRuns is the acceptance check for the
// ROADMAP plan-cache item: the first ShardedDest run on a CSR buckets
// the arcs, every subsequent run at the same worker count reports zero
// plan builds — including runs with a different kernel, since the plan
// depends only on graph structure.
func TestShardedPlanCachedAcrossRuns(t *testing.T) {
	g := powerLawGraph(t, 11, 50_000, 31)
	k := testKernel(g.N, 8, false, false)
	z := make([]float64, g.N*k.Width)
	first, err := Run(ShardedDest, g, k, z, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if first.PlanBuilds != 1 || first.PlanReuses != 0 {
		t.Fatalf("first run: builds=%d reuses=%d, want 1/0", first.PlanBuilds, first.PlanReuses)
	}
	for trial := 0; trial < 3; trial++ {
		z2 := make([]float64, len(z))
		again, err := Run(ShardedDest, g, k, z2, Options{Workers: 8})
		if err != nil {
			t.Fatal(err)
		}
		if again.PlanBuilds != 0 || again.PlanReuses != 1 {
			t.Fatalf("repeat run %d: builds=%d reuses=%d, want 0/1", trial, again.PlanBuilds, again.PlanReuses)
		}
		if d := maxAbsDiff(z, z2); d != 0 {
			t.Fatalf("repeat run %d deviates by %g under a cached plan", trial, d)
		}
	}
	// A different kernel shape reuses the same structural plan.
	dk := testKernel(g.N, 8, true, true)
	dz := make([]float64, g.N*dk.Width)
	st, err := Run(ShardedDest, g, dk, dz, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if st.PlanBuilds != 0 {
		t.Fatalf("directed kernel rebuilt the structural plan (builds=%d)", st.PlanBuilds)
	}
	// A different worker count is a different shard layout: rebuild.
	z3 := make([]float64, len(z))
	st, err = Run(ShardedDest, g, k, z3, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if st.PlanBuilds != 1 {
		t.Fatalf("worker-count change did not rebuild (builds=%d)", st.PlanBuilds)
	}
	// Invalidation drops the cache.
	g.InvalidatePlan()
	st, err = Run(ShardedDest, g, k, z3, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if st.PlanBuilds != 1 {
		t.Fatalf("invalidated plan not rebuilt (builds=%d)", st.PlanBuilds)
	}
}

func TestShardedEdgesMatchesSerial(t *testing.T) {
	el := gen.RMAT(4, 11, 60_000, gen.Graph500Params, 37)
	el.Weighted = true
	for i := range el.Edges {
		el.Edges[i].W = float32(i%7 + 1)
	}
	for _, shape := range []struct {
		name             string
		scaled, directed bool
	}{{"plain", false, false}, {"scaled", true, false}, {"directed", false, true}} {
		k := testKernel(el.N, 8, shape.scaled, shape.directed)
		want := make([]float64, el.N*k.Width)
		if _, err := SerialEdges(k, el.Edges, el.N, want); err != nil {
			t.Fatal(err)
		}
		for _, parts := range []int{2, 7, 16} {
			plan, err := NewEdgePlan(el.N, parts)
			if err != nil {
				t.Fatal(err)
			}
			z := make([]float64, len(want))
			st, err := ShardedEdges(k, el.Edges, z, plan, 8)
			if err != nil {
				t.Fatalf("%s parts=%d: %v", shape.name, parts, err)
			}
			if d := maxAbsDiff(want, z); d > 1e-9 {
				t.Errorf("%s parts=%d: deviates from serial by %g", shape.name, parts, d)
			}
			if st.AtomicAdds != 0 {
				t.Errorf("%s parts=%d: %d atomic adds, want 0", shape.name, parts, st.AtomicAdds)
			}
			if st.Shards != parts {
				t.Errorf("%s parts=%d: reported %d shards", shape.name, parts, st.Shards)
			}
		}
	}
}

// TestShardedEdgesScratchReuse folds several batches through one plan —
// the dynamic-ingest pattern — and checks the accumulated result and
// the scratch reuse both hold.
func TestShardedEdgesScratchReuse(t *testing.T) {
	el := gen.RMAT(4, 10, 30_000, gen.Graph500Params, 41)
	k := testKernel(el.N, 6, false, false)
	want := make([]float64, el.N*k.Width)
	if _, err := SerialEdges(k, el.Edges, el.N, want); err != nil {
		t.Fatal(err)
	}
	plan, err := NewEdgePlan(el.N, 8)
	if err != nil {
		t.Fatal(err)
	}
	z := make([]float64, len(want))
	edges := el.Edges
	for len(edges) > 0 {
		sz := 1 + len(edges)/3
		if sz > len(edges) {
			sz = len(edges)
		}
		if _, err := ShardedEdges(k, edges[:sz], z, plan, 8); err != nil {
			t.Fatal(err)
		}
		edges = edges[sz:]
	}
	if d := maxAbsDiff(want, z); d > 1e-9 {
		t.Fatalf("batched sharded folds deviate by %g", d)
	}
}

func TestShardedEdgesRaceFree(t *testing.T) {
	el := gen.RMAT(4, 11, 80_000, gen.Graph500Params, 43)
	k := testKernel(el.N, 4, false, false)
	plan, err := NewEdgePlan(el.N, 16)
	if err != nil {
		t.Fatal(err)
	}
	z := make([]float64, el.N*k.Width)
	for trial := 0; trial < 3; trial++ {
		if _, err := ShardedEdges(k, el.Edges, z, plan, 16); err != nil {
			t.Fatal(err)
		}
	}
}

func TestEdgePlanValidation(t *testing.T) {
	if _, err := NewEdgePlan(0, 4); err == nil {
		t.Fatal("empty vertex range accepted")
	}
	plan, err := NewEdgePlan(3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Shards() != 3 {
		t.Fatalf("plan over 3 vertices has %d shards", plan.Shards())
	}
	if plan.N() != 3 {
		t.Fatalf("plan reports n=%d", plan.N())
	}
	bad := testKernel(3, 2, false, false)
	bad.Coeff = bad.Coeff[:1]
	if _, err := ShardedEdges(bad, nil, make([]float64, 6), plan, 2); err == nil {
		t.Fatal("bad kernel accepted")
	}
}

func TestRacyUpgradesOrRuns(t *testing.T) {
	// Racy must execute without error regardless of the race detector
	// (under -race it silently upgrades to Atomic).
	g := powerLawGraph(t, 9, 10_000, 19)
	k := testKernel(g.N, 4, false, false)
	z := make([]float64, g.N*k.Width)
	if _, err := Run(Racy, g, k, z, Options{Workers: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestFloat32Instantiation(t *testing.T) {
	g := powerLawGraph(t, 10, 20_000, 23)
	k64 := testKernel(g.N, 8, true, false)
	k32 := Kernel[float32]{
		Width:  k64.Width,
		SrcCol: k64.SrcCol,
		DstCol: k64.DstCol,
		Coeff:  make([]float32, g.N),
		Scale:  make([]float32, g.N),
	}
	for i := range k32.Coeff {
		k32.Coeff[i] = float32(k64.Coeff[i])
		k32.Scale[i] = float32(k64.Scale[i])
	}
	oracle := make([]float64, g.N*k64.Width)
	if _, err := Run(Serial, g, k64, oracle, Options{}); err != nil {
		t.Fatal(err)
	}
	for _, s := range []Strategy{Serial, Atomic, ShardedDest} {
		z := make([]float32, g.N*k32.Width)
		if _, err := Run(s, g, k32, z, Options{Workers: 8}); err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		var d float64
		for i := range z {
			if x := math.Abs(float64(z[i]) - oracle[i]); x > d {
				d = x
			}
		}
		if d > 1e-3 {
			t.Errorf("%v: float32 deviates from float64 oracle by %g", s, d)
		}
	}
}

func TestEdgeSliceExecutionMatchesCSR(t *testing.T) {
	el := gen.RMAT(4, 10, 15_000, gen.Graph500Params, 29)
	g := graph.BuildCSR(4, el)
	k := testKernel(g.N, 8, false, false)
	want := make([]float64, g.N*k.Width)
	if _, err := Run(Serial, g, k, want, Options{}); err != nil {
		t.Fatal(err)
	}
	serial := make([]float64, len(want))
	if _, err := SerialEdges(k, el.Edges, el.N, serial); err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(want, serial); d > 1e-9 {
		t.Fatalf("SerialEdges deviates by %g", d)
	}
	atomicZ := make([]float64, len(want))
	st, err := AtomicEdges(k, el.Edges, el.N, atomicZ, 8)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(want, atomicZ); d > 1e-9 {
		t.Fatalf("AtomicEdges deviates by %g", d)
	}
	if st.AtomicAdds == 0 {
		t.Fatal("AtomicEdges recorded no atomic adds")
	}
}

func TestRunValidation(t *testing.T) {
	g := graph.BuildCSR(1, &graph.EdgeList{N: 3, Edges: []graph.Edge{{U: 0, V: 1, W: 1}}})
	good := testKernel(3, 2, false, false)
	z := make([]float64, 3*good.Width)
	if _, err := Run(Strategy(99), g, good, z, Options{}); err == nil {
		t.Fatal("unknown strategy accepted")
	}
	bad := good
	bad.Coeff = bad.Coeff[:1]
	if _, err := Run(Serial, g, bad, z, Options{}); err == nil {
		t.Fatal("short coeff array accepted")
	}
	if _, err := Run(Serial, g, good, z[:2], Options{}); err == nil {
		t.Fatal("short buffer accepted")
	}
	zero := good
	zero.Width = 0
	if _, err := Run(Serial, g, zero, nil, Options{}); err == nil {
		t.Fatal("zero width accepted")
	}
	if _, err := SerialEdges(bad, nil, 3, z); err == nil {
		t.Fatal("SerialEdges accepted bad kernel")
	}
	if _, err := AtomicEdges(bad, nil, 3, z, 2); err == nil {
		t.Fatal("AtomicEdges accepted bad kernel")
	}
}

func TestEmptyAndTinyGraphs(t *testing.T) {
	empty := graph.BuildCSR(1, &graph.EdgeList{N: 0})
	k := Kernel[float64]{Width: 2, SrcCol: nil, DstCol: nil, Coeff: nil}
	if _, err := Run(ShardedDest, empty, k, nil, Options{Workers: 8}); err != nil {
		t.Fatalf("empty graph: %v", err)
	}
	// Fewer vertices than workers: shard count clamps to n.
	tiny := graph.BuildCSR(1, &graph.EdgeList{N: 2, Edges: []graph.Edge{{U: 0, V: 1, W: 1}}})
	tk := testKernel(2, 1, false, false)
	z := make([]float64, 2*tk.Width)
	st, err := Run(ShardedDest, tiny, tk, z, Options{Workers: 16})
	if err != nil {
		t.Fatal(err)
	}
	if st.Shards > 2 {
		t.Fatalf("%d shards for 2 vertices", st.Shards)
	}
}

func TestStrategyString(t *testing.T) {
	for _, s := range Strategies {
		if s.String() == "" || s.String()[0] == 'S' {
			t.Fatalf("strategy %d has no name", int(s))
		}
	}
	if Strategy(42).String() == "" {
		t.Fatal("unknown strategy must stringify")
	}
}
