// The Racy strategy in this package performs deliberately
// unsynchronized adds — the paper's §IV ablation. The //gee:racy
// directive tells the atomiccell analyzer (internal/analysis) that
// mixing atomic and plain access here is intentional; exec is the only
// package allowed to carry the annotation, and it is required to (so
// this comment is load-bearing — geevet fails without it).
//
//gee:racy
package exec

import (
	"fmt"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/race"
)

// Strategy selects how an executor resolves the concurrent writes of the
// edge map. All strategies compute the same embedding up to
// floating-point summation order (Racy excepted, by design).
type Strategy int

const (
	// Serial runs one worker with plain adds — the execution discipline
	// of Algorithm 1 and of GEE-Ligra on a single core.
	Serial Strategy = iota
	// Atomic is Ligra's dense edge map with lock-free atomic writeAdd —
	// the paper's GEE-Ligra Parallel discipline.
	Atomic
	// Racy is Atomic with the atomics turned off (plain, racy adds) —
	// the paper's §IV ablation. Under `-race` builds it upgrades to
	// Atomic so the detector stays usable repo-wide; the ablation is only
	// meaningful in normal builds anyway.
	Racy
	// Replicated gives each worker a private copy of Z and reduces at
	// the end: no atomics, no races, at the cost of workers × n × Width
	// memory and a reduction pass. The alternative the paper rejects for
	// memory, kept for the ablation that quantifies the choice.
	Replicated
	// ShardedDest partitions the vertex range into degree-balanced
	// shards and buckets arcs by destination shard, so each worker owns
	// a disjoint slice of Z rows and accumulates with plain non-atomic
	// writes: no races, no per-worker n×Width buffers, no reduction
	// pass. On skewed graphs this removes the CAS-retry serialization
	// that hot Z rows impose on Atomic.
	ShardedDest
)

// Strategies lists every executor strategy.
var Strategies = []Strategy{Serial, Atomic, Racy, Replicated, ShardedDest}

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case Serial:
		return "serial"
	case Atomic:
		return "atomic"
	case Racy:
		return "racy"
	case Replicated:
		return "replicated"
	case ShardedDest:
		return "sharded-dest"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Options configures an executor run.
type Options struct {
	// Workers bounds parallelism; <= 0 selects GOMAXPROCS. Serial
	// ignores it.
	Workers int
}

// Stats reports what an executor run did. The counters are exact: they
// are accumulated in per-worker registers and summed, so tests can
// assert structural guarantees (e.g. ShardedDest performs zero atomic
// adds) rather than merely observing outputs.
type Stats struct {
	// AtomicAdds is the number of lock-free atomic adds performed.
	AtomicAdds int64
	// PlainAdds is the number of non-atomic adds performed (including
	// adds into replicated private buffers, but not the reduction).
	PlainAdds int64
	// Shards is the number of destination shards used (ShardedDest only).
	Shards int
	// PlanBuilds counts destination plans derived during the run: 1 when
	// ShardedDest had to bucket the graph's arcs, 0 when a plan cached on
	// the CSR was reused. Tests assert repeated same-CSR runs report 0.
	PlanBuilds int
	// PlanReuses counts runs served entirely by a cached plan.
	PlanReuses int
}

// UsesAtomicAdds reports whether a strategy resolves to atomic adds at
// the given worker count: Atomic always does (past one worker), and the
// Racy ablation upgrades to atomics under the race detector. This is
// the single source of the write-discipline policy; traversals outside
// this package that need a matching discipline (the gee sparse-edge-map
// ablation) consult it instead of restating the rule.
func UsesAtomicAdds(s Strategy, workers int) bool {
	if workers <= 1 {
		return false
	}
	return s == Atomic || (s == Racy && race.Enabled)
}

// Run executes the kernel over every stored arc of g under the given
// strategy, accumulating into the row-major buffer z (len g.N × k.Width).
// z is accumulated into, not cleared, so contributions fold into whatever
// the caller seeded (normally zeros).
func Run[T Float](s Strategy, g *graph.CSR, k Kernel[T], z []T, o Options) (Stats, error) {
	if err := k.validate(g.N, len(z)); err != nil {
		return Stats{}, err
	}
	workers := parallel.Workers(o.Workers)
	switch s {
	case Serial:
		return runSerial(g, k, z), nil
	case Atomic:
		if workers <= 1 {
			return runSerial(g, k, z), nil
		}
		return runAtomic(g, k, z, workers), nil
	case Racy:
		if workers <= 1 {
			return runSerial(g, k, z), nil
		}
		if UsesAtomicAdds(Racy, workers) {
			return runAtomic(g, k, z, workers), nil
		}
		return runRacy(g, k, z, workers), nil
	case Replicated:
		if workers <= 1 {
			return runSerial(g, k, z), nil
		}
		return runReplicated(g, k, z, workers), nil
	case ShardedDest:
		return runSharded(g, k, z, workers), nil
	default:
		return Stats{}, fmt.Errorf("exec: unknown strategy %d", int(s))
	}
}

// runSerial walks every vertex's arc list on one worker with plain adds.
func runSerial[T Float](g *graph.CSR, k Kernel[T], z []T) Stats {
	var adds int64
	for u := 0; u < g.N; u++ {
		lo, hi := g.Offsets[u], g.Offsets[u+1]
		for i := lo; i < hi; i++ {
			adds += k.Apply(z, graph.NodeID(u), g.Targets[i], g.Weight(i))
		}
	}
	return Stats{PlainAdds: adds}
}

// runAtomic is the dense Ligra schedule: parallel over vertices (so one
// worker walks each vertex's arc list and the source row stays
// cache-resident), atomic adds on both halves because any row also
// receives destination-side updates from other workers' arcs.
func runAtomic[T Float](g *graph.CSR, k Kernel[T], z []T, workers int) Stats {
	apply := k.AtomicApplier()
	var adds atomic.Int64
	parallel.ForChunk(workers, g.N, 0, func(lo, hi int) {
		var local int64
		for u := lo; u < hi; u++ {
			alo, ahi := g.Offsets[u], g.Offsets[u+1]
			for i := alo; i < ahi; i++ {
				local += apply(z, graph.NodeID(u), g.Targets[i], g.Weight(i))
			}
		}
		adds.Add(local)
	})
	return Stats{AtomicAdds: adds.Load()}
}

// runRacy is runAtomic with plain adds — deliberately racy (the paper's
// atomics-off ablation). Callers must not rely on its output.
func runRacy[T Float](g *graph.CSR, k Kernel[T], z []T, workers int) Stats {
	var adds atomic.Int64
	parallel.ForChunk(workers, g.N, 0, func(lo, hi int) {
		var local int64
		for u := lo; u < hi; u++ {
			alo, ahi := g.Offsets[u], g.Offsets[u+1]
			for i := alo; i < ahi; i++ {
				local += k.Apply(z, graph.NodeID(u), g.Targets[i], g.Weight(i))
			}
		}
		adds.Add(local)
	})
	return Stats{PlainAdds: adds.Load()}
}

// runReplicated accumulates into per-worker private copies of Z and
// reduces them into z with a deterministic per-cell order.
func runReplicated[T Float](g *graph.CSR, k Kernel[T], z []T, workers int) Stats {
	w := parallel.Workers(workers)
	buffers := make([][]T, w)
	counts := make([]int64, w)
	parallel.ForStatic(w, g.N, func(worker, lo, hi int) {
		buf := make([]T, len(z))
		buffers[worker] = buf
		var local int64
		for u := lo; u < hi; u++ {
			alo, ahi := g.Offsets[u], g.Offsets[u+1]
			for i := alo; i < ahi; i++ {
				local += k.Apply(buf, graph.NodeID(u), g.Targets[i], g.Weight(i))
			}
		}
		counts[worker] = local
	})
	parallel.ForChunk(w, len(z), 0, func(lo, hi int) {
		for _, buf := range buffers {
			if buf == nil {
				continue
			}
			for i := lo; i < hi; i++ {
				z[i] += buf[i]
			}
		}
	})
	var adds int64
	for _, c := range counts {
		adds += c
	}
	return Stats{PlainAdds: adds}
}

// Edge-slice execution — the Algorithm 1 formulation over an explicit
// edge list, used by the Reference/Optimized paths and the streaming
// embedder's batch folds.

// SerialEdges applies the kernel serially over an edge slice with plain
// adds.
func SerialEdges[T Float](k Kernel[T], edges []graph.Edge, n int, z []T) (Stats, error) {
	if err := k.validate(n, len(z)); err != nil {
		return Stats{}, err
	}
	var adds int64
	for i := range edges {
		e := &edges[i]
		adds += k.Apply(z, e.U, e.V, e.W)
	}
	return Stats{PlainAdds: adds}, nil
}

// AtomicEdges applies the kernel over an edge slice in parallel with
// atomic adds (edge order carries no ownership structure, so atomics are
// the only race-free discipline without bucketing).
func AtomicEdges[T Float](k Kernel[T], edges []graph.Edge, n int, z []T, workers int) (Stats, error) {
	if err := k.validate(n, len(z)); err != nil {
		return Stats{}, err
	}
	apply := k.AtomicApplier()
	adds := parallel.Reduce(workers, len(edges), int64(0), func(lo, hi int) int64 {
		var local int64
		for i := lo; i < hi; i++ {
			e := &edges[i]
			local += apply(z, e.U, e.V, e.W)
		}
		return local
	}, func(a, b int64) int64 { return a + b })
	return Stats{AtomicAdds: adds}, nil
}
