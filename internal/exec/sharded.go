package exec

import (
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/parallel"
)

// The destination-sharded executor. The vertex range [0, n) is split
// into P contiguous shards balanced by total incident arcs (out-degree
// from g.Offsets plus an in-degree histogram), and each worker owns the
// Z rows of exactly one shard. An arc (u, v) contributes two
// half-updates with structurally known target rows — the src half writes
// row u, the dst half writes row v — so:
//
//   - every src half is applied by the owner of u while it walks its own
//     vertices' arc lists (the cache-friendly Ligra schedule), and
//   - every dst half is routed to the owner of v through a bucketing
//     pass that groups arcs by destination shard.
//
// Each worker then touches only rows it owns, with plain non-atomic
// writes: no races, no per-worker n×K replicas, no reduction pass. The
// cost is one O(m) bucketing pass and m edge records of transient
// memory, which is why the paper-faithful Atomic strategy remains the
// default; on skewed graphs the removal of CAS retries on hot rows pays
// for it (see the ablation benchmarks).

// destPlan is the bucketed form of a graph's arcs: arcs grouped by the
// destination shard that must apply their dst half-update.
type destPlan struct {
	bounds []int        // len P+1 — vertex range of each shard
	arcs   []graph.Edge // len m — arcs grouped by destination shard
	start  []int64      // len P+1 — arcs[start[p]:start[p+1]] is shard p's bucket
}

// runSharded executes the kernel with the destination-sharded strategy.
func runSharded[T Float](g *graph.CSR, k Kernel[T], z []T, workers int) Stats {
	if g.N == 0 {
		return Stats{}
	}
	p := workers
	if p > g.N {
		p = g.N
	}
	if p <= 1 {
		st := runSerial(g, k, z)
		st.Shards = 1
		return st
	}
	plan, built := destPlanFor(g, p, workers)
	var adds atomic.Int64
	parallel.ForStatic(p, p, func(_, lo, hi int) {
		var local int64
		for shard := lo; shard < hi; shard++ {
			// Src halves: walk the owned vertices' arc lists; every write
			// lands in an owned row u.
			for u := plan.bounds[shard]; u < plan.bounds[shard+1]; u++ {
				alo, ahi := g.Offsets[u], g.Offsets[u+1]
				for i := alo; i < ahi; i++ {
					local += k.ApplySrc(z, graph.NodeID(u), g.Targets[i], g.Weight(i))
				}
			}
			// Dst halves: drain the owned bucket; every write lands in an
			// owned row v.
			bucket := plan.arcs[plan.start[shard]:plan.start[shard+1]]
			for i := range bucket {
				e := &bucket[i]
				local += k.ApplyDst(z, e.U, e.V, e.W)
			}
		}
		adds.Add(local)
	})
	st := Stats{PlainAdds: adds.Load(), Shards: p}
	if built {
		st.PlanBuilds = 1
	} else {
		st.PlanReuses = 1
	}
	return st
}

// destPlanEntry pairs a cached plan with the shard count it was built
// for; a run at a different effective worker count rebuilds (and
// replaces the cache, so alternating counts thrash rather than grow).
type destPlanEntry struct {
	parts int
	plan  *destPlan
}

// destPlanFor resolves the destination plan for g at the given shard
// count, consulting the plan slot cached on the CSR (ROADMAP: repeated
// benchmark and streaming runs on the same graph amortize the O(m)
// bucketing to zero). The plan depends only on graph structure and
// parts — not on the kernel — so one cached plan serves every variant
// (standard, Laplacian, directed, float32) at the same worker count.
// Returns whether the plan had to be built this call.
func destPlanFor(g *graph.CSR, parts, workers int) (*destPlan, bool) {
	if e, ok := g.CachedPlan().(*destPlanEntry); ok && e.parts == parts {
		return e.plan, false
	}
	plan := buildDestPlan(g, parts, workers)
	g.CachePlan(&destPlanEntry{parts: parts, plan: plan})
	return plan, true
}

// buildDestPlan computes degree-balanced shard boundaries and buckets
// every arc by the shard owning its destination row.
func buildDestPlan(g *graph.CSR, parts, workers int) *destPlan {
	m := len(g.Targets)
	// Shard boundaries balance the per-shard half-update load: the src
	// walk costs the shard's out-degrees, the bucket drain its
	// in-degrees, so split on the prefix sum of outdeg + indeg.
	indeg := parallel.Histogram(workers, m, g.N, func(i int) int { return int(g.Targets[i]) })
	prefix := make([]int64, g.N+1)
	parallel.For(workers, g.N, func(u int) {
		prefix[u] = g.Offsets[u+1] - g.Offsets[u] + indeg[u]
	})
	parallel.ExclusiveSum(workers, prefix)
	bounds := parallel.SplitByWeight(parts, prefix)
	// Flatten the boundary search into a vertex → shard map once (n
	// lookups) so the two O(m) bucketing passes below are plain loads.
	shardOf := make([]int32, g.N)
	parallel.ForChunk(workers, g.N, 0, func(lo, hi int) {
		p := parallel.RangeOf(bounds, lo)
		for v := lo; v < hi; v++ {
			for v >= bounds[p+1] {
				p++
			}
			shardOf[v] = int32(p)
		}
	})

	// Bucket arcs by destination shard with a contention-free two-pass
	// scatter: per-(worker, shard) counts, a cursor scan, then each
	// worker writes into its reserved slots. Scatter workers take
	// arc-balanced source ranges via the Offsets prefix.
	w := parallel.Workers(workers)
	srcBounds := parallel.SplitByWeight(w, g.Offsets)
	counts := make([][]int64, w)
	parallel.For(w, w, func(worker int) {
		c := make([]int64, parts)
		for u := srcBounds[worker]; u < srcBounds[worker+1]; u++ {
			for i := g.Offsets[u]; i < g.Offsets[u+1]; i++ {
				c[shardOf[g.Targets[i]]]++
			}
		}
		counts[worker] = c
	})
	start := make([]int64, parts+1)
	cursor := make([][]int64, w)
	for worker := range cursor {
		cursor[worker] = make([]int64, parts)
	}
	var acc int64
	for p := 0; p < parts; p++ {
		start[p] = acc
		for worker := 0; worker < w; worker++ {
			cursor[worker][p] = acc
			acc += counts[worker][p]
		}
	}
	start[parts] = acc
	arcs := make([]graph.Edge, m)
	parallel.For(w, w, func(worker int) {
		cur := cursor[worker]
		for u := srcBounds[worker]; u < srcBounds[worker+1]; u++ {
			for i := g.Offsets[u]; i < g.Offsets[u+1]; i++ {
				v := g.Targets[i]
				p := shardOf[v]
				arcs[cur[p]] = graph.Edge{U: graph.NodeID(u), V: v, W: g.Weight(i)}
				cur[p]++
			}
		}
	})
	return &destPlan{bounds: bounds, arcs: arcs, start: start}
}
