package walks

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/mat"
	"repro/internal/parallel"
	"repro/internal/race"
	"repro/internal/xrand"
)

// TrainConfig configures skip-gram-with-negative-sampling training over
// a walk corpus.
type TrainConfig struct {
	Dims      int
	Window    int
	Negatives int
	Epochs    int
	// LearningRate is the initial SGD step; it decays linearly to 1/10
	// of itself over training.
	LearningRate float64
	Workers      int
	Seed         uint64
}

// withDefaults fills the word2vec-conventional defaults.
func (c TrainConfig) withDefaults() TrainConfig {
	if c.Dims <= 0 {
		c.Dims = 64
	}
	if c.Window <= 0 {
		c.Window = 5
	}
	if c.Negatives <= 0 {
		c.Negatives = 5
	}
	if c.Epochs <= 0 {
		c.Epochs = 3
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.025
	}
	return c
}

// Train learns vertex embeddings from a walk corpus with SGNS. Updates
// are Hogwild-style (racy, unsynchronized) — the standard approach for
// this model family: per-step sparsity makes conflicts rare and the
// noise is dominated by SGD variance. Under `-race` builds training is
// serialized to one worker so the deliberate races don't trip the
// detector. n is the vertex count; returns an n×Dims matrix.
func Train(n int, corpus [][]graph.NodeID, cfg TrainConfig) (*mat.Dense, error) {
	cfg = cfg.withDefaults()
	if race.Enabled {
		cfg.Workers = 1
	}
	if n <= 0 {
		return nil, fmt.Errorf("walks: n must be positive")
	}
	// unigram^(3/4) negative-sampling table, word2vec convention
	counts := make([]float64, n)
	var tokens int
	for _, walk := range corpus {
		for _, v := range walk {
			counts[v]++
			tokens++
		}
	}
	if tokens == 0 {
		return nil, fmt.Errorf("walks: empty corpus")
	}
	const tableSize = 1 << 20
	table := make([]graph.NodeID, tableSize)
	var totalPow float64
	for _, c := range counts {
		totalPow += math.Pow(c, 0.75)
	}
	idx := 0
	var cum float64
	for v := 0; v < n && idx < tableSize; v++ {
		cum += math.Pow(counts[v], 0.75)
		target := int(cum / totalPow * tableSize)
		for idx < target && idx < tableSize {
			table[idx] = graph.NodeID(v)
			idx++
		}
	}
	for ; idx < tableSize; idx++ {
		table[idx] = graph.NodeID(n - 1)
	}

	d := cfg.Dims
	emb := make([]float64, n*d) // input vectors (the embedding)
	ctx := make([]float64, n*d) // output/context vectors
	init := xrand.New(cfg.Seed)
	for i := range emb {
		emb[i] = (init.Float64() - 0.5) / float64(d)
	}

	steps := cfg.Epochs * len(corpus)
	var done int64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		e := epoch
		parallel.ForChunk(cfg.Workers, len(corpus), 64, func(lo, hi int) {
			r := xrand.NewStream(cfg.Seed+1, uint64(e)<<32|uint64(lo))
			grad := make([]float64, d)
			for wi := lo; wi < hi; wi++ {
				walk := corpus[wi]
				// linear LR decay based on a progress estimate
				progress := float64(done+int64(wi-lo)) / float64(steps)
				lr := cfg.LearningRate * (1 - 0.9*progress)
				for pos, center := range walk {
					win := 1 + r.Intn(cfg.Window) // word2vec window shrink
					for off := -win; off <= win; off++ {
						tp := pos + off
						if off == 0 || tp < 0 || tp >= len(walk) {
							continue
						}
						target := walk[tp]
						sgnsStep(emb, ctx, int(center), int(target), d, lr, cfg.Negatives, table, r, grad)
					}
				}
			}
		})
		done += int64(len(corpus))
	}
	out := mat.NewDense(n, d)
	copy(out.Data, emb)
	return out, nil
}

// sgnsStep performs one positive + k negative updates for (center,
// target) with the logistic loss.
func sgnsStep(emb, ctx []float64, center, target, d int, lr float64,
	negatives int, table []graph.NodeID, r *xrand.Rand, grad []float64) {
	ce := emb[center*d : center*d+d]
	for i := range grad {
		grad[i] = 0
	}
	// positive sample
	update(ce, ctx[target*d:target*d+d], 1, lr, grad)
	// negative samples
	for k := 0; k < negatives; k++ {
		neg := int(table[r.Intn(len(table))])
		if neg == target {
			continue
		}
		update(ce, ctx[neg*d:neg*d+d], 0, lr, grad)
	}
	for i := range ce {
		ce[i] += grad[i]
	}
}

// update applies the logistic-loss gradient to the context vector and
// accumulates the center-vector gradient.
func update(ce, co []float64, label, lr float64, grad []float64) {
	var dot float64
	for i := range ce {
		dot += ce[i] * co[i]
	}
	g := lr * (label - sigmoid(dot))
	for i := range ce {
		grad[i] += g * co[i]
		co[i] += g * ce[i]
	}
}

// sigmoid with clamping (word2vec clamps to ±6).
func sigmoid(x float64) float64 {
	if x > 6 {
		return 1
	}
	if x < -6 {
		return 0
	}
	return 1 / (1 + math.Exp(-x))
}
