package walks

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/race"
)

func symCSR(t *testing.T, el *graph.EdgeList) *graph.CSR {
	t.Helper()
	g := graph.BuildCSR(4, graph.Symmetrize(el))
	graph.SortAdjacency(4, g)
	return g
}

func TestGenerateShape(t *testing.T) {
	g := symCSR(t, gen.Cycle(20))
	walks, err := Generate(g, WalkConfig{WalksPerNode: 3, WalkLength: 10, Workers: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(walks) != 60 {
		t.Fatalf("%d walks", len(walks))
	}
	for i, w := range walks {
		if len(w) != 10 {
			t.Fatalf("walk %d length %d (cycle has no sinks)", i, len(w))
		}
		if w[0] != graph.NodeID(i%20) {
			t.Fatalf("walk %d starts at %d", i, w[0])
		}
		for j := 1; j < len(w); j++ {
			if !sortedContains(g.Neighbors(w[j-1]), w[j]) {
				t.Fatalf("walk %d: %d -> %d is not an edge", i, w[j-1], w[j])
			}
		}
	}
}

func TestGenerateWorkerInvariance(t *testing.T) {
	g := symCSR(t, gen.ErdosRenyi(4, 100, 800, 3))
	a, err := Generate(g, WalkConfig{WalksPerNode: 2, WalkLength: 8, Workers: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(g, WalkConfig{WalksPerNode: 2, WalkLength: 8, Workers: 16, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("walk %d length differs", i)
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("walk %d step %d differs across worker counts", i, j)
			}
		}
	}
}

func TestGenerateStopsAtSinks(t *testing.T) {
	// directed path without symmetrization: vertex 2 is a sink
	g := graph.BuildCSR(1, gen.Path(3))
	walks, err := Generate(g, WalkConfig{WalksPerNode: 1, WalkLength: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(walks[0]) != 3 { // 0 -> 1 -> 2 stop
		t.Fatalf("walk from 0: %v", walks[0])
	}
	if len(walks[2]) != 1 { // sink start
		t.Fatalf("walk from sink: %v", walks[2])
	}
}

func TestGenerateValidation(t *testing.T) {
	g := symCSR(t, gen.Cycle(5))
	if _, err := Generate(g, WalkConfig{WalksPerNode: 0, WalkLength: 5}); err == nil {
		t.Fatal("zero walks accepted")
	}
	if _, err := Generate(g, WalkConfig{WalksPerNode: 1, WalkLength: 0}); err == nil {
		t.Fatal("zero length accepted")
	}
}

func TestBiasedWalkValidEdges(t *testing.T) {
	g := symCSR(t, gen.ErdosRenyi(4, 80, 600, 5))
	walks, err := Generate(g, WalkConfig{
		WalksPerNode: 2, WalkLength: 12, P: 0.25, Q: 4, Workers: 4, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range walks {
		for j := 1; j < len(w); j++ {
			if !sortedContains(g.Neighbors(w[j-1]), w[j]) {
				t.Fatalf("biased walk %d: %d -> %d not an edge", i, w[j-1], w[j])
			}
		}
	}
}

func TestBiasedWalkReturnBias(t *testing.T) {
	// On a star, from a leaf every second-order step is at the center
	// with prev = leaf. With huge 1/p (tiny p), the walk should return
	// to the same leaf far more often than under uniform choice.
	g := symCSR(t, gen.Star(21)) // center 0, 20 leaves
	countReturns := func(p, q float64, seed uint64) int {
		walks, err := Generate(g, WalkConfig{
			WalksPerNode: 20, WalkLength: 21, P: p, Q: q, Workers: 4, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		ret := 0
		for _, w := range walks {
			if w[0] == 0 {
				continue // started at center
			}
			for j := 2; j < len(w); j += 2 {
				if w[j] == w[j-2] {
					ret++
				}
			}
		}
		return ret
	}
	lowP := countReturns(0.05, 1, 11) // strong return bias
	highP := countReturns(20, 1, 11)  // strong anti-return bias
	if lowP < 3*highP {
		t.Fatalf("return bias not expressed: p=0.05 returns %d vs p=20 returns %d", lowP, highP)
	}
}

func TestSortedContains(t *testing.T) {
	nbrs := []graph.NodeID{2, 5, 9, 14}
	for _, v := range nbrs {
		if !sortedContains(nbrs, v) {
			t.Fatalf("missing %d", v)
		}
	}
	for _, v := range []graph.NodeID{0, 3, 15} {
		if sortedContains(nbrs, v) {
			t.Fatalf("false positive %d", v)
		}
	}
	if sortedContains(nil, 1) {
		t.Fatal("empty contains")
	}
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(0, nil, TrainConfig{}); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := Train(5, nil, TrainConfig{}); err == nil {
		t.Fatal("empty corpus accepted")
	}
}

func TestTrainShapeAndFiniteness(t *testing.T) {
	g := symCSR(t, gen.Cycle(30))
	corpus, err := Generate(g, WalkConfig{WalksPerNode: 5, WalkLength: 10, Workers: 4, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	z, err := Train(30, corpus, TrainConfig{Dims: 8, Epochs: 2, Workers: 4, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	if z.R != 30 || z.C != 8 {
		t.Fatalf("shape %dx%d", z.R, z.C)
	}
	for _, v := range z.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("non-finite embedding value")
		}
	}
	if z.MaxAbs() == 0 {
		t.Fatal("embedding untouched by training")
	}
}

// TestDeepWalkRecoversSBM is the end-to-end quality check for the
// baseline: walk embeddings of a well-separated SBM must cluster into
// the planted communities.
func TestDeepWalkRecoversSBM(t *testing.T) {
	if race.Enabled {
		t.Skip("SGNS training is serialized and ~50x slower under the race detector")
	}
	el, truth := gen.SBM(8, 400, 2, 0.15, 0.005, 17)
	g := symCSR(t, el)
	corpus, err := Generate(g, WalkConfig{WalksPerNode: 12, WalkLength: 30, Workers: 8, Seed: 18})
	if err != nil {
		t.Fatal(err)
	}
	z, err := Train(400, corpus, TrainConfig{
		Dims: 32, Window: 5, Negatives: 5, Epochs: 4, Workers: 8, Seed: 19,
	})
	if err != nil {
		t.Fatal(err)
	}
	z.RowL2Normalize()
	km := cluster.KMeans(8, z, 2, 20, 100)
	if ari := cluster.ARI(km.Assign, truth); ari < 0.6 {
		t.Fatalf("DeepWalk ARI=%v on strong 2-block SBM", ari)
	}
}
