// Package walks implements the random-walk embedding baseline family the
// paper's introduction positions GEE against (§I: methods based on random
// walks "are O(n) but have large constants in the length and number of
// the walks" — DeepWalk, node2vec). It provides a parallel random-walk
// generator (uniform/DeepWalk and p,q-biased/node2vec second-order walks)
// and a skip-gram-with-negative-sampling trainer over the walk corpus.
//
// Like every generator in this repository, walk generation is
// deterministic and independent of the worker count.
package walks

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/xrand"
)

// WalkConfig configures walk generation.
type WalkConfig struct {
	WalksPerNode int
	WalkLength   int
	// P is node2vec's return parameter, Q the in-out parameter.
	// P = Q = 1 reduces to uniform DeepWalk walks (and skips the
	// second-order machinery entirely).
	P, Q    float64
	Workers int
	Seed    uint64
}

// Generate produces WalksPerNode walks from every vertex of the
// symmetrized graph g. Walks stop early at sink vertices (no out-edges).
// The result has one row per walk; row order is deterministic.
func Generate(g *graph.CSR, cfg WalkConfig) ([][]graph.NodeID, error) {
	if cfg.WalksPerNode <= 0 || cfg.WalkLength <= 0 {
		return nil, fmt.Errorf("walks: WalksPerNode and WalkLength must be positive")
	}
	if cfg.P <= 0 {
		cfg.P = 1
	}
	if cfg.Q <= 0 {
		cfg.Q = 1
	}
	n := g.N
	total := n * cfg.WalksPerNode
	out := make([][]graph.NodeID, total)
	secondOrder := cfg.P != 1 || cfg.Q != 1
	parallel.ForChunk(cfg.Workers, total, 256, func(lo, hi int) {
		for w := lo; w < hi; w++ {
			r := xrand.NewStream(cfg.Seed, uint64(w))
			start := graph.NodeID(w % n)
			if secondOrder {
				out[w] = biasedWalk(g, r, start, cfg.WalkLength, cfg.P, cfg.Q)
			} else {
				out[w] = uniformWalk(g, r, start, cfg.WalkLength)
			}
		}
	})
	return out, nil
}

// uniformWalk is the DeepWalk first-order walk.
func uniformWalk(g *graph.CSR, r *xrand.Rand, start graph.NodeID, length int) []graph.NodeID {
	walk := make([]graph.NodeID, 1, length)
	walk[0] = start
	cur := start
	for len(walk) < length {
		nbrs := g.Neighbors(cur)
		if len(nbrs) == 0 {
			break
		}
		cur = nbrs[r.Intn(len(nbrs))]
		walk = append(walk, cur)
	}
	return walk
}

// biasedWalk is node2vec's second-order walk via rejection sampling:
// propose a uniform neighbor of cur and accept with probability
// bias/maxBias, where bias is 1/p for returning to prev, 1 for neighbors
// of prev, and 1/q otherwise. Rejection sampling avoids the per-edge
// alias tables of the reference implementation (O(d_max) memory instead
// of O(m·d)).
func biasedWalk(g *graph.CSR, r *xrand.Rand, start graph.NodeID, length int, p, q float64) []graph.NodeID {
	walk := make([]graph.NodeID, 1, length)
	walk[0] = start
	cur := start
	prev := start
	first := true
	invP, invQ := 1/p, 1/q
	maxBias := invP
	if 1 > maxBias {
		maxBias = 1
	}
	if invQ > maxBias {
		maxBias = invQ
	}
	for len(walk) < length {
		nbrs := g.Neighbors(cur)
		if len(nbrs) == 0 {
			break
		}
		var next graph.NodeID
		if first {
			next = nbrs[r.Intn(len(nbrs))]
			first = false
		} else {
			prevNbrs := g.Neighbors(prev)
			for {
				cand := nbrs[r.Intn(len(nbrs))]
				bias := invQ
				if cand == prev {
					bias = invP
				} else if sortedContains(prevNbrs, cand) {
					bias = 1
				}
				if r.Float64()*maxBias <= bias {
					next = cand
					break
				}
			}
		}
		prev, cur = cur, next
		walk = append(walk, cur)
	}
	return walk
}

// sortedContains reports membership in an ascending adjacency slice
// (binary search; adjacency must be sorted — see graph.SortAdjacency).
func sortedContains(nbrs []graph.NodeID, v graph.NodeID) bool {
	lo, hi := 0, len(nbrs)
	for lo < hi {
		mid := (lo + hi) / 2
		if nbrs[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(nbrs) && nbrs[lo] == v
}
