package rate

import (
	"math"
	"testing"
)

// TestPerSec pins the throughput-report clamp: a degenerate (zero or
// negative) duration reports 0 instead of +Inf or NaN.
func TestPerSec(t *testing.T) {
	for _, tc := range []struct {
		name  string
		count int64
		secs  float64
		want  float64
	}{
		{"normal", 100, 2, 50},
		{"zero count", 0, 2, 0},
		{"zero duration", 100, 0, 0},
		{"negative duration", 100, -1, 0},
		{"zero over zero", 0, 0, 0},
		{"tiny duration", 3, 0.5, 6},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := PerSec(tc.count, tc.secs)
			if got != tc.want {
				t.Fatalf("PerSec(%d, %v) = %v, want %v", tc.count, tc.secs, got, tc.want)
			}
			if math.IsInf(got, 0) || math.IsNaN(got) {
				t.Fatalf("PerSec(%d, %v) = %v (not finite)", tc.count, tc.secs, got)
			}
		})
	}
}
