// Package rate holds the one formatting rule every throughput report
// in this repository shares.
package rate

// PerSec converts a count over an elapsed wall time into a rate,
// reporting 0 for degenerate (zero or negative) durations instead of
// +Inf/NaN — a zero-duration window measured nothing.
func PerSec(count int64, secs float64) float64 {
	if secs <= 0 {
		return 0
	}
	return float64(count) / secs
}
