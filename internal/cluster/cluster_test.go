package cluster

import (
	"math"
	"testing"

	"repro/internal/mat"
	"repro/internal/xrand"
)

// blobs generates k well-separated Gaussian blobs of `per` points each.
func blobs(k, per, dim int, sep float64, seed uint64) (*mat.Dense, []int32) {
	r := xrand.New(seed)
	X := mat.NewDense(k*per, dim)
	truth := make([]int32, k*per)
	for c := 0; c < k; c++ {
		center := make([]float64, dim)
		for j := range center {
			center[j] = float64(c) * sep * float64(j%2*2-1)
		}
		center[c%dim] += sep * float64(c+1)
		for i := 0; i < per; i++ {
			row := X.Row(c*per + i)
			for j := range row {
				row[j] = center[j] + r.NormFloat64()*0.3
			}
			truth[c*per+i] = int32(c)
		}
	}
	return X, truth
}

func TestKMeansRecoverBlobs(t *testing.T) {
	X, truth := blobs(4, 100, 5, 8, 1)
	res := KMeans(8, X, 4, 7, 100)
	if ari := ARI(res.Assign, truth); ari < 0.99 {
		t.Fatalf("ARI=%v on separated blobs", ari)
	}
	if res.Inertia <= 0 {
		t.Fatalf("inertia=%v", res.Inertia)
	}
}

func TestKMeansDeterministicAcrossWorkers(t *testing.T) {
	X, _ := blobs(3, 80, 4, 6, 3)
	a := KMeans(1, X, 3, 11, 50)
	b := KMeans(16, X, 3, 11, 50)
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatalf("assignment differs at %d across worker counts", i)
		}
	}
	if math.Abs(a.Inertia-b.Inertia) > 1e-9*math.Max(1, a.Inertia) {
		t.Fatalf("inertia differs: %v vs %v", a.Inertia, b.Inertia)
	}
}

func TestKMeansKGreaterThanN(t *testing.T) {
	X := mat.FromRows([][]float64{{0, 0}, {10, 10}})
	res := KMeans(2, X, 5, 1, 10)
	if res.Centroids.R != 2 {
		t.Fatalf("k must clamp to n, got %d centroids", res.Centroids.R)
	}
	if res.Assign[0] == res.Assign[1] {
		t.Fatal("two distant points in one cluster with k>=n")
	}
}

func TestKMeansDegenerate(t *testing.T) {
	res := KMeans(2, mat.NewDense(0, 3), 2, 1, 10)
	if len(res.Assign) != 0 {
		t.Fatal("nonempty assign for empty input")
	}
	res = KMeans(2, mat.FromRows([][]float64{{1, 2}}), 0, 1, 10)
	if len(res.Assign) != 1 {
		t.Fatal("k=0 should still produce an assignment vector")
	}
}

func TestKMeansIdenticalPoints(t *testing.T) {
	X := mat.NewDense(50, 3) // all zeros
	res := KMeans(4, X, 3, 5, 20)
	if res.Inertia != 0 {
		t.Fatalf("inertia=%v for identical points", res.Inertia)
	}
}

func TestKMeansInertiaDecreasesWithK(t *testing.T) {
	X, _ := blobs(5, 60, 4, 5, 9)
	i1 := KMeans(4, X, 1, 3, 100).Inertia
	i5 := KMeans(4, X, 5, 3, 100).Inertia
	if i5 >= i1 {
		t.Fatalf("inertia k=5 (%v) not below k=1 (%v)", i5, i1)
	}
}

func TestARIPerfectAndPermuted(t *testing.T) {
	a := []int32{0, 0, 1, 1, 2, 2}
	if got := ARI(a, a); math.Abs(got-1) > 1e-12 {
		t.Fatalf("ARI(self)=%v", got)
	}
	perm := []int32{2, 2, 0, 0, 1, 1} // same partition, relabeled
	if got := ARI(a, perm); math.Abs(got-1) > 1e-12 {
		t.Fatalf("ARI(permuted)=%v", got)
	}
}

func TestARIIndependentNearZero(t *testing.T) {
	r := xrand.New(13)
	n := 10_000
	a := make([]int32, n)
	b := make([]int32, n)
	for i := range a {
		a[i] = int32(r.Intn(5))
		b[i] = int32(r.Intn(5))
	}
	if got := ARI(a, b); math.Abs(got) > 0.01 {
		t.Fatalf("ARI(independent)=%v", got)
	}
}

func TestARISkipsUnknown(t *testing.T) {
	a := []int32{0, 0, 1, 1, -1}
	b := []int32{1, 1, 0, 0, 0}
	if got := ARI(a, b); math.Abs(got-1) > 1e-12 {
		t.Fatalf("ARI with unknowns=%v", got)
	}
}

func TestARIMismatchedLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	ARI([]int32{0}, []int32{0, 1})
}

func TestNMIBounds(t *testing.T) {
	a := []int32{0, 0, 1, 1}
	if got := NMI(a, a); math.Abs(got-1) > 1e-12 {
		t.Fatalf("NMI(self)=%v", got)
	}
	b := []int32{1, 1, 0, 0}
	if got := NMI(a, b); math.Abs(got-1) > 1e-12 {
		t.Fatalf("NMI(relabel)=%v", got)
	}
	r := xrand.New(17)
	n := 20_000
	x := make([]int32, n)
	y := make([]int32, n)
	for i := range x {
		x[i] = int32(r.Intn(4))
		y[i] = int32(r.Intn(4))
	}
	if got := NMI(x, y); got > 0.01 {
		t.Fatalf("NMI(independent)=%v", got)
	}
}

func TestPurity(t *testing.T) {
	clusters := []int32{0, 0, 0, 1, 1, 1}
	truth := []int32{0, 0, 1, 1, 1, 1}
	// cluster 0 majority 0 (2/3 right), cluster 1 all 1 (3/3)
	if got := Purity(clusters, truth); math.Abs(got-5.0/6) > 1e-12 {
		t.Fatalf("purity=%v", got)
	}
}

func TestAccuracy(t *testing.T) {
	pred := []int32{0, 1, 1, -1}
	truth := []int32{0, 1, 0, 1}
	if got := Accuracy(pred, truth); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("accuracy=%v", got)
	}
	if Accuracy([]int32{-1}, []int32{0}) != 0 {
		t.Fatal("all-unknown accuracy must be 0")
	}
}

func TestContingency(t *testing.T) {
	table, na, nb := Contingency([]int32{0, 0, 1}, []int32{1, 1, 0})
	if na != 2 || nb != 2 {
		t.Fatalf("na=%d nb=%d", na, nb)
	}
	if table[0][1] != 2 || table[1][0] != 1 || table[0][0] != 0 {
		t.Fatalf("table=%v", table)
	}
}
