package cluster

import "math"

// Contingency builds the confusion table between two labelings (values
// may be any small non-negative ints; -1 entries are skipped in both).
func Contingency(a, b []int32) (table [][]int64, na, nb int) {
	if len(a) != len(b) {
		panic("cluster: labeling length mismatch")
	}
	for i := range a {
		if int(a[i])+1 > na {
			na = int(a[i]) + 1
		}
		if int(b[i])+1 > nb {
			nb = int(b[i]) + 1
		}
	}
	table = make([][]int64, na)
	for i := range table {
		table[i] = make([]int64, nb)
	}
	for i := range a {
		if a[i] < 0 || b[i] < 0 {
			continue
		}
		table[a[i]][b[i]]++
	}
	return table, na, nb
}

// ARI computes the Adjusted Rand Index between two labelings: 1 for
// identical partitions (up to relabeling), ~0 for independent ones.
func ARI(a, b []int32) float64 {
	table, na, nb := Contingency(a, b)
	if na == 0 || nb == 0 {
		return 0
	}
	choose2 := func(x int64) float64 { return float64(x) * float64(x-1) / 2 }
	var n int64
	rows := make([]int64, na)
	cols := make([]int64, nb)
	for i := range table {
		for j, c := range table[i] {
			rows[i] += c
			cols[j] += c
			n += c
		}
	}
	var sij float64
	for i := range table {
		for _, c := range table[i] {
			sij += choose2(c)
		}
	}
	var sa, sb float64
	for _, r := range rows {
		sa += choose2(r)
	}
	for _, c := range cols {
		sb += choose2(c)
	}
	total := choose2(n)
	if total == 0 {
		return 0
	}
	expected := sa * sb / total
	maxIdx := (sa + sb) / 2
	if maxIdx == expected {
		return 0
	}
	return (sij - expected) / (maxIdx - expected)
}

// NMI computes normalized mutual information (arithmetic-mean
// normalization) between two labelings.
func NMI(a, b []int32) float64 {
	table, na, nb := Contingency(a, b)
	if na == 0 || nb == 0 {
		return 0
	}
	var n float64
	rows := make([]float64, na)
	cols := make([]float64, nb)
	for i := range table {
		for j, c := range table[i] {
			rows[i] += float64(c)
			cols[j] += float64(c)
			n += float64(c)
		}
	}
	if n == 0 {
		return 0
	}
	var mi, ha, hb float64
	for i := range table {
		for j, c := range table[i] {
			if c == 0 {
				continue
			}
			p := float64(c) / n
			mi += p * math.Log(p*n*n/(rows[i]*cols[j]))
		}
	}
	for _, r := range rows {
		if r > 0 {
			p := r / n
			ha -= p * math.Log(p)
		}
	}
	for _, c := range cols {
		if c > 0 {
			p := c / n
			hb -= p * math.Log(p)
		}
	}
	den := (ha + hb) / 2
	if den == 0 {
		return 1 // both partitions trivial and identical
	}
	return mi / den
}

// Purity computes the fraction of points whose cluster's majority true
// label matches their own (clusters from a, truth from b).
func Purity(clusters, truth []int32) float64 {
	table, na, _ := Contingency(clusters, truth)
	if na == 0 {
		return 0
	}
	var n, correct int64
	for i := range table {
		var best int64
		for _, c := range table[i] {
			n += c
			if c > best {
				best = c
			}
		}
		correct += best
	}
	if n == 0 {
		return 0
	}
	return float64(correct) / float64(n)
}

// Accuracy computes exact label agreement (no relabeling) over positions
// where both labelings are known (>= 0).
func Accuracy(pred, truth []int32) float64 {
	if len(pred) != len(truth) {
		panic("cluster: labeling length mismatch")
	}
	var n, ok int
	for i := range pred {
		if pred[i] < 0 || truth[i] < 0 {
			continue
		}
		n++
		if pred[i] == truth[i] {
			ok++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(ok) / float64(n)
}
