package cluster

import (
	"math"
	"sort"

	"repro/internal/mat"
	"repro/internal/parallel"
)

// Metric selects the distance for TopK.
type Metric int

const (
	// L2 is the Euclidean distance between embedding rows.
	L2 Metric = iota
	// Cosine is the cosine distance 1 − cos(a, b) ∈ [0, 2]. A zero row
	// has no direction; its distance to anything is defined as 1
	// (indifferent), so unembedded vertices neither attract nor repel.
	Cosine
)

// Neighbor is one TopK result: a row index and its distance to the
// query under the requested metric.
type Neighbor struct {
	V    int
	Dist float64
}

// TopK returns the k rows of X nearest to query under the metric,
// sorted by ascending distance (ties by ascending row id), excluding
// row `exclude` (pass a negative value to keep every row). Brute force
// in parallel: the rows are split across workers, each maintains a
// k-bounded max-heap (partial selection — no worker sorts its whole
// range), and the per-worker survivors are merged at the end. This is
// the serving layer's nearest-neighbor read: exact, index-free, and
// O(nK/workers + k log k) per query against an immutable snapshot.
func TopK(workers int, X *mat.Dense, query []float64, k int, m Metric, exclude int) []Neighbor {
	n := X.R
	if len(query) != X.C {
		panic("cluster: query width mismatch")
	}
	if k <= 0 || n == 0 {
		return nil
	}
	// Normalize up front so an out-of-range Metric value behaves as the
	// documented default (L2) everywhere — including the final sqrt —
	// instead of silently returning squared distances.
	if m != Cosine {
		m = L2
	}
	qNorm := queryNorm(query, m)
	w := parallel.Workers(workers)
	if w > n {
		w = n
	}
	locals := make([][]Neighbor, w)
	parallel.ForStatic(w, n, func(worker, lo, hi int) {
		h := make([]Neighbor, 0, k)
		for v := lo; v < hi; v++ {
			if v == exclude {
				continue
			}
			h = pushNeighbor(h, k, Neighbor{V: v, Dist: rowDist(X.Row(v), query, m, qNorm)})
		}
		locals[worker] = h
	})
	var all []Neighbor
	for _, h := range locals {
		all = append(all, h...)
	}
	return finalizeNeighbors(all, k, m)
}

// MergeNeighbors merges already-finalized per-partition result lists
// (as returned by TopK or IVF.Search over disjoint row sets) into one
// k-bounded list under the same order: ascending distance, ties by
// ascending id. The lists carry final distances — no metric parameter
// and no deferred sqrt — so this is the scatter-gather reduce of the
// sharded /v1/neighbors path: each shard ranks its owned rows, the
// router merges the partials with the same k-bounded heap.
func MergeNeighbors(k int, lists ...[]Neighbor) []Neighbor {
	if k <= 0 {
		return nil
	}
	var h []Neighbor
	for _, l := range lists {
		for _, nb := range l {
			h = pushNeighbor(h, k, nb)
		}
	}
	sort.Slice(h, func(i, j int) bool { return worse(h[j], h[i]) })
	return h
}

// queryNorm precomputes the query's norm for Cosine (a zero query is
// indifferent to everything — all distances 1 — which rowDist handles
// by construction); L2 needs nothing.
func queryNorm(query []float64, m Metric) float64 {
	if m != Cosine {
		return 0
	}
	var s float64
	for _, v := range query {
		s += v * v
	}
	return math.Sqrt(s)
}

// rowDist is the per-candidate distance both the exact scan and the
// IVF list probes rank by: *squared* L2 (the sqrt is deferred to
// finalizeNeighbors — one per survivor beats one per row) or the
// cosine distance 1 − cos.
func rowDist(row, query []float64, m Metric, qNorm float64) float64 {
	if m == Cosine {
		var dot, norm float64
		for c, x := range row {
			dot += x * query[c]
			norm += x * x
		}
		if denom := math.Sqrt(norm) * qNorm; denom > 0 {
			return 1 - dot/denom
		}
		return 1
	}
	var d float64
	for c, x := range row {
		diff := x - query[c]
		d += diff * diff
	}
	return d
}

// pushNeighbor keeps h a k-bounded worst-at-root heap of the nearest
// candidates seen so far (partial selection — nothing is ever sorted
// until the k survivors are merged).
func pushNeighbor(h []Neighbor, k int, nb Neighbor) []Neighbor {
	if len(h) < k {
		h = append(h, nb)
		siftUp(h, len(h)-1)
	} else if worse(h[0], nb) {
		h[0] = nb
		siftDown(h, 0)
	}
	return h
}

// finalizeNeighbors merges per-worker survivors into the final result:
// ascending sort, truncate to k, and the deferred sqrt for L2 (the
// heaps ran on squared distances).
func finalizeNeighbors(all []Neighbor, k int, m Metric) []Neighbor {
	sort.Slice(all, func(i, j int) bool { return worse(all[j], all[i]) })
	if len(all) > k {
		all = all[:k]
	}
	if m == L2 {
		for i := range all {
			all[i].Dist = math.Sqrt(all[i].Dist)
		}
	}
	return all
}

// worse reports whether a ranks strictly after b: farther, or equally
// far with a higher id. It is both the heap order (root = worst kept)
// and, negated, the output order.
func worse(a, b Neighbor) bool {
	if a.Dist != b.Dist {
		return a.Dist > b.Dist
	}
	return a.V > b.V
}

// siftUp/siftDown maintain a worst-at-root heap of Neighbors — inlined
// rather than container/heap so the hot per-row replacement does not
// box a value per candidate.
func siftUp(h []Neighbor, i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !worse(h[i], h[p]) {
			return
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

func siftDown(h []Neighbor, i int) {
	n := len(h)
	for {
		worst := i
		if l := 2*i + 1; l < n && worse(h[l], h[worst]) {
			worst = l
		}
		if r := 2*i + 2; r < n && worse(h[r], h[worst]) {
			worst = r
		}
		if worst == i {
			return
		}
		h[i], h[worst] = h[worst], h[i]
		i = worst
	}
}
