package cluster

import (
	"math"
	"sort"
	"testing"

	"repro/internal/mat"
	"repro/internal/xrand"
)

// bruteTopK is the oracle: compute every distance, full sort, take k.
func bruteTopK(X *mat.Dense, query []float64, k int, m Metric, exclude int) []Neighbor {
	var qNorm float64
	for _, v := range query {
		qNorm += v * v
	}
	qNorm = math.Sqrt(qNorm)
	var all []Neighbor
	for v := 0; v < X.R; v++ {
		if v == exclude {
			continue
		}
		row := X.Row(v)
		var d float64
		if m == Cosine {
			var dot, norm float64
			for c, x := range row {
				dot += x * query[c]
				norm += x * x
			}
			if denom := math.Sqrt(norm) * qNorm; denom > 0 {
				d = 1 - dot/denom
			} else {
				d = 1
			}
		} else {
			for c, x := range row {
				diff := x - query[c]
				d += diff * diff
			}
			d = math.Sqrt(d)
		}
		all = append(all, Neighbor{V: v, Dist: d})
	}
	sort.Slice(all, func(i, j int) bool { return worse(all[j], all[i]) })
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// TestTopKMatchesBruteForce checks the parallel partial-selection
// result equals a full sort for both metrics across worker counts, k
// values, and with/without self-exclusion.
func TestTopKMatchesBruteForce(t *testing.T) {
	const n, dim = 300, 6
	r := xrand.New(41)
	X := mat.NewDense(n, dim)
	for i := range X.Data {
		X.Data[i] = r.Float64()*2 - 1
	}
	// A few duplicate and zero rows to exercise ties and the zero-norm
	// cosine convention.
	copy(X.Row(10), X.Row(20))
	for c := range X.Row(30) {
		X.Row(30)[c] = 0
	}
	for _, m := range []Metric{L2, Cosine} {
		for _, workers := range []int{1, 3, 8} {
			for _, k := range []int{1, 7, n, n + 5} {
				for _, exclude := range []int{-1, 17} {
					query := X.Row(17)
					got := TopK(workers, X, query, k, m, exclude)
					want := bruteTopK(X, query, k, m, exclude)
					if len(got) != len(want) {
						t.Fatalf("m=%d w=%d k=%d excl=%d: %d results, want %d",
							m, workers, k, exclude, len(got), len(want))
					}
					for i := range want {
						if got[i].V != want[i].V || math.Abs(got[i].Dist-want[i].Dist) > 1e-12 {
							t.Fatalf("m=%d w=%d k=%d excl=%d: result %d = %+v, want %+v",
								m, workers, k, exclude, i, got[i], want[i])
						}
					}
				}
			}
		}
	}
}

// TestTopKBasics pins the contract details: ascending order, self
// exclusion, exact-match neighbor first under both metrics, k=0 and
// empty input.
func TestTopKBasics(t *testing.T) {
	X := mat.FromRows([][]float64{
		{0, 0}, {1, 0}, {2, 0}, {0, 3}, {1, 0},
	})
	got := TopK(2, X, X.Row(1), 3, L2, 1)
	// Row 4 duplicates row 1: distance 0 first; then row 0 and row 2 at
	// distance 1, tie broken by id.
	if len(got) != 3 || got[0].V != 4 || got[0].Dist != 0 || got[1].V != 0 || got[2].V != 2 {
		t.Fatalf("L2 neighbors of row 1: %+v", got)
	}
	for i := 1; i < len(got); i++ {
		if worse(got[i-1], got[i]) {
			t.Fatalf("results not ascending: %+v", got)
		}
	}
	// Cosine: rows 1, 2, 4 are colinear (distance 0); excluding the
	// query row keeps the other two, ordered by id.
	got = TopK(2, X, X.Row(1), 2, Cosine, 1)
	if len(got) != 2 || got[0].V != 2 || got[1].V != 4 || got[0].Dist != 0 {
		t.Fatalf("cosine neighbors of row 1: %+v", got)
	}
	if TopK(2, X, X.Row(0), 0, L2, -1) != nil {
		t.Fatal("k=0 returned results")
	}
	if TopK(2, mat.NewDense(0, 2), []float64{0, 0}, 3, L2, -1) != nil {
		t.Fatal("empty matrix returned results")
	}
}
