package cluster_test

// The IVF property tests live in an external test package so they can
// embed real SBM graphs through internal/gee (which itself imports
// cluster for its refinement loop).

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/gee"
	"repro/internal/gen"
	"repro/internal/mat"
	"repro/internal/xrand"
)

// sbmEmbedding builds the clustered workload the serving layer indexes:
// an SBM graph embedded by GEE with full labels, n rows in k tight
// class blobs.
func sbmEmbedding(t *testing.T, n, k int, seed uint64) *mat.Dense {
	t.Helper()
	el, yTrue := gen.SBM(0, n, k, 0.02, 0.002, seed)
	res, err := gee.Embed(gee.Reference, el, yTrue, gee.Options{K: k})
	if err != nil {
		t.Fatal(err)
	}
	return res.Z
}

// recallAt scores approx against the exact oracle with a distance-eps
// tie rule: a returned neighbor counts if it is at least as near as the
// oracle's k-th survivor (embedding rows carry exact ties — discrete
// neighbor-class counts — so id-level set comparison would punish
// legitimate tie-breaking).
func recallAt(approx, exact []cluster.Neighbor) float64 {
	if len(exact) == 0 {
		return 1
	}
	kth := exact[len(exact)-1].Dist
	eps := 1e-12 + 1e-12*math.Abs(kth)
	hits := 0
	for _, a := range approx {
		if a.Dist <= kth+eps {
			hits++
		}
	}
	if hits > len(exact) {
		hits = len(exact)
	}
	return float64(hits) / float64(len(exact))
}

// TestIVFRecallOnSBMEmbedding is the randomized acceptance property:
// over several SBM draws and both metrics, approx search at the
// *default* nprobe reaches recall@10 ≥ 0.9 against the brute-force
// oracle, and probing every list reproduces the oracle exactly.
func TestIVFRecallOnSBMEmbedding(t *testing.T) {
	const n, k, topk, queries = 4000, 8, 10, 60
	for _, seed := range []uint64{3, 17, 101} {
		Z := sbmEmbedding(t, n, k, seed)
		ix := cluster.BuildIVF(0, Z, cluster.IVFOptions{Seed: seed})
		if ix.Exact() {
			t.Fatalf("seed %d: n=%d built an exact-fallback index", seed, n)
		}
		if ix.Lists() < 2 || ix.NProbe() >= ix.Lists() {
			t.Fatalf("seed %d: degenerate index: %d lists, nprobe %d", seed, ix.Lists(), ix.NProbe())
		}
		r := xrand.New(seed + 9)
		for _, m := range []cluster.Metric{cluster.L2, cluster.Cosine} {
			var recall float64
			for q := 0; q < queries; q++ {
				v := r.Intn(n)
				exact := cluster.TopK(0, Z, Z.Row(v), topk, m, v)
				approx := ix.Search(0, Z.Row(v), topk, m, v, 0)
				recall += recallAt(approx, exact)

				// Probing every list must be the oracle, id for id.
				full := ix.Search(0, Z.Row(v), topk, m, v, ix.Lists())
				if len(full) != len(exact) {
					t.Fatalf("seed %d m=%d v=%d: full probe returned %d, oracle %d",
						seed, m, v, len(full), len(exact))
				}
				for i := range exact {
					if full[i] != exact[i] {
						t.Fatalf("seed %d m=%d v=%d: full probe[%d]=%+v, oracle %+v",
							seed, m, v, i, full[i], exact[i])
					}
				}
			}
			recall /= queries
			t.Logf("seed %d metric %d: recall@%d = %.3f at nprobe %d/%d",
				seed, m, topk, recall, ix.NProbe(), ix.Lists())
			if recall < 0.9 {
				t.Fatalf("seed %d metric %d: recall@%d = %.3f < 0.9 at default nprobe %d/%d lists",
					seed, m, topk, recall, ix.NProbe(), ix.Lists())
			}
		}
	}
}

// TestIVFExactFallback pins the small-n contract: below ExactRows the
// index degenerates to the exact scan and Search equals TopK exactly.
func TestIVFExactFallback(t *testing.T) {
	const n, dim, topk = 300, 6, 7
	r := xrand.New(77)
	X := mat.NewDense(n, dim)
	for i := range X.Data {
		X.Data[i] = r.Float64()*2 - 1
	}
	ix := cluster.BuildIVF(0, X, cluster.IVFOptions{})
	if !ix.Exact() || ix.Lists() != 0 {
		t.Fatalf("n=%d below DefaultIVFExactRows should fall back: exact=%v lists=%d",
			n, ix.Exact(), ix.Lists())
	}
	for _, m := range []cluster.Metric{cluster.L2, cluster.Cosine} {
		got := ix.Search(0, X.Row(3), topk, m, 3, 0)
		want := cluster.TopK(0, X, X.Row(3), topk, m, 3)
		if len(got) != len(want) {
			t.Fatalf("metric %d: %d results, want %d", m, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("metric %d result %d: %+v, want %+v", m, i, got[i], want[i])
			}
		}
	}
	// ExactRows < 0 forces a real index even on tiny data.
	forced := cluster.BuildIVF(0, X, cluster.IVFOptions{ExactRows: -1, Lists: 6})
	if forced.Exact() || forced.Lists() != 6 {
		t.Fatalf("forced index: exact=%v lists=%d", forced.Exact(), forced.Lists())
	}
	if got := forced.Search(0, X.Row(0), 3, cluster.L2, -1, 2); len(got) != 3 {
		t.Fatalf("forced index search returned %d results", len(got))
	}
}

// TestIVFDeterministic: same inputs, same index, same answers — the
// serving layer relies on rebuilds being reproducible for a given
// snapshot.
func TestIVFDeterministic(t *testing.T) {
	Z := sbmEmbedding(t, 2000, 5, 11)
	a := cluster.BuildIVF(0, Z, cluster.IVFOptions{ExactRows: -1, Seed: 4})
	b := cluster.BuildIVF(3, Z, cluster.IVFOptions{ExactRows: -1, Seed: 4})
	if a.Lists() != b.Lists() || a.NProbe() != b.NProbe() {
		t.Fatalf("shape drifted: %d/%d vs %d/%d lists/nprobe", a.Lists(), a.NProbe(), b.Lists(), b.NProbe())
	}
	r := xrand.New(5)
	for q := 0; q < 20; q++ {
		v := r.Intn(2000)
		ra := a.Search(0, Z.Row(v), 10, cluster.L2, v, 0)
		rb := b.Search(4, Z.Row(v), 10, cluster.L2, v, 0)
		if len(ra) != len(rb) {
			t.Fatalf("v=%d: %d vs %d results", v, len(ra), len(rb))
		}
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("v=%d result %d: %+v vs %+v", v, i, ra[i], rb[i])
			}
		}
	}
}
