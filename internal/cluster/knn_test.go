package cluster

import (
	"math"
	"testing"

	"repro/internal/mat"
)

func TestKNNClassifyBlobs(t *testing.T) {
	X, truth := blobs(3, 100, 4, 8, 21)
	// mask 80% of the labels
	y := make([]int32, len(truth))
	for i := range y {
		if i%5 == 0 {
			y[i] = truth[i]
		} else {
			y[i] = -1
		}
	}
	pred := KNNClassify(8, X, y, 5)
	if acc := Accuracy(pred, truth); acc < 0.98 {
		t.Fatalf("kNN accuracy %v on separated blobs", acc)
	}
}

func TestKNNClassifyK1Exact(t *testing.T) {
	X := mat.FromRows([][]float64{{0}, {0.1}, {10}, {10.1}})
	y := []int32{0, -1, 1, -1}
	pred := KNNClassify(2, X, y, 1)
	// Unlabeled rows take their nearest training label; labeled rows
	// exclude themselves, so each takes the OTHER training point's label.
	want := []int32{1, 0, 0, 1}
	for i := range want {
		if pred[i] != want[i] {
			t.Fatalf("pred=%v want %v", pred, want)
		}
	}
}

func TestKNNClassifyNoTraining(t *testing.T) {
	X := mat.FromRows([][]float64{{1}, {2}})
	pred := KNNClassify(2, X, []int32{-1, -1}, 3)
	if pred[0] != -1 || pred[1] != -1 {
		t.Fatalf("pred=%v want all -1", pred)
	}
}

func TestKNNClassifyExcludesSelf(t *testing.T) {
	// two labeled points of different classes: each must predict the
	// OTHER's class with k=1 (self excluded)
	X := mat.FromRows([][]float64{{0}, {1}})
	y := []int32{0, 1}
	pred := KNNClassify(1, X, y, 1)
	if pred[0] != 1 || pred[1] != 0 {
		t.Fatalf("pred=%v (self not excluded?)", pred)
	}
}

func TestKNNClassifyKLargerThanTraining(t *testing.T) {
	X := mat.FromRows([][]float64{{0}, {0.5}, {9}})
	y := []int32{0, 0, -1}
	pred := KNNClassify(1, X, y, 50)
	if pred[2] != 0 {
		t.Fatalf("pred=%v", pred)
	}
}

func TestKNNPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	KNNClassify(1, mat.NewDense(2, 1), []int32{0}, 1)
}

func TestSilhouetteSeparatedBlobs(t *testing.T) {
	X, truth := blobs(3, 50, 3, 10, 31)
	s := Silhouette(8, X, truth)
	if s < 0.8 {
		t.Fatalf("silhouette %v on well-separated blobs", s)
	}
}

func TestSilhouetteRandomAssignmentLow(t *testing.T) {
	X, truth := blobs(3, 50, 3, 10, 33)
	bad := make([]int32, len(truth))
	for i := range bad {
		bad[i] = int32(i % 3) // ignores the real structure
	}
	sGood := Silhouette(4, X, truth)
	sBad := Silhouette(4, X, bad)
	if sBad >= sGood {
		t.Fatalf("random assignment silhouette %v >= true %v", sBad, sGood)
	}
	if math.Abs(sBad) > 0.2 {
		t.Fatalf("random silhouette %v should be near 0", sBad)
	}
}

func TestSilhouetteDegenerate(t *testing.T) {
	X := mat.FromRows([][]float64{{1}, {2}, {3}})
	if s := Silhouette(2, X, []int32{0, 0, 0}); s != 0 {
		t.Fatalf("single cluster silhouette %v", s)
	}
	if s := Silhouette(2, X, []int32{-1, -1, -1}); s != 0 {
		t.Fatalf("unassigned silhouette %v", s)
	}
}

func TestSilhouettePanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Silhouette(1, mat.NewDense(3, 1), []int32{0})
}
