package cluster

import (
	"math"
	"sort"

	"repro/internal/mat"
	"repro/internal/parallel"
	"repro/internal/xrand"
)

// Inverted-file (IVF) approximate nearest-neighbor index over an
// immutable embedding snapshot. k-means centroids partition the rows
// into nlist inverted lists; a query ranks the centroids under its
// metric, probes the nprobe nearest lists with the same k-bounded
// partial-selection heaps the exact TopK scan uses, and merges the
// survivors. Cost per query drops from O(nK) to roughly
// O(nlist·K + nprobe·(n/nlist)·K) at the price of recall: a true
// neighbor living in an unprobed list is missed. The serving layer
// measures that trade-off (recall@k vs p50) and the defaults below
// target recall@10 ≥ 0.9 on clustered embedding data.

// DefaultIVFExactRows is the row count under which an IVF index
// degenerates to the exact scan: the centroid pass plus probe overhead
// only pays for itself once the matrix is large enough that scanning
// it all is the dominant cost.
const DefaultIVFExactRows = 1024

// IVFOptions configures BuildIVF. The zero value selects defaults
// suited to serving embedding snapshots.
type IVFOptions struct {
	// Lists is the number of inverted lists (k-means centroids);
	// <= 0 selects ~sqrt(n).
	Lists int
	// NProbe is the default number of lists a Search probes when the
	// caller passes nprobe <= 0; <= 0 selects max(4, Lists/8).
	NProbe int
	// ExactRows is the row count under which Build skips clustering
	// and Search delegates to the exact TopK scan. 0 selects
	// DefaultIVFExactRows; negative forces an index at any size.
	ExactRows int
	// TrainRows bounds the k-means training sample: above it the
	// centroids are fit on a random row sample and only the final
	// list assignment sees every row (one pass). <= 0 selects 16384.
	TrainRows int
	// MaxIter bounds the k-means iterations. An IVF partition does not
	// need a converged clustering — it needs cells of roughly uniform
	// occupancy — so this stays small. <= 0 selects 8.
	MaxIter int
	// Seed drives the k-means seeding and training sample.
	Seed uint64
}

// IVF is a built index. It is immutable after BuildIVF and safe for
// concurrent Search calls; it retains a reference to the indexed
// matrix (rows are read at query time, never copied).
type IVF struct {
	x      *mat.Dense
	cent   *mat.Dense // nlist × dim centroids (nil in exact mode)
	lists  [][]int32  // row ids per centroid
	nprobe int        // default probe count
	exact  bool       // small-n fallback: Search is a plain TopK
}

// BuildIVF clusters the rows of X into inverted lists. Deterministic
// for a given seed and independent of the worker count. X must not be
// mutated afterwards (the index reads it at query time) — the serving
// layer indexes published copy-on-epoch snapshots, which are immutable
// by contract.
func BuildIVF(workers int, X *mat.Dense, opts IVFOptions) *IVF {
	n := X.R
	exactRows := opts.ExactRows
	if exactRows == 0 {
		exactRows = DefaultIVFExactRows
	}
	if exactRows > 0 && n < exactRows {
		return &IVF{x: X, exact: true}
	}
	nlist := opts.Lists
	if nlist <= 0 {
		nlist = int(math.Sqrt(float64(n)))
	}
	if nlist < 1 {
		nlist = 1
	}
	if nlist > n {
		nlist = n
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = 8
	}
	trainRows := opts.TrainRows
	if trainRows <= 0 {
		trainRows = 16384
	}
	// Fit centroids on a bounded sample: k-means is O(iter·rows·nlist·K)
	// and the partition only needs cell shapes, not per-row convergence.
	train := X
	if n > trainRows {
		r := xrand.NewStream(opts.Seed, 7)
		train = mat.NewDense(trainRows, X.C)
		for i := 0; i < trainRows; i++ {
			copy(train.Row(i), X.Row(r.Intn(n)))
		}
	}
	cent := KMeans(workers, train, nlist, opts.Seed, maxIter).Centroids
	nlist = cent.R // KMeans clamps k to its row count

	// Assign every row to its nearest centroid (one parallel pass) and
	// bucket the ids. Deterministic: the merge walks workers in order.
	assign := make([]int32, n)
	parallel.ForStatic(parallel.Workers(workers), n, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			row := X.Row(v)
			best, bd := int32(0), math.Inf(1)
			for c := 0; c < nlist; c++ {
				if d := sqDist(row, cent.Row(c)); d < bd {
					best, bd = int32(c), d
				}
			}
			assign[v] = best
		}
	})
	counts := make([]int32, nlist)
	for _, c := range assign {
		counts[c]++
	}
	flat := make([]int32, n) // one backing array, not nlist small ones
	lists := make([][]int32, nlist)
	off := int32(0)
	for c, cnt := range counts {
		lists[c] = flat[off : off : off+cnt]
		off += cnt
	}
	for v, c := range assign {
		lists[c] = append(lists[c], int32(v))
	}
	nprobe := opts.NProbe
	if nprobe <= 0 {
		nprobe = nlist / 8
		if nprobe < 4 {
			nprobe = 4
		}
	}
	if nprobe > nlist {
		nprobe = nlist
	}
	return &IVF{x: X, cent: cent, lists: lists, nprobe: nprobe}
}

// Exact reports whether the index degenerated to the exact scan (the
// matrix was below ExactRows).
func (ix *IVF) Exact() bool { return ix.exact }

// Lists returns the number of inverted lists (0 in exact mode).
func (ix *IVF) Lists() int { return len(ix.lists) }

// NProbe returns the default probe count a Search with nprobe <= 0
// uses (0 in exact mode).
func (ix *IVF) NProbe() int { return ix.nprobe }

// Rows returns the number of indexed rows.
func (ix *IVF) Rows() int { return ix.x.R }

// Search returns the k indexed rows nearest to query under the metric,
// ascending by distance (ties by ascending row id), excluding row
// `exclude` (negative keeps every row) — the same contract as TopK,
// approximately: only the nprobe lists whose centroids rank nearest to
// the query are scanned. nprobe <= 0 selects the index default;
// nprobe >= Lists() (and an exact-mode index) is a genuinely exact
// answer via TopK.
func (ix *IVF) Search(workers int, query []float64, k int, m Metric, exclude, nprobe int) []Neighbor {
	if m != Cosine {
		m = L2
	}
	if nprobe <= 0 {
		nprobe = ix.nprobe
	}
	if ix.exact || nprobe >= len(ix.lists) {
		return TopK(workers, ix.x, query, k, m, exclude)
	}
	if len(query) != ix.x.C {
		panic("cluster: query width mismatch")
	}
	if k <= 0 || ix.x.R == 0 {
		return nil
	}
	qNorm := queryNorm(query, m)
	// Rank the centroids under the query's metric; nlist ~ sqrt(n), so
	// a serial pass and sort are noise next to the list scans.
	order := make([]Neighbor, len(ix.lists))
	for c := range ix.lists {
		order[c] = Neighbor{V: c, Dist: rowDist(ix.cent.Row(c), query, m, qNorm)}
	}
	sort.Slice(order, func(i, j int) bool { return worse(order[j], order[i]) })

	// Scan the chosen lists with per-worker k-bounded heaps, exactly
	// like the TopK full scan but over ~nprobe/nlist of the rows.
	w := parallel.Workers(workers)
	if w > nprobe {
		w = nprobe
	}
	locals := make([][]Neighbor, w)
	parallel.ForStatic(w, nprobe, func(worker, lo, hi int) {
		h := make([]Neighbor, 0, k)
		for li := lo; li < hi; li++ {
			for _, v32 := range ix.lists[order[li].V] {
				v := int(v32)
				if v == exclude {
					continue
				}
				h = pushNeighbor(h, k, Neighbor{V: v, Dist: rowDist(ix.x.Row(v), query, m, qNorm)})
			}
		}
		locals[worker] = h
	})
	var all []Neighbor
	for _, h := range locals {
		all = append(all, h...)
	}
	return finalizeNeighbors(all, k, m)
}
