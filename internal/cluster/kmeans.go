// Package cluster provides embedding evaluation machinery: parallel
// k-means (the clustering step of the GEE paper's unsupervised pipeline)
// and label-agreement metrics (ARI, NMI, purity) used to validate that
// the embeddings this library produces actually recover structure.
package cluster

import (
	"math"

	"repro/internal/mat"
	"repro/internal/parallel"
	"repro/internal/xrand"
)

// KMeansResult holds the output of Lloyd's algorithm.
type KMeansResult struct {
	Assign    []int32    // cluster of each row
	Centroids *mat.Dense // k x dim
	Inertia   float64    // sum of squared distances to assigned centroid
	Iters     int
}

// KMeans clusters the rows of X into k clusters with k-means++ seeding
// and parallel Lloyd iterations. Deterministic for a given seed and
// independent of the worker count.
func KMeans(workers int, X *mat.Dense, k int, seed uint64, maxIter int) *KMeansResult {
	n, dim := X.R, X.C
	if k <= 0 || n == 0 {
		return &KMeansResult{Assign: make([]int32, n), Centroids: mat.NewDense(0, dim)}
	}
	if k > n {
		k = n
	}
	cent := seedPlusPlus(X, k, seed)
	assign := make([]int32, n)
	for i := range assign {
		assign[i] = -1
	}
	counts := make([]int64, k)
	res := &KMeansResult{Assign: assign, Centroids: cent}
	for iter := 0; iter < maxIter; iter++ {
		res.Iters = iter + 1
		type part struct {
			changed int64
			inertia float64
		}
		p := parallel.Reduce(workers, n, part{}, func(lo, hi int) part {
			var pp part
			for i := lo; i < hi; i++ {
				row := X.Row(i)
				best, bd := int32(0), math.Inf(1)
				for c := 0; c < k; c++ {
					d := sqDist(row, cent.Row(c))
					if d < bd {
						best, bd = int32(c), d
					}
				}
				if assign[i] != best {
					pp.changed++
					assign[i] = best
				}
				pp.inertia += bd
			}
			return pp
		}, func(a, b part) part {
			a.changed += b.changed
			a.inertia += b.inertia
			return a
		})
		res.Inertia = p.inertia
		// recompute centroids: per-worker partial sums, deterministic merge
		w := parallel.Workers(workers)
		partSums := make([][]float64, w)
		partCounts := make([][]int64, w)
		parallel.ForStatic(w, n, func(g, lo, hi int) {
			sums := make([]float64, k*dim)
			cnts := make([]int64, k)
			for i := lo; i < hi; i++ {
				c := int(assign[i])
				cnts[c]++
				row := X.Row(i)
				base := c * dim
				for j, v := range row {
					sums[base+j] += v
				}
			}
			partSums[g] = sums
			partCounts[g] = cnts
		})
		for c := range counts {
			counts[c] = 0
		}
		cent.Zero()
		for g := 0; g < w; g++ {
			if partSums[g] == nil {
				continue
			}
			for c := 0; c < k; c++ {
				counts[c] += partCounts[g][c]
				base := c * dim
				row := cent.Row(c)
				for j := 0; j < dim; j++ {
					row[j] += partSums[g][base+j]
				}
			}
		}
		reseed := xrand.NewStream(seed, uint64(iter)+1000)
		for c := 0; c < k; c++ {
			row := cent.Row(c)
			if counts[c] == 0 {
				// empty cluster: reseed at a random data row
				copy(row, X.Row(reseed.Intn(n)))
				continue
			}
			inv := 1 / float64(counts[c])
			for j := range row {
				row[j] *= inv
			}
		}
		if p.changed == 0 {
			break
		}
	}
	return res
}

// seedPlusPlus picks k initial centroids with the k-means++ D^2 rule.
func seedPlusPlus(X *mat.Dense, k int, seed uint64) *mat.Dense {
	r := xrand.New(seed)
	n, dim := X.R, X.C
	cent := mat.NewDense(k, dim)
	first := r.Intn(n)
	copy(cent.Row(0), X.Row(first))
	d2 := make([]float64, n)
	for i := range d2 {
		d2[i] = sqDist(X.Row(i), cent.Row(0))
	}
	for c := 1; c < k; c++ {
		var total float64
		for _, d := range d2 {
			total += d
		}
		var pick int
		if total <= 0 {
			pick = r.Intn(n)
		} else {
			x := r.Float64() * total
			for i, d := range d2 {
				x -= d
				if x <= 0 {
					pick = i
					break
				}
			}
		}
		copy(cent.Row(c), X.Row(pick))
		for i := range d2 {
			if d := sqDist(X.Row(i), cent.Row(c)); d < d2[i] {
				d2[i] = d
			}
		}
	}
	return cent
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}
