package cluster

import (
	"container/heap"
	"math"

	"repro/internal/mat"
	"repro/internal/parallel"
)

// KNNClassify predicts a label for every row of X by majority vote among
// its k nearest labeled rows (Euclidean distance). Rows with label >= 0
// in y are the training set; all rows receive predictions (training rows
// exclude themselves). Brute force, parallel over query rows — suitable
// for the evaluation-sized embeddings in this repository.
//
// This mirrors the GEE paper's evaluation protocol, which scores
// embeddings by semi-supervised vertex classification.
func KNNClassify(workers int, X *mat.Dense, y []int32, k int) []int32 {
	n := X.R
	if len(y) != n {
		panic("cluster: label length mismatch")
	}
	if k <= 0 {
		k = 1
	}
	var train []int
	for i, v := range y {
		if v >= 0 {
			train = append(train, i)
		}
	}
	pred := make([]int32, n)
	if len(train) == 0 {
		for i := range pred {
			pred[i] = -1
		}
		return pred
	}
	parallel.For(workers, n, func(q int) {
		row := X.Row(q)
		h := &distHeap{}
		heap.Init(h)
		for _, t := range train {
			if t == q {
				continue
			}
			d := sqDist(row, X.Row(t))
			if h.Len() < k {
				heap.Push(h, distEntry{d: d, label: y[t]})
			} else if d < (*h)[0].d {
				(*h)[0] = distEntry{d: d, label: y[t]}
				heap.Fix(h, 0)
			}
		}
		votes := map[int32]int{}
		for _, e := range *h {
			votes[e.label]++
		}
		best, bestCount := int32(-1), 0
		for l, c := range votes {
			if c > bestCount || (c == bestCount && (best == -1 || l < best)) {
				best, bestCount = l, c
			}
		}
		pred[q] = best
	})
	return pred
}

// distEntry pairs a squared distance with a training label.
type distEntry struct {
	d     float64
	label int32
}

// distHeap is a max-heap on distance (root = farthest kept neighbor).
type distHeap []distEntry

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].d > h[j].d }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distEntry)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Silhouette computes the mean silhouette coefficient of a clustering
// over the rows of X: (b - a) / max(a, b) per point, where a is the mean
// intra-cluster distance and b the smallest mean distance to another
// cluster. O(n^2·dim) brute force; intended for evaluation-scale data.
// Returns 0 when fewer than 2 clusters are populated.
func Silhouette(workers int, X *mat.Dense, assign []int32) float64 {
	n := X.R
	if len(assign) != n {
		panic("cluster: assignment length mismatch")
	}
	var k int32
	for _, a := range assign {
		if a+1 > k {
			k = a + 1
		}
	}
	if k < 2 {
		return 0
	}
	sizes := make([]int64, k)
	for _, a := range assign {
		if a >= 0 {
			sizes[a]++
		}
	}
	populated := 0
	for _, s := range sizes {
		if s > 0 {
			populated++
		}
	}
	if populated < 2 {
		return 0
	}
	total := parallel.Reduce(workers, n, 0.0, func(lo, hi int) float64 {
		sums := make([]float64, k)
		var acc float64
		for i := lo; i < hi; i++ {
			if assign[i] < 0 {
				continue
			}
			for c := range sums {
				sums[c] = 0
			}
			row := X.Row(i)
			for j := 0; j < n; j++ {
				if j == i || assign[j] < 0 {
					continue
				}
				sums[assign[j]] += math.Sqrt(sqDist(row, X.Row(j)))
			}
			own := assign[i]
			var a float64
			if sizes[own] > 1 {
				a = sums[own] / float64(sizes[own]-1)
			}
			b := math.Inf(1)
			for c := int32(0); c < k; c++ {
				if c == own || sizes[c] == 0 {
					continue
				}
				if m := sums[c] / float64(sizes[c]); m < b {
					b = m
				}
			}
			if sizes[own] <= 1 {
				continue // silhouette undefined; convention: contribute 0
			}
			if mx := math.Max(a, b); mx > 0 {
				acc += (b - a) / mx
			}
		}
		return acc
	}, func(a, b float64) float64 { return a + b })
	return total / float64(n)
}
