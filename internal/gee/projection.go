package gee

import (
	"math"

	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/parallel"
)

// classCounts returns the per-class label counts (Algorithm 1's
// count(Y=k)) computed in parallel.
func classCounts(workers int, y []int32, k int) []int64 {
	return parallel.Histogram(workers, len(y), k, func(i int) int { return int(y[i]) })
}

// projectionCoeffs returns the compressed projection matrix: since row v
// of W has at most one nonzero — W(v, Y(v)) = 1/count(Y=Y(v)) — it is
// stored as one coefficient per vertex (0 for unlabeled vertices). This
// is the optimization the Numba and Ligra implementations share; the
// Reference implementation materializes the full n×K matrix instead.
//
// The parallel initialization is Algorithm 2 lines 3-6: the paper notes
// this O(nk) step dominates the runtime on very low-degree graphs.
func projectionCoeffs(workers int, y []int32, counts []int64) []float64 {
	coeff := make([]float64, len(y))
	parallel.For(workers, len(y), func(i int) {
		if c := y[i]; c >= 0 && counts[c] > 0 {
			coeff[i] = 1 / float64(counts[c])
		}
	})
	return coeff
}

// buildKernel assembles the exec kernel every implementation shares: the
// label vector doubles as both column arrays (unlabeled vertices are
// negative and skip their half-update), the compressed projection
// coefficients carry the magnitudes, and the optional Laplacian degrees
// become the per-vertex scale 1/sqrt(d) whose pairwise product is the
// edge factor 1/sqrt(d(u)·d(v)).
func buildKernel(workers int, y []int32, k int, deg []float64) exec.Kernel[float64] {
	counts := classCounts(workers, y, k)
	return exec.Kernel[float64]{
		Width:  k,
		SrcCol: y,
		DstCol: y,
		Coeff:  projectionCoeffs(workers, y, counts),
		Scale:  invSqrtDegrees(workers, deg),
	}
}

// invSqrtDegrees maps incident degrees to the kernel scale 1/sqrt(d)
// (0 for empty vertices, preserving the zero-degree guard of
// laplacianScale). nil in, nil out.
func invSqrtDegrees(workers int, deg []float64) []float64 {
	if deg == nil {
		return nil
	}
	s := make([]float64, len(deg))
	parallel.For(workers, len(deg), func(i int) {
		if deg[i] > 0 {
			s[i] = 1 / math.Sqrt(deg[i])
		}
	})
	return s
}

// incidentDegreesEdgeList computes each vertex's total incident weight
// under edge-list semantics: every row (u, v, w) contributes w to both
// endpoints. This is the degree the Laplacian variant normalizes by.
func incidentDegreesEdgeList(el *graph.EdgeList) []float64 {
	d := make([]float64, el.N)
	for _, e := range el.Edges {
		d[e.U] += float64(e.W)
		d[e.V] += float64(e.W)
	}
	return d
}

// incidentDegreesCSR is incidentDegreesEdgeList over a CSR whose arcs are
// edge-list rows. Computed with per-worker private accumulators merged
// deterministically, so it is exact and race-free.
func incidentDegreesCSR(workers int, g *graph.CSR) []float64 {
	w := parallel.Workers(workers)
	partials := make([][]float64, w)
	parallel.ForStatic(w, g.N, func(worker, lo, hi int) {
		d := make([]float64, g.N)
		for u := lo; u < hi; u++ {
			for i := g.Offsets[u]; i < g.Offsets[u+1]; i++ {
				wt := float64(g.Weight(i))
				d[u] += wt
				d[g.Targets[i]] += wt
			}
		}
		partials[worker] = d
	})
	out := make([]float64, g.N)
	for _, d := range partials {
		if d == nil {
			continue
		}
		for v, x := range d {
			out[v] += x
		}
	}
	return out
}
