package gee

import (
	"repro/internal/atomicx"
	"repro/internal/graph"
	"repro/internal/ligra"
	"repro/internal/mat"
)

// EmbedFloat32 is the single-precision ablation of LigraParallel: the
// embedding matrix cells are float32, halving the memory traffic of the
// write per edge. The paper argues GEE-Ligra is memory-bound ("two
// fused-multiply adds per edge and two memory writes, one of which is
// likely to miss"), so cell width is the natural knob to test that
// claim — see the ablation benchmarks.
//
// Returns the result widened to float64 for interoperability; quantify
// precision loss against the float64 pipeline with Result.Z.MaxAbsDiff.
func EmbedFloat32(g *graph.CSR, y []int32, opts Options) (*Result, error) {
	k, err := opts.normalize(g.N, y)
	if err != nil {
		return nil, err
	}
	workers := opts.workers()
	counts := classCounts(workers, y, k)
	coeff64 := projectionCoeffs(workers, y, counts)
	coeff := make([]float32, len(coeff64))
	for i, v := range coeff64 {
		coeff[i] = float32(v)
	}
	var deg []float64
	if opts.Laplacian {
		deg = incidentDegreesCSR(workers, g)
	}
	zd := make([]float32, g.N*k)
	update := func(u, v graph.NodeID, w float32) bool {
		wt := w
		if opts.Laplacian {
			wt *= float32(laplacianScale(deg, u, v))
		}
		if yv := y[v]; yv >= 0 {
			atomicx.AddFloat32(&zd[int(u)*k+int(yv)], coeff[v]*wt)
		}
		if yu := y[u]; yu >= 0 {
			atomicx.AddFloat32(&zd[int(v)*k+int(yu)], coeff[u]*wt)
		}
		return false
	}
	ligra.Process(g, ligra.All(g.N), update, ligra.Options{Workers: workers})
	z := mat.NewDense(g.N, k)
	for i, v := range zd {
		z.Data[i] = float64(v)
	}
	return &Result{Z: z, K: k, Impl: LigraParallel}, nil
}
