package gee

import (
	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/mat"
)

// EmbedFloat32 is the single-precision ablation of LigraParallel: the
// embedding matrix cells are float32, halving the memory traffic of the
// write per edge. The paper argues GEE-Ligra is memory-bound ("two
// fused-multiply adds per edge and two memory writes, one of which is
// likely to miss"), so cell width is the natural knob to test that
// claim — see the ablation benchmarks. The variant is the float32
// instantiation of the shared exec kernel under the Atomic strategy.
//
// Returns the result widened to float64 for interoperability; quantify
// precision loss against the float64 pipeline with Result.Z.MaxAbsDiff.
func EmbedFloat32(g *graph.CSR, y []int32, opts Options) (*Result, error) {
	k, err := opts.normalize(g.N, y)
	if err != nil {
		return nil, err
	}
	workers := opts.workers()
	var deg []float64
	if opts.Laplacian {
		deg = incidentDegreesCSR(workers, g)
	}
	kern := exec.Narrow32(buildKernel(workers, y, k, deg))
	zd := make([]float32, g.N*k)
	if _, err := exec.Run(exec.Atomic, g, kern, zd, exec.Options{Workers: workers}); err != nil {
		return nil, err
	}
	z := mat.NewDense(g.N, k)
	for i, v := range zd {
		z.Data[i] = float64(v)
	}
	return &Result{Z: z, K: k, Impl: LigraParallel}, nil
}
