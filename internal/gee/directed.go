package gee

import (
	"fmt"

	"repro/internal/atomicx"
	"repro/internal/graph"
	"repro/internal/ligra"
	"repro/internal/mat"
	"repro/internal/race"
)

// EmbedDirected computes the directed variant from the GEE paper: instead
// of folding both arc directions into one n×K matrix, source and target
// roles get separate halves, producing Z ∈ R^{n×2K}:
//
//	columns [0, K):   out-profile — Z(u, Y(v))   += W(v, Y(v))·w per arc (u→v)
//	columns [K, 2K):  in-profile  — Z(v, K+Y(u)) += W(u, Y(u))·w per arc (u→v)
//
// For asymmetric graphs this preserves the direction information that the
// standard embedding discards (a vertex that only follows class-c
// accounts and one that is only followed by them become distinguishable).
//
// Supported for all Ligra implementations; parallel uses the same atomic
// writeAdd scheme as Algorithm 2.
func EmbedDirected(impl Impl, g *graph.CSR, y []int32, opts Options) (*Result, error) {
	k, err := opts.normalize(g.N, y)
	if err != nil {
		return nil, err
	}
	workers := opts.workers()
	switch impl {
	case LigraSerial:
		workers = 1
	case LigraParallel, LigraParallelUnsafe:
	default:
		return nil, fmt.Errorf("gee: EmbedDirected supports the Ligra implementations, got %v", impl)
	}
	counts := classCounts(workers, y, k)
	coeff := projectionCoeffs(workers, y, counts)
	var deg []float64
	if opts.Laplacian {
		deg = incidentDegreesCSR(workers, g)
	}
	z := mat.NewDense(g.N, 2*k)
	zd := z.Data
	width := 2 * k
	atomic := workers > 1 && (impl == LigraParallel || (impl == LigraParallelUnsafe && race.Enabled))
	update := func(u, v graph.NodeID, w float32) bool {
		wt := float64(w)
		if opts.Laplacian {
			wt *= laplacianScale(deg, u, v)
		}
		if yv := y[v]; yv >= 0 {
			if atomic {
				atomicx.AddFloat64(&zd[int(u)*width+int(yv)], coeff[v]*wt)
			} else {
				zd[int(u)*width+int(yv)] += coeff[v] * wt
			}
		}
		if yu := y[u]; yu >= 0 {
			if atomic {
				atomicx.AddFloat64(&zd[int(v)*width+k+int(yu)], coeff[u]*wt)
			} else {
				zd[int(v)*width+k+int(yu)] += coeff[u] * wt
			}
		}
		return false
	}
	ligra.Process(g, ligra.All(g.N), update, ligra.Options{Workers: workers})
	return &Result{Z: z, K: 2 * k, Impl: impl}, nil
}

// FoldDirected collapses a 2K-wide directed embedding back to the
// standard K-wide one by summing the out- and in-profiles; the result
// equals the undirected Algorithm 1 output on the same arcs.
func FoldDirected(z *mat.Dense) *mat.Dense {
	if z.C%2 != 0 {
		panic("gee: FoldDirected needs an even-width matrix")
	}
	k := z.C / 2
	out := mat.NewDense(z.R, k)
	for i := 0; i < z.R; i++ {
		src := z.Row(i)
		dst := out.Row(i)
		for c := 0; c < k; c++ {
			dst[c] = src[c] + src[k+c]
		}
	}
	return out
}
