package gee

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/mat"
)

// EmbedDirected computes the directed variant from the GEE paper: instead
// of folding both arc directions into one n×K matrix, source and target
// roles get separate halves, producing Z ∈ R^{n×2K}:
//
//	columns [0, K):   out-profile — Z(u, Y(v))   += W(v, Y(v))·w per arc (u→v)
//	columns [K, 2K):  in-profile  — Z(v, K+Y(u)) += W(u, Y(u))·w per arc (u→v)
//
// For asymmetric graphs this preserves the direction information that the
// standard embedding discards (a vertex that only follows class-c
// accounts and one that is only followed by them become distinguishable).
//
// In kernel terms the variant is nothing but a shifted destination
// column array over a doubled width, so every CSR execution strategy is
// supported — including ShardedParallel and Replicated.
func EmbedDirected(impl Impl, g *graph.CSR, y []int32, opts Options) (*Result, error) {
	k, err := opts.normalize(g.N, y)
	if err != nil {
		return nil, err
	}
	strategy, ok := impl.strategy()
	if !ok {
		return nil, fmt.Errorf("gee: EmbedDirected supports the CSR implementations, got %v", impl)
	}
	workers := opts.workers()
	if impl == LigraSerial {
		workers = 1
	}
	var deg []float64
	if opts.Laplacian {
		deg = incidentDegreesCSR(workers, g)
	}
	kern := buildKernel(workers, y, k, deg)
	kern.Width = 2 * k
	// Shift the in-profile updates into the second half of the row.
	dst := make([]int32, g.N)
	for i, c := range y {
		if c >= 0 {
			dst[i] = c + int32(k)
		} else {
			dst[i] = -1
		}
	}
	kern.DstCol = dst
	z := mat.NewDense(g.N, 2*k)
	if _, err := exec.Run(strategy, g, kern, z.Data, exec.Options{Workers: workers}); err != nil {
		return nil, err
	}
	return &Result{Z: z, K: 2 * k, Impl: impl}, nil
}

// FoldDirected collapses a 2K-wide directed embedding back to the
// standard K-wide one by summing the out- and in-profiles; the result
// equals the undirected Algorithm 1 output on the same arcs.
func FoldDirected(z *mat.Dense) *mat.Dense {
	if z.C%2 != 0 {
		panic("gee: FoldDirected needs an even-width matrix")
	}
	k := z.C / 2
	out := mat.NewDense(z.R, k)
	for i := 0; i < z.R; i++ {
		src := z.Row(i)
		dst := out.Row(i)
		for c := 0; c < k; c++ {
			dst[c] = src[c] + src[k+c]
		}
	}
	return out
}
