package gee

import (
	"fmt"
	"time"

	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/ligra"
	"repro/internal/mat"
	"repro/internal/parallel"
)

// csrEmbed is Algorithm 2 (GEE-Ligra) generalized over execution
// strategies: the projection initialization is parallelized (lines 3-6),
// then the whole-arc edge map applies updateEmb to every arc (line 7).
//
// updateEmb (lines 9-12) performs the two writeAdd updates per arc:
//
//	writeAdd(Z(u, Y(v)), W(v, Y(v)) · w)
//	writeAdd(Z(v, Y(u)), W(u, Y(u)) · w)
//
// The math is carried by the shared exec kernel; how the two writes are
// scheduled and made race-free is the implementation's exec strategy
// (gee.Impl.strategy): serial, atomic writeAdd, racy plain adds (the
// paper's ablation), replicated buffers, or destination sharding.
func csrEmbed(g *graph.CSR, y []int32, k int, opts Options, impl Impl) (*mat.Dense, error) {
	return csrEmbedTimed(g, y, k, opts, impl, nil)
}

// Timings records the two phases of Algorithm 2 for the paper's §III
// observation that the O(nk) projection initialization dominates on
// graphs with very low average degree (experiment E6).
type Timings struct {
	WInit   time.Duration // lines 2-6: projection matrix initialization
	EdgeMap time.Duration // line 7: the edge map over all arcs
}

// EmbedCSRTimed is EmbedCSR for the CSR-executing implementations with
// per-phase timing.
func EmbedCSRTimed(impl Impl, g *graph.CSR, y []int32, opts Options) (*Result, *Timings, error) {
	k, err := opts.normalize(g.N, y)
	if err != nil {
		return nil, nil, err
	}
	if _, ok := impl.strategy(); !ok {
		return nil, nil, fmt.Errorf("gee: EmbedCSRTimed supports only the CSR implementations, got %v", impl)
	}
	var tm Timings
	z, err := csrEmbedTimed(g, y, k, opts, impl, &tm)
	if err != nil {
		return nil, nil, err
	}
	return &Result{Z: z, K: k, Impl: impl}, &tm, nil
}

func csrEmbedTimed(g *graph.CSR, y []int32, k int, opts Options, impl Impl, tm *Timings) (*mat.Dense, error) {
	workers := opts.workers()
	if impl == LigraSerial {
		workers = 1
	}
	// Algorithm 2, lines 3-6: parallel projection initialization,
	// expressed as the shared exec kernel.
	start := time.Now()
	var deg []float64
	if opts.Laplacian {
		deg = incidentDegreesCSR(workers, g)
	}
	kern := buildKernel(workers, y, k, deg)
	// Allocating and first-touching Z is the other O(nK) initialization
	// component. The touch pass is eager and parallel: Go's make()
	// defers page zeroing to first write, which would smear this cost
	// into the edge map phase and (on NUMA machines) place every page on
	// one node; parallel first-touch is the standard HPC idiom Ligra's
	// newA + parallel initialization follows.
	z := mat.NewDense(g.N, k)
	parallel.ForChunk(workers, len(z.Data), 1<<16, func(lo, hi int) {
		d := z.Data[lo:hi]
		for i := range d {
			d[i] = 0
		}
	})
	if tm != nil {
		tm.WInit = time.Since(start)
		start = time.Now()
	}
	strategy, _ := impl.strategy()
	if opts.ForceSparseEdgeMap &&
		(strategy == exec.Serial || strategy == exec.Atomic || strategy == exec.Racy) {
		// Ablation path: frontier-driven sparse traversal instead of the
		// dense per-vertex schedule. Note this breaks the "updates from
		// one vertex's list never race" property, so it is only valid
		// with atomics (or one worker); the racy ablation stays racy on
		// purpose, as in the dense schedule.
		atomic := exec.UsesAtomicAdds(strategy, workers)
		zd := z.Data
		var updateEmb ligra.EdgeFunc
		if atomic {
			apply := kern.AtomicApplier()
			updateEmb = func(u, v graph.NodeID, w float32) bool {
				apply(zd, u, v, w)
				return false
			}
		} else {
			updateEmb = func(u, v graph.NodeID, w float32) bool {
				kern.Apply(zd, u, v, w)
				return false
			}
		}
		ligra.EdgeMap(g, ligra.All(g.N), updateEmb,
			ligra.Options{Workers: workers, ForceSparse: true})
	} else {
		// Algorithm 2, line 7: the edge map over all arcs, under the
		// implementation's write discipline.
		if _, err := exec.Run(strategy, g, kern, z.Data, exec.Options{Workers: workers}); err != nil {
			return nil, err
		}
	}
	if tm != nil {
		tm.EdgeMap = time.Since(start)
	}
	return z, nil
}
