package gee

import (
	"fmt"
	"time"

	"repro/internal/atomicx"
	"repro/internal/graph"
	"repro/internal/ligra"
	"repro/internal/mat"
	"repro/internal/parallel"
	"repro/internal/race"
)

// ligraEmbed is Algorithm 2 (GEE-Ligra): the projection initialization is
// parallelized (lines 3-6), then a single EdgeMap over the whole-graph
// frontier applies updateEmb to every arc (line 7).
//
// updateEmb (lines 9-12) performs the two writeAdd updates per arc:
//
//	writeAdd(Z(u, Y(v)), W(v, Y(v)) · w)
//	writeAdd(Z(v, Y(u)), W(u, Y(u)) · w)
//
// The first update hits Z(u, ·), which edgeMapDense keeps cache-resident
// (all arcs of u are processed by one worker); the second hits Z(v, ·)
// and is the likely cache miss the paper discusses. Races are possible
// only across different source vertices (Figure 1); LigraParallel
// resolves them with the lock-free atomic add, LigraParallelUnsafe
// deliberately does not (the paper's ablation), and LigraSerial runs the
// same code on one worker.
func ligraEmbed(g *graph.CSR, y []int32, k int, opts Options, impl Impl) *mat.Dense {
	return ligraEmbedTimed(g, y, k, opts, impl, nil)
}

// Timings records the two phases of Algorithm 2 for the paper's §III
// observation that the O(nk) projection initialization dominates on
// graphs with very low average degree (experiment E6).
type Timings struct {
	WInit   time.Duration // lines 2-6: projection matrix initialization
	EdgeMap time.Duration // line 7: the edge map over all arcs
}

// EmbedCSRTimed is EmbedCSR for the Ligra implementations with per-phase
// timing.
func EmbedCSRTimed(impl Impl, g *graph.CSR, y []int32, opts Options) (*Result, *Timings, error) {
	k, err := opts.normalize(g.N, y)
	if err != nil {
		return nil, nil, err
	}
	switch impl {
	case LigraSerial, LigraParallel, LigraParallelUnsafe:
	default:
		return nil, nil, fmt.Errorf("gee: EmbedCSRTimed supports only the Ligra implementations, got %v", impl)
	}
	var tm Timings
	z := ligraEmbedTimed(g, y, k, opts, impl, &tm)
	return &Result{Z: z, K: k, Impl: impl}, &tm, nil
}

func ligraEmbedTimed(g *graph.CSR, y []int32, k int, opts Options, impl Impl, tm *Timings) *mat.Dense {
	workers := opts.workers()
	if impl == LigraSerial {
		workers = 1
	}
	// Algorithm 2, lines 3-6: parallel projection initialization.
	start := time.Now()
	counts := classCounts(workers, y, k)
	coeff := projectionCoeffs(workers, y, counts)
	var deg []float64
	if opts.Laplacian {
		deg = incidentDegreesCSR(workers, g)
	}
	// Allocating and first-touching Z is the other O(nK) initialization
	// component. The touch pass is eager and parallel: Go's make()
	// defers page zeroing to first write, which would smear this cost
	// into the edge map phase and (on NUMA machines) place every page on
	// one node; parallel first-touch is the standard HPC idiom Ligra's
	// newA + parallel initialization follows.
	z := mat.NewDense(g.N, k)
	parallel.ForChunk(workers, len(z.Data), 1<<16, func(lo, hi int) {
		d := z.Data[lo:hi]
		for i := range d {
			d[i] = 0
		}
	})
	if tm != nil {
		tm.WInit = time.Since(start)
		start = time.Now()
	}
	zd := z.Data
	frontier := ligra.All(g.N)
	engineOpts := ligra.Options{Workers: workers, ForceSparse: opts.ForceSparseEdgeMap}

	// LigraParallelUnsafe deliberately performs racy plain adds (the
	// paper's atomics-off ablation). Under `-race` builds it upgrades to
	// atomic adds so the detector remains usable repo-wide; the ablation
	// is only meaningful in normal builds anyway (the sanitizer's
	// instrumentation would distort its timing).
	atomic := workers > 1 &&
		(impl == LigraParallel || (impl == LigraParallelUnsafe && race.Enabled))
	var updateEmb ligra.EdgeFunc
	switch {
	case atomic && opts.Laplacian:
		updateEmb = func(u, v graph.NodeID, w float32) bool {
			wt := float64(w) * laplacianScale(deg, u, v)
			if yv := y[v]; yv >= 0 {
				atomicx.AddFloat64(&zd[int(u)*k+int(yv)], coeff[v]*wt)
			}
			if yu := y[u]; yu >= 0 {
				atomicx.AddFloat64(&zd[int(v)*k+int(yu)], coeff[u]*wt)
			}
			return false
		}
	case atomic:
		updateEmb = func(u, v graph.NodeID, w float32) bool {
			wt := float64(w)
			if yv := y[v]; yv >= 0 {
				atomicx.AddFloat64(&zd[int(u)*k+int(yv)], coeff[v]*wt)
			}
			if yu := y[u]; yu >= 0 {
				atomicx.AddFloat64(&zd[int(v)*k+int(yu)], coeff[u]*wt)
			}
			return false
		}
	case opts.Laplacian:
		updateEmb = func(u, v graph.NodeID, w float32) bool {
			wt := float64(w) * laplacianScale(deg, u, v)
			if yv := y[v]; yv >= 0 {
				zd[int(u)*k+int(yv)] += coeff[v] * wt
			}
			if yu := y[u]; yu >= 0 {
				zd[int(v)*k+int(yu)] += coeff[u] * wt
			}
			return false
		}
	default:
		// Plain adds: LigraSerial (single worker, race-free) and
		// LigraParallelUnsafe (racy on purpose).
		updateEmb = func(u, v graph.NodeID, w float32) bool {
			wt := float64(w)
			if yv := y[v]; yv >= 0 {
				zd[int(u)*k+int(yv)] += coeff[v] * wt
			}
			if yu := y[u]; yu >= 0 {
				zd[int(v)*k+int(yu)] += coeff[u] * wt
			}
			return false
		}
	}
	// Algorithm 2, line 7: EdgeMap(updateEmb, frontier = all vertices).
	if opts.ForceSparseEdgeMap {
		// Ablation path: frontier-driven sparse traversal instead of the
		// dense per-vertex schedule. Note this breaks the "updates from
		// one vertex's list never race" property, so it is only valid
		// with atomics (or one worker).
		ligra.EdgeMap(g, frontier, updateEmb, engineOpts)
	} else {
		ligra.Process(g, frontier, updateEmb, engineOpts)
	}
	if tm != nil {
		tm.EdgeMap = time.Since(start)
	}
	return z
}
