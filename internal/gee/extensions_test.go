package gee

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/labels"
)

func TestEmbedCSRTimed(t *testing.T) {
	el := gen.ErdosRenyi(4, 2000, 50_000, 41)
	y := labels.SampleSemiSupervised(el.N, 50, 0.1, 42)
	g := graph.BuildCSR(4, el)
	res, tm, err := EmbedCSRTimed(LigraParallel, g, y, Options{K: 50, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if tm.EdgeMap <= 0 {
		t.Fatalf("timings: %+v", tm)
	}
	ref, err := EmbedCSR(Reference, g, y, Options{K: 50})
	if err != nil {
		t.Fatal(err)
	}
	if !ref.Z.EqualTol(res.Z, 1e-9) {
		t.Fatal("timed run produced wrong embedding")
	}
	if _, _, err := EmbedCSRTimed(Reference, g, y, Options{K: 50}); err == nil {
		t.Fatal("EmbedCSRTimed must reject non-Ligra impls")
	}
}

func TestEmbedReplicatedMatchesReference(t *testing.T) {
	el := gen.RMAT(8, 11, 40_000, gen.Graph500Params, 43)
	y := labels.SampleSemiSupervised(el.N, 20, 0.15, 44)
	g := graph.BuildCSR(8, el)
	ref, err := EmbedCSR(Reference, g, y, Options{K: 20})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 8} {
		rep, err := EmbedReplicated(g, y, Options{K: 20, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !ref.Z.EqualTol(rep.Z, 1e-9) {
			t.Fatalf("workers=%d: replicated differs from reference by %v",
				workers, ref.Z.MaxAbsDiff(rep.Z))
		}
	}
}

func TestEmbedReplicatedLaplacian(t *testing.T) {
	el := gen.ErdosRenyi(4, 400, 6000, 45)
	y := labels.SampleSemiSupervised(el.N, 6, 0.4, 46)
	g := graph.BuildCSR(4, el)
	ref, err := EmbedCSR(Reference, g, y, Options{K: 6, Laplacian: true})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := EmbedReplicated(g, y, Options{K: 6, Workers: 8, Laplacian: true})
	if err != nil {
		t.Fatal(err)
	}
	if !ref.Z.EqualTol(rep.Z, 1e-9) {
		t.Fatal("replicated laplacian differs from reference")
	}
}

func TestEmbedReplicatedErrors(t *testing.T) {
	el := gen.Path(3)
	g := graph.BuildCSR(1, el)
	if _, err := EmbedReplicated(g, []int32{0}, Options{K: 1}); err == nil {
		t.Fatal("label length mismatch accepted")
	}
}
