package gee

import (
	"fmt"

	"repro/internal/graph"
)

// VerifyReport records the outcome of a cross-implementation equivalence
// check against the Reference oracle.
type VerifyReport struct {
	Impl       Impl
	MaxAbsDiff float64
	WithinTol  bool
}

// Verify runs every implementation on (el, y) and compares each against
// the Reference output with a mixed absolute/relative tolerance.
// Parallel atomic adds reorder floating-point summation, so exact
// equality is not expected; tol = 1e-9 comfortably covers reordering for
// the magnitudes GEE produces while still catching genuine logic errors
// (including lost updates, which shift cells by whole contribution
// quanta). The deliberately racy LigraParallelUnsafe is included so
// callers can observe whether races materialized on their input.
func Verify(el *graph.EdgeList, y []int32, opts Options, tol float64) ([]VerifyReport, error) {
	oracle, err := Embed(Reference, el, y, opts)
	if err != nil {
		return nil, fmt.Errorf("gee: reference run: %w", err)
	}
	reports := make([]VerifyReport, 0, len(Impls)-1)
	for _, impl := range Impls[1:] {
		res, err := Embed(impl, el, y, opts)
		if err != nil {
			return nil, fmt.Errorf("gee: %v run: %w", impl, err)
		}
		diff := oracle.Z.MaxAbsDiff(res.Z)
		reports = append(reports, VerifyReport{
			Impl:       impl,
			MaxAbsDiff: diff,
			WithinTol:  oracle.Z.EqualTol(res.Z, tol),
		})
	}
	return reports, nil
}
