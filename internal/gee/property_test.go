package gee

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/mat"
	"repro/internal/xrand"
)

// bruteForce computes Z directly from the definition, independent of any
// implementation structure in this package: for each edge row, look up
// class counts recomputed from scratch and accumulate into a [][]float64.
func bruteForce(el *graph.EdgeList, y []int32, k int) *mat.Dense {
	counts := make([]float64, k)
	for _, c := range y {
		if c >= 0 {
			counts[c]++
		}
	}
	z := mat.NewDense(el.N, k)
	for _, e := range el.Edges {
		if yv := y[e.V]; yv >= 0 {
			z.Add(int(e.U), int(yv), float64(e.W)/counts[yv])
		}
		if yu := y[e.U]; yu >= 0 {
			z.Add(int(e.V), int(yu), float64(e.W)/counts[yu])
		}
	}
	return z
}

// TestPropertyAllImplsMatchBruteForce drives every implementation with
// randomly generated tiny graphs and labelings and compares against the
// definition-level oracle.
func TestPropertyAllImplsMatchBruteForce(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 2 + r.Intn(30)
		k := 1 + r.Intn(5)
		m := r.Intn(120)
		el := &graph.EdgeList{N: n, Weighted: true}
		for i := 0; i < m; i++ {
			el.Edges = append(el.Edges, graph.Edge{
				U: graph.NodeID(r.Intn(n)),
				V: graph.NodeID(r.Intn(n)),
				W: float32(r.Intn(5) + 1),
			})
		}
		y := make([]int32, n)
		anyLabeled := false
		for i := range y {
			if r.Float64() < 0.3 {
				y[i] = -1
			} else {
				y[i] = int32(r.Intn(k))
				anyLabeled = true
			}
		}
		if !anyLabeled {
			y[0] = 0
		}
		want := bruteForce(el, y, k)
		for _, impl := range []Impl{Reference, Optimized, LigraSerial, LigraParallel} {
			res, err := Embed(impl, el, y, Options{K: k, Workers: 4})
			if err != nil {
				t.Logf("seed %d impl %v: %v", seed, impl, err)
				return false
			}
			if !want.EqualTol(res.Z, 1e-9) {
				t.Logf("seed %d impl %v: max diff %v", seed, impl, want.MaxAbsDiff(res.Z))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyPermutationEquivariance: relabeling vertices by a
// permutation must permute embedding rows identically (GEE has no
// positional dependence).
func TestPropertyPermutationEquivariance(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 3 + r.Intn(20)
		k := 1 + r.Intn(4)
		el := &graph.EdgeList{N: n}
		for i := 0; i < 50; i++ {
			el.Edges = append(el.Edges, graph.Edge{
				U: graph.NodeID(r.Intn(n)), V: graph.NodeID(r.Intn(n)), W: 1,
			})
		}
		y := make([]int32, n)
		for i := range y {
			y[i] = int32(r.Intn(k))
		}
		perm := graph.RandomPermutation(n, seed^0xbeef)
		pel := graph.Permute(el, perm)
		py := make([]int32, n)
		for v, p := range perm {
			py[p] = y[v]
		}
		a, err := Embed(Optimized, el, y, Options{K: k})
		if err != nil {
			return false
		}
		b, err := Embed(Optimized, pel, py, Options{K: k})
		if err != nil {
			return false
		}
		for v := 0; v < n; v++ {
			rowA := a.Z.Row(v)
			rowB := b.Z.Row(int(perm[v]))
			for c := range rowA {
				if rowA[c] != rowB[c] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyWeightLinearity: scaling all edge weights by a constant
// scales Z by the same constant (contributions are linear in w).
func TestPropertyWeightLinearity(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 3 + r.Intn(15)
		el := &graph.EdgeList{N: n, Weighted: true}
		for i := 0; i < 40; i++ {
			el.Edges = append(el.Edges, graph.Edge{
				U: graph.NodeID(r.Intn(n)), V: graph.NodeID(r.Intn(n)), W: float32(r.Intn(4) + 1),
			})
		}
		y := make([]int32, n)
		for i := range y {
			y[i] = int32(r.Intn(3))
		}
		scaled := el.Clone()
		for i := range scaled.Edges {
			scaled.Edges[i].W *= 4 // power of two: exact in float
		}
		a, err := Embed(Optimized, el, y, Options{K: 3})
		if err != nil {
			return false
		}
		b, err := Embed(Optimized, scaled, y, Options{K: 3})
		if err != nil {
			return false
		}
		for i := range a.Z.Data {
			if a.Z.Data[i]*4 != b.Z.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEmbedFloat32CloseToFloat64(t *testing.T) {
	r := xrand.New(91)
	n := 1000
	el := &graph.EdgeList{N: n}
	for i := 0; i < 20_000; i++ {
		el.Edges = append(el.Edges, graph.Edge{
			U: graph.NodeID(r.Intn(n)), V: graph.NodeID(r.Intn(n)), W: 1,
		})
	}
	y := make([]int32, n)
	for i := range y {
		y[i] = int32(i % 8)
	}
	g := graph.BuildCSR(4, el)
	f64, err := EmbedCSR(LigraParallel, g, y, Options{K: 8, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	f32, err := EmbedFloat32(g, y, Options{K: 8, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	// cells are sums of ~tens of coeffs around 1/125: float32 relative
	// error stays near 1e-6; 1e-4 is a generous failure threshold.
	if !f64.Z.EqualTol(f32.Z, 1e-4) {
		t.Fatalf("float32 deviates by %v", f64.Z.MaxAbsDiff(f32.Z))
	}
}

func TestEmbedFloat32Validation(t *testing.T) {
	g := graph.BuildCSR(1, &graph.EdgeList{N: 2})
	if _, err := EmbedFloat32(g, []int32{0}, Options{K: 1}); err == nil {
		t.Fatal("label mismatch accepted")
	}
}
