package gee

import (
	"repro/internal/graph"
	"repro/internal/mat"
)

// optimizedEmbed is the Numba-JIT analog (Table I "Numba Serial"): the
// same single pass over the edge list as Algorithm 1, but with the
// projection matrix compressed to one coefficient per vertex, flat
// row-major storage, and no per-access bounds gymnastics — exactly the
// loop a tracing JIT emits for the reference kernel. Serial by
// construction.
func optimizedEmbed(el *graph.EdgeList, y []int32, k int, opts Options) *mat.Dense {
	n := el.N
	counts := make([]int64, k)
	for _, c := range y {
		if c >= 0 {
			counts[c]++
		}
	}
	coeff := make([]float64, n)
	for v, c := range y {
		if c >= 0 && counts[c] > 0 {
			coeff[v] = 1 / float64(counts[c])
		}
	}
	var deg []float64
	if opts.Laplacian {
		deg = incidentDegreesEdgeList(el)
	}
	z := mat.NewDense(n, k)
	zd := z.Data
	kk := k
	for i := range el.Edges {
		e := &el.Edges[i]
		u, v := e.U, e.V
		wt := float64(e.W)
		if opts.Laplacian {
			wt *= laplacianScale(deg, u, v)
		}
		if yv := y[v]; yv >= 0 {
			zd[int(u)*kk+int(yv)] += coeff[v] * wt
		}
		if yu := y[u]; yu >= 0 {
			zd[int(v)*kk+int(yu)] += coeff[u] * wt
		}
	}
	return z
}

// optimizedEmbedCSR runs the optimized serial kernel directly over CSR
// arcs (used by benchmarks to hold the input representation constant
// across implementations).
func optimizedEmbedCSR(g *graph.CSR, y []int32, k int, opts Options) *mat.Dense {
	n := g.N
	counts := make([]int64, k)
	for _, c := range y {
		if c >= 0 {
			counts[c]++
		}
	}
	coeff := make([]float64, n)
	for v, c := range y {
		if c >= 0 && counts[c] > 0 {
			coeff[v] = 1 / float64(counts[c])
		}
	}
	var deg []float64
	if opts.Laplacian {
		deg = incidentDegreesCSR(1, g)
	}
	z := mat.NewDense(n, k)
	zd := z.Data
	for u := 0; u < n; u++ {
		lo, hi := g.Offsets[u], g.Offsets[u+1]
		for i := lo; i < hi; i++ {
			v := g.Targets[i]
			wt := float64(g.Weight(i))
			if opts.Laplacian {
				wt *= laplacianScale(deg, graph.NodeID(u), v)
			}
			if yv := y[v]; yv >= 0 {
				zd[u*k+int(yv)] += coeff[v] * wt
			}
			if yu := y[u]; yu >= 0 {
				zd[int(v)*k+int(yu)] += coeff[u] * wt
			}
		}
	}
	return z
}
