package gee

import (
	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/mat"
)

// optimizedEmbed is the Numba-JIT analog (Table I "Numba Serial"): the
// same single pass over the edge list as Algorithm 1, but with the
// projection matrix compressed to one coefficient per vertex and flat
// row-major storage — exactly the loop a tracing JIT emits for the
// reference kernel. That loop is the shared serial exec kernel; serial
// by construction.
func optimizedEmbed(el *graph.EdgeList, y []int32, k int, opts Options) (*mat.Dense, error) {
	var deg []float64
	if opts.Laplacian {
		deg = incidentDegreesEdgeList(el)
	}
	kern := buildKernel(1, y, k, deg)
	z := mat.NewDense(el.N, k)
	if _, err := exec.SerialEdges(kern, el.Edges, el.N, z.Data); err != nil {
		return nil, err
	}
	return z, nil
}

// optimizedEmbedCSR runs the optimized serial kernel directly over CSR
// arcs (used by benchmarks and EmbedCSR to hold the input representation
// constant across implementations).
func optimizedEmbedCSR(g *graph.CSR, y []int32, k int, opts Options) (*mat.Dense, error) {
	var deg []float64
	if opts.Laplacian {
		deg = incidentDegreesCSR(1, g)
	}
	kern := buildKernel(1, y, k, deg)
	z := mat.NewDense(g.N, k)
	if _, err := exec.Run(exec.Serial, g, kern, z.Data, exec.Options{Workers: 1}); err != nil {
		return nil, err
	}
	return z, nil
}
