package gee

import (
	"repro/internal/atomicx"
	"repro/internal/graph"
	"repro/internal/mat"
)

// EmbedCompressed runs the parallel GEE kernel directly over a Ligra+-
// style compressed graph: adjacency lists are varint-decoded on the fly
// inside the edge map, never materialized. This trades decode ALU work
// for 2-4x less adjacency memory traffic — on a kernel the paper argues
// is memory-bound, that trade is worth measuring (see the compression
// benchmarks). Unweighted graphs only (the compressed format carries no
// weights).
func EmbedCompressed(c *graph.CompressedCSR, y []int32, opts Options) (*Result, error) {
	k, err := opts.normalize(c.N, y)
	if err != nil {
		return nil, err
	}
	workers := opts.workers()
	counts := classCounts(workers, y, k)
	coeff := projectionCoeffs(workers, y, counts)
	z := mat.NewDense(c.N, k)
	zd := z.Data
	if opts.Laplacian {
		// degrees from a streaming pass over the compressed arcs
		deg := make([]float64, c.N)
		c.ProcessEdges(1, func(u, v graph.NodeID) { // serial: plain adds
			deg[u]++
			deg[v]++
		})
		c.ProcessEdges(workers, func(u, v graph.NodeID) {
			wt := laplacianScale(deg, u, v)
			if yv := y[v]; yv >= 0 {
				atomicx.AddFloat64(&zd[int(u)*k+int(yv)], coeff[v]*wt)
			}
			if yu := y[u]; yu >= 0 {
				atomicx.AddFloat64(&zd[int(v)*k+int(yu)], coeff[u]*wt)
			}
		})
		return &Result{Z: z, K: k, Impl: LigraParallel}, nil
	}
	c.ProcessEdges(workers, func(u, v graph.NodeID) {
		if yv := y[v]; yv >= 0 {
			atomicx.AddFloat64(&zd[int(u)*k+int(yv)], coeff[v])
		}
		if yu := y[u]; yu >= 0 {
			atomicx.AddFloat64(&zd[int(v)*k+int(yu)], coeff[u])
		}
	})
	return &Result{Z: z, K: k, Impl: LigraParallel}, nil
}
