package gee

import (
	"repro/internal/graph"
	"repro/internal/mat"
)

// EmbedCompressed runs the parallel GEE kernel directly over a Ligra+-
// style compressed graph: adjacency lists are varint-decoded on the fly
// inside the edge map, never materialized. This trades decode ALU work
// for 2-4x less adjacency memory traffic — on a kernel the paper argues
// is memory-bound, that trade is worth measuring (see the compression
// benchmarks). The per-arc math is the shared exec kernel applied with
// atomic adds (the decoder streams arcs with no ownership structure, so
// the atomic discipline is the only race-free one without bucketing).
// Unweighted graphs only (the compressed format carries no weights).
func EmbedCompressed(c *graph.CompressedCSR, y []int32, opts Options) (*Result, error) {
	k, err := opts.normalize(c.N, y)
	if err != nil {
		return nil, err
	}
	workers := opts.workers()
	var deg []float64
	if opts.Laplacian {
		// degrees from a streaming pass over the compressed arcs
		deg = make([]float64, c.N)
		c.ProcessEdges(1, func(u, v graph.NodeID) { // serial: plain adds
			deg[u]++
			deg[v]++
		})
	}
	kern := buildKernel(workers, y, k, deg)
	z := mat.NewDense(c.N, k)
	zd := z.Data
	apply := kern.AtomicApplier()
	c.ProcessEdges(workers, func(u, v graph.NodeID) {
		apply(zd, u, v, 1)
	})
	// Impl enumerates execution disciplines, not graph representations:
	// this path runs the LigraParallel (atomic) discipline over the
	// compressed form, so that is what the result reports.
	return &Result{Z: z, K: k, Impl: LigraParallel}, nil
}
