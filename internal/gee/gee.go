// Package gee implements the One-Hot Graph Encoder Embedding (GEE) family
// from "Edge-Parallel Graph Encoder Embedding" (IPPS 2024):
//
//   - Reference: the faithful serial transcription of Algorithm 1,
//     including the literal n×K projection matrix W. This is the
//     correctness oracle and the stand-in for the paper's interpreted
//     Python baseline.
//   - Optimized: the Numba-JIT analog — same single pass over edges, but
//     flat preallocated arrays and the W matrix compressed to the one
//     nonzero coefficient per vertex.
//   - LigraSerial / LigraParallel / LigraParallelUnsafe: Algorithm 2 —
//     the edge map formulation over the Ligra engine. Parallel uses
//     lock-free atomic writeAdd (atomicx.AddFloat64); Unsafe is the
//     paper's ablation with atomics off (plain, racy adds).
//   - Replicated: per-worker private copies of Z reduced at the end —
//     the alternative the paper rejects for memory, promoted to a
//     first-class implementation for the ablation that quantifies that
//     choice.
//   - ShardedParallel: a destination-sharded execution where each worker
//     owns a disjoint slice of Z rows and accumulates with plain
//     non-atomic writes — no races, no replicas, no reduction pass. On
//     skewed graphs this removes the CAS-retry serialization that hot
//     rows impose on the atomic version.
//
// All implementations compute the same Z ∈ R^{n×K} on the same inputs
// (up to floating-point summation order in the parallel versions). The
// per-edge math lives once, as an internal/exec kernel; the
// implementations differ only in the exec strategy that runs it.
package gee

import (
	"fmt"
	"runtime"

	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/labels"
	"repro/internal/mat"
)

// Impl selects one of the paper's implementations.
type Impl int

const (
	// Reference is the faithful Algorithm 1 loop (the "GEE-Python" row
	// of Table I).
	Reference Impl = iota
	// Optimized is the compiled flat-array serial version (the "Numba
	// Serial" row).
	Optimized
	// LigraSerial is Algorithm 2 run on one worker (the "GEE-Ligra
	// Serial" row).
	LigraSerial
	// LigraParallel is Algorithm 2 with lock-free atomic updates (the
	// "GEE-Ligra Parallel" row).
	LigraParallel
	// LigraParallelUnsafe is LigraParallel with atomics off — the
	// paper's §IV ablation ("we ran the program with atomics off,
	// performing unsafe updates").
	LigraParallelUnsafe
	// Replicated accumulates into per-worker private copies of Z and
	// reduces them: race-free without atomics, at workers × n × K
	// memory (the alternative the paper's memory argument rejects).
	Replicated
	// ShardedParallel partitions Z rows into degree-balanced shards and
	// routes both half-updates of every edge to the owning worker:
	// race-free plain writes with no replicas and no atomics.
	ShardedParallel
)

// Impls lists every implementation in Table I order plus the ablations
// and the sharded backend.
var Impls = []Impl{Reference, Optimized, LigraSerial, LigraParallel, LigraParallelUnsafe, Replicated, ShardedParallel}

// String names the implementation, following the paper's Table I rows.
func (im Impl) String() string {
	switch im {
	case Reference:
		return "GEE-Reference"
	case Optimized:
		return "Optimized-Serial"
	case LigraSerial:
		return "GEE-Ligra-Serial"
	case LigraParallel:
		return "GEE-Ligra-Parallel"
	case LigraParallelUnsafe:
		return "GEE-Ligra-Unsafe"
	case Replicated:
		return "GEE-Replicated"
	case ShardedParallel:
		return "GEE-Sharded"
	default:
		return fmt.Sprintf("Impl(%d)", int(im))
	}
}

// strategy maps a CSR-executing implementation to its exec strategy.
// The edge-list implementations (Reference, Optimized) report ok=false:
// they run exec.SerialEdges over E directly.
func (im Impl) strategy() (exec.Strategy, bool) {
	switch im {
	case LigraSerial:
		return exec.Serial, true
	case LigraParallel:
		return exec.Atomic, true
	case LigraParallelUnsafe:
		return exec.Racy, true
	case Replicated:
		return exec.Replicated, true
	case ShardedParallel:
		return exec.ShardedDest, true
	default:
		return 0, false
	}
}

// Options configures an embedding run.
type Options struct {
	// K is the number of classes (embedding dimensionality). Zero means
	// infer 1 + max(Y).
	K int
	// Workers bounds parallelism for the CSR implementations; <= 0
	// selects GOMAXPROCS.
	Workers int
	// Laplacian selects the degree-normalized variant: each edge's
	// contribution is scaled by 1/sqrt(d(u)·d(v)) where d is the total
	// incident weight of the endpoint (the GEE paper's Laplacian
	// preprocessing).
	Laplacian bool
	// ForceSparseEdgeMap pins the Ligra traversal to the sparse path
	// (ablation only; the paper's configuration is dense). It applies to
	// the Ligra implementations; Replicated and ShardedParallel are not
	// frontier traversals and ignore it.
	ForceSparseEdgeMap bool
}

// normalize validates y against opts and returns the effective K.
func (o Options) normalize(n int, y []int32) (int, error) {
	if len(y) != n {
		return 0, fmt.Errorf("gee: %d labels for %d vertices", len(y), n)
	}
	k := o.K
	if k == 0 {
		for _, v := range y {
			if int(v)+1 > k {
				k = int(v) + 1
			}
		}
	}
	if k <= 0 {
		return 0, fmt.Errorf("gee: no labeled vertices and K unset")
	}
	if err := labels.Validate(y, k); err != nil {
		return 0, err
	}
	return k, nil
}

// workers resolves the effective worker count.
func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Result is the output of an embedding run.
type Result struct {
	Z    *mat.Dense // n × K node embeddings
	K    int
	Impl Impl
}

// Embed runs implementation impl over the paper's native input: the edge
// list E ∈ R^{s×3} plus labels Y. Each edge-list row receives both of
// Algorithm 1's updates (source into the destination's class and vice
// versa), so undirected graphs must list each edge once. The CSR
// implementations build a CSR internally; use EmbedCSR to amortize that
// across runs (the benchmarks do, matching the paper, which excludes
// graph loading from its timings).
func Embed(impl Impl, el *graph.EdgeList, y []int32, opts Options) (*Result, error) {
	k, err := opts.normalize(el.N, y)
	if err != nil {
		return nil, err
	}
	switch impl {
	case Reference:
		z, err := referenceEmbed(el, y, k, opts)
		if err != nil {
			return nil, err
		}
		return &Result{Z: z, K: k, Impl: impl}, nil
	case Optimized:
		z, err := optimizedEmbed(el, y, k, opts)
		if err != nil {
			return nil, err
		}
		return &Result{Z: z, K: k, Impl: impl}, nil
	}
	if _, ok := impl.strategy(); ok {
		g := graph.BuildCSR(opts.workers(), el)
		return EmbedCSR(impl, g, y, opts)
	}
	return nil, fmt.Errorf("gee: unknown implementation %d", int(impl))
}

// EmbedCSR runs an implementation over a prebuilt CSR. Each stored arc is
// one row of E: Algorithm 1's two updates are applied per arc, so the CSR
// must hold each logical edge exactly once (not symmetrized).
func EmbedCSR(impl Impl, g *graph.CSR, y []int32, opts Options) (*Result, error) {
	k, err := opts.normalize(g.N, y)
	if err != nil {
		return nil, err
	}
	switch impl {
	case Reference:
		return Embed(impl, g.ToEdgeList(), y, opts)
	case Optimized:
		z, err := optimizedEmbedCSR(g, y, k, opts)
		if err != nil {
			return nil, err
		}
		return &Result{Z: z, K: k, Impl: impl}, nil
	}
	if _, ok := impl.strategy(); ok {
		z, err := csrEmbed(g, y, k, opts, impl)
		if err != nil {
			return nil, err
		}
		return &Result{Z: z, K: k, Impl: impl}, nil
	}
	return nil, fmt.Errorf("gee: unknown implementation %d", int(impl))
}
