package gee

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/labels"
	"repro/internal/mat"
)

// handExample is a 4-vertex weighted graph with hand-computed embedding.
//
//	edges: (0,1,w=1) (1,2,w=2) (2,3,w=1) (3,0,w=1)
//	labels: Y = [0, 1, 0, 1]      counts: class0 = 2, class1 = 2
//	coeff:  [0.5, 0.5, 0.5, 0.5]
//
// Per edge (u,v,w): Z[u][Y[v]] += coeff[v]*w; Z[v][Y[u]] += coeff[u]*w.
//
//	(0,1,1): Z[0][1] += .5    Z[1][0] += .5
//	(1,2,2): Z[1][0] += 1     Z[2][1] += 1
//	(2,3,1): Z[2][1] += .5    Z[3][0] += .5
//	(3,0,1): Z[3][0] += .5    Z[0][1] += .5
//
// Z = [[0, 1], [1.5, 0], [0, 1.5], [1, 0]]
func handExample() (*graph.EdgeList, []int32, *mat.Dense) {
	el := &graph.EdgeList{N: 4, Weighted: true, Edges: []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 2}, {U: 2, V: 3, W: 1}, {U: 3, V: 0, W: 1},
	}}
	y := []int32{0, 1, 0, 1}
	want := mat.FromRows([][]float64{{0, 1}, {1.5, 0}, {0, 1.5}, {1, 0}})
	return el, y, want
}

func TestAllImplsMatchHandComputedValues(t *testing.T) {
	el, y, want := handExample()
	for _, impl := range Impls {
		res, err := Embed(impl, el, y, Options{Workers: 4})
		if err != nil {
			t.Fatalf("%v: %v", impl, err)
		}
		if res.K != 2 {
			t.Fatalf("%v: K=%d", impl, res.K)
		}
		if d := want.MaxAbsDiff(res.Z); d != 0 {
			t.Fatalf("%v: max diff %v from hand-computed Z\ngot %v", impl, d, res.Z.Data)
		}
	}
}

func TestUnknownLabelsContributeNothing(t *testing.T) {
	// Vertex 1 unlabeled: edges touching it only contribute in one
	// direction.
	el := &graph.EdgeList{N: 3, Edges: []graph.Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}}}
	y := []int32{0, labels.Unknown, 0}
	// counts: class0 = 2, coeff = 0.5 for vertices 0 and 2.
	// (0,1): Y[1] unknown -> no Z[0] update; Z[1][0] += 0.5
	// (1,2): Z[1][0] += 0.5; Y[1] unknown -> no Z[2] update
	want := mat.FromRows([][]float64{{0}, {1}, {0}})
	for _, impl := range Impls {
		res, err := Embed(impl, el, y, Options{K: 1, Workers: 2})
		if err != nil {
			t.Fatalf("%v: %v", impl, err)
		}
		if d := want.MaxAbsDiff(res.Z); d != 0 {
			t.Fatalf("%v: Z=%v", impl, res.Z.Data)
		}
	}
}

func TestSelfLoopDoubleContribution(t *testing.T) {
	// A self loop applies both updates to the same vertex, per
	// Algorithm 1 applied literally.
	el := &graph.EdgeList{N: 1, Edges: []graph.Edge{{U: 0, V: 0, W: 1}}}
	y := []int32{0}
	res, err := Embed(Reference, el, y, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Z.At(0, 0) != 2 { // coeff = 1/1, two updates
		t.Fatalf("Z=%v want 2", res.Z.At(0, 0))
	}
}

func TestKInference(t *testing.T) {
	el, y, _ := handExample()
	res, err := Embed(Optimized, el, y, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 2 {
		t.Fatalf("inferred K=%d want 2", res.K)
	}
	// explicit wider K pads with zero columns
	res, err = Embed(Optimized, el, y, Options{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 5 || res.Z.C != 5 {
		t.Fatalf("K=%d C=%d", res.K, res.Z.C)
	}
	for v := 0; v < 4; v++ {
		for c := 2; c < 5; c++ {
			if res.Z.At(v, c) != 0 {
				t.Fatal("padding columns must be zero")
			}
		}
	}
}

func TestErrorCases(t *testing.T) {
	el, y, _ := handExample()
	if _, err := Embed(Reference, el, y[:2], Options{}); err == nil {
		t.Fatal("label length mismatch accepted")
	}
	if _, err := Embed(Reference, el, []int32{0, 1, 0, 7}, Options{K: 2}); err == nil {
		t.Fatal("out-of-range label accepted")
	}
	if _, err := Embed(Reference, el, []int32{-1, -1, -1, -1}, Options{}); err == nil {
		t.Fatal("all-unknown without K accepted")
	}
	if _, err := Embed(Impl(99), el, y, Options{}); err == nil {
		t.Fatal("bogus impl accepted")
	}
	if _, err := EmbedCSR(Impl(99), graph.BuildCSR(1, el), y, Options{}); err == nil {
		t.Fatal("bogus impl accepted via CSR")
	}
}

// paperConfig embeds an RMAT graph under the paper's label protocol and
// cross-checks every implementation against the Reference oracle.
func TestCrossImplementationEquivalenceRMAT(t *testing.T) {
	el := gen.RMAT(8, 12, 60_000, gen.Graph500Params, 1)
	y := labels.SampleSemiSupervised(el.N, 50, 0.1, 2)
	reports, err := Verify(el, y, Options{K: 50, Workers: 8}, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports {
		if r.Impl == LigraParallelUnsafe {
			continue // racy by design; checked separately
		}
		if !r.WithinTol {
			t.Errorf("%v deviates from reference: max abs diff %v", r.Impl, r.MaxAbsDiff)
		}
	}
}

func TestCrossImplementationEquivalenceWeighted(t *testing.T) {
	el := gen.ErdosRenyi(8, 500, 20_000, 3)
	el.Weighted = true
	for i := range el.Edges {
		el.Edges[i].W = float32(i%7 + 1)
	}
	y := labels.SampleSemiSupervised(el.N, 10, 0.3, 4)
	reports, err := Verify(el, y, Options{K: 10, Workers: 8}, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports {
		if r.Impl == LigraParallelUnsafe {
			continue
		}
		if !r.WithinTol {
			t.Errorf("%v: max abs diff %v", r.Impl, r.MaxAbsDiff)
		}
	}
}

// TestParallelAtomicExactWithDyadicCoeffs uses class counts that are
// powers of two so every contribution is an exact dyadic rational: the
// atomic parallel sum must then equal the serial sum bit-for-bit, which
// is the strongest possible no-lost-updates check (a single lost update
// shifts a cell by a whole quantum).
func TestParallelAtomicExactWithDyadicCoeffs(t *testing.T) {
	n := 1024
	el := gen.ErdosRenyi(8, n, 100_000, 7)
	y := make([]int32, n)
	for i := range y {
		y[i] = int32(i % 4) // counts = 256 per class: coeff = 2^-8 exact
	}
	ref, err := Embed(Reference, el, y, Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Embed(LigraParallel, el, y, Options{K: 4, Workers: 16})
	if err != nil {
		t.Fatal(err)
	}
	if d := ref.Z.MaxAbsDiff(par.Z); d != 0 {
		t.Fatalf("atomic parallel differs from serial by %v with exact arithmetic", d)
	}
}

// TestRaceLostUpdatesDemonstrated is E5 (Figure 1): on a high-contention
// graph, the atomics-off version can lose updates while the atomic
// version never does. Races are probabilistic, so absence of a
// demonstration is a skip, not a failure; presence of a deviation in the
// *atomic* version is always a failure.
func TestRaceLostUpdatesDemonstrated(t *testing.T) {
	// All leaves labeled the same class: every edge's second update
	// lands in the single cell Z[0][0].
	n := 1 << 15
	el := gen.Star(n)
	y := make([]int32, n)
	ref, err := Embed(Reference, el, y, Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	sawRace := false
	for trial := 0; trial < 5; trial++ {
		par, err := Embed(LigraParallel, el, y, Options{K: 1, Workers: 16})
		if err != nil {
			t.Fatal(err)
		}
		if d := ref.Z.MaxAbsDiff(par.Z); d != 0 {
			t.Fatalf("trial %d: atomic version lost updates (diff %v)", trial, d)
		}
		unsafeRes, err := Embed(LigraParallelUnsafe, el, y, Options{K: 1, Workers: 16})
		if err != nil {
			t.Fatal(err)
		}
		if ref.Z.MaxAbsDiff(unsafeRes.Z) != 0 {
			sawRace = true
		}
	}
	if !sawRace {
		t.Skip("races did not materialize in 5 trials (timing-dependent)")
	}
}

func TestLaplacianHandComputed(t *testing.T) {
	// Path 0-1-2, unit weights, Y=[0,0,1], K=2.
	// incident degrees: d = [1, 2, 1]
	// coeff: class0 count 2 -> 0.5; class1 count 1 -> 1.
	// edge (0,1): scale 1/sqrt(2)
	//   Z[0][0] += 0.5/sqrt2 ; Z[1][0] += 0.5/sqrt2
	// edge (1,2): scale 1/sqrt(2)
	//   Z[1][1] += 1/sqrt2  ; Z[2][0] += 0.5/sqrt2
	el := gen.Path(3)
	y := []int32{0, 0, 1}
	s := 1 / math.Sqrt(2)
	want := mat.FromRows([][]float64{{0.5 * s, 0}, {0.5 * s, s}, {0.5 * s, 0}})
	for _, impl := range Impls {
		res, err := Embed(impl, el, y, Options{K: 2, Workers: 4, Laplacian: true})
		if err != nil {
			t.Fatalf("%v: %v", impl, err)
		}
		if !want.EqualTol(res.Z, 1e-12) {
			t.Fatalf("%v: Z=%v want %v", impl, res.Z.Data, want.Data)
		}
	}
}

func TestLaplacianCrossImplEquivalence(t *testing.T) {
	el := gen.RMAT(8, 10, 20_000, gen.Graph500Params, 9)
	el.Weighted = true
	for i := range el.Edges {
		el.Edges[i].W = float32(i%3 + 1)
	}
	y := labels.SampleSemiSupervised(el.N, 8, 0.25, 11)
	reports, err := Verify(el, y, Options{K: 8, Workers: 8, Laplacian: true}, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports {
		if r.Impl == LigraParallelUnsafe {
			continue
		}
		if !r.WithinTol {
			t.Errorf("%v laplacian: diff %v", r.Impl, r.MaxAbsDiff)
		}
	}
}

func TestLaplacianZeroDegreeGuard(t *testing.T) {
	// A zero-degree vertex must zero out any edge factor it enters
	// (1/sqrt(d(u)·d(v)) is factored as Scale[u]·Scale[v] in the kernel).
	s := invSqrtDegrees(1, []float64{0, 1, 4})
	if s[0] != 0 {
		t.Fatalf("scale=%v for zero-degree vertex", s[0])
	}
	if s[1] != 1 || s[2] != 0.5 {
		t.Fatalf("scales=%v want [0 1 0.5]", s)
	}
	if invSqrtDegrees(2, nil) != nil {
		t.Fatal("nil degrees must stay nil")
	}
}

func TestEmbedCSRMatchesEmbed(t *testing.T) {
	el := gen.ErdosRenyi(4, 300, 5000, 13)
	y := labels.SampleSemiSupervised(el.N, 5, 0.5, 14)
	g := graph.BuildCSR(4, el)
	a, err := Embed(LigraParallel, el, y, Options{K: 5, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	b, err := EmbedCSR(LigraParallel, g, y, Options{K: 5, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Z.EqualTol(b.Z, 1e-9) {
		t.Fatal("CSR path differs from edge-list path")
	}
	// Reference via CSR round-trips through ToEdgeList
	c, err := EmbedCSR(Reference, g, y, Options{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Z.EqualTol(c.Z, 1e-9) {
		t.Fatal("reference via CSR differs")
	}
}

func TestForceSparseEdgeMapEquivalent(t *testing.T) {
	el := gen.ErdosRenyi(4, 400, 8000, 17)
	y := labels.SampleSemiSupervised(el.N, 6, 0.4, 18)
	dense, err := Embed(LigraParallel, el, y, Options{K: 6, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := Embed(LigraParallel, el, y, Options{K: 6, Workers: 8, ForceSparseEdgeMap: true})
	if err != nil {
		t.Fatal(err)
	}
	if !dense.Z.EqualTol(sparse.Z, 1e-9) {
		t.Fatal("sparse edge map produced a different embedding")
	}
}

func TestOptimizedEmbedCSRMatches(t *testing.T) {
	el := gen.RMAT(4, 9, 6000, gen.Graph500Params, 19)
	y := labels.SampleSemiSupervised(el.N, 7, 0.3, 20)
	g := graph.BuildCSR(4, el)
	want, err := EmbedCSR(Reference, g, y, Options{K: 7})
	if err != nil {
		t.Fatal(err)
	}
	got, err := optimizedEmbedCSR(g, y, 7, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !want.Z.EqualTol(got, 1e-9) {
		t.Fatal("optimizedEmbedCSR differs from reference")
	}
	gotLap, err := optimizedEmbedCSR(g, y, 7, Options{Laplacian: true})
	if err != nil {
		t.Fatal(err)
	}
	wantLap, err := EmbedCSR(Reference, g, y, Options{K: 7, Laplacian: true})
	if err != nil {
		t.Fatal(err)
	}
	if !wantLap.Z.EqualTol(gotLap, 1e-9) {
		t.Fatal("optimizedEmbedCSR laplacian differs from reference")
	}
}

func TestProjection(t *testing.T) {
	y := []int32{0, 0, 1, -1, 1, 1}
	w := referenceProjection(6, y, 2)
	if w.At(0, 0) != 0.5 || w.At(1, 0) != 0.5 {
		t.Fatal("class 0 coeff wrong")
	}
	if math.Abs(w.At(2, 1)-1.0/3) > 1e-15 {
		t.Fatal("class 1 coeff wrong")
	}
	for c := 0; c < 2; c++ {
		if w.At(3, c) != 0 {
			t.Fatal("unknown vertex must have zero row")
		}
	}
	counts := classCounts(4, y, 2)
	if counts[0] != 2 || counts[1] != 3 {
		t.Fatalf("counts=%v", counts)
	}
	coeff := projectionCoeffs(4, y, counts)
	for v := 0; v < 6; v++ {
		expected := 0.0
		if y[v] >= 0 {
			expected = w.At(v, int(y[v]))
		}
		if coeff[v] != expected {
			t.Fatalf("coeff[%d]=%v want %v", v, coeff[v], expected)
		}
	}
}

func TestIncidentDegreesCSREquivalent(t *testing.T) {
	el := gen.ErdosRenyi(4, 200, 3000, 23)
	el.Weighted = true
	for i := range el.Edges {
		el.Edges[i].W = float32(i%5 + 1)
	}
	want := incidentDegreesEdgeList(el)
	g := graph.BuildCSR(4, el)
	for _, workers := range []int{1, 8} {
		got := incidentDegreesCSR(workers, g)
		for v := range want {
			if math.Abs(got[v]-want[v]) > 1e-9 {
				t.Fatalf("workers=%d: deg[%d]=%v want %v", workers, v, got[v], want[v])
			}
		}
	}
}

func TestColumnSumInvariant(t *testing.T) {
	// Each edge (u,v) adds coeff[v]*w to column Y[v] and coeff[u]*w to
	// column Y[u]. Summed over all of Z, column c receives
	// sum over edge endpoints x with Y[x]=c of coeff[x]*w(e) — with unit
	// weights that is (1/count_c) * (#incidences of class-c vertices).
	el := gen.ErdosRenyi(4, 600, 10_000, 29)
	y := labels.Full(el.N, 5, 31)
	res, err := Embed(LigraParallel, el, y, Options{K: 5, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	counts := classCounts(1, y, 5)
	incid := make([]int64, 5)
	for _, e := range el.Edges {
		incid[y[e.U]]++
		incid[y[e.V]]++
	}
	for c := 0; c < 5; c++ {
		var got float64
		for v := 0; v < el.N; v++ {
			got += res.Z.At(v, c)
		}
		want := float64(incid[c]) / float64(counts[c])
		if math.Abs(got-want) > 1e-6*math.Max(1, want) {
			t.Fatalf("column %d sum %v want %v", c, got, want)
		}
	}
}

func TestImplString(t *testing.T) {
	names := map[Impl]string{
		Reference:           "GEE-Reference",
		Optimized:           "Optimized-Serial",
		LigraSerial:         "GEE-Ligra-Serial",
		LigraParallel:       "GEE-Ligra-Parallel",
		LigraParallelUnsafe: "GEE-Ligra-Unsafe",
		Replicated:          "GEE-Replicated",
		ShardedParallel:     "GEE-Sharded",
	}
	for impl, want := range names {
		if impl.String() != want {
			t.Fatalf("%d: %q", int(impl), impl.String())
		}
	}
	// Every registered implementation must have a real name — bench CSV
	// column headers are derived from String().
	for _, impl := range Impls {
		if _, named := names[impl]; !named {
			t.Fatalf("Impls entry %d missing from the String() coverage table", int(impl))
		}
	}
	if Impl(42).String() == "" {
		t.Fatal("unknown impl must still stringify")
	}
}

func TestEmptyGraph(t *testing.T) {
	el := &graph.EdgeList{N: 0}
	res, err := Embed(Optimized, el, nil, Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Z.R != 0 || res.Z.C != 3 {
		t.Fatalf("shape %dx%d", res.Z.R, res.Z.C)
	}
}

func TestEdgelessGraph(t *testing.T) {
	el := &graph.EdgeList{N: 10}
	y := labels.Full(10, 3, 1)
	for _, impl := range Impls {
		res, err := Embed(impl, el, y, Options{K: 3, Workers: 4})
		if err != nil {
			t.Fatalf("%v: %v", impl, err)
		}
		if res.Z.MaxAbs() != 0 {
			t.Fatalf("%v: nonzero embedding with no edges", impl)
		}
	}
}
