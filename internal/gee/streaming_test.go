package gee

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/labels"
	"repro/internal/xrand"
)

func TestStreamingMatchesBatch(t *testing.T) {
	el := gen.RMAT(4, 11, 30_000, gen.Graph500Params, 61)
	y := labels.SampleSemiSupervised(el.N, 10, 0.2, 62)
	batchRes, err := Embed(Reference, el, y, Options{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStreamingEmbedder(el.N, y, Options{K: 10, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	// insert in uneven batches
	edges := el.Edges
	for len(edges) > 0 {
		sz := 1 + len(edges)/3
		if sz > len(edges) {
			sz = len(edges)
		}
		if err := s.AddEdges(edges[:sz]); err != nil {
			t.Fatal(err)
		}
		edges = edges[sz:]
	}
	if s.EdgeCount() != int64(len(el.Edges)) {
		t.Fatalf("edge count %d want %d", s.EdgeCount(), len(el.Edges))
	}
	if !batchRes.Z.EqualTol(s.Z(), 1e-9) {
		t.Fatalf("streaming differs from batch by %v", batchRes.Z.MaxAbsDiff(s.Z()))
	}
}

func TestStreamingRemoveUndoesAdd(t *testing.T) {
	n := 500
	y := labels.Full(n, 4, 63)
	s, err := NewStreamingEmbedder(n, y, Options{K: 4, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(64)
	base := make([]graph.Edge, 2000)
	for i := range base {
		base[i] = graph.Edge{U: graph.NodeID(r.Intn(n)), V: graph.NodeID(r.Intn(n)), W: 1}
	}
	extra := make([]graph.Edge, 500)
	for i := range extra {
		extra[i] = graph.Edge{U: graph.NodeID(r.Intn(n)), V: graph.NodeID(r.Intn(n)), W: 2}
	}
	if err := s.AddEdges(base); err != nil {
		t.Fatal(err)
	}
	before := s.Snapshot()
	if err := s.AddEdges(extra); err != nil {
		t.Fatal(err)
	}
	if before.Z.EqualTol(s.Z(), 1e-12) {
		t.Fatal("extra batch had no effect")
	}
	if err := s.RemoveEdges(extra); err != nil {
		t.Fatal(err)
	}
	if !before.Z.EqualTol(s.Z(), 1e-9) {
		t.Fatalf("remove did not undo add: diff %v", before.Z.MaxAbsDiff(s.Z()))
	}
	if s.EdgeCount() != int64(len(base)) {
		t.Fatalf("edge count %d want %d", s.EdgeCount(), len(base))
	}
}

func TestStreamingValidation(t *testing.T) {
	y := labels.Full(10, 2, 65)
	s, err := NewStreamingEmbedder(10, y, Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddEdges([]graph.Edge{{U: 99, V: 0, W: 1}}); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	if _, err := NewStreamingEmbedder(10, y[:5], Options{K: 2}); err == nil {
		t.Fatal("label length mismatch accepted")
	}
	if _, err := NewStreamingEmbedder(10, y, Options{K: 2, Laplacian: true}); err == nil {
		t.Fatal("streaming laplacian accepted")
	}
}

func TestStreamingReset(t *testing.T) {
	y := labels.Full(10, 2, 66)
	s, _ := NewStreamingEmbedder(10, y, Options{K: 2})
	s.AddEdges([]graph.Edge{{U: 0, V: 1, W: 1}})
	if s.Z().MaxAbs() == 0 {
		t.Fatal("add had no effect")
	}
	s.Reset()
	if s.Z().MaxAbs() != 0 || s.EdgeCount() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestStreamingSnapshotIndependent(t *testing.T) {
	y := labels.Full(10, 2, 67)
	s, _ := NewStreamingEmbedder(10, y, Options{K: 2})
	s.AddEdges([]graph.Edge{{U: 0, V: 1, W: 1}})
	snap := s.Snapshot()
	s.AddEdges([]graph.Edge{{U: 2, V: 3, W: 1}})
	if snap.Z.EqualTol(s.Z(), 1e-15) {
		t.Fatal("snapshot aliases live matrix")
	}
}
