package gee

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/labels"
)

func TestEmbedDirectedFoldEqualsStandard(t *testing.T) {
	el := gen.RMAT(4, 10, 20_000, gen.Graph500Params, 51)
	y := labels.SampleSemiSupervised(el.N, 8, 0.2, 52)
	g := graph.BuildCSR(4, el)
	std, err := EmbedCSR(Reference, g, y, Options{K: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, impl := range []Impl{LigraSerial, LigraParallel} {
		dir, err := EmbedDirected(impl, g, y, Options{K: 8, Workers: 8})
		if err != nil {
			t.Fatal(err)
		}
		if dir.Z.C != 16 {
			t.Fatalf("%v: width %d want 16", impl, dir.Z.C)
		}
		folded := FoldDirected(dir.Z)
		if !std.Z.EqualTol(folded, 1e-9) {
			t.Fatalf("%v: folded directed embedding differs from standard by %v",
				impl, std.Z.MaxAbsDiff(folded))
		}
	}
}

func TestEmbedDirectedSeparatesRoles(t *testing.T) {
	// Pure source vertex 0 -> class-0 vertex 1: the contribution must
	// land in the out-profile of 0 and the in-profile of 1, not mixed.
	el := &graph.EdgeList{N: 3, Edges: []graph.Edge{{U: 0, V: 1, W: 1}}}
	y := []int32{1, 0, 0} // class counts: c0=2, c1=1
	g := graph.BuildCSR(1, el)
	res, err := EmbedDirected(LigraSerial, g, y, Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	// out-profile of 0: Z[0][Y[1]=0] = coeff[1] = 0.5
	if res.Z.At(0, 0) != 0.5 {
		t.Fatalf("out-profile: %v", res.Z.Row(0))
	}
	// in-profile of 1: Z[1][K + Y[0]=1] = coeff[0] = 1
	if res.Z.At(1, 2+1) != 1 {
		t.Fatalf("in-profile: %v", res.Z.Row(1))
	}
	// nothing else set
	var total float64
	for _, v := range res.Z.Data {
		total += v
	}
	if total != 1.5 {
		t.Fatalf("stray contributions: total=%v", total)
	}
}

func TestEmbedDirectedRejectsSerialImpls(t *testing.T) {
	el := gen.Path(3)
	g := graph.BuildCSR(1, el)
	if _, err := EmbedDirected(Reference, g, []int32{0, 0, 0}, Options{K: 1}); err == nil {
		t.Fatal("Reference accepted")
	}
}

func TestFoldDirectedPanicsOnOddWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	res, _ := Embed(Optimized, gen.Path(2), []int32{0, 0}, Options{K: 3})
	FoldDirected(res.Z)
}

func TestDiagonalAugment(t *testing.T) {
	el := gen.Path(3)
	aug := DiagonalAugment(el)
	if len(aug.Edges) != len(el.Edges)+3 {
		t.Fatalf("edges=%d", len(aug.Edges))
	}
	// original untouched
	if len(el.Edges) != 2 {
		t.Fatal("augment mutated input")
	}
	y := []int32{0, 0, 1}
	plain, err := Embed(Reference, el, y, Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	augmented, err := Embed(Reference, aug, y, Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	// every vertex v gains exactly 2*coeff[v] at (v, Y[v])
	counts := classCounts(1, y, 2)
	coeff := projectionCoeffs(1, y, counts)
	for v := 0; v < 3; v++ {
		for c := 0; c < 2; c++ {
			want := plain.Z.At(v, c)
			if int32(c) == y[v] {
				want += 2 * coeff[v]
			}
			if got := augmented.Z.At(v, c); got != want {
				t.Fatalf("Z[%d][%d]=%v want %v", v, c, got, want)
			}
		}
	}
}

func TestDiagonalAugmentFixesIsolatedVertices(t *testing.T) {
	// isolated labeled vertex: zero row without augmentation, nonzero with
	el := &graph.EdgeList{N: 2, Edges: []graph.Edge{}}
	y := []int32{0, 1}
	plain, _ := Embed(Optimized, el, y, Options{K: 2})
	if plain.Z.MaxAbs() != 0 {
		t.Fatal("expected zero embedding")
	}
	aug, _ := Embed(Optimized, DiagonalAugment(el), y, Options{K: 2})
	if aug.Z.At(0, 0) == 0 || aug.Z.At(1, 1) == 0 {
		t.Fatalf("self loops did not populate diagonal affinities: %v", aug.Z.Data)
	}
}
