package gee

import (
	"repro/internal/graph"
)

// DiagonalAugment returns a copy of el with one unit-weight self loop
// added to every vertex — the GEE paper's "diagonal augmentation"
// (embedding A + D/n in spirit): every labeled vertex then contributes
// its own class coefficient to its own row, which stabilizes embeddings
// of very low-degree vertices whose rows would otherwise be all zeros.
//
// GEE processes the self loops like any other edge (both Algorithm 1
// updates fire, adding 2·W(v, Y(v)) to Z(v, Y(v))).
func DiagonalAugment(el *graph.EdgeList) *graph.EdgeList {
	out := &graph.EdgeList{
		N:        el.N,
		Weighted: el.Weighted,
		Edges:    make([]graph.Edge, 0, len(el.Edges)+el.N),
	}
	out.Edges = append(out.Edges, el.Edges...)
	for v := 0; v < el.N; v++ {
		out.Edges = append(out.Edges, graph.Edge{U: graph.NodeID(v), V: graph.NodeID(v), W: 1})
	}
	return out
}
