package gee

import (
	"repro/internal/graph"
	"repro/internal/mat"
)

// referenceEmbed is the faithful transcription of Algorithm 1
// (Semi-Supervised GEE) from the paper, deliberately written the way the
// original interpreted implementation computes it:
//
//	W = zeros(n, K)                      // lines 2-6
//	for k in 0..K-1:
//	    idx = { v : Y[v] = k }
//	    W[idx, k] = 1 / count(Y = k)
//	for each edge (u, v, w):             // lines 7-12
//	    Z[u, Y[v]] += W[v, Y[v]] * w
//	    Z[v, Y[u]] += W[u, Y[u]] * w
//
// The full n×K projection matrix is materialized (that memory footprint
// is part of what the paper's Numba/Ligra versions eliminate), the edge
// loop is serial, and every access goes through 2-D indexing. It is the
// correctness oracle for the optimized implementations.
func referenceEmbed(el *graph.EdgeList, y []int32, k int, opts Options) *mat.Dense {
	n := el.N
	// Lines 2-6: projection matrix.
	w := mat.NewDense(n, k)
	counts := make([]int64, k)
	for _, c := range y {
		if c >= 0 {
			counts[c]++
		}
	}
	for class := 0; class < k; class++ {
		if counts[class] == 0 {
			continue
		}
		inv := 1 / float64(counts[class])
		for v := 0; v < n; v++ {
			if y[v] == int32(class) {
				w.Set(v, class, inv)
			}
		}
	}
	var deg []float64
	if opts.Laplacian {
		deg = incidentDegreesEdgeList(el)
	}
	// Lines 7-12: single pass over the edge list.
	z := mat.NewDense(n, k)
	for _, e := range el.Edges {
		u, v, wt := int(e.U), int(e.V), float64(e.W)
		if opts.Laplacian {
			wt *= laplacianScale(deg, e.U, e.V)
		}
		if yv := y[v]; yv >= 0 {
			z.Add(u, int(yv), w.At(v, int(yv))*wt)
		}
		if yu := y[u]; yu >= 0 {
			z.Add(v, int(yu), w.At(u, int(yu))*wt)
		}
	}
	return z
}

// referenceProjection exposes the full W matrix of Algorithm 1 lines 2-6
// for tests that check the projection construction in isolation.
func referenceProjection(n int, y []int32, k int) *mat.Dense {
	w := mat.NewDense(n, k)
	counts := make([]int64, k)
	for _, c := range y {
		if c >= 0 {
			counts[c]++
		}
	}
	for v := 0; v < n; v++ {
		if c := y[v]; c >= 0 && counts[c] > 0 {
			w.Set(v, int(c), 1/float64(counts[c]))
		}
	}
	return w
}
