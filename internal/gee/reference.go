package gee

import (
	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/mat"
)

// referenceEmbed is the faithful transcription of Algorithm 1
// (Semi-Supervised GEE) from the paper, computed the way the original
// interpreted implementation computes it:
//
//	W = zeros(n, K)                      // lines 2-6
//	for k in 0..K-1:
//	    idx = { v : Y[v] = k }
//	    W[idx, k] = 1 / count(Y = k)
//	for each edge (u, v, w):             // lines 7-12
//	    Z[u, Y[v]] += W[v, Y[v]] * w
//	    Z[v, Y[u]] += W[u, Y[u]] * w
//
// The full n×K projection matrix is materialized (that memory footprint
// is part of what the paper's Numba/Ligra versions eliminate) and every
// coefficient is read back through its 2-D index. The edge loop itself
// is the shared serial exec kernel over E — the same pass, applied in
// edge-list order on one worker. It is the correctness oracle for the
// optimized implementations.
func referenceEmbed(el *graph.EdgeList, y []int32, k int, opts Options) (*mat.Dense, error) {
	n := el.N
	// Lines 2-6: the literal projection matrix.
	w := referenceProjection(n, y, k)
	// The kernel coefficient of vertex v is W(v, Y(v)), read through the
	// materialized matrix as Algorithm 1's inner loop does.
	coeff := make([]float64, n)
	for v := 0; v < n; v++ {
		if c := y[v]; c >= 0 {
			coeff[v] = w.At(v, int(c))
		}
	}
	var deg []float64
	if opts.Laplacian {
		deg = incidentDegreesEdgeList(el)
	}
	kern := exec.Kernel[float64]{Width: k, SrcCol: y, DstCol: y, Coeff: coeff, Scale: invSqrtDegrees(1, deg)}
	// Lines 7-12: single serial pass over the edge list.
	z := mat.NewDense(n, k)
	if _, err := exec.SerialEdges(kern, el.Edges, n, z.Data); err != nil {
		return nil, err
	}
	return z, nil
}

// referenceProjection exposes the full W matrix of Algorithm 1 lines 2-6
// for tests that check the projection construction in isolation.
func referenceProjection(n int, y []int32, k int) *mat.Dense {
	w := mat.NewDense(n, k)
	counts := make([]int64, k)
	for _, c := range y {
		if c >= 0 {
			counts[c]++
		}
	}
	for v := 0; v < n; v++ {
		if c := y[v]; c >= 0 && counts[c] > 0 {
			w.Set(v, int(c), 1/float64(counts[c]))
		}
	}
	return w
}
