package gee

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/labels"
	"repro/internal/mat"
	"repro/internal/xrand"
)

// RefineOptions configures the unsupervised GEE pipeline.
type RefineOptions struct {
	Embedding Options // per-iteration embedding options (K required)
	Impl      Impl    // implementation used for each embedding pass
	MaxRounds int     // refinement rounds per restart (default 20)
	KMeansMax int     // Lloyd iterations per round (default 50)
	Restarts  int     // independent random initializations (default 3)
	Seed      uint64
}

// RefineResult is the output of the unsupervised pipeline.
type RefineResult struct {
	*Result
	Labels  []int32 // final cluster assignment of every vertex
	Rounds  int     // refinement rounds executed by the winning restart
	ARI     float64 // agreement between the winning restart's last two labelings
	Inertia float64 // k-means objective of the winning restart (row-normalized Z)
}

// Refine runs the unsupervised GEE pipeline from the GEE paper: start
// from random labels, then alternate (embed with current labels) →
// (k-means on the row-normalized Z) → (adopt cluster assignment as
// labels) until the labeling stabilizes (consecutive-round ARI ≥ 0.999)
// or MaxRounds is hit. Because the alternation can reach poor fixed
// points from unlucky initializations, Restarts independent runs are
// performed and the one with the lowest final k-means inertia wins.
//
// The paper under reproduction benchmarks the supervised path; Refine is
// the companion mode its §II describes ("Y ... may be derived from
// unsupervised clustering").
func Refine(el *graph.EdgeList, opts RefineOptions) (*RefineResult, error) {
	if opts.Embedding.K <= 0 {
		return nil, fmt.Errorf("gee: Refine requires Embedding.K > 0")
	}
	if opts.MaxRounds <= 0 {
		opts.MaxRounds = 20
	}
	if opts.KMeansMax <= 0 {
		opts.KMeansMax = 50
	}
	if opts.Restarts <= 0 {
		opts.Restarts = 3
	}
	var best *RefineResult
	for restart := 0; restart < opts.Restarts; restart++ {
		res, err := refineOnce(el, opts, xrand.Mix64(opts.Seed)+uint64(restart)*0x9e3779b97f4a7c15)
		if err != nil {
			return nil, err
		}
		if best == nil || res.Inertia < best.Inertia {
			best = res
		}
	}
	return best, nil
}

// refineOnce runs a single restart of the alternation.
func refineOnce(el *graph.EdgeList, opts RefineOptions, seed uint64) (*RefineResult, error) {
	k := opts.Embedding.K
	n := el.N
	r := xrand.New(seed)
	y := make([]int32, n)
	for i := range y {
		y[i] = int32(r.Intn(k))
	}
	var res *Result
	var zn *mat.Dense
	lastARI := 0.0
	inertia := math.Inf(1)
	rounds := 0
	for round := 0; round < opts.MaxRounds; round++ {
		rounds = round + 1
		var err error
		res, err = Embed(opts.Impl, el, y, opts.Embedding)
		if err != nil {
			return nil, err
		}
		// Cluster the row-normalized embedding (the GEE paper's
		// preprocessing before k-means); res.Z stays unnormalized.
		zn = res.Z.Clone()
		zn.RowL2Normalize()
		km := cluster.KMeans(opts.Embedding.Workers, zn, k, seed+uint64(round)+1, opts.KMeansMax)
		inertia = km.Inertia
		next := labels.Relabel(km.Assign)
		lastARI = cluster.ARI(y, next)
		y = next
		if lastARI >= 0.999 {
			break
		}
	}
	return &RefineResult{Result: res, Labels: y, Rounds: rounds, ARI: lastARI, Inertia: inertia}, nil
}
